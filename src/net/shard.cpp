#include "net/shard.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <unordered_map>

#include "common/check.h"
#include "common/units.h"
#include "mac/timing.h"

namespace wlan::net {
namespace {

struct CellKey {
  std::int64_t x = 0;
  std::int64_t y = 0;
  bool operator==(const CellKey& o) const { return x == o.x && y == o.y; }
};

struct CellHash {
  std::size_t operator()(const CellKey& k) const {
    // SplitMix64-style mix of the two coordinates.
    std::uint64_t h = static_cast<std::uint64_t>(k.x) * 0x9E3779B97F4A7C15ull;
    h ^= static_cast<std::uint64_t>(k.y) + 0xBF58476D1CE4E5B9ull + (h << 6) +
         (h >> 2);
    h *= 0x94D049BB133111EBull;
    return static_cast<std::size_t>(h ^ (h >> 31));
  }
};

/// Union-find with path halving; components of the coupling graph.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i)
      parent_[i] = static_cast<std::uint32_t>(i);
  }
  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    // Attach the larger root under the smaller so component roots are
    // always the smallest member (stable, input-order independent).
    if (b < a) std::swap(a, b);
    parent_[b] = a;
  }

 private:
  std::vector<std::uint32_t> parent_;
};

/// Largest power of two <= x. Epoch boundaries k * lookahead must be
/// exact doubles so that a record stamped at u >= j*L, once delayed by
/// L, can never round below the (j+1)*L boundary (monotone rounding of
/// u + L with L a power of two guarantees fl(u + L) >= (j+1)*L).
double pow2_floor(double x) {
  check(x > 0.0 && std::isfinite(x), "pow2_floor needs a finite positive x");
  return std::exp2(std::floor(std::log2(x)));
}

}  // namespace

ShardPlan plan_shards(const NetworkConfig& config,
                      const std::vector<NodeConfig>& nodes,
                      const ShardOptions& options,
                      const std::vector<Flow>* flows) {
  const std::size_t n = nodes.size();
  check(n >= 1, "plan_shards needs at least one node");
  check(n < std::numeric_limits<std::uint32_t>::max(),
        "plan_shards node count exceeds uint32 indexing");
  check(!(options.cutoff_margin_db < 0.0), "cutoff_margin_db must be >= 0");

  ShardPlan plan;
  const bool bounded = std::isfinite(options.cutoff_margin_db);
  if (bounded) {
    // The weakest level any node could care about: a signal below both
    // its carrier-sense threshold and its noise floor can neither defer
    // it nor measurably degrade its SINR. Take the deployment-wide min
    // so one sensitive node widens the cutoff for everyone.
    double floor_dbm = std::numeric_limits<double>::infinity();
    double max_tx_dbm = -std::numeric_limits<double>::infinity();
    for (const NodeConfig& node : nodes) {
      const double noise_dbm =
          thermal_noise_dbm(config.bandwidth_hz, node.noise_figure_db);
      floor_dbm =
          std::min(floor_dbm, std::min(node.cs_threshold_dbm, noise_dbm));
      max_tx_dbm = std::max(max_tx_dbm, node.tx_power_dbm);
    }
    plan.cutoff_rx_dbm = floor_dbm - options.cutoff_margin_db;
    plan.cutoff_radius_m = std::max(
        config.pathloss.distance_for_path_loss(max_tx_dbm - plan.cutoff_rx_dbm),
        1.0);
  } else {
    plan.cutoff_rx_dbm = -std::numeric_limits<double>::infinity();
    plan.cutoff_radius_m = std::numeric_limits<double>::infinity();
  }

  // Adjacency rows. The unbounded plan keeps every pair; the bounded
  // plan bins nodes into a hash grid of cutoff-radius cells and tests
  // only the 3x3 neighbourhood (a coupled pair is at most one cell
  // apart by construction of the radius).
  std::vector<std::vector<std::uint32_t>> rows(n);
  if (!bounded) {
    plan.tile_m = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      rows[i].reserve(n - 1);
      for (std::size_t j = 0; j < n; ++j)
        if (j != i) rows[i].push_back(static_cast<std::uint32_t>(j));
    }
  } else {
    plan.tile_m =
        options.tile_m > 0.0 ? options.tile_m : plan.cutoff_radius_m;
    const double inv_tile = 1.0 / plan.tile_m;
    auto cell_of = [inv_tile](const mesh::Point& p) {
      return CellKey{static_cast<std::int64_t>(std::floor(p.x * inv_tile)),
                     static_cast<std::int64_t>(std::floor(p.y * inv_tile))};
    };
    std::unordered_map<CellKey, std::vector<std::uint32_t>, CellHash> grid;
    grid.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      grid[cell_of(nodes[i].position)].push_back(
          static_cast<std::uint32_t>(i));

    // Exact pairwise test, symmetric by construction: a pair is kept
    // when either direction's deterministic received power clears the
    // cutoff. Same clamped-distance convention as the engine's gain.
    const double cutoff = plan.cutoff_rx_dbm;
    auto coupled = [&](std::uint32_t a, std::uint32_t b) {
      const double d = std::max(
          mesh::distance(nodes[a].position, nodes[b].position), 0.5);
      const double loss = config.pathloss.path_loss_db(d);
      return nodes[a].tx_power_dbm - loss >= cutoff ||
             nodes[b].tx_power_dbm - loss >= cutoff;
    };
    const double radius_sq = plan.cutoff_radius_m * plan.cutoff_radius_m;
    for (std::size_t i = 0; i < n; ++i) {
      const mesh::Point& pi = nodes[i].position;
      const CellKey c = cell_of(pi);
      for (std::int64_t dx = -1; dx <= 1; ++dx) {
        for (std::int64_t dy = -1; dy <= 1; ++dy) {
          auto it = grid.find(CellKey{c.x + dx, c.y + dy});
          if (it == grid.end()) continue;
          for (std::uint32_t j : it->second) {
            if (j == static_cast<std::uint32_t>(i)) continue;
            const double ddx = nodes[j].position.x - pi.x;
            const double ddy = nodes[j].position.y - pi.y;
            // Cheap reject: beyond the cutoff radius even the
            // strongest transmitter is below the cutoff, so the exact
            // test cannot pass (the radius came from max tx power).
            if (ddx * ddx + ddy * ddy > radius_sq) continue;
            if (coupled(static_cast<std::uint32_t>(i), j))
              rows[i].push_back(j);
          }
        }
      }
      std::sort(rows[i].begin(), rows[i].end());
    }
  }

  // Flatten to CSR.
  plan.row_offset.assign(n + 1, 0);
  std::size_t edges = 0;
  for (std::size_t i = 0; i < n; ++i) {
    plan.row_offset[i] = edges;
    edges += rows[i].size();
  }
  plan.row_offset[n] = edges;
  plan.nbr.reserve(edges);
  for (std::size_t i = 0; i < n; ++i)
    plan.nbr.insert(plan.nbr.end(), rows[i].begin(), rows[i].end());

  if (!options.border) {
    // Connected components = shards, numbered by smallest member.
    UnionFind uf(n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t e = plan.row_offset[i]; e < plan.row_offset[i + 1];
           ++e)
        uf.unite(static_cast<std::uint32_t>(i), plan.nbr[e]);
    plan.shard_of.assign(n, 0);
    std::unordered_map<std::uint32_t, std::uint32_t> shard_index;
    shard_index.reserve(64);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t root = uf.find(static_cast<std::uint32_t>(i));
      auto [it, inserted] = shard_index.emplace(
          root, static_cast<std::uint32_t>(plan.shards.size()));
      if (inserted) plan.shards.emplace_back();
      plan.shard_of[i] = it->second;
      plan.shards[it->second].push_back(static_cast<std::uint32_t>(i));
    }
  } else {
    // Border mode: uniform spatial tiles, coupled across boundaries.
    plan.border = true;
    const double border_tile =
        options.border_tile_m > 0.0 ? options.border_tile_m
                                    : plan.cutoff_radius_m;
    check(std::isfinite(border_tile) && border_tile > 0.0,
          "border mode needs a finite tile: set border_tile_m or use a "
          "finite cutoff_margin_db");
    const double inv_border = 1.0 / border_tile;
    auto tile_of = [inv_border](const mesh::Point& p) {
      return CellKey{
          static_cast<std::int64_t>(std::floor(p.x * inv_border)),
          static_cast<std::int64_t>(std::floor(p.y * inv_border))};
    };
    // Flow endpoints (and, transitively, flows sharing endpoints) must
    // land in one tile: every node of a flow-connected cluster adopts
    // the tile of the cluster's smallest member.
    UnionFind cluster(n);
    if (flows) {
      for (const Flow& f : *flows)
        cluster.unite(static_cast<std::uint32_t>(f.source),
                      static_cast<std::uint32_t>(f.destination));
    }
    plan.shard_of.assign(n, 0);
    std::unordered_map<CellKey, std::uint32_t, CellHash> tile_index;
    tile_index.reserve(256);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t rep = cluster.find(static_cast<std::uint32_t>(i));
      const CellKey key = tile_of(nodes[rep].position);
      auto [it, inserted] = tile_index.emplace(
          key, static_cast<std::uint32_t>(plan.shards.size()));
      if (inserted) plan.shards.emplace_back();
      plan.shard_of[i] = it->second;
      plan.shards[it->second].push_back(static_cast<std::uint32_t>(i));
    }

    // Lookahead: the minimum cross-border reaction time of a NAV or
    // interference change — one slot (the fastest a station acts on new
    // channel state) plus the shortest cross-tile coupled distance at
    // the speed of light — rounded down to a power of two (see
    // pow2_floor). A user-supplied delay is rounded the same way.
    double min_d = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t e = plan.row_offset[i]; e < plan.row_offset[i + 1];
           ++e) {
        const std::uint32_t j = plan.nbr[e];
        if (plan.shard_of[i] == plan.shard_of[j]) continue;
        const double d = std::max(
            mesh::distance(nodes[i].position, nodes[j].position), 0.5);
        min_d = std::min(min_d, d);
      }
    }
    plan.min_border_m = std::isfinite(min_d) ? min_d : 0.0;
    const double slot_s = mac::mac_timing(config.generation).slot_s;
    const double phys =
        options.border_delay_s > 0.0
            ? options.border_delay_s
            : slot_s + plan.min_border_m / kSpeedOfLight;
    plan.lookahead_s = pow2_floor(phys);
  }

  // Per-shard load estimates: nodes, flows, and neighbor-pair counts
  // (directed CSR edges, split into same-shard and cross-shard).
  plan.load.assign(plan.shards.size(), ShardLoad{});
  for (std::size_t s = 0; s < plan.shards.size(); ++s)
    plan.load[s].nodes = plan.shards[s].size();
  for (std::size_t i = 0; i < n; ++i) {
    ShardLoad& l = plan.load[plan.shard_of[i]];
    for (std::size_t e = plan.row_offset[i]; e < plan.row_offset[i + 1]; ++e) {
      if (plan.shard_of[plan.nbr[e]] == plan.shard_of[i])
        ++l.intra_edges;
      else
        ++l.border_edges;
    }
  }
  if (flows) {
    for (const Flow& f : *flows) {
      check(f.source < n && f.destination < n,
            "plan_shards: flow endpoint out of range");
      ++plan.load[plan.shard_of[f.source]].flows;
    }
  }
  return plan;
}

}  // namespace wlan::net

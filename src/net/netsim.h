// Event-driven multi-node 802.11 network simulator.
//
// Where mac::simulate_dcf models a single collision domain analytically
// (every station hears every other), this simulator places nodes on a
// plane and derives carrier sense, collisions, and capture from physics:
//
//  - physical carrier sense: a node defers while the total received
//    power at ITS location exceeds its CS threshold — distant stations
//    may not hear each other (hidden terminals emerge naturally);
//  - virtual carrier sense: NAV set from overheard RTS/CTS/DATA
//    durations; the optional RTS/CTS exchange protects long frames;
//  - reception: the worst-case SINR over the frame's airtime at the
//    addressed receiver (interference is tracked as transmissions start
//    and stop) either clears a hard threshold (legacy default) or, under
//    RxModel::kPerModel, feeds the EESM/PER link-to-system abstraction
//    and the frame survives a Bernoulli draw (net/errormodel.h);
//  - full DCF: DIFS deferral, slotted backoff with freeze/resume, binary
//    exponential CW, SIFS-spaced ACKs, retry limit.
//
// Every frame is a real byte-encoded MPDU (mac/frames.h), so delivered
// payloads survive an FCS check, not just a boolean.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "channel/pathloss.h"
#include "common/rng.h"
#include "mac/timing.h"
#include "mesh/mesh.h"
#include "net/errormodel.h"
#include "obs/analyze/airtime.h"
#include "obs/analyze/lifecycle.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace wlan::net {

/// A station in the network.
struct NodeConfig {
  mesh::Point position;
  double tx_power_dbm = 17.0;
  double cs_threshold_dbm = -82.0;  ///< physical carrier-sense level
  double noise_figure_db = 6.0;
};

/// A traffic flow. arrival_rate_pps == 0 means saturated (always a frame
/// queued); otherwise packets arrive as a Poisson process and queue.
struct Flow {
  std::size_t source;
  std::size_t destination;
  double arrival_rate_pps = 0.0;
};

/// How flow sources pick their data rate.
enum class RateControlMode {
  kFixed,  ///< every data frame at NetworkConfig::data_rate_mbps
  kArf,    ///< per-station ARF over the full OFDM ladder (requires the
           ///< PER error model and the OFDM generation; data_rate_mbps
           ///< is then ignored)
};

struct NetworkConfig {
  channel::PathLossModel pathloss;
  mac::PhyGeneration generation = mac::PhyGeneration::kOfdm;
  double data_rate_mbps = 24.0;
  double basic_rate_mbps = 6.0;
  std::size_t payload_bytes = 1000;
  bool rts_cts = false;
  unsigned retry_limit = 7;
  double sinr_threshold_db = 10.0;  ///< required SINR at data_rate
  double control_sinr_db = 4.0;     ///< required SINR for control frames
  double bandwidth_hz = 20e6;
  double duration_s = 1.0;

  /// Reception decision model (net/errormodel.h). The default keeps the
  /// legacy hard SINR threshold and consumes no extra RNG draws, so
  /// existing seeded runs stay bitwise identical. `kPerModel` swaps in
  /// the EESM/PER abstraction: per-link fading dictionaries, calibrated
  /// AWGN curves scaled to each frame's true size, Bernoulli reception.
  ErrorModelConfig error_model;
  /// Data-rate control for flow sources (kArf needs kPerModel + OFDM).
  RateControlMode rate_control = RateControlMode::kFixed;

  // Observability (both optional; null = disabled, zero overhead).
  /// Receives typed MAC/PHY events (TX_START, RX_OK, COLLISION,
  /// BACKOFF_FREEZE, NAV_SET, ...) with simulation timestamps.
  obs::TraceSink* trace = nullptr;
  /// All simulator counters and the per-flow delay histograms are
  /// registered here (names under "net.", plus the scheduler's "sim."
  /// metrics). When null an internal registry is used; either way
  /// `NetworkResult` is populated from the registry at the end of the
  /// run.
  obs::Registry* registry = nullptr;
  /// When true an `obs::AirtimeAccountant` consumes the event stream
  /// (independently of `trace`); the closed ledger lands in
  /// `NetworkResult::airtime` and is mirrored into the registry as
  /// "airtime." gauges/counters.
  bool airtime = false;
  /// Goodput-series window for the airtime ledger.
  double airtime_window_s = 10e-3;

  /// Frame-lifecycle observability (obs/analyze/lifecycle.h): per-frame
  /// delay attribution, windowed time series, and conservation checks.
  struct LifecycleOptions {
    /// Master switch; off = zero overhead (the trace fan-out is never
    /// entered). On, a FrameLedger and TimeSeriesSampler consume the
    /// event stream; the closed books land in NetworkResult::lifecycle
    /// and the delay/component histograms in the registry.
    bool enabled = false;
    /// Also run the InvariantAuditor (conservation laws + flight
    /// recorder); only meaningful with `enabled`.
    bool audit = true;
    /// Time-series window.
    double sample_window_s = 10e-3;
    /// Last-N events kept for the breach post-mortem.
    std::size_t flight_recorder_capacity = 256;
    /// On breach the flight-recorder JSON is written here ("" keeps it
    /// only in NetworkResult::lifecycle.flight_recorder_json).
    std::string flight_recorder_path;
    /// Delay/component histogram binning (log bins, seconds).
    double hist_lo_s = 1e-6;
    double hist_hi_s = 100.0;
    std::size_t hist_bins = 64;
  };
  LifecycleOptions lifecycle;
};

struct FlowStats {
  std::uint64_t delivered = 0;
  std::uint64_t attempts = 0;
  std::uint64_t retries = 0;
  std::uint64_t drops = 0;
  double throughput_mbps = 0.0;
  /// Arrival -> delivery, Poisson flows only (0 for saturated flows).
  double mean_delay_s = 0.0;
  /// Attempt-weighted mean PHY data rate; equals the configured rate
  /// under fixed rate control, tracks the ARF ladder otherwise.
  double mean_data_rate_mbps = 0.0;
};

struct NetworkResult {
  std::vector<FlowStats> flows;
  std::uint64_t total_delivered = 0;
  double aggregate_throughput_mbps = 0.0;
  std::uint64_t data_tx_count = 0;
  std::uint64_t data_failures = 0;  ///< data frames that missed their ACK
  std::uint64_t rts_tx_count = 0;
  std::uint64_t rts_failures = 0;   ///< RTS frames that missed their CTS
  std::uint64_t simultaneous_starts = 0;  ///< same-slot collisions observed
  /// Airtime ledger (populated only when NetworkConfig::airtime is set).
  obs::AirtimeReport airtime;
  /// Frame-lifecycle books (populated only when
  /// NetworkConfig::lifecycle.enabled is set).
  struct LifecycleResult {
    obs::LifecycleReport ledger;
    obs::LifecycleSeries series;
    std::uint64_t breaches = 0;  ///< invariant-auditor breach count
    std::vector<std::string> breach_messages;
    /// Post-mortem JSON document; empty unless a breach occurred.
    std::string flight_recorder_json;
  };
  LifecycleResult lifecycle;
  /// Border-exchange bookkeeping (populated only by border-mode runs of
  /// `simulate_network_sharded`; see net/shard.h).
  struct BorderStats {
    std::size_t tiles = 0;        ///< spatial shards run in lockstep
    std::size_t epochs = 0;       ///< lockstep rounds actually executed
    std::uint64_t messages = 0;   ///< border messages routed (deterministic)
    double lookahead_s = 0.0;     ///< epoch length used
    // Wall-clock epoch telemetry — NOT deterministic; never compare
    // across runs or fold into gated metrics.
    double wall_s = 0.0;          ///< total time inside epoch barriers
    double utilization = 0.0;     ///< busy / (wall * lanes), 0..1
    double imbalance = 0.0;       ///< per-round max/mean shard busy
    double setup_s = 0.0;         ///< engine construction (parallel)
    double finalize_s = 0.0;      ///< per-tile finalize (parallel)
    double merge_s = 0.0;         ///< serial shard-order merge
    double busy_s = 0.0;          ///< summed per-tile epoch busy time
    /// Summed per-round slowest-tile times: the lockstep schedule's
    /// critical path. busy_s / critical_path_s is the speedup an
    /// unlimited-core host could extract from this schedule.
    double critical_path_s = 0.0;
  };
  BorderStats border;
  /// Fraction of *data* frames lost — the expensive failures; RTS losses
  /// cost only a 20-byte frame.
  double data_failure_rate() const {
    return data_tx_count
               ? static_cast<double>(data_failures) /
                     static_cast<double>(data_tx_count)
               : 0.0;
  }

  /// Jain's fairness index over per-flow throughputs: 1 = perfectly
  /// fair, 1/n = one flow starves all others.
  double jain_fairness() const {
    double sum = 0.0;
    double sum_sq = 0.0;
    for (const FlowStats& f : flows) {
      sum += f.throughput_mbps;
      sum_sq += f.throughput_mbps * f.throughput_mbps;
    }
    if (sum_sq <= 0.0) return 1.0;
    return sum * sum / (static_cast<double>(flows.size()) * sum_sq);
  }
};

/// Runs the network. Node indices in flows refer to `nodes`.
NetworkResult simulate_network(const NetworkConfig& config,
                               const std::vector<NodeConfig>& nodes,
                               const std::vector<Flow>& flows, Rng& rng);

/// Knobs for `simulate_network_batch`.
struct BatchOptions {
  /// Root of the per-run seed derivation (run i runs under
  /// par::derive_seed(root_seed, i, 0)); the batch is a pure function
  /// of this root and `n_runs`, bitwise identical for any thread count.
  std::uint64_t root_seed = 0x9E3779B97F4A7C15ull;
  /// Worker lanes; 0 = the process default pool (see --jobs).
  unsigned jobs = 0;
  /// Optional: each run's private metrics registry is merged here in
  /// run order after all runs finish, so the merged snapshot is also
  /// schedule-independent.
  obs::Registry* registry = nullptr;
};

/// Runs `n_runs` independent replications of the same network on the
/// worker pool, one derived Rng per run. `config.registry` is ignored
/// (each run gets a private registry; see BatchOptions::registry); a
/// non-null `config.trace` is shared by all runs through a
/// SynchronizedTraceSink, so events from concurrent runs interleave
/// arbitrarily but the sink is never raced. Results come back in run
/// order.
std::vector<NetworkResult> simulate_network_batch(
    const NetworkConfig& config, const std::vector<NodeConfig>& nodes,
    const std::vector<Flow>& flows, std::size_t n_runs,
    const BatchOptions& options = {});

/// Convenience topology: the classic hidden-terminal triangle — two
/// saturated senders equidistant from a middle receiver but out of
/// carrier-sense range of each other.
struct HiddenTerminalSetup {
  std::vector<NodeConfig> nodes;  ///< 0 and 1 send, 2 receives
  std::vector<Flow> flows;
};
HiddenTerminalSetup make_hidden_terminal_setup(double sender_spacing_m);

}  // namespace wlan::net

#include "net/netsim.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <numeric>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/units.h"
#include "mac/frames.h"
#include "mac/rate_adapt.h"
#include "net/shard.h"
#include "obs/perf.h"
#include "par/montecarlo.h"
#include "par/pool.h"
#include "phy/ofdm.h"
#include "sim/scheduler.h"
#include "sim/stats.h"

namespace wlan::net {
namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
constexpr std::uint32_t kNil = 0xFFFFFFFFu;

const char* frame_name(mac::FrameType kind) {
  switch (kind) {
    case mac::FrameType::kData: return "DATA";
    case mac::FrameType::kAck: return "ACK";
    case mac::FrameType::kRts: return "RTS";
    case mac::FrameType::kCts: return "CTS";
    case mac::FrameType::kBeacon: return "BEACON";
  }
  return "?";
}

struct Transmission {
  std::size_t id = 0;
  std::size_t tx_node = kNone;  // local (shard) index
  std::size_t dest = kNone;     // addressed node (kNone for none)
  mac::FrameType kind = mac::FrameType::kData;
  std::size_t flow = kNone;    // local flow index
  std::size_t rate_index = 0;  // data-rate ladder index (kData only)
  double start_s = 0.0;
  double end_s = 0.0;
  double nav_until_s = 0.0;  // what the duration field promises
  // Reception tracking at the addressed node.
  double current_interference_w = 0.0;
  double worst_interference_w = 0.0;
  bool rx_was_transmitting = false;
  // Slot-arena bookkeeping: insertion-order intrusive list, so walks
  // see transmissions oldest-first and teardown is O(1) by slot handle.
  bool in_use = false;
  std::uint32_t prev = kNil;
  std::uint32_t next = kNil;
};

enum class WaitKind { kNone, kCts, kAck };

// ---- border exchange (conservative time) ----
//
// Zero propagation delay makes the true lookahead of this model zero,
// so border mode *defines* cross-tile influence — ambient power, NAV,
// interference on ongoing receptions — to act exactly `delay_s` (the
// plan's lookahead) after the transmission event that caused it, while
// intra-tile influence stays immediate. That uniform delay is part of
// the model's semantics, not an approximation knob: the fused reference
// (one engine over every tile, same delayed records) and the per-tile
// lockstep run implement the *same* model and agree bitwise.

/// One transmission's influence on one neighboring tile. Emitted at TX
/// start (the end time is already determined then), routed between
/// epochs, expanded by the receiver into a start record applied at
/// `start_s + delay` and an end record at `(start_s + duration_s) +
/// delay` — the identical floating-point expressions the fused engine
/// evaluates, so both modes schedule the identical apply times.
struct BorderMsg {
  std::uint32_t origin = 0;       // global node id of the transmitter
  std::uint32_t target_tile = 0;  // shard the influence lands in
  double start_s = 0.0;
  double duration_s = 0.0;
  double nav_until_s = 0.0;
};

/// How an Engine participates in border exchange (all defaults = the
/// legacy component-sharded behavior, untouched).
struct BorderMode {
  bool enabled = false;  ///< delayed cross-tile influence semantics
  bool fused = false;    ///< one engine simulates every tile (reference)
  double delay_s = 0.0;  ///< = ShardPlan::lookahead_s
  /// Root for the per-entity RNG streams border mode uses instead of
  /// the shared sequential Rng (per-node MAC backoff, per-node
  /// reception, per-flow arrivals/fading, per-pair shadowing) so fused
  /// and per-tile runs consume identical randomness.
  std::uint64_t root_seed = 0;
};

/// Subtracts an interferer's power from a running sum. Incremental
/// add/subtract leaves rounding residues, so the result can dip below
/// zero legitimately — but only by an amount set by machine epsilon and
/// the scales involved: relative to the term just removed, or to the
/// sum's running peak (a 1e-30 W remote signal folded into a 1e-6 W sum
/// is absorbed entirely by rounding, so removing it can undershoot by
/// ~eps * peak, far more than any multiple of the term itself).
/// Anything beyond that slack means double-subtraction — a bookkeeping
/// bug — and aborts; the legitimate residue clamps to exactly zero.
void subtract_clamped(double& sum_w, double term_w, double peak_w,
                      const char* what) {
  sum_w -= term_w;
  if (sum_w < 0.0) {
    check(sum_w >= -(1e-9 * term_w + 1e-12 * peak_w), what);
    sum_w = 0.0;
  }
}

/// One shard's simulation: a self-contained event engine over the
/// shard's member nodes, indexed locally (0..n-1). The monolithic
/// `simulate_network` runs the same engine on the single shard of an
/// unbounded plan, so sharded and monolithic execution share every
/// instruction of the hot path — shard-vs-monolith equivalence is by
/// construction, not by parallel maintenance of two code paths.
///
/// Station state is structure-of-arrays: the medium walk touches
/// transmitting/nav/ambient/busy_prev for a handful of neighbors per
/// event, and parallel arrays keep those lines dense instead of
/// striding over cold per-station protocol state.
class Engine {
 public:
  /// A pending remote-influence record (border mode). Declared up top so
  /// member-function parameter lists can name it.
  struct InfluenceRec {
    std::uint32_t origin;     // global node id of the transmitter
    std::uint32_t tile;       // target tile (sort key; fused spans many)
    std::uint8_t kind;        // 0 = start, 1 = end
    double nav_until_s;       // end records carry the duration promise
  };

  Engine(const NetworkConfig& config, const std::vector<NodeConfig>& nodes,
         const std::vector<Flow>& flows, const ShardPlan& plan,
         std::size_t shard, Rng& rng, obs::Registry* registry,
         obs::TraceSink* trace, std::uint64_t frame_id_base,
         const BorderMode& border = {})
      : config_(config),
        rng_(rng),
        frame_id_base_(frame_id_base),
        border_(border) {
    timing_ = mac::mac_timing(config.generation);
    per_model_ = config.error_model.model == RxModel::kPerModel;
    n_tiles_ = plan.shards.size();
    // The fused border reference simulates every tile in one engine;
    // everything else runs the members of its own shard.
    std::vector<std::uint32_t> fused_members;
    if (border_.enabled && border_.fused) {
      fused_members.resize(nodes.size());
      std::iota(fused_members.begin(), fused_members.end(), 0u);
    }
    const std::vector<std::uint32_t>& members =
        border_.enabled && border_.fused ? fused_members : plan.shards[shard];
    n_ = members.size();
    node_id_.assign(members.begin(), members.end());
    std::vector<std::uint32_t> g2l(nodes.size(), kNil);
    for (std::size_t l = 0; l < n_; ++l)
      g2l[members[l]] = static_cast<std::uint32_t>(l);

    noise_w_.resize(n_);
    cs_w_.resize(n_);
    for (std::size_t l = 0; l < n_; ++l) {
      const NodeConfig& node = nodes[node_id_[l]];
      noise_w_[l] = dbm_to_watt(
          thermal_noise_dbm(config.bandwidth_hz, node.noise_figure_db));
      cs_w_[l] = dbm_to_watt(node.cs_threshold_dbm);
    }

    if (!border_.enabled) {
      // Neighbor CSR restricted to the shard, with deterministic
      // received powers per edge — the sparse replacement for the dense
      // gain matrix. A member's plan row stays inside the component by
      // definition, so every neighbor has a local index.
      row_off_.assign(n_ + 1, 0);
      std::size_t edges = 0;
      for (std::size_t l = 0; l < n_; ++l) {
        row_off_[l] = edges;
        edges += plan.degree(node_id_[l]);
      }
      row_off_[n_] = edges;
      row_nbr_.resize(edges);
      row_gain_.resize(edges);
      for (std::size_t l = 0; l < n_; ++l) {
        const std::size_t g = node_id_[l];
        std::size_t out = row_off_[l];
        for (std::size_t e = plan.row_offset[g]; e < plan.row_offset[g + 1];
             ++e, ++out) {
          const std::uint32_t nbr_g = plan.nbr[e];
          const std::uint32_t nbr_l = g2l[nbr_g];
          check(nbr_l != kNil, "shard plan row escapes its component");
          row_nbr_[out] = nbr_l;
          const double d = std::max(
              mesh::distance(nodes[g].position, nodes[nbr_g].position), 0.5);
          row_gain_[out] = dbm_to_watt(nodes[g].tx_power_dbm -
                                       config.pathloss.path_loss_db(d));
        }
      }
      if (per_model_ && config.error_model.shadowing_sigma_db > 0.0) {
        // Log-normal shadowing: one draw per coupled unordered pair, in
        // ascending (i, j) order, applied to both directions (large-scale
        // fading is reciprocal). On the unbounded plan every pair is
        // coupled, so this is the legacy all-pairs draw sequence.
        for (std::size_t l = 0; l < n_; ++l) {
          for (std::size_t e = row_off_[l]; e < row_off_[l + 1]; ++e) {
            const std::uint32_t m = row_nbr_[e];
            if (m <= l) continue;
            const double f = db_to_lin(
                -rng.gaussian(0.0, config.error_model.shadowing_sigma_db));
            row_gain_[e] *= f;
            row_gain_[edge_index(m, static_cast<std::uint32_t>(l))] *= f;
          }
        }
      }
    } else {
      // Border mode: the local CSR keeps only same-tile edges, so
      // rx_power_w is exactly zero across tiles in every engine —
      // cross-tile power arrives solely through delayed influence
      // records, built from the cross tables below. Shadowing factors
      // come from per-pair derived streams (keyed by global ids) so the
      // fused reference and every per-tile engine compute the identical
      // factor without a shared draw sequence.
      const std::uint64_t shadow_root =
          par::derive_seed(border_.root_seed, 4, 0);
      const bool shadowed =
          per_model_ && config.error_model.shadowing_sigma_db > 0.0;
      auto pair_factor = [&](std::uint32_t a, std::uint32_t b) {
        if (!shadowed) return 1.0;
        if (b < a) std::swap(a, b);
        Rng pr(par::derive_seed(shadow_root, a, b));
        return db_to_lin(
            -pr.gaussian(0.0, config.error_model.shadowing_sigma_db));
      };
      auto gain_w = [&](std::uint32_t from_g, std::uint32_t to_g) {
        const double d = std::max(
            mesh::distance(nodes[from_g].position, nodes[to_g].position),
            0.5);
        return dbm_to_watt(nodes[from_g].tx_power_dbm -
                           config.pathloss.path_loss_db(d)) *
               pair_factor(from_g, to_g);
      };
      row_off_.assign(n_ + 1, 0);
      out_off_.assign(n_ + 1, 0);
      std::unordered_map<std::uint64_t,
                         std::vector<std::pair<std::uint32_t, double>>>
          inbound_rows;
      std::vector<std::uint32_t> out_scratch;
      for (std::size_t l = 0; l < n_; ++l) {
        row_off_[l] = row_nbr_.size();
        out_off_[l] = out_tile_.size();
        const std::size_t g = node_id_[l];
        const std::uint32_t my_tile = plan.shard_of[g];
        out_scratch.clear();
        for (std::size_t e = plan.row_offset[g]; e < plan.row_offset[g + 1];
             ++e) {
          const std::uint32_t nbr_g = plan.nbr[e];
          const std::uint32_t nbr_tile = plan.shard_of[nbr_g];
          if (nbr_tile == my_tile) {
            const std::uint32_t nbr_l = g2l[nbr_g];
            check(nbr_l != kNil, "same-tile neighbor missing locally");
            row_nbr_.push_back(nbr_l);
            row_gain_.push_back(gain_w(static_cast<std::uint32_t>(g), nbr_g));
          } else {
            // Outbound: l's transmissions influence nbr_tile. Inbound:
            // nbr_g's transmissions deposit power at l (ascending l per
            // origin because the outer loop ascends).
            out_scratch.push_back(nbr_tile);
            inbound_rows[static_cast<std::uint64_t>(nbr_g) * n_tiles_ +
                         my_tile]
                .emplace_back(static_cast<std::uint32_t>(l),
                              gain_w(nbr_g, static_cast<std::uint32_t>(g)));
          }
        }
        std::sort(out_scratch.begin(), out_scratch.end());
        out_scratch.erase(
            std::unique(out_scratch.begin(), out_scratch.end()),
            out_scratch.end());
        out_tile_.insert(out_tile_.end(), out_scratch.begin(),
                         out_scratch.end());
      }
      row_off_[n_] = row_nbr_.size();
      out_off_[n_] = out_tile_.size();
      inbound_flat_.reserve(inbound_rows.size());
      for (auto& [key, row] : inbound_rows) {
        inbound_[key] = Span{inbound_flat_.size(), row.size()};
        inbound_flat_.insert(inbound_flat_.end(), row.begin(), row.end());
      }
      // Per-node RNG streams, keyed by global id (see BorderMode).
      mac_rng_.reserve(n_);
      rx_rng_.reserve(n_);
      for (std::size_t l = 0; l < n_; ++l) {
        mac_rng_.emplace_back(
            par::derive_seed(border_.root_seed, 1, node_id_[l]));
        rx_rng_.emplace_back(
            par::derive_seed(border_.root_seed, 2, node_id_[l]));
      }
    }

    // Station state (SoA) and the shard's flows, ascending by global
    // flow index so local order is a subsequence of the global order.
    flow_of_.assign(n_, kNone);
    dest_of_.assign(n_, kNone);
    saturated_.assign(n_, 1);
    queue_.resize(n_);
    cw_.assign(n_, timing_.cw_min);
    retries_count_.assign(n_, 0);
    slots_remaining_.assign(n_, 0);
    counting_.assign(n_, 0);
    count_start_s_.assign(n_, 0.0);
    timer_version_.assign(n_, 0);
    busy_prev_.assign(n_, 0);
    nav_until_.assign(n_, 0.0);
    nav_armed_.assign(n_, 0);
    ambient_w_.assign(n_, 0.0);
    ambient_peak_w_.assign(n_, 0.0);
    transmitting_.assign(n_, 0);
    waiting_.assign(n_, WaitKind::kNone);
    wait_version_.assign(n_, 0);
    sequence_.assign(n_, 0);
    rate_index_.assign(n_, 0);
    arf_.resize(n_);
    for (std::size_t f = 0; f < flows.size(); ++f) {
      const std::uint32_t src = g2l[flows[f].source];
      if (src == kNil) continue;
      const std::uint32_t dst = g2l[flows[f].destination];
      check(dst != kNil, "flow endpoints fall in different shards");
      check(flow_of_[src] == kNone, "each node may source at most one flow");
      const std::size_t lf = flow_id_.size();
      flow_id_.push_back(f);
      flow_src_.push_back(src);
      arrival_rate_.push_back(flows[f].arrival_rate_pps);
      flow_of_[src] = lf;
      dest_of_[src] = dst;
      cw_[src] = timing_.cw_min;
      slots_remaining_[src] = draw_backoff(src);
      saturated_[src] = flows[f].arrival_rate_pps <= 0.0 ? 1 : 0;
    }
    n_flows_ = flow_id_.size();
    result_.flows.resize(n_flows_);
    if (border_.enabled) {
      arrival_rng_.reserve(n_flows_);
      for (std::size_t f = 0; f < n_flows_; ++f) {
        arrival_rng_.emplace_back(
            par::derive_seed(border_.root_seed, 3, flow_id_[f]));
      }
    }

    // All counters live in a metrics registry (the caller's, if given);
    // NetworkResult is populated from it after the run. Per-flow labels
    // carry GLOBAL flow ids, so shard registries hold disjoint per-flow
    // instruments and merge into the same names a monolithic run uses.
    registry_ = registry ? registry : &local_registry_;
    trace_ = trace;
    if (config.airtime) {
      obs::AirtimeAccountant::Config ac;
      ac.n_nodes = n_;
      ac.n_flows = n_flows_;
      ac.window_s = config.airtime_window_s;
      ac.payload_bits = static_cast<double>(config.payload_bytes) * 8.0;
      ac.node_ids = node_id_;
      ac.flow_ids = flow_id_;
      airtime_ = std::make_unique<obs::AirtimeAccountant>(ac);
    }
    if (config.lifecycle.enabled) {
      obs::FrameLedger::Config lc;
      lc.n_flows = n_flows_;
      lc.hist_lo = config.lifecycle.hist_lo_s;
      lc.hist_hi = config.lifecycle.hist_hi_s;
      lc.hist_bins = config.lifecycle.hist_bins;
      lc.registry = registry_;
      lc.flow_ids = flow_id_;
      ledger_ = std::make_unique<obs::FrameLedger>(lc);
      obs::TimeSeriesSampler::Config sc;
      sc.n_flows = n_flows_;
      sc.window_s = config.lifecycle.sample_window_s;
      sc.payload_bits = static_cast<double>(config.payload_bytes) * 8.0;
      sampler_ = std::make_unique<obs::TimeSeriesSampler>(sc);
      if (config.lifecycle.audit) {
        obs::InvariantAuditor::Config auc;
        auc.n_nodes = n_;
        auc.n_flows = n_flows_;
        auc.flight_recorder_capacity =
            config.lifecycle.flight_recorder_capacity;
        auc.dump_path = config.lifecycle.flight_recorder_path;
        if (!auc.dump_path.empty() && plan.shards.size() > 1)
          auc.dump_path += ".shard" + std::to_string(shard);
        auditor_ = std::make_unique<obs::InvariantAuditor>(auc);
        // Created up front so every shard registry has the same entries.
        breaches_counter_ = &registry_->counter("lifecycle.breaches");
      }
    }
    sched_.bind_metrics(*registry_);
    data_tx_ = &registry_->counter("net.data_tx");
    data_failures_ = &registry_->counter("net.data_failures");
    rts_tx_ = &registry_->counter("net.rts_tx");
    rts_failures_ = &registry_->counter("net.rts_failures");
    simultaneous_starts_ = &registry_->counter("net.simultaneous_starts");
    if (border_.enabled) {
      // One count per (transmission, influenced tile); emitted at the
      // same TX-start instants in fused and per-tile runs, so totals
      // agree across modes and snapshots agree across --jobs.
      border_msgs_ = &registry_->counter("net.border.msgs");
    }
    for (std::size_t f = 0; f < n_flows_; ++f) {
      const std::vector<obs::Label> label{
          {"flow", std::to_string(flow_id_[f])}};
      delivered_.push_back(&registry_->counter("net.delivered", label));
      attempts_.push_back(&registry_->counter("net.attempts", label));
      retries_.push_back(&registry_->counter("net.retries", label));
      drops_.push_back(&registry_->counter("net.drops", label));
      // Queueing delays: 1 us .. 100 s, 8 bins/decade.
      delay_hist_.push_back(
          &registry_->histogram("net.flow_delay_s", 1e-6, 100.0, 64, label));
    }

    // Data-rate ladder: one fixed rate, or the eight OFDM rates for ARF.
    if (config.rate_control == RateControlMode::kArf) {
      check(per_model_, "ARF rate control requires the PER error model");
      check(config.generation == mac::PhyGeneration::kOfdm,
            "ARF rate control is implemented for the OFDM generation");
      for (std::size_t i = 0; i < 8; ++i) {
        data_rates_.push_back(
            phy::ofdm_mcs_info(static_cast<phy::OfdmMcs>(i)).data_rate_mbps);
      }
      for (std::size_t f = 0; f < n_flows_; ++f) {
        const std::uint32_t src = flow_src_[f];
        arf_[src].emplace(data_rates_.size());
        rate_index_[src] = arf_[src]->current();
      }
    } else {
      data_rates_.push_back(config.data_rate_mbps);
    }

    // Frame airtimes.
    const std::size_t data_mpdu =
        mac::mpdu_size_bytes(mac::FrameType::kData, config.payload_bytes);
    for (const double rate : data_rates_) {
      t_data_by_rate_.push_back(
          mac::data_ppdu_duration_s(config.generation, rate, data_mpdu));
    }
    t_ack_ = mac::control_duration_s(config.generation, mac::kAckBytes,
                                     config.basic_rate_mbps);
    t_rts_ = mac::control_duration_s(config.generation, mac::kRtsBytes,
                                     config.basic_rate_mbps);
    t_cts_ = mac::control_duration_s(config.generation, mac::kCtsBytes,
                                     config.basic_rate_mbps);

    // PER-model link dictionaries, one per flow in flow order (then a
    // fixed draw order inside LinkPerModel), so a seeded run is a pure
    // function of its Rng. Control frames ride the basic rate; an HT
    // network still sends them as legacy OFDM.
    rate_stats_.resize(n_flows_);
    if (per_model_) {
      const mac::PhyGeneration ctrl_gen =
          config.generation == mac::PhyGeneration::kHt
              ? mac::PhyGeneration::kOfdm
              : config.generation;
      models_.reserve(n_flows_);
      const std::uint64_t flow_root =
          border_.enabled ? par::derive_seed(border_.root_seed, 5, 0) : 0;
      for (std::size_t f = 0; f < n_flows_; ++f) {
        // Border mode builds each flow's dictionaries from a per-flow
        // derived stream (keyed by global flow id) so fused and
        // per-tile engines freeze identical fading realizations.
        std::optional<Rng> flow_rng;
        if (border_.enabled)
          flow_rng.emplace(par::derive_seed(flow_root, flow_id_[f], 0));
        Rng& mrng = border_.enabled ? *flow_rng : rng_;
        FlowErrorModels m;
        m.data.reserve(data_rates_.size());
        for (const double rate : data_rates_) {
          m.data.emplace_back(config.generation, rate, data_mpdu,
                              config.error_model, mrng);
        }
        m.ctrl_fwd = LinkPerModel(ctrl_gen, config.basic_rate_mbps,
                                  mac::kRtsBytes, config.error_model, mrng);
        m.ctrl_rev = LinkPerModel(ctrl_gen, config.basic_rate_mbps,
                                  mac::kAckBytes, config.error_model, mrng);
        models_.push_back(std::move(m));
      }
    }
  }

  /// Global flow index per local flow (ascending).
  const std::vector<std::size_t>& flow_ids() const { return flow_id_; }
  /// Global node index per local node (ascending).
  const std::vector<std::size_t>& node_ids() const { return node_id_; }

  NetworkResult run() {
    {
      const obs::perf::ScopedSpan span("net.events");
      start();
      sched_.run_until(config_.duration_s);
    }
    return finalize();
  }

  // ---- epoch-driver surface (the lockstep border driver calls these;
  // run() composes the same phases for every single-engine mode) ----

  /// Seeds arrivals and initial countdowns without running the clock.
  void start() {
    // Poisson arrival processes for non-saturated flows.
    for (std::size_t f = 0; f < n_flows_; ++f) {
      if (arrival_rate_[f] > 0.0) {
        schedule_arrival(flow_src_[f], arrival_rate_[f]);
      }
    }
    for (std::size_t n = 0; n < n_; ++n) {
      maybe_start_countdown(n);
    }
  }

  /// Runs events strictly before `t` (one epoch's private horizon).
  std::size_t run_before(double t) { return sched_.run_before(t); }
  /// Runs the final, inclusive round up to `t`.
  std::size_t run_final(double t) { return sched_.run_until(t); }
  /// Earliest pending event (+inf when drained); for epoch skipping.
  double next_time() const { return sched_.next_time(); }
  /// Border messages generated since the last drain (epoch driver only).
  std::vector<BorderMsg>& outbox() { return outbox_; }

  /// Expands a routed border message into its start/end records. Called
  /// by the epoch driver between rounds; the apply times land at or
  /// after the next epoch boundary by the lookahead's power-of-two
  /// rounding guarantee, so they are always in this engine's future.
  void inject_border(const BorderMsg& msg) {
    add_influence(msg.start_s + border_.delay_s,
                  InfluenceRec{msg.origin, msg.target_tile, 0, 0.0});
    add_influence((msg.start_s + msg.duration_s) + border_.delay_s,
                  InfluenceRec{msg.origin, msg.target_tile, 1,
                               msg.nav_until_s});
  }

  NetworkResult finalize() {
    const obs::perf::ScopedSpan span("net.finalize");
    // Populate the result struct from the registry.
    result_.data_tx_count = data_tx_->value();
    result_.data_failures = data_failures_->value();
    result_.rts_tx_count = rts_tx_->value();
    result_.rts_failures = rts_failures_->value();
    result_.simultaneous_starts = simultaneous_starts_->value();
    for (std::size_t f = 0; f < n_flows_; ++f) {
      FlowStats& fs = result_.flows[f];
      fs.delivered = delivered_[f]->value();
      fs.attempts = attempts_[f]->value();
      fs.retries = retries_[f]->value();
      fs.drops = drops_[f]->value();
      fs.mean_delay_s = delay_hist_[f]->mean();
      fs.mean_data_rate_mbps =
          rate_stats_[f].attempts
              ? rate_stats_[f].rate_sum_mbps /
                    static_cast<double>(rate_stats_[f].attempts)
              : data_rates_.front();
      fs.throughput_mbps = static_cast<double>(fs.delivered) *
                           static_cast<double>(config_.payload_bytes) * 8.0 /
                           config_.duration_s / 1e6;
      result_.total_delivered += fs.delivered;
      result_.aggregate_throughput_mbps += fs.throughput_mbps;
    }
    if (airtime_) {
      result_.airtime = airtime_->finalize(config_.duration_s);
      airtime_->publish(*registry_);
    }
    if (ledger_) {
      result_.lifecycle.ledger = ledger_->finalize(config_.duration_s);
      ledger_->publish(*registry_);
      result_.lifecycle.series = sampler_->finalize(config_.duration_s);
      if (auditor_) {
        auditor_->audit(result_.lifecycle.ledger);
        if (airtime_) auditor_->audit(result_.airtime);
        result_.lifecycle.breaches = auditor_->finalize(config_.duration_s);
        result_.lifecycle.breach_messages = auditor_->breach_messages();
        result_.lifecycle.flight_recorder_json =
            auditor_->flight_recorder_json();
        breaches_counter_->add(result_.lifecycle.breaches);
      }
    }
    return result_;
  }

 private:
  /// One pointer test per site when all observers are off (the lifecycle
  /// sinks only exist when ledger_ does, so three tests cover them all).
  /// Internal analyzers index their arrays by the event's node/flow ids,
  /// so they receive LOCAL ids (they are sized for this shard); the
  /// user's trace sink gets a copy remapped to global ids.
  void emit(obs::EventType type, std::size_t node, std::size_t peer,
            std::size_t flow, double value, const char* detail = "",
            std::size_t frame = kNone) {
    if (!trace_ && !airtime_ && !ledger_) return;
    obs::TraceEvent e;
    e.time_s = sched_.now();
    e.type = type;
    e.node = node == kNone ? -1 : static_cast<std::int32_t>(node);
    e.peer = peer == kNone ? -1 : static_cast<std::int32_t>(peer);
    e.flow = flow == kNone ? -1 : static_cast<std::int32_t>(flow);
    e.frame = frame == kNone
                  ? -1
                  : static_cast<std::int64_t>(frame_id_base_ + frame);
    e.value = value;
    e.detail = detail;
    if (trace_) {
      obs::TraceEvent g = e;
      if (node != kNone) g.node = static_cast<std::int32_t>(node_id_[node]);
      if (peer != kNone) g.peer = static_cast<std::int32_t>(node_id_[peer]);
      if (flow != kNone) g.flow = static_cast<std::int32_t>(flow_id_[flow]);
      trace_->record(g);
    }
    if (airtime_) airtime_->record(e);
    if (ledger_) ledger_->record(e);
    if (sampler_) sampler_->record(e);
    if (auditor_) auditor_->record(e);
  }

  // Border mode replaces the single sequential Rng with per-entity
  // streams so the draw sequence does not depend on how nodes are split
  // into engines; legacy modes keep the shared rng_ untouched.
  Rng& mac_stream(std::size_t n) {
    return border_.enabled ? mac_rng_[n] : rng_;
  }
  Rng& rx_stream(std::size_t n) {
    return border_.enabled ? rx_rng_[n] : rng_;
  }
  Rng& arrival_stream(std::size_t n) {
    return border_.enabled ? arrival_rng_[flow_of_[n]] : rng_;
  }

  unsigned draw_backoff(std::size_t n) {
    return static_cast<unsigned>(mac_stream(n).uniform_int(cw_[n] + 1));
  }

  /// Data-frame airtime at station `n`'s current rate.
  double t_data(std::size_t n) const { return t_data_by_rate_[rate_index_[n]]; }

  void record_data_rate(std::size_t flow, std::size_t rate_index) {
    rate_stats_[flow].rate_sum_mbps += data_rates_[rate_index];
    ++rate_stats_[flow].attempts;
  }

  /// PER dictionary governing a transmission's reception. CTS and ACK
  /// frames are addressed to the station that sourced the exchange, so
  /// their flow is recovered from the destination.
  const LinkPerModel& model_for(const Transmission& t) const {
    switch (t.kind) {
      case mac::FrameType::kData:
        return models_[t.flow].data[t.rate_index];
      case mac::FrameType::kRts:
        return models_[t.flow].ctrl_fwd;
      case mac::FrameType::kCts:
      case mac::FrameType::kAck:
        return models_[flow_of_[t.dest]].ctrl_rev;
      case mac::FrameType::kBeacon:
        break;
    }
    check(false, "no PER model for this frame type");
    return models_.front().ctrl_rev;
  }

  /// Edge index of neighbor `to` in `from`'s row (rows are ascending);
  /// kNil when the pair is uncoupled.
  std::uint32_t edge_index(std::size_t from, std::uint32_t to) const {
    const auto begin = row_nbr_.begin() + row_off_[from];
    const auto end = row_nbr_.begin() + row_off_[from + 1];
    const auto it = std::lower_bound(begin, end, to);
    if (it == end || *it != to) return kNil;
    return static_cast<std::uint32_t>(it - row_nbr_.begin());
  }

  /// Received power at `to` from `from`; exactly zero for uncoupled
  /// pairs (the cutoff's definition of negligible).
  double rx_power_w(std::size_t from, std::size_t to) const {
    const std::uint32_t e = edge_index(from, static_cast<std::uint32_t>(to));
    return e == kNil ? 0.0 : row_gain_[e];
  }

  bool medium_busy(std::size_t n) const {
    if (transmitting_[n]) return true;
    if (sched_.now() < nav_until_[n]) return true;
    return ambient_w_[n] >= cs_w_[n];
  }

  // ---- contention ----

  // Freezes a counting station. Returns true when the station's counter
  // had already reached zero at this exact instant — i.e. it transmits
  // simultaneously with whatever made the medium busy (a real collision),
  // because it cannot sense a transmission that starts in the same slot.
  [[nodiscard]] bool freeze(std::size_t n) {
    if (!counting_[n]) return false;
    const double elapsed = sched_.now() - count_start_s_[n] - timing_.difs_s();
    if (elapsed > 0.0) {
      const auto used =
          static_cast<unsigned>(std::floor(elapsed / timing_.slot_s + 1e-9));
      slots_remaining_[n] -= std::min(used, slots_remaining_[n]);
    }
    counting_[n] = 0;
    ++timer_version_[n];
    emit(obs::EventType::kBackoffFreeze, n, kNone, flow_of_[n],
         static_cast<double>(slots_remaining_[n]));
    return slots_remaining_[n] == 0 && elapsed >= -1e-12;
  }

  bool has_traffic(std::size_t n) const {
    return flow_of_[n] != kNone && (saturated_[n] || !queue_[n].empty());
  }

  void schedule_arrival(std::size_t n, double rate_pps) {
    sched_.schedule(arrival_stream(n).exponential(1.0 / rate_pps),
                    [this, n, rate_pps] {
      queue_[n].push_back(sched_.now());
      emit(obs::EventType::kArrival, n, kNone, flow_of_[n],
           static_cast<double>(queue_[n].size()));
      maybe_start_countdown(n);
      schedule_arrival(n, rate_pps);
    });
  }

  void maybe_start_countdown(std::size_t n) {
    if (!has_traffic(n) || counting_[n] || transmitting_[n] ||
        waiting_[n] != WaitKind::kNone) {
      return;
    }
    if (medium_busy(n)) return;
    counting_[n] = 1;
    count_start_s_[n] = sched_.now();
    emit(obs::EventType::kBackoffStart, n, kNone, flow_of_[n],
         static_cast<double>(slots_remaining_[n]));
    const std::uint64_t version = ++timer_version_[n];
    const double delay =
        timing_.difs_s() +
        static_cast<double>(slots_remaining_[n]) * timing_.slot_s;
    sched_.schedule(delay, [this, n, version] {
      if (!counting_[n] || timer_version_[n] != version) return;
      counting_[n] = 0;
      slots_remaining_[n] = 0;
      begin_exchange(n);
    });
    // If the NAV is what ends later, it was already accounted: medium_busy
    // checked NAV; NAV can only start via frame ends which re-evaluate.
  }

  /// Re-evaluates the medium at `center` and its neighbors, ascending —
  /// the only stations whose carrier-sense inputs an event at `center`
  /// can have changed. On the unbounded plan this is every station, in
  /// the same order the dense engine scanned them.
  void update_medium_set(std::size_t center) {
    const std::size_t depth = fire_depth_++;
    if (fire_pool_.size() <= depth) fire_pool_.emplace_back();
    fire_pool_[depth].clear();
    bool center_done = false;
    for (std::size_t e = row_off_[center]; e < row_off_[center + 1]; ++e) {
      const std::size_t m = row_nbr_[e];
      if (!center_done && center < m) {
        visit_medium(center, depth);
        center_done = true;
      }
      visit_medium(m, depth);
    }
    if (!center_done) visit_medium(center, depth);
    // Stations whose counters expired in the very slot the medium went
    // busy transmit anyway — the collision DCF is built around.
    simultaneous_starts_->add(fire_pool_[depth].size());
    for (const std::uint32_t n : fire_pool_[depth]) {
      emit(obs::EventType::kCollision, n, kNone, flow_of_[n], 0.0);
      begin_exchange(n);
    }
    --fire_depth_;
  }

  void visit_medium(std::size_t n, std::size_t depth) {
    const bool busy = medium_busy(n);
    if (busy && !busy_prev_[n]) {
      if (freeze(n)) fire_pool_[depth].push_back(static_cast<std::uint32_t>(n));
    } else if (!busy) {
      // Idle (or just became idle): an eligible station may (re)start.
      maybe_start_countdown(n);
    }
    busy_prev_[n] = busy;
  }

  /// Single-node re-evaluation for NAV expiry: only `n`'s own medium
  /// view changed, so no neighbor walk is needed.
  void update_medium_node(std::size_t n) {
    const bool busy = medium_busy(n);
    const bool rising = busy && !busy_prev_[n];
    busy_prev_[n] = busy;
    if (rising) {
      if (freeze(n)) {
        simultaneous_starts_->add(1);
        emit(obs::EventType::kCollision, n, kNone, flow_of_[n], 0.0);
        begin_exchange(n);
      }
    } else if (!busy) {
      maybe_start_countdown(n);
    }
  }

  /// One pending NAV wakeup per node, however many NAV_SETs pile up: a
  /// later extension just lets the armed wakeup fire early and re-arm
  /// at the new expiry, instead of scheduling one event per NAV_SET
  /// (which grew the queue quadratically under dense overhearing).
  void arm_nav_wakeup(std::size_t n) {
    if (nav_armed_[n]) return;
    nav_armed_[n] = 1;
    sched_.schedule_at(nav_until_[n], [this, n] {
      nav_armed_[n] = 0;
      if (sched_.now() < nav_until_[n]) {
        arm_nav_wakeup(n);  // NAV was extended meanwhile
        return;
      }
      update_medium_node(n);
    });
  }

  // ---- border influence (border_.enabled only) ----

  /// Queues one influence unit per tile this transmission couples into.
  /// Fused: the start/end records go straight onto the local influence
  /// map. Per-tile: a BorderMsg goes to the outbox for the epoch driver
  /// to route; the receiver expands it into the same two records with
  /// the same floating-point apply times.
  void queue_influence(std::size_t n, double duration_s, double end_s,
                       double nav_until_s) {
    const std::size_t b = out_off_[n];
    const std::size_t e = out_off_[n + 1];
    if (b == e) return;
    const auto g = static_cast<std::uint32_t>(node_id_[n]);
    for (std::size_t i = b; i < e; ++i) {
      const std::uint32_t tile = out_tile_[i];
      border_msgs_->add();
      if (border_.fused) {
        add_influence(sched_.now() + border_.delay_s,
                      InfluenceRec{g, tile, 0, 0.0});
        add_influence(end_s + border_.delay_s,
                      InfluenceRec{g, tile, 1, nav_until_s});
      } else {
        outbox_.push_back(
            BorderMsg{g, tile, sched_.now(), duration_s, nav_until_s});
      }
    }
  }

  void add_influence(double w, const InfluenceRec& rec) {
    auto [it, inserted] = influence_.try_emplace(w);
    it->second.push_back(rec);
    // One urgent apply event per distinct time: influence lands before
    // any normal event at the same instant, in every execution mode.
    if (inserted) {
      sched_.schedule_at_urgent(w, [this, w] { apply_influence(w); });
    }
  }

  /// Applies every influence record stamped `w` in the canonical
  /// (origin, kind, tile) order — a strict total order, since a node's
  /// transmissions never share a start or an end instant — so ambient
  /// and interference sums see the identical operation sequence in the
  /// fused and per-tile runs. Affected nodes then re-evaluate their
  /// medium ascending, with the same fire discipline as
  /// update_medium_set.
  void apply_influence(double w) {
    const auto found = influence_.find(w);
    check(found != influence_.end(), "influence records lost");
    std::vector<InfluenceRec> recs = std::move(found->second);
    influence_.erase(found);
    std::sort(recs.begin(), recs.end(),
              [](const InfluenceRec& a, const InfluenceRec& b) {
                if (a.origin != b.origin) return a.origin < b.origin;
                if (a.kind != b.kind) return a.kind < b.kind;
                return a.tile < b.tile;
              });
    affected_.clear();
    for (const InfluenceRec& rec : recs) {
      const auto span = inbound_.find(
          static_cast<std::uint64_t>(rec.origin) * n_tiles_ + rec.tile);
      check(span != inbound_.end(), "border influence without inbound edges");
      const std::size_t off = span->second.off;
      const std::size_t len = span->second.len;
      if (rec.kind == 0) {
        for (std::size_t i = off; i < off + len; ++i) {
          const auto [m, gain] = inbound_flat_[i];
          ambient_w_[m] += gain;
          ambient_peak_w_[m] = std::max(ambient_peak_w_[m], ambient_w_[m]);
        }
      } else {
        for (std::size_t i = off; i < off + len; ++i) {
          const auto [m, gain] = inbound_flat_[i];
          subtract_clamped(ambient_w_[m], gain, ambient_peak_w_[m],
                           "remote ambient power went negative");
        }
      }
      // Ongoing receptions addressed inside the span gain or lose the
      // remote interference (insertion-order walk, like the local one).
      for (std::uint32_t s = head_; s != kNil; s = slots_[s].next) {
        Transmission& other = slots_[s];
        if (other.dest == kNone) continue;
        const double gain = span_gain(off, len, other.dest);
        if (gain <= 0.0) continue;
        if (rec.kind == 0) {
          other.current_interference_w += gain;
          other.worst_interference_w = std::max(other.worst_interference_w,
                                                other.current_interference_w);
        } else {
          subtract_clamped(other.current_interference_w, gain,
                           std::max(other.worst_interference_w,
                                    ambient_peak_w_[other.dest]),
                           "remote reception interference went negative");
        }
      }
      // Remote NAV from the transmission's duration field, applied at
      // the end record like the local overhear path. Already-expired
      // promises are skipped (deterministically — the record carries
      // the same values in both modes).
      if (rec.kind == 1 && rec.nav_until_s > w) {
        for (std::size_t i = off; i < off + len; ++i) {
          const auto [m, gain] = inbound_flat_[i];
          if (gain >= cs_w_[m] && rec.nav_until_s > nav_until_[m]) {
            nav_until_[m] = rec.nav_until_s;
            emit(obs::EventType::kNavSet, m, kNone, kNone, rec.nav_until_s,
                 "REMOTE");
            arm_nav_wakeup(m);
          }
        }
      }
      for (std::size_t i = off; i < off + len; ++i)
        affected_.push_back(inbound_flat_[i].first);
    }
    std::sort(affected_.begin(), affected_.end());
    affected_.erase(std::unique(affected_.begin(), affected_.end()),
                    affected_.end());
    const std::size_t depth = fire_depth_++;
    if (fire_pool_.size() <= depth) fire_pool_.emplace_back();
    fire_pool_[depth].clear();
    for (const std::uint32_t m : affected_) visit_medium(m, depth);
    simultaneous_starts_->add(fire_pool_[depth].size());
    for (const std::uint32_t m : fire_pool_[depth]) {
      emit(obs::EventType::kCollision, m, kNone, flow_of_[m], 0.0);
      begin_exchange(m);
    }
    --fire_depth_;
  }

  /// Binary search of an inbound span (ascending local node) for `dest`.
  double span_gain(std::size_t off, std::size_t len, std::size_t dest) const {
    const auto begin = inbound_flat_.begin() + static_cast<std::ptrdiff_t>(off);
    const auto end = begin + static_cast<std::ptrdiff_t>(len);
    const auto it = std::lower_bound(
        begin, end, dest,
        [](const std::pair<std::uint32_t, double>& p, std::size_t d) {
          return p.first < d;
        });
    if (it == end || it->first != dest) return 0.0;
    return it->second;
  }

  // ---- transmissions ----

  void start_transmission(std::size_t n, std::size_t dest,
                          mac::FrameType kind, std::size_t flow,
                          double duration_s, double nav_until_s) {
    transmitting_[n] = 1;
    Transmission t;
    t.id = next_id_++;
    t.tx_node = n;
    t.dest = dest;
    t.kind = kind;
    t.flow = flow;
    if (kind == mac::FrameType::kData) t.rate_index = rate_index_[n];
    t.start_s = sched_.now();
    t.end_s = sched_.now() + duration_s;
    t.nav_until_s = nav_until_s;
    if (dest != kNone) {
      // This frame's power is not yet in the ambient sums, so the
      // ambient at the destination is exactly the interference it will
      // see.
      t.current_interference_w = ambient_w_[dest];
      // A destination that is itself transmitting cannot receive.
      if (transmitting_[dest]) t.rx_was_transmitting = true;
      t.worst_interference_w = t.current_interference_w;
    }
    // This transmission interferes with every other ongoing reception.
    for (std::uint32_t s = head_; s != kNil; s = slots_[s].next) {
      Transmission& other = slots_[s];
      if (other.dest == kNone || other.dest == n) continue;
      other.current_interference_w += rx_power_w(n, other.dest);
      other.worst_interference_w =
          std::max(other.worst_interference_w, other.current_interference_w);
    }
    // And if any ongoing reception is addressed to us, it is now lost.
    for (std::uint32_t s = head_; s != kNil; s = slots_[s].next) {
      if (slots_[s].dest == n) slots_[s].rx_was_transmitting = true;
    }
    emit(obs::EventType::kTxStart, n, dest, flow, duration_s,
         frame_name(kind), t.id);
    if (border_.enabled) queue_influence(n, duration_s, t.end_s, nav_until_s);
    const std::size_t id = t.id;
    const std::uint32_t slot = push_active(t);
    // Fold this signal into the running ambient sums of every neighbor
    // (the peak calibrates the teardown clamp's rounding slack).
    for (std::size_t e = row_off_[n]; e < row_off_[n + 1]; ++e) {
      const std::size_t m = row_nbr_[e];
      ambient_w_[m] += row_gain_[e];
      ambient_peak_w_[m] = std::max(ambient_peak_w_[m], ambient_w_[m]);
    }
    update_medium_set(n);
    sched_.schedule(duration_s, [this, slot, id] {
      end_transmission(slot, id);
    });
  }

  void end_transmission(std::uint32_t slot, std::size_t id) {
    check(slot < slots_.size() && slots_[slot].in_use &&
              slots_[slot].id == id,
          "transmission bookkeeping lost");
    const Transmission t = slots_[slot];
    unlink(slot);
    transmitting_[t.tx_node] = 0;
    // Remove this signal from the neighbors' ambient sums and from
    // other ongoing receptions' interference.
    for (std::size_t e = row_off_[t.tx_node]; e < row_off_[t.tx_node + 1];
         ++e) {
      const std::size_t m = row_nbr_[e];
      subtract_clamped(ambient_w_[m], row_gain_[e], ambient_peak_w_[m],
                       "ambient power went negative");
    }
    for (std::uint32_t s = head_; s != kNil; s = slots_[s].next) {
      Transmission& other = slots_[s];
      if (other.dest == kNone || other.dest == t.tx_node) continue;
      const double g = rx_power_w(t.tx_node, other.dest);
      if (g > 0.0) {
        // The sum was seeded from a snapshot of the destination's
        // ambient sum, so it inherits that sum's rounding residue —
        // scaled by the ambient's historical peak, which can dwarf this
        // frame's own interference.
        subtract_clamped(other.current_interference_w, g,
                         std::max(other.worst_interference_w,
                                  ambient_peak_w_[other.dest]),
                         "reception interference went negative");
      }
    }

    emit(obs::EventType::kTxEnd, t.tx_node, t.dest, t.flow,
         t.end_s - t.start_s, frame_name(t.kind), t.id);

    // Reception outcome at the addressed node.
    bool delivered = false;
    double sinr_db = -std::numeric_limits<double>::infinity();
    if (t.dest != kNone && !t.rx_was_transmitting &&
        !transmitting_[t.dest]) {
      const double signal = rx_power_w(t.tx_node, t.dest);
      const double sinr =
          signal / (noise_w_[t.dest] + t.worst_interference_w);
      sinr_db = lin_to_db(sinr);
      if (per_model_) {
        // Preamble acquisition first: the PER curves model payload
        // decoding and scale with payload length, so on their own a
        // short control frame would ride out an equal-power collision.
        // Below the capture SINR the receiver never syncs and no RNG is
        // consumed.
        if (sinr_db < config_.error_model.preamble_capture_db) {
          delivered = false;
        } else {
          // Block fading per frame: pick a realization from the link's
          // dictionary, look up its PER at the worst-case SINR (the
          // table is already scaled to this frame type's PSDU size),
          // survive a Bernoulli draw.
          const LinkPerModel& model = model_for(t);
          Rng& rx_rng = rx_stream(t.dest);
          const auto realization = static_cast<std::size_t>(
              rx_rng.uniform_int(model.realizations()));
          delivered = !rx_rng.bernoulli(model.per(sinr_db, realization));
        }
      } else {
        const double required = t.kind == mac::FrameType::kData
                                    ? db_to_lin(config_.sinr_threshold_db)
                                    : db_to_lin(config_.control_sinr_db);
        delivered = sinr >= required;
      }
    }
    if (t.dest != kNone) {
      emit(delivered ? obs::EventType::kRxOk : obs::EventType::kRxFail,
           t.dest, t.tx_node, t.flow, sinr_db, frame_name(t.kind), t.id);
    }

    // Overhearing neighbors set their NAV from the duration field (a
    // non-neighbor's received power is below the cutoff, hence below
    // every carrier-sense threshold by construction).
    for (std::size_t e = row_off_[t.tx_node]; e < row_off_[t.tx_node + 1];
         ++e) {
      const std::size_t n = row_nbr_[e];
      if (n == t.dest) continue;
      if (row_gain_[e] >= cs_w_[n]) {
        if (t.nav_until_s > nav_until_[n]) {
          nav_until_[n] = t.nav_until_s;
          emit(obs::EventType::kNavSet, n, t.tx_node, kNone, t.nav_until_s,
               frame_name(t.kind));
          // Re-evaluate this node when its NAV expires (coalesced: at
          // most one pending wakeup per node).
          arm_nav_wakeup(n);
        }
      }
    }

    handle_frame_outcome(t, delivered);
    update_medium_set(t.tx_node);
  }

  std::uint32_t push_active(const Transmission& t) {
    std::uint32_t s;
    if (!free_.empty()) {
      s = free_.back();
      free_.pop_back();
      slots_[s] = t;
    } else {
      s = static_cast<std::uint32_t>(slots_.size());
      slots_.push_back(t);
    }
    Transmission& slot = slots_[s];
    slot.in_use = true;
    slot.prev = tail_;
    slot.next = kNil;
    if (tail_ != kNil) {
      slots_[tail_].next = s;
    } else {
      head_ = s;
    }
    tail_ = s;
    return s;
  }

  void unlink(std::uint32_t s) {
    Transmission& t = slots_[s];
    if (t.prev != kNil) {
      slots_[t.prev].next = t.next;
    } else {
      head_ = t.next;
    }
    if (t.next != kNil) {
      slots_[t.next].prev = t.prev;
    } else {
      tail_ = t.prev;
    }
    t.in_use = false;
    free_.push_back(s);
  }

  // ---- protocol ----

  void begin_exchange(std::size_t n) {
    const std::size_t flow = flow_of_[n];
    check(flow != kNone, "contention won by a node without traffic");
    attempts_[flow]->add();
    const double td = t_data(n);
    if (config_.rts_cts) {
      const double nav = sched_.now() + t_rts_ + 3.0 * timing_.sifs_s +
                         t_cts_ + td + t_ack_;
      rts_tx_->add();
      start_transmission(n, dest_of_[n], mac::FrameType::kRts, flow, t_rts_,
                         nav);
      arm_timeout(n, WaitKind::kCts,
                  t_rts_ + timing_.sifs_s + t_cts_ + timing_.slot_s);
    } else {
      const double nav = sched_.now() + td + timing_.sifs_s + t_ack_;
      data_tx_->add();
      record_data_rate(flow, rate_index_[n]);
      start_transmission(n, dest_of_[n], mac::FrameType::kData, flow, td,
                         nav);
      arm_timeout(n, WaitKind::kAck,
                  td + timing_.sifs_s + t_ack_ + timing_.slot_s);
    }
  }

  void arm_timeout(std::size_t n, WaitKind kind, double delay_s) {
    waiting_[n] = kind;
    const std::uint64_t version = ++wait_version_[n];
    sched_.schedule(delay_s, [this, n, version, kind] {
      if (wait_version_[n] != version || waiting_[n] == WaitKind::kNone)
        return;
      waiting_[n] = WaitKind::kNone;
      on_exchange_failed(n, kind);
    });
  }

  void on_exchange_failed(std::size_t n, WaitKind kind) {
    if (kind == WaitKind::kAck) {
      data_failures_->add();
      // Only a lost data frame is a rate-control signal; a missed CTS
      // says nothing about the data rate.
      if (arf_[n]) {
        arf_[n]->on_failure();
        rate_index_[n] = arf_[n]->current();
      }
    } else {
      rts_failures_->add();
    }
    const std::size_t flow = flow_of_[n];
    ++retries_count_[n];
    retries_[flow]->add();
    if (retries_count_[n] > config_.retry_limit) {
      drops_[flow]->add();
      emit(obs::EventType::kDrop, n, dest_of_[n], flow,
           static_cast<double>(retries_count_[n]));
      retries_count_[n] = 0;
      cw_[n] = timing_.cw_min;
      if (!saturated_[n] && !queue_[n].empty()) queue_[n].pop_front();
    } else {
      cw_[n] = std::min(2 * cw_[n] + 1, timing_.cw_max);
    }
    slots_remaining_[n] = draw_backoff(n);
    maybe_start_countdown(n);
  }

  void on_exchange_succeeded(std::size_t n) {
    if (arf_[n]) {
      arf_[n]->on_success();
      rate_index_[n] = arf_[n]->current();
    }
    const std::size_t flow = flow_of_[n];
    delivered_[flow]->add();
    emit(obs::EventType::kStateChange, n, dest_of_[n], flow, 0.0,
         "DELIVERED");
    if (!saturated_[n] && !queue_[n].empty()) {
      delay_hist_[flow]->record(sched_.now() - queue_[n].front());
      queue_[n].pop_front();
    }
    retries_count_[n] = 0;
    cw_[n] = timing_.cw_min;
    ++sequence_[n];
    slots_remaining_[n] = draw_backoff(n);  // next packet, if any
    maybe_start_countdown(n);
  }

  void handle_frame_outcome(const Transmission& t, bool delivered) {
    switch (t.kind) {
      case mac::FrameType::kRts: {
        if (!delivered) return;  // source's CTS timeout handles it
        // Destination answers CTS after SIFS.
        const std::size_t rx = t.dest;
        const std::size_t src = t.tx_node;
        const double nav = t.nav_until_s;
        sched_.schedule(timing_.sifs_s, [this, rx, src, nav] {
          start_transmission(rx, src, mac::FrameType::kCts, kNone, t_cts_,
                            nav);
        });
        break;
      }
      case mac::FrameType::kCts: {
        // The CTS is addressed to the data source; on reception it sends
        // the data frame after SIFS.
        const std::size_t src = t.dest;
        if (!delivered || waiting_[src] != WaitKind::kCts) return;
        waiting_[src] = WaitKind::kNone;
        ++wait_version_[src];
        const double nav = t.nav_until_s;
        sched_.schedule(timing_.sifs_s, [this, src, nav] {
          const double td = t_data(src);
          data_tx_->add();
          record_data_rate(flow_of_[src], rate_index_[src]);
          start_transmission(src, dest_of_[src], mac::FrameType::kData,
                             flow_of_[src], td, nav);
          arm_timeout(src, WaitKind::kAck,
                      td + timing_.sifs_s + t_ack_ + timing_.slot_s);
        });
        break;
      }
      case mac::FrameType::kData: {
        if (!delivered) return;  // ACK timeout at the source handles it
        const std::size_t rx = t.dest;
        const std::size_t src = t.tx_node;
        sched_.schedule(timing_.sifs_s, [this, rx, src] {
          start_transmission(rx, src, mac::FrameType::kAck, kNone, t_ack_,
                             sched_.now() + t_ack_);
        });
        break;
      }
      case mac::FrameType::kAck: {
        const std::size_t src = t.dest;
        if (!delivered || waiting_[src] != WaitKind::kAck) return;
        waiting_[src] = WaitKind::kNone;
        ++wait_version_[src];
        on_exchange_succeeded(src);
        break;
      }
      case mac::FrameType::kBeacon:
        break;
    }
  }

  NetworkConfig config_;
  Rng& rng_;
  std::uint64_t frame_id_base_ = 0;
  mac::MacTiming timing_{};
  sim::Scheduler sched_;
  std::size_t n_ = 0;        // shard size
  std::size_t n_flows_ = 0;  // flows sourced inside the shard
  std::vector<std::size_t> node_id_;  // local -> global node
  std::vector<std::size_t> flow_id_;  // local -> global flow
  std::vector<std::uint32_t> flow_src_;  // local flow -> local source
  std::vector<double> arrival_rate_;     // per local flow
  // Neighbor CSR with per-edge received power (W).
  std::vector<std::size_t> row_off_;
  std::vector<std::uint32_t> row_nbr_;
  std::vector<double> row_gain_;
  std::vector<double> noise_w_;
  std::vector<double> cs_w_;
  // Station state, structure-of-arrays.
  std::vector<std::size_t> flow_of_;
  std::vector<std::size_t> dest_of_;
  std::vector<std::uint8_t> saturated_;
  std::vector<std::deque<double>> queue_;
  std::vector<unsigned> cw_;
  std::vector<unsigned> retries_count_;
  std::vector<unsigned> slots_remaining_;
  std::vector<std::uint8_t> counting_;
  std::vector<double> count_start_s_;
  std::vector<std::uint64_t> timer_version_;
  std::vector<std::uint8_t> busy_prev_;
  std::vector<double> nav_until_;
  std::vector<std::uint8_t> nav_armed_;
  std::vector<double> ambient_w_;  // running sum of neighbor tx power
  std::vector<double> ambient_peak_w_;  // run max; clamp-slack scale
  std::vector<std::uint8_t> transmitting_;
  std::vector<WaitKind> waiting_;
  std::vector<std::uint64_t> wait_version_;
  std::vector<std::uint16_t> sequence_;
  std::vector<std::size_t> rate_index_;
  std::vector<std::optional<mac::ArfController>> arf_;
  // Active transmissions: slot arena + insertion-order intrusive list.
  std::vector<Transmission> slots_;
  std::vector<std::uint32_t> free_;
  std::uint32_t head_ = kNil;
  std::uint32_t tail_ = kNil;
  std::size_t next_id_ = 0;
  // Per-recursion-depth scratch for update_medium_set's fire list.
  std::vector<std::vector<std::uint32_t>> fire_pool_;
  std::size_t fire_depth_ = 0;
  // Observability: counters/histograms live in `*registry_`; trace may
  // be null.
  obs::Registry local_registry_;
  obs::Registry* registry_ = nullptr;
  obs::TraceSink* trace_ = nullptr;
  std::unique_ptr<obs::AirtimeAccountant> airtime_;
  std::unique_ptr<obs::FrameLedger> ledger_;
  std::unique_ptr<obs::TimeSeriesSampler> sampler_;
  std::unique_ptr<obs::InvariantAuditor> auditor_;
  obs::Counter* breaches_counter_ = nullptr;
  obs::Counter* data_tx_ = nullptr;
  obs::Counter* data_failures_ = nullptr;
  obs::Counter* rts_tx_ = nullptr;
  obs::Counter* rts_failures_ = nullptr;
  obs::Counter* simultaneous_starts_ = nullptr;
  std::vector<obs::Counter*> delivered_;
  std::vector<obs::Counter*> attempts_;
  std::vector<obs::Counter*> retries_;
  std::vector<obs::Counter*> drops_;
  std::vector<obs::Histogram*> delay_hist_;
  std::vector<double> data_rates_;      // ladder (1 entry when fixed)
  std::vector<double> t_data_by_rate_;  // airtime per ladder entry
  double t_ack_ = 0.0;
  double t_rts_ = 0.0;
  double t_cts_ = 0.0;
  // PER reception model (per_model_ only).
  bool per_model_ = false;
  struct FlowErrorModels {
    std::vector<LinkPerModel> data;  // source -> destination, per rate
    LinkPerModel ctrl_fwd;           // RTS, source -> destination
    LinkPerModel ctrl_rev;           // CTS/ACK, destination -> source
  };
  std::vector<FlowErrorModels> models_;
  struct RateStats {
    double rate_sum_mbps = 0.0;
    std::uint64_t attempts = 0;
  };
  std::vector<RateStats> rate_stats_;
  NetworkResult result_;
  // ---- border exchange (border_.enabled only; empty otherwise) ----
  BorderMode border_;
  std::size_t n_tiles_ = 0;
  struct Span {
    std::size_t off = 0;
    std::size_t len = 0;
  };
  /// (origin global id * n_tiles + target tile) -> span of
  /// (local node, received power W), ascending by local node.
  std::unordered_map<std::uint64_t, Span> inbound_;
  std::vector<std::pair<std::uint32_t, double>> inbound_flat_;
  /// Per local node: the tiles its transmissions influence (CSR).
  std::vector<std::size_t> out_off_;
  std::vector<std::uint32_t> out_tile_;
  /// Pending influence by apply time; one urgent event armed per key.
  std::map<double, std::vector<InfluenceRec>> influence_;
  std::vector<BorderMsg> outbox_;
  std::vector<std::uint32_t> affected_;  // apply-time scratch
  // Per-entity RNG streams (see BorderMode::root_seed).
  std::vector<Rng> mac_rng_;
  std::vector<Rng> rx_rng_;
  std::vector<Rng> arrival_rng_;
  obs::Counter* border_msgs_ = nullptr;
};

void validate_network(const std::vector<NodeConfig>& nodes,
                      const std::vector<Flow>& flows) {
  check(nodes.size() >= 2, "network needs at least two nodes");
  check(!flows.empty(), "network needs at least one flow");
  for (const Flow& f : flows) {
    check(f.source < nodes.size() && f.destination < nodes.size(),
          "flow endpoints out of range");
  }
}

/// Folds one shard's airtime ledger into the global report. Channel
/// seconds sum — the merged report describes `n_shards` independent
/// channels, so duration_s grows with each shard and the
/// idle+busy+collision partition still closes against it. Node and flow
/// entries land in their global slots.
void merge_airtime(obs::AirtimeReport& into, const obs::AirtimeReport& part,
                   const std::vector<std::size_t>& node_ids,
                   const std::vector<std::size_t>& flow_ids,
                   std::size_t n_nodes, std::size_t n_flows) {
  if (into.nodes.empty() && into.flows.empty()) {
    into.nodes.resize(n_nodes);
    into.flows.resize(n_flows);
    into.window_s = part.window_s;
  }
  into.duration_s += part.duration_s;
  into.idle_s += part.idle_s;
  into.busy_s += part.busy_s;
  into.collision_s += part.collision_s;
  for (std::size_t n = 0; n < part.nodes.size(); ++n)
    into.nodes[node_ids[n]] = part.nodes[n];
  for (std::size_t f = 0; f < part.flows.size(); ++f)
    into.flows[flow_ids[f]] = part.flows[f];
}

/// Folds one shard's lifecycle books into the global result: ledger
/// flows land in their global slots and totals sum; series windows sum
/// (collision_rate accumulates here and is averaged by the caller);
/// breach messages are prefixed with their shard.
void merge_lifecycle(NetworkResult::LifecycleResult& into,
                     const NetworkResult::LifecycleResult& part,
                     const std::vector<std::size_t>& flow_ids,
                     std::size_t n_flows, std::size_t shard) {
  obs::LifecycleReport& ledger = into.ledger;
  if (ledger.flows.empty()) ledger.flows.resize(n_flows);
  ledger.duration_s = std::max(ledger.duration_s, part.ledger.duration_s);
  for (std::size_t f = 0; f < part.ledger.flows.size(); ++f)
    ledger.flows[flow_ids[f]] = part.ledger.flows[f];
  ledger.total.accumulate(part.ledger.total);
  ledger.delivered += part.ledger.delivered;
  ledger.dropped += part.ledger.dropped;
  ledger.in_flight += part.ledger.in_flight;

  obs::LifecycleSeries& series = into.series;
  if (series.window_s == 0.0) series.window_s = part.series.window_s;
  const std::size_t n = part.series.t_s.size();
  if (series.t_s.size() < n) {
    series.t_s = part.series.t_s;
    series.goodput_mbps.resize(n, 0.0);
    series.collision_rate.resize(n, 0.0);
    series.in_flight.resize(n, 0.0);
  }
  for (std::size_t w = 0; w < n; ++w) {
    series.goodput_mbps[w] += part.series.goodput_mbps[w];
    series.collision_rate[w] += part.series.collision_rate[w];
    series.in_flight[w] += part.series.in_flight[w];
  }
  series.warmup_windows =
      std::max(series.warmup_windows, part.series.warmup_windows);

  into.breaches += part.breaches;
  for (const std::string& m : part.breach_messages)
    into.breach_messages.push_back("shard " + std::to_string(shard) + ": " +
                                   m);
  if (into.flight_recorder_json.empty())
    into.flight_recorder_json = part.flight_recorder_json;
}

/// One shard engine's complete output, ready for shard-order assembly.
struct ShardOutput {
  NetworkResult result;
  std::unique_ptr<obs::Registry> registry;
  std::vector<std::size_t> node_ids;
  std::vector<std::size_t> flow_ids;
};

/// Shard-order assembly shared by the component sweep and the border
/// driver: scalar sums, global slot placement for per-flow stats,
/// registry merge (merge order — not thread schedule — defines gauges
/// and instrument creation order).
NetworkResult merge_shard_outputs(const NetworkConfig& config,
                                  std::size_t n_nodes, std::size_t n_flows,
                                  const std::vector<ShardOutput>& outputs) {
  const std::size_t n_shards = outputs.size();
  NetworkResult total;
  total.flows.resize(n_flows);
  for (std::size_t s = 0; s < n_shards; ++s) {
    const ShardOutput& out = outputs[s];
    const NetworkResult& r = out.result;
    for (std::size_t i = 0; i < out.flow_ids.size(); ++i)
      total.flows[out.flow_ids[i]] = r.flows[i];
    total.total_delivered += r.total_delivered;
    total.data_tx_count += r.data_tx_count;
    total.data_failures += r.data_failures;
    total.rts_tx_count += r.rts_tx_count;
    total.rts_failures += r.rts_failures;
    total.simultaneous_starts += r.simultaneous_starts;
    if (config.airtime) {
      merge_airtime(total.airtime, r.airtime, out.node_ids, out.flow_ids,
                    n_nodes, n_flows);
    }
    if (config.lifecycle.enabled) {
      merge_lifecycle(total.lifecycle, r.lifecycle, out.flow_ids, n_flows, s);
    }
    if (config.registry) config.registry->merge(*out.registry);
  }
  // Summed in global flow order — the exact FP order a fused engine
  // over the same nodes uses, so border mode matches its reference
  // bitwise (per-shard partial sums would differ in the low bits).
  for (const FlowStats& fs : total.flows)
    total.aggregate_throughput_mbps += fs.throughput_mbps;
  if (config.lifecycle.enabled) {
    // collision_rate accumulated per-shard rates; report the mean. The
    // stationarity hint is recomputed over the merged goodput series.
    obs::LifecycleSeries& series = total.lifecycle.series;
    for (double& c : series.collision_rate)
      c /= static_cast<double>(n_shards);
    const std::size_t n = series.goodput_mbps.size();
    if (n >= 2) {
      const std::size_t half = n / 2;
      double first = 0.0;
      double second = 0.0;
      for (std::size_t w = 0; w < half; ++w) first += series.goodput_mbps[w];
      for (std::size_t w = half; w < n; ++w) second += series.goodput_mbps[w];
      first /= static_cast<double>(half);
      second /= static_cast<double>(n - half);
      series.stationarity_ratio = first > 0.0 ? second / first : 1.0;
    }
  }
  return total;
}

/// Conservative-time lockstep driver over coupled spatial tiles.
///
/// Per-tile engines each simulate their private horizon [t, t+L) — one
/// parallel_for call per round IS the epoch barrier — then the driver,
/// single-threaded, routes every outbox in ascending tile order into
/// the target engines' influence maps. L is the plan's lookahead:
/// influence stamped inside round k applies at or after boundary
/// (k+1)*L, so everything a round needs was already routed when it
/// starts, and the message order seen by any engine is a pure function
/// of the plan — bitwise identical at any jobs count, and identical to
/// the fused reference engine that queues the same records locally.
NetworkResult run_border_exchange(const NetworkConfig& config,
                                  const std::vector<NodeConfig>& nodes,
                                  const std::vector<Flow>& flows,
                                  const ShardPlan& plan,
                                  const ShardOptions& options,
                                  std::uint64_t root) {
  const std::size_t n_tiles = plan.shards.size();
  const double lookahead = plan.lookahead_s;
  check(lookahead > 0.0, "border plan carries no lookahead");

  std::optional<obs::SynchronizedTraceSink> synced;
  if (config.trace) synced.emplace(*config.trace);

  par::ThreadPool pool(options.jobs == 0 ? par::default_jobs()
                                         : options.jobs);
  const unsigned lanes = pool.size();

  BorderMode mode;
  mode.enabled = true;
  mode.delay_s = lookahead;
  mode.root_seed = root;

  // Border engines draw only from derived per-entity streams, so
  // construction commutes and can run on the pool. The per-engine Rngs
  // exist only to satisfy the constructor reference; never drawn.
  std::vector<Rng> shard_rngs;
  shard_rngs.reserve(n_tiles);
  for (std::size_t s = 0; s < n_tiles; ++s)
    shard_rngs.emplace_back(par::derive_seed(root, s, 0));
  std::vector<ShardOutput> outputs(n_tiles);
  std::vector<std::unique_ptr<Engine>> engines(n_tiles);
  const std::uint64_t setup0 = par::detail::monotonic_ns();
  {
    const obs::perf::ScopedSpan span("net.setup");
    pool.parallel_for(n_tiles, 1, [&](std::size_t b, std::size_t e) {
      for (std::size_t s = b; s < e; ++s) {
        outputs[s].registry = std::make_unique<obs::Registry>();
        engines[s] = std::make_unique<Engine>(
            config, nodes, flows, plan, s, shard_rngs[s],
            outputs[s].registry.get(), synced ? &*synced : nullptr,
            static_cast<std::uint64_t>(s) << 40, mode);
      }
    });
  }
  const double setup_s =
      static_cast<double>(par::detail::monotonic_ns() - setup0) * 1e-9;

  par::EpochStats epochs;
  std::vector<double> busy_s(n_tiles, 0.0);
  std::uint64_t messages = 0;
  std::size_t rounds = 0;
  {
    const obs::perf::ScopedSpan span("net.events");
    for (std::size_t s = 0; s < n_tiles; ++s) engines[s]->start();
    // Chunk several tiles per task: thousands of rounds of per-tile
    // dispatch would otherwise eat the speedup in queue traffic.
    const std::size_t chunk =
        std::max<std::size_t>(1, n_tiles / (8 * static_cast<std::size_t>(
                                                    std::max(1u, lanes))));
    const auto n_full = static_cast<std::size_t>(
        std::floor(config.duration_s / lookahead));
    std::size_t k = 0;
    for (;;) {
      const bool final_round = k >= n_full;
      const double bound = final_round
                               ? config.duration_s
                               : static_cast<double>(k + 1) * lookahead;
      const std::uint64_t wall0 = par::detail::monotonic_ns();
      pool.parallel_for(n_tiles, chunk, [&](std::size_t b, std::size_t e) {
        for (std::size_t s = b; s < e; ++s) {
          const std::uint64_t t0 = par::detail::monotonic_ns();
          if (final_round) {
            engines[s]->run_final(bound);
          } else {
            engines[s]->run_before(bound);
          }
          busy_s[s] = static_cast<double>(par::detail::monotonic_ns() - t0) *
                      1e-9;
        }
      });
      epochs.record_round(
          static_cast<double>(par::detail::monotonic_ns() - wall0) * 1e-9,
          busy_s.data(), n_tiles);
      ++rounds;
      if (final_round) break;
      // Route in ascending tile order, each outbox in generation order:
      // the delivery sequence every engine sees is schedule-independent.
      bool any = false;
      for (std::size_t s = 0; s < n_tiles; ++s) {
        for (const BorderMsg& msg : engines[s]->outbox()) {
          engines[msg.target_tile]->inject_border(msg);
          ++messages;
          any = true;
        }
        engines[s]->outbox().clear();
      }
      if (any) {
        ++k;
        continue;
      }
      // Idle skip: nothing is in flight and run_before drained every
      // event below the boundary, so the earliest pending event bounds
      // the next epoch that can do work. Messages travel exactly one
      // epoch, so skipping empty ones cannot reorder anything.
      double min_next = std::numeric_limits<double>::infinity();
      for (std::size_t s = 0; s < n_tiles; ++s)
        min_next = std::min(min_next, engines[s]->next_time());
      std::size_t k_next = k + 1;
      if (std::isfinite(min_next)) {
        const double r = std::floor(min_next / lookahead);
        if (r >= static_cast<double>(n_full)) {
          k_next = n_full;
        } else if (r > static_cast<double>(k + 1)) {
          k_next = static_cast<std::size_t>(r);
        }
      } else {
        k_next = n_full;
      }
      k = k_next;
    }
  }

  // Finalize commutes: each engine folds only its own state into its
  // private registry, so the tiles can drain on the pool.
  const std::uint64_t fin0 = par::detail::monotonic_ns();
  {
    const obs::perf::ScopedSpan span("net.finalize");
    pool.parallel_for(n_tiles, 1, [&](std::size_t b, std::size_t e) {
      for (std::size_t s = b; s < e; ++s) {
        outputs[s].result = engines[s]->finalize();
        outputs[s].node_ids = engines[s]->node_ids();
        outputs[s].flow_ids = engines[s]->flow_ids();
        engines[s].reset();
      }
    });
  }
  const double finalize_s =
      static_cast<double>(par::detail::monotonic_ns() - fin0) * 1e-9;
  const std::uint64_t merge0 = par::detail::monotonic_ns();
  NetworkResult total =
      merge_shard_outputs(config, nodes.size(), flows.size(), outputs);
  total.border.tiles = n_tiles;
  total.border.epochs = rounds;
  total.border.messages = messages;
  total.border.lookahead_s = lookahead;
  total.border.wall_s = epochs.wall_s;
  total.border.utilization = epochs.utilization(lanes);
  total.border.imbalance = epochs.imbalance();
  total.border.setup_s = setup_s;
  total.border.busy_s = epochs.busy_s;
  total.border.critical_path_s = epochs.max_busy_s;
  total.border.finalize_s = finalize_s;
  total.border.merge_s =
      static_cast<double>(par::detail::monotonic_ns() - merge0) * 1e-9;
  return total;
}

}  // namespace

NetworkResult simulate_network(const NetworkConfig& config,
                               const std::vector<NodeConfig>& nodes,
                               const std::vector<Flow>& flows, Rng& rng) {
  validate_network(nodes, flows);
  std::optional<Engine> engine;
  {
    // Topology, rate tables, and (with an error model) the frozen fading
    // dictionaries — often a visible share of short runs.
    const obs::perf::ScopedSpan span("net.setup");
    ShardOptions monolithic;
    monolithic.cutoff_margin_db = std::numeric_limits<double>::infinity();
    const ShardPlan plan = plan_shards(config, nodes, monolithic);
    engine.emplace(config, nodes, flows, plan, 0, rng, config.registry,
                   config.trace, 0);
  }
  return engine->run();
}

NetworkResult simulate_network_sharded(const NetworkConfig& config,
                                       const std::vector<NodeConfig>& nodes,
                                       const std::vector<Flow>& flows,
                                       const ShardOptions& options, Rng& rng,
                                       const ShardPlan* plan) {
  validate_network(nodes, flows);
  ShardPlan local_plan;
  if (!plan) {
    const obs::perf::ScopedSpan span("net.plan");
    local_plan = plan_shards(config, nodes, options, &flows);
    plan = &local_plan;
  }

  if (plan->border) {
    for (std::size_t f = 0; f < flows.size(); ++f) {
      check(plan->shard_of[flows[f].source] ==
                plan->shard_of[flows[f].destination],
            "border plan left flow " + std::to_string(f) +
                " crossing tiles; pass the flows to plan_shards so "
                "endpoint clusters share a tile");
    }
    // The same single draw as the component sweep: both paths consume
    // one u64 from the caller's rng, so switching modes never shifts
    // the caller's stream.
    const std::uint64_t root = rng.next_u64();
    if (options.border_reference || plan->shards.size() == 1) {
      // Fused reference: one engine over every tile, same derived
      // per-entity streams, influence records looped back locally —
      // the bitwise ground truth for the lockstep exchange.
      BorderMode mode;
      mode.enabled = true;
      mode.fused = true;
      mode.delay_s = plan->lookahead_s;
      mode.root_seed = root;
      std::optional<Engine> engine;
      {
        const obs::perf::ScopedSpan span("net.setup");
        engine.emplace(config, nodes, flows, *plan, 0, rng, config.registry,
                       config.trace, 0, mode);
      }
      NetworkResult result = engine->run();
      result.border.tiles = plan->shards.size();
      result.border.lookahead_s = plan->lookahead_s;
      return result;
    }
    return run_border_exchange(config, nodes, flows, *plan, options, root);
  }

  for (std::size_t f = 0; f < flows.size(); ++f) {
    const Flow& flow = flows[f];
    check(plan->shard_of[flow.source] == plan->shard_of[flow.destination],
          "flow " + std::to_string(f) + " (" + std::to_string(flow.source) +
              " -> " + std::to_string(flow.destination) +
              ") spans shards " +
              std::to_string(plan->shard_of[flow.source]) + " and " +
              std::to_string(plan->shard_of[flow.destination]) +
              "; component sharding cannot couple them — widen "
              "cutoff_margin_db or enable ShardOptions::border");
  }

  const std::size_t n_shards = plan->shards.size();
  if (n_shards == 1) {
    // Degenerate plan: run inline on the caller's rng — bitwise the
    // monolithic simulation.
    std::optional<Engine> engine;
    {
      const obs::perf::ScopedSpan span("net.setup");
      engine.emplace(config, nodes, flows, *plan, 0, rng, config.registry,
                     config.trace, 0);
    }
    return engine->run();
  }

  // One synchronized wrapper shared by every shard; the caller's sink is
  // never touched from two threads at once.
  std::optional<obs::SynchronizedTraceSink> synced;
  if (config.trace) synced.emplace(*config.trace);

  // One derived Rng per shard from a single root draw — the sweep is a
  // pure function of the caller's rng state and the plan, bitwise
  // identical for any worker count.
  const std::uint64_t root = rng.next_u64();
  par::SweepOptions opt;
  opt.root_seed = root;
  opt.jobs = options.jobs;
  std::vector<ShardOutput> outputs =
      par::map(n_shards, opt, [&](std::size_t s, Rng& shard_rng) {
        ShardOutput out;
        out.registry = std::make_unique<obs::Registry>();
        std::optional<Engine> engine;
        {
          const obs::perf::ScopedSpan span("net.setup");
          engine.emplace(config, nodes, flows, *plan, s, shard_rng,
                         out.registry.get(), synced ? &*synced : nullptr,
                         static_cast<std::uint64_t>(s) << 40);
        }
        out.result = engine->run();
        out.node_ids = engine->node_ids();
        out.flow_ids = engine->flow_ids();
        return out;
      });

  return merge_shard_outputs(config, nodes.size(), flows.size(), outputs);
}

std::vector<NetworkResult> simulate_network_batch(
    const NetworkConfig& config, const std::vector<NodeConfig>& nodes,
    const std::vector<Flow>& flows, std::size_t n_runs,
    const BatchOptions& options) {
  check(n_runs > 0, "simulate_network_batch requires at least one run");

  // One synchronized wrapper shared by every run; the caller's sink is
  // never touched from two threads at once.
  std::optional<obs::SynchronizedTraceSink> synced;
  if (config.trace) synced.emplace(*config.trace);

  struct RunOutput {
    NetworkResult result;
    std::unique_ptr<obs::Registry> registry;
  };

  par::SweepOptions opt;
  opt.root_seed = options.root_seed;
  opt.jobs = options.jobs;
  std::vector<RunOutput> outputs =
      par::map(n_runs, opt, [&](std::size_t, Rng& run_rng) {
        NetworkConfig run_config = config;
        RunOutput out;
        out.registry = std::make_unique<obs::Registry>();
        run_config.registry = out.registry.get();
        if (synced) run_config.trace = &*synced;
        out.result = simulate_network(run_config, nodes, flows, run_rng);
        return out;
      });

  std::vector<NetworkResult> results;
  results.reserve(n_runs);
  for (RunOutput& out : outputs) {
    if (options.registry) options.registry->merge(*out.registry);
    results.push_back(std::move(out.result));
  }
  return results;
}

HiddenTerminalSetup make_hidden_terminal_setup(double sender_spacing_m) {
  HiddenTerminalSetup setup;
  // Senders at the ends, receiver in the middle. With enough spacing the
  // senders fall below each other's CS threshold while both still reach
  // the receiver.
  NodeConfig a;
  a.position = {0.0, 0.0};
  NodeConfig b;
  b.position = {sender_spacing_m, 0.0};
  NodeConfig ap;
  ap.position = {sender_spacing_m / 2.0, 0.0};
  setup.nodes = {a, b, ap};
  setup.flows = {{0, 2}, {1, 2}};
  return setup;
}

}  // namespace wlan::net

#include "net/netsim.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <utility>

#include "common/check.h"
#include "common/units.h"
#include "mac/frames.h"
#include "mac/rate_adapt.h"
#include "obs/perf.h"
#include "par/montecarlo.h"
#include "phy/ofdm.h"
#include "sim/scheduler.h"
#include "sim/stats.h"

namespace wlan::net {
namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

const char* frame_name(mac::FrameType kind) {
  switch (kind) {
    case mac::FrameType::kData: return "DATA";
    case mac::FrameType::kAck: return "ACK";
    case mac::FrameType::kRts: return "RTS";
    case mac::FrameType::kCts: return "CTS";
    case mac::FrameType::kBeacon: return "BEACON";
  }
  return "?";
}

struct Transmission {
  std::size_t id;
  std::size_t tx_node;
  std::size_t dest;  // addressed node (kNone for none)
  mac::FrameType kind;
  std::size_t flow = kNone;
  std::size_t rate_index = 0;  // data-rate ladder index (kData only)
  double start_s;
  double end_s;
  double nav_until_s;  // what the duration field promises
  // Reception tracking at the addressed node.
  double current_interference_w = 0.0;
  double worst_interference_w = 0.0;
  bool rx_was_transmitting = false;
};

enum class WaitKind { kNone, kCts, kAck };

struct Station {
  // Traffic.
  std::size_t flow = kNone;  // flow this node sources (one max)
  std::size_t dest = kNone;
  bool saturated = true;
  std::deque<double> queue;  // arrival times of backlogged packets (Poisson)
  // Contention state.
  unsigned cw = 15;
  unsigned retries = 0;
  unsigned slots_remaining = 0;
  bool counting = false;
  double count_start_s = 0.0;
  std::uint64_t timer_version = 0;
  // Medium state.
  bool busy_prev = false;
  double nav_until_s = 0.0;
  // Exchange state.
  bool transmitting = false;
  WaitKind waiting = WaitKind::kNone;
  std::uint64_t wait_version = 0;
  std::uint16_t sequence = 0;
  // Rate control (sources only; fixed mode leaves index 0).
  std::size_t rate_index = 0;
  std::optional<mac::ArfController> arf;
};

class Simulator {
 public:
  Simulator(const NetworkConfig& config, const std::vector<NodeConfig>& nodes,
            const std::vector<Flow>& flows, Rng& rng)
      : config_(config), nodes_(nodes), flows_(flows), rng_(rng) {
    check(nodes.size() >= 2, "network needs at least two nodes");
    check(!flows.empty(), "network needs at least one flow");
    timing_ = mac::mac_timing(config.generation);
    noise_w_.resize(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      noise_w_[i] = dbm_to_watt(
          thermal_noise_dbm(config.bandwidth_hz, nodes[i].noise_figure_db));
    }
    // Pairwise received powers (deterministic path loss).
    gain_w_.assign(nodes.size(), std::vector<double>(nodes.size(), 0.0));
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      for (std::size_t j = 0; j < nodes.size(); ++j) {
        if (i == j) continue;
        const double d = std::max(
            mesh::distance(nodes[i].position, nodes[j].position), 0.5);
        gain_w_[i][j] = dbm_to_watt(nodes[i].tx_power_dbm -
                                    config.pathloss.path_loss_db(d));
      }
    }
    per_model_ = config.error_model.model == RxModel::kPerModel;
    if (per_model_ && config.error_model.shadowing_sigma_db > 0.0) {
      // Log-normal shadowing: one draw per unordered pair, applied to
      // both directions (large-scale fading is reciprocal).
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        for (std::size_t j = i + 1; j < nodes.size(); ++j) {
          const double f = db_to_lin(
              -rng.gaussian(0.0, config.error_model.shadowing_sigma_db));
          gain_w_[i][j] *= f;
          gain_w_[j][i] *= f;
        }
      }
    }
    stations_.resize(nodes.size());
    result_.flows.resize(flows.size());
    for (std::size_t f = 0; f < flows.size(); ++f) {
      check(flows[f].source < nodes.size() && flows[f].destination < nodes.size(),
            "flow endpoints out of range");
      check(stations_[flows[f].source].flow == kNone,
            "each node may source at most one flow");
      stations_[flows[f].source].flow = f;
      stations_[flows[f].source].dest = flows[f].destination;
      stations_[flows[f].source].cw = timing_.cw_min;
      stations_[flows[f].source].slots_remaining = draw_backoff(flows[f].source);
      stations_[flows[f].source].saturated = flows[f].arrival_rate_pps <= 0.0;
    }

    // All counters live in a metrics registry (the caller's, if given);
    // NetworkResult is populated from it after the run.
    registry_ = config.registry ? config.registry : &local_registry_;
    trace_ = config.trace;
    if (config.airtime) {
      obs::AirtimeAccountant::Config ac;
      ac.n_nodes = nodes.size();
      ac.n_flows = flows.size();
      ac.window_s = config.airtime_window_s;
      ac.payload_bits = static_cast<double>(config.payload_bytes) * 8.0;
      airtime_ = std::make_unique<obs::AirtimeAccountant>(ac);
    }
    if (config.lifecycle.enabled) {
      obs::FrameLedger::Config lc;
      lc.n_flows = flows.size();
      lc.hist_lo = config.lifecycle.hist_lo_s;
      lc.hist_hi = config.lifecycle.hist_hi_s;
      lc.hist_bins = config.lifecycle.hist_bins;
      lc.registry = registry_;
      ledger_ = std::make_unique<obs::FrameLedger>(lc);
      obs::TimeSeriesSampler::Config sc;
      sc.n_flows = flows.size();
      sc.window_s = config.lifecycle.sample_window_s;
      sc.payload_bits = static_cast<double>(config.payload_bytes) * 8.0;
      sampler_ = std::make_unique<obs::TimeSeriesSampler>(sc);
      if (config.lifecycle.audit) {
        obs::InvariantAuditor::Config auc;
        auc.n_nodes = nodes.size();
        auc.n_flows = flows.size();
        auc.flight_recorder_capacity = config.lifecycle.flight_recorder_capacity;
        auc.dump_path = config.lifecycle.flight_recorder_path;
        auditor_ = std::make_unique<obs::InvariantAuditor>(auc);
        // Created up front so every shard registry has the same entries.
        breaches_counter_ = &registry_->counter("lifecycle.breaches");
      }
    }
    sched_.bind_metrics(*registry_);
    data_tx_ = &registry_->counter("net.data_tx");
    data_failures_ = &registry_->counter("net.data_failures");
    rts_tx_ = &registry_->counter("net.rts_tx");
    rts_failures_ = &registry_->counter("net.rts_failures");
    simultaneous_starts_ = &registry_->counter("net.simultaneous_starts");
    for (std::size_t f = 0; f < flows.size(); ++f) {
      const std::vector<obs::Label> label{{"flow", std::to_string(f)}};
      delivered_.push_back(&registry_->counter("net.delivered", label));
      attempts_.push_back(&registry_->counter("net.attempts", label));
      retries_.push_back(&registry_->counter("net.retries", label));
      drops_.push_back(&registry_->counter("net.drops", label));
      // Queueing delays: 1 us .. 100 s, 8 bins/decade.
      delay_hist_.push_back(
          &registry_->histogram("net.flow_delay_s", 1e-6, 100.0, 64, label));
    }

    // Data-rate ladder: one fixed rate, or the eight OFDM rates for ARF.
    if (config.rate_control == RateControlMode::kArf) {
      check(per_model_, "ARF rate control requires the PER error model");
      check(config.generation == mac::PhyGeneration::kOfdm,
            "ARF rate control is implemented for the OFDM generation");
      for (std::size_t i = 0; i < 8; ++i) {
        data_rates_.push_back(
            phy::ofdm_mcs_info(static_cast<phy::OfdmMcs>(i)).data_rate_mbps);
      }
      for (const Flow& flow : flows) {
        Station& s = stations_[flow.source];
        s.arf.emplace(data_rates_.size());
        s.rate_index = s.arf->current();
      }
    } else {
      data_rates_.push_back(config.data_rate_mbps);
    }

    // Frame airtimes.
    const std::size_t data_mpdu =
        mac::mpdu_size_bytes(mac::FrameType::kData, config.payload_bytes);
    for (const double rate : data_rates_) {
      t_data_by_rate_.push_back(
          mac::data_ppdu_duration_s(config.generation, rate, data_mpdu));
    }
    t_ack_ = mac::control_duration_s(config.generation, mac::kAckBytes,
                                     config.basic_rate_mbps);
    t_rts_ = mac::control_duration_s(config.generation, mac::kRtsBytes,
                                     config.basic_rate_mbps);
    t_cts_ = mac::control_duration_s(config.generation, mac::kCtsBytes,
                                     config.basic_rate_mbps);

    // PER-model link dictionaries, one per flow in flow order (then a
    // fixed draw order inside LinkPerModel), so a seeded run is a pure
    // function of its Rng. Control frames ride the basic rate; an HT
    // network still sends them as legacy OFDM.
    rate_stats_.resize(flows.size());
    if (per_model_) {
      const mac::PhyGeneration ctrl_gen =
          config.generation == mac::PhyGeneration::kHt
              ? mac::PhyGeneration::kOfdm
              : config.generation;
      models_.reserve(flows.size());
      for (std::size_t f = 0; f < flows.size(); ++f) {
        FlowErrorModels m;
        m.data.reserve(data_rates_.size());
        for (const double rate : data_rates_) {
          m.data.emplace_back(config.generation, rate, data_mpdu,
                              config.error_model, rng_);
        }
        m.ctrl_fwd = LinkPerModel(ctrl_gen, config.basic_rate_mbps,
                                  mac::kRtsBytes, config.error_model, rng_);
        m.ctrl_rev = LinkPerModel(ctrl_gen, config.basic_rate_mbps,
                                  mac::kAckBytes, config.error_model, rng_);
        models_.push_back(std::move(m));
      }
    }
  }

  NetworkResult run() {
    {
      const obs::perf::ScopedSpan span("net.events");
      // Poisson arrival processes for non-saturated flows.
      for (std::size_t f = 0; f < flows_.size(); ++f) {
        if (flows_[f].arrival_rate_pps > 0.0) {
          schedule_arrival(flows_[f].source, flows_[f].arrival_rate_pps);
        }
      }
      for (std::size_t n = 0; n < stations_.size(); ++n) {
        maybe_start_countdown(n);
      }
      sched_.run_until(config_.duration_s);
    }
    const obs::perf::ScopedSpan span("net.finalize");
    // Populate the result struct from the registry.
    result_.data_tx_count = data_tx_->value();
    result_.data_failures = data_failures_->value();
    result_.rts_tx_count = rts_tx_->value();
    result_.rts_failures = rts_failures_->value();
    result_.simultaneous_starts = simultaneous_starts_->value();
    for (std::size_t f = 0; f < flows_.size(); ++f) {
      FlowStats& fs = result_.flows[f];
      fs.delivered = delivered_[f]->value();
      fs.attempts = attempts_[f]->value();
      fs.retries = retries_[f]->value();
      fs.drops = drops_[f]->value();
      fs.mean_delay_s = delay_hist_[f]->mean();
      fs.mean_data_rate_mbps =
          rate_stats_[f].attempts
              ? rate_stats_[f].rate_sum_mbps /
                    static_cast<double>(rate_stats_[f].attempts)
              : data_rates_.front();
      fs.throughput_mbps = static_cast<double>(fs.delivered) *
                           static_cast<double>(config_.payload_bytes) * 8.0 /
                           config_.duration_s / 1e6;
      result_.total_delivered += fs.delivered;
      result_.aggregate_throughput_mbps += fs.throughput_mbps;
    }
    if (airtime_) {
      result_.airtime = airtime_->finalize(config_.duration_s);
      airtime_->publish(*registry_);
    }
    if (ledger_) {
      result_.lifecycle.ledger = ledger_->finalize(config_.duration_s);
      ledger_->publish(*registry_);
      result_.lifecycle.series = sampler_->finalize(config_.duration_s);
      if (auditor_) {
        auditor_->audit(result_.lifecycle.ledger);
        if (airtime_) auditor_->audit(result_.airtime);
        result_.lifecycle.breaches = auditor_->finalize(config_.duration_s);
        result_.lifecycle.breach_messages = auditor_->breach_messages();
        result_.lifecycle.flight_recorder_json =
            auditor_->flight_recorder_json();
        breaches_counter_->add(result_.lifecycle.breaches);
      }
    }
    return result_;
  }

 private:
  /// One pointer test per site when all observers are off (the lifecycle
  /// sinks only exist when ledger_ does, so three tests cover them all).
  void emit(obs::EventType type, std::size_t node, std::size_t peer,
            std::size_t flow, double value, const char* detail = "",
            std::size_t frame = kNone) {
    if (!trace_ && !airtime_ && !ledger_) return;
    obs::TraceEvent e;
    e.time_s = sched_.now();
    e.type = type;
    e.node = node == kNone ? -1 : static_cast<std::int32_t>(node);
    e.peer = peer == kNone ? -1 : static_cast<std::int32_t>(peer);
    e.flow = flow == kNone ? -1 : static_cast<std::int32_t>(flow);
    e.frame = frame == kNone ? -1 : static_cast<std::int64_t>(frame);
    e.value = value;
    e.detail = detail;
    if (trace_) trace_->record(e);
    if (airtime_) airtime_->record(e);
    if (ledger_) ledger_->record(e);
    if (sampler_) sampler_->record(e);
    if (auditor_) auditor_->record(e);
  }

  unsigned draw_backoff(std::size_t n) {
    return static_cast<unsigned>(rng_.uniform_int(stations_[n].cw + 1));
  }

  /// Data-frame airtime at station `n`'s current rate.
  double t_data(std::size_t n) const {
    return t_data_by_rate_[stations_[n].rate_index];
  }

  void record_data_rate(std::size_t flow, std::size_t rate_index) {
    rate_stats_[flow].rate_sum_mbps += data_rates_[rate_index];
    ++rate_stats_[flow].attempts;
  }

  /// PER dictionary governing a transmission's reception. CTS and ACK
  /// frames are addressed to the station that sourced the exchange, so
  /// their flow is recovered from the destination.
  const LinkPerModel& model_for(const Transmission& t) const {
    switch (t.kind) {
      case mac::FrameType::kData:
        return models_[t.flow].data[t.rate_index];
      case mac::FrameType::kRts:
        return models_[t.flow].ctrl_fwd;
      case mac::FrameType::kCts:
      case mac::FrameType::kAck:
        return models_[stations_[t.dest].flow].ctrl_rev;
      case mac::FrameType::kBeacon:
        break;
    }
    check(false, "no PER model for this frame type");
    return models_.front().ctrl_rev;
  }

  double rx_power_w(std::size_t from, std::size_t to) const {
    return gain_w_[from][to];
  }

  double total_power_at(std::size_t n) const {
    double p = 0.0;
    for (const Transmission& t : active_) {
      if (t.tx_node != n) p += rx_power_w(t.tx_node, n);
    }
    return p;
  }

  bool medium_busy(std::size_t n) const {
    if (stations_[n].transmitting) return true;
    if (sched_.now() < stations_[n].nav_until_s) return true;
    return total_power_at(n) >= dbm_to_watt(nodes_[n].cs_threshold_dbm);
  }

  // ---- contention ----

  // Freezes a counting station. Returns true when the station's counter
  // had already reached zero at this exact instant — i.e. it transmits
  // simultaneously with whatever made the medium busy (a real collision),
  // because it cannot sense a transmission that starts in the same slot.
  [[nodiscard]] bool freeze(std::size_t n) {
    Station& s = stations_[n];
    if (!s.counting) return false;
    const double elapsed = sched_.now() - s.count_start_s - timing_.difs_s();
    if (elapsed > 0.0) {
      const auto used =
          static_cast<unsigned>(std::floor(elapsed / timing_.slot_s + 1e-9));
      s.slots_remaining -= std::min(used, s.slots_remaining);
    }
    s.counting = false;
    ++s.timer_version;
    emit(obs::EventType::kBackoffFreeze, n, kNone, s.flow,
         static_cast<double>(s.slots_remaining));
    return s.slots_remaining == 0 && elapsed >= -1e-12;
  }

  bool has_traffic(std::size_t n) const {
    const Station& s = stations_[n];
    return s.flow != kNone && (s.saturated || !s.queue.empty());
  }

  void schedule_arrival(std::size_t n, double rate_pps) {
    sched_.schedule(rng_.exponential(1.0 / rate_pps), [this, n, rate_pps] {
      stations_[n].queue.push_back(sched_.now());
      emit(obs::EventType::kArrival, n, kNone, stations_[n].flow,
           static_cast<double>(stations_[n].queue.size()));
      maybe_start_countdown(n);
      schedule_arrival(n, rate_pps);
    });
  }

  void maybe_start_countdown(std::size_t n) {
    Station& s = stations_[n];
    if (!has_traffic(n) || s.counting || s.transmitting ||
        s.waiting != WaitKind::kNone) {
      return;
    }
    if (medium_busy(n)) return;
    s.counting = true;
    s.count_start_s = sched_.now();
    emit(obs::EventType::kBackoffStart, n, kNone, s.flow,
         static_cast<double>(s.slots_remaining));
    const std::uint64_t version = ++s.timer_version;
    const double delay =
        timing_.difs_s() +
        static_cast<double>(s.slots_remaining) * timing_.slot_s;
    sched_.schedule(delay, [this, n, version] {
      Station& st = stations_[n];
      if (!st.counting || st.timer_version != version) return;
      st.counting = false;
      st.slots_remaining = 0;
      begin_exchange(n);
    });
    // If the NAV is what ends later, it was already accounted: medium_busy
    // checked NAV; NAV can only start via frame ends which re-evaluate.
  }

  void update_all_media() {
    std::vector<std::size_t> fire_now;
    for (std::size_t n = 0; n < stations_.size(); ++n) {
      const bool busy = medium_busy(n);
      Station& s = stations_[n];
      if (busy && !s.busy_prev) {
        if (freeze(n)) fire_now.push_back(n);
      } else if (!busy) {
        // Idle (or just became idle): an eligible station may (re)start.
        maybe_start_countdown(n);
      }
      s.busy_prev = busy;
    }
    // Stations whose counters expired in the very slot the medium went
    // busy transmit anyway — the collision DCF is built around.
    simultaneous_starts_->add(fire_now.size());
    for (const std::size_t n : fire_now) {
      emit(obs::EventType::kCollision, n, kNone, stations_[n].flow, 0.0);
      begin_exchange(n);
    }
  }

  // ---- transmissions ----

  void start_transmission(std::size_t n, std::size_t dest,
                          mac::FrameType kind, std::size_t flow,
                          double duration_s, double nav_until_s) {
    Station& s = stations_[n];
    s.transmitting = true;
    Transmission t;
    t.id = next_id_++;
    t.tx_node = n;
    t.dest = dest;
    t.kind = kind;
    t.flow = flow;
    if (kind == mac::FrameType::kData) t.rate_index = s.rate_index;
    t.start_s = sched_.now();
    t.end_s = sched_.now() + duration_s;
    t.nav_until_s = nav_until_s;
    if (dest != kNone) {
      // This frame is not yet in active_, so the total power at the
      // destination is exactly the interference it will see.
      t.current_interference_w = total_power_at(dest);
      // A destination that is itself transmitting cannot receive.
      if (stations_[dest].transmitting) t.rx_was_transmitting = true;
      t.worst_interference_w = t.current_interference_w;
    }
    // This transmission interferes with every other ongoing reception.
    for (Transmission& other : active_) {
      if (other.dest == kNone || other.dest == n) continue;
      other.current_interference_w += rx_power_w(n, other.dest);
      other.worst_interference_w =
          std::max(other.worst_interference_w, other.current_interference_w);
    }
    // And if any ongoing reception is addressed to us, it is now lost.
    for (Transmission& other : active_) {
      if (other.dest == n) other.rx_was_transmitting = true;
    }
    emit(obs::EventType::kTxStart, n, dest, flow, duration_s,
         frame_name(kind), t.id);
    const std::size_t id = t.id;
    active_.push_back(std::move(t));
    update_all_media();
    sched_.schedule(duration_s, [this, id] { end_transmission(id); });
  }

  void end_transmission(std::size_t id) {
    const auto it = std::find_if(active_.begin(), active_.end(),
                                 [id](const Transmission& t) { return t.id == id; });
    check(it != active_.end(), "transmission bookkeeping lost");
    const Transmission t = *it;
    active_.erase(it);
    stations_[t.tx_node].transmitting = false;

    // Remove this signal from other ongoing receptions' interference.
    for (Transmission& other : active_) {
      if (other.dest == kNone || other.dest == t.tx_node) continue;
      other.current_interference_w -= rx_power_w(t.tx_node, other.dest);
    }

    emit(obs::EventType::kTxEnd, t.tx_node, t.dest, t.flow, t.end_s - t.start_s,
         frame_name(t.kind), t.id);

    // Reception outcome at the addressed node.
    bool delivered = false;
    double sinr_db = -std::numeric_limits<double>::infinity();
    if (t.dest != kNone && !t.rx_was_transmitting &&
        !stations_[t.dest].transmitting) {
      const double signal = rx_power_w(t.tx_node, t.dest);
      const double sinr =
          signal / (noise_w_[t.dest] + t.worst_interference_w);
      sinr_db = lin_to_db(sinr);
      if (per_model_) {
        // Preamble acquisition first: the PER curves model payload
        // decoding and scale with payload length, so on their own a
        // short control frame would ride out an equal-power collision.
        // Below the capture SINR the receiver never syncs and no RNG is
        // consumed.
        if (sinr_db < config_.error_model.preamble_capture_db) {
          delivered = false;
        } else {
          // Block fading per frame: pick a realization from the link's
          // dictionary, look up its PER at the worst-case SINR (the
          // table is already scaled to this frame type's PSDU size),
          // survive a Bernoulli draw.
          const LinkPerModel& model = model_for(t);
          const auto realization = static_cast<std::size_t>(
              rng_.uniform_int(model.realizations()));
          delivered = !rng_.bernoulli(model.per(sinr_db, realization));
        }
      } else {
        const double required = t.kind == mac::FrameType::kData
                                    ? db_to_lin(config_.sinr_threshold_db)
                                    : db_to_lin(config_.control_sinr_db);
        delivered = sinr >= required;
      }
    }
    if (t.dest != kNone) {
      emit(delivered ? obs::EventType::kRxOk : obs::EventType::kRxFail,
           t.dest, t.tx_node, t.flow, sinr_db, frame_name(t.kind), t.id);
    }

    // Overhearing nodes set their NAV from the duration field.
    for (std::size_t n = 0; n < stations_.size(); ++n) {
      if (n == t.tx_node || n == t.dest) continue;
      if (rx_power_w(t.tx_node, n) >=
          dbm_to_watt(nodes_[n].cs_threshold_dbm)) {
        if (t.nav_until_s > stations_[n].nav_until_s) {
          stations_[n].nav_until_s = t.nav_until_s;
          emit(obs::EventType::kNavSet, n, t.tx_node, kNone, t.nav_until_s,
               frame_name(t.kind));
          // Re-evaluate this node when its NAV expires.
          sched_.schedule_at(t.nav_until_s, [this, n] { update_all_media(); });
        }
      }
    }

    handle_frame_outcome(t, delivered);
    update_all_media();
  }

  // ---- protocol ----

  void begin_exchange(std::size_t n) {
    Station& s = stations_[n];
    check(s.flow != kNone, "contention won by a node without traffic");
    attempts_[s.flow]->add();
    const double td = t_data(n);
    if (config_.rts_cts) {
      const double nav = sched_.now() + t_rts_ + 3.0 * timing_.sifs_s +
                         t_cts_ + td + t_ack_;
      rts_tx_->add();
      start_transmission(n, s.dest, mac::FrameType::kRts, s.flow, t_rts_, nav);
      arm_timeout(n, WaitKind::kCts, t_rts_ + timing_.sifs_s + t_cts_ +
                                         timing_.slot_s);
    } else {
      const double nav = sched_.now() + td + timing_.sifs_s + t_ack_;
      data_tx_->add();
      record_data_rate(s.flow, s.rate_index);
      start_transmission(n, s.dest, mac::FrameType::kData, s.flow, td, nav);
      arm_timeout(n, WaitKind::kAck, td + timing_.sifs_s + t_ack_ +
                                         timing_.slot_s);
    }
  }

  void arm_timeout(std::size_t n, WaitKind kind, double delay_s) {
    Station& s = stations_[n];
    s.waiting = kind;
    const std::uint64_t version = ++s.wait_version;
    sched_.schedule(delay_s, [this, n, version, kind] {
      Station& st = stations_[n];
      if (st.wait_version != version || st.waiting == WaitKind::kNone) return;
      st.waiting = WaitKind::kNone;
      on_exchange_failed(n, kind);
    });
  }

  void on_exchange_failed(std::size_t n, WaitKind kind) {
    Station& s = stations_[n];
    if (kind == WaitKind::kAck) {
      data_failures_->add();
      // Only a lost data frame is a rate-control signal; a missed CTS
      // says nothing about the data rate.
      if (s.arf) {
        s.arf->on_failure();
        s.rate_index = s.arf->current();
      }
    } else {
      rts_failures_->add();
    }
    ++s.retries;
    retries_[s.flow]->add();
    if (s.retries > config_.retry_limit) {
      drops_[s.flow]->add();
      emit(obs::EventType::kDrop, n, s.dest, s.flow,
           static_cast<double>(s.retries));
      s.retries = 0;
      s.cw = timing_.cw_min;
      if (!s.saturated && !s.queue.empty()) s.queue.pop_front();  // dropped
    } else {
      s.cw = std::min(2 * s.cw + 1, timing_.cw_max);
    }
    s.slots_remaining = draw_backoff(n);
    maybe_start_countdown(n);
  }

  void on_exchange_succeeded(std::size_t n) {
    Station& s = stations_[n];
    if (s.arf) {
      s.arf->on_success();
      s.rate_index = s.arf->current();
    }
    delivered_[s.flow]->add();
    emit(obs::EventType::kStateChange, n, s.dest, s.flow, 0.0, "DELIVERED");
    if (!s.saturated && !s.queue.empty()) {
      delay_hist_[s.flow]->record(sched_.now() - s.queue.front());
      s.queue.pop_front();
    }
    s.retries = 0;
    s.cw = timing_.cw_min;
    ++s.sequence;
    s.slots_remaining = draw_backoff(n);  // next packet, if any
    maybe_start_countdown(n);
  }

  void handle_frame_outcome(const Transmission& t, bool delivered) {
    switch (t.kind) {
      case mac::FrameType::kRts: {
        if (!delivered) return;  // source's CTS timeout handles it
        // Destination answers CTS after SIFS.
        const std::size_t rx = t.dest;
        const std::size_t src = t.tx_node;
        const double nav = t.nav_until_s;
        sched_.schedule(timing_.sifs_s, [this, rx, src, nav] {
          start_transmission(rx, src, mac::FrameType::kCts, kNone, t_cts_, nav);
        });
        break;
      }
      case mac::FrameType::kCts: {
        // The CTS is addressed to the data source; on reception it sends
        // the data frame after SIFS.
        const std::size_t src = t.dest;
        Station& s = stations_[src];
        if (!delivered || s.waiting != WaitKind::kCts) return;
        s.waiting = WaitKind::kNone;
        ++s.wait_version;
        const double nav = t.nav_until_s;
        sched_.schedule(timing_.sifs_s, [this, src, nav] {
          Station& st = stations_[src];
          const double td = t_data(src);
          data_tx_->add();
          record_data_rate(st.flow, st.rate_index);
          start_transmission(src, st.dest, mac::FrameType::kData, st.flow,
                             td, nav);
          arm_timeout(src, WaitKind::kAck,
                      td + timing_.sifs_s + t_ack_ + timing_.slot_s);
        });
        break;
      }
      case mac::FrameType::kData: {
        if (!delivered) return;  // ACK timeout at the source handles it
        const std::size_t rx = t.dest;
        const std::size_t src = t.tx_node;
        sched_.schedule(timing_.sifs_s, [this, rx, src] {
          start_transmission(rx, src, mac::FrameType::kAck, kNone, t_ack_,
                             sched_.now() + t_ack_);
        });
        break;
      }
      case mac::FrameType::kAck: {
        const std::size_t src = t.dest;
        Station& s = stations_[src];
        if (!delivered || s.waiting != WaitKind::kAck) return;
        s.waiting = WaitKind::kNone;
        ++s.wait_version;
        on_exchange_succeeded(src);
        break;
      }
      case mac::FrameType::kBeacon:
        break;
    }
  }

  NetworkConfig config_;
  std::vector<NodeConfig> nodes_;
  std::vector<Flow> flows_;
  Rng& rng_;
  mac::MacTiming timing_{};
  sim::Scheduler sched_;
  std::vector<Station> stations_;
  std::vector<std::vector<double>> gain_w_;
  std::vector<double> noise_w_;
  std::vector<Transmission> active_;
  std::size_t next_id_ = 0;
  // Observability: counters/histograms live in `*registry_`; trace may
  // be null.
  obs::Registry local_registry_;
  obs::Registry* registry_ = nullptr;
  obs::TraceSink* trace_ = nullptr;
  std::unique_ptr<obs::AirtimeAccountant> airtime_;
  std::unique_ptr<obs::FrameLedger> ledger_;
  std::unique_ptr<obs::TimeSeriesSampler> sampler_;
  std::unique_ptr<obs::InvariantAuditor> auditor_;
  obs::Counter* breaches_counter_ = nullptr;
  obs::Counter* data_tx_ = nullptr;
  obs::Counter* data_failures_ = nullptr;
  obs::Counter* rts_tx_ = nullptr;
  obs::Counter* rts_failures_ = nullptr;
  obs::Counter* simultaneous_starts_ = nullptr;
  std::vector<obs::Counter*> delivered_;
  std::vector<obs::Counter*> attempts_;
  std::vector<obs::Counter*> retries_;
  std::vector<obs::Counter*> drops_;
  std::vector<obs::Histogram*> delay_hist_;
  std::vector<double> data_rates_;       // ladder (1 entry when fixed)
  std::vector<double> t_data_by_rate_;   // airtime per ladder entry
  double t_ack_ = 0.0;
  double t_rts_ = 0.0;
  double t_cts_ = 0.0;
  // PER reception model (per_model_ only).
  bool per_model_ = false;
  struct FlowErrorModels {
    std::vector<LinkPerModel> data;  // source -> destination, per rate
    LinkPerModel ctrl_fwd;           // RTS, source -> destination
    LinkPerModel ctrl_rev;           // CTS/ACK, destination -> source
  };
  std::vector<FlowErrorModels> models_;
  struct RateStats {
    double rate_sum_mbps = 0.0;
    std::uint64_t attempts = 0;
  };
  std::vector<RateStats> rate_stats_;
  NetworkResult result_;
};

}  // namespace

NetworkResult simulate_network(const NetworkConfig& config,
                               const std::vector<NodeConfig>& nodes,
                               const std::vector<Flow>& flows, Rng& rng) {
  std::optional<Simulator> sim;
  {
    // Topology, rate tables, and (with an error model) the frozen fading
    // dictionaries — often a visible share of short runs.
    const obs::perf::ScopedSpan span("net.setup");
    sim.emplace(config, nodes, flows, rng);
  }
  return sim->run();
}

std::vector<NetworkResult> simulate_network_batch(
    const NetworkConfig& config, const std::vector<NodeConfig>& nodes,
    const std::vector<Flow>& flows, std::size_t n_runs,
    const BatchOptions& options) {
  check(n_runs > 0, "simulate_network_batch requires at least one run");

  // One synchronized wrapper shared by every run; the caller's sink is
  // never touched from two threads at once.
  std::optional<obs::SynchronizedTraceSink> synced;
  if (config.trace) synced.emplace(*config.trace);

  struct RunOutput {
    NetworkResult result;
    std::unique_ptr<obs::Registry> registry;
  };

  par::SweepOptions opt;
  opt.root_seed = options.root_seed;
  opt.jobs = options.jobs;
  std::vector<RunOutput> outputs =
      par::map(n_runs, opt, [&](std::size_t, Rng& run_rng) {
        NetworkConfig run_config = config;
        RunOutput out;
        out.registry = std::make_unique<obs::Registry>();
        run_config.registry = out.registry.get();
        if (synced) run_config.trace = &*synced;
        out.result = simulate_network(run_config, nodes, flows, run_rng);
        return out;
      });

  std::vector<NetworkResult> results;
  results.reserve(n_runs);
  for (RunOutput& out : outputs) {
    if (options.registry) options.registry->merge(*out.registry);
    results.push_back(std::move(out.result));
  }
  return results;
}

HiddenTerminalSetup make_hidden_terminal_setup(double sender_spacing_m) {
  HiddenTerminalSetup setup;
  // Senders at the ends, receiver in the middle. With enough spacing the
  // senders fall below each other's CS threshold while both still reach
  // the receiver.
  NodeConfig a;
  a.position = {0.0, 0.0};
  NodeConfig b;
  b.position = {sender_spacing_m, 0.0};
  NodeConfig ap;
  ap.position = {sender_spacing_m / 2.0, 0.0};
  setup.nodes = {a, b, ap};
  setup.flows = {{0, 2}, {1, 2}};
  return setup;
}

}  // namespace wlan::net

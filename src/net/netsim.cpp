#include "net/netsim.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/units.h"
#include "mac/frames.h"
#include "mac/rate_adapt.h"
#include "net/shard.h"
#include "obs/perf.h"
#include "par/montecarlo.h"
#include "phy/ofdm.h"
#include "sim/scheduler.h"
#include "sim/stats.h"

namespace wlan::net {
namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
constexpr std::uint32_t kNil = 0xFFFFFFFFu;

const char* frame_name(mac::FrameType kind) {
  switch (kind) {
    case mac::FrameType::kData: return "DATA";
    case mac::FrameType::kAck: return "ACK";
    case mac::FrameType::kRts: return "RTS";
    case mac::FrameType::kCts: return "CTS";
    case mac::FrameType::kBeacon: return "BEACON";
  }
  return "?";
}

struct Transmission {
  std::size_t id = 0;
  std::size_t tx_node = kNone;  // local (shard) index
  std::size_t dest = kNone;     // addressed node (kNone for none)
  mac::FrameType kind = mac::FrameType::kData;
  std::size_t flow = kNone;    // local flow index
  std::size_t rate_index = 0;  // data-rate ladder index (kData only)
  double start_s = 0.0;
  double end_s = 0.0;
  double nav_until_s = 0.0;  // what the duration field promises
  // Reception tracking at the addressed node.
  double current_interference_w = 0.0;
  double worst_interference_w = 0.0;
  bool rx_was_transmitting = false;
  // Slot-arena bookkeeping: insertion-order intrusive list, so walks
  // see transmissions oldest-first and teardown is O(1) by slot handle.
  bool in_use = false;
  std::uint32_t prev = kNil;
  std::uint32_t next = kNil;
};

enum class WaitKind { kNone, kCts, kAck };

/// Subtracts an interferer's power from a running sum. Incremental
/// add/subtract leaves rounding residues, so the result can dip below
/// zero legitimately — but only by an amount set by machine epsilon and
/// the scales involved: relative to the term just removed, or to the
/// sum's running peak (a 1e-30 W remote signal folded into a 1e-6 W sum
/// is absorbed entirely by rounding, so removing it can undershoot by
/// ~eps * peak, far more than any multiple of the term itself).
/// Anything beyond that slack means double-subtraction — a bookkeeping
/// bug — and aborts; the legitimate residue clamps to exactly zero.
void subtract_clamped(double& sum_w, double term_w, double peak_w,
                      const char* what) {
  sum_w -= term_w;
  if (sum_w < 0.0) {
    check(sum_w >= -(1e-9 * term_w + 1e-12 * peak_w), what);
    sum_w = 0.0;
  }
}

/// One shard's simulation: a self-contained event engine over the
/// shard's member nodes, indexed locally (0..n-1). The monolithic
/// `simulate_network` runs the same engine on the single shard of an
/// unbounded plan, so sharded and monolithic execution share every
/// instruction of the hot path — shard-vs-monolith equivalence is by
/// construction, not by parallel maintenance of two code paths.
///
/// Station state is structure-of-arrays: the medium walk touches
/// transmitting/nav/ambient/busy_prev for a handful of neighbors per
/// event, and parallel arrays keep those lines dense instead of
/// striding over cold per-station protocol state.
class Engine {
 public:
  Engine(const NetworkConfig& config, const std::vector<NodeConfig>& nodes,
         const std::vector<Flow>& flows, const ShardPlan& plan,
         std::size_t shard, Rng& rng, obs::Registry* registry,
         obs::TraceSink* trace, std::uint64_t frame_id_base)
      : config_(config), rng_(rng), frame_id_base_(frame_id_base) {
    timing_ = mac::mac_timing(config.generation);
    const std::vector<std::uint32_t>& members = plan.shards[shard];
    n_ = members.size();
    node_id_.assign(members.begin(), members.end());
    std::vector<std::uint32_t> g2l(nodes.size(), kNil);
    for (std::size_t l = 0; l < n_; ++l)
      g2l[members[l]] = static_cast<std::uint32_t>(l);

    noise_w_.resize(n_);
    cs_w_.resize(n_);
    for (std::size_t l = 0; l < n_; ++l) {
      const NodeConfig& node = nodes[node_id_[l]];
      noise_w_[l] = dbm_to_watt(
          thermal_noise_dbm(config.bandwidth_hz, node.noise_figure_db));
      cs_w_[l] = dbm_to_watt(node.cs_threshold_dbm);
    }

    // Neighbor CSR restricted to the shard, with deterministic received
    // powers per edge — the sparse replacement for the dense gain
    // matrix. A member's plan row stays inside the component by
    // definition, so every neighbor has a local index.
    row_off_.assign(n_ + 1, 0);
    std::size_t edges = 0;
    for (std::size_t l = 0; l < n_; ++l) {
      row_off_[l] = edges;
      edges += plan.degree(node_id_[l]);
    }
    row_off_[n_] = edges;
    row_nbr_.resize(edges);
    row_gain_.resize(edges);
    for (std::size_t l = 0; l < n_; ++l) {
      const std::size_t g = node_id_[l];
      std::size_t out = row_off_[l];
      for (std::size_t e = plan.row_offset[g]; e < plan.row_offset[g + 1];
           ++e, ++out) {
        const std::uint32_t nbr_g = plan.nbr[e];
        const std::uint32_t nbr_l = g2l[nbr_g];
        check(nbr_l != kNil, "shard plan row escapes its component");
        row_nbr_[out] = nbr_l;
        const double d = std::max(
            mesh::distance(nodes[g].position, nodes[nbr_g].position), 0.5);
        row_gain_[out] = dbm_to_watt(nodes[g].tx_power_dbm -
                                     config.pathloss.path_loss_db(d));
      }
    }
    per_model_ = config.error_model.model == RxModel::kPerModel;
    if (per_model_ && config.error_model.shadowing_sigma_db > 0.0) {
      // Log-normal shadowing: one draw per coupled unordered pair, in
      // ascending (i, j) order, applied to both directions (large-scale
      // fading is reciprocal). On the unbounded plan every pair is
      // coupled, so this is the legacy all-pairs draw sequence.
      for (std::size_t l = 0; l < n_; ++l) {
        for (std::size_t e = row_off_[l]; e < row_off_[l + 1]; ++e) {
          const std::uint32_t m = row_nbr_[e];
          if (m <= l) continue;
          const double f = db_to_lin(
              -rng.gaussian(0.0, config.error_model.shadowing_sigma_db));
          row_gain_[e] *= f;
          row_gain_[edge_index(m, static_cast<std::uint32_t>(l))] *= f;
        }
      }
    }

    // Station state (SoA) and the shard's flows, ascending by global
    // flow index so local order is a subsequence of the global order.
    flow_of_.assign(n_, kNone);
    dest_of_.assign(n_, kNone);
    saturated_.assign(n_, 1);
    queue_.resize(n_);
    cw_.assign(n_, timing_.cw_min);
    retries_count_.assign(n_, 0);
    slots_remaining_.assign(n_, 0);
    counting_.assign(n_, 0);
    count_start_s_.assign(n_, 0.0);
    timer_version_.assign(n_, 0);
    busy_prev_.assign(n_, 0);
    nav_until_.assign(n_, 0.0);
    nav_armed_.assign(n_, 0);
    ambient_w_.assign(n_, 0.0);
    ambient_peak_w_.assign(n_, 0.0);
    transmitting_.assign(n_, 0);
    waiting_.assign(n_, WaitKind::kNone);
    wait_version_.assign(n_, 0);
    sequence_.assign(n_, 0);
    rate_index_.assign(n_, 0);
    arf_.resize(n_);
    for (std::size_t f = 0; f < flows.size(); ++f) {
      const std::uint32_t src = g2l[flows[f].source];
      if (src == kNil) continue;
      const std::uint32_t dst = g2l[flows[f].destination];
      check(dst != kNil, "flow endpoints fall in different shards");
      check(flow_of_[src] == kNone, "each node may source at most one flow");
      const std::size_t lf = flow_id_.size();
      flow_id_.push_back(f);
      flow_src_.push_back(src);
      arrival_rate_.push_back(flows[f].arrival_rate_pps);
      flow_of_[src] = lf;
      dest_of_[src] = dst;
      cw_[src] = timing_.cw_min;
      slots_remaining_[src] = draw_backoff(src);
      saturated_[src] = flows[f].arrival_rate_pps <= 0.0 ? 1 : 0;
    }
    n_flows_ = flow_id_.size();
    result_.flows.resize(n_flows_);

    // All counters live in a metrics registry (the caller's, if given);
    // NetworkResult is populated from it after the run. Per-flow labels
    // carry GLOBAL flow ids, so shard registries hold disjoint per-flow
    // instruments and merge into the same names a monolithic run uses.
    registry_ = registry ? registry : &local_registry_;
    trace_ = trace;
    if (config.airtime) {
      obs::AirtimeAccountant::Config ac;
      ac.n_nodes = n_;
      ac.n_flows = n_flows_;
      ac.window_s = config.airtime_window_s;
      ac.payload_bits = static_cast<double>(config.payload_bytes) * 8.0;
      ac.node_ids = node_id_;
      ac.flow_ids = flow_id_;
      airtime_ = std::make_unique<obs::AirtimeAccountant>(ac);
    }
    if (config.lifecycle.enabled) {
      obs::FrameLedger::Config lc;
      lc.n_flows = n_flows_;
      lc.hist_lo = config.lifecycle.hist_lo_s;
      lc.hist_hi = config.lifecycle.hist_hi_s;
      lc.hist_bins = config.lifecycle.hist_bins;
      lc.registry = registry_;
      lc.flow_ids = flow_id_;
      ledger_ = std::make_unique<obs::FrameLedger>(lc);
      obs::TimeSeriesSampler::Config sc;
      sc.n_flows = n_flows_;
      sc.window_s = config.lifecycle.sample_window_s;
      sc.payload_bits = static_cast<double>(config.payload_bytes) * 8.0;
      sampler_ = std::make_unique<obs::TimeSeriesSampler>(sc);
      if (config.lifecycle.audit) {
        obs::InvariantAuditor::Config auc;
        auc.n_nodes = n_;
        auc.n_flows = n_flows_;
        auc.flight_recorder_capacity =
            config.lifecycle.flight_recorder_capacity;
        auc.dump_path = config.lifecycle.flight_recorder_path;
        if (!auc.dump_path.empty() && plan.shards.size() > 1)
          auc.dump_path += ".shard" + std::to_string(shard);
        auditor_ = std::make_unique<obs::InvariantAuditor>(auc);
        // Created up front so every shard registry has the same entries.
        breaches_counter_ = &registry_->counter("lifecycle.breaches");
      }
    }
    sched_.bind_metrics(*registry_);
    data_tx_ = &registry_->counter("net.data_tx");
    data_failures_ = &registry_->counter("net.data_failures");
    rts_tx_ = &registry_->counter("net.rts_tx");
    rts_failures_ = &registry_->counter("net.rts_failures");
    simultaneous_starts_ = &registry_->counter("net.simultaneous_starts");
    for (std::size_t f = 0; f < n_flows_; ++f) {
      const std::vector<obs::Label> label{
          {"flow", std::to_string(flow_id_[f])}};
      delivered_.push_back(&registry_->counter("net.delivered", label));
      attempts_.push_back(&registry_->counter("net.attempts", label));
      retries_.push_back(&registry_->counter("net.retries", label));
      drops_.push_back(&registry_->counter("net.drops", label));
      // Queueing delays: 1 us .. 100 s, 8 bins/decade.
      delay_hist_.push_back(
          &registry_->histogram("net.flow_delay_s", 1e-6, 100.0, 64, label));
    }

    // Data-rate ladder: one fixed rate, or the eight OFDM rates for ARF.
    if (config.rate_control == RateControlMode::kArf) {
      check(per_model_, "ARF rate control requires the PER error model");
      check(config.generation == mac::PhyGeneration::kOfdm,
            "ARF rate control is implemented for the OFDM generation");
      for (std::size_t i = 0; i < 8; ++i) {
        data_rates_.push_back(
            phy::ofdm_mcs_info(static_cast<phy::OfdmMcs>(i)).data_rate_mbps);
      }
      for (std::size_t f = 0; f < n_flows_; ++f) {
        const std::uint32_t src = flow_src_[f];
        arf_[src].emplace(data_rates_.size());
        rate_index_[src] = arf_[src]->current();
      }
    } else {
      data_rates_.push_back(config.data_rate_mbps);
    }

    // Frame airtimes.
    const std::size_t data_mpdu =
        mac::mpdu_size_bytes(mac::FrameType::kData, config.payload_bytes);
    for (const double rate : data_rates_) {
      t_data_by_rate_.push_back(
          mac::data_ppdu_duration_s(config.generation, rate, data_mpdu));
    }
    t_ack_ = mac::control_duration_s(config.generation, mac::kAckBytes,
                                     config.basic_rate_mbps);
    t_rts_ = mac::control_duration_s(config.generation, mac::kRtsBytes,
                                     config.basic_rate_mbps);
    t_cts_ = mac::control_duration_s(config.generation, mac::kCtsBytes,
                                     config.basic_rate_mbps);

    // PER-model link dictionaries, one per flow in flow order (then a
    // fixed draw order inside LinkPerModel), so a seeded run is a pure
    // function of its Rng. Control frames ride the basic rate; an HT
    // network still sends them as legacy OFDM.
    rate_stats_.resize(n_flows_);
    if (per_model_) {
      const mac::PhyGeneration ctrl_gen =
          config.generation == mac::PhyGeneration::kHt
              ? mac::PhyGeneration::kOfdm
              : config.generation;
      models_.reserve(n_flows_);
      for (std::size_t f = 0; f < n_flows_; ++f) {
        FlowErrorModels m;
        m.data.reserve(data_rates_.size());
        for (const double rate : data_rates_) {
          m.data.emplace_back(config.generation, rate, data_mpdu,
                              config.error_model, rng_);
        }
        m.ctrl_fwd = LinkPerModel(ctrl_gen, config.basic_rate_mbps,
                                  mac::kRtsBytes, config.error_model, rng_);
        m.ctrl_rev = LinkPerModel(ctrl_gen, config.basic_rate_mbps,
                                  mac::kAckBytes, config.error_model, rng_);
        models_.push_back(std::move(m));
      }
    }
  }

  /// Global flow index per local flow (ascending).
  const std::vector<std::size_t>& flow_ids() const { return flow_id_; }
  /// Global node index per local node (ascending).
  const std::vector<std::size_t>& node_ids() const { return node_id_; }

  NetworkResult run() {
    {
      const obs::perf::ScopedSpan span("net.events");
      // Poisson arrival processes for non-saturated flows.
      for (std::size_t f = 0; f < n_flows_; ++f) {
        if (arrival_rate_[f] > 0.0) {
          schedule_arrival(flow_src_[f], arrival_rate_[f]);
        }
      }
      for (std::size_t n = 0; n < n_; ++n) {
        maybe_start_countdown(n);
      }
      sched_.run_until(config_.duration_s);
    }
    const obs::perf::ScopedSpan span("net.finalize");
    // Populate the result struct from the registry.
    result_.data_tx_count = data_tx_->value();
    result_.data_failures = data_failures_->value();
    result_.rts_tx_count = rts_tx_->value();
    result_.rts_failures = rts_failures_->value();
    result_.simultaneous_starts = simultaneous_starts_->value();
    for (std::size_t f = 0; f < n_flows_; ++f) {
      FlowStats& fs = result_.flows[f];
      fs.delivered = delivered_[f]->value();
      fs.attempts = attempts_[f]->value();
      fs.retries = retries_[f]->value();
      fs.drops = drops_[f]->value();
      fs.mean_delay_s = delay_hist_[f]->mean();
      fs.mean_data_rate_mbps =
          rate_stats_[f].attempts
              ? rate_stats_[f].rate_sum_mbps /
                    static_cast<double>(rate_stats_[f].attempts)
              : data_rates_.front();
      fs.throughput_mbps = static_cast<double>(fs.delivered) *
                           static_cast<double>(config_.payload_bytes) * 8.0 /
                           config_.duration_s / 1e6;
      result_.total_delivered += fs.delivered;
      result_.aggregate_throughput_mbps += fs.throughput_mbps;
    }
    if (airtime_) {
      result_.airtime = airtime_->finalize(config_.duration_s);
      airtime_->publish(*registry_);
    }
    if (ledger_) {
      result_.lifecycle.ledger = ledger_->finalize(config_.duration_s);
      ledger_->publish(*registry_);
      result_.lifecycle.series = sampler_->finalize(config_.duration_s);
      if (auditor_) {
        auditor_->audit(result_.lifecycle.ledger);
        if (airtime_) auditor_->audit(result_.airtime);
        result_.lifecycle.breaches = auditor_->finalize(config_.duration_s);
        result_.lifecycle.breach_messages = auditor_->breach_messages();
        result_.lifecycle.flight_recorder_json =
            auditor_->flight_recorder_json();
        breaches_counter_->add(result_.lifecycle.breaches);
      }
    }
    return result_;
  }

 private:
  /// One pointer test per site when all observers are off (the lifecycle
  /// sinks only exist when ledger_ does, so three tests cover them all).
  /// Internal analyzers index their arrays by the event's node/flow ids,
  /// so they receive LOCAL ids (they are sized for this shard); the
  /// user's trace sink gets a copy remapped to global ids.
  void emit(obs::EventType type, std::size_t node, std::size_t peer,
            std::size_t flow, double value, const char* detail = "",
            std::size_t frame = kNone) {
    if (!trace_ && !airtime_ && !ledger_) return;
    obs::TraceEvent e;
    e.time_s = sched_.now();
    e.type = type;
    e.node = node == kNone ? -1 : static_cast<std::int32_t>(node);
    e.peer = peer == kNone ? -1 : static_cast<std::int32_t>(peer);
    e.flow = flow == kNone ? -1 : static_cast<std::int32_t>(flow);
    e.frame = frame == kNone
                  ? -1
                  : static_cast<std::int64_t>(frame_id_base_ + frame);
    e.value = value;
    e.detail = detail;
    if (trace_) {
      obs::TraceEvent g = e;
      if (node != kNone) g.node = static_cast<std::int32_t>(node_id_[node]);
      if (peer != kNone) g.peer = static_cast<std::int32_t>(node_id_[peer]);
      if (flow != kNone) g.flow = static_cast<std::int32_t>(flow_id_[flow]);
      trace_->record(g);
    }
    if (airtime_) airtime_->record(e);
    if (ledger_) ledger_->record(e);
    if (sampler_) sampler_->record(e);
    if (auditor_) auditor_->record(e);
  }

  unsigned draw_backoff(std::size_t n) {
    return static_cast<unsigned>(rng_.uniform_int(cw_[n] + 1));
  }

  /// Data-frame airtime at station `n`'s current rate.
  double t_data(std::size_t n) const { return t_data_by_rate_[rate_index_[n]]; }

  void record_data_rate(std::size_t flow, std::size_t rate_index) {
    rate_stats_[flow].rate_sum_mbps += data_rates_[rate_index];
    ++rate_stats_[flow].attempts;
  }

  /// PER dictionary governing a transmission's reception. CTS and ACK
  /// frames are addressed to the station that sourced the exchange, so
  /// their flow is recovered from the destination.
  const LinkPerModel& model_for(const Transmission& t) const {
    switch (t.kind) {
      case mac::FrameType::kData:
        return models_[t.flow].data[t.rate_index];
      case mac::FrameType::kRts:
        return models_[t.flow].ctrl_fwd;
      case mac::FrameType::kCts:
      case mac::FrameType::kAck:
        return models_[flow_of_[t.dest]].ctrl_rev;
      case mac::FrameType::kBeacon:
        break;
    }
    check(false, "no PER model for this frame type");
    return models_.front().ctrl_rev;
  }

  /// Edge index of neighbor `to` in `from`'s row (rows are ascending);
  /// kNil when the pair is uncoupled.
  std::uint32_t edge_index(std::size_t from, std::uint32_t to) const {
    const auto begin = row_nbr_.begin() + row_off_[from];
    const auto end = row_nbr_.begin() + row_off_[from + 1];
    const auto it = std::lower_bound(begin, end, to);
    if (it == end || *it != to) return kNil;
    return static_cast<std::uint32_t>(it - row_nbr_.begin());
  }

  /// Received power at `to` from `from`; exactly zero for uncoupled
  /// pairs (the cutoff's definition of negligible).
  double rx_power_w(std::size_t from, std::size_t to) const {
    const std::uint32_t e = edge_index(from, static_cast<std::uint32_t>(to));
    return e == kNil ? 0.0 : row_gain_[e];
  }

  bool medium_busy(std::size_t n) const {
    if (transmitting_[n]) return true;
    if (sched_.now() < nav_until_[n]) return true;
    return ambient_w_[n] >= cs_w_[n];
  }

  // ---- contention ----

  // Freezes a counting station. Returns true when the station's counter
  // had already reached zero at this exact instant — i.e. it transmits
  // simultaneously with whatever made the medium busy (a real collision),
  // because it cannot sense a transmission that starts in the same slot.
  [[nodiscard]] bool freeze(std::size_t n) {
    if (!counting_[n]) return false;
    const double elapsed = sched_.now() - count_start_s_[n] - timing_.difs_s();
    if (elapsed > 0.0) {
      const auto used =
          static_cast<unsigned>(std::floor(elapsed / timing_.slot_s + 1e-9));
      slots_remaining_[n] -= std::min(used, slots_remaining_[n]);
    }
    counting_[n] = 0;
    ++timer_version_[n];
    emit(obs::EventType::kBackoffFreeze, n, kNone, flow_of_[n],
         static_cast<double>(slots_remaining_[n]));
    return slots_remaining_[n] == 0 && elapsed >= -1e-12;
  }

  bool has_traffic(std::size_t n) const {
    return flow_of_[n] != kNone && (saturated_[n] || !queue_[n].empty());
  }

  void schedule_arrival(std::size_t n, double rate_pps) {
    sched_.schedule(rng_.exponential(1.0 / rate_pps), [this, n, rate_pps] {
      queue_[n].push_back(sched_.now());
      emit(obs::EventType::kArrival, n, kNone, flow_of_[n],
           static_cast<double>(queue_[n].size()));
      maybe_start_countdown(n);
      schedule_arrival(n, rate_pps);
    });
  }

  void maybe_start_countdown(std::size_t n) {
    if (!has_traffic(n) || counting_[n] || transmitting_[n] ||
        waiting_[n] != WaitKind::kNone) {
      return;
    }
    if (medium_busy(n)) return;
    counting_[n] = 1;
    count_start_s_[n] = sched_.now();
    emit(obs::EventType::kBackoffStart, n, kNone, flow_of_[n],
         static_cast<double>(slots_remaining_[n]));
    const std::uint64_t version = ++timer_version_[n];
    const double delay =
        timing_.difs_s() +
        static_cast<double>(slots_remaining_[n]) * timing_.slot_s;
    sched_.schedule(delay, [this, n, version] {
      if (!counting_[n] || timer_version_[n] != version) return;
      counting_[n] = 0;
      slots_remaining_[n] = 0;
      begin_exchange(n);
    });
    // If the NAV is what ends later, it was already accounted: medium_busy
    // checked NAV; NAV can only start via frame ends which re-evaluate.
  }

  /// Re-evaluates the medium at `center` and its neighbors, ascending —
  /// the only stations whose carrier-sense inputs an event at `center`
  /// can have changed. On the unbounded plan this is every station, in
  /// the same order the dense engine scanned them.
  void update_medium_set(std::size_t center) {
    const std::size_t depth = fire_depth_++;
    if (fire_pool_.size() <= depth) fire_pool_.emplace_back();
    fire_pool_[depth].clear();
    bool center_done = false;
    for (std::size_t e = row_off_[center]; e < row_off_[center + 1]; ++e) {
      const std::size_t m = row_nbr_[e];
      if (!center_done && center < m) {
        visit_medium(center, depth);
        center_done = true;
      }
      visit_medium(m, depth);
    }
    if (!center_done) visit_medium(center, depth);
    // Stations whose counters expired in the very slot the medium went
    // busy transmit anyway — the collision DCF is built around.
    simultaneous_starts_->add(fire_pool_[depth].size());
    for (const std::uint32_t n : fire_pool_[depth]) {
      emit(obs::EventType::kCollision, n, kNone, flow_of_[n], 0.0);
      begin_exchange(n);
    }
    --fire_depth_;
  }

  void visit_medium(std::size_t n, std::size_t depth) {
    const bool busy = medium_busy(n);
    if (busy && !busy_prev_[n]) {
      if (freeze(n)) fire_pool_[depth].push_back(static_cast<std::uint32_t>(n));
    } else if (!busy) {
      // Idle (or just became idle): an eligible station may (re)start.
      maybe_start_countdown(n);
    }
    busy_prev_[n] = busy;
  }

  /// Single-node re-evaluation for NAV expiry: only `n`'s own medium
  /// view changed, so no neighbor walk is needed.
  void update_medium_node(std::size_t n) {
    const bool busy = medium_busy(n);
    const bool rising = busy && !busy_prev_[n];
    busy_prev_[n] = busy;
    if (rising) {
      if (freeze(n)) {
        simultaneous_starts_->add(1);
        emit(obs::EventType::kCollision, n, kNone, flow_of_[n], 0.0);
        begin_exchange(n);
      }
    } else if (!busy) {
      maybe_start_countdown(n);
    }
  }

  /// One pending NAV wakeup per node, however many NAV_SETs pile up: a
  /// later extension just lets the armed wakeup fire early and re-arm
  /// at the new expiry, instead of scheduling one event per NAV_SET
  /// (which grew the queue quadratically under dense overhearing).
  void arm_nav_wakeup(std::size_t n) {
    if (nav_armed_[n]) return;
    nav_armed_[n] = 1;
    sched_.schedule_at(nav_until_[n], [this, n] {
      nav_armed_[n] = 0;
      if (sched_.now() < nav_until_[n]) {
        arm_nav_wakeup(n);  // NAV was extended meanwhile
        return;
      }
      update_medium_node(n);
    });
  }

  // ---- transmissions ----

  void start_transmission(std::size_t n, std::size_t dest,
                          mac::FrameType kind, std::size_t flow,
                          double duration_s, double nav_until_s) {
    transmitting_[n] = 1;
    Transmission t;
    t.id = next_id_++;
    t.tx_node = n;
    t.dest = dest;
    t.kind = kind;
    t.flow = flow;
    if (kind == mac::FrameType::kData) t.rate_index = rate_index_[n];
    t.start_s = sched_.now();
    t.end_s = sched_.now() + duration_s;
    t.nav_until_s = nav_until_s;
    if (dest != kNone) {
      // This frame's power is not yet in the ambient sums, so the
      // ambient at the destination is exactly the interference it will
      // see.
      t.current_interference_w = ambient_w_[dest];
      // A destination that is itself transmitting cannot receive.
      if (transmitting_[dest]) t.rx_was_transmitting = true;
      t.worst_interference_w = t.current_interference_w;
    }
    // This transmission interferes with every other ongoing reception.
    for (std::uint32_t s = head_; s != kNil; s = slots_[s].next) {
      Transmission& other = slots_[s];
      if (other.dest == kNone || other.dest == n) continue;
      other.current_interference_w += rx_power_w(n, other.dest);
      other.worst_interference_w =
          std::max(other.worst_interference_w, other.current_interference_w);
    }
    // And if any ongoing reception is addressed to us, it is now lost.
    for (std::uint32_t s = head_; s != kNil; s = slots_[s].next) {
      if (slots_[s].dest == n) slots_[s].rx_was_transmitting = true;
    }
    emit(obs::EventType::kTxStart, n, dest, flow, duration_s,
         frame_name(kind), t.id);
    const std::size_t id = t.id;
    const std::uint32_t slot = push_active(t);
    // Fold this signal into the running ambient sums of every neighbor
    // (the peak calibrates the teardown clamp's rounding slack).
    for (std::size_t e = row_off_[n]; e < row_off_[n + 1]; ++e) {
      const std::size_t m = row_nbr_[e];
      ambient_w_[m] += row_gain_[e];
      ambient_peak_w_[m] = std::max(ambient_peak_w_[m], ambient_w_[m]);
    }
    update_medium_set(n);
    sched_.schedule(duration_s, [this, slot, id] {
      end_transmission(slot, id);
    });
  }

  void end_transmission(std::uint32_t slot, std::size_t id) {
    check(slot < slots_.size() && slots_[slot].in_use &&
              slots_[slot].id == id,
          "transmission bookkeeping lost");
    const Transmission t = slots_[slot];
    unlink(slot);
    transmitting_[t.tx_node] = 0;
    // Remove this signal from the neighbors' ambient sums and from
    // other ongoing receptions' interference.
    for (std::size_t e = row_off_[t.tx_node]; e < row_off_[t.tx_node + 1];
         ++e) {
      const std::size_t m = row_nbr_[e];
      subtract_clamped(ambient_w_[m], row_gain_[e], ambient_peak_w_[m],
                       "ambient power went negative");
    }
    for (std::uint32_t s = head_; s != kNil; s = slots_[s].next) {
      Transmission& other = slots_[s];
      if (other.dest == kNone || other.dest == t.tx_node) continue;
      const double g = rx_power_w(t.tx_node, other.dest);
      if (g > 0.0) {
        // The sum was seeded from a snapshot of the destination's
        // ambient sum, so it inherits that sum's rounding residue —
        // scaled by the ambient's historical peak, which can dwarf this
        // frame's own interference.
        subtract_clamped(other.current_interference_w, g,
                         std::max(other.worst_interference_w,
                                  ambient_peak_w_[other.dest]),
                         "reception interference went negative");
      }
    }

    emit(obs::EventType::kTxEnd, t.tx_node, t.dest, t.flow,
         t.end_s - t.start_s, frame_name(t.kind), t.id);

    // Reception outcome at the addressed node.
    bool delivered = false;
    double sinr_db = -std::numeric_limits<double>::infinity();
    if (t.dest != kNone && !t.rx_was_transmitting &&
        !transmitting_[t.dest]) {
      const double signal = rx_power_w(t.tx_node, t.dest);
      const double sinr =
          signal / (noise_w_[t.dest] + t.worst_interference_w);
      sinr_db = lin_to_db(sinr);
      if (per_model_) {
        // Preamble acquisition first: the PER curves model payload
        // decoding and scale with payload length, so on their own a
        // short control frame would ride out an equal-power collision.
        // Below the capture SINR the receiver never syncs and no RNG is
        // consumed.
        if (sinr_db < config_.error_model.preamble_capture_db) {
          delivered = false;
        } else {
          // Block fading per frame: pick a realization from the link's
          // dictionary, look up its PER at the worst-case SINR (the
          // table is already scaled to this frame type's PSDU size),
          // survive a Bernoulli draw.
          const LinkPerModel& model = model_for(t);
          const auto realization = static_cast<std::size_t>(
              rng_.uniform_int(model.realizations()));
          delivered = !rng_.bernoulli(model.per(sinr_db, realization));
        }
      } else {
        const double required = t.kind == mac::FrameType::kData
                                    ? db_to_lin(config_.sinr_threshold_db)
                                    : db_to_lin(config_.control_sinr_db);
        delivered = sinr >= required;
      }
    }
    if (t.dest != kNone) {
      emit(delivered ? obs::EventType::kRxOk : obs::EventType::kRxFail,
           t.dest, t.tx_node, t.flow, sinr_db, frame_name(t.kind), t.id);
    }

    // Overhearing neighbors set their NAV from the duration field (a
    // non-neighbor's received power is below the cutoff, hence below
    // every carrier-sense threshold by construction).
    for (std::size_t e = row_off_[t.tx_node]; e < row_off_[t.tx_node + 1];
         ++e) {
      const std::size_t n = row_nbr_[e];
      if (n == t.dest) continue;
      if (row_gain_[e] >= cs_w_[n]) {
        if (t.nav_until_s > nav_until_[n]) {
          nav_until_[n] = t.nav_until_s;
          emit(obs::EventType::kNavSet, n, t.tx_node, kNone, t.nav_until_s,
               frame_name(t.kind));
          // Re-evaluate this node when its NAV expires (coalesced: at
          // most one pending wakeup per node).
          arm_nav_wakeup(n);
        }
      }
    }

    handle_frame_outcome(t, delivered);
    update_medium_set(t.tx_node);
  }

  std::uint32_t push_active(const Transmission& t) {
    std::uint32_t s;
    if (!free_.empty()) {
      s = free_.back();
      free_.pop_back();
      slots_[s] = t;
    } else {
      s = static_cast<std::uint32_t>(slots_.size());
      slots_.push_back(t);
    }
    Transmission& slot = slots_[s];
    slot.in_use = true;
    slot.prev = tail_;
    slot.next = kNil;
    if (tail_ != kNil) {
      slots_[tail_].next = s;
    } else {
      head_ = s;
    }
    tail_ = s;
    return s;
  }

  void unlink(std::uint32_t s) {
    Transmission& t = slots_[s];
    if (t.prev != kNil) {
      slots_[t.prev].next = t.next;
    } else {
      head_ = t.next;
    }
    if (t.next != kNil) {
      slots_[t.next].prev = t.prev;
    } else {
      tail_ = t.prev;
    }
    t.in_use = false;
    free_.push_back(s);
  }

  // ---- protocol ----

  void begin_exchange(std::size_t n) {
    const std::size_t flow = flow_of_[n];
    check(flow != kNone, "contention won by a node without traffic");
    attempts_[flow]->add();
    const double td = t_data(n);
    if (config_.rts_cts) {
      const double nav = sched_.now() + t_rts_ + 3.0 * timing_.sifs_s +
                         t_cts_ + td + t_ack_;
      rts_tx_->add();
      start_transmission(n, dest_of_[n], mac::FrameType::kRts, flow, t_rts_,
                         nav);
      arm_timeout(n, WaitKind::kCts,
                  t_rts_ + timing_.sifs_s + t_cts_ + timing_.slot_s);
    } else {
      const double nav = sched_.now() + td + timing_.sifs_s + t_ack_;
      data_tx_->add();
      record_data_rate(flow, rate_index_[n]);
      start_transmission(n, dest_of_[n], mac::FrameType::kData, flow, td,
                         nav);
      arm_timeout(n, WaitKind::kAck,
                  td + timing_.sifs_s + t_ack_ + timing_.slot_s);
    }
  }

  void arm_timeout(std::size_t n, WaitKind kind, double delay_s) {
    waiting_[n] = kind;
    const std::uint64_t version = ++wait_version_[n];
    sched_.schedule(delay_s, [this, n, version, kind] {
      if (wait_version_[n] != version || waiting_[n] == WaitKind::kNone)
        return;
      waiting_[n] = WaitKind::kNone;
      on_exchange_failed(n, kind);
    });
  }

  void on_exchange_failed(std::size_t n, WaitKind kind) {
    if (kind == WaitKind::kAck) {
      data_failures_->add();
      // Only a lost data frame is a rate-control signal; a missed CTS
      // says nothing about the data rate.
      if (arf_[n]) {
        arf_[n]->on_failure();
        rate_index_[n] = arf_[n]->current();
      }
    } else {
      rts_failures_->add();
    }
    const std::size_t flow = flow_of_[n];
    ++retries_count_[n];
    retries_[flow]->add();
    if (retries_count_[n] > config_.retry_limit) {
      drops_[flow]->add();
      emit(obs::EventType::kDrop, n, dest_of_[n], flow,
           static_cast<double>(retries_count_[n]));
      retries_count_[n] = 0;
      cw_[n] = timing_.cw_min;
      if (!saturated_[n] && !queue_[n].empty()) queue_[n].pop_front();
    } else {
      cw_[n] = std::min(2 * cw_[n] + 1, timing_.cw_max);
    }
    slots_remaining_[n] = draw_backoff(n);
    maybe_start_countdown(n);
  }

  void on_exchange_succeeded(std::size_t n) {
    if (arf_[n]) {
      arf_[n]->on_success();
      rate_index_[n] = arf_[n]->current();
    }
    const std::size_t flow = flow_of_[n];
    delivered_[flow]->add();
    emit(obs::EventType::kStateChange, n, dest_of_[n], flow, 0.0,
         "DELIVERED");
    if (!saturated_[n] && !queue_[n].empty()) {
      delay_hist_[flow]->record(sched_.now() - queue_[n].front());
      queue_[n].pop_front();
    }
    retries_count_[n] = 0;
    cw_[n] = timing_.cw_min;
    ++sequence_[n];
    slots_remaining_[n] = draw_backoff(n);  // next packet, if any
    maybe_start_countdown(n);
  }

  void handle_frame_outcome(const Transmission& t, bool delivered) {
    switch (t.kind) {
      case mac::FrameType::kRts: {
        if (!delivered) return;  // source's CTS timeout handles it
        // Destination answers CTS after SIFS.
        const std::size_t rx = t.dest;
        const std::size_t src = t.tx_node;
        const double nav = t.nav_until_s;
        sched_.schedule(timing_.sifs_s, [this, rx, src, nav] {
          start_transmission(rx, src, mac::FrameType::kCts, kNone, t_cts_,
                            nav);
        });
        break;
      }
      case mac::FrameType::kCts: {
        // The CTS is addressed to the data source; on reception it sends
        // the data frame after SIFS.
        const std::size_t src = t.dest;
        if (!delivered || waiting_[src] != WaitKind::kCts) return;
        waiting_[src] = WaitKind::kNone;
        ++wait_version_[src];
        const double nav = t.nav_until_s;
        sched_.schedule(timing_.sifs_s, [this, src, nav] {
          const double td = t_data(src);
          data_tx_->add();
          record_data_rate(flow_of_[src], rate_index_[src]);
          start_transmission(src, dest_of_[src], mac::FrameType::kData,
                             flow_of_[src], td, nav);
          arm_timeout(src, WaitKind::kAck,
                      td + timing_.sifs_s + t_ack_ + timing_.slot_s);
        });
        break;
      }
      case mac::FrameType::kData: {
        if (!delivered) return;  // ACK timeout at the source handles it
        const std::size_t rx = t.dest;
        const std::size_t src = t.tx_node;
        sched_.schedule(timing_.sifs_s, [this, rx, src] {
          start_transmission(rx, src, mac::FrameType::kAck, kNone, t_ack_,
                             sched_.now() + t_ack_);
        });
        break;
      }
      case mac::FrameType::kAck: {
        const std::size_t src = t.dest;
        if (!delivered || waiting_[src] != WaitKind::kAck) return;
        waiting_[src] = WaitKind::kNone;
        ++wait_version_[src];
        on_exchange_succeeded(src);
        break;
      }
      case mac::FrameType::kBeacon:
        break;
    }
  }

  NetworkConfig config_;
  Rng& rng_;
  std::uint64_t frame_id_base_ = 0;
  mac::MacTiming timing_{};
  sim::Scheduler sched_;
  std::size_t n_ = 0;        // shard size
  std::size_t n_flows_ = 0;  // flows sourced inside the shard
  std::vector<std::size_t> node_id_;  // local -> global node
  std::vector<std::size_t> flow_id_;  // local -> global flow
  std::vector<std::uint32_t> flow_src_;  // local flow -> local source
  std::vector<double> arrival_rate_;     // per local flow
  // Neighbor CSR with per-edge received power (W).
  std::vector<std::size_t> row_off_;
  std::vector<std::uint32_t> row_nbr_;
  std::vector<double> row_gain_;
  std::vector<double> noise_w_;
  std::vector<double> cs_w_;
  // Station state, structure-of-arrays.
  std::vector<std::size_t> flow_of_;
  std::vector<std::size_t> dest_of_;
  std::vector<std::uint8_t> saturated_;
  std::vector<std::deque<double>> queue_;
  std::vector<unsigned> cw_;
  std::vector<unsigned> retries_count_;
  std::vector<unsigned> slots_remaining_;
  std::vector<std::uint8_t> counting_;
  std::vector<double> count_start_s_;
  std::vector<std::uint64_t> timer_version_;
  std::vector<std::uint8_t> busy_prev_;
  std::vector<double> nav_until_;
  std::vector<std::uint8_t> nav_armed_;
  std::vector<double> ambient_w_;  // running sum of neighbor tx power
  std::vector<double> ambient_peak_w_;  // run max; clamp-slack scale
  std::vector<std::uint8_t> transmitting_;
  std::vector<WaitKind> waiting_;
  std::vector<std::uint64_t> wait_version_;
  std::vector<std::uint16_t> sequence_;
  std::vector<std::size_t> rate_index_;
  std::vector<std::optional<mac::ArfController>> arf_;
  // Active transmissions: slot arena + insertion-order intrusive list.
  std::vector<Transmission> slots_;
  std::vector<std::uint32_t> free_;
  std::uint32_t head_ = kNil;
  std::uint32_t tail_ = kNil;
  std::size_t next_id_ = 0;
  // Per-recursion-depth scratch for update_medium_set's fire list.
  std::vector<std::vector<std::uint32_t>> fire_pool_;
  std::size_t fire_depth_ = 0;
  // Observability: counters/histograms live in `*registry_`; trace may
  // be null.
  obs::Registry local_registry_;
  obs::Registry* registry_ = nullptr;
  obs::TraceSink* trace_ = nullptr;
  std::unique_ptr<obs::AirtimeAccountant> airtime_;
  std::unique_ptr<obs::FrameLedger> ledger_;
  std::unique_ptr<obs::TimeSeriesSampler> sampler_;
  std::unique_ptr<obs::InvariantAuditor> auditor_;
  obs::Counter* breaches_counter_ = nullptr;
  obs::Counter* data_tx_ = nullptr;
  obs::Counter* data_failures_ = nullptr;
  obs::Counter* rts_tx_ = nullptr;
  obs::Counter* rts_failures_ = nullptr;
  obs::Counter* simultaneous_starts_ = nullptr;
  std::vector<obs::Counter*> delivered_;
  std::vector<obs::Counter*> attempts_;
  std::vector<obs::Counter*> retries_;
  std::vector<obs::Counter*> drops_;
  std::vector<obs::Histogram*> delay_hist_;
  std::vector<double> data_rates_;      // ladder (1 entry when fixed)
  std::vector<double> t_data_by_rate_;  // airtime per ladder entry
  double t_ack_ = 0.0;
  double t_rts_ = 0.0;
  double t_cts_ = 0.0;
  // PER reception model (per_model_ only).
  bool per_model_ = false;
  struct FlowErrorModels {
    std::vector<LinkPerModel> data;  // source -> destination, per rate
    LinkPerModel ctrl_fwd;           // RTS, source -> destination
    LinkPerModel ctrl_rev;           // CTS/ACK, destination -> source
  };
  std::vector<FlowErrorModels> models_;
  struct RateStats {
    double rate_sum_mbps = 0.0;
    std::uint64_t attempts = 0;
  };
  std::vector<RateStats> rate_stats_;
  NetworkResult result_;
};

void validate_network(const std::vector<NodeConfig>& nodes,
                      const std::vector<Flow>& flows) {
  check(nodes.size() >= 2, "network needs at least two nodes");
  check(!flows.empty(), "network needs at least one flow");
  for (const Flow& f : flows) {
    check(f.source < nodes.size() && f.destination < nodes.size(),
          "flow endpoints out of range");
  }
}

/// Folds one shard's airtime ledger into the global report. Channel
/// seconds sum — the merged report describes `n_shards` independent
/// channels, so duration_s grows with each shard and the
/// idle+busy+collision partition still closes against it. Node and flow
/// entries land in their global slots.
void merge_airtime(obs::AirtimeReport& into, const obs::AirtimeReport& part,
                   const std::vector<std::size_t>& node_ids,
                   const std::vector<std::size_t>& flow_ids,
                   std::size_t n_nodes, std::size_t n_flows) {
  if (into.nodes.empty() && into.flows.empty()) {
    into.nodes.resize(n_nodes);
    into.flows.resize(n_flows);
    into.window_s = part.window_s;
  }
  into.duration_s += part.duration_s;
  into.idle_s += part.idle_s;
  into.busy_s += part.busy_s;
  into.collision_s += part.collision_s;
  for (std::size_t n = 0; n < part.nodes.size(); ++n)
    into.nodes[node_ids[n]] = part.nodes[n];
  for (std::size_t f = 0; f < part.flows.size(); ++f)
    into.flows[flow_ids[f]] = part.flows[f];
}

/// Folds one shard's lifecycle books into the global result: ledger
/// flows land in their global slots and totals sum; series windows sum
/// (collision_rate accumulates here and is averaged by the caller);
/// breach messages are prefixed with their shard.
void merge_lifecycle(NetworkResult::LifecycleResult& into,
                     const NetworkResult::LifecycleResult& part,
                     const std::vector<std::size_t>& flow_ids,
                     std::size_t n_flows, std::size_t shard) {
  obs::LifecycleReport& ledger = into.ledger;
  if (ledger.flows.empty()) ledger.flows.resize(n_flows);
  ledger.duration_s = std::max(ledger.duration_s, part.ledger.duration_s);
  for (std::size_t f = 0; f < part.ledger.flows.size(); ++f)
    ledger.flows[flow_ids[f]] = part.ledger.flows[f];
  ledger.total.accumulate(part.ledger.total);
  ledger.delivered += part.ledger.delivered;
  ledger.dropped += part.ledger.dropped;
  ledger.in_flight += part.ledger.in_flight;

  obs::LifecycleSeries& series = into.series;
  if (series.window_s == 0.0) series.window_s = part.series.window_s;
  const std::size_t n = part.series.t_s.size();
  if (series.t_s.size() < n) {
    series.t_s = part.series.t_s;
    series.goodput_mbps.resize(n, 0.0);
    series.collision_rate.resize(n, 0.0);
    series.in_flight.resize(n, 0.0);
  }
  for (std::size_t w = 0; w < n; ++w) {
    series.goodput_mbps[w] += part.series.goodput_mbps[w];
    series.collision_rate[w] += part.series.collision_rate[w];
    series.in_flight[w] += part.series.in_flight[w];
  }
  series.warmup_windows =
      std::max(series.warmup_windows, part.series.warmup_windows);

  into.breaches += part.breaches;
  for (const std::string& m : part.breach_messages)
    into.breach_messages.push_back("shard " + std::to_string(shard) + ": " +
                                   m);
  if (into.flight_recorder_json.empty())
    into.flight_recorder_json = part.flight_recorder_json;
}

}  // namespace

NetworkResult simulate_network(const NetworkConfig& config,
                               const std::vector<NodeConfig>& nodes,
                               const std::vector<Flow>& flows, Rng& rng) {
  validate_network(nodes, flows);
  std::optional<Engine> engine;
  {
    // Topology, rate tables, and (with an error model) the frozen fading
    // dictionaries — often a visible share of short runs.
    const obs::perf::ScopedSpan span("net.setup");
    ShardOptions monolithic;
    monolithic.cutoff_margin_db = std::numeric_limits<double>::infinity();
    const ShardPlan plan = plan_shards(config, nodes, monolithic);
    engine.emplace(config, nodes, flows, plan, 0, rng, config.registry,
                   config.trace, 0);
  }
  return engine->run();
}

NetworkResult simulate_network_sharded(const NetworkConfig& config,
                                       const std::vector<NodeConfig>& nodes,
                                       const std::vector<Flow>& flows,
                                       const ShardOptions& options, Rng& rng,
                                       const ShardPlan* plan) {
  validate_network(nodes, flows);
  ShardPlan local_plan;
  if (!plan) {
    const obs::perf::ScopedSpan span("net.plan");
    local_plan = plan_shards(config, nodes, options);
    plan = &local_plan;
  }
  for (const Flow& f : flows) {
    check(plan->shard_of[f.source] == plan->shard_of[f.destination],
          "flow endpoints fall in different shards; widen cutoff_margin_db");
  }

  const std::size_t n_shards = plan->shards.size();
  if (n_shards == 1) {
    // Degenerate plan: run inline on the caller's rng — bitwise the
    // monolithic simulation.
    std::optional<Engine> engine;
    {
      const obs::perf::ScopedSpan span("net.setup");
      engine.emplace(config, nodes, flows, *plan, 0, rng, config.registry,
                     config.trace, 0);
    }
    return engine->run();
  }

  // One synchronized wrapper shared by every shard; the caller's sink is
  // never touched from two threads at once.
  std::optional<obs::SynchronizedTraceSink> synced;
  if (config.trace) synced.emplace(*config.trace);

  struct ShardOutput {
    NetworkResult result;
    std::unique_ptr<obs::Registry> registry;
    std::vector<std::size_t> node_ids;
    std::vector<std::size_t> flow_ids;
  };

  // One derived Rng per shard from a single root draw — the sweep is a
  // pure function of the caller's rng state and the plan, bitwise
  // identical for any worker count.
  const std::uint64_t root = rng.next_u64();
  par::SweepOptions opt;
  opt.root_seed = root;
  opt.jobs = options.jobs;
  std::vector<ShardOutput> outputs =
      par::map(n_shards, opt, [&](std::size_t s, Rng& shard_rng) {
        ShardOutput out;
        out.registry = std::make_unique<obs::Registry>();
        std::optional<Engine> engine;
        {
          const obs::perf::ScopedSpan span("net.setup");
          engine.emplace(config, nodes, flows, *plan, s, shard_rng,
                         out.registry.get(), synced ? &*synced : nullptr,
                         static_cast<std::uint64_t>(s) << 40);
        }
        out.result = engine->run();
        out.node_ids = engine->node_ids();
        out.flow_ids = engine->flow_ids();
        return out;
      });

  // Shard-order assembly: scalar sums, global slot placement for
  // per-flow stats, registry merge (merge order — not thread schedule —
  // defines gauges and instrument creation order).
  NetworkResult total;
  total.flows.resize(flows.size());
  for (std::size_t s = 0; s < n_shards; ++s) {
    const ShardOutput& out = outputs[s];
    const NetworkResult& r = out.result;
    for (std::size_t i = 0; i < out.flow_ids.size(); ++i)
      total.flows[out.flow_ids[i]] = r.flows[i];
    total.total_delivered += r.total_delivered;
    total.aggregate_throughput_mbps += r.aggregate_throughput_mbps;
    total.data_tx_count += r.data_tx_count;
    total.data_failures += r.data_failures;
    total.rts_tx_count += r.rts_tx_count;
    total.rts_failures += r.rts_failures;
    total.simultaneous_starts += r.simultaneous_starts;
    if (config.airtime) {
      merge_airtime(total.airtime, r.airtime, out.node_ids, out.flow_ids,
                    nodes.size(), flows.size());
    }
    if (config.lifecycle.enabled) {
      merge_lifecycle(total.lifecycle, r.lifecycle, out.flow_ids,
                      flows.size(), s);
    }
    if (config.registry) config.registry->merge(*out.registry);
  }
  if (config.lifecycle.enabled) {
    // collision_rate accumulated per-shard rates; report the mean. The
    // stationarity hint is recomputed over the merged goodput series.
    obs::LifecycleSeries& series = total.lifecycle.series;
    for (double& c : series.collision_rate)
      c /= static_cast<double>(n_shards);
    const std::size_t n = series.goodput_mbps.size();
    if (n >= 2) {
      const std::size_t half = n / 2;
      double first = 0.0;
      double second = 0.0;
      for (std::size_t w = 0; w < half; ++w) first += series.goodput_mbps[w];
      for (std::size_t w = half; w < n; ++w) second += series.goodput_mbps[w];
      first /= static_cast<double>(half);
      second /= static_cast<double>(n - half);
      series.stationarity_ratio = first > 0.0 ? second / first : 1.0;
    }
  }
  return total;
}

std::vector<NetworkResult> simulate_network_batch(
    const NetworkConfig& config, const std::vector<NodeConfig>& nodes,
    const std::vector<Flow>& flows, std::size_t n_runs,
    const BatchOptions& options) {
  check(n_runs > 0, "simulate_network_batch requires at least one run");

  // One synchronized wrapper shared by every run; the caller's sink is
  // never touched from two threads at once.
  std::optional<obs::SynchronizedTraceSink> synced;
  if (config.trace) synced.emplace(*config.trace);

  struct RunOutput {
    NetworkResult result;
    std::unique_ptr<obs::Registry> registry;
  };

  par::SweepOptions opt;
  opt.root_seed = options.root_seed;
  opt.jobs = options.jobs;
  std::vector<RunOutput> outputs =
      par::map(n_runs, opt, [&](std::size_t, Rng& run_rng) {
        NetworkConfig run_config = config;
        RunOutput out;
        out.registry = std::make_unique<obs::Registry>();
        run_config.registry = out.registry.get();
        if (synced) run_config.trace = &*synced;
        out.result = simulate_network(run_config, nodes, flows, run_rng);
        return out;
      });

  std::vector<NetworkResult> results;
  results.reserve(n_runs);
  for (RunOutput& out : outputs) {
    if (options.registry) options.registry->merge(*out.registry);
    results.push_back(std::move(out.result));
  }
  return results;
}

HiddenTerminalSetup make_hidden_terminal_setup(double sender_spacing_m) {
  HiddenTerminalSetup setup;
  // Senders at the ends, receiver in the middle. With enough spacing the
  // senders fall below each other's CS threshold while both still reach
  // the receiver.
  NodeConfig a;
  a.position = {0.0, 0.0};
  NodeConfig b;
  b.position = {sender_spacing_m, 0.0};
  NodeConfig ap;
  ap.position = {sender_spacing_m / 2.0, 0.0};
  setup.nodes = {a, b, ap};
  setup.flows = {{0, 2}, {1, 2}};
  return setup;
}

}  // namespace wlan::net

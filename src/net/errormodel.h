// Reception error models for the network simulator.
//
// The legacy model (`RxModel::kSinrThreshold`, the default) delivers a
// frame iff its SINR clears a hard threshold — fast, but it produces
// cliff-edge coverage and ignores rate, frame length, and fading. The
// PER model (`RxModel::kPerModel`) replaces the threshold with the
// link-to-system abstraction: each directed link gets a small dictionary
// of frozen block-fading realizations; a frame picks one realization,
// maps its mean SINR through the realization's precomputed
// EESM -> AWGN-PER table (already scaled to the frame's PSDU length),
// and survives a Bernoulli draw. The hot path is one table interpolation
// plus two RNG draws — no exp/log — so network-scale runs stay cheap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "channel/fading.h"
#include "common/rng.h"
#include "core/abstraction.h"
#include "mac/timing.h"

namespace wlan::net {

/// How the simulator decides whether a frame is received.
enum class RxModel {
  kSinrThreshold,  ///< legacy hard threshold on SINR (the default)
  kPerModel,       ///< EESM/PER abstraction + Bernoulli draw
};

/// Configuration of the PER reception model. All fields are ignored when
/// `model == kSinrThreshold` (and the simulator then consumes no extra
/// RNG draws, keeping legacy runs bitwise identical).
struct ErrorModelConfig {
  RxModel model = RxModel::kSinrThreshold;
  /// Delay profile of the per-link block-fading realizations.
  channel::DelayProfile profile = channel::DelayProfile::kOffice;
  /// Log-normal shadowing sigma applied once per node pair (symmetric),
  /// on top of the deterministic path loss. 0 disables shadowing.
  double shadowing_sigma_db = 0.0;
  /// Fading realizations cached per directed link; each frame picks one
  /// uniformly (block fading per frame, i.i.d. across frames).
  std::size_t realizations = 16;
  /// Minimum worst-case SINR for the receiver to acquire the preamble at
  /// all; below it the frame is lost outright. The calibrated PER curves
  /// cover payload decoding only and scale with payload length, so
  /// without this gate a 20-byte RTS "survives" an equal-power collision
  /// (~0 dB SINR) most of the time — in reality preamble correlation and
  /// the PLCP header die first.
  double preamble_capture_db = 4.0;
  /// SNR grid of the precomputed PER tables. Lookups clamp to the ends.
  double table_min_snr_db = -15.0;
  double table_max_snr_db = 50.0;
  double table_step_db = 0.5;
};

/// Precomputed PER model of one directed link at one PHY rate and PSDU
/// size: `realizations` frozen fading draws, each reduced to a
/// mean-SINR -> PER table (EESM effective SNR -> calibrated AWGN curve,
/// scaled to `psdu_bytes` at construction). DSSS/CCK links use a flat
/// (single-tap Rayleigh) coefficient per realization; OFDM and HT links
/// use a TDL realization sampled on their data-tone grids.
class LinkPerModel {
 public:
  LinkPerModel() = default;

  /// Builds the dictionary, drawing fading realizations from `rng`.
  /// `rate_mbps` must name a calibrated rate of the generation's curve
  /// family (OFDM: the eight 802.11a/g rates; HT: base MCS 0..7 20 MHz
  /// long-GI rates; DSSS/HR-DSSS: 1, 2, 5.5, 11 Mbps).
  LinkPerModel(mac::PhyGeneration gen, double rate_mbps,
               std::size_t psdu_bytes, const ErrorModelConfig& config,
               Rng& rng);

  std::size_t realizations() const { return tables_.size(); }

  /// PER of realization `realization` at mean SINR `sinr_db`.
  double per(double sinr_db, std::size_t realization) const {
    return tables_[realization].lookup(sinr_db);
  }

  /// Gathered batch lookup: out[i] = per(sinr_db[i], realization[i]).
  /// One call per shard-step instead of one per frame keeps the table
  /// walks together while the dictionaries are hot in cache.
  void per_batch(std::span<const double> sinr_db,
                 std::span<const std::uint32_t> realization,
                 std::span<double> out) const;

 private:
  std::vector<PerTable> tables_;
};

}  // namespace wlan::net

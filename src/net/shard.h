// Spatial sharding for the network simulator.
//
// A city-scale deployment is mostly empty air: at 10k nodes the dense
// gain matrix costs O(n^2) memory (~800 MB) and every medium update
// scans every station, yet a transmitter a kilometre away contributes
// power orders of magnitude below both the carrier-sense threshold and
// the thermal noise floor. `plan_shards` makes that locality explicit:
//
//  1. Cutoff rule. Compute the weakest power level any node could care
//     about — min over nodes of min(cs_threshold_dbm,
//     thermal_noise_dbm(bandwidth, nf)) — and subtract
//     `cutoff_margin_db`. A pair of nodes is *coupled* when either
//     direction's deterministic received power (tx power minus dual-
//     slope path loss, before shadowing) still clears that cutoff.
//     Everything below it is treated as exactly zero.
//  2. Tiling. Nodes are binned into a uniform hash grid whose cell
//     size is the cutoff radius (the distance at which the strongest
//     transmitter decays to the cutoff), so candidate pairs come from
//     the 3x3 cell neighbourhood — O(n * degree) instead of O(n^2).
//  3. Neighbor lists. The retained pairs form a symmetric CSR
//     adjacency (ascending per row). The engine stores gains only for
//     these edges.
//  4. Shards. Connected components of the coupling graph. Two nodes in
//     different components cannot exchange any above-cutoff power, so
//     each component simulates independently: private event queue,
//     private Rng (par::derive_seed), private obs::Registry — merged
//     in shard order, bitwise identically for any worker count.
//
// `cutoff_margin_db = +infinity` disables the cutoff: every pair is
// coupled, the plan is one shard, and the engine reproduces the
// monolithic simulation exactly — `simulate_network` itself runs on
// that degenerate plan.
#pragma once

#include <cstdint>
#include <vector>

#include "net/netsim.h"

namespace wlan::net {

/// Knobs for `plan_shards` / `simulate_network_sharded`.
struct ShardOptions {
  /// Safety margin below the weakest relevant threshold (carrier sense
  /// or noise floor) before a pair is declared uncoupled. Must cover
  /// the largest plausible shadowing upside (3-4 sigma). +infinity
  /// keeps every pair (monolithic plan).
  double cutoff_margin_db = 15.0;
  /// Hash-grid cell size in metres; 0 = the cutoff radius.
  double tile_m = 0.0;
  /// Worker lanes for the shard sweep; 0 = the process default pool.
  unsigned jobs = 0;
};

/// The precomputed coupling structure of a deployment.
struct ShardPlan {
  /// Received power below this is treated as zero (-inf when the
  /// cutoff is disabled).
  double cutoff_rx_dbm = 0.0;
  /// Distance at which the strongest transmitter decays to the cutoff
  /// (+inf when disabled).
  double cutoff_radius_m = 0.0;
  /// Hash-grid cell size actually used (0 when the grid was skipped).
  double tile_m = 0.0;

  /// Symmetric CSR adjacency over retained pairs: row i spans
  /// nbr[row_offset[i] .. row_offset[i+1]), ascending, i excluded.
  std::vector<std::size_t> row_offset;
  std::vector<std::uint32_t> nbr;

  /// Component id per node; components are numbered by their smallest
  /// member node, ascending.
  std::vector<std::uint32_t> shard_of;
  /// Member nodes per shard, ascending within each shard.
  std::vector<std::vector<std::uint32_t>> shards;

  std::size_t degree(std::size_t i) const {
    return row_offset[i + 1] - row_offset[i];
  }
  std::size_t n_edges() const { return nbr.size(); }
  double mean_degree() const {
    return row_offset.empty() || row_offset.size() == 1
               ? 0.0
               : static_cast<double>(nbr.size()) /
                     static_cast<double>(row_offset.size() - 1);
  }
  std::size_t max_degree() const {
    std::size_t m = 0;
    for (std::size_t i = 0; i + 1 < row_offset.size(); ++i)
      m = std::max(m, degree(i));
    return m;
  }
};

/// Builds the coupling plan for a deployment (no RNG, pure geometry).
ShardPlan plan_shards(const NetworkConfig& config,
                      const std::vector<NodeConfig>& nodes,
                      const ShardOptions& options);

/// Runs the network sharded: plans (unless `plan` is supplied), checks
/// every flow's endpoints share a shard (throws ContractError
/// otherwise — widen `cutoff_margin_db`), then simulates each shard
/// independently on the worker pool under
/// Rng(par::derive_seed(rng.next_u64(), shard, 0)) with a private
/// registry, and merges results, registries (into `config.registry`),
/// airtime and lifecycle books in shard order. A single-shard plan
/// runs inline on the caller's `rng` and is bitwise identical to
/// `simulate_network`. Results are bitwise identical for any
/// `options.jobs`.
NetworkResult simulate_network_sharded(const NetworkConfig& config,
                                       const std::vector<NodeConfig>& nodes,
                                       const std::vector<Flow>& flows,
                                       const ShardOptions& options, Rng& rng,
                                       const ShardPlan* plan = nullptr);

}  // namespace wlan::net

// Spatial sharding for the network simulator.
//
// A city-scale deployment is mostly empty air: at 10k nodes the dense
// gain matrix costs O(n^2) memory (~800 MB) and every medium update
// scans every station, yet a transmitter a kilometre away contributes
// power orders of magnitude below both the carrier-sense threshold and
// the thermal noise floor. `plan_shards` makes that locality explicit:
//
//  1. Cutoff rule. Compute the weakest power level any node could care
//     about — min over nodes of min(cs_threshold_dbm,
//     thermal_noise_dbm(bandwidth, nf)) — and subtract
//     `cutoff_margin_db`. A pair of nodes is *coupled* when either
//     direction's deterministic received power (tx power minus dual-
//     slope path loss, before shadowing) still clears that cutoff.
//     Everything below it is treated as exactly zero.
//  2. Tiling. Nodes are binned into a uniform hash grid whose cell
//     size is the cutoff radius (the distance at which the strongest
//     transmitter decays to the cutoff), so candidate pairs come from
//     the 3x3 cell neighbourhood — O(n * degree) instead of O(n^2).
//  3. Neighbor lists. The retained pairs form a symmetric CSR
//     adjacency (ascending per row). The engine stores gains only for
//     these edges.
//  4. Shards. Connected components of the coupling graph. Two nodes in
//     different components cannot exchange any above-cutoff power, so
//     each component simulates independently: private event queue,
//     private Rng (par::derive_seed), private obs::Registry — merged
//     in shard order, bitwise identically for any worker count.
//
// `cutoff_margin_db = +infinity` disables the cutoff: every pair is
// coupled, the plan is one shard, and the engine reproduces the
// monolithic simulation exactly — `simulate_network` itself runs on
// that degenerate plan.
//
// Border mode (`ShardOptions::border`) handles the case components
// cannot: one giant connected deployment. Instead of components, nodes
// are tiled into uniform spatial shards whose coupling edges may cross
// tile boundaries. Per-tile engines then run in conservative-time
// lockstep epochs of length `ShardPlan::lookahead_s`, exchanging
// cross-tile influence (ambient power, NAV, interference) through
// border messages applied one epoch later in a canonical order — see
// DESIGN.md "Border exchange & conservative time". The lookahead is the
// minimum cross-border reaction time of a NAV/interference change: one
// slot (the fastest a station can act on new channel state) plus the
// shortest cross-tile coupled distance over the speed of light, rounded
// down to a power of two so epoch boundaries are exact doubles.
#pragma once

#include <cstdint>
#include <vector>

#include "net/netsim.h"

namespace wlan::net {

/// Knobs for `plan_shards` / `simulate_network_sharded`.
struct ShardOptions {
  /// Safety margin below the weakest relevant threshold (carrier sense
  /// or noise floor) before a pair is declared uncoupled. Must cover
  /// the largest plausible shadowing upside (3-4 sigma). +infinity
  /// keeps every pair (monolithic plan).
  double cutoff_margin_db = 15.0;
  /// Hash-grid cell size in metres; 0 = the cutoff radius.
  double tile_m = 0.0;
  /// Worker lanes for the shard sweep; 0 = the process default pool.
  unsigned jobs = 0;

  /// Border mode: shard by uniform spatial tiles instead of connected
  /// components and run per-tile engines in conservative-time lockstep
  /// epochs with cross-tile influence delayed by the plan's lookahead.
  bool border = false;
  /// Border tile edge length in metres; 0 = the cutoff radius (requires
  /// a finite cutoff).
  double border_tile_m = 0.0;
  /// Override for the cross-tile influence delay; 0 = derive it from
  /// slot time + minimum cross-tile coupled distance. Either way the
  /// value is rounded down to a power of two seconds.
  double border_delay_s = 0.0;
  /// Run the border semantics on a single fused engine instead of
  /// per-tile engines (same tile assignment, same RNG streams, same
  /// delayed influence). The reference for bitwise-equivalence tests.
  bool border_reference = false;
};

/// Per-shard load estimate, for diagnosing epoch-barrier imbalance.
struct ShardLoad {
  std::size_t nodes = 0;
  std::size_t flows = 0;
  /// Directed CSR edges whose endpoints share this shard.
  std::size_t intra_edges = 0;
  /// Directed CSR edges leaving this shard (0 in component mode).
  std::size_t border_edges = 0;
  double weight() const {
    return static_cast<double>(nodes) + static_cast<double>(flows);
  }
};

/// The precomputed coupling structure of a deployment.
struct ShardPlan {
  /// Received power below this is treated as zero (-inf when the
  /// cutoff is disabled).
  double cutoff_rx_dbm = 0.0;
  /// Distance at which the strongest transmitter decays to the cutoff
  /// (+inf when disabled).
  double cutoff_radius_m = 0.0;
  /// Hash-grid cell size actually used (0 when the grid was skipped).
  double tile_m = 0.0;

  /// Symmetric CSR adjacency over retained pairs: row i spans
  /// nbr[row_offset[i] .. row_offset[i+1]), ascending, i excluded.
  std::vector<std::size_t> row_offset;
  std::vector<std::uint32_t> nbr;

  /// Component id per node; components are numbered by their smallest
  /// member node, ascending.
  std::vector<std::uint32_t> shard_of;
  /// Member nodes per shard, ascending within each shard.
  std::vector<std::vector<std::uint32_t>> shards;

  /// True when the plan shards by spatial tiles for border exchange.
  bool border = false;
  /// Conservative-time epoch length (s); 0 in component mode.
  double lookahead_s = 0.0;
  /// Shortest cross-tile coupled distance found (m); 0 when none.
  double min_border_m = 0.0;
  /// Per-shard load estimates (filled when flows were supplied).
  std::vector<ShardLoad> load;

  std::size_t degree(std::size_t i) const {
    return row_offset[i + 1] - row_offset[i];
  }
  std::size_t n_edges() const { return nbr.size(); }
  double mean_degree() const {
    return row_offset.empty() || row_offset.size() == 1
               ? 0.0
               : static_cast<double>(nbr.size()) /
                     static_cast<double>(row_offset.size() - 1);
  }
  std::size_t max_degree() const {
    std::size_t m = 0;
    for (std::size_t i = 0; i + 1 < row_offset.size(); ++i)
      m = std::max(m, degree(i));
    return m;
  }

  /// Heaviest shard weight (nodes + flows); 0 without load estimates.
  double max_load_weight() const {
    double m = 0.0;
    for (const ShardLoad& l : load) m = std::max(m, l.weight());
    return m;
  }
  double mean_load_weight() const {
    if (load.empty()) return 0.0;
    double s = 0.0;
    for (const ShardLoad& l : load) s += l.weight();
    return s / static_cast<double>(load.size());
  }
  /// max/mean shard weight; 1.0 = perfectly balanced.
  double load_imbalance() const {
    const double mean = mean_load_weight();
    return mean > 0.0 ? max_load_weight() / mean : 0.0;
  }
  std::size_t total_border_edges() const {
    std::size_t s = 0;
    for (const ShardLoad& l : load) s += l.border_edges;
    return s;
  }
};

/// Builds the coupling plan for a deployment (no RNG, pure geometry).
/// Supplying `flows` fills per-shard load estimates; in border mode it
/// additionally clusters each flow's endpoints into one tile (every
/// node of a flow-connected cluster adopts the tile of its smallest
/// member), guaranteeing flows never span tiles.
ShardPlan plan_shards(const NetworkConfig& config,
                      const std::vector<NodeConfig>& nodes,
                      const ShardOptions& options,
                      const std::vector<Flow>* flows = nullptr);

/// Runs the network sharded: plans (unless `plan` is supplied), checks
/// every flow's endpoints share a shard (throws ContractError
/// otherwise — widen `cutoff_margin_db` or enable `options.border`),
/// then simulates each shard independently on the worker pool under
/// Rng(par::derive_seed(rng.next_u64(), shard, 0)) with a private
/// registry, and merges results, registries (into `config.registry`),
/// airtime and lifecycle books in shard order. A single-shard plan
/// runs inline on the caller's `rng` and is bitwise identical to
/// `simulate_network`. Results are bitwise identical for any
/// `options.jobs`.
///
/// With `options.border` the shards are coupled spatial tiles run in
/// conservative-time lockstep epochs (see the header comment); results
/// are bitwise identical at any `options.jobs` and to the fused
/// single-engine reference (`options.border_reference`).
NetworkResult simulate_network_sharded(const NetworkConfig& config,
                                       const std::vector<NodeConfig>& nodes,
                                       const std::vector<Flow>& flows,
                                       const ShardOptions& options, Rng& rng,
                                       const ShardPlan* plan = nullptr);

}  // namespace wlan::net

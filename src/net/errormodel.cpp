#include "net/errormodel.h"

#include <algorithm>
#include <cmath>
#include <complex>

#include "common/check.h"
#include "common/units.h"
#include "phy/ht.h"
#include "phy/ofdm.h"

namespace wlan::net {
namespace {

constexpr double kRateTolMbps = 0.05;

phy::OfdmMcs ofdm_mcs_for_rate(double rate_mbps) {
  for (std::size_t i = 0; i < 8; ++i) {
    const auto mcs = static_cast<phy::OfdmMcs>(i);
    if (std::abs(phy::ofdm_mcs_info(mcs).data_rate_mbps - rate_mbps) <
        kRateTolMbps) {
      return mcs;
    }
  }
  check(false, "no OFDM MCS matches the requested PHY rate");
  return phy::OfdmMcs{};
}

unsigned ht_mcs_for_rate(double rate_mbps) {
  for (unsigned m = 0; m < 8; ++m) {
    const double r = phy::ht_data_rate_mbps(m, phy::HtBandwidth::k20MHz,
                                            phy::HtGuardInterval::kLong);
    if (std::abs(r - rate_mbps) < kRateTolMbps) return m;
  }
  check(false, "no HT base MCS (20 MHz, long GI) matches the requested rate");
  return 0;
}

DsssCckRate dsss_rate_for(double rate_mbps) {
  if (std::abs(rate_mbps - 1.0) < kRateTolMbps) return DsssCckRate::k1Mbps;
  if (std::abs(rate_mbps - 2.0) < kRateTolMbps) return DsssCckRate::k2Mbps;
  if (std::abs(rate_mbps - 5.5) < kRateTolMbps) return DsssCckRate::k5_5Mbps;
  if (std::abs(rate_mbps - 11.0) < kRateTolMbps) return DsssCckRate::k11Mbps;
  check(false, "no DSSS/CCK rate matches the requested PHY rate");
  return DsssCckRate::k1Mbps;
}

/// The uniform mean-SNR grid every table samples.
RVec table_grid(const ErrorModelConfig& config) {
  const auto n = static_cast<std::size_t>((config.table_max_snr_db -
                                           config.table_min_snr_db) /
                                              config.table_step_db +
                                          0.5) +
                 1;
  RVec grid;
  grid.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    grid.push_back(config.table_min_snr_db +
                   static_cast<double>(i) * config.table_step_db);
  }
  return grid;
}

}  // namespace

LinkPerModel::LinkPerModel(mac::PhyGeneration gen, double rate_mbps,
                           std::size_t psdu_bytes,
                           const ErrorModelConfig& config, Rng& rng) {
  check(config.realizations > 0,
        "the PER model needs at least one fading realization");
  const double lo = config.table_min_snr_db;
  const double hi = config.table_max_snr_db;
  const double step = config.table_step_db;
  tables_.reserve(config.realizations);
  // OFDM/HT tables batch the whole SNR grid through one EESM sweep per
  // realization (the grid evaluator hoists the per-tone conversions), so
  // dictionary construction — the dominant setup cost of dense networks,
  // one dictionary per flow per rate — does a fraction of the
  // transcendental work of point-by-point sampling.
  const RVec grid = table_grid(config);
  RVec eff(grid.size());
  switch (gen) {
    case mac::PhyGeneration::kOfdm: {
      const phy::OfdmMcs mcs = ofdm_mcs_for_rate(rate_mbps);
      const double beta = eesm_beta(mcs);
      for (std::size_t r = 0; r < config.realizations; ++r) {
        const channel::Tdl tdl = make_tdl(rng, config.profile, 20e6);
        eesm_effective_snr_grid_db(ofdm_tone_gains_db(tdl), beta, grid, eff);
        RVec per;
        per.reserve(eff.size());
        for (const double e : eff)
          per.push_back(ofdm_awgn_per(mcs, e, psdu_bytes));
        tables_.emplace_back(lo, step, std::move(per));
      }
      break;
    }
    case mac::PhyGeneration::kHt: {
      const unsigned mcs = ht_mcs_for_rate(rate_mbps);
      const double beta = ht_eesm_beta(mcs);
      for (std::size_t r = 0; r < config.realizations; ++r) {
        const channel::Tdl tdl = make_tdl(rng, config.profile, 20e6);
        eesm_effective_snr_grid_db(ht20_tone_gains_db(tdl), beta, grid, eff);
        RVec per;
        per.reserve(eff.size());
        for (const double e : eff)
          per.push_back(ht_awgn_per(mcs, e, psdu_bytes));
        tables_.emplace_back(lo, step, std::move(per));
      }
      break;
    }
    case mac::PhyGeneration::kDsss:
    case mac::PhyGeneration::kHrDsss: {
      const DsssCckRate rate = dsss_rate_for(rate_mbps);
      for (std::size_t r = 0; r < config.realizations; ++r) {
        // Narrowband waveform: one flat Rayleigh coefficient per packet.
        const Cplx h = channel::flat_fading_coefficient(rng);
        const double gain_db = lin_to_db(std::max(std::norm(h), 1e-12));
        tables_.emplace_back(lo, hi, step, [&](double snr_db) {
          return dsss_awgn_per(rate, snr_db + gain_db, psdu_bytes);
        });
      }
      break;
    }
  }
}

void LinkPerModel::per_batch(std::span<const double> sinr_db,
                             std::span<const std::uint32_t> realization,
                             std::span<double> out) const {
  check(sinr_db.size() == realization.size() && sinr_db.size() == out.size(),
        "per_batch spans must have equal sizes");
  for (std::size_t i = 0; i < sinr_db.size(); ++i) {
    out[i] = tables_[realization[i]].lookup(sinr_db[i]);
  }
}

}  // namespace wlan::net

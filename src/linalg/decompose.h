// Decompositions and solvers for small complex matrices.
//
// Everything here targets the tiny, well-conditioned systems that arise in
// MIMO detection (antenna-count dimensions): LU with partial pivoting,
// Cholesky, and a one-sided Jacobi SVD (simple, numerically robust, and
// more than fast enough at 4x4).
#pragma once

#include "linalg/cmatrix.h"

namespace wlan::linalg {

/// Solves A x = b by LU with partial pivoting. Requires A square,
/// b.size() == A.rows(). Throws ContractError on singular A.
CVec solve(const CMatrix& a, const CVec& b);

/// Matrix inverse via LU. Requires square, nonsingular.
CMatrix inverse(const CMatrix& a);

/// Determinant via LU (0 for singular).
Cplx determinant(const CMatrix& a);

/// Cholesky factor L (lower triangular, L L^H = A) of a Hermitian
/// positive-definite matrix. Throws ContractError if not HPD.
CMatrix cholesky(const CMatrix& a);

/// log2(det(A)) for Hermitian positive-definite A, via Cholesky.
double log2_det_hermitian(const CMatrix& a);

/// Singular value decomposition A = U * diag(s) * V^H.
/// U is rows x k, V is cols x k, s has k = min(rows, cols) entries in
/// descending order.
struct Svd {
  CMatrix u;
  RVec s;
  CMatrix v;
};

/// One-sided Jacobi SVD. Works for any shape.
Svd svd(const CMatrix& a);

/// Shannon capacity in bps/Hz of a MIMO channel H with per-receive-antenna
/// SNR `snr_linear` and equal power allocation across the Ntx transmit
/// antennas: log2 det(I + snr/Ntx * H H^H).
double mimo_capacity_bps_hz(const CMatrix& h, double snr_linear);

/// Water-filling capacity in bps/Hz given the channel's singular values and
/// total SNR budget (transmit-side channel knowledge, as with closed-loop
/// beamforming). Equal total power constraint: sum p_i = snr_linear.
double waterfilling_capacity_bps_hz(const RVec& singular_values, double snr_linear);

}  // namespace wlan::linalg

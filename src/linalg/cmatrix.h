// Dense complex matrix for small MIMO problems (<= 8x8 typical).
//
// This is deliberately a simple row-major dense type: 802.11n MIMO work
// involves tiny matrices (antennas x streams), so cache blocking and
// expression templates would be over-engineering (Core Guidelines Per.3:
// don't optimize without need).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/types.h"

namespace wlan::linalg {

/// Row-major dense complex matrix.
class CMatrix {
 public:
  /// Empty 0x0 matrix.
  CMatrix() = default;

  /// rows x cols matrix of zeros.
  CMatrix(std::size_t rows, std::size_t cols);

  /// Builds from nested initializer lists: CMatrix{{a,b},{c,d}}.
  CMatrix(std::initializer_list<std::initializer_list<Cplx>> rows);

  /// n x n identity.
  static CMatrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  /// Element access (bounds-checked in debug via vector::operator[] UB-free
  /// index computation; callers validated at API boundaries).
  Cplx& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const Cplx& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Conjugate transpose.
  CMatrix hermitian() const;

  /// Plain transpose (no conjugation).
  CMatrix transpose() const;

  /// Elementwise conjugate.
  CMatrix conj() const;

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Extracts column c as a vector.
  CVec column(std::size_t c) const;

  /// Extracts row r as a vector.
  CVec row(std::size_t r) const;

  /// Sets column c from a vector of length rows().
  void set_column(std::size_t c, const CVec& v);

  CMatrix& operator+=(const CMatrix& other);
  CMatrix& operator-=(const CMatrix& other);
  CMatrix& operator*=(Cplx scalar);

  friend CMatrix operator+(CMatrix a, const CMatrix& b) { return a += b; }
  friend CMatrix operator-(CMatrix a, const CMatrix& b) { return a -= b; }
  friend CMatrix operator*(CMatrix a, Cplx s) { return a *= s; }
  friend CMatrix operator*(Cplx s, CMatrix a) { return a *= s; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Cplx> data_;
};

/// Matrix product. Requires a.cols() == b.rows().
CMatrix operator*(const CMatrix& a, const CMatrix& b);

/// Matrix-vector product. Requires a.cols() == x.size().
CVec operator*(const CMatrix& a, const CVec& x);

/// Matrix-vector product into caller storage (bitwise identical to
/// operator*). Requires a.cols() == x.size() and out.size() == a.rows();
/// `out` must not alias `x`.
void multiply_to(const CMatrix& a, std::span<const Cplx> x,
                 std::span<Cplx> out);

/// Maximum absolute elementwise difference (for tests and convergence checks).
double max_abs_diff(const CMatrix& a, const CMatrix& b);

}  // namespace wlan::linalg

#include "linalg/decompose.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace wlan::linalg {
namespace {

struct Lu {
  CMatrix lu;                    // combined L (unit diagonal) and U
  std::vector<std::size_t> piv;  // row permutation
  int sign = 1;                  // permutation sign
  bool singular = false;
};

Lu lu_factor(CMatrix a) {
  const std::size_t n = a.rows();
  Lu f{std::move(a), {}, 1, false};
  f.piv.resize(n);
  std::iota(f.piv.begin(), f.piv.end(), std::size_t{0});
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: largest magnitude in column k at/below the diagonal.
    std::size_t pivot = k;
    double best = std::abs(f.lu(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::abs(f.lu(r, k));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-300) {
      f.singular = true;
      return f;
    }
    if (pivot != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(f.lu(k, c), f.lu(pivot, c));
      std::swap(f.piv[k], f.piv[pivot]);
      f.sign = -f.sign;
    }
    for (std::size_t r = k + 1; r < n; ++r) {
      const Cplx m = f.lu(r, k) / f.lu(k, k);
      f.lu(r, k) = m;
      for (std::size_t c = k + 1; c < n; ++c) {
        f.lu(r, c) -= m * f.lu(k, c);
      }
    }
  }
  return f;
}

CVec lu_solve(const Lu& f, const CVec& b) {
  const std::size_t n = f.lu.rows();
  CVec x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[f.piv[i]];
  // Forward substitution with unit-diagonal L.
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) x[i] -= f.lu(i, j) * x[j];
  }
  // Back substitution with U.
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t j = ii + 1; j < n; ++j) x[ii] -= f.lu(ii, j) * x[j];
    x[ii] /= f.lu(ii, ii);
  }
  return x;
}

}  // namespace

CVec solve(const CMatrix& a, const CVec& b) {
  check(a.rows() == a.cols(), "solve requires a square matrix");
  check(b.size() == a.rows(), "solve rhs size mismatch");
  const Lu f = lu_factor(a);
  check(!f.singular, "solve: singular matrix");
  return lu_solve(f, b);
}

CMatrix inverse(const CMatrix& a) {
  check(a.rows() == a.cols(), "inverse requires a square matrix");
  const std::size_t n = a.rows();
  const Lu f = lu_factor(a);
  check(!f.singular, "inverse: singular matrix");
  CMatrix out(n, n);
  CVec e(n, Cplx{0.0, 0.0});
  for (std::size_t c = 0; c < n; ++c) {
    e[c] = 1.0;
    out.set_column(c, lu_solve(f, e));
    e[c] = 0.0;
  }
  return out;
}

Cplx determinant(const CMatrix& a) {
  check(a.rows() == a.cols(), "determinant requires a square matrix");
  const Lu f = lu_factor(a);
  if (f.singular) return {0.0, 0.0};
  Cplx det = static_cast<double>(f.sign);
  for (std::size_t i = 0; i < a.rows(); ++i) det *= f.lu(i, i);
  return det;
}

CMatrix cholesky(const CMatrix& a) {
  check(a.rows() == a.cols(), "cholesky requires a square matrix");
  const std::size_t n = a.rows();
  CMatrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j).real();
    for (std::size_t k = 0; k < j; ++k) diag -= std::norm(l(j, k));
    check(diag > 0.0, "cholesky: matrix not positive definite");
    l(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      Cplx sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * std::conj(l(j, k));
      l(i, j) = sum / l(j, j).real();
    }
  }
  return l;
}

double log2_det_hermitian(const CMatrix& a) {
  const CMatrix l = cholesky(a);
  double acc = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) acc += std::log2(l(i, i).real());
  return 2.0 * acc;
}

Svd svd(const CMatrix& a) {
  if (a.rows() < a.cols()) {
    // Work on the transpose-conjugate and swap the factors back.
    Svd t = svd(a.hermitian());
    return Svd{std::move(t.v), std::move(t.s), std::move(t.u)};
  }
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  CMatrix work = a;
  CMatrix v = CMatrix::identity(n);

  constexpr double kTol = 1e-13;
  constexpr int kMaxSweeps = 60;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    bool converged = true;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        // 2x2 Gram entries for columns p, q.
        double app = 0.0;
        double aqq = 0.0;
        Cplx apq{0.0, 0.0};
        for (std::size_t r = 0; r < m; ++r) {
          app += std::norm(work(r, p));
          aqq += std::norm(work(r, q));
          apq += std::conj(work(r, p)) * work(r, q);
        }
        const double off = std::abs(apq);
        if (off <= kTol * std::sqrt(app * aqq) || off == 0.0) continue;
        converged = false;
        // Fold out the phase so the 2x2 problem is real, then rotate.
        const Cplx phase = apq / off;
        const double tau = (aqq - app) / (2.0 * off);
        const double t = (tau >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double c0 = 1.0 / std::sqrt(1.0 + t * t);
        const double s0 = t * c0;
        const Cplx ph_conj = std::conj(phase);
        for (std::size_t r = 0; r < m; ++r) {
          const Cplx xp = work(r, p);
          const Cplx xq = work(r, q);
          work(r, p) = c0 * xp - s0 * ph_conj * xq;
          work(r, q) = s0 * xp + c0 * ph_conj * xq;
        }
        for (std::size_t r = 0; r < n; ++r) {
          const Cplx vp = v(r, p);
          const Cplx vq = v(r, q);
          v(r, p) = c0 * vp - s0 * ph_conj * vq;
          v(r, q) = s0 * vp + c0 * ph_conj * vq;
        }
      }
    }
    if (converged) break;
  }

  // Singular values are the column norms; U columns are the normalized
  // rotated columns.
  RVec s(n, 0.0);
  CMatrix u(m, n);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  for (std::size_t c = 0; c < n; ++c) {
    double norm2 = 0.0;
    for (std::size_t r = 0; r < m; ++r) norm2 += std::norm(work(r, c));
    s[c] = std::sqrt(norm2);
  }
  std::sort(order.begin(), order.end(),
            [&s](std::size_t i, std::size_t j) { return s[i] > s[j]; });

  Svd out;
  out.s.resize(n);
  out.u = CMatrix(m, n);
  out.v = CMatrix(n, n);
  for (std::size_t c = 0; c < n; ++c) {
    const std::size_t src = order[c];
    out.s[c] = s[src];
    const double inv = s[src] > 1e-300 ? 1.0 / s[src] : 0.0;
    for (std::size_t r = 0; r < m; ++r) out.u(r, c) = work(r, src) * inv;
    for (std::size_t r = 0; r < n; ++r) out.v(r, c) = v(r, src);
  }
  return out;
}

double mimo_capacity_bps_hz(const CMatrix& h, double snr_linear) {
  check(!h.empty(), "mimo_capacity requires a non-empty channel");
  const std::size_t nrx = h.rows();
  const std::size_t ntx = h.cols();
  const CMatrix hh = h * h.hermitian();
  CMatrix m = CMatrix::identity(nrx);
  const double scale = snr_linear / static_cast<double>(ntx);
  for (std::size_t r = 0; r < nrx; ++r) {
    for (std::size_t c = 0; c < nrx; ++c) {
      m(r, c) += scale * hh(r, c);
    }
  }
  return log2_det_hermitian(m);
}

double waterfilling_capacity_bps_hz(const RVec& singular_values, double snr_linear) {
  check(!singular_values.empty(), "waterfilling requires singular values");
  // Eigenmode gains g_i = s_i^2; find water level mu with
  // sum_i max(0, mu - 1/g_i) = snr.
  RVec gains;
  for (const double s : singular_values) {
    if (s > 1e-12) gains.push_back(s * s);
  }
  if (gains.empty()) return 0.0;
  std::sort(gains.begin(), gains.end(), std::greater<>());
  // Try using the k strongest modes, largest k first that keeps powers >= 0.
  for (std::size_t k = gains.size(); k >= 1; --k) {
    double inv_sum = 0.0;
    for (std::size_t i = 0; i < k; ++i) inv_sum += 1.0 / gains[i];
    const double mu = (snr_linear + inv_sum) / static_cast<double>(k);
    if (mu - 1.0 / gains[k - 1] >= 0.0) {
      double cap = 0.0;
      for (std::size_t i = 0; i < k; ++i) {
        cap += std::log2(mu * gains[i]);
      }
      return cap;
    }
  }
  return 0.0;
}

}  // namespace wlan::linalg

#include "linalg/cmatrix.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace wlan::linalg {

CMatrix::CMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, Cplx{0.0, 0.0}) {}

CMatrix::CMatrix(std::initializer_list<std::initializer_list<Cplx>> rows) {
  rows_ = rows.size();
  cols_ = rows.begin() == rows.end() ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    check(row.size() == cols_, "CMatrix initializer rows must have equal length");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

CMatrix CMatrix::identity(std::size_t n) {
  CMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

CMatrix CMatrix::hermitian() const {
  CMatrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out(c, r) = std::conj((*this)(r, c));
    }
  }
  return out;
}

CMatrix CMatrix::transpose() const {
  CMatrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

CMatrix CMatrix::conj() const {
  CMatrix out = *this;
  for (auto& v : out.data_) v = std::conj(v);
  return out;
}

double CMatrix::frobenius_norm() const {
  double sum = 0.0;
  for (const auto& v : data_) sum += std::norm(v);
  return std::sqrt(sum);
}

CVec CMatrix::column(std::size_t c) const {
  check(c < cols_, "column index out of range");
  CVec v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

CVec CMatrix::row(std::size_t r) const {
  check(r < rows_, "row index out of range");
  CVec v(cols_);
  for (std::size_t c = 0; c < cols_; ++c) v[c] = (*this)(r, c);
  return v;
}

void CMatrix::set_column(std::size_t c, const CVec& v) {
  check(c < cols_ && v.size() == rows_, "set_column size mismatch");
  for (std::size_t r = 0; r < rows_; ++r) (*this)(r, c) = v[r];
}

CMatrix& CMatrix::operator+=(const CMatrix& other) {
  check(rows_ == other.rows_ && cols_ == other.cols_, "matrix size mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

CMatrix& CMatrix::operator-=(const CMatrix& other) {
  check(rows_ == other.rows_ && cols_ == other.cols_, "matrix size mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

CMatrix& CMatrix::operator*=(Cplx scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

CMatrix operator*(const CMatrix& a, const CMatrix& b) {
  check(a.cols() == b.rows(), "matrix product size mismatch");
  CMatrix out(a.rows(), b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const Cplx ark = a(r, k);
      if (ark == Cplx{0.0, 0.0}) continue;
      for (std::size_t c = 0; c < b.cols(); ++c) {
        out(r, c) += ark * b(k, c);
      }
    }
  }
  return out;
}

CVec operator*(const CMatrix& a, const CVec& x) {
  check(a.cols() == x.size(), "matrix-vector size mismatch");
  CVec out(a.rows(), Cplx{0.0, 0.0});
  for (std::size_t r = 0; r < a.rows(); ++r) {
    Cplx acc{0.0, 0.0};
    for (std::size_t c = 0; c < a.cols(); ++c) acc += a(r, c) * x[c];
    out[r] = acc;
  }
  return out;
}

void multiply_to(const CMatrix& a, std::span<const Cplx> x,
                 std::span<Cplx> out) {
  check(a.cols() == x.size(), "matrix-vector size mismatch");
  check(out.size() == a.rows(), "matrix-vector output size mismatch");
  for (std::size_t r = 0; r < a.rows(); ++r) {
    Cplx acc{0.0, 0.0};
    for (std::size_t c = 0; c < a.cols(); ++c) acc += a(r, c) * x[c];
    out[r] = acc;
  }
}

double max_abs_diff(const CMatrix& a, const CMatrix& b) {
  check(a.rows() == b.rows() && a.cols() == b.cols(), "matrix size mismatch");
  double m = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      m = std::max(m, std::abs(a(r, c) - b(r, c)));
    }
  }
  return m;
}

}  // namespace wlan::linalg

// Fundamental value types shared by every holtwlan subsystem.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

namespace wlan {

/// Complex baseband sample. All PHY processing is done at double precision;
/// the library models algorithms, not fixed-point implementations.
using Cplx = std::complex<double>;

/// A complex baseband waveform (one antenna / one stream).
using CVec = std::vector<Cplx>;

/// A real-valued vector (LLRs, power profiles, metrics).
using RVec = std::vector<double>;

/// An unpacked bit sequence, one bit per element (value 0 or 1).
using Bits = std::vector<std::uint8_t>;

/// A packed byte sequence (MAC payloads, PSDUs).
using Bytes = std::vector<std::uint8_t>;

}  // namespace wlan

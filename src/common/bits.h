// Bit/byte manipulation utilities shared by the PHY and MAC layers.
//
// 802.11 serializes bytes LSB-first on the air; all pack/unpack helpers here
// follow that convention.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/types.h"

namespace wlan {

/// Unpacks bytes into bits, LSB of each byte first (802.11 order).
Bits bytes_to_bits(std::span<const std::uint8_t> bytes);

/// Packs bits (LSB-first per byte) into bytes. Requires size % 8 == 0.
Bytes bits_to_bytes(std::span<const std::uint8_t> bits);

/// Number of positions at which the two sequences differ.
/// Requires equal lengths.
std::size_t hamming_distance(std::span<const std::uint8_t> a,
                             std::span<const std::uint8_t> b);

/// XOR-parity (0 or 1) of the bit sequence.
std::uint8_t parity(std::span<const std::uint8_t> bits);

/// Reverses the lowest `width` bits of `value` (bit-reversal permutation).
std::uint32_t reverse_bits(std::uint32_t value, int width);

}  // namespace wlan

#include "common/rng.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace wlan {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng::Rng(const Rng& other) {
  for (std::size_t i = 0; i < 4; ++i) s_[i] = other.s_[i];
  // The cached Box-Muller variate is deliberately not copied (rng.h).
}

Rng& Rng::operator=(const Rng& other) {
  for (std::size_t i = 0; i < 4; ++i) s_[i] = other.s_[i];
  cached_gaussian_ = 0.0;
  has_cached_gaussian_ = false;
  return *this;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  check(n > 0, "uniform_int requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  // One argument reduction for both components: glibc's sincos returns
  // the same values as separate sin/cos calls, so draws are unchanged.
  double sin_theta = 0.0;
  double cos_theta = 0.0;
  __builtin_sincos(theta, &sin_theta, &cos_theta);
  cached_gaussian_ = r * sin_theta;
  has_cached_gaussian_ = true;
  return r * cos_theta;
}

double Rng::gaussian(double mean, double stddev) { return mean + stddev * gaussian(); }

Cplx Rng::cgaussian(double variance) {
  const double s = std::sqrt(variance / 2.0);
  return {s * gaussian(), s * gaussian()};
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::exponential(double mean) {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

Bits Rng::random_bits(std::size_t n) {
  Bits b(n);
  fill_bits(b);
  return b;
}

void Rng::fill_bits(std::span<std::uint8_t> out) {
  for (auto& bit : out) bit = static_cast<std::uint8_t>(next_u64() & 1u);
}

Bytes Rng::random_bytes(std::size_t n) {
  Bytes b(n);
  fill_bytes(b);
  return b;
}

void Rng::fill_bytes(std::span<std::uint8_t> out) {
  for (auto& byte : out) byte = static_cast<std::uint8_t>(next_u64() & 0xFFu);
}

Rng Rng::fork() {
  // Drop any cached pre-split variate: the split is a stream boundary,
  // and replaying half of a Box-Muller pair across it would hand the
  // parent a gaussian drawn from entropy consumed before the split.
  has_cached_gaussian_ = false;
  cached_gaussian_ = 0.0;
  return Rng(next_u64());
}

}  // namespace wlan

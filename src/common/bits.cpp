#include "common/bits.h"

#include "common/check.h"

namespace wlan {

Bits bytes_to_bits(std::span<const std::uint8_t> bytes) {
  Bits bits;
  bits.reserve(bytes.size() * 8);
  for (const std::uint8_t byte : bytes) {
    for (int i = 0; i < 8; ++i) {
      bits.push_back(static_cast<std::uint8_t>((byte >> i) & 1u));
    }
  }
  return bits;
}

Bytes bits_to_bytes(std::span<const std::uint8_t> bits) {
  check(bits.size() % 8 == 0, "bits_to_bytes requires a multiple of 8 bits");
  Bytes bytes(bits.size() / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] & 1u) bytes[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  }
  return bytes;
}

std::size_t hamming_distance(std::span<const std::uint8_t> a,
                             std::span<const std::uint8_t> b) {
  check(a.size() == b.size(), "hamming_distance requires equal lengths");
  std::size_t d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) ++d;
  }
  return d;
}

std::uint8_t parity(std::span<const std::uint8_t> bits) {
  std::uint8_t p = 0;
  for (const std::uint8_t b : bits) p ^= (b & 1u);
  return p;
}

std::uint32_t reverse_bits(std::uint32_t value, int width) {
  std::uint32_t out = 0;
  for (int i = 0; i < width; ++i) {
    out = (out << 1) | ((value >> i) & 1u);
  }
  return out;
}

}  // namespace wlan

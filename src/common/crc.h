// CRC implementations used by 802.11 frames.
//
// - CRC-32 (IEEE 802.3 polynomial): the FCS appended to every MAC frame.
// - CRC-16-CCITT: the PLCP header check in the 802.11b long/short preamble.
#pragma once

#include <cstdint>
#include <span>

namespace wlan {

/// IEEE 802.3 / 802.11 FCS: reflected CRC-32, poly 0x04C11DB7,
/// init 0xFFFFFFFF, final XOR 0xFFFFFFFF.
std::uint32_t crc32(std::span<const std::uint8_t> data);

/// CRC-16-CCITT as used by the 802.11b PLCP header (poly 0x1021,
/// init 0xFFFF, output complemented).
std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data);

}  // namespace wlan

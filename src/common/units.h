// Unit conversions used throughout the link-budget and PHY code.
#pragma once

#include <cmath>

namespace wlan {

/// Converts a power ratio in decibels to linear scale.
inline double db_to_lin(double db) { return std::pow(10.0, db / 10.0); }

/// Converts a linear power ratio to decibels.
inline double lin_to_db(double lin) { return 10.0 * std::log10(lin); }

/// Converts dBm to watts.
inline double dbm_to_watt(double dbm) { return std::pow(10.0, (dbm - 30.0) / 10.0); }

/// Converts watts to dBm.
inline double watt_to_dbm(double watt) { return 10.0 * std::log10(watt) + 30.0; }

/// Thermal noise power in dBm for a given bandwidth (Hz) at T = 290 K.
/// kT = -174 dBm/Hz.
inline double thermal_noise_dbm(double bandwidth_hz, double noise_figure_db = 0.0) {
  return -174.0 + 10.0 * std::log10(bandwidth_hz) + noise_figure_db;
}

/// Speed of light in m/s, used by free-space path loss.
inline constexpr double kSpeedOfLight = 299'792'458.0;

}  // namespace wlan

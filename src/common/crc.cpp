#include "common/crc.h"

#include <array>

namespace wlan {
namespace {

std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const std::array<std::uint32_t, 256> table = make_crc32_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t byte : data) {
    c = table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data) {
  std::uint16_t crc = 0xFFFFu;
  for (const std::uint8_t byte : data) {
    crc ^= static_cast<std::uint16_t>(byte << 8);
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 0x8000u) ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021u)
                            : static_cast<std::uint16_t>(crc << 1);
    }
  }
  return static_cast<std::uint16_t>(~crc);
}

}  // namespace wlan

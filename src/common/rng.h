// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in holtwlan takes an explicit Rng so that a
// seed fully determines an experiment's outcome (C++ Core Guidelines-style
// explicit dependencies; no hidden global state).
#pragma once

#include <cstdint>
#include <span>

#include "common/types.h"

namespace wlan {

/// xoshiro256++ pseudo-random generator with distribution helpers.
///
/// Chosen over std::mt19937 for speed in Monte-Carlo PER loops and for a
/// stable, documented algorithm (std:: distributions are not guaranteed
/// reproducible across standard libraries, so distributions are implemented
/// here directly).
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Copies transfer the raw xoshiro state but NOT the Box-Muller
  /// cached variate: a copy (like a fork) starts a fresh gaussian pair,
  /// so seed-derivation paths that copy generators can never replay a
  /// stale cached variate drawn from entropy the source has already
  /// consumed. Copying a generator that has never produced a gaussian
  /// is still an exact clone.
  Rng(const Rng& other);
  Rng& operator=(const Rng& other);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n-1]. Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Standard normal variate (Box-Muller, cached pair).
  double gaussian();

  /// Normal variate with the given standard deviation.
  double gaussian(double mean, double stddev);

  /// Circularly-symmetric complex Gaussian with E[|x|^2] = variance.
  Cplx cgaussian(double variance = 1.0);

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

  /// Exponential variate with the given mean.
  double exponential(double mean);

  /// Random unpacked bits (0/1), n of them.
  Bits random_bits(std::size_t n);

  /// Fills `out` with unpacked random bits (0/1), one draw per bit —
  /// same stream consumption as random_bits(out.size()).
  void fill_bits(std::span<std::uint8_t> out);

  /// Random packed bytes, n of them.
  Bytes random_bytes(std::size_t n);

  /// Fills `out` with random bytes, one draw per byte — same stream
  /// consumption as random_bytes(out.size()).
  void fill_bytes(std::span<std::uint8_t> out);

  /// Splits off an independent generator (seeded from this stream).
  /// A split is a clean stream boundary on both sides: the child starts
  /// fresh, and the parent's cached Box-Muller variate (if any) is
  /// discarded so neither side replays pre-split gaussian state.
  Rng fork();

 private:
  std::uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace wlan

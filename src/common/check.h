// Lightweight precondition checking for public API boundaries.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace wlan {

/// Thrown when a public API precondition is violated.
class ContractError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Verifies a precondition; throws ContractError with source location on
/// failure. Used at public API boundaries, including allocation-free hot
/// paths: the message is a string_view so the success path never
/// materializes a std::string.
inline void check(bool condition, std::string_view what,
                  std::source_location loc = std::source_location::current()) {
  if (!condition) [[unlikely]] {
    std::string message(loc.file_name());
    message += ":";
    message += std::to_string(loc.line());
    message += ": ";
    message += what;
    throw ContractError(message);
  }
}

}  // namespace wlan

// Lightweight precondition checking for public API boundaries.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace wlan {

/// Thrown when a public API precondition is violated.
class ContractError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Verifies a precondition; throws ContractError with source location on
/// failure. Used at public API boundaries where the cost is negligible
/// relative to the work performed.
inline void check(bool condition, const std::string& what,
                  std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw ContractError(std::string(loc.file_name()) + ":" +
                        std::to_string(loc.line()) + ": " + what);
  }
}

}  // namespace wlan

// MIMO channel generation.
//
// Flat MIMO matrices (i.i.d. Rayleigh or Kronecker-correlated) for
// capacity/detection studies, and per-subcarrier frequency responses for
// MIMO-OFDM link simulation (each antenna pair gets an independent TDL;
// spatial correlation applied via the Kronecker model).
#pragma once

#include <vector>

#include "channel/fading.h"
#include "common/rng.h"
#include "linalg/cmatrix.h"

namespace wlan::channel {

/// nrx x ntx i.i.d. CN(0,1) channel matrix.
linalg::CMatrix iid_rayleigh_matrix(Rng& rng, std::size_t nrx, std::size_t ntx);

/// Exponential correlation matrix: R(i,j) = rho^|i-j| (real rho in [0,1)).
linalg::CMatrix exponential_correlation(std::size_t n, double rho);

/// Kronecker-correlated channel: H = Rrx^{1/2} Hw Rtx^{1/2}; square roots
/// via Cholesky. rho_rx/rho_tx in [0, 1).
linalg::CMatrix kronecker_channel(Rng& rng, std::size_t nrx, std::size_t ntx,
                                  double rho_rx, double rho_tx);

/// Per-subcarrier channel matrices for MIMO-OFDM: element (r,t) of tone k
/// is the k-th FFT bin of an independent TDL realization for that antenna
/// pair. Returns n_fft matrices of size nrx x ntx.
std::vector<linalg::CMatrix> mimo_ofdm_channel(Rng& rng, std::size_t nrx,
                                               std::size_t ntx,
                                               DelayProfile profile,
                                               double sample_rate_hz,
                                               std::size_t n_fft);

}  // namespace wlan::channel

// Additive white Gaussian noise and narrowband interference.
#pragma once

#include <span>

#include "common/rng.h"
#include "common/types.h"

namespace wlan::channel {

/// Adds complex AWGN of the given variance (per complex sample) in place.
void add_awgn(CVec& x, Rng& rng, double noise_variance);

/// Adds AWGN so the resulting SNR relative to the waveform's *current*
/// mean power equals snr_db. Returns the noise variance used.
double add_awgn_snr(CVec& x, Rng& rng, double snr_db);

/// A complex-tone narrowband interferer: power `power` concentrated at
/// normalized frequency `freq_norm` (cycles per sample, in (-0.5, 0.5)),
/// random initial phase. Added in place starting at sample 0.
void add_tone_interferer(CVec& x, Rng& rng, double power, double freq_norm);

/// Oscillator phase noise as a Wiener process: the phase random-walks
/// with variance 2*pi*linewidth/sample_rate per sample (Lorentzian
/// spectrum of 3-dB linewidth `linewidth_hz`). Rotates the waveform in
/// place; the OFDM pilots' common-phase-error tracker is what fights it.
void add_phase_noise(CVec& x, Rng& rng, double linewidth_hz,
                     double sample_rate_hz);

}  // namespace wlan::channel

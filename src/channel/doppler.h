// Time-varying flat fading: Clarke/Jakes sum-of-sinusoids model.
//
// Block fading (one draw per packet) is the right model for a single
// packet, but rate adaptation and power policies live on the timescale
// where the channel *changes*. This generator produces a continuous
// fading process h(t) with E[|h|^2] = 1 and the classic Clarke
// autocorrelation J0(2 pi fD tau), parameterized by the Doppler spread
// (fD = v/lambda; ~5 Hz for walking speed at 5 GHz).
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace wlan::channel {

/// Sum-of-sinusoids Rayleigh fader.
class JakesFader {
 public:
  /// `doppler_hz` is the maximum Doppler shift fD. More oscillators give
  /// a better Gaussian approximation (16 is plenty for link studies).
  JakesFader(Rng& rng, double doppler_hz, std::size_t n_oscillators = 16);

  double doppler_hz() const { return doppler_hz_; }

  /// Fading coefficient at absolute time t (seconds). Deterministic for a
  /// given construction; callers may sample any time grid.
  Cplx at(double t) const;

  /// Convenience: n samples starting at t0 with spacing dt.
  CVec series(double t0, double dt, std::size_t n) const;

  /// Coherence time heuristic 0.423 / fD (50% correlation).
  double coherence_time_s() const;

 private:
  double doppler_hz_;
  std::vector<double> freq_hz_;  // fD cos(alpha_n)
  std::vector<double> phase_;    // phi_n
  double norm_;
};

}  // namespace wlan::channel

#include "channel/awgn.h"

#include <cmath>
#include <numbers>

#include "common/units.h"
#include "dsp/ops.h"

namespace wlan::channel {

void add_awgn(CVec& x, Rng& rng, double noise_variance) {
  if (noise_variance <= 0.0) return;
  // One sqrt for the whole waveform; per-sample values are identical to
  // calling rng.cgaussian(noise_variance) sample by sample.
  const double s = std::sqrt(noise_variance / 2.0);
  for (auto& v : x) v += Cplx{s * rng.gaussian(), s * rng.gaussian()};
}

double add_awgn_snr(CVec& x, Rng& rng, double snr_db) {
  const double signal_power = dsp::mean_power(x);
  const double noise_variance = signal_power / db_to_lin(snr_db);
  add_awgn(x, rng, noise_variance);
  return noise_variance;
}

void add_phase_noise(CVec& x, Rng& rng, double linewidth_hz,
                     double sample_rate_hz) {
  if (linewidth_hz <= 0.0) return;
  const double step_var =
      2.0 * std::numbers::pi * linewidth_hz / sample_rate_hz;
  const double sigma = std::sqrt(step_var);
  double phase = 0.0;
  for (auto& v : x) {
    phase += sigma * rng.gaussian();
    v *= Cplx{std::cos(phase), std::sin(phase)};
  }
}

void add_tone_interferer(CVec& x, Rng& rng, double power, double freq_norm) {
  const double amp = std::sqrt(power);
  const double phase0 = rng.uniform(0.0, 2.0 * std::numbers::pi);
  for (std::size_t n = 0; n < x.size(); ++n) {
    const double arg =
        2.0 * std::numbers::pi * freq_norm * static_cast<double>(n) + phase0;
    x[n] += amp * Cplx{std::cos(arg), std::sin(arg)};
  }
}

}  // namespace wlan::channel

// Small-scale fading models: flat Rayleigh/Rician and tapped-delay-line
// frequency-selective channels with TGn-flavoured exponential power-delay
// profiles.
//
// Block fading is assumed: the channel is constant over one packet and
// redrawn per packet, matching indoor WLAN coherence times (tens of ms)
// versus packet durations (sub-ms).
#pragma once

#include <span>

#include "common/rng.h"
#include "common/types.h"

namespace wlan::channel {

/// One flat-fading coefficient: Rayleigh when k_factor_db = -inf
/// (use rician_k_db <= -100 to mean pure Rayleigh), Rician otherwise.
/// Normalized so E[|h|^2] = 1.
Cplx flat_fading_coefficient(Rng& rng, double rician_k_db = -200.0);

/// Named multipath severities; delay spreads follow the IEEE 802.11 TGn
/// channel model suite.
enum class DelayProfile {
  kFlat,        ///< single tap (TGn model A)
  kResidential, ///< ~15 ns rms (TGn model B)
  kOffice,      ///< ~30 ns rms (TGn model D-ish)
  kLargeOpen,   ///< ~50 ns rms (TGn model E-ish)
};

/// rms delay spread in seconds for a profile.
double rms_delay_spread_s(DelayProfile profile);

/// A realized tapped-delay-line channel (SISO).
struct Tdl {
  CVec taps;  ///< complex tap gains at the sample rate, E[sum |h_l|^2] = 1

  /// Applies the channel to a waveform (linear convolution, output
  /// length x.size() + taps.size() - 1).
  CVec apply(std::span<const Cplx> x) const;

  /// As apply, resizing `out` — allocation-free once warm. `out` must
  /// not alias `x`.
  void apply_to(std::span<const Cplx> x, CVec& out) const;

  /// Frequency response on an n-point FFT grid.
  CVec frequency_response(std::size_t n_fft) const;
};

/// Draws a TDL realization with an exponential power-delay profile whose
/// rms delay spread matches `profile` at the given sample rate. A Rayleigh
/// draw per tap; taps truncated at ~5x the rms spread. A finite
/// `first_tap_k_db` makes the first tap Rician (TGn LOS models D/E give
/// the direct path a K-factor); <= -100 dB means pure Rayleigh.
Tdl make_tdl(Rng& rng, DelayProfile profile, double sample_rate_hz,
             double first_tap_k_db = -200.0);

/// Average SNR -> instantaneous SNR for Rayleigh: gamma = |h|^2 * mean.
/// Convenience used by link-abstraction code.
double rayleigh_instant_snr(Rng& rng, double mean_snr_linear);

}  // namespace wlan::channel

// Large-scale propagation models.
//
// The IEEE 802.11 TGn channel models specify free-space propagation
// (exponent 2) up to a breakpoint distance and a steeper slope (3.5)
// beyond it, plus lognormal shadowing. These are the models under which
// the paper's range claims (MIMO "several-fold" extension, LDPC reach)
// are evaluated.
#pragma once

#include "common/rng.h"

namespace wlan::channel {

/// Free-space path loss in dB at distance d (m) and carrier f (Hz).
double free_space_path_loss_db(double distance_m, double carrier_hz);

/// TGn-style dual-slope model parameters.
struct PathLossModel {
  double carrier_hz = 5.2e9;     ///< carrier frequency
  double breakpoint_m = 5.0;     ///< free-space up to here (TGn model B/C)
  double exponent_after = 3.5;   ///< slope beyond breakpoint
  double shadowing_sigma_db = 0; ///< lognormal shadowing std-dev (0 = off)

  /// Deterministic path loss (no shadowing) in dB at distance d.
  double path_loss_db(double distance_m) const;

  /// Path loss with a lognormal shadowing draw.
  double path_loss_db(double distance_m, Rng& rng) const;

  /// Inverts the deterministic model: distance at which the given path
  /// loss occurs. Used to convert coding/diversity gain (dB) into a range
  /// multiple.
  double distance_for_path_loss(double loss_db) const;
};

/// Mean SNR (dB) at the receiver for a link budget:
/// tx power - path loss - thermal noise(bandwidth, noise figure).
double link_snr_db(double tx_power_dbm, double path_loss_db, double bandwidth_hz,
                   double noise_figure_db = 6.0);

}  // namespace wlan::channel

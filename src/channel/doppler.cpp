#include "channel/doppler.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace wlan::channel {

JakesFader::JakesFader(Rng& rng, double doppler_hz, std::size_t n_oscillators)
    : doppler_hz_(doppler_hz) {
  check(doppler_hz > 0.0, "JakesFader requires positive Doppler");
  check(n_oscillators >= 4, "JakesFader requires >= 4 oscillators");
  freq_hz_.resize(n_oscillators);
  phase_.resize(n_oscillators);
  for (std::size_t n = 0; n < n_oscillators; ++n) {
    // Uniform arrival angles give the Clarke spectrum in expectation.
    const double alpha = rng.uniform(0.0, 2.0 * std::numbers::pi);
    freq_hz_[n] = doppler_hz * std::cos(alpha);
    phase_[n] = rng.uniform(0.0, 2.0 * std::numbers::pi);
  }
  norm_ = 1.0 / std::sqrt(static_cast<double>(n_oscillators));
}

Cplx JakesFader::at(double t) const {
  Cplx acc{0.0, 0.0};
  for (std::size_t n = 0; n < freq_hz_.size(); ++n) {
    const double arg = 2.0 * std::numbers::pi * freq_hz_[n] * t + phase_[n];
    acc += Cplx{std::cos(arg), std::sin(arg)};
  }
  return norm_ * acc;
}

CVec JakesFader::series(double t0, double dt, std::size_t n) const {
  CVec out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = at(t0 + dt * static_cast<double>(i));
  }
  return out;
}

double JakesFader::coherence_time_s() const { return 0.423 / doppler_hz_; }

}  // namespace wlan::channel

#include "channel/mimo.h"

#include <cmath>

#include "common/check.h"
#include "linalg/decompose.h"

namespace wlan::channel {

linalg::CMatrix iid_rayleigh_matrix(Rng& rng, std::size_t nrx, std::size_t ntx) {
  check(nrx > 0 && ntx > 0, "channel dimensions must be positive");
  linalg::CMatrix h(nrx, ntx);
  for (std::size_t r = 0; r < nrx; ++r) {
    for (std::size_t t = 0; t < ntx; ++t) {
      h(r, t) = rng.cgaussian(1.0);
    }
  }
  return h;
}

linalg::CMatrix exponential_correlation(std::size_t n, double rho) {
  check(rho >= 0.0 && rho < 1.0, "correlation rho must be in [0, 1)");
  linalg::CMatrix r(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      r(i, j) = std::pow(rho, std::abs(static_cast<double>(i) -
                                       static_cast<double>(j)));
    }
  }
  return r;
}

linalg::CMatrix kronecker_channel(Rng& rng, std::size_t nrx, std::size_t ntx,
                                  double rho_rx, double rho_tx) {
  const linalg::CMatrix hw = iid_rayleigh_matrix(rng, nrx, ntx);
  if (rho_rx <= 0.0 && rho_tx <= 0.0) return hw;
  const linalg::CMatrix lrx = linalg::cholesky(exponential_correlation(nrx, rho_rx));
  const linalg::CMatrix ltx = linalg::cholesky(exponential_correlation(ntx, rho_tx));
  return lrx * hw * ltx.hermitian();
}

std::vector<linalg::CMatrix> mimo_ofdm_channel(Rng& rng, std::size_t nrx,
                                               std::size_t ntx,
                                               DelayProfile profile,
                                               double sample_rate_hz,
                                               std::size_t n_fft) {
  check(nrx > 0 && ntx > 0, "channel dimensions must be positive");
  std::vector<linalg::CMatrix> tones(n_fft, linalg::CMatrix(nrx, ntx));
  for (std::size_t r = 0; r < nrx; ++r) {
    for (std::size_t t = 0; t < ntx; ++t) {
      const Tdl tdl = make_tdl(rng, profile, sample_rate_hz);
      const CVec freq = tdl.frequency_response(n_fft);
      for (std::size_t k = 0; k < n_fft; ++k) {
        tones[k](r, t) = freq[k];
      }
    }
  }
  return tones;
}

}  // namespace wlan::channel

#include "channel/fading.h"

#include <cmath>

#include "common/check.h"
#include "common/units.h"
#include "dsp/fft.h"
#include "dsp/ops.h"
#include "obs/perf.h"
#include "obs/timer.h"

namespace wlan::channel {

Cplx flat_fading_coefficient(Rng& rng, double rician_k_db) {
  if (rician_k_db <= -100.0) {
    return rng.cgaussian(1.0);
  }
  const double k = db_to_lin(rician_k_db);
  const double los = std::sqrt(k / (k + 1.0));
  const double nlos_var = 1.0 / (k + 1.0);
  return Cplx{los, 0.0} + rng.cgaussian(nlos_var);
}

double rms_delay_spread_s(DelayProfile profile) {
  switch (profile) {
    case DelayProfile::kFlat: return 0.0;
    case DelayProfile::kResidential: return 15e-9;
    case DelayProfile::kOffice: return 30e-9;
    case DelayProfile::kLargeOpen: return 50e-9;
  }
  return 0.0;
}

CVec Tdl::apply(std::span<const Cplx> x) const {
  check(!taps.empty(), "Tdl::apply requires at least one tap");
  return dsp::convolve(x, taps);
}

void Tdl::apply_to(std::span<const Cplx> x, CVec& out) const {
  check(!taps.empty(), "Tdl::apply requires at least one tap");
  dsp::convolve_to(x, taps, out);
}

CVec Tdl::frequency_response(std::size_t n_fft) const {
  check(dsp::is_power_of_two(n_fft), "frequency_response needs power-of-two size");
  check(taps.size() <= n_fft, "channel longer than the FFT grid");
  CVec padded(n_fft, Cplx{0.0, 0.0});
  for (std::size_t i = 0; i < taps.size(); ++i) padded[i] = taps[i];
  return dsp::fft(std::move(padded));
}

Tdl make_tdl(Rng& rng, DelayProfile profile, double sample_rate_hz,
             double first_tap_k_db) {
  const obs::ScopedTimer timer(
      obs::kernel_histogram(obs::Kernel::kFadingTaps));
  const obs::perf::ScopedSpan span("fading_taps");
  check(sample_rate_hz > 0.0, "make_tdl requires positive sample rate");
  const double trms = rms_delay_spread_s(profile);
  Tdl tdl;
  if (trms <= 0.0) {
    tdl.taps = {flat_fading_coefficient(rng, first_tap_k_db)};
    return tdl;
  }
  // Exponential PDP sampled at the system rate, truncated at 5x rms.
  const double ts = 1.0 / sample_rate_hz;
  const std::size_t n_taps =
      std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(5.0 * trms / ts)));
  RVec pdp(n_taps);
  double total = 0.0;
  for (std::size_t l = 0; l < n_taps; ++l) {
    pdp[l] = std::exp(-static_cast<double>(l) * ts / trms);
    total += pdp[l];
  }
  tdl.taps.resize(n_taps);
  for (std::size_t l = 0; l < n_taps; ++l) {
    const double power = pdp[l] / total;
    if (l == 0 && first_tap_k_db > -100.0) {
      // LOS component rides on the first arrival.
      tdl.taps[l] =
          std::sqrt(power) * flat_fading_coefficient(rng, first_tap_k_db);
    } else {
      tdl.taps[l] = rng.cgaussian(power);
    }
  }
  return tdl;
}

double rayleigh_instant_snr(Rng& rng, double mean_snr_linear) {
  return std::norm(rng.cgaussian(1.0)) * mean_snr_linear;
}

}  // namespace wlan::channel

#include "channel/pathloss.h"

#include <cmath>
#include <numbers>

#include "common/check.h"
#include "common/units.h"

namespace wlan::channel {

double free_space_path_loss_db(double distance_m, double carrier_hz) {
  check(distance_m > 0.0 && carrier_hz > 0.0,
        "free_space_path_loss_db requires positive arguments");
  const double wavelength = kSpeedOfLight / carrier_hz;
  return 20.0 * std::log10(4.0 * std::numbers::pi * distance_m / wavelength);
}

double PathLossModel::path_loss_db(double distance_m) const {
  check(distance_m > 0.0, "path_loss_db requires positive distance");
  const double d = std::max(distance_m, 0.1);
  if (d <= breakpoint_m) {
    return free_space_path_loss_db(d, carrier_hz);
  }
  return free_space_path_loss_db(breakpoint_m, carrier_hz) +
         10.0 * exponent_after * std::log10(d / breakpoint_m);
}

double PathLossModel::path_loss_db(double distance_m, Rng& rng) const {
  double loss = path_loss_db(distance_m);
  if (shadowing_sigma_db > 0.0) {
    loss += rng.gaussian(0.0, shadowing_sigma_db);
  }
  return loss;
}

double PathLossModel::distance_for_path_loss(double loss_db) const {
  const double loss_at_bp = free_space_path_loss_db(breakpoint_m, carrier_hz);
  if (loss_db <= loss_at_bp) {
    // Invert free-space: loss = 20 log10(4 pi d / lambda).
    const double wavelength = kSpeedOfLight / carrier_hz;
    return std::pow(10.0, loss_db / 20.0) * wavelength /
           (4.0 * std::numbers::pi);
  }
  return breakpoint_m *
         std::pow(10.0, (loss_db - loss_at_bp) / (10.0 * exponent_after));
}

double link_snr_db(double tx_power_dbm, double path_loss_db, double bandwidth_hz,
                   double noise_figure_db) {
  return tx_power_dbm - path_loss_db -
         thermal_noise_dbm(bandwidth_hz, noise_figure_db);
}

}  // namespace wlan::channel

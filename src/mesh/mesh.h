// Mesh networking: multi-hop topologies, routing metrics, and end-to-end
// throughput analysis.
//
// The paper's mesh claim: "Mesh networks even have the potential, with
// sufficiently intelligent routing algorithms, to boost overall spectral
// efficiencies attained by selecting multiple hops over high capacity
// links rather than single hops over low capacity links." We model nodes
// on a plane, derive each link's sustainable PHY rate from its SNR via a
// rate table (802.11a/g-style adaptation), and compare routing policies:
//
//  - direct:   one hop source -> destination (if reachable at all)
//  - min hop:  Dijkstra on hop count (naive mesh routing)
//  - airtime:  Dijkstra on per-bit airtime (802.11s-style ALM), which
//              prefers several fast hops over one slow hop
//
// End-to-end throughput of a path assumes hops share one channel (airtime
// division): 1 / sum_i (1 / rate_i).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "channel/pathloss.h"
#include "common/rng.h"

namespace wlan::mesh {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

double distance(const Point& a, const Point& b);

/// Maps link SNR to a sustainable PHY rate (Mbps). Thresholds follow the
/// 802.11a/g MCS sensitivity ladder; returns 0 when even the lowest rate
/// cannot be sustained.
double snr_to_rate_mbps(double snr_db);

/// A mesh network: node positions plus the propagation model that turns
/// geometry into link rates.
class MeshNetwork {
 public:
  MeshNetwork(std::vector<Point> nodes, channel::PathLossModel pathloss,
              double tx_power_dbm = 17.0, double bandwidth_hz = 20e6,
              double noise_figure_db = 6.0);

  /// Uniform random nodes in a square of the given side, node 0 pinned at
  /// the center (acting as gateway in coverage studies).
  static MeshNetwork random(Rng& rng, std::size_t n_nodes, double side_m,
                            channel::PathLossModel pathloss,
                            double tx_power_dbm = 17.0);

  std::size_t size() const { return nodes_.size(); }
  const Point& node(std::size_t i) const { return nodes_[i]; }

  /// Mean SNR of link i -> j from the link budget (no fading draw).
  double link_snr_db(std::size_t i, std::size_t j) const;

  /// Sustainable PHY rate of link i -> j; 0 if unusable.
  double link_rate_mbps(std::size_t i, std::size_t j) const;

  /// Routing objective.
  enum class Metric {
    kHopCount,  ///< fewest hops, ties by airtime
    kAirtime,   ///< minimum total per-bit airtime (sum of 1/rate)
  };

  struct Route {
    std::vector<std::size_t> path;   ///< node indices, source..dest
    double end_to_end_mbps = 0.0;    ///< 1 / sum(1/rate_i), 0 if unreachable
    bool reachable() const { return !path.empty(); }
    std::size_t hops() const { return path.empty() ? 0 : path.size() - 1; }
  };

  /// Single-hop "route" (empty if the direct link is unusable).
  Route direct_route(std::size_t src, std::size_t dst) const;

  /// Dijkstra under the chosen metric.
  Route shortest_route(std::size_t src, std::size_t dst, Metric metric) const;

  /// Fraction of nodes that can reach `gateway` (any number of hops),
  /// and via a direct link only — the paper's "area served" comparison.
  struct Coverage {
    double direct_fraction = 0.0;
    double mesh_fraction = 0.0;
  };
  Coverage coverage(std::size_t gateway) const;

 private:
  std::vector<Point> nodes_;
  channel::PathLossModel pathloss_;
  double tx_power_dbm_;
  double bandwidth_hz_;
  double noise_figure_db_;
};

}  // namespace wlan::mesh

#include "mesh/mesh.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <queue>
#include <utility>

#include "common/check.h"

namespace wlan::mesh {
namespace {

// 802.11a/g rate ladder: {required SNR (dB), rate (Mbps)} for 10% PER at
// 1000-byte frames over AWGN (typical receiver sensitivities).
constexpr std::array<std::pair<double, double>, 8> kRateLadder = {{
    {24.0, 54.0},
    {21.0, 48.0},
    {17.0, 36.0},
    {14.0, 24.0},
    {10.0, 18.0},
    {7.0, 12.0},
    {5.0, 9.0},
    {3.0, 6.0},
}};

}  // namespace

double distance(const Point& a, const Point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

double snr_to_rate_mbps(double snr_db) {
  for (const auto& [snr_req, rate] : kRateLadder) {
    if (snr_db >= snr_req) return rate;
  }
  return 0.0;
}

MeshNetwork::MeshNetwork(std::vector<Point> nodes,
                         channel::PathLossModel pathloss, double tx_power_dbm,
                         double bandwidth_hz, double noise_figure_db)
    : nodes_(std::move(nodes)),
      pathloss_(pathloss),
      tx_power_dbm_(tx_power_dbm),
      bandwidth_hz_(bandwidth_hz),
      noise_figure_db_(noise_figure_db) {
  check(nodes_.size() >= 2, "MeshNetwork requires at least two nodes");
}

MeshNetwork MeshNetwork::random(Rng& rng, std::size_t n_nodes, double side_m,
                                channel::PathLossModel pathloss,
                                double tx_power_dbm) {
  check(n_nodes >= 2, "random mesh requires at least two nodes");
  std::vector<Point> pts(n_nodes);
  pts[0] = {side_m / 2.0, side_m / 2.0};
  for (std::size_t i = 1; i < n_nodes; ++i) {
    pts[i] = {rng.uniform(0.0, side_m), rng.uniform(0.0, side_m)};
  }
  return MeshNetwork(std::move(pts), pathloss, tx_power_dbm);
}

double MeshNetwork::link_snr_db(std::size_t i, std::size_t j) const {
  check(i < nodes_.size() && j < nodes_.size() && i != j, "bad link indices");
  const double d = std::max(distance(nodes_[i], nodes_[j]), 0.5);
  return channel::link_snr_db(tx_power_dbm_, pathloss_.path_loss_db(d),
                              bandwidth_hz_, noise_figure_db_);
}

double MeshNetwork::link_rate_mbps(std::size_t i, std::size_t j) const {
  return snr_to_rate_mbps(link_snr_db(i, j));
}

MeshNetwork::Route MeshNetwork::direct_route(std::size_t src,
                                             std::size_t dst) const {
  Route r;
  const double rate = link_rate_mbps(src, dst);
  if (rate <= 0.0) return r;
  r.path = {src, dst};
  r.end_to_end_mbps = rate;
  return r;
}

MeshNetwork::Route MeshNetwork::shortest_route(std::size_t src, std::size_t dst,
                                               Metric metric) const {
  check(src < nodes_.size() && dst < nodes_.size() && src != dst,
        "bad route endpoints");
  const std::size_t n = nodes_.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Edge cost under the metric; airtime is per-bit seconds (1/rate),
  // hop count uses 1 per edge with a small airtime tiebreak.
  auto edge_cost = [&](std::size_t a, std::size_t b) {
    const double rate = link_rate_mbps(a, b);
    if (rate <= 0.0) return kInf;
    const double airtime = 1.0 / rate;
    return metric == Metric::kAirtime ? airtime : 1.0 + 1e-4 * airtime;
  };

  std::vector<double> dist(n, kInf);
  std::vector<std::size_t> prev(n, n);
  using Entry = std::pair<double, std::size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  dist[src] = 0.0;
  pq.push({0.0, src});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    if (u == dst) break;
    for (std::size_t v = 0; v < n; ++v) {
      if (v == u) continue;
      const double c = edge_cost(u, v);
      if (c == kInf) continue;
      if (d + c < dist[v]) {
        dist[v] = d + c;
        prev[v] = u;
        pq.push({dist[v], v});
      }
    }
  }

  Route r;
  if (dist[dst] == kInf) return r;
  for (std::size_t v = dst; v != src; v = prev[v]) {
    check(v < n, "route reconstruction failed");
    r.path.push_back(v);
  }
  r.path.push_back(src);
  std::reverse(r.path.begin(), r.path.end());

  double airtime_per_bit = 0.0;
  for (std::size_t h = 0; h + 1 < r.path.size(); ++h) {
    airtime_per_bit += 1.0 / link_rate_mbps(r.path[h], r.path[h + 1]);
  }
  r.end_to_end_mbps = airtime_per_bit > 0.0 ? 1.0 / airtime_per_bit : 0.0;
  return r;
}

MeshNetwork::Coverage MeshNetwork::coverage(std::size_t gateway) const {
  check(gateway < nodes_.size(), "bad gateway index");
  Coverage cov;
  std::size_t direct = 0;
  std::size_t meshed = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (i == gateway) continue;
    if (link_rate_mbps(gateway, i) > 0.0) ++direct;
    if (shortest_route(gateway, i, Metric::kAirtime).reachable()) ++meshed;
  }
  const double denom = static_cast<double>(nodes_.size() - 1);
  cov.direct_fraction = static_cast<double>(direct) / denom;
  cov.mesh_fraction = static_cast<double>(meshed) / denom;
  return cov;
}

}  // namespace wlan::mesh

// Discrete-event simulation core: a time-ordered event queue.
//
// Events at equal timestamps run in scheduling (FIFO) order, which keeps
// protocol simulations deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace wlan::sim {

/// Simulation clock and event queue. Times are in seconds.
class Scheduler {
 public:
  using Action = std::function<void()>;

  /// Current simulation time.
  double now() const { return now_; }

  /// Schedules an action `delay` seconds from now (delay >= 0).
  void schedule(double delay, Action action);

  /// Schedules an action at an absolute time (>= now()).
  void schedule_at(double time, Action action);

  /// Runs events until the queue is empty or the clock passes `end_time`.
  /// Returns the number of events executed.
  std::size_t run_until(double end_time);

  /// Runs until the queue drains completely.
  std::size_t run();

  /// Number of pending events.
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace wlan::sim

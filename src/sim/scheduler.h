// Discrete-event simulation core: a time-ordered event queue.
//
// Events at equal timestamps run in scheduling (FIFO) order, which keeps
// protocol simulations deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "obs/metrics.h"

namespace wlan::sim {

/// Simulation clock and event queue. Times are in seconds.
class Scheduler {
 public:
  using Action = std::function<void()>;
  /// Observer invoked after each executed event with the event's time and
  /// the queue depth remaining after it ran.
  using EventHook = std::function<void(double time, std::size_t pending)>;

  /// Current simulation time.
  double now() const { return now_; }

  /// Schedules an action `delay` seconds from now (delay >= 0).
  void schedule(double delay, Action action);

  /// Schedules an action at an absolute time (>= now()).
  void schedule_at(double time, Action action);

  /// Runs events until the queue is empty or the clock passes `end_time`.
  /// Returns the number of events executed.
  std::size_t run_until(double end_time);

  /// Runs until the queue drains completely.
  std::size_t run();

  /// Number of pending events.
  std::size_t pending() const { return queue_.size(); }

  /// Total events executed over the scheduler's lifetime.
  std::uint64_t executed() const { return executed_; }

  /// Installs (or clears, with nullptr) the per-event observer.
  void set_event_hook(EventHook hook) { hook_ = std::move(hook); }

  /// Registers this scheduler's metrics in `registry` and keeps them
  /// updated: counter "sim.events_executed" and log-spaced histogram
  /// "sim.queue_depth" (sampled after each executed event). `registry`
  /// must outlive the scheduler's runs.
  void bind_metrics(obs::Registry& registry);

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void after_event();

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  EventHook hook_;
  obs::Counter* executed_counter_ = nullptr;
  obs::Histogram* queue_depth_hist_ = nullptr;
};

}  // namespace wlan::sim

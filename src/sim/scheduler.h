// Discrete-event simulation core: a time-ordered event queue.
//
// Events at equal timestamps run in scheduling (FIFO) order, which keeps
// protocol simulations deterministic. A small "urgent" priority lane
// runs ahead of normally scheduled events at the same timestamp — the
// border-exchange engine uses it to apply cross-shard influence records
// before any local event at the same instant, in every execution mode,
// so fused and per-shard runs order same-time work identically.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "obs/metrics.h"

namespace wlan::sim {

/// Simulation clock and event queue. Times are in seconds.
class Scheduler {
 public:
  using Action = std::function<void()>;
  /// Observer invoked after each executed event with the event's time and
  /// the queue depth remaining after it ran.
  using EventHook = std::function<void(double time, std::size_t pending)>;

  /// Current simulation time.
  double now() const { return now_; }

  /// Schedules an action `delay` seconds from now (delay >= 0).
  void schedule(double delay, Action action);

  /// Schedules an action at an absolute time (>= now()).
  void schedule_at(double time, Action action);

  /// Schedules an urgent action at an absolute time (>= now()). Urgent
  /// actions run before every normally scheduled action at the same
  /// timestamp (still FIFO among themselves).
  void schedule_at_urgent(double time, Action action);

  /// Runs events until the queue is empty or the clock passes `end_time`.
  /// Returns the number of events executed.
  std::size_t run_until(double end_time);

  /// Runs events with time strictly less than `end_time` and leaves the
  /// clock wherever the last executed event put it (it does NOT advance
  /// to `end_time`). Used by the epoch driver: each epoch simulates
  /// [t, t+lookahead) exclusively so the boundary instant itself is
  /// processed in the next epoch, after border messages arrive.
  std::size_t run_before(double end_time);

  /// Runs until the queue drains completely.
  std::size_t run();

  /// Number of pending events.
  std::size_t pending() const { return queue_.size(); }

  /// Timestamp of the earliest pending event, or +infinity when the
  /// queue is empty. Lets the epoch driver skip fully idle epochs.
  double next_time() const;

  /// Total events executed over the scheduler's lifetime.
  std::uint64_t executed() const { return executed_; }

  /// Installs (or clears, with nullptr) the per-event observer.
  void set_event_hook(EventHook hook) { hook_ = std::move(hook); }

  /// Registers this scheduler's metrics in `registry` and keeps them
  /// updated: counter "sim.events_executed" and log-spaced histogram
  /// "sim.queue_depth" (sampled after each executed event). `registry`
  /// must outlive the scheduler's runs.
  void bind_metrics(obs::Registry& registry);

 private:
  struct Event {
    double time;
    int priority;  // 0 = urgent, 1 = normal; urgent first at equal time.
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq > b.seq;
    }
  };

  void after_event();

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  EventHook hook_;
  obs::Counter* executed_counter_ = nullptr;
  obs::Histogram* queue_depth_hist_ = nullptr;
};

}  // namespace wlan::sim

#include "sim/scheduler.h"

#include "common/check.h"

namespace wlan::sim {

void Scheduler::schedule(double delay, Action action) {
  check(delay >= 0.0, "Scheduler::schedule requires non-negative delay");
  queue_.push(Event{now_ + delay, next_seq_++, std::move(action)});
}

void Scheduler::schedule_at(double time, Action action) {
  check(time >= now_, "Scheduler::schedule_at requires a future time");
  queue_.push(Event{time, next_seq_++, std::move(action)});
}

std::size_t Scheduler::run_until(double end_time) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().time <= end_time) {
    // Copy out before pop so the action may schedule more events.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.action();
    ++executed;
  }
  if (now_ < end_time) now_ = end_time;
  return executed;
}

std::size_t Scheduler::run() {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.action();
    ++executed;
  }
  return executed;
}

}  // namespace wlan::sim

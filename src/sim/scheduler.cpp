#include "sim/scheduler.h"

#include <limits>

#include "common/check.h"

namespace wlan::sim {

void Scheduler::schedule(double delay, Action action) {
  check(delay >= 0.0, "Scheduler::schedule requires non-negative delay");
  queue_.push(Event{now_ + delay, 1, next_seq_++, std::move(action)});
}

void Scheduler::schedule_at(double time, Action action) {
  check(time >= now_, "Scheduler::schedule_at requires a future time");
  queue_.push(Event{time, 1, next_seq_++, std::move(action)});
}

void Scheduler::schedule_at_urgent(double time, Action action) {
  check(time >= now_, "Scheduler::schedule_at_urgent requires a future time");
  queue_.push(Event{time, 0, next_seq_++, std::move(action)});
}

std::size_t Scheduler::run_until(double end_time) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().time <= end_time) {
    // Copy out before pop so the action may schedule more events.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.action();
    ++executed;
    after_event();
  }
  if (now_ < end_time) now_ = end_time;
  return executed;
}

std::size_t Scheduler::run_before(double end_time) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().time < end_time) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.action();
    ++executed;
    after_event();
  }
  return executed;
}

double Scheduler::next_time() const {
  if (queue_.empty()) return std::numeric_limits<double>::infinity();
  return queue_.top().time;
}

std::size_t Scheduler::run() {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.action();
    ++executed;
    after_event();
  }
  return executed;
}

void Scheduler::bind_metrics(obs::Registry& registry) {
  executed_counter_ = &registry.counter("sim.events_executed");
  // Depth 1 .. 1e6 events, 4 bins per decade; zero depth lands in the
  // underflow bucket.
  queue_depth_hist_ = &registry.histogram("sim.queue_depth", 1.0, 1e6, 24);
}

void Scheduler::after_event() {
  ++executed_;
  if (executed_counter_) executed_counter_->add();
  if (queue_depth_hist_) {
    queue_depth_hist_->record(static_cast<double>(queue_.size()));
  }
  if (hook_) hook_(now_, queue_.size());
}

}  // namespace wlan::sim

#include "sim/stats.h"

#include <algorithm>

#include "common/check.h"

namespace wlan::sim {

void Tally::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void TimeAverage::update(double time, double value) {
  if (!started_) {
    started_ = true;
    t0_ = time;
    last_time_ = time;
    current_ = value;
    return;
  }
  check(time >= last_time_, "TimeAverage updates must be time-ordered");
  integral_ += current_ * (time - last_time_);
  last_time_ = time;
  current_ = value;
}

double TimeAverage::average() const {
  const double span = last_time_ - t0_;
  return span > 0.0 ? integral_ / span : current_;
}

}  // namespace wlan::sim

// Statistics collectors for simulations.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace wlan::sim {

/// Running mean/variance/min/max over scalar samples (Welford).
class Tally {
 public:
  void add(double x);
  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double total() const { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Time-weighted average of a piecewise-constant signal (e.g. queue length,
/// power state).
class TimeAverage {
 public:
  /// Records that the signal had `value` from the last update until `time`.
  void update(double time, double value);

  /// Average up to the time of the last update.
  double average() const;

  /// Integral of the signal (value x time), e.g. energy from power.
  double integral() const { return integral_; }

 private:
  bool started_ = false;
  double last_time_ = 0.0;
  double current_ = 0.0;
  double integral_ = 0.0;
  double t0_ = 0.0;
};

}  // namespace wlan::sim

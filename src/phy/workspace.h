// Per-thread scratch-buffer arena for the PHY hot path.
//
// A Monte-Carlo trial walks TX -> channel -> RX and historically built a
// fresh vector at every stage (symbols, LLRs, survivor masks, decoder
// state). `Workspace` replaces that churn with typed pools of reusable
// vectors: a kernel leases a buffer for the duration of a scope, the
// lease returns it to the pool on destruction, and the vector keeps its
// capacity — so after the first (warm-up) trial the steady state
// performs zero heap allocations. `test_workspace.cpp` pins that down
// with a global operator-new counter.
//
// Ownership rules (documented in DESIGN.md "Performance"):
//  - A Workspace is single-threaded. Hot paths use `tls_workspace()`,
//    one arena per thread, so parallel sweeps never share buffers.
//  - A lease is move-only and scope-bound; never store leased spans
//    beyond the lease. Release order may be arbitrary (free-list pool),
//    though stack order is the norm.
//  - Leased buffers are sized but NOT cleared: every kernel writes
//    before it reads. Functions that need zeros ask for them explicitly.
//  - Capacity is never returned to the allocator; `publish` reports the
//    high-water footprint through the obs Registry so benches can see
//    what the arena holds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"

namespace wlan::obs {
class Registry;
}  // namespace wlan::obs

namespace wlan::phy {

class Workspace;

namespace detail {

/// Free-list pool of std::vector<T> slots. Slots live behind unique_ptr
/// so outstanding leases stay valid while the slot table itself grows.
template <class T>
class Pool {
 public:
  std::pair<std::vector<T>*, std::uint32_t> acquire() {
    if (free_.empty()) {
      slots_.push_back(std::make_unique<std::vector<T>>());
      const auto idx = static_cast<std::uint32_t>(slots_.size() - 1);
      ++live_;
      if (live_ > live_high_water_) live_high_water_ = live_;
      return {slots_.back().get(), idx};
    }
    const std::uint32_t idx = free_.back();
    free_.pop_back();
    ++live_;
    if (live_ > live_high_water_) live_high_water_ = live_;
    return {slots_[idx].get(), idx};
  }

  /// Records the requested size of a fresh lease; the same byte count
  /// comes back through release(). Tracks the peak number of bytes
  /// simultaneously leased — batch kernels lease lane-strided buffers
  /// (lanes x per-trial size), and this is where that footprint shows.
  void note_lease_bytes(std::size_t bytes) {
    live_bytes_ += bytes;
    if (live_bytes_ > live_bytes_high_water_) live_bytes_high_water_ = live_bytes_;
  }

  void release(std::uint32_t idx, std::size_t bytes) {
    free_.push_back(idx);
    --live_;
    live_bytes_ -= bytes;
  }

  std::size_t slot_count() const { return slots_.size(); }
  std::size_t live_high_water() const { return live_high_water_; }
  std::size_t live_bytes_high_water() const { return live_bytes_high_water_; }
  std::size_t capacity_bytes() const {
    std::size_t bytes = 0;
    for (const auto& s : slots_) bytes += s->capacity() * sizeof(T);
    return bytes;
  }

 private:
  std::vector<std::unique_ptr<std::vector<T>>> slots_;
  std::vector<std::uint32_t> free_;
  std::size_t live_ = 0;
  std::size_t live_high_water_ = 0;
  std::size_t live_bytes_ = 0;
  std::size_t live_bytes_high_water_ = 0;
};

}  // namespace detail

/// Move-only handle to one pooled vector; returns it on destruction.
/// Dereferences to the underlying std::vector<T>.
template <class T>
class Lease {
 public:
  Lease(detail::Pool<T>* pool, std::vector<T>* vec, std::uint32_t idx,
        std::size_t bytes)
      : pool_(pool), vec_(vec), idx_(idx), bytes_(bytes) {}
  Lease(Lease&& o) noexcept
      : pool_(o.pool_), vec_(o.vec_), idx_(o.idx_), bytes_(o.bytes_) {
    o.pool_ = nullptr;
  }
  Lease& operator=(Lease&& o) noexcept {
    if (this != &o) {
      reset();
      pool_ = o.pool_;
      vec_ = o.vec_;
      idx_ = o.idx_;
      bytes_ = o.bytes_;
      o.pool_ = nullptr;
    }
    return *this;
  }
  Lease(const Lease&) = delete;
  Lease& operator=(const Lease&) = delete;
  ~Lease() { reset(); }

  std::vector<T>& operator*() const { return *vec_; }
  std::vector<T>* operator->() const { return vec_; }
  std::vector<T>& get() const { return *vec_; }

 private:
  void reset() {
    if (pool_) pool_->release(idx_, bytes_);
    pool_ = nullptr;
  }

  detail::Pool<T>* pool_;
  std::vector<T>* vec_;
  std::uint32_t idx_;
  std::size_t bytes_;
};

/// Arena of reusable scratch vectors; see file comment for the rules.
class Workspace {
 public:
  /// Leases a buffer resized to n elements. Contents are unspecified
  /// (old data or default-inits) — callers must write before reading.
  Lease<Cplx> cvec(std::size_t n) { return lease(cplx_, n); }
  Lease<double> rvec(std::size_t n) { return lease(real_, n); }
  Lease<std::uint8_t> bits(std::size_t n) { return lease(byte_, n); }
  Lease<std::uint64_t> u64(std::size_t n) { return lease(u64_, n); }
  Lease<std::int16_t> i16vec(std::size_t n) { return lease(i16_, n); }

  /// Publishes slot counts, live high-water marks, retained capacity
  /// bytes, and peak simultaneously-leased bytes as gauges named
  /// workspace.{slots,high_water,bytes,bytes_high_water}{pool=<pool>}.
  void publish(obs::Registry& registry) const;

  /// Total capacity retained across all pools, in bytes.
  std::size_t capacity_bytes() const;

 private:
  template <class T>
  Lease<T> lease(detail::Pool<T>& pool, std::size_t n) {
    auto [vec, idx] = pool.acquire();
    vec->resize(n);
    pool.note_lease_bytes(n * sizeof(T));
    return Lease<T>(&pool, vec, idx, n * sizeof(T));
  }

  detail::Pool<Cplx> cplx_;
  detail::Pool<double> real_;
  detail::Pool<std::uint8_t> byte_;
  detail::Pool<std::uint64_t> u64_;
  detail::Pool<std::int16_t> i16_;

  friend void publish_pool_stats(const Workspace&, obs::Registry&);
};

/// The calling thread's arena. Hot-path entry points that do not take an
/// explicit Workspace parameter lease from this one.
Workspace& tls_workspace();

}  // namespace wlan::phy

#include "phy/modulation.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace wlan::phy {
namespace {

// Per-axis Gray mappings (802.11 Table 17-x conventions), unnormalized.
constexpr std::array<double, 2> kLevels1 = {-1.0, 1.0};           // bit: 0,1
constexpr std::array<double, 4> kLevels2 = {-3.0, -1.0, 1.0, 3.0};
constexpr std::array<double, 8> kLevels4 = {-7.0, -5.0, -3.0, -1.0,
                                            1.0,  3.0,  5.0,  7.0};

// Gray index per bit pattern: pattern -> level index.
// 2 bits: 00->-3 01->-1 11->+1 10->+3.
constexpr std::array<int, 4> kGray2 = {0, 1, 3, 2};
// 3 bits: 000->-7 001->-5 011->-3 010->-1 110->+1 111->+3 101->+5 100->+7.
constexpr std::array<int, 8> kGray3 = {0, 1, 3, 2, 7, 6, 4, 5};

struct AxisSpec {
  int bits_per_axis;  // 0 means axis unused (BPSK Q axis)
  double norm;        // amplitude normalization factor
};

AxisSpec axis_spec(Modulation mod) {
  switch (mod) {
    case Modulation::kBpsk: return {1, 1.0};
    case Modulation::kQpsk: return {1, 1.0 / std::sqrt(2.0)};
    case Modulation::kQam16: return {2, 1.0 / std::sqrt(10.0)};
    case Modulation::kQam64: return {3, 1.0 / std::sqrt(42.0)};
  }
  return {1, 1.0};
}

double map_axis(std::span<const std::uint8_t> bits, int n) {
  // bits[0] is the most significant (first transmitted) bit on the axis.
  int pattern = 0;
  for (int i = 0; i < n; ++i) pattern = (pattern << 1) | (bits[i] & 1);
  switch (n) {
    case 1: return kLevels1[static_cast<std::size_t>(pattern)];
    case 2: return kLevels2[static_cast<std::size_t>(kGray2[static_cast<std::size_t>(pattern)])];
    case 3: return kLevels4[static_cast<std::size_t>(kGray3[static_cast<std::size_t>(pattern)])];
    default: return 0.0;
  }
}

// For hard/soft demapping: enumerate the axis levels and the bit pattern of
// each level.
void axis_levels(int n, std::span<const double>& levels,
                 std::array<int, 8>& pattern_of_level) {
  static constexpr std::array<double, 2> l1 = kLevels1;
  static constexpr std::array<double, 4> l2 = kLevels2;
  static constexpr std::array<double, 8> l4 = kLevels4;
  switch (n) {
    case 1:
      levels = l1;
      pattern_of_level = {0, 1, 0, 0, 0, 0, 0, 0};
      break;
    case 2: {
      levels = l2;
      // invert kGray2: level index -> pattern
      for (int p = 0; p < 4; ++p) pattern_of_level[static_cast<std::size_t>(kGray2[static_cast<std::size_t>(p)])] = p;
      break;
    }
    case 3: {
      levels = l4;
      for (int p = 0; p < 8; ++p) pattern_of_level[static_cast<std::size_t>(kGray3[static_cast<std::size_t>(p)])] = p;
      break;
    }
    default:
      levels = {};
      break;
  }
}

}  // namespace

std::size_t bits_per_symbol(Modulation mod) {
  switch (mod) {
    case Modulation::kBpsk: return 1;
    case Modulation::kQpsk: return 2;
    case Modulation::kQam16: return 4;
    case Modulation::kQam64: return 6;
  }
  return 1;
}

CVec modulate(std::span<const std::uint8_t> bits, Modulation mod) {
  const std::size_t n_bpsc = bits_per_symbol(mod);
  check(bits.size() % n_bpsc == 0, "modulate: bits not a multiple of bits/symbol");
  const AxisSpec spec = axis_spec(mod);
  const bool has_q = mod != Modulation::kBpsk;
  CVec out(bits.size() / n_bpsc);
  for (std::size_t s = 0; s < out.size(); ++s) {
    const auto sym_bits = bits.subspan(s * n_bpsc, n_bpsc);
    const double i_val =
        map_axis(sym_bits.first(static_cast<std::size_t>(spec.bits_per_axis)),
                 spec.bits_per_axis) *
        spec.norm;
    double q_val = 0.0;
    if (has_q) {
      q_val = map_axis(sym_bits.subspan(static_cast<std::size_t>(spec.bits_per_axis)),
                       spec.bits_per_axis) *
              spec.norm;
    }
    out[s] = {i_val, q_val};
  }
  return out;
}

namespace {

void demap_axis_llr(double y, int n, double norm, double sigma2_axis,
                    double* llr_out) {
  std::span<const double> levels;
  std::array<int, 8> pattern_of_level{};
  axis_levels(n, levels, pattern_of_level);
  const int n_levels = 1 << n;
  // min distance^2 separately for bit=0 and bit=1 per bit position.
  std::array<double, 3> d0{};
  std::array<double, 3> d1{};
  d0.fill(std::numeric_limits<double>::infinity());
  d1.fill(std::numeric_limits<double>::infinity());
  for (int li = 0; li < n_levels; ++li) {
    const double s = levels[static_cast<std::size_t>(li)] * norm;
    const double d = (y - s) * (y - s);
    const int pattern = pattern_of_level[static_cast<std::size_t>(li)];
    for (int b = 0; b < n; ++b) {
      const int bit = (pattern >> (n - 1 - b)) & 1;
      if (bit == 0) {
        d0[static_cast<std::size_t>(b)] = std::min(d0[static_cast<std::size_t>(b)], d);
      } else {
        d1[static_cast<std::size_t>(b)] = std::min(d1[static_cast<std::size_t>(b)], d);
      }
    }
  }
  const double inv = sigma2_axis > 0.0 ? 1.0 / (2.0 * sigma2_axis) : 1e12;
  for (int b = 0; b < n; ++b) {
    llr_out[b] = (d1[static_cast<std::size_t>(b)] - d0[static_cast<std::size_t>(b)]) * inv;
  }
}

}  // namespace

Bits demodulate_hard(std::span<const Cplx> symbols, Modulation mod) {
  const RVec llrs = demodulate_llr(symbols, mod, 1.0);
  Bits out(llrs.size());
  for (std::size_t i = 0; i < llrs.size(); ++i) out[i] = llrs[i] < 0.0 ? 1 : 0;
  return out;
}

RVec demodulate_llr(std::span<const Cplx> symbols, Modulation mod,
                    std::span<const double> noise_variance) {
  check(noise_variance.size() == symbols.size(),
        "demodulate_llr: per-symbol noise variance size mismatch");
  const std::size_t n_bpsc = bits_per_symbol(mod);
  const AxisSpec spec = axis_spec(mod);
  const bool has_q = mod != Modulation::kBpsk;
  RVec llrs(symbols.size() * n_bpsc);
  for (std::size_t s = 0; s < symbols.size(); ++s) {
    const double sigma2_axis = std::max(noise_variance[s], 1e-12) / 2.0;
    double* out = &llrs[s * n_bpsc];
    demap_axis_llr(symbols[s].real(), spec.bits_per_axis, spec.norm, sigma2_axis,
                   out);
    if (has_q) {
      demap_axis_llr(symbols[s].imag(), spec.bits_per_axis, spec.norm,
                     sigma2_axis, out + spec.bits_per_axis);
    }
  }
  return llrs;
}

RVec demodulate_llr(std::span<const Cplx> symbols, Modulation mod,
                    double noise_variance) {
  const RVec nv(symbols.size(), noise_variance);
  return demodulate_llr(symbols, mod, nv);
}

namespace {

double slice_axis(double y, int n, double norm) {
  std::span<const double> levels;
  std::array<int, 8> pattern_of_level{};
  axis_levels(n, levels, pattern_of_level);
  double best = levels[0] * norm;
  double best_d = std::abs(y - best);
  for (std::size_t i = 1; i < levels.size(); ++i) {
    const double s = levels[i] * norm;
    const double d = std::abs(y - s);
    if (d < best_d) {
      best_d = d;
      best = s;
    }
  }
  return best;
}

}  // namespace

Cplx slice_symbol(Cplx observation, Modulation mod) {
  const AxisSpec spec = axis_spec(mod);
  const double i_val = slice_axis(observation.real(), spec.bits_per_axis, spec.norm);
  const double q_val = mod == Modulation::kBpsk
                           ? 0.0
                           : slice_axis(observation.imag(), spec.bits_per_axis,
                                        spec.norm);
  return {i_val, q_val};
}

}  // namespace wlan::phy

#include "phy/modulation.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "dsp/simd.h"

namespace wlan::phy {
namespace {

// Per-axis Gray mappings (802.11 Table 17-x conventions), unnormalized.
constexpr std::array<double, 2> kLevels1 = {-1.0, 1.0};           // bit: 0,1
constexpr std::array<double, 4> kLevels2 = {-3.0, -1.0, 1.0, 3.0};
constexpr std::array<double, 8> kLevels4 = {-7.0, -5.0, -3.0, -1.0,
                                            1.0,  3.0,  5.0,  7.0};

// Gray index per bit pattern: pattern -> level index.
// 2 bits: 00->-3 01->-1 11->+1 10->+3.
constexpr std::array<int, 4> kGray2 = {0, 1, 3, 2};
// 3 bits: 000->-7 001->-5 011->-3 010->-1 110->+1 111->+3 101->+5 100->+7.
constexpr std::array<int, 8> kGray3 = {0, 1, 3, 2, 7, 6, 4, 5};

struct AxisSpec {
  int bits_per_axis;  // 0 means axis unused (BPSK Q axis)
  double norm;        // amplitude normalization factor
};

AxisSpec axis_spec(Modulation mod) {
  switch (mod) {
    case Modulation::kBpsk: return {1, 1.0};
    case Modulation::kQpsk: return {1, 1.0 / std::sqrt(2.0)};
    case Modulation::kQam16: return {2, 1.0 / std::sqrt(10.0)};
    case Modulation::kQam64: return {3, 1.0 / std::sqrt(42.0)};
  }
  return {1, 1.0};
}

double map_axis(std::span<const std::uint8_t> bits, int n) {
  // bits[0] is the most significant (first transmitted) bit on the axis.
  int pattern = 0;
  for (int i = 0; i < n; ++i) pattern = (pattern << 1) | (bits[i] & 1);
  switch (n) {
    case 1: return kLevels1[static_cast<std::size_t>(pattern)];
    case 2: return kLevels2[static_cast<std::size_t>(kGray2[static_cast<std::size_t>(pattern)])];
    case 3: return kLevels4[static_cast<std::size_t>(kGray3[static_cast<std::size_t>(pattern)])];
    default: return 0.0;
  }
}

// For hard/soft demapping: enumerate the axis levels and the bit pattern of
// each level.
void axis_levels(int n, std::span<const double>& levels,
                 std::array<int, 8>& pattern_of_level) {
  static constexpr std::array<double, 2> l1 = kLevels1;
  static constexpr std::array<double, 4> l2 = kLevels2;
  static constexpr std::array<double, 8> l4 = kLevels4;
  switch (n) {
    case 1:
      levels = l1;
      pattern_of_level = {0, 1, 0, 0, 0, 0, 0, 0};
      break;
    case 2: {
      levels = l2;
      // invert kGray2: level index -> pattern
      for (int p = 0; p < 4; ++p) pattern_of_level[static_cast<std::size_t>(kGray2[static_cast<std::size_t>(p)])] = p;
      break;
    }
    case 3: {
      levels = l4;
      for (int p = 0; p < 8; ++p) pattern_of_level[static_cast<std::size_t>(kGray3[static_cast<std::size_t>(p)])] = p;
      break;
    }
    default:
      levels = {};
      break;
  }
}

}  // namespace

std::size_t bits_per_symbol(Modulation mod) {
  switch (mod) {
    case Modulation::kBpsk: return 1;
    case Modulation::kQpsk: return 2;
    case Modulation::kQam16: return 4;
    case Modulation::kQam64: return 6;
  }
  return 1;
}

void modulate_to(std::span<const std::uint8_t> bits, Modulation mod,
                 std::span<Cplx> out) {
  const std::size_t n_bpsc = bits_per_symbol(mod);
  check(bits.size() % n_bpsc == 0, "modulate: bits not a multiple of bits/symbol");
  check(out.size() == bits.size() / n_bpsc, "modulate_to: output size mismatch");
  const AxisSpec spec = axis_spec(mod);
  const bool has_q = mod != Modulation::kBpsk;
  for (std::size_t s = 0; s < out.size(); ++s) {
    const auto sym_bits = bits.subspan(s * n_bpsc, n_bpsc);
    const double i_val =
        map_axis(sym_bits.first(static_cast<std::size_t>(spec.bits_per_axis)),
                 spec.bits_per_axis) *
        spec.norm;
    double q_val = 0.0;
    if (has_q) {
      q_val = map_axis(sym_bits.subspan(static_cast<std::size_t>(spec.bits_per_axis)),
                       spec.bits_per_axis) *
              spec.norm;
    }
    out[s] = {i_val, q_val};
  }
}

void modulate_into(std::span<const std::uint8_t> bits, Modulation mod,
                   CVec& out) {
  out.resize(bits.size() / bits_per_symbol(mod));
  modulate_to(bits, mod, out);
}

CVec modulate(std::span<const std::uint8_t> bits, Modulation mod) {
  CVec out(bits.size() / bits_per_symbol(mod));
  modulate_to(bits, mod, out);
  return out;
}

namespace {

void demap_axis_llr(double y, int n, double norm, double sigma2_axis,
                    double* llr_out) {
  std::span<const double> levels;
  std::array<int, 8> pattern_of_level{};
  axis_levels(n, levels, pattern_of_level);
  const int n_levels = 1 << n;
  // min distance^2 separately for bit=0 and bit=1 per bit position.
  std::array<double, 3> d0{};
  std::array<double, 3> d1{};
  d0.fill(std::numeric_limits<double>::infinity());
  d1.fill(std::numeric_limits<double>::infinity());
  for (int li = 0; li < n_levels; ++li) {
    const double s = levels[static_cast<std::size_t>(li)] * norm;
    const double d = (y - s) * (y - s);
    const int pattern = pattern_of_level[static_cast<std::size_t>(li)];
    for (int b = 0; b < n; ++b) {
      const int bit = (pattern >> (n - 1 - b)) & 1;
      if (bit == 0) {
        d0[static_cast<std::size_t>(b)] = std::min(d0[static_cast<std::size_t>(b)], d);
      } else {
        d1[static_cast<std::size_t>(b)] = std::min(d1[static_cast<std::size_t>(b)], d);
      }
    }
  }
  const double inv = sigma2_axis > 0.0 ? 1.0 / (2.0 * sigma2_axis) : 1e12;
  for (int b = 0; b < n; ++b) {
    llr_out[b] = (d1[static_cast<std::size_t>(b)] - d0[static_cast<std::size_t>(b)]) * inv;
  }
}

// Per-modulation axis table for the vector demapper: scaled level values
// and, per bit position, whether each level carries a 1. Precomputing the
// level*norm product reproduces the scalar path's arithmetic exactly
// (same two operands, same multiply).
struct AxisTable {
  std::array<double, 8> scaled;
  std::array<std::array<std::uint8_t, 8>, 3> is_one;
  int n;         // bits per axis
  int n_levels;  // 1 << n
};

AxisTable make_axis_table(Modulation mod) {
  const AxisSpec spec = axis_spec(mod);
  std::span<const double> levels;
  std::array<int, 8> pattern_of_level{};
  axis_levels(spec.bits_per_axis, levels, pattern_of_level);
  AxisTable t{};
  t.n = spec.bits_per_axis;
  t.n_levels = 1 << t.n;
  for (int li = 0; li < t.n_levels; ++li) {
    t.scaled[static_cast<std::size_t>(li)] =
        levels[static_cast<std::size_t>(li)] * spec.norm;
    const int pattern = pattern_of_level[static_cast<std::size_t>(li)];
    for (int b = 0; b < t.n; ++b) {
      t.is_one[static_cast<std::size_t>(b)][static_cast<std::size_t>(li)] =
          static_cast<std::uint8_t>((pattern >> (t.n - 1 - b)) & 1);
    }
  }
  return t;
}

const AxisTable& axis_table(Modulation mod) {
  static const std::array<AxisTable, 4> tables = {
      make_axis_table(Modulation::kBpsk), make_axis_table(Modulation::kQpsk),
      make_axis_table(Modulation::kQam16), make_axis_table(Modulation::kQam64)};
  return tables[static_cast<std::size_t>(mod)];
}

// Lane-per-symbol max-log demapper over one block of simd::kWidth
// symbols. Each lane performs exactly the scalar per-symbol arithmetic
// (max, div, sub, mul, min in the same operand order), so the output is
// bitwise identical to demap_axis_llr.
void demap_block_vec(const Cplx* symbols, const double* noise_variance,
                     const AxisTable& t, bool has_q, std::size_t n_bpsc,
                     double* out) {
  using dsp::simd::DVec;
  constexpr std::size_t W = dsp::simd::kWidth;
  constexpr double kInf = std::numeric_limits<double>::infinity();

  double lane[W];
  for (std::size_t w = 0; w < W; ++w) lane[w] = noise_variance[w];
  const DVec sigma2 =
      dsp::simd::max_with(DVec::load(lane), DVec::splat(1e-12)) /
      DVec::splat(2.0);
  const DVec inv = DVec::splat(1.0) / (DVec::splat(2.0) * sigma2);

  const int axes = has_q ? 2 : 1;
  for (int axis = 0; axis < axes; ++axis) {
    for (std::size_t w = 0; w < W; ++w) {
      lane[w] = axis == 0 ? symbols[w].real() : symbols[w].imag();
    }
    const DVec y = DVec::load(lane);
    DVec d0[3] = {DVec::splat(kInf), DVec::splat(kInf), DVec::splat(kInf)};
    DVec d1[3] = {DVec::splat(kInf), DVec::splat(kInf), DVec::splat(kInf)};
    for (int li = 0; li < t.n_levels; ++li) {
      const DVec diff = y - DVec::splat(t.scaled[static_cast<std::size_t>(li)]);
      const DVec d = diff * diff;
      for (int b = 0; b < t.n; ++b) {
        auto& dst = t.is_one[static_cast<std::size_t>(b)]
                            [static_cast<std::size_t>(li)]
                        ? d1[b]
                        : d0[b];
        dst = dsp::simd::min_with(dst, d);
      }
    }
    const std::size_t base = static_cast<std::size_t>(axis) *
                             static_cast<std::size_t>(t.n);
    for (int b = 0; b < t.n; ++b) {
      const DVec llr = (d1[b] - d0[b]) * inv;
      llr.store(lane);
      for (std::size_t w = 0; w < W; ++w) {
        out[w * n_bpsc + base + static_cast<std::size_t>(b)] = lane[w];
      }
    }
  }
}

}  // namespace

Bits demodulate_hard(std::span<const Cplx> symbols, Modulation mod) {
  const RVec llrs = demodulate_llr(symbols, mod, 1.0);
  Bits out(llrs.size());
  for (std::size_t i = 0; i < llrs.size(); ++i) out[i] = llrs[i] < 0.0 ? 1 : 0;
  return out;
}

void demodulate_llr_to(std::span<const Cplx> symbols, Modulation mod,
                       std::span<const double> noise_variance,
                       std::span<double> out) {
  check(noise_variance.size() == symbols.size(),
        "demodulate_llr: per-symbol noise variance size mismatch");
  const std::size_t n_bpsc = bits_per_symbol(mod);
  check(out.size() == symbols.size() * n_bpsc,
        "demodulate_llr_to: output size mismatch");
  const AxisSpec spec = axis_spec(mod);
  const bool has_q = mod != Modulation::kBpsk;

  std::size_t s = 0;
  if (dsp::simd::vector_enabled()) {
    constexpr std::size_t W = dsp::simd::kWidth;
    const AxisTable& table = axis_table(mod);
    for (; s + W <= symbols.size(); s += W) {
      demap_block_vec(symbols.data() + s, noise_variance.data() + s, table,
                      has_q, n_bpsc, out.data() + s * n_bpsc);
    }
  }
  for (; s < symbols.size(); ++s) {
    const double sigma2_axis = std::max(noise_variance[s], 1e-12) / 2.0;
    double* dst = &out[s * n_bpsc];
    demap_axis_llr(symbols[s].real(), spec.bits_per_axis, spec.norm,
                   sigma2_axis, dst);
    if (has_q) {
      demap_axis_llr(symbols[s].imag(), spec.bits_per_axis, spec.norm,
                     sigma2_axis, dst + spec.bits_per_axis);
    }
  }
}

void demodulate_llr_to(std::span<const Cplx> symbols, Modulation mod,
                       double noise_variance, std::span<double> out) {
  const std::size_t n_bpsc = bits_per_symbol(mod);
  check(out.size() == symbols.size() * n_bpsc,
        "demodulate_llr_to: output size mismatch");
  // Feed the per-symbol core from a fixed-size splat buffer so the shared
  // noise variance stays allocation-free.
  constexpr std::size_t kChunk = 64;
  std::array<double, kChunk> nv;
  nv.fill(noise_variance);
  for (std::size_t s = 0; s < symbols.size(); s += kChunk) {
    const std::size_t n = std::min(kChunk, symbols.size() - s);
    demodulate_llr_to(symbols.subspan(s, n), mod,
                      std::span<const double>(nv.data(), n),
                      out.subspan(s * n_bpsc, n * n_bpsc));
  }
}

void demodulate_llr_into(std::span<const Cplx> symbols, Modulation mod,
                         std::span<const double> noise_variance, RVec& out) {
  out.resize(symbols.size() * bits_per_symbol(mod));
  demodulate_llr_to(symbols, mod, noise_variance, out);
}

RVec demodulate_llr(std::span<const Cplx> symbols, Modulation mod,
                    std::span<const double> noise_variance) {
  RVec llrs(symbols.size() * bits_per_symbol(mod));
  demodulate_llr_to(symbols, mod, noise_variance, llrs);
  return llrs;
}

RVec demodulate_llr(std::span<const Cplx> symbols, Modulation mod,
                    double noise_variance) {
  RVec llrs(symbols.size() * bits_per_symbol(mod));
  demodulate_llr_to(symbols, mod, noise_variance, llrs);
  return llrs;
}

namespace {

double slice_axis(double y, int n, double norm) {
  std::span<const double> levels;
  std::array<int, 8> pattern_of_level{};
  axis_levels(n, levels, pattern_of_level);
  double best = levels[0] * norm;
  double best_d = std::abs(y - best);
  for (std::size_t i = 1; i < levels.size(); ++i) {
    const double s = levels[i] * norm;
    const double d = std::abs(y - s);
    if (d < best_d) {
      best_d = d;
      best = s;
    }
  }
  return best;
}

}  // namespace

Cplx slice_symbol(Cplx observation, Modulation mod) {
  const AxisSpec spec = axis_spec(mod);
  const double i_val = slice_axis(observation.real(), spec.bits_per_axis, spec.norm);
  const double q_val = mod == Modulation::kBpsk
                           ? 0.0
                           : slice_axis(observation.imag(), spec.bits_per_axis,
                                        spec.norm);
  return {i_val, q_val};
}

}  // namespace wlan::phy

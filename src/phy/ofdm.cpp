#include "phy/ofdm.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/units.h"
#include "dsp/fft.h"
#include "obs/probe.h"
#include "phy/interleaver.h"
#include "phy/scrambler.h"

namespace wlan::phy {
namespace {

constexpr std::uint8_t kScramblerSeed = 0x5D;
constexpr std::size_t kServiceBits = 16;
constexpr std::size_t kTailBits = 6;

const std::array<OfdmMcsInfo, 8> kMcsTable = {{
    {Modulation::kBpsk, CodeRate::kR12, 1, 48, 24, 6.0},
    {Modulation::kBpsk, CodeRate::kR34, 1, 48, 36, 9.0},
    {Modulation::kQpsk, CodeRate::kR12, 2, 96, 48, 12.0},
    {Modulation::kQpsk, CodeRate::kR34, 2, 96, 72, 18.0},
    {Modulation::kQam16, CodeRate::kR12, 4, 192, 96, 24.0},
    {Modulation::kQam16, CodeRate::kR34, 4, 192, 144, 36.0},
    {Modulation::kQam64, CodeRate::kR23, 6, 288, 192, 48.0},
    {Modulation::kQam64, CodeRate::kR34, 6, 288, 216, 54.0},
}};

// 802.11a long training sequence on tones -26..+26 (DC = 0).
constexpr std::array<int, 53> kLtfSequence = {
    1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1,
    1, -1, 1, -1, 1, 1, 1, 1,
    0,
    1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1,
    -1, 1, -1, 1, -1, 1, 1, 1, 1};

constexpr std::array<int, 4> kPilotTones = {-21, -7, 7, 21};
constexpr std::array<double, 4> kPilotValues = {1.0, 1.0, 1.0, -1.0};

bool is_pilot(int tone) {
  return tone == -21 || tone == -7 || tone == 7 || tone == 21;
}

}  // namespace

const OfdmMcsInfo& ofdm_mcs_info(OfdmMcs mcs) {
  return kMcsTable[static_cast<std::size_t>(mcs)];
}

const std::array<int, OfdmPhy::kDataTones>& ofdm_data_tones() {
  static const std::array<int, OfdmPhy::kDataTones> tones = [] {
    std::array<int, OfdmPhy::kDataTones> t{};
    std::size_t i = 0;
    for (int k = -26; k <= 26; ++k) {
      if (k == 0 || is_pilot(k)) continue;
      t[i++] = k;
    }
    return t;
  }();
  return tones;
}

std::size_t ofdm_tone_bin(int tone) {
  return static_cast<std::size_t>((tone + static_cast<int>(OfdmPhy::kNfft)) %
                                  static_cast<int>(OfdmPhy::kNfft));
}

const std::vector<double>& ofdm_pilot_polarity() {
  static const std::vector<double> polarity = [] {
    const Bits zeros(127, 0);
    const Bits seq = scramble(zeros, 0x7F);
    std::vector<double> p(127);
    for (std::size_t i = 0; i < 127; ++i) p[i] = seq[i] ? -1.0 : 1.0;
    return p;
  }();
  return polarity;
}

CVec ofdm_build_symbol(std::span<const Cplx> data_tones, double pilot_polarity) {
  check(data_tones.size() == OfdmPhy::kDataTones,
        "ofdm_build_symbol requires 48 data-tone values");
  const auto& tones = ofdm_data_tones();
  CVec freq(OfdmPhy::kNfft, Cplx{0.0, 0.0});
  for (std::size_t t = 0; t < OfdmPhy::kDataTones; ++t) {
    freq[ofdm_tone_bin(tones[t])] = data_tones[t];
  }
  for (std::size_t t = 0; t < kPilotTones.size(); ++t) {
    freq[ofdm_tone_bin(kPilotTones[t])] = pilot_polarity * kPilotValues[t];
  }
  CVec time = dsp::ifft(std::move(freq));
  CVec out;
  out.reserve(OfdmPhy::kSymbolLen);
  for (std::size_t i = 0; i < OfdmPhy::kCpLen; ++i) {
    out.push_back(time[OfdmPhy::kNfft - OfdmPhy::kCpLen + i]);
  }
  out.insert(out.end(), time.begin(), time.end());
  return out;
}

CVec ofdm_ltf_waveform() {
  CVec freq(OfdmPhy::kNfft, Cplx{0.0, 0.0});
  for (int k = -26; k <= 26; ++k) {
    freq[ofdm_tone_bin(k)] =
        static_cast<double>(kLtfSequence[static_cast<std::size_t>(k + 26)]);
  }
  CVec time = dsp::ifft(std::move(freq));
  CVec out;
  out.reserve(2 * OfdmPhy::kSymbolLen);
  for (int rep = 0; rep < 2; ++rep) {
    for (std::size_t i = 0; i < OfdmPhy::kCpLen; ++i) {
      out.push_back(time[OfdmPhy::kNfft - OfdmPhy::kCpLen + i]);
    }
    out.insert(out.end(), time.begin(), time.end());
  }
  return out;
}

CVec ofdm_extract_symbol(std::span<const Cplx> samples, std::size_t index) {
  const std::size_t start = index * OfdmPhy::kSymbolLen + OfdmPhy::kCpLen;
  check(start + OfdmPhy::kNfft <= samples.size(),
        "ofdm_extract_symbol: waveform too short");
  CVec time(OfdmPhy::kNfft);
  std::copy(samples.begin() + static_cast<std::ptrdiff_t>(start),
            samples.begin() + static_cast<std::ptrdiff_t>(start + OfdmPhy::kNfft),
            time.begin());
  return dsp::fft(std::move(time));
}

CVec ofdm_estimate_channel(std::span<const Cplx> samples) {
  const CVec ltf1 = ofdm_extract_symbol(samples, 0);
  const CVec ltf2 = ofdm_extract_symbol(samples, 1);
  CVec h(OfdmPhy::kNfft, Cplx{1.0, 0.0});
  for (int k = -26; k <= 26; ++k) {
    if (k == 0) continue;
    const double ref =
        static_cast<double>(kLtfSequence[static_cast<std::size_t>(k + 26)]);
    const std::size_t bin = ofdm_tone_bin(k);
    h[bin] = (ltf1[bin] + ltf2[bin]) / (2.0 * ref);
  }
  return h;
}

OfdmPhy::OfdmPhy(OfdmMcs mcs) : mcs_(mcs), info_(&ofdm_mcs_info(mcs)) {}

std::size_t OfdmPhy::n_symbols_for_psdu(std::size_t psdu_bytes) const {
  const std::size_t payload_bits = kServiceBits + 8 * psdu_bytes + kTailBits;
  return (payload_bits + info_->n_dbps - 1) / info_->n_dbps;
}

double OfdmPhy::ppdu_duration_s(std::size_t psdu_bytes) const {
  // 8 us STF + 8 us LTF + 4 us SIGNAL + data symbols.
  return 20e-6 + static_cast<double>(n_symbols_for_psdu(psdu_bytes)) *
                     kSymbolDurationS;
}

std::size_t OfdmPhy::waveform_length(std::size_t psdu_bytes) const {
  return (kLtfSymbols + n_symbols_for_psdu(psdu_bytes)) * kSymbolLen;
}

CVec OfdmPhy::transmit(std::span<const std::uint8_t> psdu) const {
  const std::size_t n_sym = n_symbols_for_psdu(psdu.size());
  const std::size_t n_data_bits = n_sym * info_->n_dbps;

  // SERVICE (zeros) + PSDU + tail + pad.
  Bits data(n_data_bits, 0);
  {
    std::size_t pos = kServiceBits;
    for (const std::uint8_t byte : psdu) {
      for (int i = 0; i < 8; ++i) {
        data[pos++] = static_cast<std::uint8_t>((byte >> i) & 1u);
      }
    }
  }
  Bits scrambled = scramble(data, kScramblerSeed);
  // Only the 6 tail bits are forced back to zero after scrambling (17.3.5.3):
  // the encoder passes through state 0 right after them, and the pad bits
  // stay scrambled (this matters for the waveform's PAPR statistics).
  const std::size_t tail_pos = kServiceBits + 8 * psdu.size();
  for (std::size_t i = 0; i < kTailBits; ++i) scrambled[tail_pos + i] = 0;

  const Bits coded = puncture(convolutional_encode(scrambled), info_->rate);
  check(coded.size() == n_sym * info_->n_cbps, "OFDM TX coded length mismatch");

  const Interleaver interleaver(info_->n_cbps, info_->n_bpsc);
  const auto& polarity = ofdm_pilot_polarity();

  CVec out;
  out.reserve(waveform_length(psdu.size()));
  const CVec ltf = ofdm_ltf_waveform();
  out.insert(out.end(), ltf.begin(), ltf.end());

  for (std::size_t s = 0; s < n_sym; ++s) {
    const Bits inter = interleaver.interleave(
        std::span(coded).subspan(s * info_->n_cbps, info_->n_cbps));
    const CVec symbols = modulate(inter, info_->mod);
    const CVec sym = ofdm_build_symbol(symbols, polarity[s % polarity.size()]);
    out.insert(out.end(), sym.begin(), sym.end());
  }
  return out;
}

Bytes OfdmPhy::receive(std::span<const Cplx> samples, std::size_t psdu_bytes,
                       double noise_variance) const {
  const std::size_t n_sym = n_symbols_for_psdu(psdu_bytes);
  check(samples.size() >= (kLtfSymbols + n_sym) * kSymbolLen,
        "OFDM receive: waveform too short");

  const CVec h = ofdm_estimate_channel(samples);

  // Noise variance per FFT bin (unnormalized forward FFT). The LTF average
  // halves estimation noise; treat the estimate as exact for LLR purposes.
  const double bin_noise = noise_variance * static_cast<double>(kNfft);

  const Interleaver interleaver(info_->n_cbps, info_->n_bpsc);
  const auto& tones = ofdm_data_tones();

  RVec all_llrs;
  all_llrs.reserve(n_sym * info_->n_cbps);
  CVec eq(kDataTones);
  RVec nv(kDataTones);
  const auto& polarity = ofdm_pilot_polarity();
  for (std::size_t s = 0; s < n_sym; ++s) {
    const CVec freq = ofdm_extract_symbol(samples, kLtfSymbols + s);
    // Pilot-based common phase error tracking: residual CFO or phase
    // noise rotates every tone of a symbol equally; the four pilots
    // measure the rotation and the equalizer removes it.
    Cplx cpe{0.0, 0.0};
    const double p = polarity[s % polarity.size()];
    for (std::size_t t = 0; t < kPilotTones.size(); ++t) {
      const std::size_t bin = ofdm_tone_bin(kPilotTones[t]);
      const Cplx expected = h[bin] * (p * kPilotValues[t]);
      cpe += freq[bin] * std::conj(expected);
    }
    const double cpe_mag = std::abs(cpe);
    const Cplx derotate = cpe_mag > 1e-12 ? std::conj(cpe) / cpe_mag
                                          : Cplx{1.0, 0.0};
    for (std::size_t t = 0; t < kDataTones; ++t) {
      const std::size_t bin = ofdm_tone_bin(tones[t]);
      const Cplx hk = h[bin];
      const double mag2 = std::max(std::norm(hk), 1e-12);
      eq[t] = freq[bin] / hk * derotate;
      nv[t] = bin_noise / mag2;
    }
    // Link-quality probes (no-ops unless enable_phy_probes armed them).
    if (obs::Histogram* p = obs::probe_histogram(obs::Probe::kOfdmEvm)) {
      double err2 = 0.0;
      for (std::size_t t = 0; t < kDataTones; ++t) {
        err2 += std::norm(eq[t] - slice_symbol(eq[t], info_->mod));
      }
      p->record(std::sqrt(err2 / static_cast<double>(kDataTones)));
    }
    if (obs::Histogram* p =
            obs::probe_histogram(obs::Probe::kOfdmPostEqSnr)) {
      for (std::size_t t = 0; t < kDataTones; ++t) {
        p->record(lin_to_db(1.0 / nv[t]));
      }
    }
    const RVec llrs = demodulate_llr(eq, info_->mod, nv);
    if (obs::Histogram* p = obs::probe_histogram(obs::Probe::kOfdmLlrAbs)) {
      for (const double l : llrs) p->record(std::abs(l));
    }
    const RVec deinter = interleaver.deinterleave(llrs);
    all_llrs.insert(all_llrs.end(), deinter.begin(), deinter.end());
  }

  const std::size_t n_info = n_sym * info_->n_dbps;
  RVec unpunctured = depuncture(all_llrs, info_->rate, n_info);
  // The encoder is in state 0 immediately after the tail bits, so decode
  // exactly the service + PSDU + tail prefix with a terminated trellis and
  // ignore the (scrambled, random) pad bits.
  const std::size_t decoded_bits = kServiceBits + 8 * psdu_bytes + kTailBits;
  unpunctured.resize(2 * decoded_bits);
  const Bits decoded = viterbi_decode(unpunctured, /*terminated=*/true);
  const Bits descrambled = scramble(decoded, kScramblerSeed);

  Bytes psdu(psdu_bytes, 0);
  for (std::size_t i = 0; i < 8 * psdu_bytes; ++i) {
    if (descrambled[kServiceBits + i] & 1u) {
      psdu[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
    }
  }
  return psdu;
}

}  // namespace wlan::phy

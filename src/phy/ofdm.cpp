#include "phy/ofdm.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/check.h"
#include "common/units.h"
#include "dsp/batch.h"
#include "dsp/fft.h"
#include "obs/perf.h"
#include "obs/probe.h"
#include "phy/interleaver.h"
#include "phy/scrambler.h"
#include "phy/workspace.h"

namespace wlan::phy {
namespace {

constexpr std::uint8_t kScramblerSeed = 0x5D;
constexpr std::size_t kServiceBits = 16;
constexpr std::size_t kTailBits = 6;

// Quantizer target for the batch's peak |LLR|: well under the ±127 rail
// so saturating branch-metric sums (two LLRs) stay mostly linear.
constexpr double kQuantHeadroom = 96.0;

const std::array<OfdmMcsInfo, 8> kMcsTable = {{
    {Modulation::kBpsk, CodeRate::kR12, 1, 48, 24, 6.0},
    {Modulation::kBpsk, CodeRate::kR34, 1, 48, 36, 9.0},
    {Modulation::kQpsk, CodeRate::kR12, 2, 96, 48, 12.0},
    {Modulation::kQpsk, CodeRate::kR34, 2, 96, 72, 18.0},
    {Modulation::kQam16, CodeRate::kR12, 4, 192, 96, 24.0},
    {Modulation::kQam16, CodeRate::kR34, 4, 192, 144, 36.0},
    {Modulation::kQam64, CodeRate::kR23, 6, 288, 192, 48.0},
    {Modulation::kQam64, CodeRate::kR34, 6, 288, 216, 54.0},
}};

// 802.11a long training sequence on tones -26..+26 (DC = 0).
constexpr std::array<int, 53> kLtfSequence = {
    1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1,
    1, -1, 1, -1, 1, 1, 1, 1,
    0,
    1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1,
    -1, 1, -1, 1, -1, 1, 1, 1, 1};

constexpr std::array<int, 4> kPilotTones = {-21, -7, 7, 21};
constexpr std::array<double, 4> kPilotValues = {1.0, 1.0, 1.0, -1.0};

bool is_pilot(int tone) {
  return tone == -21 || tone == -7 || tone == 7 || tone == 21;
}

}  // namespace

const OfdmMcsInfo& ofdm_mcs_info(OfdmMcs mcs) {
  return kMcsTable[static_cast<std::size_t>(mcs)];
}

const std::array<int, OfdmPhy::kDataTones>& ofdm_data_tones() {
  static const std::array<int, OfdmPhy::kDataTones> tones = [] {
    std::array<int, OfdmPhy::kDataTones> t{};
    std::size_t i = 0;
    for (int k = -26; k <= 26; ++k) {
      if (k == 0 || is_pilot(k)) continue;
      t[i++] = k;
    }
    return t;
  }();
  return tones;
}

std::size_t ofdm_tone_bin(int tone) {
  return static_cast<std::size_t>((tone + static_cast<int>(OfdmPhy::kNfft)) %
                                  static_cast<int>(OfdmPhy::kNfft));
}

const std::vector<double>& ofdm_pilot_polarity() {
  static const std::vector<double> polarity = [] {
    const Bits zeros(127, 0);
    const Bits seq = scramble(zeros, 0x7F);
    std::vector<double> p(127);
    for (std::size_t i = 0; i < 127; ++i) p[i] = seq[i] ? -1.0 : 1.0;
    return p;
  }();
  return polarity;
}

void ofdm_build_symbol_to(std::span<const Cplx> data_tones,
                          double pilot_polarity, std::span<Cplx> out) {
  check(data_tones.size() == OfdmPhy::kDataTones,
        "ofdm_build_symbol requires 48 data-tone values");
  check(out.size() == OfdmPhy::kSymbolLen,
        "ofdm_build_symbol_to requires an 80-sample output");
  const auto& tones = ofdm_data_tones();
  // Assemble the frequency grid in the tail 64 samples of the output,
  // run the IFFT in place there, then copy the cyclic prefix in front —
  // no scratch buffer at all.
  const std::span<Cplx> freq = out.subspan(OfdmPhy::kCpLen, OfdmPhy::kNfft);
  std::fill(freq.begin(), freq.end(), Cplx{0.0, 0.0});
  for (std::size_t t = 0; t < OfdmPhy::kDataTones; ++t) {
    freq[ofdm_tone_bin(tones[t])] = data_tones[t];
  }
  for (std::size_t t = 0; t < kPilotTones.size(); ++t) {
    freq[ofdm_tone_bin(kPilotTones[t])] = pilot_polarity * kPilotValues[t];
  }
  dsp::ifft_inplace(freq);
  for (std::size_t i = 0; i < OfdmPhy::kCpLen; ++i) {
    out[i] = freq[OfdmPhy::kNfft - OfdmPhy::kCpLen + i];
  }
}

CVec ofdm_build_symbol(std::span<const Cplx> data_tones, double pilot_polarity) {
  CVec out(OfdmPhy::kSymbolLen);
  ofdm_build_symbol_to(data_tones, pilot_polarity, out);
  return out;
}

const CVec& ofdm_ltf_waveform() {
  static const CVec waveform = [] {
    CVec time(OfdmPhy::kNfft, Cplx{0.0, 0.0});
    for (int k = -26; k <= 26; ++k) {
      time[ofdm_tone_bin(k)] =
          static_cast<double>(kLtfSequence[static_cast<std::size_t>(k + 26)]);
    }
    dsp::ifft_inplace(time);
    CVec out(2 * OfdmPhy::kSymbolLen);
    std::size_t w = 0;
    for (int rep = 0; rep < 2; ++rep) {
      for (std::size_t i = 0; i < OfdmPhy::kCpLen; ++i) {
        out[w++] = time[OfdmPhy::kNfft - OfdmPhy::kCpLen + i];
      }
      for (std::size_t i = 0; i < OfdmPhy::kNfft; ++i) out[w++] = time[i];
    }
    return out;
  }();
  return waveform;
}

void ofdm_extract_symbol_to(std::span<const Cplx> samples, std::size_t index,
                            std::span<Cplx> out) {
  const std::size_t start = index * OfdmPhy::kSymbolLen + OfdmPhy::kCpLen;
  check(start + OfdmPhy::kNfft <= samples.size(),
        "ofdm_extract_symbol: waveform too short");
  check(out.size() == OfdmPhy::kNfft,
        "ofdm_extract_symbol_to requires a 64-bin output");
  std::copy(samples.begin() + static_cast<std::ptrdiff_t>(start),
            samples.begin() + static_cast<std::ptrdiff_t>(start + OfdmPhy::kNfft),
            out.begin());
  dsp::fft_inplace(out);
}

CVec ofdm_extract_symbol(std::span<const Cplx> samples, std::size_t index) {
  CVec out(OfdmPhy::kNfft);
  ofdm_extract_symbol_to(samples, index, out);
  return out;
}

void ofdm_estimate_channel_to(std::span<const Cplx> samples,
                              std::span<Cplx> out, Workspace& ws) {
  check(out.size() == OfdmPhy::kNfft,
        "ofdm_estimate_channel_to requires a 64-bin output");
  auto ltf1_lease = ws.cvec(OfdmPhy::kNfft);
  auto ltf2_lease = ws.cvec(OfdmPhy::kNfft);
  CVec& ltf1 = *ltf1_lease;
  CVec& ltf2 = *ltf2_lease;
  ofdm_extract_symbol_to(samples, 0, ltf1);
  ofdm_extract_symbol_to(samples, 1, ltf2);
  std::fill(out.begin(), out.end(), Cplx{1.0, 0.0});
  for (int k = -26; k <= 26; ++k) {
    if (k == 0) continue;
    const double ref =
        static_cast<double>(kLtfSequence[static_cast<std::size_t>(k + 26)]);
    const std::size_t bin = ofdm_tone_bin(k);
    out[bin] = (ltf1[bin] + ltf2[bin]) / (2.0 * ref);
  }
}

CVec ofdm_estimate_channel(std::span<const Cplx> samples) {
  CVec h(OfdmPhy::kNfft);
  ofdm_estimate_channel_to(samples, h, tls_workspace());
  return h;
}

OfdmPhy::OfdmPhy(OfdmMcs mcs)
    : mcs_(mcs),
      info_(&ofdm_mcs_info(mcs)),
      interleaver_(std::make_unique<Interleaver>(info_->n_cbps,
                                                 info_->n_bpsc)) {}

OfdmPhy::~OfdmPhy() = default;

OfdmPhy::OfdmPhy(const OfdmPhy& other) : OfdmPhy(other.mcs_) {}

std::size_t OfdmPhy::n_symbols_for_psdu(std::size_t psdu_bytes) const {
  const std::size_t payload_bits = kServiceBits + 8 * psdu_bytes + kTailBits;
  return (payload_bits + info_->n_dbps - 1) / info_->n_dbps;
}

double OfdmPhy::ppdu_duration_s(std::size_t psdu_bytes) const {
  // 8 us STF + 8 us LTF + 4 us SIGNAL + data symbols.
  return 20e-6 + static_cast<double>(n_symbols_for_psdu(psdu_bytes)) *
                     kSymbolDurationS;
}

std::size_t OfdmPhy::waveform_length(std::size_t psdu_bytes) const {
  return (kLtfSymbols + n_symbols_for_psdu(psdu_bytes)) * kSymbolLen;
}

void OfdmPhy::transmit_into(std::span<const std::uint8_t> psdu, CVec& out,
                            Workspace& ws) const {
  const obs::perf::ScopedSpan span("ofdm.tx");
  const std::size_t n_sym = n_symbols_for_psdu(psdu.size());
  const std::size_t n_data_bits = n_sym * info_->n_dbps;

  // SERVICE (zeros) + PSDU + tail + pad.
  auto data_lease = ws.bits(n_data_bits);
  Bits& data = *data_lease;
  std::fill(data.begin(), data.end(), 0);
  {
    std::size_t pos = kServiceBits;
    for (const std::uint8_t byte : psdu) {
      for (int i = 0; i < 8; ++i) {
        data[pos++] = static_cast<std::uint8_t>((byte >> i) & 1u);
      }
    }
  }
  // Scramble in place (scramble_to is alias-safe).
  scramble_to(data, kScramblerSeed, data);
  // Only the 6 tail bits are forced back to zero after scrambling (17.3.5.3):
  // the encoder passes through state 0 right after them, and the pad bits
  // stay scrambled (this matters for the waveform's PAPR statistics).
  const std::size_t tail_pos = kServiceBits + 8 * psdu.size();
  for (std::size_t i = 0; i < kTailBits; ++i) data[tail_pos + i] = 0;

  auto encoded_lease = ws.bits(2 * n_data_bits);
  auto coded_lease = ws.bits(0);
  Bits& encoded = *encoded_lease;
  Bits& coded = *coded_lease;
  convolutional_encode_into(data, encoded);
  puncture_into(encoded, info_->rate, coded);
  check(coded.size() == n_sym * info_->n_cbps, "OFDM TX coded length mismatch");

  const auto& polarity = ofdm_pilot_polarity();

  out.resize(waveform_length(psdu.size()));
  const CVec& ltf = ofdm_ltf_waveform();
  std::copy(ltf.begin(), ltf.end(), out.begin());

  auto inter_lease = ws.bits(info_->n_cbps);
  auto symbols_lease = ws.cvec(kDataTones);
  Bits& inter = *inter_lease;
  CVec& symbols = *symbols_lease;
  for (std::size_t s = 0; s < n_sym; ++s) {
    interleaver_->interleave_to(
        std::span(coded).subspan(s * info_->n_cbps, info_->n_cbps), inter);
    modulate_to(inter, info_->mod, symbols);
    ofdm_build_symbol_to(
        symbols, polarity[s % polarity.size()],
        std::span(out).subspan((kLtfSymbols + s) * kSymbolLen, kSymbolLen));
  }
}

CVec OfdmPhy::transmit(std::span<const std::uint8_t> psdu) const {
  CVec out;
  transmit_into(psdu, out, tls_workspace());
  return out;
}

void OfdmPhy::receive_front_into(std::span<const Cplx> samples,
                                 std::size_t n_sym, double noise_variance,
                                 std::span<double> all_llrs,
                                 Workspace& ws) const {
  check(samples.size() >= (kLtfSymbols + n_sym) * kSymbolLen,
        "OFDM receive: waveform too short");
  check(all_llrs.size() == n_sym * info_->n_cbps,
        "OFDM receive front: LLR buffer size mismatch");

  auto h_lease = ws.cvec(kNfft);
  const CVec& h = *h_lease;
  ofdm_estimate_channel_to(samples, *h_lease, ws);

  // Noise variance per FFT bin (unnormalized forward FFT). The LTF average
  // halves estimation noise; treat the estimate as exact for LLR purposes.
  const double bin_noise = noise_variance * static_cast<double>(kNfft);

  const auto& tones = ofdm_data_tones();

  auto freq_lease = ws.cvec(kNfft);
  auto eq_lease = ws.cvec(kDataTones);
  auto nv_lease = ws.rvec(kDataTones);
  auto snr_lease = ws.rvec(kDataTones);
  auto llrs_lease = ws.rvec(info_->n_cbps);
  CVec& freq = *freq_lease;
  CVec& eq = *eq_lease;
  RVec& nv = *nv_lease;
  RVec& snr_db = *snr_lease;
  RVec& llrs = *llrs_lease;

  // The per-tone noise variance depends only on the channel estimate, so
  // hoist it (and the dB conversion the SNR probe records every symbol)
  // out of the symbol loop — same values in the same order as computing
  // them per symbol.
  obs::Histogram* const snr_probe =
      obs::probe_histogram(obs::Probe::kOfdmPostEqSnr);
  for (std::size_t t = 0; t < kDataTones; ++t) {
    const std::size_t bin = ofdm_tone_bin(tones[t]);
    const double mag2 = std::max(std::norm(h[bin]), 1e-12);
    nv[t] = bin_noise / mag2;
    if (snr_probe != nullptr) snr_db[t] = lin_to_db(1.0 / nv[t]);
  }

  const auto& polarity = ofdm_pilot_polarity();
  for (std::size_t s = 0; s < n_sym; ++s) {
    ofdm_extract_symbol_to(samples, kLtfSymbols + s, freq);
    // Pilot-based common phase error tracking: residual CFO or phase
    // noise rotates every tone of a symbol equally; the four pilots
    // measure the rotation and the equalizer removes it.
    Cplx cpe{0.0, 0.0};
    const double p = polarity[s % polarity.size()];
    for (std::size_t t = 0; t < kPilotTones.size(); ++t) {
      const std::size_t bin = ofdm_tone_bin(kPilotTones[t]);
      const Cplx expected = h[bin] * (p * kPilotValues[t]);
      cpe += freq[bin] * std::conj(expected);
    }
    const double cpe_mag = std::abs(cpe);
    const Cplx derotate = cpe_mag > 1e-12 ? std::conj(cpe) / cpe_mag
                                          : Cplx{1.0, 0.0};
    for (std::size_t t = 0; t < kDataTones; ++t) {
      const std::size_t bin = ofdm_tone_bin(tones[t]);
      eq[t] = freq[bin] / h[bin] * derotate;
    }
    // Link-quality probes (no-ops unless enable_phy_probes armed them).
    if (obs::Histogram* p = obs::probe_histogram(obs::Probe::kOfdmEvm)) {
      double err2 = 0.0;
      for (std::size_t t = 0; t < kDataTones; ++t) {
        err2 += std::norm(eq[t] - slice_symbol(eq[t], info_->mod));
      }
      p->record(std::sqrt(err2 / static_cast<double>(kDataTones)));
    }
    demodulate_llr_to(eq, info_->mod, nv, llrs);
    if (obs::Histogram* p = obs::probe_histogram(obs::Probe::kOfdmLlrAbs)) {
      for (const double l : llrs) p->record(std::abs(l));
    }
    interleaver_->deinterleave_to(
        llrs, all_llrs.subspan(s * info_->n_cbps, info_->n_cbps));
  }
  // The post-eq SNR per tone is symbol-invariant (it depends only on the
  // channel estimate), so record each tone once with the symbol count
  // instead of kDataTones records per symbol: identical bins and count,
  // one bulk update per tone.
  if (snr_probe != nullptr) {
    for (std::size_t t = 0; t < kDataTones; ++t) {
      snr_probe->record_n(snr_db[t], n_sym);
    }
  }
}

void OfdmPhy::receive_into(std::span<const Cplx> samples,
                           std::size_t psdu_bytes, double noise_variance,
                           Bytes& psdu, Workspace& ws) const {
  const obs::perf::ScopedSpan span("ofdm.rx");
  const std::size_t n_sym = n_symbols_for_psdu(psdu_bytes);
  auto all_llrs_lease = ws.rvec(n_sym * info_->n_cbps);
  RVec& all_llrs = *all_llrs_lease;
  receive_front_into(samples, n_sym, noise_variance, all_llrs, ws);

  const std::size_t n_info = n_sym * info_->n_dbps;
  auto unpunctured_lease = ws.rvec(0);
  RVec& unpunctured = *unpunctured_lease;
  depuncture_into(all_llrs, info_->rate, n_info, unpunctured);
  // The encoder is in state 0 immediately after the tail bits, so decode
  // exactly the service + PSDU + tail prefix with a terminated trellis and
  // ignore the (scrambled, random) pad bits.
  const std::size_t decoded_bits = kServiceBits + 8 * psdu_bytes + kTailBits;
  unpunctured.resize(2 * decoded_bits);
  auto decoded_lease = ws.bits(0);
  Bits& decoded = *decoded_lease;
  viterbi_decode_into(unpunctured, /*terminated=*/true, decoded, ws);
  // Descramble in place.
  scramble_to(decoded, kScramblerSeed, decoded);

  psdu.assign(psdu_bytes, 0);
  for (std::size_t i = 0; i < 8 * psdu_bytes; ++i) {
    if (decoded[kServiceBits + i] & 1u) {
      psdu[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
    }
  }
}

Bytes OfdmPhy::receive(std::span<const Cplx> samples, std::size_t psdu_bytes,
                       double noise_variance) const {
  Bytes psdu;
  receive_into(samples, psdu_bytes, noise_variance, psdu, tls_workspace());
  return psdu;
}

void OfdmPhy::receive_batch_into(std::span<const RxLane> lanes,
                                 std::size_t psdu_bytes,
                                 std::span<Bytes> psdus, bool quantized,
                                 Workspace& ws) const {
  const std::size_t L = lanes.size();
  check(L > 0 && L <= 16 && psdus.size() == L,
        "OFDM batch receive requires 1..16 lanes with one PSDU per lane");
  const obs::perf::ScopedSpan span("ofdm.rx_batch");
  const std::size_t n_sym = n_symbols_for_psdu(psdu_bytes);
  const std::size_t lane_llr_count = n_sym * info_->n_cbps;

  // Per-lane front ends into one lane-contiguous block.
  auto fronts_lease = ws.rvec(L * lane_llr_count);
  RVec& fronts = *fronts_lease;
  std::array<std::span<const double>, 16> lane_llrs;
  for (std::size_t l = 0; l < L; ++l) {
    const std::span<double> mine(fronts.data() + l * lane_llr_count,
                                 lane_llr_count);
    receive_front_into(lanes[l].samples, n_sym, lanes[l].noise_variance,
                       mine, ws);
    lane_llrs[l] = mine;
  }

  // Depuncture the full data field lane-major, then decode only the
  // service + PSDU + tail prefix — exactly the truncation receive_into
  // performs on its contiguous buffer, expressed as a row-prefix of the
  // SoA block.
  const std::size_t n_info = n_sym * info_->n_dbps;
  auto soa_lease = ws.rvec(0);
  RVec& soa = *soa_lease;
  depuncture_batch_into(
      std::span<const std::span<const double>>(lane_llrs.data(), L),
      info_->rate, n_info, soa);
  const std::size_t decoded_bits = kServiceBits + 8 * psdu_bytes + kTailBits;
  const std::span<const double> trellis_llrs(soa.data(),
                                             2 * decoded_bits * L);

  auto decoded_lease = ws.bits(0);
  Bits& decoded_soa = *decoded_lease;
  if (quantized) {
    // Calibrate the quantizer to the batch's own LLR peak with headroom
    // below the ±127 rail; batches are group-aligned in the trial queue,
    // so the scale (hence the decode) is independent of --jobs.
    double maxabs = 0.0;
    for (const double v : trellis_llrs) maxabs = std::max(maxabs, std::abs(v));
    const double scale = maxabs > 0.0 ? kQuantHeadroom / maxabs : 1.0;
    viterbi_decode_batch_i16_into(trellis_llrs, L, /*terminated=*/true, scale,
                                  decoded_soa, ws);
  } else {
    viterbi_decode_batch_into(trellis_llrs, L, /*terminated=*/true,
                              decoded_soa, ws);
  }

  auto lanebits_lease = ws.bits(decoded_bits);
  Bits& lanebits = *lanebits_lease;
  for (std::size_t l = 0; l < L; ++l) {
    dsp::batch::gather_lane(decoded_soa.data(), l, L,
                            std::span<std::uint8_t>(lanebits));
    scramble_to(lanebits, kScramblerSeed, lanebits);
    Bytes& psdu = psdus[l];
    psdu.assign(psdu_bytes, 0);
    for (std::size_t i = 0; i < 8 * psdu_bytes; ++i) {
      if (lanebits[kServiceBits + i] & 1u) {
        psdu[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
      }
    }
  }
}

}  // namespace wlan::phy

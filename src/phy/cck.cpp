#include "phy/cck.h"

#include <array>
#include <cmath>
#include <numbers>
#include <vector>

#include "common/check.h"

namespace wlan::phy {
namespace {

constexpr double kPi = std::numbers::pi;
constexpr std::size_t kChips = 8;

Cplx expj(double phase) { return {std::cos(phase), std::sin(phase)}; }

// Gray DQPSK for the differential (d0, d1) -> delta phi1.
double dqpsk_phase(std::uint8_t b0, std::uint8_t b1) {
  const int pattern = (b0 << 1) | b1;
  switch (pattern) {
    case 0b00: return 0.0;
    case 0b01: return kPi / 2.0;
    case 0b11: return kPi;
    default: return 3.0 * kPi / 2.0;
  }
}

void dqpsk_bits(double phase, std::uint8_t* b0, std::uint8_t* b1) {
  double p = std::fmod(phase, 2.0 * kPi);
  if (p < 0.0) p += 2.0 * kPi;
  const int quadrant = static_cast<int>(std::floor(p / (kPi / 2.0) + 0.5)) % 4;
  switch (quadrant) {
    case 0: *b0 = 0; *b1 = 0; break;
    case 1: *b0 = 0; *b1 = 1; break;
    case 2: *b0 = 1; *b1 = 1; break;
    default: *b0 = 1; *b1 = 0; break;
  }
}

// 802.11b QPSK encoding for (phi2..phi4) dibits: 00->0, 01->pi/2,
// 10->pi, 11->3pi/2.
double qpsk_phase(std::uint8_t b0, std::uint8_t b1) {
  return kPi / 2.0 * static_cast<double>((b0 << 1) | b1);
}

}  // namespace

std::size_t cck_bits_per_symbol(CckRate rate) {
  return rate == CckRate::k11Mbps ? 8 : 4;
}

void CckModem::base_codeword(double phi2, double phi3, double phi4, Cplx out[8]) {
  out[0] = expj(phi2 + phi3 + phi4);
  out[1] = expj(phi3 + phi4);
  out[2] = expj(phi2 + phi4);
  out[3] = -expj(phi4);
  out[4] = expj(phi2 + phi3);
  out[5] = expj(phi3);
  out[6] = -expj(phi2);
  out[7] = Cplx{1.0, 0.0};
}

CckModem::CckModem(CckRate rate) : rate_(rate) {
  // Enumerate the codeword set once; modulate/demodulate only read it.
  if (rate_ == CckRate::k11Mbps) {
    candidates_.resize(64);
    std::size_t idx = 0;
    for (int p2 = 0; p2 < 4; ++p2) {
      for (int p3 = 0; p3 < 4; ++p3) {
        for (int p4 = 0; p4 < 4; ++p4) {
          Candidate& c = candidates_[idx++];
          base_codeword(kPi / 2.0 * p2, kPi / 2.0 * p3, kPi / 2.0 * p4,
                        c.chips.data());
          c.bits = {static_cast<std::uint8_t>((p2 >> 1) & 1),
                    static_cast<std::uint8_t>(p2 & 1),
                    static_cast<std::uint8_t>((p3 >> 1) & 1),
                    static_cast<std::uint8_t>(p3 & 1),
                    static_cast<std::uint8_t>((p4 >> 1) & 1),
                    static_cast<std::uint8_t>(p4 & 1)};
        }
      }
    }
  } else {
    candidates_.resize(4);
    std::size_t idx = 0;
    for (int d2 = 0; d2 < 2; ++d2) {
      for (int d3 = 0; d3 < 2; ++d3) {
        Candidate& c = candidates_[idx++];
        base_codeword(d2 * kPi + kPi / 2.0, 0.0, d3 * kPi, c.chips.data());
        c.bits = {static_cast<std::uint8_t>(d2), static_cast<std::uint8_t>(d3),
                  0, 0, 0, 0};
      }
    }
  }
}

CVec CckModem::modulate(std::span<const std::uint8_t> bits) const {
  CVec out;
  modulate_into(bits, out);
  return out;
}

void CckModem::modulate_into(std::span<const std::uint8_t> bits,
                             CVec& out) const {
  const std::size_t bps = cck_bits_per_symbol(rate_);
  check(bits.size() % bps == 0, "CCK modulate: bit count not a symbol multiple");
  const std::size_t n_symbols = bits.size() / bps;

  out.resize((n_symbols + 1) * kChips);
  double phi1 = 0.0;
  std::size_t pos = 0;

  // Reference symbol: candidate-set entry 0 with phi1 = 0.
  for (const Cplx& c : candidates_[0].chips) out[pos++] = c;

  for (std::size_t s = 0; s < n_symbols; ++s) {
    const auto sym = bits.subspan(s * bps, bps);
    phi1 += dqpsk_phase(sym[0], sym[1]);
    Cplx base[kChips];
    if (rate_ == CckRate::k11Mbps) {
      base_codeword(qpsk_phase(sym[2], sym[3]), qpsk_phase(sym[4], sym[5]),
                    qpsk_phase(sym[6], sym[7]), base);
    } else {
      base_codeword(sym[2] * kPi + kPi / 2.0, 0.0, sym[3] * kPi, base);
    }
    const Cplx rot = expj(phi1);
    for (const Cplx& c : base) out[pos++] = rot * c;
  }
}

Bits CckModem::demodulate(std::span<const Cplx> chips) const {
  Bits bits;
  demodulate_into(chips, bits);
  return bits;
}

void CckModem::demodulate_into(std::span<const Cplx> chips, Bits& out) const {
  check(chips.size() % kChips == 0 && chips.size() >= 2 * kChips,
        "CCK demodulate: waveform layout mismatch");
  const std::size_t n_symbols = chips.size() / kChips - 1;
  const std::size_t bps = cck_bits_per_symbol(rate_);

  auto correlate = [&](std::size_t symbol, const Candidate& cand) {
    Cplx acc{0.0, 0.0};
    for (std::size_t i = 0; i < kChips; ++i) {
      acc += chips[symbol * kChips + i] * std::conj(cand.chips[i]);
    }
    return acc;
  };

  out.resize(n_symbols * bps);
  // The reference symbol is known to be candidate 0 at phi1 = 0.
  Cplx prev = correlate(0, candidates_[0]);
  for (std::size_t s = 0; s < n_symbols; ++s) {
    double best_mag = -1.0;
    Cplx best_corr{0.0, 0.0};
    const Candidate* best = nullptr;
    for (const Candidate& cand : candidates_) {
      const Cplx z = correlate(s + 1, cand);
      const double mag = std::norm(z);
      if (mag > best_mag) {
        best_mag = mag;
        best_corr = z;
        best = &cand;
      }
    }
    std::uint8_t* bp = &out[s * bps];
    dqpsk_bits(std::arg(best_corr * std::conj(prev)), &bp[0], &bp[1]);
    for (std::size_t b = 2; b < bps; ++b) bp[b] = best->bits[b - 2];
    prev = best_corr;
  }
}

}  // namespace wlan::phy

// 802.11a/g OFDM PHY: 64-point FFT, 48 data + 4 pilot subcarriers,
// 800 ns guard interval, eight MCS from 6 to 54 Mbps in a 20 MHz channel.
//
// The waveform is simulated at baseband (20 Msample/s). Timing and carrier
// synchronization are assumed ideal (the preamble STF exists to acquire
// them in hardware; with block-fading channels and no CFO they carry no
// information for a link simulation). The long training field IS simulated
// and used for least-squares channel estimation, so equalization quality
// is realistic.
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <span>

#include "common/types.h"
#include "phy/convolutional.h"
#include "phy/modulation.h"

namespace wlan::phy {

class Interleaver;
class Workspace;

/// The eight 802.11a rates.
enum class OfdmMcs {
  k6Mbps,   ///< BPSK 1/2
  k9Mbps,   ///< BPSK 3/4
  k12Mbps,  ///< QPSK 1/2
  k18Mbps,  ///< QPSK 3/4
  k24Mbps,  ///< 16-QAM 1/2
  k36Mbps,  ///< 16-QAM 3/4
  k48Mbps,  ///< 64-QAM 2/3
  k54Mbps,  ///< 64-QAM 3/4
};

inline constexpr std::array<OfdmMcs, 8> kAllOfdmMcs = {
    OfdmMcs::k6Mbps,  OfdmMcs::k9Mbps,  OfdmMcs::k12Mbps, OfdmMcs::k18Mbps,
    OfdmMcs::k24Mbps, OfdmMcs::k36Mbps, OfdmMcs::k48Mbps, OfdmMcs::k54Mbps};

struct OfdmMcsInfo {
  Modulation mod;
  CodeRate rate;
  std::size_t n_bpsc;   ///< coded bits per subcarrier
  std::size_t n_cbps;   ///< coded bits per OFDM symbol (48 * n_bpsc)
  std::size_t n_dbps;   ///< data bits per OFDM symbol
  double data_rate_mbps;
};

const OfdmMcsInfo& ofdm_mcs_info(OfdmMcs mcs);

/// One-link OFDM modem (TX + RX) for a fixed MCS.
class OfdmPhy {
 public:
  static constexpr std::size_t kNfft = 64;
  static constexpr std::size_t kCpLen = 16;
  static constexpr std::size_t kSymbolLen = kNfft + kCpLen;
  static constexpr std::size_t kDataTones = 48;
  static constexpr std::size_t kLtfSymbols = 2;
  static constexpr double kSampleRateHz = 20e6;
  static constexpr double kSymbolDurationS = 4e-6;
  static constexpr double kChannelWidthHz = 20e6;

  explicit OfdmPhy(OfdmMcs mcs);
  ~OfdmPhy();
  OfdmPhy(const OfdmPhy&);
  OfdmPhy& operator=(const OfdmPhy&) = delete;

  OfdmMcs mcs() const { return mcs_; }
  const OfdmMcsInfo& info() const { return *info_; }

  /// OFDM data symbols needed for a PSDU (16 service + 6 tail + padding).
  std::size_t n_symbols_for_psdu(std::size_t psdu_bytes) const;

  /// Full PPDU airtime (802.11a: 16 us preamble + 4 us SIGNAL + data).
  double ppdu_duration_s(std::size_t psdu_bytes) const;

  /// Builds the baseband waveform: 2 LTF symbols + data field.
  CVec transmit(std::span<const std::uint8_t> psdu) const;

  /// As transmit, resizing `out` and leasing all scratch from `ws` —
  /// allocation-free once warm.
  void transmit_into(std::span<const std::uint8_t> psdu, CVec& out,
                     Workspace& ws) const;

  /// Demodulates and decodes a received waveform.
  /// `noise_variance` is the complex AWGN variance per time-domain sample
  /// the receiver assumes for LLR scaling (pass what the channel added).
  /// The PSDU length must be known (the SIGNAL field is not simulated).
  Bytes receive(std::span<const Cplx> samples, std::size_t psdu_bytes,
                double noise_variance) const;

  /// As receive, resizing `psdu` and leasing all scratch from `ws` —
  /// allocation-free once warm.
  void receive_into(std::span<const Cplx> samples, std::size_t psdu_bytes,
                    double noise_variance, Bytes& psdu, Workspace& ws) const;

  /// One lane of a batched receive: that trial's waveform plus the noise
  /// variance its LLRs assume.
  struct RxLane {
    std::span<const Cplx> samples;
    double noise_variance = 0.0;
  };

  /// Trial-batched receive (dsp/batch.h): runs each lane's front end
  /// (FFT, equalize, demap, deinterleave) sequentially, then depunctures
  /// into a lane-major LLR block and decodes every lane in one batched
  /// Viterbi sweep. psdus[l] receives lane l's PSDU; at most 16 lanes.
  /// With `quantized` false this is bitwise identical to receive_into on
  /// each lane; with it true the int16 decoder runs with a scale
  /// calibrated from the batch's own LLR peak (deterministic per batch,
  /// gated on PER deltas rather than equality).
  void receive_batch_into(std::span<const RxLane> lanes,
                          std::size_t psdu_bytes, std::span<Bytes> psdus,
                          bool quantized, Workspace& ws) const;

  /// Number of baseband samples in a transmit() waveform.
  std::size_t waveform_length(std::size_t psdu_bytes) const;

 private:
  /// Front end shared by receive_into and receive_batch_into: channel
  /// estimate, per-symbol FFT + CPE + equalize + demap + deinterleave.
  /// all_llrs receives n_sym * n_cbps coded-bit LLRs.
  void receive_front_into(std::span<const Cplx> samples, std::size_t n_sym,
                          double noise_variance, std::span<double> all_llrs,
                          Workspace& ws) const;

  OfdmMcs mcs_;
  const OfdmMcsInfo* info_;
  // Owned via pointer so the public header stays free of interleaver.h;
  // built once per modem instead of once per transmit/receive call.
  std::unique_ptr<Interleaver> interleaver_;
};

// ---------------------------------------------------------------------------
// Symbol-level helpers shared with the PLCP/sync layers.
// ---------------------------------------------------------------------------

/// Data-subcarrier indices in transmission order (ascending, skipping DC
/// and the four pilots).
const std::array<int, OfdmPhy::kDataTones>& ofdm_data_tones();

/// Maps a subcarrier index (-26..26) to its FFT bin.
std::size_t ofdm_tone_bin(int tone);

/// Builds one 80-sample OFDM symbol (CP + IFFT) from 48 modulated
/// data-tone values; pilots carry {+1,+1,+1,-1} x `pilot_polarity`.
CVec ofdm_build_symbol(std::span<const Cplx> data_tones, double pilot_polarity);

/// As ofdm_build_symbol, writing the 80 samples into `out` with no
/// scratch: the IFFT runs in place on the tail 64 samples of `out` and
/// the cyclic prefix is copied from them.
void ofdm_build_symbol_to(std::span<const Cplx> data_tones,
                          double pilot_polarity, std::span<Cplx> out);

/// The 127-periodic pilot polarity sequence p_n.
const std::vector<double>& ofdm_pilot_polarity();

/// Two LTF training symbols (160 samples). Built once per process and
/// cached; callers copy from the reference.
const CVec& ofdm_ltf_waveform();

/// FFT of OFDM symbol `index` of a waveform (CP stripped, 64 bins).
CVec ofdm_extract_symbol(std::span<const Cplx> samples, std::size_t index);

/// As ofdm_extract_symbol, writing the 64 bins into caller-provided
/// `out` (the FFT runs in place on it).
void ofdm_extract_symbol_to(std::span<const Cplx> samples, std::size_t index,
                            std::span<Cplx> out);

/// Least-squares per-bin channel estimate from the two leading LTF
/// symbols of a waveform.
CVec ofdm_estimate_channel(std::span<const Cplx> samples);

/// As ofdm_estimate_channel, writing the 64-bin estimate into `out`,
/// leasing LTF scratch from `ws`.
void ofdm_estimate_channel_to(std::span<const Cplx> samples,
                              std::span<Cplx> out, Workspace& ws);

}  // namespace wlan::phy

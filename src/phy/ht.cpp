#include "phy/ht.h"

#include <algorithm>
#include <cmath>

#include "channel/mimo.h"
#include "common/check.h"
#include "common/units.h"
#include "dsp/batch.h"
#include "linalg/decompose.h"
#include "obs/perf.h"
#include "obs/probe.h"
#include "phy/interleaver.h"
#include "phy/ldpc.h"
#include "phy/scrambler.h"
#include "phy/workspace.h"

namespace wlan::phy {
namespace {

constexpr std::uint8_t kScramblerSeed = 0x5D;
constexpr std::size_t kServiceBits = 16;
constexpr std::size_t kTailBits = 6;
constexpr std::size_t kLdpcBlock = 648;

// Quantizer target for a batch's peak |LLR| (matches the OFDM path):
// well under the ±127 rail so saturating sums stay mostly linear.
constexpr double kQuantHeadroom = 96.0;

struct BaseMcs {
  Modulation mod;
  CodeRate rate;
  std::size_t n_bpsc;
};

const std::array<BaseMcs, 8> kBaseMcs = {{
    {Modulation::kBpsk, CodeRate::kR12, 1},
    {Modulation::kQpsk, CodeRate::kR12, 2},
    {Modulation::kQpsk, CodeRate::kR34, 2},
    {Modulation::kQam16, CodeRate::kR12, 4},
    {Modulation::kQam16, CodeRate::kR34, 4},
    {Modulation::kQam64, CodeRate::kR23, 6},
    {Modulation::kQam64, CodeRate::kR34, 6},
    {Modulation::kQam64, CodeRate::kR56, 6},
}};

std::size_t ldpc_info_bits(CodeRate rate) {
  switch (rate) {
    case CodeRate::kR12: return kLdpcBlock / 2;
    case CodeRate::kR23: return kLdpcBlock * 2 / 3;
    case CodeRate::kR34: return kLdpcBlock * 3 / 4;
    case CodeRate::kR56: return kLdpcBlock * 5 / 6;
  }
  return kLdpcBlock / 2;
}

const LdpcCode& ldpc_code_for(CodeRate rate) {
  // One deterministic code per rate, built on first use.
  static const LdpcCode r12(kLdpcBlock, ldpc_info_bits(CodeRate::kR12), 12);
  static const LdpcCode r23(kLdpcBlock, ldpc_info_bits(CodeRate::kR23), 23);
  static const LdpcCode r34(kLdpcBlock, ldpc_info_bits(CodeRate::kR34), 34);
  static const LdpcCode r56(kLdpcBlock, ldpc_info_bits(CodeRate::kR56), 56);
  switch (rate) {
    case CodeRate::kR12: return r12;
    case CodeRate::kR23: return r23;
    case CodeRate::kR34: return r34;
    case CodeRate::kR56: return r56;
  }
  return r12;
}

std::size_t interleaver_columns(HtBandwidth bw) {
  return bw == HtBandwidth::k20MHz ? 13 : 18;
}

// Data tone indices for a bandwidth (ascending, skipping DC/pilots).
std::vector<int> data_tone_list(HtBandwidth bw) {
  std::vector<int> tones;
  if (bw == HtBandwidth::k20MHz) {
    for (int k = -28; k <= 28; ++k) {
      if (k == 0 || k == -21 || k == -7 || k == 7 || k == 21) continue;
      tones.push_back(k);
    }
  } else {
    for (int k = -58; k <= 58; ++k) {
      if (k >= -1 && k <= 1) continue;
      if (k == -53 || k == -25 || k == -11 || k == 11 || k == 25 || k == 53) {
        continue;
      }
      tones.push_back(k);
    }
  }
  return tones;
}

std::size_t tone_to_bin(int tone, std::size_t n_fft) {
  return static_cast<std::size_t>((tone + static_cast<int>(n_fft)) %
                                  static_cast<int>(n_fft));
}

// One stage of ordered successive interference cancellation.
struct SicStage {
  std::size_t stream;  // original stream index detected at this stage
  CVec g;              // detection row (length n_rx)
  double mu;           // estimate bias
  double noise_var;    // effective 1/SINR for the unit-energy stream
  CVec a_col;          // effective channel column, subtracted after slicing
};

// Detection data for one subcarrier.
struct ToneDetector {
  // Scalar path (beamforming/STBC/MRC/SISO): per-stream gains.
  RVec gains;
  // Matrix path (direct map): effective channel and detector.
  linalg::CMatrix a;   // H / sqrt(Nss)
  linalg::CMatrix g;   // detection matrix (Nss x Nrx)
  RVec mu;             // bias of each stream estimate
  RVec noise_var;      // effective noise variance per unit-energy stream
  std::vector<SicStage> stages;  // non-empty for kMmseSic
  bool scalar = false;
};

}  // namespace

HtMcsInfo ht_mcs_info(unsigned index) {
  check(index < 32, "HT MCS index must be 0..31");
  const BaseMcs& base = kBaseMcs[index % 8];
  return HtMcsInfo{index, index / 8 + 1, base.mod, base.rate, base.n_bpsc};
}

std::size_t ht_data_tones(HtBandwidth bw) {
  return bw == HtBandwidth::k20MHz ? 52 : 108;
}

std::vector<int> ht_data_tone_list(HtBandwidth bw) { return data_tone_list(bw); }

std::size_t ht_fft_size(HtBandwidth bw) {
  return bw == HtBandwidth::k20MHz ? 64 : 128;
}

double ht_sample_rate_hz(HtBandwidth bw) {
  return bw == HtBandwidth::k20MHz ? 20e6 : 40e6;
}

double ht_channel_width_hz(HtBandwidth bw) {
  return bw == HtBandwidth::k20MHz ? 20e6 : 40e6;
}

double ht_symbol_duration_s(HtGuardInterval gi) {
  return gi == HtGuardInterval::kLong ? 4e-6 : 3.6e-6;
}

double ht_data_rate_mbps(unsigned mcs, HtBandwidth bw, HtGuardInterval gi) {
  const HtMcsInfo info = ht_mcs_info(mcs);
  const double n_dbps = static_cast<double>(ht_data_tones(bw) * info.n_bpsc *
                                            info.n_ss) *
                        code_rate_value(info.rate);
  return n_dbps / (ht_symbol_duration_s(gi) * 1e6);
}

HtPhy::HtPhy(const HtConfig& config)
    : config_(config), mcs_(ht_mcs_info(config.mcs)) {
  switch (config_.scheme) {
    case SpatialScheme::kDirectMap:
      n_tx_ = config_.n_tx ? config_.n_tx : mcs_.n_ss;
      n_rx_ = config_.n_rx ? config_.n_rx : mcs_.n_ss;
      check(n_tx_ == mcs_.n_ss, "direct map requires n_tx == n_ss");
      check(n_rx_ >= mcs_.n_ss, "direct map requires n_rx >= n_ss");
      break;
    case SpatialScheme::kBeamforming:
      n_tx_ = config_.n_tx ? config_.n_tx : std::max<std::size_t>(mcs_.n_ss, 2);
      n_rx_ = config_.n_rx ? config_.n_rx : mcs_.n_ss;
      check(n_tx_ >= mcs_.n_ss && n_rx_ >= mcs_.n_ss,
            "beamforming requires n_tx, n_rx >= n_ss");
      break;
    case SpatialScheme::kStbc:
      check(mcs_.n_ss == 1, "STBC mode requires a single-stream MCS (0..7)");
      n_tx_ = 2;
      n_rx_ = config_.n_rx ? config_.n_rx : 1;
      break;
    case SpatialScheme::kMrc:
      check(mcs_.n_ss == 1, "MRC mode requires a single-stream MCS (0..7)");
      n_tx_ = 1;
      n_rx_ = config_.n_rx ? config_.n_rx : 2;
      break;
    case SpatialScheme::kAntennaSelection:
      check(mcs_.n_ss == 1,
            "antenna selection requires a single-stream MCS (0..7)");
      n_tx_ = 1;
      n_rx_ = config_.n_rx ? config_.n_rx : 2;
      break;
  }
}

double HtPhy::data_rate_mbps() const {
  return ht_data_rate_mbps(config_.mcs, config_.bandwidth, config_.guard);
}

double HtPhy::spectral_efficiency_bps_hz() const {
  return data_rate_mbps() * 1e6 / ht_channel_width_hz(config_.bandwidth);
}

std::size_t HtPhy::n_symbols_for_psdu(std::size_t psdu_bytes) const {
  const std::size_t n_dbps = static_cast<std::size_t>(
      static_cast<double>(ht_data_tones(config_.bandwidth) * mcs_.n_bpsc *
                          mcs_.n_ss) *
      code_rate_value(mcs_.rate));
  if (config_.coding == HtCoding::kBcc) {
    const std::size_t payload = kServiceBits + 8 * psdu_bytes + kTailBits;
    return (payload + n_dbps - 1) / n_dbps;
  }
  // LDPC: whole codewords, then whole symbols.
  const LdpcCode& code = ldpc_code_for(mcs_.rate);
  const std::size_t payload = kServiceBits + 8 * psdu_bytes;
  const std::size_t n_cw = (payload + code.info_length() - 1) / code.info_length();
  const std::size_t n_cbps =
      ht_data_tones(config_.bandwidth) * mcs_.n_bpsc * mcs_.n_ss;
  return (n_cw * kLdpcBlock + n_cbps - 1) / n_cbps;
}

double HtPhy::ppdu_duration_s(std::size_t psdu_bytes) const {
  // Mixed format: L-STF(8) + L-LTF(8) + L-SIG(4) + HT-SIG(8) + HT-STF(4)
  // + 4 us per HT-LTF + data.
  static constexpr std::array<std::size_t, 5> kNumLtf = {0, 1, 2, 4, 4};
  const double preamble =
      32e-6 + 4e-6 * static_cast<double>(kNumLtf[mcs_.n_ss]);
  return preamble + static_cast<double>(n_symbols_for_psdu(psdu_bytes)) *
                        ht_symbol_duration_s(config_.guard);
}

std::vector<linalg::CMatrix> HtPhy::draw_channel(
    Rng& rng, channel::DelayProfile profile) const {
  return channel::mimo_ofdm_channel(rng, n_rx_, n_tx_, profile,
                                    ht_sample_rate_hz(config_.bandwidth),
                                    ht_fft_size(config_.bandwidth));
}

Bytes HtPhy::simulate_link(std::span<const std::uint8_t> psdu,
                           const std::vector<linalg::CMatrix>& tones,
                           double snr_db, Rng& rng) const {
  Bytes out;
  simulate_link_into(psdu, tones, snr_db, rng, out, tls_workspace());
  return out;
}

void HtPhy::simulate_front_into(std::span<const std::uint8_t> psdu,
                                const std::vector<linalg::CMatrix>& tones,
                                double snr_db, Rng& rng,
                                std::span<double> coded_llrs_out,
                                Workspace& ws) const {
  const std::size_t n_fft = ht_fft_size(config_.bandwidth);
  check(tones.size() == n_fft, "per-tone channel count must match FFT size");
  check(tones[0].rows() == n_rx_ && tones[0].cols() == n_tx_,
        "channel matrix dimensions must match the configured antennas");

  const std::size_t n_ss = mcs_.n_ss;
  const std::size_t n_dt = ht_data_tones(config_.bandwidth);
  const std::size_t n_cbpss = n_dt * mcs_.n_bpsc;        // per stream/symbol
  const std::size_t n_cbps = n_cbpss * n_ss;             // per symbol
  const std::size_t n_sym = n_symbols_for_psdu(psdu.size());
  const double sigma2 = std::pow(10.0, -snr_db / 10.0);

  // ---------- Encode ----------
  auto coded_lease = ws.bits(0);
  Bits& coded = *coded_lease;  // length n_sym * n_cbps after padding
  auto data_lease = ws.bits(0);
  Bits& data = *data_lease;
  if (config_.coding == HtCoding::kBcc) {
    const std::size_t n_dbps = static_cast<std::size_t>(
        static_cast<double>(n_cbps) * code_rate_value(mcs_.rate));
    data.assign(n_sym * n_dbps, 0);
    std::size_t pos = kServiceBits;
    for (const std::uint8_t byte : psdu) {
      for (int i = 0; i < 8; ++i) {
        data[pos++] = static_cast<std::uint8_t>((byte >> i) & 1u);
      }
    }
    scramble_to(data, kScramblerSeed, data);
    // Only the tail is zeroed post-scrambling; pads stay scrambled so the
    // waveform statistics are realistic. The trellis passes through state 0
    // right after the tail, which the decoder exploits.
    const std::size_t tail_pos = kServiceBits + 8 * psdu.size();
    for (std::size_t i = 0; i < kTailBits; ++i) data[tail_pos + i] = 0;
    auto encoded_lease = ws.bits(0);
    convolutional_encode_into(data, *encoded_lease);
    puncture_into(*encoded_lease, mcs_.rate, coded);
  } else {
    const LdpcCode& code = ldpc_code_for(mcs_.rate);
    const std::size_t payload = kServiceBits + 8 * psdu.size();
    const std::size_t n_cw = (payload + code.info_length() - 1) / code.info_length();
    data.assign(n_cw * code.info_length(), 0);
    std::size_t pos = kServiceBits;
    for (const std::uint8_t byte : psdu) {
      for (int i = 0; i < 8; ++i) {
        data[pos++] = static_cast<std::uint8_t>((byte >> i) & 1u);
      }
    }
    scramble_to(data, kScramblerSeed, data);
    auto codeword_lease = ws.bits(0);
    coded.resize(n_cw * kLdpcBlock);
    for (std::size_t cw = 0; cw < n_cw; ++cw) {
      code.encode_into(
          std::span<const std::uint8_t>(data).subspan(cw * code.info_length(),
                                                      code.info_length()),
          *codeword_lease);
      std::copy(codeword_lease->begin(), codeword_lease->end(),
                coded.begin() + static_cast<std::ptrdiff_t>(cw * kLdpcBlock));
    }
  }
  coded.resize(n_sym * n_cbps, 0);  // known zero padding to fill symbols

  // ---------- Stream parse + interleave + map ----------
  // Streams live as subspans of one leased buffer: stream ss occupies
  // [ss * n_sym * n_cbpss, (ss + 1) * n_sym * n_cbpss).
  const std::size_t s_block = std::max<std::size_t>(mcs_.n_bpsc / 2, 1);
  auto stream_bits_lease = ws.bits(n_ss * n_sym * n_cbpss);
  const auto stream_bits = [&](std::size_t ss) {
    return std::span(*stream_bits_lease).subspan(ss * n_sym * n_cbpss,
                                                 n_sym * n_cbpss);
  };
  {
    std::array<std::size_t, 4> cursor{};
    for (std::size_t i = 0; i < coded.size(); i += s_block * n_ss) {
      for (std::size_t ss = 0; ss < n_ss; ++ss) {
        for (std::size_t b = 0; b < s_block; ++b) {
          stream_bits(ss)[cursor[ss]++] = coded[i + ss * s_block + b];
        }
      }
    }
  }

  const bool use_interleaver = config_.coding == HtCoding::kBcc;
  const Interleaver interleaver(n_cbpss, mcs_.n_bpsc,
                                interleaver_columns(config_.bandwidth));

  // Per stream, per symbol constellation points (n_dt per symbol), again
  // packed per stream into one leased buffer.
  auto stream_syms_lease = ws.cvec(n_ss * n_sym * n_dt);
  const auto stream_syms = [&](std::size_t ss) {
    return std::span(*stream_syms_lease).subspan(ss * n_sym * n_dt,
                                                 n_sym * n_dt);
  };
  {
    auto inter_lease = ws.bits(n_cbpss);
    for (std::size_t ss = 0; ss < n_ss; ++ss) {
      for (std::size_t s = 0; s < n_sym; ++s) {
        const auto block = stream_bits(ss).subspan(s * n_cbpss, n_cbpss);
        std::span<const std::uint8_t> mapped = block;
        if (use_interleaver) {
          interleaver.interleave_to(block, *inter_lease);
          mapped = *inter_lease;
        }
        modulate_to(mapped, mcs_.mod, stream_syms(ss).subspan(s * n_dt, n_dt));
      }
    }
  }

  // ---------- Per-tone detectors ----------
  const std::vector<int> dt = data_tone_list(config_.bandwidth);
  std::vector<ToneDetector> det(n_dt);
  const double inv_sqrt_nss = 1.0 / std::sqrt(static_cast<double>(n_ss));
  // Antenna selection picks one receive branch per packet on a wideband
  // power metric — the whole point is that only that chain powers up.
  std::size_t selected_rx = 0;
  if (config_.scheme == SpatialScheme::kAntennaSelection) {
    double best_power = -1.0;
    for (std::size_t r = 0; r < n_rx_; ++r) {
      double power = 0.0;
      for (std::size_t t = 0; t < n_dt; ++t) {
        power += std::norm(tones[tone_to_bin(dt[t], n_fft)](r, 0));
      }
      if (power > best_power) {
        best_power = power;
        selected_rx = r;
      }
    }
  }
  for (std::size_t t = 0; t < n_dt; ++t) {
    const linalg::CMatrix& h = tones[tone_to_bin(dt[t], n_fft)];
    ToneDetector& d = det[t];
    switch (config_.scheme) {
      case SpatialScheme::kAntennaSelection: {
        d.scalar = true;
        d.gains = {std::abs(h(selected_rx, 0))};
        break;
      }
      case SpatialScheme::kMrc: {
        double sum = 0.0;
        for (std::size_t r = 0; r < n_rx_; ++r) sum += std::norm(h(r, 0));
        d.scalar = true;
        d.gains = {std::sqrt(sum)};
        break;
      }
      case SpatialScheme::kStbc: {
        double sum = 0.0;
        for (std::size_t r = 0; r < n_rx_; ++r) {
          for (std::size_t c = 0; c < 2; ++c) sum += std::norm(h(r, c));
        }
        d.scalar = true;
        d.gains = {std::sqrt(sum / 2.0)};
        break;
      }
      case SpatialScheme::kBeamforming: {
        const linalg::Svd dec = linalg::svd(h);
        d.scalar = true;
        d.gains.resize(n_ss);
        for (std::size_t ss = 0; ss < n_ss; ++ss) {
          d.gains[ss] = dec.s[ss] * inv_sqrt_nss;
        }
        break;
      }
      case SpatialScheme::kDirectMap: {
        d.scalar = false;
        d.a = h;
        d.a *= Cplx{inv_sqrt_nss, 0.0};
        // Detectors are built from the receiver's channel knowledge: the
        // truth under ideal CSI, or an HT-LTF least-squares estimate
        // (orthogonal P sounding, error variance sigma^2 * Ntx / Nltf per
        // H entry) otherwise.
        linalg::CMatrix a_known = d.a;
        if (!config_.ideal_csi) {
          static constexpr std::array<std::size_t, 5> kNumLtf = {0, 1, 2, 4, 4};
          const double est_var = sigma2 * static_cast<double>(n_tx_) /
                                 static_cast<double>(kNumLtf[n_ss]);
          for (std::size_t r = 0; r < n_rx_; ++r) {
            for (std::size_t c = 0; c < n_ss; ++c) {
              a_known(r, c) += inv_sqrt_nss * rng.cgaussian(est_var);
            }
          }
        }
        if (config_.detector == MimoDetector::kMmseSic) {
          // Ordered SIC: at each stage MMSE-detect the strongest remaining
          // stream, then cancel it (slicing happens at run time).
          std::vector<std::size_t> remaining(n_ss);
          for (std::size_t s = 0; s < n_ss; ++s) remaining[s] = s;
          while (!remaining.empty()) {
            const std::size_t r = remaining.size();
            linalg::CMatrix a_sub(n_rx_, r);
            for (std::size_t c = 0; c < r; ++c) {
              for (std::size_t row = 0; row < n_rx_; ++row) {
                a_sub(row, c) = a_known(row, remaining[c]);
              }
            }
            const linalg::CMatrix ah = a_sub.hermitian();
            linalg::CMatrix gram = ah * a_sub;
            for (std::size_t i = 0; i < r; ++i) gram(i, i) += sigma2;
            const linalg::CMatrix g_sub = linalg::inverse(gram) * ah;
            const linalg::CMatrix b = g_sub * a_sub;
            std::size_t best = 0;
            double best_mu = -1.0;
            for (std::size_t i = 0; i < r; ++i) {
              if (b(i, i).real() > best_mu) {
                best_mu = b(i, i).real();
                best = i;
              }
            }
            SicStage stage;
            stage.stream = remaining[best];
            stage.g = g_sub.row(best);
            stage.mu = std::clamp(best_mu, 1e-9, 1.0 - 1e-9);
            stage.noise_var = (1.0 - stage.mu) / stage.mu;
            stage.a_col = a_known.column(stage.stream);
            d.stages.push_back(std::move(stage));
            remaining.erase(remaining.begin() +
                            static_cast<std::ptrdiff_t>(best));
          }
          break;
        }
        const linalg::CMatrix ah = a_known.hermitian();
        linalg::CMatrix gram = ah * a_known;
        const double diag = config_.detector == MimoDetector::kMmse
                                ? sigma2
                                : 1e-12;
        for (std::size_t i = 0; i < n_ss; ++i) gram(i, i) += diag;
        const linalg::CMatrix m = linalg::inverse(gram);
        d.g = m * ah;
        d.mu.resize(n_ss);
        d.noise_var.resize(n_ss);
        if (config_.detector == MimoDetector::kMmse) {
          const linalg::CMatrix b = d.g * a_known;
          for (std::size_t s = 0; s < n_ss; ++s) {
            const double mu = std::clamp(b(s, s).real(), 1e-9, 1.0 - 1e-9);
            d.mu[s] = mu;
            d.noise_var[s] = (1.0 - mu) / mu;  // 1 / SINR_mmse
          }
        } else {
          for (std::size_t s = 0; s < n_ss; ++s) {
            d.mu[s] = 1.0;
            d.noise_var[s] = sigma2 * m(s, s).real();
          }
        }
        break;
      }
    }
  }

  // ---------- Channel + detection, symbol by symbol ----------
  // Per-stream LLRs, packed like the stream bits: stream ss occupies
  // [ss * n_sym * n_cbpss, (ss + 1) * n_sym * n_cbpss).
  auto stream_llrs_lease = ws.rvec(n_ss * n_sym * n_cbpss);
  const auto stream_llrs = [&](std::size_t ss) {
    return std::span(*stream_llrs_lease).subspan(ss * n_sym * n_cbpss,
                                                 n_sym * n_cbpss);
  };

  // Per-symbol scratch, leased once and reused for every symbol.
  auto z_lease = ws.cvec(n_ss * n_dt);    // equalized observations
  auto zv_lease = ws.rvec(n_ss * n_dt);   // their effective noise variances
  auto snr_lease = ws.rvec(n_ss * n_dt);  // post-eq SNR memo (probe only)
  auto x_lease = ws.cvec(n_ss);           // transmitted vector at one tone
  auto y_lease = ws.cvec(n_rx_);          // received vector at one tone
  auto xhat_lease = ws.cvec(n_ss);        // linear detector output
  auto llr_lease = ws.rvec(n_cbpss);      // one stream-symbol of LLRs
  const auto z = [&](std::size_t ss) {
    return std::span(*z_lease).subspan(ss * n_dt, n_dt);
  };
  const auto zv = [&](std::size_t ss) {
    return std::span(*zv_lease).subspan(ss * n_dt, n_dt);
  };

  for (std::size_t s = 0; s < n_sym; ++s) {
    for (std::size_t t = 0; t < n_dt; ++t) {
      const ToneDetector& d = det[t];
      if (d.scalar) {
        for (std::size_t ss = 0; ss < d.gains.size(); ++ss) {
          const Cplx x = stream_syms(ss)[s * n_dt + t];
          const double g = std::max(d.gains[ss], 1e-9);
          const Cplx y = g * x + rng.cgaussian(sigma2);
          z(ss)[t] = y / g;
          zv(ss)[t] = sigma2 / (g * g);
        }
      } else {
        std::span<Cplx> x = *x_lease;
        for (std::size_t ss = 0; ss < n_ss; ++ss) {
          x[ss] = stream_syms(ss)[s * n_dt + t];
        }
        std::span<Cplx> y = *y_lease;
        linalg::multiply_to(d.a, x, y);
        for (auto& v : y) v += rng.cgaussian(sigma2);
        if (!d.stages.empty()) {
          // Ordered SIC: detect, slice, cancel, repeat.
          for (const SicStage& stage : d.stages) {
            Cplx acc{0.0, 0.0};
            for (std::size_t r = 0; r < y.size(); ++r) {
              acc += stage.g[r] * y[r];
            }
            const Cplx est = acc / stage.mu;
            z(stage.stream)[t] = est;
            zv(stage.stream)[t] = stage.noise_var;
            const Cplx sliced = slice_symbol(est, mcs_.mod);
            for (std::size_t r = 0; r < y.size(); ++r) {
              y[r] -= stage.a_col[r] * sliced;
            }
          }
        } else {
          std::span<Cplx> xhat = *xhat_lease;
          linalg::multiply_to(d.g, y, xhat);
          for (std::size_t ss = 0; ss < n_ss; ++ss) {
            z(ss)[t] = xhat[ss] / d.mu[ss];
            zv(ss)[t] = d.noise_var[ss];
          }
        }
      }
    }
    for (std::size_t ss = 0; ss < n_ss; ++ss) {
      // Link-quality probes (no-ops unless enable_phy_probes armed them).
      if (obs::Histogram* p = obs::probe_histogram(obs::Probe::kHtEvm)) {
        double err2 = 0.0;
        for (std::size_t t = 0; t < n_dt; ++t) {
          err2 += std::norm(z(ss)[t] - slice_symbol(z(ss)[t], mcs_.mod));
        }
        p->record(std::sqrt(err2 / static_cast<double>(n_dt)));
      }
      if (obs::Histogram* p =
              obs::probe_histogram(obs::Probe::kHtPostEqSnr)) {
        // The effective noise variances come straight from the per-tone
        // detectors, so they repeat every symbol: memoize the dB
        // conversion on the first symbol and bulk-record once after the
        // symbol loop (same values, n_sym copies each).
        if (s == 0) {
          RVec& snr_db = *snr_lease;
          for (std::size_t t = 0; t < n_dt; ++t) {
            snr_db[ss * n_dt + t] =
                lin_to_db(1.0 / std::max(zv(ss)[t], 1e-30));
          }
        }
      }
      std::span<double> llrs = *llr_lease;
      demodulate_llr_to(z(ss), mcs_.mod, zv(ss), llrs);
      if (obs::Histogram* p = obs::probe_histogram(obs::Probe::kHtLlrAbs)) {
        for (const double l : llrs) p->record(std::abs(l));
      }
      const auto dest = stream_llrs(ss).subspan(s * n_cbpss, n_cbpss);
      if (use_interleaver) {
        interleaver.deinterleave_to(llrs, dest);
      } else {
        std::copy(llrs.begin(), llrs.end(), dest.begin());
      }
    }
  }

  if (obs::Histogram* p = n_sym > 0
          ? obs::probe_histogram(obs::Probe::kHtPostEqSnr)
          : nullptr) {
    const RVec& snr_db = *snr_lease;
    for (std::size_t i = 0; i < n_ss * n_dt; ++i) {
      p->record_n(snr_db[i], n_sym);
    }
  }

  // ---------- Stream deparse ----------
  check(coded_llrs_out.size() == n_sym * n_cbps,
        "HT front: coded LLR buffer size mismatch");
  std::span<double> coded_llrs = coded_llrs_out;
  {
    std::array<std::size_t, 4> cursor{};
    for (std::size_t i = 0; i < coded_llrs.size(); i += s_block * n_ss) {
      for (std::size_t ss = 0; ss < n_ss; ++ss) {
        for (std::size_t b = 0; b < s_block; ++b) {
          coded_llrs[i + ss * s_block + b] = stream_llrs(ss)[cursor[ss]++];
        }
      }
    }
  }
}

void HtPhy::simulate_link_into(std::span<const std::uint8_t> psdu,
                               const std::vector<linalg::CMatrix>& tones,
                               double snr_db, Rng& rng, Bytes& out,
                               Workspace& ws) const {
  // One span over the combined TX+RX chain (encode through decode).
  const obs::perf::ScopedSpan span("ht.link");
  const std::size_t n_cbps =
      ht_data_tones(config_.bandwidth) * mcs_.n_bpsc * mcs_.n_ss;
  const std::size_t n_sym = n_symbols_for_psdu(psdu.size());
  auto coded_llrs_lease = ws.rvec(n_sym * n_cbps);
  std::span<double> coded_llrs = *coded_llrs_lease;
  simulate_front_into(psdu, tones, snr_db, rng, coded_llrs, ws);

  // ---------- Decode ----------
  auto info_lease = ws.bits(0);
  Bits& info_bits = *info_lease;
  if (config_.coding == HtCoding::kBcc) {
    const std::size_t n_dbps = static_cast<std::size_t>(
        static_cast<double>(n_cbps) * code_rate_value(mcs_.rate));
    const std::size_t n_info = n_sym * n_dbps;
    auto unpunctured_lease = ws.rvec(0);
    RVec& unpunctured = *unpunctured_lease;
    depuncture_into(coded_llrs, mcs_.rate, n_info, unpunctured);
    // Decode the tail-terminated prefix only (pads are scrambled noise).
    const std::size_t decoded_bits = kServiceBits + 8 * psdu.size() + kTailBits;
    unpunctured.resize(2 * decoded_bits);
    viterbi_decode_into(unpunctured, /*terminated=*/true, info_bits, ws);
  } else {
    const LdpcCode& code = ldpc_code_for(mcs_.rate);
    const std::size_t payload = kServiceBits + 8 * psdu.size();
    const std::size_t n_cw =
        (payload + code.info_length() - 1) / code.info_length();
    info_bits.resize(n_cw * code.info_length());
    LdpcCode::DecodeResult res;
    for (std::size_t cw = 0; cw < n_cw; ++cw) {
      const auto llrs = coded_llrs.subspan(cw * kLdpcBlock, kLdpcBlock);
      code.decode_into(llrs, /*max_iterations=*/40, /*normalization=*/0.8,
                       res, ws);
      std::copy(res.info.begin(), res.info.end(),
                info_bits.begin() +
                    static_cast<std::ptrdiff_t>(cw * code.info_length()));
    }
  }
  scramble_to(info_bits, kScramblerSeed, info_bits);  // descramble in place

  out.assign(psdu.size(), 0);
  for (std::size_t i = 0; i < 8 * psdu.size(); ++i) {
    if (info_bits[kServiceBits + i] & 1u) {
      out[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
    }
  }
}

void HtPhy::simulate_link_batch_into(std::span<const TxLane> lanes,
                                     double snr_db, std::span<Bytes> out,
                                     bool quantized, Workspace& ws) const {
  const std::size_t L = lanes.size();
  check(L > 0 && L <= 16 && out.size() == L,
        "HT batch link requires 1..16 lanes with one output per lane");
  const obs::perf::ScopedSpan span("ht.link_batch");
  const std::size_t psdu_bytes = lanes[0].psdu.size();
  for (const TxLane& lane : lanes) {
    check(lane.psdu.size() == psdu_bytes && lane.tones != nullptr &&
              lane.rng != nullptr,
          "HT batch link: lanes must carry equal-size PSDUs, a channel, "
          "and an Rng");
  }

  const std::size_t n_cbps =
      ht_data_tones(config_.bandwidth) * mcs_.n_bpsc * mcs_.n_ss;
  const std::size_t n_sym = n_symbols_for_psdu(psdu_bytes);
  const std::size_t lane_llr_count = n_sym * n_cbps;

  // Per-lane front ends (each consumes only its own Rng) into one
  // lane-contiguous block.
  auto fronts_lease = ws.rvec(L * lane_llr_count);
  RVec& fronts = *fronts_lease;
  for (std::size_t l = 0; l < L; ++l) {
    simulate_front_into(lanes[l].psdu, *lanes[l].tones, snr_db,
                        *lanes[l].rng,
                        std::span<double>(fronts.data() + l * lane_llr_count,
                                          lane_llr_count),
                        ws);
  }

  const std::size_t payload_bits = kServiceBits + 8 * psdu_bytes;
  if (config_.coding == HtCoding::kBcc) {
    // Depuncture lane-major, decode the tail-terminated prefix of every
    // lane in one batched Viterbi sweep.
    std::array<std::span<const double>, 16> lane_llrs;
    for (std::size_t l = 0; l < L; ++l) {
      lane_llrs[l] = std::span<const double>(
          fronts.data() + l * lane_llr_count, lane_llr_count);
    }
    const std::size_t n_dbps = static_cast<std::size_t>(
        static_cast<double>(n_cbps) * code_rate_value(mcs_.rate));
    const std::size_t n_info = n_sym * n_dbps;
    auto soa_lease = ws.rvec(0);
    RVec& soa = *soa_lease;
    depuncture_batch_into(
        std::span<const std::span<const double>>(lane_llrs.data(), L),
        mcs_.rate, n_info, soa);
    const std::size_t decoded_bits = payload_bits + kTailBits;
    const std::span<const double> trellis_llrs(soa.data(),
                                               2 * decoded_bits * L);
    auto decoded_lease = ws.bits(0);
    Bits& decoded_soa = *decoded_lease;
    if (quantized) {
      double maxabs = 0.0;
      for (const double v : trellis_llrs) {
        maxabs = std::max(maxabs, std::abs(v));
      }
      const double scale = maxabs > 0.0 ? kQuantHeadroom / maxabs : 1.0;
      viterbi_decode_batch_i16_into(trellis_llrs, L, /*terminated=*/true,
                                    scale, decoded_soa, ws);
    } else {
      viterbi_decode_batch_into(trellis_llrs, L, /*terminated=*/true,
                                decoded_soa, ws);
    }
    auto lanebits_lease = ws.bits(decoded_bits);
    Bits& lanebits = *lanebits_lease;
    for (std::size_t l = 0; l < L; ++l) {
      dsp::batch::gather_lane(decoded_soa.data(), l, L,
                              std::span<std::uint8_t>(lanebits));
      scramble_to(lanebits, kScramblerSeed, lanebits);
      Bytes& psdu = out[l];
      psdu.assign(psdu_bytes, 0);
      for (std::size_t i = 0; i < 8 * psdu_bytes; ++i) {
        if (lanebits[kServiceBits + i] & 1u) {
          psdu[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
        }
      }
    }
  } else {
    // LDPC: transpose each codeword position into a lane-major block and
    // decode all lanes' codeword cw together.
    const LdpcCode& code = ldpc_code_for(mcs_.rate);
    const std::size_t k = code.info_length();
    const std::size_t n_cw = (payload_bits + k - 1) / k;
    auto infos_lease = ws.bits(L * n_cw * k);
    Bits& infos = *infos_lease;
    auto soa_lease = ws.rvec(kLdpcBlock * L);
    RVec& soa = *soa_lease;
    // Group-persistent decode results: thread_local so the info vectors
    // keep their capacity across groups (steady state allocation-free).
    thread_local std::array<LdpcCode::DecodeResult, 16> results;
    for (std::size_t cw = 0; cw < n_cw; ++cw) {
      for (std::size_t l = 0; l < L; ++l) {
        dsp::batch::scatter_lane(
            std::span<const double>(
                fronts.data() + l * lane_llr_count + cw * kLdpcBlock,
                kLdpcBlock),
            l, L, soa.data());
      }
      if (quantized) {
        double maxabs = 0.0;
        for (const double v : soa) maxabs = std::max(maxabs, std::abs(v));
        const double scale = maxabs > 0.0 ? kQuantHeadroom / maxabs : 1.0;
        code.decode_batch_i16_into(soa, L, /*max_iterations=*/40,
                                   /*normalization=*/0.8, scale,
                                   std::span<LdpcCode::DecodeResult>(
                                       results.data(), L),
                                   ws);
      } else {
        code.decode_batch_into(soa, L, /*max_iterations=*/40,
                               /*normalization=*/0.8,
                               std::span<LdpcCode::DecodeResult>(
                                   results.data(), L),
                               ws);
      }
      for (std::size_t l = 0; l < L; ++l) {
        std::copy(results[l].info.begin(), results[l].info.end(),
                  infos.begin() +
                      static_cast<std::ptrdiff_t>(l * n_cw * k + cw * k));
      }
    }
    for (std::size_t l = 0; l < L; ++l) {
      const std::span<std::uint8_t> lane_info(infos.data() + l * n_cw * k,
                                              n_cw * k);
      scramble_to(lane_info, kScramblerSeed, lane_info);
      Bytes& psdu = out[l];
      psdu.assign(psdu_bytes, 0);
      for (std::size_t i = 0; i < 8 * psdu_bytes; ++i) {
        if (lane_info[kServiceBits + i] & 1u) {
          psdu[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
        }
      }
    }
  }
}

}  // namespace wlan::phy

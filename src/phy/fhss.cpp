#include "phy/fhss.h"

#include <cmath>
#include <numbers>

#include "channel/awgn.h"
#include "common/check.h"

namespace wlan::phy {
namespace {

constexpr double kPi = std::numbers::pi;

// Gray-coded frequency deviation levels (in units of the peak deviation).
double deviation_level(FhssRate rate, std::span<const std::uint8_t> bits) {
  if (rate == FhssRate::k1Mbps) {
    return bits[0] ? 1.0 : -1.0;
  }
  const int pattern = (bits[0] << 1) | bits[1];
  switch (pattern) {
    case 0b00: return -1.0;
    case 0b01: return -1.0 / 3.0;
    case 0b11: return 1.0 / 3.0;
    default: return 1.0;  // 0b10
  }
}

void level_to_bits(FhssRate rate, double level, std::uint8_t* out) {
  if (rate == FhssRate::k1Mbps) {
    out[0] = level > 0.0 ? 1 : 0;
    return;
  }
  if (level < -2.0 / 3.0) {
    out[0] = 0;
    out[1] = 0;
  } else if (level < 0.0) {
    out[0] = 0;
    out[1] = 1;
  } else if (level < 2.0 / 3.0) {
    out[0] = 1;
    out[1] = 1;
  } else {
    out[0] = 1;
    out[1] = 0;
  }
}

}  // namespace

std::size_t fhss_bits_per_symbol(FhssRate rate) {
  return rate == FhssRate::k1Mbps ? 1 : 2;
}

std::size_t fhss_hop_channel(std::size_t hop_index, std::size_t base) {
  return (base + hop_index * 7) % kFhssChannels;
}

FhssModem::FhssModem(const Config& config) : config_(config) {
  check(config_.samples_per_symbol >= 2, "FHSS needs >= 2 samples/symbol");
  check(config_.symbols_per_hop >= 1, "FHSS needs >= 1 symbol per hop");
  check(config_.modulation_index > 0.0 && config_.modulation_index < 1.0,
        "FHSS modulation index out of range");
}

std::size_t FhssModem::hops_for_bits(std::size_t n_bits) const {
  const std::size_t bps = fhss_bits_per_symbol(config_.rate);
  const std::size_t bits_per_hop = bps * config_.symbols_per_hop;
  return (n_bits + bits_per_hop - 1) / bits_per_hop;
}

std::vector<CVec> FhssModem::modulate(std::span<const std::uint8_t> bits) const {
  const std::size_t bps = fhss_bits_per_symbol(config_.rate);
  const std::size_t n_hops = hops_for_bits(bits.size());
  const std::size_t bits_per_hop = bps * config_.symbols_per_hop;

  // Peak per-sample phase increment: pi * h / samples_per_symbol.
  const double step =
      kPi * config_.modulation_index / static_cast<double>(config_.samples_per_symbol);

  std::vector<CVec> hops(n_hops);
  std::size_t bit_pos = 0;
  for (std::size_t hop = 0; hop < n_hops; ++hop) {
    CVec& wave = hops[hop];
    wave.reserve(config_.symbols_per_hop * config_.samples_per_symbol);
    double phase = 0.0;  // continuous phase within the dwell
    for (std::size_t s = 0; s < config_.symbols_per_hop; ++s) {
      std::uint8_t sym_bits[2] = {0, 0};
      for (std::size_t b = 0; b < bps; ++b) {
        sym_bits[b] = bit_pos < bits.size() ? bits[bit_pos] : 0;
        ++bit_pos;
      }
      const double level =
          deviation_level(config_.rate, std::span<const std::uint8_t>(sym_bits, bps));
      for (std::size_t i = 0; i < config_.samples_per_symbol; ++i) {
        phase += level * step;
        wave.push_back({std::cos(phase), std::sin(phase)});
      }
    }
    (void)bits_per_hop;
  }
  return hops;
}

Bits FhssModem::demodulate(std::span<const CVec> hops) const {
  const std::size_t bps = fhss_bits_per_symbol(config_.rate);
  const double step =
      kPi * config_.modulation_index / static_cast<double>(config_.samples_per_symbol);
  Bits bits;
  bits.reserve(hops.size() * config_.symbols_per_hop * bps);
  for (const CVec& wave : hops) {
    check(wave.size() == config_.symbols_per_hop * config_.samples_per_symbol,
          "FHSS hop waveform length mismatch");
    for (std::size_t s = 0; s < config_.symbols_per_hop; ++s) {
      // Discriminator: average phase increment over the symbol.
      double acc = 0.0;
      int terms = 0;
      for (std::size_t i = 1; i < config_.samples_per_symbol; ++i) {
        const std::size_t idx = s * config_.samples_per_symbol + i;
        acc += std::arg(wave[idx] * std::conj(wave[idx - 1]));
        ++terms;
      }
      const double level = acc / (static_cast<double>(terms) * step);
      std::uint8_t sym_bits[2] = {0, 0};
      level_to_bits(config_.rate, level, sym_bits);
      for (std::size_t b = 0; b < bps; ++b) bits.push_back(sym_bits[b]);
    }
  }
  return bits;
}

FhssLinkResult run_fhss_link(const FhssModem::Config& config,
                             std::size_t n_bits, double snr_db, Rng& rng,
                             int jammed_channel, double jam_power) {
  check(n_bits > 0, "run_fhss_link requires bits");
  const FhssModem modem(config);
  const Bits tx_bits = rng.random_bits(n_bits);
  std::vector<CVec> hops = modem.modulate(tx_bits);

  FhssLinkResult result;
  result.total_hops = hops.size();
  const double noise_var = std::pow(10.0, -snr_db / 10.0);  // unit chip power
  for (std::size_t h = 0; h < hops.size(); ++h) {
    // Each hop retunes the synthesizer: random carrier phase.
    const double phi = rng.uniform(0.0, 2.0 * std::numbers::pi);
    const Cplx rot{std::cos(phi), std::sin(phi)};
    for (auto& v : hops[h]) v *= rot;
    if (jammed_channel >= 0 &&
        fhss_hop_channel(h, config.hop_base) ==
            static_cast<std::size_t>(jammed_channel)) {
      ++result.jammed_hops;
      channel::add_tone_interferer(hops[h], rng, jam_power, 0.05);
    }
    channel::add_awgn(hops[h], rng, noise_var);
  }

  const Bits rx_bits = modem.demodulate(hops);
  result.bits = n_bits;
  for (std::size_t i = 0; i < n_bits; ++i) {
    if (rx_bits[i] != tx_bits[i]) ++result.bit_errors;
  }
  return result;
}

}  // namespace wlan::phy

// 802.11b CCK (Complementary Code Keying): 5.5 and 11 Mbps.
//
// Eight-chip complex codewords at 11 Mchip/s keep a DSSS-like spectral
// signature while carrying 4 (5.5 Mbps) or 8 (11 Mbps) bits per symbol —
// the paper's "combined modulation and coding scheme known as CCK" that
// raised efficiency fivefold over Barker DSSS.
//
// The odd-symbol extra pi rotation of the standard is omitted (it only
// shapes the spectrum); phase mappings otherwise follow 802.11b-1999
// section 18.4.6.5.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "common/types.h"

namespace wlan::phy {

enum class CckRate { k5_5Mbps, k11Mbps };

/// Data bits carried per 8-chip CCK symbol.
std::size_t cck_bits_per_symbol(CckRate rate);

/// CCK modem with differential phi1 (a reference symbol is prepended).
class CckModem {
 public:
  explicit CckModem(CckRate rate);

  /// Modulates bits to chips; output (1 + n_symbols) * 8 chips.
  CVec modulate(std::span<const std::uint8_t> bits) const;

  /// As modulate, resizing `out` — allocation-free once warm.
  void modulate_into(std::span<const std::uint8_t> bits, CVec& out) const;

  /// Maximum-likelihood codeword correlation receiver.
  Bits demodulate(std::span<const Cplx> chips) const;

  /// As demodulate, resizing `out` — allocation-free once warm.
  void demodulate_into(std::span<const Cplx> chips, Bits& out) const;

  /// The 8-chip base codeword for given (phi2, phi3, phi4) with phi1 = 0.
  static void base_codeword(double phi2, double phi3, double phi4, Cplx out[8]);

 private:
  struct Candidate {
    std::array<Cplx, 8> chips;
    std::array<std::uint8_t, 6> bits;  // the non-phi1 data bits (up to 6)
  };

  CckRate rate_;
  // Codeword set for the rate (64 entries at 11 Mbps, 4 at 5.5), built
  // once at construction instead of per modulate/demodulate call.
  std::vector<Candidate> candidates_;
};

}  // namespace wlan::phy

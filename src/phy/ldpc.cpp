#include "phy/ldpc.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <unordered_set>

#include "common/check.h"
#include "common/rng.h"
#include "dsp/batch.h"
#include "dsp/saturate.h"
#include "dsp/simd.h"
#include "dsp/simd_int.h"
#include "obs/perf.h"
#include "obs/timer.h"
#include "phy/workspace.h"

namespace wlan::phy {
namespace {

// Dense GF(2) row as 64-bit words.
using Row = std::vector<std::uint64_t>;

bool get_bit(const Row& row, std::size_t c) {
  return (row[c / 64] >> (c % 64)) & 1u;
}

void set_bit(Row& row, std::size_t c) { row[c / 64] |= std::uint64_t{1} << (c % 64); }

void xor_rows(Row& dst, const Row& src) {
  for (std::size_t w = 0; w < dst.size(); ++w) dst[w] ^= src[w];
}

}  // namespace

LdpcCode::LdpcCode(std::size_t n, std::size_t k, std::uint64_t seed,
                   int column_weight)
    : n_(n), k_(k), m_(n - k) {
  check(n > k && k > 0, "LdpcCode requires 0 < k < n");
  check(column_weight >= 2 && static_cast<std::size_t>(column_weight) <= m_,
        "LdpcCode column weight infeasible");

  // Retry construction with successive seeds until the parity matrix has
  // full row rank (virtually always the first try for wc >= 3).
  for (std::uint64_t attempt = 0;; ++attempt) {
    Rng rng(seed + attempt * 0x9E37u);
    // --- Random regular construction, balancing check degrees and
    // avoiding 4-cycles (two variables sharing two checks) where possible.
    std::vector<std::vector<std::uint32_t>> var_checks(n);
    std::vector<std::uint32_t> degree(m_, 0);
    std::unordered_set<std::uint64_t> used_pairs;
    auto pair_key = [this](std::uint32_t a, std::uint32_t b) {
      if (a > b) std::swap(a, b);
      return static_cast<std::uint64_t>(a) * m_ + b;
    };
    for (std::size_t v = 0; v < n; ++v) {
      for (int e = 0; e < column_weight; ++e) {
        auto creates_4cycle = [&](std::uint32_t c) {
          for (const std::uint32_t prev : var_checks[v]) {
            if (used_pairs.contains(pair_key(c, prev))) return true;
          }
          return false;
        };
        // Two passes: first restrict to checks that keep girth > 4, then
        // relax if that leaves no candidate.
        std::vector<std::uint32_t> candidates;
        for (const bool avoid_cycles : {true, false}) {
          std::uint32_t best_deg = 0xFFFFFFFFu;
          for (std::size_t c = 0; c < m_; ++c) {
            const auto cc = static_cast<std::uint32_t>(c);
            if (std::find(var_checks[v].begin(), var_checks[v].end(), cc) !=
                var_checks[v].end()) {
              continue;
            }
            if (avoid_cycles && creates_4cycle(cc)) continue;
            if (degree[c] < best_deg) {
              best_deg = degree[c];
              candidates.clear();
            }
            if (degree[c] == best_deg) candidates.push_back(cc);
          }
          if (!candidates.empty()) break;
        }
        const std::uint32_t c = candidates[rng.uniform_int(candidates.size())];
        var_checks[v].push_back(c);
        ++degree[c];
      }
      for (std::size_t i = 0; i < var_checks[v].size(); ++i) {
        for (std::size_t j = i + 1; j < var_checks[v].size(); ++j) {
          used_pairs.insert(pair_key(var_checks[v][i], var_checks[v][j]));
        }
      }
    }

    // --- Dense copy for rank check / RREF. ---
    const std::size_t words = (n + 63) / 64;
    std::vector<Row> h(m_, Row(words, 0));
    for (std::size_t v = 0; v < n; ++v) {
      for (const std::uint32_t c : var_checks[v]) set_bit(h[c], v);
    }

    // RREF with pivot tracking.
    std::vector<std::int64_t> pivot_col_of_row(m_, -1);
    std::vector<bool> is_pivot_col(n, false);
    std::size_t row = 0;
    for (std::size_t col = 0; col < n && row < m_; ++col) {
      std::size_t sel = row;
      while (sel < m_ && !get_bit(h[sel], col)) ++sel;
      if (sel == m_) continue;
      std::swap(h[sel], h[row]);
      for (std::size_t r = 0; r < m_; ++r) {
        if (r != row && get_bit(h[r], col)) xor_rows(h[r], h[row]);
      }
      pivot_col_of_row[row] = static_cast<std::int64_t>(col);
      is_pivot_col[col] = true;
      ++row;
    }
    if (row < m_) continue;  // rank deficient; retry with a new seed

    // --- Extract encoder structure from the RREF. ---
    info_cols_.clear();
    parity_cols_.clear();
    parity_deps_.assign(m_, {});
    std::vector<std::uint32_t> info_index_of_col(n, 0xFFFFFFFFu);
    for (std::size_t c = 0; c < n; ++c) {
      if (!is_pivot_col[c]) {
        info_index_of_col[c] = static_cast<std::uint32_t>(info_cols_.size());
        info_cols_.push_back(static_cast<std::uint32_t>(c));
      }
    }
    check(info_cols_.size() == k_, "LdpcCode internal: info position count");
    for (std::size_t r = 0; r < m_; ++r) {
      parity_cols_.push_back(static_cast<std::uint32_t>(pivot_col_of_row[r]));
      for (std::size_t c = 0; c < n; ++c) {
        if (!is_pivot_col[c] && get_bit(h[r], c)) {
          parity_deps_[r].push_back(info_index_of_col[c]);
        }
      }
    }
    // Transpose the (RREF-dense) dependency rows into word-packed parity
    // columns so the encoder can XOR 64 parities at a time.
    parity_words_ = (m_ + 63) / 64;
    parity_masks_.assign(k_ * parity_words_, 0);
    for (std::size_t r = 0; r < m_; ++r) {
      for (const std::uint32_t i : parity_deps_[r]) {
        parity_masks_[i * parity_words_ + r / 64] |= std::uint64_t{1}
                                                     << (r % 64);
      }
    }

    // --- Decoder adjacency (original sparse H, not the RREF), CSR. ---
    std::vector<std::uint32_t> check_degree(m_, 0);
    for (std::size_t v = 0; v < n; ++v) {
      for (const std::uint32_t c : var_checks[v]) ++check_degree[c];
    }
    check_offset_.assign(m_ + 1, 0);
    for (std::size_t c = 0; c < m_; ++c) {
      check_offset_[c + 1] = check_offset_[c] + check_degree[c];
      max_check_degree_ =
          std::max<std::size_t>(max_check_degree_, check_degree[c]);
    }
    check_var_.assign(check_offset_[m_], 0);
    std::vector<std::uint32_t> fill(check_offset_.begin(),
                                    check_offset_.end() - 1);
    for (std::size_t v = 0; v < n; ++v) {
      for (const std::uint32_t c : var_checks[v]) {
        check_var_[fill[c]++] = static_cast<std::uint32_t>(v);
      }
    }
    return;
  }
}

void LdpcCode::encode_into(std::span<const std::uint8_t> info,
                           Bits& codeword) const {
  check(info.size() == k_, "LdpcCode::encode info length mismatch");
  codeword.assign(n_, 0);
  // Accumulate all parity bits as packed words — one column XOR per set
  // info bit — then scatter. GF(2) sums are exact either way, so this
  // matches the per-row XOR walk bit for bit.
  std::uint64_t acc[32];  // m_ <= 2048 for every supported block length
  check(parity_words_ <= 32, "LdpcCode::encode parity accumulator too small");
  for (std::size_t w = 0; w < parity_words_; ++w) acc[w] = 0;
  for (std::size_t i = 0; i < k_; ++i) {
    codeword[info_cols_[i]] = info[i] & 1u;
    if (info[i] & 1u) {
      const std::uint64_t* col = &parity_masks_[i * parity_words_];
      for (std::size_t w = 0; w < parity_words_; ++w) acc[w] ^= col[w];
    }
  }
  for (std::size_t r = 0; r < m_; ++r) {
    codeword[parity_cols_[r]] =
        static_cast<std::uint8_t>((acc[r / 64] >> (r % 64)) & 1u);
  }
}

Bits LdpcCode::encode(std::span<const std::uint8_t> info) const {
  Bits codeword;
  encode_into(info, codeword);
  return codeword;
}

bool LdpcCode::satisfies_parity(std::span<const std::uint8_t> codeword) const {
  check(codeword.size() == n_, "satisfies_parity length mismatch");
  for (std::size_t c = 0; c < m_; ++c) {
    std::uint8_t p = 0;
    for (std::uint32_t e = check_offset_[c]; e < check_offset_[c + 1]; ++e) {
      p ^= codeword[check_var_[e]] & 1u;
    }
    if (p) return false;
  }
  return true;
}

namespace {

// Syndrome over posterior signs, straight off the CSR arrays; bails on
// the first unsatisfied check (no hard-decision buffer materialized).
bool syndrome_clean(const double* posterior,
                    const std::vector<std::uint32_t>& offset,
                    const std::vector<std::uint32_t>& var, std::size_t m) {
  for (std::size_t c = 0; c < m; ++c) {
    unsigned p = 0;
    for (std::uint32_t e = offset[c]; e < offset[c + 1]; ++e) {
      p ^= posterior[var[e]] < 0.0 ? 1u : 0u;
    }
    if (p) return false;
  }
  return true;
}

// One layered min-sum check update on contiguous single-trial state:
// the branch-free scalar reference. The two-minimum recurrence and the
// sign handling are data-dependent coin flips, so they are written as
// exact selections (min/max/cmov, sign-bit XOR for the ±1 multiply)
// instead of branches. Every transformation picks between the same IEEE
// values the branching form would compute — bitwise identical, and what
// the vector paths (single-trial and batched) are held to. The batch
// drain finishes a lane on exactly this code.
void scalar_check_update(const std::uint32_t* var, std::uint32_t e0,
                         std::uint32_t e1, double normalization,
                         double* posterior, double* c2v, double* v2c) {
  double min1 = 1e300;
  double min2 = 1e300;
  std::uint32_t min_pos = 0;
  int sign_product = 1;
  unsigned neg = 0;
  for (std::uint32_t e = e0; e < e1; ++e) {
    const double msg = posterior[var[e]] - c2v[e];
    v2c[e - e0] = msg;
    const double mag = std::abs(msg);
    const bool below = mag < min1;
    const double runner_up = below ? min1 : mag;
    min_pos = below ? e : min_pos;
    min1 = below ? mag : min1;
    min2 = runner_up < min2 ? runner_up : min2;
    neg += static_cast<unsigned>(msg < 0.0);
  }
  if (neg & 1u) sign_product = -1;
  const double a1 = min1 * normalization;
  const double a2 = min2 * normalization;
  const std::uint64_t product_bit =
      sign_product < 0 ? 0x8000000000000000ull : 0ull;
  for (std::uint32_t e = e0; e < e1; ++e) {
    const double mag = e == min_pos ? a2 : a1;
    const double old = v2c[e - e0];
    const std::uint64_t flip =
        (old < 0.0 ? 0x8000000000000000ull : 0ull) ^ product_bit;
    const double new_msg =
        std::bit_cast<double>(std::bit_cast<std::uint64_t>(mag) ^ flip);
    posterior[var[e]] = old + new_msg;
    c2v[e] = new_msg;
  }
}

}  // namespace

void LdpcCode::decode_into(std::span<const double> llrs, int max_iterations,
                           double normalization, DecodeResult& result,
                           Workspace& ws) const {
  const obs::ScopedTimer timer(
      obs::kernel_histogram(obs::Kernel::kLdpcDecode));
  const obs::perf::ScopedSpan span("ldpc_decode");
  check(llrs.size() == n_, "LdpcCode::decode LLR length mismatch");

  // Edge-indexed layered min-sum on the flat CSR structure: c2v[e] is
  // the check-to-variable message for edge e (same indexing as
  // check_var_), and posteriors are updated in place as each check
  // (layer) is processed, so later layers in the same iteration see
  // already-refined beliefs.
  auto posterior_lease = ws.rvec(n_);
  RVec& posterior = *posterior_lease;
  for (std::size_t i = 0; i < n_; ++i) posterior[i] = llrs[i];
  int iter = 0;
  bool ok = false;
  if (syndrome_clean(posterior.data(), check_offset_, check_var_, m_)) {
    // Channel decisions already form a codeword — 0-iteration exit
    // (the common case well above the waterfall).
    ok = true;
  } else {
    auto c2v_lease = ws.rvec(check_var_.size());
    auto v2c_lease = ws.rvec(max_check_degree_);
    auto lane_lease = ws.rvec(dsp::simd::kWidth);
    RVec& c2v = *c2v_lease;
    RVec& v2c = *v2c_lease;
    double* lane = lane_lease->data();
    for (auto& m : c2v) m = 0.0;
    // Plan-level dispatch: lanes pay off only when a check row fills
    // them a few times over. Low-rate codes (degree ~6) stay on the
    // branch-free scalar loop, which beats a 4-lane gather there; the
    // wide rows of high-rate codes (degree ≥ 2 widths) go vector.
    // Either path is bitwise identical, so the cutover is pure policy.
    const bool use_vec = dsp::simd::vector_enabled() &&
                         max_check_degree_ >= 2 * dsp::simd::kWidth;
    for (iter = 0; iter < max_iterations; ++iter) {
      for (std::size_t c = 0; c < m_; ++c) {
        const std::uint32_t e0 = check_offset_[c];
        const std::uint32_t e1 = check_offset_[c + 1];
        if (!use_vec) {
          scalar_check_update(check_var_.data(), e0, e1, normalization,
                              posterior.data(), c2v.data(), v2c.data());
          continue;
        }
        const std::uint32_t deg = e1 - e0;
        double min1 = 1e300;
        double min2 = 1e300;
        std::uint32_t min_pos = 0;
        int sign_product = 1;
        {
          using dsp::simd::DVec;
          constexpr std::uint32_t W =
              static_cast<std::uint32_t>(dsp::simd::kWidth);
          // Message sweep, a lane per edge. The subtraction and < 0 test
          // are the scalar ops lanewise, so v2c holds bitwise-identical
          // values. Sign parity accumulates as an XOR of lane masks (XOR
          // preserves popcount parity), costing one popcount per check
          // instead of one per block.
          unsigned sign_mask = 0;
          std::uint32_t e = e0;
          for (; e + W <= e1; e += W) {
            const DVec msg = dsp::simd::gather(posterior.data(),
                                               &check_var_[e]) -
                             DVec::load(&c2v[e]);
            msg.store(&v2c[e - e0]);
            sign_mask ^= dsp::simd::mask_lt(msg, DVec::splat(0.0));
          }
          unsigned neg = static_cast<unsigned>(std::popcount(sign_mask));
          for (; e < e1; ++e) {
            const double msg = posterior[check_var_[e]] - c2v[e];
            v2c[e - e0] = msg;
            if (msg < 0.0) ++neg;
          }
          if (neg & 1u) sign_product = -1;
          // The running two-minimum scan is a serial recurrence; walk the
          // messages in the scalar edge order (branch-free, same
          // selections as the reference loop) so min_pos ties resolve
          // identically. |v2c[i]| reproduces the magnitude bit for bit.
          for (std::uint32_t i = 0; i < deg; ++i) {
            const double mag = std::abs(v2c[i]);
            const bool below = mag < min1;
            const double runner_up = below ? min1 : mag;
            min_pos = below ? e0 + i : min_pos;
            min1 = below ? mag : min1;
            min2 = runner_up < min2 ? runner_up : min2;
          }
          // Writeback: every edge gets ±min1*norm (a splat), and the one
          // minimum edge is patched to ±min2*norm afterwards — its
          // posterior is recomputed as old + msg from scratch, not
          // incrementally, so the patch stays exact.
          const double a1 = min1 * normalization;
          const double a2 = min2 * normalization;
          const DVec t1 = DVec::splat(sign_product < 0 ? -a1 : a1);
          const DVec zero = DVec::splat(0.0);
          e = e0;
          for (; e + W <= e1; e += W) {
            const DVec old = DVec::load(&v2c[e - e0]);
            const DVec new_msg =
                dsp::simd::select_gt(zero, old, dsp::simd::negate(t1), t1);
            new_msg.store(&c2v[e]);
            (old + new_msg).store(lane);
            for (std::uint32_t w = 0; w < W; ++w) {
              posterior[check_var_[e + w]] = lane[w];
            }
          }
          for (; e < e1; ++e) {
            const double old = v2c[e - e0];
            const int sign = old < 0.0 ? -sign_product : sign_product;
            const double new_msg = sign * a1;
            posterior[check_var_[e]] = old + new_msg;
            c2v[e] = new_msg;
          }
          {
            const double old = v2c[min_pos - e0];
            const int sign = old < 0.0 ? -sign_product : sign_product;
            const double new_msg = sign * a2;
            posterior[check_var_[min_pos]] = old + new_msg;
            c2v[min_pos] = new_msg;
          }
        }
      }
      if (syndrome_clean(posterior.data(), check_offset_, check_var_, m_)) {
        ok = true;
        ++iter;
        break;
      }
    }
  }

  result.parity_ok = ok;
  result.iterations = iter;
  result.info.resize(k_);
  for (std::size_t i = 0; i < k_; ++i) {
    result.info[i] = posterior[info_cols_[i]] < 0.0 ? 1 : 0;
  }
}

LdpcCode::DecodeResult LdpcCode::decode(std::span<const double> llrs,
                                        int max_iterations,
                                        double normalization) const {
  DecodeResult result;
  decode_into(llrs, max_iterations, normalization, result, tls_workspace());
  return result;
}

void LdpcCode::decode_batch_into(std::span<const double> llrs_soa,
                                 std::size_t lanes, int max_iterations,
                                 double normalization,
                                 std::span<DecodeResult> results,
                                 Workspace& ws) const {
  check(lanes > 0 && lanes <= 16 && results.size() == lanes,
        "decode_batch requires 1..16 lanes with one result per lane");
  check(llrs_soa.size() == n_ * lanes, "decode_batch LLR length mismatch");
  constexpr std::size_t W = dsp::simd::kWidth;
  if (!dsp::simd::vector_enabled() || !dsp::batch::vectorizable(lanes, W) ||
      lanes == 1) {
    // Remainder groups and scalar builds: extract each lane and run the
    // reference kernel — bitwise identical by construction.
    auto lane_lease = ws.rvec(n_);
    for (std::size_t l = 0; l < lanes; ++l) {
      dsp::batch::gather_lane(llrs_soa.data(), l, lanes,
                              std::span<double>(*lane_lease));
      decode_into(*lane_lease, max_iterations, normalization, results[l], ws);
    }
    return;
  }

  const obs::ScopedTimer timer(
      obs::kernel_histogram(obs::Kernel::kLdpcBatch));
  const obs::perf::ScopedSpan span("ldpc_batch");
  using dsp::simd::DVec;
  const std::size_t L = lanes;
  const std::size_t edges = check_var_.size();

  auto post_lease = ws.rvec(n_ * L);
  double* post = post_lease->data();
  for (std::size_t i = 0; i < llrs_soa.size(); ++i) post[i] = llrs_soa[i];

  // Per-lane syndrome over the lane-major posterior; bails on the first
  // unsatisfied check, like the contiguous helper.
  const auto lane_clean = [&](std::size_t l) {
    for (std::size_t c = 0; c < m_; ++c) {
      unsigned par = 0;
      for (std::uint32_t e = check_offset_[c]; e < check_offset_[c + 1]; ++e) {
        par ^= post[check_var_[e] * L + l] < 0.0 ? 1u : 0u;
      }
      if (par) return false;
    }
    return true;
  };

  std::array<bool, 16> done{};
  const auto snapshot = [&](std::size_t l, int iterations, bool ok) {
    DecodeResult& r = results[l];
    r.parity_ok = ok;
    r.iterations = iterations;
    r.info.resize(k_);
    for (std::size_t i = 0; i < k_; ++i) {
      r.info[i] = post[info_cols_[i] * L + l] < 0.0 ? 1 : 0;
    }
    done[l] = true;
  };

  std::size_t active = 0;
  for (std::size_t l = 0; l < L; ++l) {
    // Channel decisions already form a codeword — 0-iteration exit.
    if (lane_clean(l)) snapshot(l, 0, true); else ++active;
  }
  if (active == 0) return;

  auto c2v_lease = ws.rvec(edges * L);
  auto v2c_lease = ws.rvec(max_check_degree_ * L);
  double* c2v = c2v_lease->data();
  double* v2c = v2c_lease->data();
  std::fill(c2v, c2v + edges * L, 0.0);

  // Drain scratch: one lane's contiguous posterior + messages, finished
  // on the scalar reference kernel from bitwise-identical state.
  auto dpost_lease = ws.rvec(n_);
  auto dc2v_lease = ws.rvec(edges);
  auto dv2c_lease = ws.rvec(max_check_degree_);
  const auto drain_lane = [&](std::size_t l, int start_iter) {
    double* dpost = dpost_lease->data();
    double* dc2v = dc2v_lease->data();
    dsp::batch::gather_lane(post, l, L, std::span<double>(*dpost_lease));
    dsp::batch::gather_lane(c2v, l, L, std::span<double>(*dc2v_lease));
    int iter = start_iter;
    bool ok = false;
    for (; iter < max_iterations; ++iter) {
      for (std::size_t c = 0; c < m_; ++c) {
        scalar_check_update(check_var_.data(), check_offset_[c],
                            check_offset_[c + 1], normalization, dpost, dc2v,
                            dv2c_lease->data());
      }
      if (syndrome_clean(dpost, check_offset_, check_var_, m_)) {
        ok = true;
        ++iter;
        break;
      }
    }
    DecodeResult& r = results[l];
    r.parity_ok = ok;
    r.iterations = iter;
    r.info.resize(k_);
    for (std::size_t i = 0; i < k_; ++i) {
      r.info[i] = dpost[info_cols_[i]] < 0.0 ? 1 : 0;
    }
    done[l] = true;
  };

  const DVec normv = DVec::splat(normalization);
  const DVec zero = DVec::splat(0.0);
  const DVec pos1 = DVec::splat(1.0);
  const DVec neg1 = DVec::splat(-1.0);
  // Once at most this many lanes are still decoding, vector iterations
  // mostly push dead state around — extract and drain them instead.
  constexpr std::size_t kDrainAt = 2;

  for (int it = 0; it < max_iterations && active > 0; ++it) {
    if (active <= kDrainAt) {
      for (std::size_t l = 0; l < L; ++l) {
        if (!done[l]) drain_lane(l, it);
      }
      return;
    }
    for (std::size_t c = 0; c < m_; ++c) {
      const std::uint32_t e0 = check_offset_[c];
      const std::uint32_t deg = check_offset_[c + 1] - e0;
      for (std::size_t w = 0; w < L; w += W) {
        // The scalar reference's branch-free selections, a lane (trial)
        // per element: the two-minimum recurrence maps each ?: onto
        // select_gt, the sign parity accumulates as a ±1.0 product
        // (exact sign flips), and the one minimum edge is recognized by
        // mag == min1 instead of min_pos — ties make min2 == min1, so
        // a2 == a1 and the selected value still matches the reference.
        DVec min1 = DVec::splat(1e300);
        DVec min2 = DVec::splat(1e300);
        DVec pprod = pos1;
        for (std::uint32_t i = 0; i < deg; ++i) {
          const std::size_t v = check_var_[e0 + i];
          const DVec msg = DVec::load(&post[v * L + w]) -
                           DVec::load(&c2v[(e0 + i) * L + w]);
          msg.store(&v2c[i * L + w]);
          const DVec mag = dsp::simd::abs(msg);
          const DVec nmin1 = dsp::simd::select_gt(min1, mag, mag, min1);
          const DVec runner = dsp::simd::select_gt(min1, mag, min1, mag);
          min1 = nmin1;
          min2 = dsp::simd::select_gt(min2, runner, runner, min2);
          pprod = pprod * dsp::simd::select_gt(zero, msg, neg1, pos1);
        }
        const DVec a1 = min1 * normv;
        const DVec a2 = min2 * normv;
        for (std::uint32_t i = 0; i < deg; ++i) {
          const std::size_t v = check_var_[e0 + i];
          const DVec old = DVec::load(&v2c[i * L + w]);
          // abs(old) reproduces the pass-1 magnitude bit for bit (the
          // sign-bit clear is exact), so no magnitude buffer is kept.
          const DVec mag = dsp::simd::abs(old);
          const DVec base = dsp::simd::select_gt(mag, min1, a1, a2);
          const DVec sgn = dsp::simd::select_gt(zero, old, neg1, pos1);
          const DVec new_msg = base * sgn * pprod;
          new_msg.store(&c2v[(e0 + i) * L + w]);
          (old + new_msg).store(&post[v * L + w]);
        }
      }
    }
    for (std::size_t l = 0; l < L; ++l) {
      if (!done[l] && lane_clean(l)) {
        snapshot(l, it + 1, true);
        --active;
      }
    }
  }
  for (std::size_t l = 0; l < L; ++l) {
    if (!done[l]) snapshot(l, max_iterations, false);
  }
}

void LdpcCode::decode_batch_i16_into(std::span<const double> llrs_soa,
                                     std::size_t lanes, int max_iterations,
                                     double normalization, double scale,
                                     std::span<DecodeResult> results,
                                     Workspace& ws) const {
  const obs::ScopedTimer timer(
      obs::kernel_histogram(obs::Kernel::kLdpcQuant));
  const obs::perf::ScopedSpan span("ldpc_i16");
  check(lanes > 0 && lanes <= 16 && results.size() == lanes,
        "decode_batch_i16 requires 1..16 lanes with one result per lane");
  check(llrs_soa.size() == n_ * lanes, "decode_batch_i16 LLR length mismatch");
  using dsp::simd::I16Vec;
  constexpr std::size_t VW = dsp::simd::kI16Width;
  const std::size_t L = lanes;
  const std::size_t edges = check_var_.size();
  const std::int16_t norm_q = dsp::sat_i16(
      static_cast<std::int32_t>(std::lround(normalization * 32768.0)));

  auto post_lease = ws.i16vec(n_ * L);
  std::int16_t* post = post_lease->data();
  for (std::size_t i = 0; i < llrs_soa.size(); ++i) {
    post[i] = dsp::quantize_llr_i16(llrs_soa[i], scale, 127);
  }

  const auto lane_clean = [&](std::size_t l) {
    for (std::size_t c = 0; c < m_; ++c) {
      unsigned par = 0;
      for (std::uint32_t e = check_offset_[c]; e < check_offset_[c + 1]; ++e) {
        par ^= post[check_var_[e] * L + l] < 0 ? 1u : 0u;
      }
      if (par) return false;
    }
    return true;
  };

  std::array<bool, 16> done{};
  const auto snapshot = [&](std::size_t l, int iterations, bool ok) {
    DecodeResult& r = results[l];
    r.parity_ok = ok;
    r.iterations = iterations;
    r.info.resize(k_);
    for (std::size_t i = 0; i < k_; ++i) {
      r.info[i] = post[info_cols_[i] * L + l] < 0 ? 1 : 0;
    }
    done[l] = true;
  };

  std::size_t active = 0;
  for (std::size_t l = 0; l < L; ++l) {
    if (lane_clean(l)) snapshot(l, 0, true); else ++active;
  }
  if (active == 0) return;

  auto c2v_lease = ws.i16vec(edges * L);
  auto v2c_lease = ws.i16vec(max_check_degree_ * L);
  auto mag_lease = ws.i16vec(max_check_degree_ * L);
  std::int16_t* c2v = c2v_lease->data();
  std::int16_t* v2c = v2c_lease->data();
  std::int16_t* magb = mag_lease->data();
  std::fill(c2v, c2v + edges * L, std::int16_t{0});

  const bool use_vec = dsp::simd::vector_enabled() &&
                       dsp::batch::vectorizable(L, VW) && VW > 1;
  const I16Vec zero16 = I16Vec::splat(0);
  const I16Vec normq_v = I16Vec::splat(norm_q);

  for (int it = 0; it < max_iterations && active > 0; ++it) {
    for (std::size_t c = 0; c < m_; ++c) {
      const std::uint32_t e0 = check_offset_[c];
      const std::uint32_t deg = check_offset_[c + 1] - e0;
      if (use_vec) {
        for (std::size_t w = 0; w < L; w += VW) {
          I16Vec min1 = I16Vec::splat(32767);
          I16Vec min2 = min1;
          I16Vec par = zero16;  // all-ones lanes = odd negative count
          for (std::uint32_t i = 0; i < deg; ++i) {
            const std::size_t v = check_var_[e0 + i];
            const I16Vec msg =
                sat_sub(I16Vec::load(&post[v * L + w]),
                        I16Vec::load(&c2v[(e0 + i) * L + w]));
            msg.store(&v2c[i * L + w]);
            const I16Vec mag = sat_abs(msg);
            mag.store(&magb[i * L + w]);
            const I16Vec gt = cmp_gt(min1, mag);
            const I16Vec runner = blend(gt, min1, mag);
            min1 = blend(gt, mag, min1);
            min2 = blend(cmp_gt(min2, runner), runner, min2);
            par = bit_xor(par, cmp_gt(zero16, msg));
          }
          const I16Vec a1 = mulhrs(min1, normq_v);
          const I16Vec a2 = mulhrs(min2, normq_v);
          for (std::uint32_t i = 0; i < deg; ++i) {
            const std::size_t v = check_var_[e0 + i];
            const I16Vec old = I16Vec::load(&v2c[i * L + w]);
            const I16Vec mag = I16Vec::load(&magb[i * L + w]);
            const I16Vec base = blend(cmp_gt(mag, min1), a1, a2);
            // Negate-by-mask (a ^ m) - m: base is in [0, 32767], so the
            // subtraction cannot saturate and this is an exact ±base.
            const I16Vec m = bit_xor(cmp_gt(zero16, old), par);
            const I16Vec new_msg = sat_sub(bit_xor(base, m), m);
            new_msg.store(&c2v[(e0 + i) * L + w]);
            sat_add(old, new_msg).store(&post[v * L + w]);
          }
        }
      } else {
        // Scalar reference: the same saturating selections per lane, so
        // the quantized output is identical with vectors on or off.
        for (std::size_t l = 0; l < L; ++l) {
          if (done[l]) continue;  // dead state; skipping changes nothing
          std::int16_t min1 = 32767;
          std::int16_t min2 = 32767;
          unsigned par = 0;
          for (std::uint32_t i = 0; i < deg; ++i) {
            const std::size_t v = check_var_[e0 + i];
            const std::int16_t msg =
                dsp::sat_sub_i16(post[v * L + l], c2v[(e0 + i) * L + l]);
            v2c[i * L + l] = msg;
            const std::int16_t mag = dsp::sat_abs_i16(msg);
            magb[i * L + l] = mag;
            const bool gt = min1 > mag;
            const std::int16_t runner = gt ? min1 : mag;
            min1 = gt ? mag : min1;
            min2 = min2 > runner ? runner : min2;
            par ^= msg < 0 ? 1u : 0u;
          }
          const std::int16_t a1 = dsp::mulhrs_i16(min1, norm_q);
          const std::int16_t a2 = dsp::mulhrs_i16(min2, norm_q);
          for (std::uint32_t i = 0; i < deg; ++i) {
            const std::size_t v = check_var_[e0 + i];
            const std::int16_t old = v2c[i * L + l];
            const std::int16_t mag = magb[i * L + l];
            const std::int16_t base = mag > min1 ? a1 : a2;
            const unsigned neg = (old < 0 ? 1u : 0u) ^ par;
            const std::int16_t new_msg = neg ? dsp::sat_neg_i16(base) : base;
            c2v[(e0 + i) * L + l] = new_msg;
            post[v * L + l] = dsp::sat_add_i16(old, new_msg);
          }
        }
      }
    }
    for (std::size_t l = 0; l < L; ++l) {
      if (!done[l] && lane_clean(l)) {
        snapshot(l, it + 1, true);
        --active;
      }
    }
  }
  for (std::size_t l = 0; l < L; ++l) {
    if (!done[l]) snapshot(l, max_iterations, false);
  }
}

}  // namespace wlan::phy

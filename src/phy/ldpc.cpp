#include "phy/ldpc.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <unordered_set>

#include "common/check.h"
#include "common/rng.h"
#include "dsp/simd.h"
#include "obs/perf.h"
#include "obs/timer.h"
#include "phy/workspace.h"

namespace wlan::phy {
namespace {

// Dense GF(2) row as 64-bit words.
using Row = std::vector<std::uint64_t>;

bool get_bit(const Row& row, std::size_t c) {
  return (row[c / 64] >> (c % 64)) & 1u;
}

void set_bit(Row& row, std::size_t c) { row[c / 64] |= std::uint64_t{1} << (c % 64); }

void xor_rows(Row& dst, const Row& src) {
  for (std::size_t w = 0; w < dst.size(); ++w) dst[w] ^= src[w];
}

}  // namespace

LdpcCode::LdpcCode(std::size_t n, std::size_t k, std::uint64_t seed,
                   int column_weight)
    : n_(n), k_(k), m_(n - k) {
  check(n > k && k > 0, "LdpcCode requires 0 < k < n");
  check(column_weight >= 2 && static_cast<std::size_t>(column_weight) <= m_,
        "LdpcCode column weight infeasible");

  // Retry construction with successive seeds until the parity matrix has
  // full row rank (virtually always the first try for wc >= 3).
  for (std::uint64_t attempt = 0;; ++attempt) {
    Rng rng(seed + attempt * 0x9E37u);
    // --- Random regular construction, balancing check degrees and
    // avoiding 4-cycles (two variables sharing two checks) where possible.
    std::vector<std::vector<std::uint32_t>> var_checks(n);
    std::vector<std::uint32_t> degree(m_, 0);
    std::unordered_set<std::uint64_t> used_pairs;
    auto pair_key = [this](std::uint32_t a, std::uint32_t b) {
      if (a > b) std::swap(a, b);
      return static_cast<std::uint64_t>(a) * m_ + b;
    };
    for (std::size_t v = 0; v < n; ++v) {
      for (int e = 0; e < column_weight; ++e) {
        auto creates_4cycle = [&](std::uint32_t c) {
          for (const std::uint32_t prev : var_checks[v]) {
            if (used_pairs.contains(pair_key(c, prev))) return true;
          }
          return false;
        };
        // Two passes: first restrict to checks that keep girth > 4, then
        // relax if that leaves no candidate.
        std::vector<std::uint32_t> candidates;
        for (const bool avoid_cycles : {true, false}) {
          std::uint32_t best_deg = 0xFFFFFFFFu;
          for (std::size_t c = 0; c < m_; ++c) {
            const auto cc = static_cast<std::uint32_t>(c);
            if (std::find(var_checks[v].begin(), var_checks[v].end(), cc) !=
                var_checks[v].end()) {
              continue;
            }
            if (avoid_cycles && creates_4cycle(cc)) continue;
            if (degree[c] < best_deg) {
              best_deg = degree[c];
              candidates.clear();
            }
            if (degree[c] == best_deg) candidates.push_back(cc);
          }
          if (!candidates.empty()) break;
        }
        const std::uint32_t c = candidates[rng.uniform_int(candidates.size())];
        var_checks[v].push_back(c);
        ++degree[c];
      }
      for (std::size_t i = 0; i < var_checks[v].size(); ++i) {
        for (std::size_t j = i + 1; j < var_checks[v].size(); ++j) {
          used_pairs.insert(pair_key(var_checks[v][i], var_checks[v][j]));
        }
      }
    }

    // --- Dense copy for rank check / RREF. ---
    const std::size_t words = (n + 63) / 64;
    std::vector<Row> h(m_, Row(words, 0));
    for (std::size_t v = 0; v < n; ++v) {
      for (const std::uint32_t c : var_checks[v]) set_bit(h[c], v);
    }

    // RREF with pivot tracking.
    std::vector<std::int64_t> pivot_col_of_row(m_, -1);
    std::vector<bool> is_pivot_col(n, false);
    std::size_t row = 0;
    for (std::size_t col = 0; col < n && row < m_; ++col) {
      std::size_t sel = row;
      while (sel < m_ && !get_bit(h[sel], col)) ++sel;
      if (sel == m_) continue;
      std::swap(h[sel], h[row]);
      for (std::size_t r = 0; r < m_; ++r) {
        if (r != row && get_bit(h[r], col)) xor_rows(h[r], h[row]);
      }
      pivot_col_of_row[row] = static_cast<std::int64_t>(col);
      is_pivot_col[col] = true;
      ++row;
    }
    if (row < m_) continue;  // rank deficient; retry with a new seed

    // --- Extract encoder structure from the RREF. ---
    info_cols_.clear();
    parity_cols_.clear();
    parity_deps_.assign(m_, {});
    std::vector<std::uint32_t> info_index_of_col(n, 0xFFFFFFFFu);
    for (std::size_t c = 0; c < n; ++c) {
      if (!is_pivot_col[c]) {
        info_index_of_col[c] = static_cast<std::uint32_t>(info_cols_.size());
        info_cols_.push_back(static_cast<std::uint32_t>(c));
      }
    }
    check(info_cols_.size() == k_, "LdpcCode internal: info position count");
    for (std::size_t r = 0; r < m_; ++r) {
      parity_cols_.push_back(static_cast<std::uint32_t>(pivot_col_of_row[r]));
      for (std::size_t c = 0; c < n; ++c) {
        if (!is_pivot_col[c] && get_bit(h[r], c)) {
          parity_deps_[r].push_back(info_index_of_col[c]);
        }
      }
    }

    // --- Decoder adjacency (original sparse H, not the RREF), CSR. ---
    std::vector<std::uint32_t> check_degree(m_, 0);
    for (std::size_t v = 0; v < n; ++v) {
      for (const std::uint32_t c : var_checks[v]) ++check_degree[c];
    }
    check_offset_.assign(m_ + 1, 0);
    for (std::size_t c = 0; c < m_; ++c) {
      check_offset_[c + 1] = check_offset_[c] + check_degree[c];
      max_check_degree_ =
          std::max<std::size_t>(max_check_degree_, check_degree[c]);
    }
    check_var_.assign(check_offset_[m_], 0);
    std::vector<std::uint32_t> fill(check_offset_.begin(),
                                    check_offset_.end() - 1);
    for (std::size_t v = 0; v < n; ++v) {
      for (const std::uint32_t c : var_checks[v]) {
        check_var_[fill[c]++] = static_cast<std::uint32_t>(v);
      }
    }
    return;
  }
}

void LdpcCode::encode_into(std::span<const std::uint8_t> info,
                           Bits& codeword) const {
  check(info.size() == k_, "LdpcCode::encode info length mismatch");
  codeword.assign(n_, 0);
  for (std::size_t i = 0; i < k_; ++i) codeword[info_cols_[i]] = info[i] & 1u;
  for (std::size_t r = 0; r < m_; ++r) {
    std::uint8_t p = 0;
    for (const std::uint32_t idx : parity_deps_[r]) p ^= info[idx] & 1u;
    codeword[parity_cols_[r]] = p;
  }
}

Bits LdpcCode::encode(std::span<const std::uint8_t> info) const {
  Bits codeword;
  encode_into(info, codeword);
  return codeword;
}

bool LdpcCode::satisfies_parity(std::span<const std::uint8_t> codeword) const {
  check(codeword.size() == n_, "satisfies_parity length mismatch");
  for (std::size_t c = 0; c < m_; ++c) {
    std::uint8_t p = 0;
    for (std::uint32_t e = check_offset_[c]; e < check_offset_[c + 1]; ++e) {
      p ^= codeword[check_var_[e]] & 1u;
    }
    if (p) return false;
  }
  return true;
}

namespace {

// Syndrome over posterior signs, straight off the CSR arrays; bails on
// the first unsatisfied check (no hard-decision buffer materialized).
bool syndrome_clean(const RVec& posterior,
                    const std::vector<std::uint32_t>& offset,
                    const std::vector<std::uint32_t>& var, std::size_t m) {
  for (std::size_t c = 0; c < m; ++c) {
    unsigned p = 0;
    for (std::uint32_t e = offset[c]; e < offset[c + 1]; ++e) {
      p ^= posterior[var[e]] < 0.0 ? 1u : 0u;
    }
    if (p) return false;
  }
  return true;
}

}  // namespace

void LdpcCode::decode_into(std::span<const double> llrs, int max_iterations,
                           double normalization, DecodeResult& result,
                           Workspace& ws) const {
  const obs::ScopedTimer timer(
      obs::kernel_histogram(obs::Kernel::kLdpcDecode));
  const obs::perf::ScopedSpan span("ldpc_decode");
  check(llrs.size() == n_, "LdpcCode::decode LLR length mismatch");

  // Edge-indexed layered min-sum on the flat CSR structure: c2v[e] is
  // the check-to-variable message for edge e (same indexing as
  // check_var_), and posteriors are updated in place as each check
  // (layer) is processed, so later layers in the same iteration see
  // already-refined beliefs.
  auto posterior_lease = ws.rvec(n_);
  RVec& posterior = *posterior_lease;
  for (std::size_t i = 0; i < n_; ++i) posterior[i] = llrs[i];
  int iter = 0;
  bool ok = false;
  if (syndrome_clean(posterior, check_offset_, check_var_, m_)) {
    // Channel decisions already form a codeword — 0-iteration exit
    // (the common case well above the waterfall).
    ok = true;
  } else {
    auto c2v_lease = ws.rvec(check_var_.size());
    auto v2c_lease = ws.rvec(max_check_degree_);
    auto mag_lease = ws.rvec(max_check_degree_);
    auto lane_lease = ws.rvec(dsp::simd::kWidth);
    RVec& c2v = *c2v_lease;
    RVec& v2c = *v2c_lease;
    RVec& magbuf = *mag_lease;
    double* lane = lane_lease->data();
    for (auto& m : c2v) m = 0.0;
    // Plan-level dispatch: lanes pay off only when a check row fills
    // them a few times over. Low-rate codes (degree ~6) stay on the
    // branch-free scalar loop, which beats a 4-lane gather there; the
    // wide rows of high-rate codes (degree ≥ 2 widths) go vector.
    // Either path is bitwise identical, so the cutover is pure policy.
    const bool use_vec = dsp::simd::vector_enabled() &&
                         max_check_degree_ >= 2 * dsp::simd::kWidth;
    for (iter = 0; iter < max_iterations; ++iter) {
      for (std::size_t c = 0; c < m_; ++c) {
        const std::uint32_t e0 = check_offset_[c];
        const std::uint32_t e1 = check_offset_[c + 1];
        const std::uint32_t deg = e1 - e0;
        double min1 = 1e300;
        double min2 = 1e300;
        std::uint32_t min_pos = 0;
        int sign_product = 1;
        if (use_vec) {
          using dsp::simd::DVec;
          constexpr std::uint32_t W =
              static_cast<std::uint32_t>(dsp::simd::kWidth);
          // Message + magnitude sweep, a lane per edge. The subtraction,
          // sign-bit-clear |x|, and < 0 test are the scalar ops lanewise,
          // so v2c/magbuf hold bitwise-identical values. Sign parity
          // accumulates as an XOR of lane masks (XOR preserves popcount
          // parity), costing one popcount per check instead of one per
          // block.
          unsigned sign_mask = 0;
          std::uint32_t e = e0;
          for (; e + W <= e1; e += W) {
            const DVec msg = dsp::simd::gather(posterior.data(),
                                               &check_var_[e]) -
                             DVec::load(&c2v[e]);
            msg.store(&v2c[e - e0]);
            dsp::simd::abs(msg).store(&magbuf[e - e0]);
            sign_mask ^= dsp::simd::mask_lt(msg, DVec::splat(0.0));
          }
          unsigned neg = static_cast<unsigned>(std::popcount(sign_mask));
          for (; e < e1; ++e) {
            const double msg = posterior[check_var_[e]] - c2v[e];
            v2c[e - e0] = msg;
            magbuf[e - e0] = std::abs(msg);
            if (msg < 0.0) ++neg;
          }
          if (neg & 1u) sign_product = -1;
          // The running two-minimum scan is a serial recurrence; walk the
          // magnitude buffer in the scalar edge order (branch-free, same
          // selections as the reference loop) so min_pos ties resolve
          // identically.
          for (std::uint32_t i = 0; i < deg; ++i) {
            const double mag = magbuf[i];
            const bool below = mag < min1;
            const double runner_up = below ? min1 : mag;
            min_pos = below ? e0 + i : min_pos;
            min1 = below ? mag : min1;
            min2 = runner_up < min2 ? runner_up : min2;
          }
          // Writeback: every edge gets ±min1*norm (a splat), and the one
          // minimum edge is patched to ±min2*norm afterwards — its
          // posterior is recomputed as old + msg from scratch, not
          // incrementally, so the patch stays exact.
          const double a1 = min1 * normalization;
          const double a2 = min2 * normalization;
          const DVec t1 = DVec::splat(sign_product < 0 ? -a1 : a1);
          const DVec zero = DVec::splat(0.0);
          e = e0;
          for (; e + W <= e1; e += W) {
            const DVec old = DVec::load(&v2c[e - e0]);
            const DVec new_msg =
                dsp::simd::select_gt(zero, old, dsp::simd::negate(t1), t1);
            new_msg.store(&c2v[e]);
            (old + new_msg).store(lane);
            for (std::uint32_t w = 0; w < W; ++w) {
              posterior[check_var_[e + w]] = lane[w];
            }
          }
          for (; e < e1; ++e) {
            const double old = v2c[e - e0];
            const int sign = old < 0.0 ? -sign_product : sign_product;
            const double new_msg = sign * a1;
            posterior[check_var_[e]] = old + new_msg;
            c2v[e] = new_msg;
          }
          {
            const double old = v2c[min_pos - e0];
            const int sign = old < 0.0 ? -sign_product : sign_product;
            const double new_msg = sign * a2;
            posterior[check_var_[min_pos]] = old + new_msg;
            c2v[min_pos] = new_msg;
          }
        } else {
          // Branch-free reference loop: the two-minimum recurrence and
          // the sign handling are data-dependent coin flips, so they are
          // written as exact selections (min/max/cmov, sign-bit XOR for
          // the ±1 multiply) instead of branches. Every transformation
          // picks between the same IEEE values the branching form would
          // compute — bitwise identical, and what the vector path is
          // held to.
          unsigned neg = 0;
          for (std::uint32_t e = e0; e < e1; ++e) {
            const double msg = posterior[check_var_[e]] - c2v[e];
            v2c[e - e0] = msg;
            const double mag = std::abs(msg);
            const bool below = mag < min1;
            const double runner_up = below ? min1 : mag;
            min_pos = below ? e : min_pos;
            min1 = below ? mag : min1;
            min2 = runner_up < min2 ? runner_up : min2;
            neg += static_cast<unsigned>(msg < 0.0);
          }
          if (neg & 1u) sign_product = -1;
          const double a1 = min1 * normalization;
          const double a2 = min2 * normalization;
          const std::uint64_t product_bit =
              sign_product < 0 ? 0x8000000000000000ull : 0ull;
          for (std::uint32_t e = e0; e < e1; ++e) {
            const double mag = e == min_pos ? a2 : a1;
            const double old = v2c[e - e0];
            const std::uint64_t flip =
                (old < 0.0 ? 0x8000000000000000ull : 0ull) ^ product_bit;
            const double new_msg =
                std::bit_cast<double>(std::bit_cast<std::uint64_t>(mag) ^ flip);
            posterior[check_var_[e]] = old + new_msg;
            c2v[e] = new_msg;
          }
        }
      }
      if (syndrome_clean(posterior, check_offset_, check_var_, m_)) {
        ok = true;
        ++iter;
        break;
      }
    }
  }

  result.parity_ok = ok;
  result.iterations = iter;
  result.info.resize(k_);
  for (std::size_t i = 0; i < k_; ++i) {
    result.info[i] = posterior[info_cols_[i]] < 0.0 ? 1 : 0;
  }
}

LdpcCode::DecodeResult LdpcCode::decode(std::span<const double> llrs,
                                        int max_iterations,
                                        double normalization) const {
  DecodeResult result;
  decode_into(llrs, max_iterations, normalization, result, tls_workspace());
  return result;
}

}  // namespace wlan::phy

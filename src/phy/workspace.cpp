#include "phy/workspace.h"

#include "obs/metrics.h"

namespace wlan::phy {

namespace {

template <class T>
void publish_one(const detail::Pool<T>& pool, const char* name,
                 obs::Registry& registry) {
  registry
      .gauge("workspace.slots", {{std::string("pool"), std::string(name)}})
      .set(static_cast<double>(pool.slot_count()));
  registry
      .gauge("workspace.high_water", {{std::string("pool"), std::string(name)}})
      .set(static_cast<double>(pool.live_high_water()));
  registry
      .gauge("workspace.bytes", {{std::string("pool"), std::string(name)}})
      .set(static_cast<double>(pool.capacity_bytes()));
  registry
      .gauge("workspace.bytes_high_water",
             {{std::string("pool"), std::string(name)}})
      .set(static_cast<double>(pool.live_bytes_high_water()));
}

}  // namespace

void Workspace::publish(obs::Registry& registry) const {
  publish_one(cplx_, "cvec", registry);
  publish_one(real_, "rvec", registry);
  publish_one(byte_, "bits", registry);
  publish_one(u64_, "u64", registry);
  publish_one(i16_, "i16", registry);
}

std::size_t Workspace::capacity_bytes() const {
  return cplx_.capacity_bytes() + real_.capacity_bytes() +
         byte_.capacity_bytes() + u64_.capacity_bytes() + i16_.capacity_bytes();
}

Workspace& tls_workspace() {
  static thread_local Workspace ws;
  return ws;
}

}  // namespace wlan::phy

#include "phy/sync.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.h"
#include "dsp/fft.h"
#include "phy/ofdm.h"

namespace wlan::phy {
namespace {

constexpr std::size_t kStfPeriod = 16;
constexpr std::size_t kStfLen = 160;
constexpr double kTwoPi = 2.0 * std::numbers::pi;

// STF tone values at subcarriers -24..24 in steps of 4 (Table 17-9),
// scaled by sqrt(13/6).
struct StfTone {
  int tone;
  double sign;  // multiplies (1 + j)
};
constexpr std::array<StfTone, 12> kStfTones = {{{-24, 1.0},
                                                {-20, -1.0},
                                                {-16, 1.0},
                                                {-12, -1.0},
                                                {-8, -1.0},
                                                {-4, 1.0},
                                                {4, -1.0},
                                                {8, -1.0},
                                                {12, 1.0},
                                                {16, 1.0},
                                                {20, 1.0},
                                                {24, 1.0}}};

// The 64-sample body of one LTF symbol (for cross-correlation).
const CVec& ltf_body() {
  static const CVec body = [] {
    const CVec full = ofdm_ltf_waveform();  // CP16 + 64 + CP16 + 64
    return CVec(full.begin() + 16, full.begin() + 80);
  }();
  return body;
}

}  // namespace

CVec ofdm_stf_waveform() {
  CVec freq(OfdmPhy::kNfft, Cplx{0.0, 0.0});
  const double scale = std::sqrt(13.0 / 6.0);
  for (const StfTone& t : kStfTones) {
    freq[ofdm_tone_bin(t.tone)] = scale * t.sign * Cplx{1.0, 1.0};
  }
  const CVec period64 = dsp::ifft(std::move(freq));
  // The 64-sample IFFT is 16-periodic (tones are multiples of 4); emit
  // ten periods = 160 samples.
  CVec out;
  out.reserve(kStfLen);
  for (std::size_t i = 0; i < kStfLen; ++i) {
    out.push_back(period64[i % OfdmPhy::kNfft]);
  }
  return out;
}

void apply_cfo(CVec& samples, double cfo_norm, double initial_phase) {
  for (std::size_t n = 0; n < samples.size(); ++n) {
    const double arg = kTwoPi * cfo_norm * static_cast<double>(n) + initial_phase;
    samples[n] *= Cplx{std::cos(arg), std::sin(arg)};
  }
}

CVec prepend_stf(const CVec& ppdu) {
  CVec out = ofdm_stf_waveform();
  out.insert(out.end(), ppdu.begin(), ppdu.end());
  return out;
}

std::optional<SyncResult> detect_ppdu(std::span<const Cplx> samples,
                                      double detection_threshold) {
  check(detection_threshold > 0.0 && detection_threshold < 1.0,
        "detection threshold must be in (0,1)");
  const std::size_t window = 4 * kStfPeriod;  // correlation span
  if (samples.size() < kStfLen + 4 * OfdmPhy::kSymbolLen) return std::nullopt;

  // Schmidl-Cox style: normalized lag-16 autocorrelation plateau.
  std::size_t plateau_start = 0;
  std::size_t run = 0;
  bool detected = false;
  Cplx p_acc{0.0, 0.0};
  for (std::size_t d = 0; d + window + kStfPeriod < samples.size(); ++d) {
    Cplx p{0.0, 0.0};
    double r = 0.0;
    for (std::size_t i = 0; i < window; ++i) {
      p += samples[d + i] * std::conj(samples[d + i + kStfPeriod]);
      r += std::norm(samples[d + i + kStfPeriod]);
    }
    const double metric = r > 0.0 ? std::norm(p) / (r * r) : 0.0;
    if (metric > detection_threshold) {
      if (run == 0) {
        plateau_start = d;
        p_acc = Cplx{0.0, 0.0};
      }
      p_acc += p;
      ++run;
      if (run >= 2 * kStfPeriod) {
        detected = true;
        break;
      }
    } else {
      run = 0;
    }
  }
  if (!detected) return std::nullopt;

  // Coarse CFO from the accumulated lag-16 phase: the STF repeats every 16
  // samples, so arg = -2 pi f * 16.
  const double coarse_cfo =
      -std::arg(p_acc) / (kTwoPi * static_cast<double>(kStfPeriod));

  // Fine timing: cross-correlate a CFO-corrected slice with the known LTF
  // body. Search from the plateau start through the expected preamble.
  const std::size_t search_begin = plateau_start;
  const std::size_t search_len =
      std::min(samples.size() - search_begin,
               kStfLen + 3 * OfdmPhy::kSymbolLen);
  CVec slice(samples.begin() + static_cast<std::ptrdiff_t>(search_begin),
             samples.begin() + static_cast<std::ptrdiff_t>(search_begin + search_len));
  apply_cfo(slice, -coarse_cfo);

  const CVec& ref = ltf_body();
  double best_mag = 0.0;
  std::size_t best_pos = 0;
  std::vector<double> corr(slice.size() > ref.size()
                               ? slice.size() - ref.size() + 1
                               : 0);
  for (std::size_t k = 0; k < corr.size(); ++k) {
    Cplx acc{0.0, 0.0};
    for (std::size_t i = 0; i < ref.size(); ++i) {
      acc += slice[k + i] * std::conj(ref[i]);
    }
    corr[k] = std::abs(acc);
    if (corr[k] > best_mag) {
      best_mag = corr[k];
      best_pos = k;
    }
  }
  if (best_mag <= 0.0) return std::nullopt;
  // Two repetitions produce two peaks one symbol (80 samples) apart; lock
  // to the first.
  if (best_pos >= OfdmPhy::kSymbolLen &&
      corr[best_pos - OfdmPhy::kSymbolLen] > 0.9 * best_mag) {
    best_pos -= OfdmPhy::kSymbolLen;
  }
  // The peak marks the first LTF body; the LTF (with its CP) starts 16
  // samples earlier.
  if (best_pos < OfdmPhy::kCpLen) return std::nullopt;
  const std::size_t ltf_start = search_begin + best_pos - OfdmPhy::kCpLen;

  // Fine CFO from the lag-64 correlation between the two LTF bodies.
  double fine_cfo = 0.0;
  {
    const std::size_t first = search_begin + best_pos;
    if (first + 2 * OfdmPhy::kNfft + OfdmPhy::kCpLen <= samples.size()) {
      Cplx acc{0.0, 0.0};
      for (std::size_t i = 0; i < OfdmPhy::kNfft; ++i) {
        // Use the CFO-corrected slice for the residual estimate.
        const std::size_t a = best_pos + i;
        const std::size_t b = a + OfdmPhy::kNfft + OfdmPhy::kCpLen;
        if (b < slice.size()) acc += slice[a] * std::conj(slice[b]);
      }
      fine_cfo = -std::arg(acc) /
                 (kTwoPi * static_cast<double>(OfdmPhy::kNfft + OfdmPhy::kCpLen));
    }
  }

  SyncResult result;
  result.ltf_start = ltf_start;
  result.cfo_norm = coarse_cfo + fine_cfo;
  return result;
}

}  // namespace wlan::phy

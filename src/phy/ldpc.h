// Low-density parity-check code with belief-propagation decoding.
//
// The paper names LDPC as an 802.11n range-extending option. We build a
// pseudo-random regular-(wc) Gallager-style code (deterministic given a
// seed) with 802.11n-like block lengths (648/1296/1944) and rates, encoded
// via an RREF-derived dense parity map and decoded with normalized
// min-sum. This reproduces the *coding-gain* behaviour of the 11n codes
// without transcribing the standard's QC base matrices.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"

namespace wlan::phy {

class Workspace;

/// A binary LDPC code of length n with k information bits.
class LdpcCode {
 public:
  /// Constructs a regular column-weight-`column_weight` code. Deterministic
  /// for a given (n, k, seed). Throws ContractError on infeasible sizes.
  LdpcCode(std::size_t n, std::size_t k, std::uint64_t seed = 1,
           int column_weight = 3);

  std::size_t block_length() const { return n_; }
  std::size_t info_length() const { return k_; }
  double rate() const { return static_cast<double>(k_) / static_cast<double>(n_); }

  /// Systematically encodes k info bits into an n-bit codeword (info bits
  /// appear at the code's info positions; use the codeword as-is).
  Bits encode(std::span<const std::uint8_t> info) const;

  /// As encode, resizing `codeword` (allocation-free once warm).
  void encode_into(std::span<const std::uint8_t> info, Bits& codeword) const;

  /// Result of a decode attempt.
  struct DecodeResult {
    Bits info;           ///< recovered information bits
    bool parity_ok;      ///< all checks satisfied at exit
    int iterations;      ///< BP iterations used
  };

  /// Layered normalized min-sum decoding from channel LLRs (positive =
  /// bit 0). Check nodes update posteriors in place as each layer
  /// (check) is processed; a syndrome check after every iteration —
  /// and once on the raw channel decisions before the first — exits
  /// early the moment all parity checks are satisfied, so clean
  /// high-SNR blocks cost 0 iterations and typical working-point
  /// blocks far fewer than `max_iterations`.
  DecodeResult decode(std::span<const double> llrs, int max_iterations = 40,
                      double normalization = 0.8) const;

  /// As decode, leasing scratch (posterior, messages) from `ws` and
  /// reusing `result.info`'s capacity — allocation-free once warm. Uses
  /// the vectorized check-node update when the SIMD build is active;
  /// bitwise identical to the scalar path either way.
  void decode_into(std::span<const double> llrs, int max_iterations,
                   double normalization, DecodeResult& result,
                   Workspace& ws) const;

  /// Trial-batched layered decode over a lane-major LLR block
  /// (dsp/batch.h): llrs_soa[i * lanes + l] is variable i of lane l, so
  /// llrs_soa.size() == n * lanes, and results.size() == lanes (at most
  /// 16). Bitwise identical to decode_into on each lane: lanes run the
  /// check updates in lockstep, a lane's result is snapshotted the
  /// moment its own syndrome comes clean (its later in-lane evolution is
  /// dead state), and once at most two lanes remain active they are
  /// extracted and finished on the scalar reference kernel. Lane counts
  /// that are not a multiple of the SIMD width decode lane by lane on
  /// the scalar kernel.
  void decode_batch_into(std::span<const double> llrs_soa, std::size_t lanes,
                         int max_iterations, double normalization,
                         std::span<DecodeResult> results, Workspace& ws) const;

  /// Quantized batched decode: channel LLRs are scaled by `scale`,
  /// rounded, and clamped to ±127 (int8 range inside int16 lanes);
  /// messages and posteriors then run saturating int16 min-sum with the
  /// normalization factor applied as a Q15 rounding multiply. Identical
  /// integer semantics on the vector and scalar paths make the output
  /// deterministic across ISAs and lane counts, but it is NOT bitwise
  /// against the double path — callers gate it on PER deltas
  /// (bench_diff). `lanes` at most 16.
  void decode_batch_i16_into(std::span<const double> llrs_soa,
                             std::size_t lanes, int max_iterations,
                             double normalization, double scale,
                             std::span<DecodeResult> results,
                             Workspace& ws) const;

  /// True when the given full codeword satisfies every parity check
  /// (exposed for tests and property checks).
  bool satisfies_parity(std::span<const std::uint8_t> codeword) const;

 private:
  std::size_t n_;
  std::size_t k_;
  std::size_t m_;  // number of (independent) parity checks

  // Sparse structure in CSR form: check c touches variables
  // check_var_[check_offset_[c] .. check_offset_[c+1]). Flat arrays keep
  // the decoder's edge walk on two contiguous buffers instead of a
  // vector-of-vectors pointer chase.
  std::vector<std::uint32_t> check_offset_;  // m_ + 1 entries
  std::vector<std::uint32_t> check_var_;     // one entry per edge
  std::size_t max_check_degree_ = 0;

  // Encoding: parity bit order and dependence. parity_cols_[i] is the
  // column holding parity bit i; each parity bit is the XOR of the info
  // positions listed in parity_deps_[i] (indices into info_cols_).
  std::vector<std::uint32_t> info_cols_;
  std::vector<std::uint32_t> parity_cols_;
  std::vector<std::vector<std::uint32_t>> parity_deps_;

  // Word-packed transpose of parity_deps_ for the encoder hot path:
  // parity_masks_ holds, for each info index i, the m_-bit column of
  // parities depending on i, packed into parity_words_ 64-bit words.
  // XORing whole columns per set info bit computes the same GF(2) sums
  // as the row walk, bit for bit.
  std::size_t parity_words_ = 0;
  std::vector<std::uint64_t> parity_masks_;  // k_ * parity_words_ entries
};

}  // namespace wlan::phy

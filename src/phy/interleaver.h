// 802.11a/g/n block interleaver (two-permutation, per OFDM symbol).
//
// The first permutation spreads adjacent coded bits across non-adjacent
// subcarriers; the second alternates bits between more and less
// significant constellation positions. 802.11a uses 16 columns; 802.11n
// uses 13 (20 MHz) or 18 (40 MHz).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.h"

namespace wlan::phy {

/// Interleaving table for one OFDM symbol.
class Interleaver {
 public:
  /// n_cbps: coded bits per symbol (per stream); n_bpsc: coded bits per
  /// subcarrier; n_col: interleaver columns (16 for 11a, 13/18 for 11n).
  Interleaver(std::size_t n_cbps, std::size_t n_bpsc, std::size_t n_col = 16);

  std::size_t block_size() const { return table_.size(); }

  /// Interleaves one symbol's worth of bits. Size must equal block_size().
  Bits interleave(std::span<const std::uint8_t> bits) const;

  /// As interleave, writing into `out` (same size; must not alias `bits`).
  void interleave_to(std::span<const std::uint8_t> bits,
                     std::span<std::uint8_t> out) const;

  /// De-interleaves one symbol's worth of LLRs.
  RVec deinterleave(std::span<const double> llrs) const;

  /// As deinterleave, writing into `out` (same size; must not alias).
  void deinterleave_to(std::span<const double> llrs,
                       std::span<double> out) const;

 private:
  std::vector<std::size_t> table_;  // table_[k] = output index of input bit k
};

}  // namespace wlan::phy

// Gray-mapped constellations used by 802.11a/g/n: BPSK, QPSK, 16-QAM,
// 64-QAM, with a max-log LLR soft demapper.
//
// The Gray mapping is separable (independent I/Q axes), which both matches
// the standard and lets the demapper work per axis in O(levels).
#pragma once

#include <cstddef>
#include <span>

#include "common/types.h"

namespace wlan::phy {

enum class Modulation { kBpsk, kQpsk, kQam16, kQam64 };

/// Coded bits carried per modulated symbol (N_BPSC).
std::size_t bits_per_symbol(Modulation mod);

/// Maps bits to unit-average-energy constellation points into `out`,
/// which must hold bits.size() / bits_per_symbol(mod) symbols.
void modulate_to(std::span<const std::uint8_t> bits, Modulation mod,
                 std::span<Cplx> out);

/// As modulate_to, resizing `out` (capacity-retaining; allocation-free
/// once warm).
void modulate_into(std::span<const std::uint8_t> bits, Modulation mod,
                   CVec& out);

/// Maps bits to unit-average-energy constellation points. Size must be a
/// multiple of bits_per_symbol(mod).
CVec modulate(std::span<const std::uint8_t> bits, Modulation mod);

/// Hard-decision demapping back to bits.
Bits demodulate_hard(std::span<const Cplx> symbols, Modulation mod);

/// Max-log LLRs for each coded bit, written into `out` (which must hold
/// symbols.size() * bits_per_symbol(mod) values). `noise_variance` is the
/// complex noise variance per symbol (E[|n|^2]); per-symbol values allow
/// per-subcarrier CSI weighting. Positive LLR means bit 0 is more likely.
/// Vectorized lane-per-symbol when the SIMD build is active; bitwise
/// identical to the scalar path either way.
void demodulate_llr_to(std::span<const Cplx> symbols, Modulation mod,
                       std::span<const double> noise_variance,
                       std::span<double> out);

/// Shared-noise-variance variant of demodulate_llr_to.
void demodulate_llr_to(std::span<const Cplx> symbols, Modulation mod,
                       double noise_variance, std::span<double> out);

/// As demodulate_llr_to, resizing `out` (allocation-free once warm).
void demodulate_llr_into(std::span<const Cplx> symbols, Modulation mod,
                         std::span<const double> noise_variance, RVec& out);

/// Allocating wrappers over demodulate_llr_to.
RVec demodulate_llr(std::span<const Cplx> symbols, Modulation mod,
                    std::span<const double> noise_variance);

/// Convenience overload with one shared noise variance.
RVec demodulate_llr(std::span<const Cplx> symbols, Modulation mod,
                    double noise_variance);

/// Nearest constellation point to an observation (hard slicing, used by
/// decision-directed receivers such as SIC).
Cplx slice_symbol(Cplx observation, Modulation mod);

}  // namespace wlan::phy

// Gray-mapped constellations used by 802.11a/g/n: BPSK, QPSK, 16-QAM,
// 64-QAM, with a max-log LLR soft demapper.
//
// The Gray mapping is separable (independent I/Q axes), which both matches
// the standard and lets the demapper work per axis in O(levels).
#pragma once

#include <cstddef>
#include <span>

#include "common/types.h"

namespace wlan::phy {

enum class Modulation { kBpsk, kQpsk, kQam16, kQam64 };

/// Coded bits carried per modulated symbol (N_BPSC).
std::size_t bits_per_symbol(Modulation mod);

/// Maps bits to unit-average-energy constellation points. Size must be a
/// multiple of bits_per_symbol(mod).
CVec modulate(std::span<const std::uint8_t> bits, Modulation mod);

/// Hard-decision demapping back to bits.
Bits demodulate_hard(std::span<const Cplx> symbols, Modulation mod);

/// Max-log LLRs for each coded bit. `noise_variance` is the complex noise
/// variance per symbol (E[|n|^2]); per-symbol values allow per-subcarrier
/// CSI weighting. Positive LLR means bit 0 is more likely.
RVec demodulate_llr(std::span<const Cplx> symbols, Modulation mod,
                    std::span<const double> noise_variance);

/// Convenience overload with one shared noise variance.
RVec demodulate_llr(std::span<const Cplx> symbols, Modulation mod,
                    double noise_variance);

/// Nearest constellation point to an observation (hard slicing, used by
/// decision-directed receivers such as SIC).
Cplx slice_symbol(Cplx observation, Modulation mod);

}  // namespace wlan::phy

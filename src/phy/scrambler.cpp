#include "phy/scrambler.h"

#include "common/check.h"

namespace wlan::phy {

void scramble_to(std::span<const std::uint8_t> bits, std::uint8_t seed,
                 std::span<std::uint8_t> out) {
  check((seed & 0x7Fu) != 0, "scrambler seed must be a nonzero 7-bit value");
  check(out.size() == bits.size(), "scramble output size mismatch");
  std::uint8_t state = seed & 0x7Fu;  // bits x1..x7 in LSBs
  for (std::size_t i = 0; i < bits.size(); ++i) {
    // Feedback bit = x7 xor x4 (bit 6 and bit 3 of the register).
    const std::uint8_t fb =
        static_cast<std::uint8_t>(((state >> 6) ^ (state >> 3)) & 1u);
    out[i] = static_cast<std::uint8_t>((bits[i] ^ fb) & 1u);
    state = static_cast<std::uint8_t>(((state << 1) | fb) & 0x7Fu);
  }
}

Bits scramble(std::span<const std::uint8_t> bits, std::uint8_t seed) {
  Bits out(bits.size());
  scramble_to(bits, seed, out);
  return out;
}

}  // namespace wlan::phy

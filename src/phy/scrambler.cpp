#include "phy/scrambler.h"

#include "common/check.h"

namespace wlan::phy {

Bits scramble(std::span<const std::uint8_t> bits, std::uint8_t seed) {
  check((seed & 0x7Fu) != 0, "scrambler seed must be a nonzero 7-bit value");
  std::uint8_t state = seed & 0x7Fu;  // bits x1..x7 in LSBs
  Bits out(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    // Feedback bit = x7 xor x4 (bit 6 and bit 3 of the register).
    const std::uint8_t fb =
        static_cast<std::uint8_t>(((state >> 6) ^ (state >> 3)) & 1u);
    out[i] = static_cast<std::uint8_t>((bits[i] ^ fb) & 1u);
    state = static_cast<std::uint8_t>(((state << 1) | fb) & 0x7Fu);
  }
  return out;
}

}  // namespace wlan::phy

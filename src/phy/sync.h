// Packet acquisition for the OFDM PHY: short training field generation,
// Schmidl-Cox style detection, carrier-frequency-offset estimation and
// correction, and LTF-based fine timing.
//
// The link simulators elsewhere assume ideal synchronization (standard
// PHY-evaluation practice); this module implements the acquisition chain
// so that assumption is backed by code: an 802.11a PPDU with a random
// start offset and oscillator error can be found, corrected, and decoded.
#pragma once

#include <optional>
#include <span>

#include "common/types.h"

namespace wlan::phy {

/// The 160-sample 802.11a short training field (ten repetitions of a
/// 16-sample pattern built from 12 pilot tones at indices +-4k).
CVec ofdm_stf_waveform();

/// Applies a carrier frequency offset of `cfo_norm` cycles per sample
/// (CFO_Hz / sample_rate) in place.
void apply_cfo(CVec& samples, double cfo_norm, double initial_phase = 0.0);

/// Result of packet acquisition.
struct SyncResult {
  std::size_t ltf_start = 0;  ///< sample index where the LTF begins
  double cfo_norm = 0.0;      ///< estimated CFO, cycles/sample
};

/// Detects an 802.11a preamble: finds the STF by its 16-sample
/// periodicity, estimates coarse CFO from the STF autocorrelation, then
/// refines timing with an LTF cross-correlation and CFO with the LTF's
/// 64-sample lag. Returns nullopt when no plateau clears the threshold.
std::optional<SyncResult> detect_ppdu(std::span<const Cplx> samples,
                                      double detection_threshold = 0.5);

/// Convenience: prepends an STF to a PPDU waveform (making it
/// acquirable), as the transmitter would.
CVec prepend_stf(const CVec& ppdu);

}  // namespace wlan::phy

// 802.11-1997 FHSS PHY: 2- and 4-level GFSK at 1 Mchip/s, hopping over
// 79 1-MHz channels.
//
// Paper: "Both direct-sequence (DSSS) and frequency hopping (FHSS) forms
// of spread spectrum were standardized as alternative means of complying
// with the mandated 10 dB processing gain requirement." FHSS achieves its
// robustness by hopping away from a narrowband interferer rather than by
// despreading over it: a jammer parked on one channel corrupts only the
// hops that land there.
//
// The modem is simulated at baseband per hop: GFSK symbols (frequency
// deviations), noncoherent discriminator detection, and a deterministic
// pseudo-random hop pattern over the 79 channels. An interferer is
// modeled per channel.
#pragma once

#include <cstdint>
#include <span>

#include "common/rng.h"
#include "common/types.h"

namespace wlan::phy {

/// FHSS data rates: 1 Mbps (2GFSK) and 2 Mbps (4GFSK).
enum class FhssRate { k1Mbps, k2Mbps };

std::size_t fhss_bits_per_symbol(FhssRate rate);

/// Number of hop channels in the US/ETSI band plan.
inline constexpr std::size_t kFhssChannels = 79;

/// Deterministic 802.11-style hop sequence: ch(i) = (base + i * 7) % 79
/// visits every channel (7 and 79 are coprime), with adjacent hops at
/// least 6 channels apart as the standard requires.
std::size_t fhss_hop_channel(std::size_t hop_index, std::size_t base = 0);

/// One-link FHSS modem with per-hop GFSK modulation.
class FhssModem {
 public:
  struct Config {
    FhssRate rate = FhssRate::k1Mbps;
    std::size_t samples_per_symbol = 8;  ///< oversampling per GFSK symbol
    std::size_t symbols_per_hop = 100;   ///< dwell length in symbols
    std::size_t hop_base = 0;            ///< hop-sequence offset
    double modulation_index = 0.32;      ///< GFSK deviation (h)
  };

  explicit FhssModem(const Config& config);

  const Config& config() const { return config_; }

  /// Modulates bits into per-hop baseband waveforms. Hop k of the result
  /// is transmitted on channel fhss_hop_channel(k, hop_base).
  std::vector<CVec> modulate(std::span<const std::uint8_t> bits) const;

  /// Noncoherent discriminator demodulation of the hop waveforms.
  Bits demodulate(std::span<const CVec> hops) const;

  /// Number of hops needed for a bit count.
  std::size_t hops_for_bits(std::size_t n_bits) const;

 private:
  Config config_;
};

/// Monte-Carlo FHSS link with AWGN and an optional single-channel jammer:
/// hops that land on `jammed_channel` receive interference of power
/// `jam_power` (relative to unit signal power). Returns the bit error
/// count out of `bits.size()`.
struct FhssLinkResult {
  std::size_t bits = 0;
  std::size_t bit_errors = 0;
  std::size_t jammed_hops = 0;
  std::size_t total_hops = 0;
  double ber() const {
    return bits ? static_cast<double>(bit_errors) / static_cast<double>(bits)
                : 0.0;
  }
};

FhssLinkResult run_fhss_link(const FhssModem::Config& config,
                             std::size_t n_bits, double snr_db, Rng& rng,
                             int jammed_channel = -1, double jam_power = 0.0);

}  // namespace wlan::phy

#include "phy/dsss.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace wlan::phy {
namespace {

constexpr double kPi = std::numbers::pi;

// Gray DQPSK phase increments for dibits (b0, b1):
// 00 -> 0, 01 -> pi/2, 11 -> pi, 10 -> 3pi/2.
double dqpsk_phase(std::uint8_t b0, std::uint8_t b1) {
  const int pattern = (b0 << 1) | b1;
  switch (pattern) {
    case 0b00: return 0.0;
    case 0b01: return kPi / 2.0;
    case 0b11: return kPi;
    default: return 3.0 * kPi / 2.0;  // 0b10
  }
}

void dqpsk_bits(double phase, std::uint8_t* b0, std::uint8_t* b1) {
  // Quantize to the nearest multiple of pi/2 and invert the Gray map.
  double p = std::fmod(phase, 2.0 * kPi);
  if (p < 0.0) p += 2.0 * kPi;
  const int quadrant = static_cast<int>(std::floor(p / (kPi / 2.0) + 0.5)) % 4;
  switch (quadrant) {
    case 0: *b0 = 0; *b1 = 0; break;
    case 1: *b0 = 0; *b1 = 1; break;
    case 2: *b0 = 1; *b1 = 1; break;
    default: *b0 = 1; *b1 = 0; break;
  }
}

}  // namespace

std::size_t dsss_bits_per_symbol(DsssRate rate) {
  return rate == DsssRate::k1Mbps ? 1 : 2;
}

DsssModem::DsssModem(const Config& config) : config_(config) {}

std::size_t DsssModem::chips_per_symbol() const {
  return config_.spread ? kBarker11.size() : 1;
}

CVec DsssModem::modulate(std::span<const std::uint8_t> bits) const {
  CVec out;
  modulate_into(bits, out);
  return out;
}

void DsssModem::modulate_into(std::span<const std::uint8_t> bits,
                              CVec& out) const {
  const std::size_t bps = dsss_bits_per_symbol(config_.rate);
  check(bits.size() % bps == 0, "DSSS modulate: bit count not a symbol multiple");
  const std::size_t n_symbols = bits.size() / bps;
  const std::size_t cps = chips_per_symbol();

  out.resize((n_symbols + 1) * cps);
  double phase = 0.0;  // reference symbol phase
  std::size_t pos = 0;

  auto emit_symbol = [&](double ph) {
    const Cplx rot{std::cos(ph), std::sin(ph)};
    if (config_.spread) {
      for (const double chip : kBarker11) out[pos++] = rot * chip;
    } else {
      out[pos++] = rot;
    }
  };

  emit_symbol(phase);  // reference
  for (std::size_t s = 0; s < n_symbols; ++s) {
    if (config_.rate == DsssRate::k1Mbps) {
      phase += bits[s] ? kPi : 0.0;  // DBPSK
    } else {
      phase += dqpsk_phase(bits[2 * s], bits[2 * s + 1]);
    }
    emit_symbol(phase);
  }
}

Bits DsssModem::demodulate(std::span<const Cplx> chips) const {
  Bits bits;
  demodulate_into(chips, bits);
  return bits;
}

void DsssModem::demodulate_into(std::span<const Cplx> chips, Bits& out) const {
  const std::size_t cps = chips_per_symbol();
  check(chips.size() % cps == 0 && chips.size() >= 2 * cps,
        "DSSS demodulate: waveform layout mismatch");
  const std::size_t n_symbols = chips.size() / cps - 1;
  const std::size_t bps = dsss_bits_per_symbol(config_.rate);

  // Despread each symbol window against the Barker sequence.
  auto despread = [&](std::size_t symbol) {
    Cplx acc{0.0, 0.0};
    for (std::size_t i = 0; i < cps; ++i) {
      const double ref = config_.spread ? kBarker11[i] : 1.0;
      acc += chips[symbol * cps + i] * ref;
    }
    return acc;
  };

  out.resize(n_symbols * bps);
  Cplx prev = despread(0);
  for (std::size_t s = 0; s < n_symbols; ++s) {
    const Cplx cur = despread(s + 1);
    const Cplx d = cur * std::conj(prev);
    if (config_.rate == DsssRate::k1Mbps) {
      out[s] = d.real() < 0.0 ? 1 : 0;
    } else {
      dqpsk_bits(std::arg(d), &out[2 * s], &out[2 * s + 1]);
    }
    prev = cur;
  }
}

}  // namespace wlan::phy

// 802.11 convolutional code: K = 7, generators 133/171 (octal), with the
// standard puncturing patterns for rates 2/3, 3/4, and (802.11n) 5/6, and
// a soft-decision Viterbi decoder.
#pragma once

#include <cstdint>
#include <span>

#include "common/types.h"

namespace wlan::phy {

class Workspace;

/// Code rate after puncturing the mother rate-1/2 code.
enum class CodeRate { kR12, kR23, kR34, kR56 };

/// Numerator/denominator of a code rate.
double code_rate_value(CodeRate rate);

/// Encodes `bits` with the rate-1/2 K=7 code (no tail appended; callers
/// append 6 zero tail bits themselves, as 802.11 does). Output has
/// 2 * bits.size() coded bits, ordered A0 B0 A1 B1 ...
Bits convolutional_encode(std::span<const std::uint8_t> bits);

/// As convolutional_encode, resizing `out` (allocation-free once warm).
void convolutional_encode_into(std::span<const std::uint8_t> bits, Bits& out);

/// Applies the 802.11 puncturing pattern for `rate` to a rate-1/2 coded
/// sequence (A/B interleaved).
Bits puncture(std::span<const std::uint8_t> coded, CodeRate rate);

/// As puncture, resizing `out` (allocation-free once warm).
void puncture_into(std::span<const std::uint8_t> coded, CodeRate rate,
                   Bits& out);

/// Inserts zero-LLR erasures at punctured positions, restoring the
/// rate-1/2 lattice for the decoder. `n_info_bits` is the number of
/// information bits the sequence encodes (so output size is known).
RVec depuncture(std::span<const double> llrs, CodeRate rate,
                std::size_t n_info_bits);

/// As depuncture, resizing `out` (allocation-free once warm).
void depuncture_into(std::span<const double> llrs, CodeRate rate,
                     std::size_t n_info_bits, RVec& out);

/// Number of coded bits produced for n_info_bits at `rate`
/// (post-puncturing).
std::size_t coded_length(std::size_t n_info_bits, CodeRate rate);

/// Soft-decision Viterbi decoder for the rate-1/2 lattice.
///
/// `llrs` holds one LLR per coded bit (positive = bit 0 more likely),
/// length 2 * n_info_bits. When `terminated` is true the encoder is
/// assumed to have been driven back to state 0 by tail bits included in
/// the info sequence (the decoder then forces the final state).
Bits viterbi_decode(std::span<const double> llrs, bool terminated = true);

/// As viterbi_decode, leasing scratch (survivor masks) from `ws` and
/// resizing `decoded` — allocation-free once warm. Uses the vectorized
/// add-compare-select sweep when the SIMD build is active; bitwise
/// identical to the scalar path either way.
void viterbi_decode_into(std::span<const double> llrs, bool terminated,
                         Bits& decoded, Workspace& ws);

/// Convenience: hard-decision decode (bits -> ±1 LLRs).
Bits viterbi_decode_hard(std::span<const std::uint8_t> coded_bits,
                         bool terminated = true);

/// Lane-major batched depuncture (dsp/batch.h): lane_llrs[l] holds lane
/// l's post-puncture LLR stream (each exactly coded_length(n_info_bits,
/// rate) long); out_soa is resized to 2 * n_info_bits * lanes with
/// out_soa[i * lanes + l] = coded bit i of lane l and zero-LLR erasures
/// at punctured positions.
void depuncture_batch_into(std::span<const std::span<const double>> lane_llrs,
                           CodeRate rate, std::size_t n_info_bits,
                           RVec& out_soa);

/// Trial-batched soft Viterbi over a lane-major LLR block (dsp/batch.h):
/// llrs_soa[i * lanes + l] is coded bit i of lane l, so llrs_soa.size()
/// == 2 * n_steps * lanes, with `lanes` at most 16. decoded_soa is
/// resized to n_steps * lanes, lane-major: decoded_soa[t * lanes + l]
/// is decision t of lane l. Bitwise identical to running
/// viterbi_decode_into on each lane: the vector sweep engages when
/// `lanes` is a multiple of the SIMD width, and any other count
/// extracts each lane and runs the scalar kernel.
void viterbi_decode_batch_into(std::span<const double> llrs_soa,
                               std::size_t lanes, bool terminated,
                               Bits& decoded_soa, Workspace& ws);

/// Quantized batched Viterbi: LLRs are scaled by `scale`, rounded to
/// nearest, and clamped to ±127 (int8 range inside int16 lanes) before
/// a saturating int16 add-compare-select sweep, renormalized every 64
/// steps by the per-lane running maximum. Identical integer semantics
/// on the vector and scalar paths make the output deterministic across
/// ISAs and lane counts, but it is NOT bitwise against the double path
/// — callers gate it on PER deltas (bench_diff), not equality. `lanes`
/// at most 16; the vector sweep engages when `lanes` is a multiple of
/// the int16 SIMD width.
void viterbi_decode_batch_i16_into(std::span<const double> llrs_soa,
                                   std::size_t lanes, bool terminated,
                                   double scale, Bits& decoded_soa,
                                   Workspace& ws);

}  // namespace wlan::phy

#include "phy/plcp.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/bits.h"
#include "common/check.h"
#include "common/crc.h"
#include "phy/convolutional.h"
#include "phy/dsss.h"
#include "phy/interleaver.h"
#include "phy/scrambler.h"

namespace wlan::phy {
namespace {

// RATE codes of the 802.11a SIGNAL field (Table 17-6), LSB first on air.
constexpr std::array<std::uint8_t, 8> kRateCodes = {
    0b1101,  // 6
    0b1111,  // 9
    0b0101,  // 12
    0b0111,  // 18
    0b1001,  // 24
    0b1011,  // 36
    0b0001,  // 48
    0b0011,  // 54
};

constexpr std::size_t kSignalBits = 24;

}  // namespace

Bits encode_signal_field(OfdmMcs mcs, std::size_t length_bytes) {
  check(length_bytes > 0 && length_bytes < 4096,
        "SIGNAL LENGTH must fit 12 bits");
  Bits bits(kSignalBits, 0);
  const std::uint8_t rate = kRateCodes[static_cast<std::size_t>(mcs)];
  for (int i = 0; i < 4; ++i) {
    bits[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((rate >> (3 - i)) & 1u);
  }
  // bits[4] reserved = 0; LENGTH LSB-first in bits 5..16.
  for (int i = 0; i < 12; ++i) {
    bits[5 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((length_bytes >> i) & 1u);
  }
  // Even parity over bits 0..16 goes in bit 17; tail bits 18..23 stay 0.
  std::uint8_t p = 0;
  for (std::size_t i = 0; i < 17; ++i) p ^= bits[i];
  bits[17] = p;
  return bits;
}

std::optional<SignalField> decode_signal_field(
    std::span<const std::uint8_t> bits) {
  check(bits.size() == kSignalBits, "SIGNAL field must be 24 bits");
  std::uint8_t parity_acc = 0;
  for (std::size_t i = 0; i < 18; ++i) parity_acc ^= bits[i];
  if (parity_acc != 0) return std::nullopt;
  std::uint8_t rate = 0;
  for (int i = 0; i < 4; ++i) {
    rate = static_cast<std::uint8_t>((rate << 1) | (bits[static_cast<std::size_t>(i)] & 1u));
  }
  std::size_t length = 0;
  for (int i = 0; i < 12; ++i) {
    if (bits[5 + static_cast<std::size_t>(i)] & 1u) length |= std::size_t{1} << i;
  }
  if (length == 0) return std::nullopt;
  for (std::size_t m = 0; m < kRateCodes.size(); ++m) {
    if (kRateCodes[m] == rate) {
      return SignalField{static_cast<OfdmMcs>(m), length};
    }
  }
  return std::nullopt;
}

CVec ofdm_transmit_ppdu(OfdmMcs mcs, std::span<const std::uint8_t> psdu) {
  const OfdmPhy phy(mcs);
  // SIGNAL symbol: rate-1/2 coded, interleaved, BPSK, pilot polarity p_0;
  // the data field then starts the polarity sequence at index 1 — our
  // data path starts it at 0, which the pilot-agnostic receiver ignores.
  const Bits signal = encode_signal_field(mcs, psdu.size());
  const Bits coded = convolutional_encode(signal);  // 48 bits, rate 1/2
  const Interleaver interleaver(48, 1);
  const CVec bpsk = modulate(interleaver.interleave(coded), Modulation::kBpsk);
  const CVec signal_symbol = ofdm_build_symbol(bpsk, 1.0);

  const CVec body = phy.transmit(psdu);  // LTF + data symbols
  CVec out;
  out.reserve(body.size() + signal_symbol.size());
  const std::size_t ltf_len = OfdmPhy::kLtfSymbols * OfdmPhy::kSymbolLen;
  out.insert(out.end(), body.begin(), body.begin() + static_cast<std::ptrdiff_t>(ltf_len));
  out.insert(out.end(), signal_symbol.begin(), signal_symbol.end());
  out.insert(out.end(), body.begin() + static_cast<std::ptrdiff_t>(ltf_len), body.end());
  return out;
}

std::optional<Bytes> ofdm_receive_ppdu(std::span<const Cplx> samples,
                                       double noise_variance) {
  check(samples.size() >= 3 * OfdmPhy::kSymbolLen,
        "PPDU too short for LTF + SIGNAL");
  const CVec h = ofdm_estimate_channel(samples);
  const double bin_noise =
      noise_variance * static_cast<double>(OfdmPhy::kNfft);

  // Decode the SIGNAL symbol (index 2, right after the two LTFs).
  const CVec freq = ofdm_extract_symbol(samples, OfdmPhy::kLtfSymbols);
  const auto& tones = ofdm_data_tones();
  CVec eq(OfdmPhy::kDataTones);
  RVec nv(OfdmPhy::kDataTones);
  for (std::size_t t = 0; t < OfdmPhy::kDataTones; ++t) {
    const std::size_t bin = ofdm_tone_bin(tones[t]);
    const double mag2 = std::max(std::norm(h[bin]), 1e-12);
    eq[t] = freq[bin] / h[bin];
    nv[t] = bin_noise / mag2;
  }
  const Interleaver interleaver(48, 1);
  const RVec llrs =
      interleaver.deinterleave(demodulate_llr(eq, Modulation::kBpsk, nv));
  const Bits signal_bits = viterbi_decode(llrs, /*terminated=*/true);
  const auto signal = decode_signal_field(signal_bits);
  if (!signal) return std::nullopt;

  // Hand the data field (everything after the SIGNAL symbol, plus a fresh
  // copy of the LTF for channel estimation) to the MCS-specific receiver.
  const OfdmPhy phy(signal->mcs);
  const std::size_t ltf_len = OfdmPhy::kLtfSymbols * OfdmPhy::kSymbolLen;
  const std::size_t data_start = ltf_len + OfdmPhy::kSymbolLen;
  if (samples.size() < data_start + phy.n_symbols_for_psdu(signal->length_bytes) *
                                        OfdmPhy::kSymbolLen) {
    return std::nullopt;
  }
  CVec body;
  body.reserve(samples.size() - OfdmPhy::kSymbolLen);
  body.insert(body.end(), samples.begin(),
              samples.begin() + static_cast<std::ptrdiff_t>(ltf_len));
  body.insert(body.end(), samples.begin() + static_cast<std::ptrdiff_t>(data_start),
              samples.end());
  return phy.receive(body, signal->length_bytes, noise_variance);
}

// ---------------------------------------------------------------------------
// 802.11b PLCP
// ---------------------------------------------------------------------------

namespace {

constexpr std::size_t kSyncBits = 128;
constexpr std::size_t kSfdBits = 16;
constexpr std::size_t kHeaderBits = 48;
// SFD for the long preamble: 0xF3A0, transmitted LSB first.
constexpr std::uint16_t kSfd = 0xF3A0;
constexpr std::uint8_t kHrScramblerSeed = 0x6C;  // 802.11b long-preamble seed

std::uint8_t hr_signal_code(HrRate rate) {
  switch (rate) {
    case HrRate::k1Mbps: return 0x0A;   // 1 Mbps in 100 kbps units
    case HrRate::k2Mbps: return 0x14;
    case HrRate::k5_5Mbps: return 0x37;
    case HrRate::k11Mbps: return 0x6E;
  }
  return 0x0A;
}

double hr_rate_mbps(HrRate rate) {
  switch (rate) {
    case HrRate::k1Mbps: return 1.0;
    case HrRate::k2Mbps: return 2.0;
    case HrRate::k5_5Mbps: return 5.5;
    case HrRate::k11Mbps: return 11.0;
  }
  return 1.0;
}

}  // namespace

Bits encode_plcp_header(HrRate rate, std::size_t psdu_bytes) {
  check(psdu_bytes > 0, "PLCP header requires a payload");
  // LENGTH is the payload airtime in microseconds. At 11 Mbps the
  // microsecond granularity is coarser than a byte, so the standard's
  // length-extension bit (SERVICE bit 7) disambiguates.
  const std::size_t length_us = static_cast<std::size_t>(
      std::ceil(static_cast<double>(psdu_bytes) * 8.0 / hr_rate_mbps(rate)));
  check(length_us < 65536, "PLCP LENGTH overflow");
  std::uint8_t service = 0x00;
  if (rate == HrRate::k11Mbps &&
      static_cast<std::size_t>(std::floor(static_cast<double>(length_us) *
                                          11.0 / 8.0)) != psdu_bytes) {
    service |= 0x80;
  }

  Bytes header_bytes = {hr_signal_code(rate), service,
                        static_cast<std::uint8_t>(length_us & 0xFF),
                        static_cast<std::uint8_t>((length_us >> 8) & 0xFF)};
  const std::uint16_t crc = crc16_ccitt(header_bytes);
  header_bytes.push_back(static_cast<std::uint8_t>(crc & 0xFF));
  header_bytes.push_back(static_cast<std::uint8_t>((crc >> 8) & 0xFF));
  return bytes_to_bits(header_bytes);
}

std::optional<PlcpHeader> decode_plcp_header(
    std::span<const std::uint8_t> bits) {
  check(bits.size() == kHeaderBits, "PLCP header must be 48 bits");
  const Bytes bytes = bits_to_bytes(bits);
  const std::uint16_t crc =
      crc16_ccitt(std::span(bytes).first(4));
  const std::uint16_t received = static_cast<std::uint16_t>(
      bytes[4] | (static_cast<std::uint16_t>(bytes[5]) << 8));
  if (crc != received) return std::nullopt;

  HrRate rate;
  switch (bytes[0]) {
    case 0x0A: rate = HrRate::k1Mbps; break;
    case 0x14: rate = HrRate::k2Mbps; break;
    case 0x37: rate = HrRate::k5_5Mbps; break;
    case 0x6E: rate = HrRate::k11Mbps; break;
    default: return std::nullopt;
  }
  const std::size_t length_us =
      bytes[2] | (static_cast<std::size_t>(bytes[3]) << 8);
  std::size_t psdu_bytes = static_cast<std::size_t>(
      std::floor(static_cast<double>(length_us) * hr_rate_mbps(rate) / 8.0));
  if (rate == HrRate::k11Mbps && (bytes[1] & 0x80u)) --psdu_bytes;
  return PlcpHeader{rate, psdu_bytes};
}

CVec hr_transmit_ppdu(CckRate rate, std::span<const std::uint8_t> psdu) {
  check(!psdu.empty(), "hr_transmit_ppdu requires a payload");
  // Preamble + header bits, scrambled, at 1 Mbps DBPSK/Barker.
  Bits pre(kSyncBits, 1);
  for (std::size_t i = 0; i < kSfdBits; ++i) {
    pre.push_back(static_cast<std::uint8_t>((kSfd >> i) & 1u));
  }
  const HrRate hr =
      rate == CckRate::k11Mbps ? HrRate::k11Mbps : HrRate::k5_5Mbps;
  const Bits header = encode_plcp_header(hr, psdu.size());
  pre.insert(pre.end(), header.begin(), header.end());
  const Bits scrambled = scramble(pre, kHrScramblerSeed);

  const DsssModem barker({DsssRate::k1Mbps, true});
  CVec out = barker.modulate(scrambled);

  // Payload at the CCK rate (its own differential reference symbol).
  const CckModem cck(rate);
  const CVec payload = cck.modulate(bytes_to_bits(psdu));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::optional<Bytes> hr_receive_ppdu(std::span<const Cplx> chips) {
  const DsssModem barker({DsssRate::k1Mbps, true});
  const std::size_t preamble_symbols = 1 + kSyncBits + kSfdBits + kHeaderBits;
  const std::size_t preamble_chips = preamble_symbols * 11;
  if (chips.size() < preamble_chips + 2 * 8) return std::nullopt;

  // Demodulate the 1 Mbps section and descramble it.
  const Bits scrambled =
      barker.demodulate(chips.first(preamble_chips));
  const Bits bits = scramble(scrambled, kHrScramblerSeed);

  // Locate the SFD: it should sit right after the 128 SYNC bits; search a
  // small window to tolerate detection ambiguity.
  std::size_t sfd_pos = kSyncBits;
  bool found = false;
  for (std::size_t start = 0; start + kSfdBits + kHeaderBits <= bits.size();
       ++start) {
    std::uint16_t v = 0;
    for (std::size_t i = 0; i < kSfdBits; ++i) {
      if (bits[start + i] & 1u) v |= static_cast<std::uint16_t>(1u << i);
    }
    if (v == kSfd) {
      sfd_pos = start;
      found = true;
      break;
    }
  }
  if (!found) return std::nullopt;

  const auto header = decode_plcp_header(
      std::span(bits).subspan(sfd_pos + kSfdBits, kHeaderBits));
  if (!header) return std::nullopt;
  if (header->rate != HrRate::k5_5Mbps && header->rate != HrRate::k11Mbps) {
    return std::nullopt;  // this framer only carries CCK payloads
  }

  const CckRate rate = header->rate == HrRate::k11Mbps ? CckRate::k11Mbps
                                                       : CckRate::k5_5Mbps;
  const CckModem cck(rate);
  const std::size_t payload_bits = header->length_bytes * 8;
  const std::size_t payload_chips =
      (payload_bits / cck_bits_per_symbol(rate) + 1) * 8;
  // Payload starts where the 1 Mbps section ends: after the reference
  // symbol + SYNC + SFD + header symbols.
  const std::size_t payload_start = (1 + sfd_pos + kSfdBits + kHeaderBits) * 11;
  if (chips.size() < payload_start + payload_chips) return std::nullopt;
  const Bits payload =
      cck.demodulate(chips.subspan(payload_start, payload_chips));
  return bits_to_bytes(std::span(payload).first(payload_bits));
}

}  // namespace wlan::phy

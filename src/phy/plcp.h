// PLCP framing: the headers that make a PPDU self-describing.
//
// - 802.11a SIGNAL field: 24 bits (RATE, LENGTH, parity, tail) sent as one
//   BPSK rate-1/2 OFDM symbol. With it, ofdm_receive_ppdu() discovers the
//   MCS and PSDU length from the waveform alone.
// - 802.11b PLCP preamble + header: 128-bit scrambled-ones SYNC, 16-bit
//   SFD, then SIGNAL/SERVICE/LENGTH/CRC-16 at 1 Mbps DSSS. The receiver
//   locates the SFD by correlation and validates the header CRC.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "common/types.h"
#include "phy/cck.h"
#include "phy/ofdm.h"

namespace wlan::phy {

// ---------------------------------------------------------------------------
// 802.11a SIGNAL field
// ---------------------------------------------------------------------------

/// Encodes the 24-bit SIGNAL field (RATE | reserved | LENGTH | parity |
/// tail). `length_bytes` must fit the 12-bit LENGTH field.
Bits encode_signal_field(OfdmMcs mcs, std::size_t length_bytes);

/// Parsed SIGNAL contents.
struct SignalField {
  OfdmMcs mcs;
  std::size_t length_bytes;
};

/// Decodes 24 SIGNAL bits; empty if the parity fails or the rate code is
/// invalid.
std::optional<SignalField> decode_signal_field(std::span<const std::uint8_t> bits);

/// Full self-describing 802.11a PPDU: LTF + SIGNAL symbol + data field.
CVec ofdm_transmit_ppdu(OfdmMcs mcs, std::span<const std::uint8_t> psdu);

/// Receives a self-describing PPDU: decodes SIGNAL (one BPSK-1/2 symbol),
/// checks parity, then decodes the data field at the announced MCS/length.
/// Returns nullopt when the SIGNAL field is unusable.
std::optional<Bytes> ofdm_receive_ppdu(std::span<const Cplx> samples,
                                       double noise_variance);

// ---------------------------------------------------------------------------
// 802.11b PLCP (long preamble)
// ---------------------------------------------------------------------------

/// Rates announced in the 802.11b SIGNAL octet.
enum class HrRate { k1Mbps, k2Mbps, k5_5Mbps, k11Mbps };

/// PLCP header contents.
struct PlcpHeader {
  HrRate rate;
  std::size_t length_bytes;
};

/// Builds the 48-bit PLCP header (SIGNAL, SERVICE, LENGTH in us, CRC-16).
Bits encode_plcp_header(HrRate rate, std::size_t psdu_bytes);

/// Parses and CRC-checks a 48-bit PLCP header.
std::optional<PlcpHeader> decode_plcp_header(std::span<const std::uint8_t> bits);

/// Full 802.11b PPDU at 11 Mchip/s: scrambled-ones SYNC (128 bits), SFD,
/// PLCP header at 1 Mbps Barker/DBPSK, then the PSDU at the given CCK
/// rate. (1/2 Mbps payloads use the DSSS modem directly; this framer
/// covers the CCK generation.)
CVec hr_transmit_ppdu(CckRate rate, std::span<const std::uint8_t> psdu);

/// Receives an 802.11b PPDU: finds the SFD by despread correlation,
/// decodes and CRC-checks the header, then demodulates the CCK payload.
/// Returns nullopt if acquisition or the header CRC fails.
std::optional<Bytes> hr_receive_ppdu(std::span<const Cplx> chips);

}  // namespace wlan::phy

// 802.11 (1997) DSSS PHY: Barker-11 spreading with DBPSK (1 Mbps) and
// DQPSK (2 Mbps) at 11 Mchip/s in a ~20 MHz channel.
//
// The `spread` switch exists for the processing-gain experiment (C2): with
// spreading off, one chip carries one symbol, which is the narrowband
// system the FCC rules were designed to discourage.
#pragma once

#include <array>
#include <span>

#include "common/types.h"

namespace wlan::phy {

/// The 11-chip Barker sequence used by 802.11 DSSS.
inline constexpr std::array<double, 11> kBarker11 = {
    1, -1, 1, 1, -1, 1, 1, 1, -1, -1, -1};

/// DSSS data rates.
enum class DsssRate { k1Mbps, k2Mbps };

/// Bits carried per DSSS symbol.
std::size_t dsss_bits_per_symbol(DsssRate rate);

/// Differential PSK + Barker spreading modem. A known reference symbol is
/// prepended so the first data symbol can be detected differentially.
class DsssModem {
 public:
  struct Config {
    DsssRate rate = DsssRate::k1Mbps;
    bool spread = true;  ///< false -> 1 chip/symbol (no processing gain)
  };

  explicit DsssModem(const Config& config);

  std::size_t chips_per_symbol() const;

  /// Modulates bits to chips at 11 Mchip/s (or symbol rate when unspread).
  /// Output length = (1 + n_symbols) * chips_per_symbol().
  CVec modulate(std::span<const std::uint8_t> bits) const;

  /// As modulate, resizing `out` — allocation-free once its capacity is
  /// warm.
  void modulate_into(std::span<const std::uint8_t> bits, CVec& out) const;

  /// Demodulates chips back to bits (correlation despread + differential
  /// detection). Requires the waveform layout produced by modulate().
  Bits demodulate(std::span<const Cplx> chips) const;

  /// As demodulate, resizing `out` — allocation-free once warm.
  void demodulate_into(std::span<const Cplx> chips, Bits& out) const;

 private:
  Config config_;
};

}  // namespace wlan::phy

#include "phy/interleaver.h"

#include <algorithm>

#include "common/check.h"

namespace wlan::phy {

Interleaver::Interleaver(std::size_t n_cbps, std::size_t n_bpsc, std::size_t n_col) {
  check(n_col > 0 && n_cbps > 0 && n_cbps % n_col == 0,
        "n_cbps must be a positive multiple of the column count");
  check(n_bpsc > 0, "n_bpsc must be positive");
  const std::size_t s = std::max<std::size_t>(n_bpsc / 2, 1);
  table_.resize(n_cbps);
  for (std::size_t k = 0; k < n_cbps; ++k) {
    // First permutation (eq. 17-16 in the standard, generalized columns).
    const std::size_t i = (n_cbps / n_col) * (k % n_col) + k / n_col;
    // Second permutation (eq. 17-17).
    const std::size_t j =
        s * (i / s) + (i + n_cbps - (n_col * i) / n_cbps) % s;
    table_[k] = j;
  }
}

void Interleaver::interleave_to(std::span<const std::uint8_t> bits,
                                std::span<std::uint8_t> out) const {
  check(bits.size() == table_.size(), "interleave block size mismatch");
  check(out.size() == table_.size(), "interleave output size mismatch");
  for (std::size_t k = 0; k < bits.size(); ++k) out[table_[k]] = bits[k];
}

Bits Interleaver::interleave(std::span<const std::uint8_t> bits) const {
  Bits out(bits.size());
  interleave_to(bits, out);
  return out;
}

void Interleaver::deinterleave_to(std::span<const double> llrs,
                                  std::span<double> out) const {
  check(llrs.size() == table_.size(), "deinterleave block size mismatch");
  check(out.size() == table_.size(), "deinterleave output size mismatch");
  for (std::size_t k = 0; k < llrs.size(); ++k) out[k] = llrs[table_[k]];
}

RVec Interleaver::deinterleave(std::span<const double> llrs) const {
  RVec out(llrs.size());
  deinterleave_to(llrs, out);
  return out;
}

}  // namespace wlan::phy

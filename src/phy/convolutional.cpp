#include "phy/convolutional.h"

#include <array>
#include <limits>

#include "common/check.h"
#include "dsp/simd.h"
#include "obs/perf.h"
#include "obs/timer.h"
#include "phy/workspace.h"

namespace wlan::phy {
namespace {

constexpr std::uint32_t kG0 = 0b1011011;  // 133 octal
constexpr std::uint32_t kG1 = 0b1111001;  // 171 octal
constexpr int kNumStates = 64;

std::uint8_t parity7(std::uint32_t v) {
  v ^= v >> 4;
  v ^= v >> 2;
  v ^= v >> 1;
  return static_cast<std::uint8_t>(v & 1u);
}

// Puncture pattern: keep[i % period] over the A/B interleaved stream.
struct Pattern {
  std::size_t period;
  std::array<bool, 10> keep;
};

Pattern pattern_for(CodeRate rate) {
  switch (rate) {
    case CodeRate::kR12:
      return {2, {true, true}};
    case CodeRate::kR23:  // A1 B1 A2 (B2 stolen)
      return {4, {true, true, true, false}};
    case CodeRate::kR34:  // A1 B1 A2 B3
      return {6, {true, true, true, false, false, true}};
    case CodeRate::kR56:  // A1 B1 A2 B3 A4 B5
      return {10, {true, true, true, false, false, true, true, false, false, true}};
  }
  return {2, {true, true}};
}

}  // namespace

double code_rate_value(CodeRate rate) {
  switch (rate) {
    case CodeRate::kR12: return 0.5;
    case CodeRate::kR23: return 2.0 / 3.0;
    case CodeRate::kR34: return 0.75;
    case CodeRate::kR56: return 5.0 / 6.0;
  }
  return 0.5;
}

void convolutional_encode_into(std::span<const std::uint8_t> bits, Bits& out) {
  out.resize(bits.size() * 2);
  std::uint32_t state = 0;  // last 6 input bits, newest at bit 5
  std::size_t w = 0;
  for (const std::uint8_t b : bits) {
    const std::uint32_t reg = (static_cast<std::uint32_t>(b & 1u) << 6) | state;
    out[w++] = parity7(reg & kG0);
    out[w++] = parity7(reg & kG1);
    state = reg >> 1;
  }
}

Bits convolutional_encode(std::span<const std::uint8_t> bits) {
  Bits out;
  convolutional_encode_into(bits, out);
  return out;
}

void puncture_into(std::span<const std::uint8_t> coded, CodeRate rate,
                   Bits& out) {
  const Pattern p = pattern_for(rate);
  std::size_t n = 0;
  for (std::size_t i = 0; i < coded.size(); ++i) {
    if (p.keep[i % p.period]) ++n;
  }
  out.resize(n);
  std::size_t w = 0;
  for (std::size_t i = 0; i < coded.size(); ++i) {
    if (p.keep[i % p.period]) out[w++] = coded[i];
  }
}

Bits puncture(std::span<const std::uint8_t> coded, CodeRate rate) {
  Bits out;
  puncture_into(coded, rate, out);
  return out;
}

void depuncture_into(std::span<const double> llrs, CodeRate rate,
                     std::size_t n_info_bits, RVec& out) {
  const Pattern p = pattern_for(rate);
  out.assign(2 * n_info_bits, 0.0);
  std::size_t src = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (p.keep[i % p.period]) {
      check(src < llrs.size(), "depuncture: not enough LLRs");
      out[i] = llrs[src++];
    }
  }
  check(src == llrs.size(), "depuncture: LLR count mismatch");
}

RVec depuncture(std::span<const double> llrs, CodeRate rate,
                std::size_t n_info_bits) {
  RVec out;
  depuncture_into(llrs, rate, n_info_bits, out);
  return out;
}

std::size_t coded_length(std::size_t n_info_bits, CodeRate rate) {
  const Pattern p = pattern_for(rate);
  std::size_t n = 0;
  for (std::size_t i = 0; i < 2 * n_info_bits; ++i) {
    if (p.keep[i % p.period]) ++n;
  }
  return n;
}

namespace {

// Flattened trellis: for each (predecessor state, input bit), the
// 2-bit output-pair index e0<<1|e1. Per decode step the four possible
// branch metrics ±l0±l1 are computed once and looked up through this
// table — no parity evaluation or per-call table rebuild on the hot
// path. Built once per process (thread-safe magic static).
struct Trellis {
  std::array<std::uint8_t, kNumStates * 2> sym;
};

const Trellis& trellis() {
  static const Trellis t = [] {
    Trellis built{};
    for (int s = 0; s < kNumStates; ++s) {
      for (int b = 0; b < 2; ++b) {
        const std::uint32_t reg = (static_cast<std::uint32_t>(b) << 6) |
                                  static_cast<std::uint32_t>(s);
        built.sym[static_cast<std::size_t>(s * 2 + b)] = static_cast<std::uint8_t>(
            (parity7(reg & kG0) << 1) | parity7(reg & kG1));
      }
    }
    return built;
  }();
  return t;
}

// Sign-table view of the trellis for the vector ACS: branch metric
// bm[e0<<1|e1] == s0*l0 + s1*l1 with s0 = e0 ? -1 : +1, s1 likewise.
// Multiplying by ±1.0 is an exact sign flip and IEEE subtraction is
// addition of the negation, so s0*l0 + s1*l1 reproduces the scalar
// bm table (l0+l1, l0-l1, -l0+l1, -l0-l1) bit for bit. Indexed
// [predecessor parity][input bit][butterfly half] so each group of
// simd::kWidth halves is one contiguous load.
struct VecTrellis {
  std::array<double, 32> s0[2][2];
  std::array<double, 32> s1[2][2];
};

const VecTrellis& vec_trellis() {
  static const VecTrellis vt = [] {
    VecTrellis built{};
    const std::uint8_t* sym = trellis().sym.data();
    for (int half = 0; half < 32; ++half) {
      for (int p = 0; p < 2; ++p) {
        for (int b = 0; b < 2; ++b) {
          const int pred = (half << 1) | p;
          const int i = sym[pred * 2 + b];
          built.s0[p][b][static_cast<std::size_t>(half)] =
              (i & 2) ? -1.0 : 1.0;
          built.s1[p][b][static_cast<std::size_t>(half)] =
              (i & 1) ? -1.0 : 1.0;
        }
      }
    }
    return built;
  }();
  return vt;
}

}  // namespace

void viterbi_decode_into(std::span<const double> llrs, bool terminated,
                         Bits& decoded, Workspace& ws) {
  const obs::ScopedTimer timer(
      obs::kernel_histogram(obs::Kernel::kViterbi));
  const obs::perf::ScopedSpan span("viterbi");
  check(llrs.size() % 2 == 0, "viterbi_decode requires an even LLR count");
  const std::size_t n_steps = llrs.size() / 2;
  // Finite "unreachable" sentinel: adding a branch metric to it is
  // absorbed (|branch| << 1e300), so unreachable states stay maximally
  // bad without NaN/inf special-casing in the inner loop.
  constexpr double kUnreachable = -1e300;
  const std::uint8_t* sym = trellis().sym.data();

  std::array<double, kNumStates> metric{};
  metric.fill(kUnreachable);
  metric[0] = 0.0;  // encoder starts at state 0

  // One survivor bit per state per step: the oldest-bit choice of the
  // winning predecessor.
  auto surv_lease = ws.u64(n_steps);
  std::uint64_t* survivors = surv_lease->data();

  const bool use_vec = dsp::simd::vector_enabled();
  const VecTrellis& vt = vec_trellis();
  // Stride-2 deinterleave of the state metrics, refreshed per step, so
  // the vector loop loads predecessors contiguously.
  std::array<double, 32> m_even;
  std::array<double, 32> m_odd;

  std::array<double, kNumStates> next{};
  for (std::size_t t = 0; t < n_steps; ++t) {
    const double l0 = llrs[2 * t];
    const double l1 = llrs[2 * t + 1];
    std::uint64_t surv = 0;
    if (use_vec) {
      using dsp::simd::DVec;
      constexpr std::size_t W = dsp::simd::kWidth;
      for (std::size_t h = 0; h < 32; ++h) {
        m_even[h] = metric[2 * h];
        m_odd[h] = metric[2 * h + 1];
      }
      const DVec l0v = DVec::splat(l0);
      const DVec l1v = DVec::splat(l1);
      for (int b = 0; b < 2; ++b) {
        for (std::size_t h = 0; h < 32; h += W) {
          const DVec bm0 = DVec::load(&vt.s0[0][b][h]) * l0v +
                           DVec::load(&vt.s1[0][b][h]) * l1v;
          const DVec bm1 = DVec::load(&vt.s0[1][b][h]) * l0v +
                           DVec::load(&vt.s1[1][b][h]) * l1v;
          const DVec c0 = DVec::load(&m_even[h]) + bm0;
          const DVec c1 = DVec::load(&m_odd[h]) + bm1;
          const std::size_t sp = (static_cast<std::size_t>(b) << 5) | h;
          dsp::simd::select_gt(c1, c0, c1, c0).store(&next[sp]);
          surv |= static_cast<std::uint64_t>(dsp::simd::mask_gt(c1, c0))
                  << sp;
        }
      }
    } else {
      // Branch metric for expected pair (e0, e1), indexed e0<<1|e1
      // (a positive LLR favours bit 0).
      const std::array<double, 4> bm{l0 + l1, l0 - l1, -l0 + l1, -l0 - l1};
      // Butterfly: new states `half` (input 0) and `half + 32` (input 1)
      // share predecessors base and base|1.
      for (int half = 0; half < 32; ++half) {
        const int p0 = half << 1;
        const int p1 = p0 | 1;
        const double m0 = metric[static_cast<std::size_t>(p0)];
        const double m1 = metric[static_cast<std::size_t>(p1)];
        for (int b = 0; b < 2; ++b) {
          const int sp = (b << 5) | half;
          const double c0 = m0 + bm[sym[p0 * 2 + b]];
          const double c1 = m1 + bm[sym[p1 * 2 + b]];
          if (c1 > c0) {
            next[static_cast<std::size_t>(sp)] = c1;
            surv |= (std::uint64_t{1} << sp);
          } else {
            next[static_cast<std::size_t>(sp)] = c0;
          }
        }
      }
    }
    metric = next;
    survivors[t] = surv;
  }

  // Traceback from the terminal state.
  int state = 0;
  if (!terminated) {
    double best = -std::numeric_limits<double>::infinity();
    for (int s = 0; s < kNumStates; ++s) {
      if (metric[static_cast<std::size_t>(s)] > best) {
        best = metric[static_cast<std::size_t>(s)];
        state = s;
      }
    }
  }
  decoded.resize(n_steps);
  for (std::size_t t = n_steps; t-- > 0;) {
    decoded[t] = static_cast<std::uint8_t>(state >> 5);
    const int old = static_cast<int>((survivors[t] >> state) & 1u);
    state = ((state & 0x1F) << 1) | old;
  }
}

Bits viterbi_decode(std::span<const double> llrs, bool terminated) {
  Bits decoded;
  viterbi_decode_into(llrs, terminated, decoded, tls_workspace());
  return decoded;
}

Bits viterbi_decode_hard(std::span<const std::uint8_t> coded_bits, bool terminated) {
  RVec llrs(coded_bits.size());
  for (std::size_t i = 0; i < coded_bits.size(); ++i) {
    llrs[i] = coded_bits[i] ? -1.0 : 1.0;
  }
  return viterbi_decode(llrs, terminated);
}

}  // namespace wlan::phy

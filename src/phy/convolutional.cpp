#include "phy/convolutional.h"

#include <array>
#include <limits>

#include "common/check.h"
#include "obs/timer.h"

namespace wlan::phy {
namespace {

constexpr std::uint32_t kG0 = 0b1011011;  // 133 octal
constexpr std::uint32_t kG1 = 0b1111001;  // 171 octal
constexpr int kNumStates = 64;

std::uint8_t parity7(std::uint32_t v) {
  v ^= v >> 4;
  v ^= v >> 2;
  v ^= v >> 1;
  return static_cast<std::uint8_t>(v & 1u);
}

// Puncture pattern: keep[i % period] over the A/B interleaved stream.
struct Pattern {
  std::size_t period;
  std::array<bool, 10> keep;
};

Pattern pattern_for(CodeRate rate) {
  switch (rate) {
    case CodeRate::kR12:
      return {2, {true, true}};
    case CodeRate::kR23:  // A1 B1 A2 (B2 stolen)
      return {4, {true, true, true, false}};
    case CodeRate::kR34:  // A1 B1 A2 B3
      return {6, {true, true, true, false, false, true}};
    case CodeRate::kR56:  // A1 B1 A2 B3 A4 B5
      return {10, {true, true, true, false, false, true, true, false, false, true}};
  }
  return {2, {true, true}};
}

}  // namespace

double code_rate_value(CodeRate rate) {
  switch (rate) {
    case CodeRate::kR12: return 0.5;
    case CodeRate::kR23: return 2.0 / 3.0;
    case CodeRate::kR34: return 0.75;
    case CodeRate::kR56: return 5.0 / 6.0;
  }
  return 0.5;
}

Bits convolutional_encode(std::span<const std::uint8_t> bits) {
  Bits out;
  out.reserve(bits.size() * 2);
  std::uint32_t state = 0;  // last 6 input bits, newest at bit 5
  for (const std::uint8_t b : bits) {
    const std::uint32_t reg = (static_cast<std::uint32_t>(b & 1u) << 6) | state;
    out.push_back(parity7(reg & kG0));
    out.push_back(parity7(reg & kG1));
    state = reg >> 1;
  }
  return out;
}

Bits puncture(std::span<const std::uint8_t> coded, CodeRate rate) {
  const Pattern p = pattern_for(rate);
  Bits out;
  out.reserve(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    if (p.keep[i % p.period]) out.push_back(coded[i]);
  }
  return out;
}

RVec depuncture(std::span<const double> llrs, CodeRate rate,
                std::size_t n_info_bits) {
  const Pattern p = pattern_for(rate);
  RVec out(2 * n_info_bits, 0.0);
  std::size_t src = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (p.keep[i % p.period]) {
      check(src < llrs.size(), "depuncture: not enough LLRs");
      out[i] = llrs[src++];
    }
  }
  check(src == llrs.size(), "depuncture: LLR count mismatch");
  return out;
}

std::size_t coded_length(std::size_t n_info_bits, CodeRate rate) {
  const Pattern p = pattern_for(rate);
  std::size_t n = 0;
  for (std::size_t i = 0; i < 2 * n_info_bits; ++i) {
    if (p.keep[i % p.period]) ++n;
  }
  return n;
}

namespace {

// Flattened trellis: for each (predecessor state, input bit), the
// 2-bit output-pair index e0<<1|e1. Per decode step the four possible
// branch metrics ±l0±l1 are computed once and looked up through this
// table — no parity evaluation or per-call table rebuild on the hot
// path. Built once per process (thread-safe magic static).
struct Trellis {
  std::array<std::uint8_t, kNumStates * 2> sym;
};

const Trellis& trellis() {
  static const Trellis t = [] {
    Trellis built{};
    for (int s = 0; s < kNumStates; ++s) {
      for (int b = 0; b < 2; ++b) {
        const std::uint32_t reg = (static_cast<std::uint32_t>(b) << 6) |
                                  static_cast<std::uint32_t>(s);
        built.sym[static_cast<std::size_t>(s * 2 + b)] = static_cast<std::uint8_t>(
            (parity7(reg & kG0) << 1) | parity7(reg & kG1));
      }
    }
    return built;
  }();
  return t;
}

}  // namespace

Bits viterbi_decode(std::span<const double> llrs, bool terminated) {
  const obs::ScopedTimer timer(
      obs::kernel_histogram(obs::Kernel::kViterbi));
  check(llrs.size() % 2 == 0, "viterbi_decode requires an even LLR count");
  const std::size_t n_steps = llrs.size() / 2;
  // Finite "unreachable" sentinel: adding a branch metric to it is
  // absorbed (|branch| << 1e300), so unreachable states stay maximally
  // bad without NaN/inf special-casing in the inner loop.
  constexpr double kUnreachable = -1e300;
  const std::uint8_t* sym = trellis().sym.data();

  std::array<double, kNumStates> metric{};
  metric.fill(kUnreachable);
  metric[0] = 0.0;  // encoder starts at state 0

  // One survivor bit per state per step: the oldest-bit choice of the
  // winning predecessor.
  std::vector<std::uint64_t> survivors(n_steps, 0);

  std::array<double, kNumStates> next{};
  for (std::size_t t = 0; t < n_steps; ++t) {
    const double l0 = llrs[2 * t];
    const double l1 = llrs[2 * t + 1];
    // Branch metric for expected pair (e0, e1), indexed e0<<1|e1
    // (a positive LLR favours bit 0).
    const std::array<double, 4> bm{l0 + l1, l0 - l1, -l0 + l1, -l0 - l1};
    std::uint64_t surv = 0;
    // Butterfly: new states `half` (input 0) and `half + 32` (input 1)
    // share predecessors base and base|1.
    for (int half = 0; half < 32; ++half) {
      const int p0 = half << 1;
      const int p1 = p0 | 1;
      const double m0 = metric[static_cast<std::size_t>(p0)];
      const double m1 = metric[static_cast<std::size_t>(p1)];
      for (int b = 0; b < 2; ++b) {
        const int sp = (b << 5) | half;
        const double c0 = m0 + bm[sym[p0 * 2 + b]];
        const double c1 = m1 + bm[sym[p1 * 2 + b]];
        if (c1 > c0) {
          next[static_cast<std::size_t>(sp)] = c1;
          surv |= (std::uint64_t{1} << sp);
        } else {
          next[static_cast<std::size_t>(sp)] = c0;
        }
      }
    }
    metric = next;
    survivors[t] = surv;
  }

  // Traceback from the terminal state.
  int state = 0;
  if (!terminated) {
    double best = -std::numeric_limits<double>::infinity();
    for (int s = 0; s < kNumStates; ++s) {
      if (metric[static_cast<std::size_t>(s)] > best) {
        best = metric[static_cast<std::size_t>(s)];
        state = s;
      }
    }
  }
  Bits decoded(n_steps);
  for (std::size_t t = n_steps; t-- > 0;) {
    decoded[t] = static_cast<std::uint8_t>(state >> 5);
    const int old = static_cast<int>((survivors[t] >> state) & 1u);
    state = ((state & 0x1F) << 1) | old;
  }
  return decoded;
}

Bits viterbi_decode_hard(std::span<const std::uint8_t> coded_bits, bool terminated) {
  RVec llrs(coded_bits.size());
  for (std::size_t i = 0; i < coded_bits.size(); ++i) {
    llrs[i] = coded_bits[i] ? -1.0 : 1.0;
  }
  return viterbi_decode(llrs, terminated);
}

}  // namespace wlan::phy

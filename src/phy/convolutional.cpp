#include "phy/convolutional.h"

#include <algorithm>
#include <array>
#include <limits>

#include "common/check.h"
#include "dsp/batch.h"
#include "dsp/saturate.h"
#include "dsp/simd.h"
#include "dsp/simd_int.h"
#include "obs/perf.h"
#include "obs/timer.h"
#include "phy/workspace.h"

namespace wlan::phy {
namespace {

constexpr std::uint32_t kG0 = 0b1011011;  // 133 octal
constexpr std::uint32_t kG1 = 0b1111001;  // 171 octal
constexpr int kNumStates = 64;

std::uint8_t parity7(std::uint32_t v) {
  v ^= v >> 4;
  v ^= v >> 2;
  v ^= v >> 1;
  return static_cast<std::uint8_t>(v & 1u);
}

// Puncture pattern: keep[i % period] over the A/B interleaved stream.
struct Pattern {
  std::size_t period;
  std::array<bool, 10> keep;
};

Pattern pattern_for(CodeRate rate) {
  switch (rate) {
    case CodeRate::kR12:
      return {2, {true, true}};
    case CodeRate::kR23:  // A1 B1 A2 (B2 stolen)
      return {4, {true, true, true, false}};
    case CodeRate::kR34:  // A1 B1 A2 B3
      return {6, {true, true, true, false, false, true}};
    case CodeRate::kR56:  // A1 B1 A2 B3 A4 B5
      return {10, {true, true, true, false, false, true, true, false, false, true}};
  }
  return {2, {true, true}};
}

}  // namespace

double code_rate_value(CodeRate rate) {
  switch (rate) {
    case CodeRate::kR12: return 0.5;
    case CodeRate::kR23: return 2.0 / 3.0;
    case CodeRate::kR34: return 0.75;
    case CodeRate::kR56: return 5.0 / 6.0;
  }
  return 0.5;
}

void convolutional_encode_into(std::span<const std::uint8_t> bits, Bits& out) {
  out.resize(bits.size() * 2);
  std::uint32_t state = 0;  // last 6 input bits, newest at bit 5
  std::size_t w = 0;
  for (const std::uint8_t b : bits) {
    const std::uint32_t reg = (static_cast<std::uint32_t>(b & 1u) << 6) | state;
    out[w++] = parity7(reg & kG0);
    out[w++] = parity7(reg & kG1);
    state = reg >> 1;
  }
}

Bits convolutional_encode(std::span<const std::uint8_t> bits) {
  Bits out;
  convolutional_encode_into(bits, out);
  return out;
}

void puncture_into(std::span<const std::uint8_t> coded, CodeRate rate,
                   Bits& out) {
  const Pattern p = pattern_for(rate);
  std::size_t n = 0;
  for (std::size_t i = 0; i < coded.size(); ++i) {
    if (p.keep[i % p.period]) ++n;
  }
  out.resize(n);
  std::size_t w = 0;
  for (std::size_t i = 0; i < coded.size(); ++i) {
    if (p.keep[i % p.period]) out[w++] = coded[i];
  }
}

Bits puncture(std::span<const std::uint8_t> coded, CodeRate rate) {
  Bits out;
  puncture_into(coded, rate, out);
  return out;
}

void depuncture_into(std::span<const double> llrs, CodeRate rate,
                     std::size_t n_info_bits, RVec& out) {
  const Pattern p = pattern_for(rate);
  out.assign(2 * n_info_bits, 0.0);
  std::size_t src = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (p.keep[i % p.period]) {
      check(src < llrs.size(), "depuncture: not enough LLRs");
      out[i] = llrs[src++];
    }
  }
  check(src == llrs.size(), "depuncture: LLR count mismatch");
}

RVec depuncture(std::span<const double> llrs, CodeRate rate,
                std::size_t n_info_bits) {
  RVec out;
  depuncture_into(llrs, rate, n_info_bits, out);
  return out;
}

std::size_t coded_length(std::size_t n_info_bits, CodeRate rate) {
  const Pattern p = pattern_for(rate);
  std::size_t n = 0;
  for (std::size_t i = 0; i < 2 * n_info_bits; ++i) {
    if (p.keep[i % p.period]) ++n;
  }
  return n;
}

namespace {

// Flattened trellis: for each (predecessor state, input bit), the
// 2-bit output-pair index e0<<1|e1. Per decode step the four possible
// branch metrics ±l0±l1 are computed once and looked up through this
// table — no parity evaluation or per-call table rebuild on the hot
// path. Built once per process (thread-safe magic static).
struct Trellis {
  std::array<std::uint8_t, kNumStates * 2> sym;
};

const Trellis& trellis() {
  static const Trellis t = [] {
    Trellis built{};
    for (int s = 0; s < kNumStates; ++s) {
      for (int b = 0; b < 2; ++b) {
        const std::uint32_t reg = (static_cast<std::uint32_t>(b) << 6) |
                                  static_cast<std::uint32_t>(s);
        built.sym[static_cast<std::size_t>(s * 2 + b)] = static_cast<std::uint8_t>(
            (parity7(reg & kG0) << 1) | parity7(reg & kG1));
      }
    }
    return built;
  }();
  return t;
}

// Sign-table view of the trellis for the vector ACS: branch metric
// bm[e0<<1|e1] == s0*l0 + s1*l1 with s0 = e0 ? -1 : +1, s1 likewise.
// Multiplying by ±1.0 is an exact sign flip and IEEE subtraction is
// addition of the negation, so s0*l0 + s1*l1 reproduces the scalar
// bm table (l0+l1, l0-l1, -l0+l1, -l0-l1) bit for bit. Indexed
// [predecessor parity][input bit][butterfly half] so each group of
// simd::kWidth halves is one contiguous load.
struct VecTrellis {
  std::array<double, 32> s0[2][2];
  std::array<double, 32> s1[2][2];
};

const VecTrellis& vec_trellis() {
  static const VecTrellis vt = [] {
    VecTrellis built{};
    const std::uint8_t* sym = trellis().sym.data();
    for (int half = 0; half < 32; ++half) {
      for (int p = 0; p < 2; ++p) {
        for (int b = 0; b < 2; ++b) {
          const int pred = (half << 1) | p;
          const int i = sym[pred * 2 + b];
          built.s0[p][b][static_cast<std::size_t>(half)] =
              (i & 2) ? -1.0 : 1.0;
          built.s1[p][b][static_cast<std::size_t>(half)] =
              (i & 1) ? -1.0 : 1.0;
        }
      }
    }
    return built;
  }();
  return vt;
}

}  // namespace

void viterbi_decode_into(std::span<const double> llrs, bool terminated,
                         Bits& decoded, Workspace& ws) {
  const obs::ScopedTimer timer(
      obs::kernel_histogram(obs::Kernel::kViterbi));
  const obs::perf::ScopedSpan span("viterbi");
  check(llrs.size() % 2 == 0, "viterbi_decode requires an even LLR count");
  const std::size_t n_steps = llrs.size() / 2;
  // Finite "unreachable" sentinel: adding a branch metric to it is
  // absorbed (|branch| << 1e300), so unreachable states stay maximally
  // bad without NaN/inf special-casing in the inner loop.
  constexpr double kUnreachable = -1e300;
  const std::uint8_t* sym = trellis().sym.data();

  std::array<double, kNumStates> metric{};
  metric.fill(kUnreachable);
  metric[0] = 0.0;  // encoder starts at state 0

  // One survivor bit per state per step: the oldest-bit choice of the
  // winning predecessor.
  auto surv_lease = ws.u64(n_steps);
  std::uint64_t* survivors = surv_lease->data();

  const bool use_vec = dsp::simd::vector_enabled();
  const VecTrellis& vt = vec_trellis();
  // Stride-2 deinterleave of the state metrics, refreshed per step, so
  // the vector loop loads predecessors contiguously.
  std::array<double, 32> m_even;
  std::array<double, 32> m_odd;

  std::array<double, kNumStates> next{};
  for (std::size_t t = 0; t < n_steps; ++t) {
    const double l0 = llrs[2 * t];
    const double l1 = llrs[2 * t + 1];
    std::uint64_t surv = 0;
    if (use_vec) {
      using dsp::simd::DVec;
      constexpr std::size_t W = dsp::simd::kWidth;
      for (std::size_t h = 0; h < 32; ++h) {
        m_even[h] = metric[2 * h];
        m_odd[h] = metric[2 * h + 1];
      }
      const DVec l0v = DVec::splat(l0);
      const DVec l1v = DVec::splat(l1);
      for (int b = 0; b < 2; ++b) {
        for (std::size_t h = 0; h < 32; h += W) {
          const DVec bm0 = DVec::load(&vt.s0[0][b][h]) * l0v +
                           DVec::load(&vt.s1[0][b][h]) * l1v;
          const DVec bm1 = DVec::load(&vt.s0[1][b][h]) * l0v +
                           DVec::load(&vt.s1[1][b][h]) * l1v;
          const DVec c0 = DVec::load(&m_even[h]) + bm0;
          const DVec c1 = DVec::load(&m_odd[h]) + bm1;
          const std::size_t sp = (static_cast<std::size_t>(b) << 5) | h;
          dsp::simd::select_gt(c1, c0, c1, c0).store(&next[sp]);
          surv |= static_cast<std::uint64_t>(dsp::simd::mask_gt(c1, c0))
                  << sp;
        }
      }
    } else {
      // Branch metric for expected pair (e0, e1), indexed e0<<1|e1
      // (a positive LLR favours bit 0).
      const std::array<double, 4> bm{l0 + l1, l0 - l1, -l0 + l1, -l0 - l1};
      // Butterfly: new states `half` (input 0) and `half + 32` (input 1)
      // share predecessors base and base|1.
      for (int half = 0; half < 32; ++half) {
        const int p0 = half << 1;
        const int p1 = p0 | 1;
        const double m0 = metric[static_cast<std::size_t>(p0)];
        const double m1 = metric[static_cast<std::size_t>(p1)];
        for (int b = 0; b < 2; ++b) {
          const int sp = (b << 5) | half;
          const double c0 = m0 + bm[sym[p0 * 2 + b]];
          const double c1 = m1 + bm[sym[p1 * 2 + b]];
          if (c1 > c0) {
            next[static_cast<std::size_t>(sp)] = c1;
            surv |= (std::uint64_t{1} << sp);
          } else {
            next[static_cast<std::size_t>(sp)] = c0;
          }
        }
      }
    }
    metric = next;
    survivors[t] = surv;
  }

  // Traceback from the terminal state.
  int state = 0;
  if (!terminated) {
    double best = -std::numeric_limits<double>::infinity();
    for (int s = 0; s < kNumStates; ++s) {
      if (metric[static_cast<std::size_t>(s)] > best) {
        best = metric[static_cast<std::size_t>(s)];
        state = s;
      }
    }
  }
  decoded.resize(n_steps);
  for (std::size_t t = n_steps; t-- > 0;) {
    decoded[t] = static_cast<std::uint8_t>(state >> 5);
    const int old = static_cast<int>((survivors[t] >> state) & 1u);
    state = ((state & 0x1F) << 1) | old;
  }
}

Bits viterbi_decode(std::span<const double> llrs, bool terminated) {
  Bits decoded;
  viterbi_decode_into(llrs, terminated, decoded, tls_workspace());
  return decoded;
}

Bits viterbi_decode_hard(std::span<const std::uint8_t> coded_bits, bool terminated) {
  RVec llrs(coded_bits.size());
  for (std::size_t i = 0; i < coded_bits.size(); ++i) {
    llrs[i] = coded_bits[i] ? -1.0 : 1.0;
  }
  return viterbi_decode(llrs, terminated);
}

void depuncture_batch_into(std::span<const std::span<const double>> lane_llrs,
                           CodeRate rate, std::size_t n_info_bits,
                           RVec& out_soa) {
  const Pattern p = pattern_for(rate);
  const std::size_t lanes = lane_llrs.size();
  out_soa.assign(2 * n_info_bits * lanes, 0.0);
  for (std::size_t l = 0; l < lanes; ++l) {
    const std::span<const double> in = lane_llrs[l];
    std::size_t src = 0;
    for (std::size_t i = 0; i < 2 * n_info_bits; ++i) {
      if (p.keep[i % p.period]) {
        check(src < in.size(), "depuncture_batch: not enough LLRs");
        out_soa[i * lanes + l] = in[src++];
      }
    }
    check(src == in.size(), "depuncture_batch: LLR count mismatch");
  }
}

namespace {

/// Per-lane traceback shared by the batched decoders: `final_metric(s)`
/// reads lane l's terminal metric of state s, `survivor_bit(t, s)` its
/// survivor decision. Decisions land at out[t * stride] (lane-major SoA
/// output). Mirrors viterbi_decode_into's traceback exactly
/// (strict-greater first-maximum start state when unterminated).
template <class Metric, class FinalMetric, class SurvivorBit>
void traceback_lane(std::size_t n_steps, bool terminated,
                    FinalMetric&& final_metric, SurvivorBit&& survivor_bit,
                    std::uint8_t* out, std::size_t stride) {
  int state = 0;
  if (!terminated) {
    Metric best = final_metric(0);
    for (int s = 1; s < kNumStates; ++s) {
      const Metric m = final_metric(s);
      if (m > best) {
        best = m;
        state = s;
      }
    }
  }
  for (std::size_t t = n_steps; t-- > 0;) {
    out[t * stride] = static_cast<std::uint8_t>(state >> 5);
    const int old = survivor_bit(t, state);
    state = ((state & 0x1F) << 1) | old;
  }
}

}  // namespace

void viterbi_decode_batch_into(std::span<const double> llrs_soa,
                               std::size_t lanes, bool terminated,
                               Bits& decoded_soa, Workspace& ws) {
  check(lanes > 0 && lanes <= 16,
        "viterbi_decode_batch requires 1..16 lanes");
  check(llrs_soa.size() % (2 * lanes) == 0,
        "viterbi_decode_batch requires an even LLR count per lane");
  const std::size_t n_steps = llrs_soa.size() / (2 * lanes);
  decoded_soa.resize(n_steps * lanes);
  constexpr std::size_t W = dsp::simd::kWidth;
  if (!dsp::simd::vector_enabled() || !dsp::batch::vectorizable(lanes, W) ||
      lanes == 1) {
    // Remainder groups and scalar builds: extract each lane and run the
    // reference kernel — bitwise identical by construction.
    auto lane_lease = ws.rvec(2 * n_steps);
    auto bits_lease = ws.bits(n_steps);
    for (std::size_t l = 0; l < lanes; ++l) {
      dsp::batch::gather_lane(llrs_soa.data(), l, lanes,
                              std::span<double>(*lane_lease));
      viterbi_decode_into(*lane_lease, terminated, *bits_lease, ws);
      dsp::batch::scatter_lane(std::span<const std::uint8_t>(*bits_lease), l,
                               lanes, decoded_soa.data());
    }
    return;
  }

  const obs::ScopedTimer timer(
      obs::kernel_histogram(obs::Kernel::kViterbiBatch));
  const obs::perf::ScopedSpan span("viterbi_batch");
  using dsp::simd::DVec;
  constexpr double kUnreachable = -1e300;
  const std::uint8_t* sym = trellis().sym.data();
  const std::size_t L = lanes;

  auto cur_lease = ws.rvec(kNumStates * L);
  auto nxt_lease = ws.rvec(kNumStates * L);
  double* cur = cur_lease->data();
  double* nxt = nxt_lease->data();
  std::fill(cur, cur + kNumStates * L, kUnreachable);
  for (std::size_t l = 0; l < L; ++l) cur[l] = 0.0;  // state 0, every lane

  // Survivor bits live in one byte plane per lane strip: bit (l % W) of
  // plane[l / W][t * 64 + sp] is lane l's decision. Planes make the hot
  // loop a plain byte store per (state, strip) — no cross-strip
  // read-modify-write — and the traceback touches one plane per lane.
  const std::size_t n_strips = L / W;
  const std::size_t plane_len = n_steps * kNumStates;
  auto surv_lease = ws.bits(n_strips * plane_len);
  std::uint8_t* const planes = surv_lease->data();

  for (std::size_t t = 0; t < n_steps; ++t) {
    for (std::size_t w = 0; w < L; w += W) {
      std::uint8_t* const surv_t =
          planes + (w / W) * plane_len + t * kNumStates;
      const DVec l0v = DVec::load(&llrs_soa[(2 * t) * L + w]);
      const DVec l1v = DVec::load(&llrs_soa[(2 * t + 1) * L + w]);
      // The four distinct branch metrics ±l0±l1, indexed by the expected
      // pair e0<<1|e1 like the scalar kernel's bm table. Each entry is
      // bitwise equal per lane to the sign-table form s0*l0 + s1*l1:
      // multiplying by ±1.0 is an exact sign flip, IEEE addition is
      // commutative, and -l0 - l1 == -1.0 * (l0 + l1) exactly.
      const std::array<DVec, 4> bmv{l0v + l1v, l0v - l1v, l1v - l0v,
                                    DVec::splat(-1.0) * (l0v + l1v)};
      for (int half = 0; half < 32; ++half) {
        const auto h = static_cast<std::size_t>(half);
        const DVec m0 = DVec::load(&cur[(2 * h) * L + w]);
        const DVec m1 = DVec::load(&cur[(2 * h + 1) * L + w]);
        const int p0 = half << 1;
        const int p1 = p0 | 1;
        for (int b = 0; b < 2; ++b) {
          const DVec c0 = m0 + bmv[sym[p0 * 2 + b]];
          const DVec c1 = m1 + bmv[sym[p1 * 2 + b]];
          const std::size_t sp = (static_cast<std::size_t>(b) << 5) | h;
          dsp::simd::select_gt(c1, c0, c1, c0).store(&nxt[sp * L + w]);
          surv_t[sp] = static_cast<std::uint8_t>(dsp::simd::mask_gt(c1, c0));
        }
      }
    }
    std::swap(cur, nxt);
  }

  for (std::size_t l = 0; l < L; ++l) {
    const std::uint8_t* const plane = planes + (l / W) * plane_len;
    const unsigned bit = static_cast<unsigned>(l % W);
    traceback_lane<double>(
        n_steps, terminated,
        [&](int s) { return cur[static_cast<std::size_t>(s) * L + l]; },
        [&](std::size_t t, int s) {
          return static_cast<int>(
              (plane[t * kNumStates + static_cast<std::size_t>(s)] >> bit) &
              1u);
        },
        decoded_soa.data() + l, L);
  }
}

void viterbi_decode_batch_i16_into(std::span<const double> llrs_soa,
                                   std::size_t lanes, bool terminated,
                                   double scale, Bits& decoded_soa,
                                   Workspace& ws) {
  const obs::ScopedTimer timer(
      obs::kernel_histogram(obs::Kernel::kViterbiQuant));
  const obs::perf::ScopedSpan span("viterbi_i16");
  check(lanes > 0 && lanes <= 16,
        "viterbi_decode_batch_i16 requires 1..16 lanes");
  check(llrs_soa.size() % (2 * lanes) == 0,
        "viterbi_decode_batch_i16 requires an even LLR count per lane");
  const std::size_t n_steps = llrs_soa.size() / (2 * lanes);
  decoded_soa.resize(n_steps * lanes);
  const std::size_t L = lanes;
  const std::uint8_t* sym = trellis().sym.data();

  // Quantize the whole block up front. Branch metrics are then bounded
  // by 2 * 127 = 254, so 64 steps grow the path-metric spread by at most
  // 16256 — comfortably inside int16 between renormalizations.
  auto q_lease = ws.i16vec(llrs_soa.size());
  std::int16_t* q = q_lease->data();
  for (std::size_t i = 0; i < llrs_soa.size(); ++i) {
    q[i] = dsp::quantize_llr_i16(llrs_soa[i], scale, 127);
  }

  constexpr std::int16_t kUnreachable = -30000;
  auto cur_lease = ws.i16vec(kNumStates * L);
  auto nxt_lease = ws.i16vec(kNumStates * L);
  std::int16_t* cur = cur_lease->data();
  std::int16_t* nxt = nxt_lease->data();
  std::fill(cur, cur + kNumStates * L, kUnreachable);
  for (std::size_t l = 0; l < L; ++l) cur[l] = 0;

  auto surv_lease = ws.i16vec(n_steps * kNumStates);
  std::int16_t* survivors = surv_lease->data();

  using dsp::simd::I16Vec;
  constexpr std::size_t VW = dsp::simd::kI16Width;
  const bool use_vec =
      dsp::simd::vector_enabled() && dsp::batch::vectorizable(L, VW) && VW > 1;

  for (std::size_t t = 0; t < n_steps; ++t) {
    std::array<std::uint16_t, kNumStates> surv{};
    if (use_vec) {
      for (std::size_t w = 0; w < L; w += VW) {
        const I16Vec l0v = I16Vec::load(&q[(2 * t) * L + w]);
        const I16Vec l1v = I16Vec::load(&q[(2 * t + 1) * L + w]);
        const I16Vec nl0 = sat_sub(I16Vec::splat(0), l0v);
        const I16Vec bm[4] = {sat_add(l0v, l1v), sat_sub(l0v, l1v),
                              sat_sub(l1v, l0v), sat_sub(nl0, l1v)};
        for (int half = 0; half < 32; ++half) {
          const auto h = static_cast<std::size_t>(half);
          const int p0 = half << 1;
          const int p1 = p0 | 1;
          const I16Vec m0 = I16Vec::load(&cur[(2 * h) * L + w]);
          const I16Vec m1 = I16Vec::load(&cur[(2 * h + 1) * L + w]);
          for (int b = 0; b < 2; ++b) {
            const I16Vec c0 = sat_add(m0, bm[sym[p0 * 2 + b]]);
            const I16Vec c1 = sat_add(m1, bm[sym[p1 * 2 + b]]);
            const I16Vec gt = cmp_gt(c1, c0);
            const std::size_t sp = (static_cast<std::size_t>(b) << 5) | h;
            blend(gt, c1, c0).store(&nxt[sp * L + w]);
            surv[sp] |= static_cast<std::uint16_t>(dsp::simd::mask_bits(gt)
                                                   << w);
          }
        }
      }
    } else {
      // Scalar reference: the same saturating expressions per lane, so
      // the quantized output is identical with vectors on or off.
      for (std::size_t l = 0; l < L; ++l) {
        const std::int16_t l0 = q[(2 * t) * L + l];
        const std::int16_t l1 = q[(2 * t + 1) * L + l];
        const std::int16_t bm[4] = {
            dsp::sat_add_i16(l0, l1), dsp::sat_sub_i16(l0, l1),
            dsp::sat_sub_i16(l1, l0),
            dsp::sat_sub_i16(dsp::sat_sub_i16(0, l0), l1)};
        for (int half = 0; half < 32; ++half) {
          const auto h = static_cast<std::size_t>(half);
          const int p0 = half << 1;
          const int p1 = p0 | 1;
          const std::int16_t m0 = cur[(2 * h) * L + l];
          const std::int16_t m1 = cur[(2 * h + 1) * L + l];
          for (int b = 0; b < 2; ++b) {
            const std::int16_t c0 = dsp::sat_add_i16(m0, bm[sym[p0 * 2 + b]]);
            const std::int16_t c1 = dsp::sat_add_i16(m1, bm[sym[p1 * 2 + b]]);
            const std::size_t sp = (static_cast<std::size_t>(b) << 5) | h;
            if (c1 > c0) {
              nxt[sp * L + l] = c1;
              surv[sp] |= static_cast<std::uint16_t>(1u << l);
            } else {
              nxt[sp * L + l] = c0;
            }
          }
        }
      }
    }
    for (int s = 0; s < kNumStates; ++s) {
      survivors[t * kNumStates + s] =
          static_cast<std::int16_t>(surv[static_cast<std::size_t>(s)]);
    }
    std::swap(cur, nxt);
    if ((t + 1) % 64 == 0) {
      // Renormalize: subtract each lane's running maximum so metrics
      // stay away from the int16 rails (ordering is preserved).
      if (use_vec) {
        for (std::size_t w = 0; w < L; w += VW) {
          I16Vec mx = I16Vec::load(&cur[w]);
          for (int s = 1; s < kNumStates; ++s) {
            mx = max_i16(mx,
                         I16Vec::load(&cur[static_cast<std::size_t>(s) * L + w]));
          }
          for (int s = 0; s < kNumStates; ++s) {
            std::int16_t* row = &cur[static_cast<std::size_t>(s) * L + w];
            sat_sub(I16Vec::load(row), mx).store(row);
          }
        }
      } else {
        for (std::size_t l = 0; l < L; ++l) {
          std::int16_t mx = cur[l];
          for (int s = 1; s < kNumStates; ++s) {
            mx = std::max(mx, cur[static_cast<std::size_t>(s) * L + l]);
          }
          for (int s = 0; s < kNumStates; ++s) {
            std::int16_t& m = cur[static_cast<std::size_t>(s) * L + l];
            m = dsp::sat_sub_i16(m, mx);
          }
        }
      }
    }
  }

  for (std::size_t l = 0; l < L; ++l) {
    traceback_lane<std::int16_t>(
        n_steps, terminated,
        [&](int s) { return cur[static_cast<std::size_t>(s) * L + l]; },
        [&](std::size_t t, int s) {
          return static_cast<int>(
              (static_cast<std::uint16_t>(survivors[t * kNumStates + s]) >>
               l) &
              1u);
        },
        decoded_soa.data() + l, L);
  }
}

}  // namespace wlan::phy

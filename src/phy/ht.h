// 802.11n High Throughput PHY: MCS 0-31 (1-4 spatial streams), 20/40 MHz,
// long/short guard interval, BCC or LDPC coding, with spatial multiplexing
// (ZF/MMSE detection), SVD eigen-beamforming, Alamouti STBC, and MRC
// receive diversity.
//
// The HT link is simulated in the frequency domain: the channel enters as
// one complex matrix per subcarrier (block fading over a packet), noise is
// added per tone, and detection/decoding run on the exact per-tone model
// y_k = H_k Q_k x_k / sqrt(Nss) + n_k. This is the standard methodology of
// the TGn-era proposal simulations; it is exactly equivalent to a
// time-domain simulation when the guard interval exceeds the delay spread
// and synchronization is ideal. Receiver channel knowledge is ideal
// (the 802.11a path validates LTF-based estimation separately).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "channel/fading.h"
#include "common/rng.h"
#include "common/types.h"
#include "linalg/cmatrix.h"
#include "phy/convolutional.h"
#include "phy/modulation.h"

namespace wlan::phy {

enum class HtBandwidth { k20MHz, k40MHz };
enum class HtGuardInterval { kLong, kShort };  // 800 ns / 400 ns
enum class HtCoding { kBcc, kLdpc };
enum class MimoDetector {
  kZeroForcing,
  kMmse,
  kMmseSic,  ///< ordered successive interference cancellation on MMSE
};

/// How transmit antennas are used.
enum class SpatialScheme {
  kDirectMap,         ///< Nss streams onto Nss antennas (open loop)
  kBeamforming,       ///< SVD eigen-beamforming (closed loop, CSI at TX)
  kStbc,              ///< Alamouti space-time block code, Nss = 1, Ntx = 2
  kMrc,               ///< single stream, single TX antenna, Nrx-branch MRC
  kAntennaSelection,  ///< single stream; receiver picks its best antenna
                      ///< per packet (one active chain: the low-power
                      ///< diversity the paper's chain-switching idea wants)
};

/// Modulation/coding of one HT MCS index (0..31; index mod 8 selects the
/// base scheme, index / 8 + 1 the number of spatial streams).
struct HtMcsInfo {
  unsigned index;
  std::size_t n_ss;
  Modulation mod;
  CodeRate rate;
  std::size_t n_bpsc;
};

HtMcsInfo ht_mcs_info(unsigned index);

/// Data subcarriers per symbol per stream: 52 (20 MHz) or 108 (40 MHz).
std::size_t ht_data_tones(HtBandwidth bw);

/// Data subcarrier indices in ascending order (skipping DC and pilots);
/// map to FFT bins as (tone + n_fft) % n_fft. Used by the link-to-system
/// abstraction to sample a channel's frequency response on the HT grid.
std::vector<int> ht_data_tone_list(HtBandwidth bw);

/// FFT size: 64 (20 MHz) or 128 (40 MHz).
std::size_t ht_fft_size(HtBandwidth bw);

/// Channel sample rate in Hz.
double ht_sample_rate_hz(HtBandwidth bw);

/// Channel width in Hz (for spectral-efficiency accounting).
double ht_channel_width_hz(HtBandwidth bw);

/// OFDM symbol duration: 4 us (long GI) or 3.6 us (short GI).
double ht_symbol_duration_s(HtGuardInterval gi);

/// PHY data rate in Mbps for an MCS/bandwidth/GI combination.
/// MCS 31 + 40 MHz + short GI = 600 Mbps, the paper's headline 802.11n rate.
double ht_data_rate_mbps(unsigned mcs, HtBandwidth bw, HtGuardInterval gi);

struct HtConfig {
  unsigned mcs = 0;
  HtBandwidth bandwidth = HtBandwidth::k20MHz;
  HtGuardInterval guard = HtGuardInterval::kLong;
  HtCoding coding = HtCoding::kBcc;
  MimoDetector detector = MimoDetector::kMmse;
  SpatialScheme scheme = SpatialScheme::kDirectMap;
  std::size_t n_rx = 0;  ///< receive antennas; 0 means "= n_ss"
  std::size_t n_tx = 0;  ///< transmit antennas; 0 means scheme default
  /// true: genie channel knowledge at the receiver (TGn-evaluation
  /// style). false: the receiver estimates H per tone from simulated
  /// HT-LTF sounding (orthogonal P-matrix, one LTF per stream) at the
  /// same noise level — costs a fraction of a dB, like hardware does.
  /// Applies to the kDirectMap matrix path.
  bool ideal_csi = true;
};

/// One-link HT modem operating on per-subcarrier channel matrices.
class HtPhy {
 public:
  explicit HtPhy(const HtConfig& config);

  const HtConfig& config() const { return config_; }
  const HtMcsInfo& mcs_info() const { return mcs_; }
  std::size_t n_tx() const { return n_tx_; }
  std::size_t n_rx() const { return n_rx_; }
  double data_rate_mbps() const;
  double spectral_efficiency_bps_hz() const;

  std::size_t n_symbols_for_psdu(std::size_t psdu_bytes) const;

  /// Mixed-format PPDU airtime (legacy + HT preamble + data symbols).
  double ppdu_duration_s(std::size_t psdu_bytes) const;

  /// Draws a block-fading per-tone channel suitable for this config from
  /// the given delay profile (independent taps per antenna pair).
  std::vector<linalg::CMatrix> draw_channel(
      Rng& rng, channel::DelayProfile profile) const;

  /// Runs one packet through the frequency-domain link at per-RX-antenna
  /// SNR `snr_db` over the given per-tone channel. Returns the decoded
  /// PSDU (compare with the input to detect packet error).
  Bytes simulate_link(std::span<const std::uint8_t> psdu,
                      const std::vector<linalg::CMatrix>& tones,
                      double snr_db, Rng& rng) const;

  /// As simulate_link, resizing `out` and leasing the per-packet coding
  /// and detection scratch from `ws`. The per-tone detector setup still
  /// allocates (small matrices, SVD); the symbol/decode hot loops do not.
  /// Bitwise identical to simulate_link (same RNG draw order).
  void simulate_link_into(std::span<const std::uint8_t> psdu,
                          const std::vector<linalg::CMatrix>& tones,
                          double snr_db, Rng& rng, Bytes& out,
                          Workspace& ws) const;

  /// One lane of a batched link: that trial's PSDU, per-tone channel,
  /// and private Rng.
  struct TxLane {
    std::span<const std::uint8_t> psdu;
    const std::vector<linalg::CMatrix>* tones = nullptr;
    Rng* rng = nullptr;
  };

  /// Trial-batched simulate_link (dsp/batch.h): each lane's front end
  /// (encode, channel, detection, demap) runs sequentially on its own
  /// Rng, then every lane decodes in one batched Viterbi or LDPC sweep.
  /// out[l] receives lane l's PSDU; all lanes must carry PSDUs of one
  /// size; at most 16 lanes. With `quantized` false this is bitwise
  /// identical to simulate_link_into on each lane; true engages the
  /// int16 decoders (gated on PER deltas, not equality).
  void simulate_link_batch_into(std::span<const TxLane> lanes, double snr_db,
                                std::span<Bytes> out, bool quantized,
                                Workspace& ws) const;

 private:
  /// Front end shared by the scalar and batched links: encode through
  /// detection and demap, writing n_symbols * n_cbps coded-bit LLRs.
  void simulate_front_into(std::span<const std::uint8_t> psdu,
                           const std::vector<linalg::CMatrix>& tones,
                           double snr_db, Rng& rng,
                           std::span<double> coded_llrs, Workspace& ws) const;

  HtConfig config_;
  HtMcsInfo mcs_;
  std::size_t n_tx_ = 1;
  std::size_t n_rx_ = 1;
};

}  // namespace wlan::phy

#include "par/pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "obs/metrics.h"

namespace wlan::par {
namespace {

// Lane index of the current thread within its pool, or kNoLane for
// threads the pool did not spawn (the main thread, other pools' workers).
constexpr unsigned kNoLane = ~0u;
thread_local unsigned tl_lane = kNoLane;

std::atomic<bool> g_telemetry{false};

struct GlobalChunkStats {
  std::atomic<std::uint64_t> chunks{0};
  std::atomic<std::uint64_t> total_ns{0};
  std::atomic<std::uint64_t> max_ns{0};
};
GlobalChunkStats g_chunk_stats;

}  // namespace

bool telemetry_enabled() noexcept {
  return g_telemetry.load(std::memory_order_relaxed);
}

void set_telemetry_enabled(bool on) noexcept {
  g_telemetry.store(on, std::memory_order_relaxed);
}

ChunkStats chunk_stats() noexcept {
  ChunkStats s;
  s.chunks = g_chunk_stats.chunks.load(std::memory_order_relaxed);
  s.total_ns = g_chunk_stats.total_ns.load(std::memory_order_relaxed);
  s.max_ns = g_chunk_stats.max_ns.load(std::memory_order_relaxed);
  return s;
}

void reset_chunk_stats() noexcept {
  g_chunk_stats.chunks.store(0, std::memory_order_relaxed);
  g_chunk_stats.total_ns.store(0, std::memory_order_relaxed);
  g_chunk_stats.max_ns.store(0, std::memory_order_relaxed);
}

namespace detail {

std::uint64_t monotonic_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void record_chunk_ns(std::uint64_t ns) noexcept {
  g_chunk_stats.chunks.fetch_add(1, std::memory_order_relaxed);
  g_chunk_stats.total_ns.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t seen = g_chunk_stats.max_ns.load(std::memory_order_relaxed);
  while (ns > seen && !g_chunk_stats.max_ns.compare_exchange_weak(
                          seen, ns, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

LaneTelemetry PoolTelemetry::totals() const {
  LaneTelemetry t;
  for (const LaneTelemetry& lane : lanes) {
    t.tasks += lane.tasks;
    t.steal_attempts += lane.steal_attempts;
    t.steal_successes += lane.steal_successes;
    t.help_iterations += lane.help_iterations;
    t.busy_ns += lane.busy_ns;
    t.park_ns += lane.park_ns;
  }
  return t;
}

double PoolTelemetry::utilization(double wall_s) const {
  if (lanes.empty() || wall_s <= 0.0) return 0.0;
  const double busy_s = static_cast<double>(totals().busy_ns) * 1e-9;
  return busy_s / (static_cast<double>(lanes.size()) * wall_s);
}

double PoolTelemetry::imbalance() const {
  if (lanes.empty()) return 0.0;
  std::uint64_t max_busy = 0;
  std::uint64_t total_busy = 0;
  for (const LaneTelemetry& lane : lanes) {
    max_busy = std::max(max_busy, lane.busy_ns);
    total_busy += lane.busy_ns;
  }
  if (total_busy == 0) return 0.0;
  const double mean =
      static_cast<double>(total_busy) / static_cast<double>(lanes.size());
  return static_cast<double>(max_busy) / mean;
}

void publish_telemetry(obs::Registry& registry, const PoolTelemetry& pool,
                       const ChunkStats& chunks, double wall_s) {
  const LaneTelemetry totals = pool.totals();
  registry.counter("par.tasks").add(totals.tasks);
  registry.counter("par.steal_attempts").add(totals.steal_attempts);
  registry.counter("par.steal_successes").add(totals.steal_successes);
  registry.counter("par.help_iterations").add(totals.help_iterations);
  registry.counter("par.chunks").add(chunks.chunks);
  registry.gauge("par.lanes").set(static_cast<double>(pool.lanes.size()));
  registry.gauge("par.busy_s").set(static_cast<double>(totals.busy_ns) * 1e-9);
  registry.gauge("par.park_s").set(static_cast<double>(totals.park_ns) * 1e-9);
  registry.gauge("par.utilization").set(pool.utilization(wall_s));
  registry.gauge("par.imbalance").set(pool.imbalance());
  registry.gauge("par.chunk_mean_s")
      .set(chunks.chunks == 0 ? 0.0
                              : static_cast<double>(chunks.total_ns) * 1e-9 /
                                    static_cast<double>(chunks.chunks));
  registry.gauge("par.chunk_max_s")
      .set(static_cast<double>(chunks.max_ns) * 1e-9);
}

void EpochStats::record_round(double round_wall_s, const double* task_busy_s,
                              std::size_t n) {
  ++rounds;
  tasks = n;
  wall_s += round_wall_s;
  double max_busy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    busy_s += task_busy_s[i];
    max_busy = std::max(max_busy, task_busy_s[i]);
  }
  max_busy_s += max_busy;
}

double EpochStats::utilization(unsigned lanes) const {
  if (lanes == 0 || wall_s <= 0.0) return 0.0;
  const double u = busy_s / (wall_s * static_cast<double>(lanes));
  return std::min(1.0, std::max(0.0, u));
}

double EpochStats::imbalance() const {
  if (tasks == 0 || busy_s <= 0.0) return 0.0;
  const double mean_busy_s = busy_s / static_cast<double>(tasks);
  return max_busy_s / mean_busy_s;
}

void publish_epoch_stats(obs::Registry& registry, const EpochStats& stats,
                         unsigned lanes) {
  registry.gauge("par.epoch.rounds").set(static_cast<double>(stats.rounds));
  registry.gauge("par.epoch.wall_s").set(stats.wall_s);
  registry.gauge("par.epoch.utilization").set(stats.utilization(lanes));
  registry.gauge("par.epoch.imbalance").set(stats.imbalance());
}

ThreadPool::ThreadPool(unsigned jobs)
    : jobs_(std::max(1u, jobs == 0 ? hardware_jobs() : jobs)) {
  const unsigned workers = jobs_ - 1;
  lanes_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  stats_.reserve(jobs_);
  for (unsigned i = 0; i < jobs_; ++i) {
    stats_.push_back(std::make_unique<LaneStats>());
  }
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

unsigned ThreadPool::hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void ThreadPool::push_task(std::function<void()> task) {
  // Workers push to their own lane (back, LIFO for cache warmth);
  // external threads round-robin across lanes.
  unsigned lane = tl_lane;
  if (lane == kNoLane || lane >= lanes_.size()) {
    const std::lock_guard<std::mutex> lock(wake_mutex_);
    lane = static_cast<unsigned>(next_lane_++ % lanes_.size());
  }
  {
    const std::lock_guard<std::mutex> lock(lanes_[lane]->mutex);
    lanes_[lane]->tasks.push_back(std::move(task));
  }
  wake_cv_.notify_one();
}

ThreadPool::LaneStats& ThreadPool::stats_slot(unsigned home_lane) {
  // Workers own slots 0..jobs-2; every external caller shares the last.
  const std::size_t slot = (home_lane != kNoLane && home_lane < lanes_.size())
                               ? home_lane
                               : jobs_ - 1;
  return *stats_[slot];
}

PoolTelemetry ThreadPool::telemetry() const {
  PoolTelemetry t;
  t.lanes.reserve(jobs_);
  for (const auto& s : stats_) {
    LaneTelemetry lane;
    lane.tasks = s->tasks.load(std::memory_order_relaxed);
    lane.steal_attempts = s->steal_attempts.load(std::memory_order_relaxed);
    lane.steal_successes = s->steal_successes.load(std::memory_order_relaxed);
    lane.help_iterations = s->help_iterations.load(std::memory_order_relaxed);
    lane.busy_ns = s->busy_ns.load(std::memory_order_relaxed);
    lane.park_ns = s->park_ns.load(std::memory_order_relaxed);
    t.lanes.push_back(lane);
  }
  return t;
}

void ThreadPool::reset_telemetry() {
  for (const auto& s : stats_) {
    s->tasks.store(0, std::memory_order_relaxed);
    s->steal_attempts.store(0, std::memory_order_relaxed);
    s->steal_successes.store(0, std::memory_order_relaxed);
    s->help_iterations.store(0, std::memory_order_relaxed);
    s->busy_ns.store(0, std::memory_order_relaxed);
    s->park_ns.store(0, std::memory_order_relaxed);
  }
}

bool ThreadPool::try_run_one(unsigned home_lane) {
  const bool telem = telemetry_enabled();
  std::function<void()> task;
  // Own lane first (back = most recently pushed), then steal the oldest
  // task from the other lanes.
  if (home_lane != kNoLane && home_lane < lanes_.size()) {
    Lane& own = *lanes_[home_lane];
    const std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
    }
  }
  if (!task) {
    if (telem && !lanes_.empty()) {
      stats_slot(home_lane).steal_attempts.fetch_add(
          1, std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < lanes_.size() && !task; ++i) {
      const std::size_t victim =
          (home_lane == kNoLane ? i : (home_lane + 1 + i) % lanes_.size());
      if (victim >= lanes_.size()) continue;
      Lane& lane = *lanes_[victim];
      const std::lock_guard<std::mutex> lock(lane.mutex);
      if (!lane.tasks.empty()) {
        task = std::move(lane.tasks.front());
        lane.tasks.pop_front();
      }
    }
    if (telem && task) {
      stats_slot(home_lane).steal_successes.fetch_add(
          1, std::memory_order_relaxed);
    }
  }
  if (!task) return false;
  if (telem) {
    LaneStats& s = stats_slot(home_lane);
    const std::uint64_t t0 = detail::monotonic_ns();
    task();
    s.busy_ns.fetch_add(detail::monotonic_ns() - t0,
                        std::memory_order_relaxed);
    s.tasks.fetch_add(1, std::memory_order_relaxed);
  } else {
    task();
  }
  return true;
}

void ThreadPool::worker_loop(unsigned lane) {
  tl_lane = lane;
  for (;;) {
    if (try_run_one(lane)) continue;
    std::unique_lock<std::mutex> lock(wake_mutex_);
    if (stop_) return;
    // Re-check the queues under the wake mutex: push_task notifies after
    // enqueueing, so a task pushed between our scan and this wait would
    // otherwise be missed until the next notification.
    bool any = false;
    for (const auto& l : lanes_) {
      const std::lock_guard<std::mutex> qlock(l->mutex);
      if (!l->tasks.empty()) {
        any = true;
        break;
      }
    }
    if (any) continue;
    if (telemetry_enabled()) {
      const std::uint64_t t0 = detail::monotonic_ns();
      wake_cv_.wait(lock);
      stats_[lane]->park_ns.fetch_add(detail::monotonic_ns() - t0,
                                      std::memory_order_relaxed);
    } else {
      wake_cv_.wait(lock);
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  chunk = std::max<std::size_t>(1, chunk);

  // Pool of one lane (or a single chunk): run inline, no queues, no
  // synchronization — the serial path every single-threaded caller gets.
  // The caller slot still counts tasks/busy time so --jobs 1 reports a
  // meaningful utilization.
  if (jobs_ == 1 || n <= chunk) {
    if (telemetry_enabled()) {
      LaneStats& s = stats_slot(tl_lane);
      for (std::size_t begin = 0; begin < n; begin += chunk) {
        const std::uint64_t t0 = detail::monotonic_ns();
        fn(begin, std::min(n, begin + chunk));
        s.busy_ns.fetch_add(detail::monotonic_ns() - t0,
                            std::memory_order_relaxed);
        s.tasks.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      for (std::size_t begin = 0; begin < n; begin += chunk) {
        fn(begin, std::min(n, begin + chunk));
      }
    }
    return;
  }

  struct ForState {
    std::atomic<std::size_t> remaining{0};
    std::mutex mutex;
    std::condition_variable done_cv;
    bool done = false;  // set under mutex by the final chunk
    std::exception_ptr error;
  };
  ForState state;
  const std::size_t n_chunks = (n + chunk - 1) / chunk;
  state.remaining.store(n_chunks, std::memory_order_relaxed);

  for (std::size_t c = 0; c < n_chunks; ++c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    push_task([&state, &fn, begin, end] {
      try {
        fn(begin, end);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(state.mutex);
        if (!state.error) state.error = std::current_exception();
      }
      if (state.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        const std::lock_guard<std::mutex> lock(state.mutex);
        state.done = true;
        state.done_cv.notify_all();
      }
    });
  }

  // Help until every chunk of THIS call has finished. Helping may pick
  // up tasks of other in-flight parallel_for calls (nested submits) —
  // that is what makes reentrancy deadlock-free.
  const unsigned home = tl_lane;
  const bool telem = telemetry_enabled();
  while (state.remaining.load(std::memory_order_acquire) > 0) {
    if (telem) {
      stats_slot(home).help_iterations.fetch_add(1, std::memory_order_relaxed);
    }
    if (try_run_one(home)) continue;
    std::unique_lock<std::mutex> lock(state.mutex);
    if (state.done) break;
    // Our chunks are running on other threads; nothing left to steal.
    // Wake periodically in case a nested submit parked new work.
    if (telem) {
      const std::uint64_t t0 = detail::monotonic_ns();
      state.done_cv.wait_for(lock, std::chrono::milliseconds(1));
      stats_slot(home).park_ns.fetch_add(detail::monotonic_ns() - t0,
                                         std::memory_order_relaxed);
    } else {
      state.done_cv.wait_for(lock, std::chrono::milliseconds(1));
    }
  }
  // The final chunk flips `done` and notifies while holding state.mutex.
  // Waiting on that flag under the same mutex means this cannot return —
  // and ForState cannot be destroyed — until the notifier has released
  // the lock, i.e. fully left notify_all. Observing the relaxed counter
  // alone would allow destruction mid-broadcast.
  {
    std::unique_lock<std::mutex> lock(state.mutex);
    state.done_cv.wait(lock, [&state] { return state.done; });
  }
  if (state.error) std::rethrow_exception(state.error);
}

namespace {

std::mutex g_default_mutex;
std::unique_ptr<ThreadPool> g_default_pool;
unsigned g_default_jobs = 0;  // 0 = hardware_concurrency

}  // namespace

ThreadPool& default_pool() {
  const std::lock_guard<std::mutex> lock(g_default_mutex);
  if (!g_default_pool) {
    g_default_pool = std::make_unique<ThreadPool>(g_default_jobs);
  }
  return *g_default_pool;
}

void set_default_jobs(unsigned jobs) {
  const std::lock_guard<std::mutex> lock(g_default_mutex);
  g_default_jobs = jobs;
  g_default_pool.reset();  // next default_pool() call rebuilds at the new size
}

unsigned default_jobs() {
  const std::lock_guard<std::mutex> lock(g_default_mutex);
  return g_default_jobs == 0 ? ThreadPool::hardware_jobs() : g_default_jobs;
}

}  // namespace wlan::par

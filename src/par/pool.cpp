#include "par/pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>

namespace wlan::par {
namespace {

// Lane index of the current thread within its pool, or kNoLane for
// threads the pool did not spawn (the main thread, other pools' workers).
constexpr unsigned kNoLane = ~0u;
thread_local unsigned tl_lane = kNoLane;

}  // namespace

ThreadPool::ThreadPool(unsigned jobs)
    : jobs_(std::max(1u, jobs == 0 ? hardware_jobs() : jobs)) {
  const unsigned workers = jobs_ - 1;
  lanes_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

unsigned ThreadPool::hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void ThreadPool::push_task(std::function<void()> task) {
  // Workers push to their own lane (back, LIFO for cache warmth);
  // external threads round-robin across lanes.
  unsigned lane = tl_lane;
  if (lane == kNoLane || lane >= lanes_.size()) {
    const std::lock_guard<std::mutex> lock(wake_mutex_);
    lane = static_cast<unsigned>(next_lane_++ % lanes_.size());
  }
  {
    const std::lock_guard<std::mutex> lock(lanes_[lane]->mutex);
    lanes_[lane]->tasks.push_back(std::move(task));
  }
  wake_cv_.notify_one();
}

bool ThreadPool::try_run_one(unsigned home_lane) {
  std::function<void()> task;
  // Own lane first (back = most recently pushed), then steal the oldest
  // task from the other lanes.
  if (home_lane != kNoLane && home_lane < lanes_.size()) {
    Lane& own = *lanes_[home_lane];
    const std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
    }
  }
  if (!task) {
    for (std::size_t i = 0; i < lanes_.size() && !task; ++i) {
      const std::size_t victim =
          (home_lane == kNoLane ? i : (home_lane + 1 + i) % lanes_.size());
      if (victim >= lanes_.size()) continue;
      Lane& lane = *lanes_[victim];
      const std::lock_guard<std::mutex> lock(lane.mutex);
      if (!lane.tasks.empty()) {
        task = std::move(lane.tasks.front());
        lane.tasks.pop_front();
      }
    }
  }
  if (!task) return false;
  task();
  return true;
}

void ThreadPool::worker_loop(unsigned lane) {
  tl_lane = lane;
  for (;;) {
    if (try_run_one(lane)) continue;
    std::unique_lock<std::mutex> lock(wake_mutex_);
    if (stop_) return;
    // Re-check the queues under the wake mutex: push_task notifies after
    // enqueueing, so a task pushed between our scan and this wait would
    // otherwise be missed until the next notification.
    bool any = false;
    for (const auto& l : lanes_) {
      const std::lock_guard<std::mutex> qlock(l->mutex);
      if (!l->tasks.empty()) {
        any = true;
        break;
      }
    }
    if (any) continue;
    wake_cv_.wait(lock);
  }
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  chunk = std::max<std::size_t>(1, chunk);

  // Pool of one lane (or a single chunk): run inline, no queues, no
  // synchronization — the serial path every single-threaded caller gets.
  if (jobs_ == 1 || n <= chunk) {
    for (std::size_t begin = 0; begin < n; begin += chunk) {
      fn(begin, std::min(n, begin + chunk));
    }
    return;
  }

  struct ForState {
    std::atomic<std::size_t> remaining{0};
    std::mutex mutex;
    std::condition_variable done_cv;
    bool done = false;  // set under mutex by the final chunk
    std::exception_ptr error;
  };
  ForState state;
  const std::size_t n_chunks = (n + chunk - 1) / chunk;
  state.remaining.store(n_chunks, std::memory_order_relaxed);

  for (std::size_t c = 0; c < n_chunks; ++c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    push_task([&state, &fn, begin, end] {
      try {
        fn(begin, end);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(state.mutex);
        if (!state.error) state.error = std::current_exception();
      }
      if (state.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        const std::lock_guard<std::mutex> lock(state.mutex);
        state.done = true;
        state.done_cv.notify_all();
      }
    });
  }

  // Help until every chunk of THIS call has finished. Helping may pick
  // up tasks of other in-flight parallel_for calls (nested submits) —
  // that is what makes reentrancy deadlock-free.
  const unsigned home = tl_lane;
  while (state.remaining.load(std::memory_order_acquire) > 0) {
    if (try_run_one(home)) continue;
    std::unique_lock<std::mutex> lock(state.mutex);
    if (state.done) break;
    // Our chunks are running on other threads; nothing left to steal.
    // Wake periodically in case a nested submit parked new work.
    state.done_cv.wait_for(lock, std::chrono::milliseconds(1));
  }
  // The final chunk flips `done` and notifies while holding state.mutex.
  // Waiting on that flag under the same mutex means this cannot return —
  // and ForState cannot be destroyed — until the notifier has released
  // the lock, i.e. fully left notify_all. Observing the relaxed counter
  // alone would allow destruction mid-broadcast.
  {
    std::unique_lock<std::mutex> lock(state.mutex);
    state.done_cv.wait(lock, [&state] { return state.done; });
  }
  if (state.error) std::rethrow_exception(state.error);
}

namespace {

std::mutex g_default_mutex;
std::unique_ptr<ThreadPool> g_default_pool;
unsigned g_default_jobs = 0;  // 0 = hardware_concurrency

}  // namespace

ThreadPool& default_pool() {
  const std::lock_guard<std::mutex> lock(g_default_mutex);
  if (!g_default_pool) {
    g_default_pool = std::make_unique<ThreadPool>(g_default_jobs);
  }
  return *g_default_pool;
}

void set_default_jobs(unsigned jobs) {
  const std::lock_guard<std::mutex> lock(g_default_mutex);
  g_default_jobs = jobs;
  g_default_pool.reset();  // next default_pool() call rebuilds at the new size
}

unsigned default_jobs() {
  const std::lock_guard<std::mutex> lock(g_default_mutex);
  return g_default_jobs == 0 ? ThreadPool::hardware_jobs() : g_default_jobs;
}

}  // namespace wlan::par

#include "par/montecarlo.h"

#include <array>
#include <mutex>

#include "obs/timer.h"

namespace wlan::par {
namespace {

constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ull;

std::uint64_t splitmix_finalize(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// Serializes shard-into-target registry merges across all sweeps. One
// global mutex is enough: merges happen once per retired chunk, not per
// sample.
std::mutex g_profile_merge_mutex;

}  // namespace

std::uint64_t derive_seed(std::uint64_t root, std::uint64_t point,
                          std::uint64_t trial) {
  // SplitMix64 finalizer chain absorbing each counter in turn; the
  // odd-constant multiplies keep (point, trial) and (trial, point)
  // from colliding.
  std::uint64_t z = splitmix_finalize(root + kGolden);
  z = splitmix_finalize(z + point * 0xBF58476D1CE4E5B9ull + kGolden);
  z = splitmix_finalize(z + trial * 0x94D049BB133111EBull + kGolden);
  return z;
}

namespace detail {

struct ProfileShardGuard::Impl {
  const ProfileTargets* targets = nullptr;
  // Kernel-histogram shard (used when targets->registry is set).
  obs::Registry shard;
  std::array<obs::Histogram*, obs::kKernelCount> saved_hist{};
  obs::Registry* saved_registry = nullptr;
  bool kernel_armed = false;
  // Saved span arming (used when targets->spans is set).
  obs::perf::detail::SpanCollector* saved_collector = nullptr;
  obs::perf::detail::SpanNode* saved_current = nullptr;
  obs::perf::SpanProfile* saved_span_target = nullptr;
  bool span_armed = false;
};

ProfileShardGuard::ProfileShardGuard(const ProfileTargets& targets) {
  if (!targets.active()) return;
  impl_ = new Impl;
  impl_->targets = &targets;
  obs::perf::detail::PerfTls& tls = obs::perf::detail::tls();
  if (targets.registry != nullptr) {
    impl_->saved_hist = tls.kernel_hist;
    impl_->saved_registry = tls.kernel_registry;
    obs::enable_kernel_profiling(impl_->shard);
    impl_->kernel_armed = true;
  }
  if (targets.spans != nullptr) {
    // Arm the executing thread's dedicated shard collector: draining it
    // at retire can then never sweep up spans the thread recorded
    // outside this chunk (the caller helping from inside its own open
    // spans keeps those in thread_collector()).
    impl_->saved_collector = tls.collector;
    impl_->saved_current = tls.current;
    impl_->saved_span_target = tls.target;
    obs::perf::detail::SpanCollector& shard =
        obs::perf::detail::shard_collector();
    tls.collector = &shard;
    tls.current = shard.root();
    tls.target = targets.spans;
    impl_->span_armed = true;
  }
}

ProfileShardGuard::~ProfileShardGuard() {
  if (!impl_) return;
  obs::perf::detail::PerfTls& tls = obs::perf::detail::tls();
  if (impl_->span_armed) {
    // SpanProfile::add is internally synchronized; no global lock needed.
    obs::perf::detail::shard_collector().drain_into(*impl_->targets->spans,
                                                    impl_->targets->prefix);
    tls.collector = impl_->saved_collector;
    tls.current = impl_->saved_current;
    tls.target = impl_->saved_span_target;
  }
  if (impl_->kernel_armed) {
    tls.kernel_hist = impl_->saved_hist;
    tls.kernel_registry = impl_->saved_registry;
    const std::lock_guard<std::mutex> lock(g_profile_merge_mutex);
    impl_->targets->registry->merge(impl_->shard);
  }
  delete impl_;
}

ProfileTargets profiling_targets() {
  ProfileTargets targets;
  targets.registry = obs::kernel_profiling_registry();
  targets.spans = obs::perf::span_profiling_target();
  if (targets.spans != nullptr) targets.prefix = obs::perf::current_path();
  return targets;
}

std::size_t auto_chunk(std::size_t n_trials) {
  // Aim for ~64 chunks: enough granularity for stealing to balance an
  // 8..32-lane pool, coarse enough that per-chunk overhead (a shard
  // registry when profiling) stays negligible. Depends on the trial
  // count ONLY — a jobs-derived chunk would change reduction grouping,
  // and with it floating-point sums, across thread counts.
  return std::max<std::size_t>(1, (n_trials + 63) / 64);
}

ThreadPool& select_pool(const SweepOptions& opt,
                        std::unique_ptr<ThreadPool>& owned) {
  if (opt.jobs == 0) return default_pool();
  owned = std::make_unique<ThreadPool>(opt.jobs);
  return *owned;
}

}  // namespace detail
}  // namespace wlan::par

#include "par/montecarlo.h"

#include <array>
#include <mutex>

#include "obs/timer.h"

namespace wlan::par {
namespace {

constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ull;

std::uint64_t splitmix_finalize(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// Serializes shard-into-target registry merges across all sweeps. One
// global mutex is enough: merges happen once per retired chunk, not per
// sample.
std::mutex g_profile_merge_mutex;

}  // namespace

std::uint64_t derive_seed(std::uint64_t root, std::uint64_t point,
                          std::uint64_t trial) {
  // SplitMix64 finalizer chain absorbing each counter in turn; the
  // odd-constant multiplies keep (point, trial) and (trial, point)
  // from colliding.
  std::uint64_t z = splitmix_finalize(root + kGolden);
  z = splitmix_finalize(z + point * 0xBF58476D1CE4E5B9ull + kGolden);
  z = splitmix_finalize(z + trial * 0x94D049BB133111EBull + kGolden);
  return z;
}

namespace detail {

struct ProfileShardGuard::Impl {
  obs::Registry* target;
  obs::Registry shard;
  std::array<obs::Histogram*, obs::kKernelCount> saved_hist;
  obs::Registry* saved_registry;
};

ProfileShardGuard::ProfileShardGuard(obs::Registry* target) {
  if (!target) return;
  impl_ = new Impl;
  impl_->target = target;
  impl_->saved_hist = obs::detail::g_kernel_hist;
  impl_->saved_registry = obs::detail::g_kernel_registry;
  obs::enable_kernel_profiling(impl_->shard);
}

ProfileShardGuard::~ProfileShardGuard() {
  if (!impl_) return;
  obs::detail::g_kernel_hist = impl_->saved_hist;
  obs::detail::g_kernel_registry = impl_->saved_registry;
  {
    const std::lock_guard<std::mutex> lock(g_profile_merge_mutex);
    impl_->target->merge(impl_->shard);
  }
  delete impl_;
}

obs::Registry* profiling_target() { return obs::kernel_profiling_registry(); }

std::size_t auto_chunk(std::size_t n_trials) {
  // Aim for ~64 chunks: enough granularity for stealing to balance an
  // 8..32-lane pool, coarse enough that per-chunk overhead (a shard
  // registry when profiling) stays negligible. Depends on the trial
  // count ONLY — a jobs-derived chunk would change reduction grouping,
  // and with it floating-point sums, across thread counts.
  return std::max<std::size_t>(1, (n_trials + 63) / 64);
}

ThreadPool& select_pool(const SweepOptions& opt,
                        std::unique_ptr<ThreadPool>& owned) {
  if (opt.jobs == 0) return default_pool();
  owned = std::make_unique<ThreadPool>(opt.jobs);
  return *owned;
}

}  // namespace detail
}  // namespace wlan::par

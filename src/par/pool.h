// Chunked work-stealing thread pool for the Monte-Carlo engine.
//
// One process-wide pool (default_pool) sized by --jobs / set_default_jobs;
// sweeps submit chunk tasks and the calling thread participates, so a
// pool of size 1 runs everything inline on the caller (no worker threads
// at all — the path every existing serial test exercises).
//
// Scheduling model: each worker owns a deque; it pops from the back of
// its own deque (LIFO, cache-warm) and steals from the front of other
// workers' deques (FIFO, oldest-first). Submissions from outside the
// pool round-robin across worker deques. A thread blocked in
// `parallel_for` drains tasks — its own or stolen, including tasks of
// *other* in-flight parallel_for calls — so nested submits cannot
// deadlock.
//
// Determinism contract: the pool never influences results. Work items
// write into disjoint slots and chunk boundaries are fixed by the caller
// (par/montecarlo.h derives them from the trial count alone), so the
// schedule — which thread runs which chunk, and in what order — is
// invisible to the output.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace wlan::obs {
class Registry;
}  // namespace wlan::obs

namespace wlan::par {

/// Snapshot of one execution lane's counters (see ThreadPool::telemetry).
struct LaneTelemetry {
  std::uint64_t tasks = 0;            ///< tasks this lane executed
  std::uint64_t steal_attempts = 0;   ///< empty-own-deque scans of other lanes
  std::uint64_t steal_successes = 0;  ///< scans that found a task
  std::uint64_t help_iterations = 0;  ///< parallel_for help-while-waiting loops
  std::uint64_t busy_ns = 0;          ///< wall time inside task bodies
  std::uint64_t park_ns = 0;          ///< wall time blocked waiting for work
};

/// Per-lane counters of a pool since creation (or reset_telemetry).
/// Lanes 0..size-2 are the worker threads; the last lane aggregates
/// every external caller (the thread driving parallel_for).
struct PoolTelemetry {
  std::vector<LaneTelemetry> lanes;

  LaneTelemetry totals() const;
  /// Fraction of `lanes * wall_s` spent inside task bodies (0 when the
  /// pool was never used or wall_s is not positive).
  double utilization(double wall_s) const;
  /// Max/mean lane busy time: 1.0 = perfectly balanced, higher = one
  /// lane did disproportionate work; 0 when no lane was ever busy.
  double imbalance() const;
};

/// Process-wide switch for pool + chunk telemetry. Off by default: the
/// instrumented paths then pay one relaxed atomic load and a branch per
/// task (no clock reads). bench_util arms it behind --json/--profile.
bool telemetry_enabled() noexcept;
void set_telemetry_enabled(bool on) noexcept;

/// Aggregate per-chunk wall times recorded by par::sweep/montecarlo/map
/// while telemetry is enabled (process-wide, across every pool).
struct ChunkStats {
  std::uint64_t chunks = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
};
ChunkStats chunk_stats() noexcept;
void reset_chunk_stats() noexcept;

/// Publishes pool + chunk telemetry into `registry` under par.*:
/// counters par.tasks / par.steal_attempts / par.steal_successes /
/// par.help_iterations / par.chunks, gauges par.lanes / par.busy_s /
/// par.park_s / par.utilization / par.imbalance / par.chunk_mean_s /
/// par.chunk_max_s. Fixed creation order.
void publish_telemetry(obs::Registry& registry, const PoolTelemetry& pool,
                       const ChunkStats& chunks, double wall_s);

/// Lockstep-epoch barrier telemetry. A conservative-time driver (the
/// netsim border exchange) calls `record_round` once per epoch with the
/// barrier's wall time and each shard's busy time inside it; the
/// aggregates diagnose barrier stalls: `utilization` is how much of the
/// lanes' capacity the epochs filled, `imbalance` how lopsided the
/// per-round shard work was (the slowest shard gates every round).
/// Wall-clock data — never fold into determinism-gated metrics.
struct EpochStats {
  std::size_t rounds = 0;
  std::size_t tasks = 0;   ///< shards per round (last recorded)
  double wall_s = 0.0;     ///< summed round wall times
  double busy_s = 0.0;     ///< summed per-shard busy times
  double max_busy_s = 0.0; ///< summed per-round slowest-shard times

  void record_round(double round_wall_s, const double* task_busy_s,
                    std::size_t n);
  /// busy / (wall * lanes), clamped to [0, 1]; 0 when unused.
  double utilization(unsigned lanes) const;
  /// Mean over rounds of max/mean shard busy; 1.0 = balanced, 0 unused.
  double imbalance() const;
};

/// Publishes epoch-barrier telemetry into `registry`: gauges
/// par.epoch.rounds / par.epoch.wall_s / par.epoch.utilization /
/// par.epoch.imbalance. Fixed creation order. Wall-clock values — keep
/// the registry out of bitwise-comparison paths.
void publish_epoch_stats(obs::Registry& registry, const EpochStats& stats,
                         unsigned lanes);

namespace detail {
/// steady_clock in integer nanoseconds (telemetry timestamps).
std::uint64_t monotonic_ns() noexcept;
/// Folds one chunk wall time into the process-wide ChunkStats.
void record_chunk_ns(std::uint64_t ns) noexcept;
}  // namespace detail

/// Work-stealing pool of `jobs` execution lanes (the caller of
/// parallel_for counts as one; `jobs - 1` worker threads are spawned).
class ThreadPool {
 public:
  /// `jobs` >= 1; 0 means hardware_concurrency().
  explicit ThreadPool(unsigned jobs = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (worker threads + the submitting caller).
  unsigned size() const { return jobs_; }

  /// Runs `fn(begin, end)` over consecutive sub-ranges of [0, n) of at
  /// most `chunk` indices each. Blocks until every chunk finished; the
  /// calling thread executes chunks too. The first exception thrown by
  /// any chunk is rethrown here (after all chunks have drained); the
  /// pool remains usable. Reentrant: chunks may call parallel_for.
  void parallel_for(std::size_t n, std::size_t chunk,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// hardware_concurrency(), floored at 1.
  static unsigned hardware_jobs();

  /// Counter snapshot per lane (workers first, external callers pooled
  /// in the last slot). Counts only accumulate while
  /// `telemetry_enabled()`; zero-cost otherwise.
  PoolTelemetry telemetry() const;
  void reset_telemetry();

 private:
  struct Lane {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  // Relaxed atomics: each slot is written by its own lane almost always
  // (external callers share the last slot), read only by telemetry().
  struct alignas(64) LaneStats {
    std::atomic<std::uint64_t> tasks{0};
    std::atomic<std::uint64_t> steal_attempts{0};
    std::atomic<std::uint64_t> steal_successes{0};
    std::atomic<std::uint64_t> help_iterations{0};
    std::atomic<std::uint64_t> busy_ns{0};
    std::atomic<std::uint64_t> park_ns{0};
  };

  void worker_loop(unsigned lane);
  bool try_run_one(unsigned home_lane);
  void push_task(std::function<void()> task);
  LaneStats& stats_slot(unsigned home_lane);

  unsigned jobs_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::unique_ptr<LaneStats>> stats_;  // jobs_ slots
  std::vector<std::thread> threads_;
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::size_t next_lane_ = 0;  // round-robin target for external submits
  bool stop_ = false;
};

/// The process-wide pool, created on first use with `default_jobs()`
/// lanes. Thread-safe.
ThreadPool& default_pool();

/// Sets the lane count used when the default pool is (re)created, and
/// drops any existing default pool so the next use picks it up. Call
/// from the main thread before starting parallel work (bench_util wires
/// `--jobs` here). `jobs == 0` restores hardware_concurrency.
void set_default_jobs(unsigned jobs);

/// Lane count the default pool has (or will have on first use).
unsigned default_jobs();

}  // namespace wlan::par

// Chunked work-stealing thread pool for the Monte-Carlo engine.
//
// One process-wide pool (default_pool) sized by --jobs / set_default_jobs;
// sweeps submit chunk tasks and the calling thread participates, so a
// pool of size 1 runs everything inline on the caller (no worker threads
// at all — the path every existing serial test exercises).
//
// Scheduling model: each worker owns a deque; it pops from the back of
// its own deque (LIFO, cache-warm) and steals from the front of other
// workers' deques (FIFO, oldest-first). Submissions from outside the
// pool round-robin across worker deques. A thread blocked in
// `parallel_for` drains tasks — its own or stolen, including tasks of
// *other* in-flight parallel_for calls — so nested submits cannot
// deadlock.
//
// Determinism contract: the pool never influences results. Work items
// write into disjoint slots and chunk boundaries are fixed by the caller
// (par/montecarlo.h derives them from the trial count alone), so the
// schedule — which thread runs which chunk, and in what order — is
// invisible to the output.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace wlan::par {

/// Work-stealing pool of `jobs` execution lanes (the caller of
/// parallel_for counts as one; `jobs - 1` worker threads are spawned).
class ThreadPool {
 public:
  /// `jobs` >= 1; 0 means hardware_concurrency().
  explicit ThreadPool(unsigned jobs = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (worker threads + the submitting caller).
  unsigned size() const { return jobs_; }

  /// Runs `fn(begin, end)` over consecutive sub-ranges of [0, n) of at
  /// most `chunk` indices each. Blocks until every chunk finished; the
  /// calling thread executes chunks too. The first exception thrown by
  /// any chunk is rethrown here (after all chunks have drained); the
  /// pool remains usable. Reentrant: chunks may call parallel_for.
  void parallel_for(std::size_t n, std::size_t chunk,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// hardware_concurrency(), floored at 1.
  static unsigned hardware_jobs();

 private:
  struct Lane {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(unsigned lane);
  bool try_run_one(unsigned home_lane);
  void push_task(std::function<void()> task);

  unsigned jobs_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::thread> threads_;
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::size_t next_lane_ = 0;  // round-robin target for external submits
  bool stop_ = false;
};

/// The process-wide pool, created on first use with `default_jobs()`
/// lanes. Thread-safe.
ThreadPool& default_pool();

/// Sets the lane count used when the default pool is (re)created, and
/// drops any existing default pool so the next use picks it up. Call
/// from the main thread before starting parallel work (bench_util wires
/// `--jobs` here). `jobs == 0` restores hardware_concurrency.
void set_default_jobs(unsigned jobs);

/// Lane count the default pool has (or will have on first use).
unsigned default_jobs();

}  // namespace wlan::par

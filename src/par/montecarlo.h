// Deterministic parallel Monte-Carlo sweeps.
//
// Every trial of a sweep gets its own Rng seeded by a counter-based
// SplitMix64 derivation over (root_seed, point_index, trial_index) —
// no trial ever consumes another trial's randomness, so the result of a
// sweep is a pure function of (root_seed, point count, trial count,
// chunk size) and is bitwise identical for ANY number of threads,
// including one. Chunk boundaries are derived from the trial count
// alone (never from the thread count), and per-chunk partial results
// are reduced in chunk-index order on the calling thread, so even
// non-associative floating-point reductions are schedule-independent.
//
// Kernel profiling (obs/timer.h) is sharded automatically: when the
// calling thread has profiling armed, each chunk records into a private
// shard registry that is merged into the caller's profiling registry
// (mutex-guarded) as the chunk retires. Worker threads never touch the
// caller's histograms directly.
//
// Span profiling (obs/perf.h) shards the same way: when the calling
// thread has span profiling armed, each chunk arms the executing
// thread's shard collector, opens an "mc.chunk" (or "mc.map") span, and
// drains the shard into the caller's SpanProfile as the chunk retires —
// prefixed with the caller's open span path captured before fan-out, so
// worker spans graft under the sweep's call site. SpanProfile rows are
// integer counters merged by commutative addition and published in
// sorted path order, so the merged profile is bitwise identical for any
// --jobs. With par::telemetry_enabled() the chunk loop also records
// per-chunk wall times into par::chunk_stats().
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/perf.h"
#include "par/pool.h"

namespace wlan::par {

/// Counter-based seed for trial `trial` of sweep point `point` under
/// `root`: a SplitMix64-style finalizer chain absorbing each counter.
/// Statistically independent across neighbouring counters.
std::uint64_t derive_seed(std::uint64_t root, std::uint64_t point,
                          std::uint64_t trial);

/// Fresh generator for one (point, trial) cell.
inline Rng trial_rng(std::uint64_t root, std::uint64_t point,
                     std::uint64_t trial) {
  return Rng(derive_seed(root, point, trial));
}

/// Upper bound on the lane count of batched sweeps (the PHY kernels'
/// survivor masks and lane bookkeeping are sized for 16 lanes).
inline constexpr std::size_t kMaxBatch = 16;

/// Knobs shared by every sweep entry point.
struct SweepOptions {
  /// Root of the per-trial seed derivation. Two sweeps with the same
  /// root and shape produce identical results.
  std::uint64_t root_seed = 0x9E3779B97F4A7C15ull;
  /// Execution lanes; 0 = the process default pool (see --jobs).
  /// A private pool of this size is used when nonzero.
  unsigned jobs = 0;
  /// Trials per chunk; 0 = automatic (a function of the trial count
  /// only — NEVER of `jobs`, which would break cross-thread-count
  /// determinism of floating-point reductions).
  std::size_t chunk = 0;
};

namespace detail {

/// Profiling destinations captured on the sweep-initiating thread
/// before fan-out: the kernel-histogram registry, the span profile, and
/// the caller's open span path (worker chunk spans graft under it).
struct ProfileTargets {
  obs::Registry* registry = nullptr;
  obs::perf::SpanProfile* spans = nullptr;
  std::string prefix;
  bool active() const { return registry != nullptr || spans != nullptr; }
};

/// Arms thread-local kernel and span profiling at private per-thread
/// shards for the guard's lifetime (no-op when `targets` is inactive);
/// on destruction restores the previous arming, merges the kernel shard
/// into targets.registry under a global mutex, and drains the span
/// shard into targets.spans with targets.prefix. `targets` must outlive
/// the guard (the sweep templates keep it alive across parallel_for).
class ProfileShardGuard {
 public:
  explicit ProfileShardGuard(const ProfileTargets& targets);
  ~ProfileShardGuard();
  ProfileShardGuard(const ProfileShardGuard&) = delete;
  ProfileShardGuard& operator=(const ProfileShardGuard&) = delete;

 private:
  struct Impl;
  Impl* impl_ = nullptr;
};

/// The profiling targets armed on the calling thread (inactive when
/// profiling is off) — captured once per sweep, before fan-out.
ProfileTargets profiling_targets();

/// Chunk size used when SweepOptions::chunk == 0. Depends on n only.
std::size_t auto_chunk(std::size_t n_trials);

/// Pool selected by `opt` (the default pool, or a private one).
/// Returns the default pool when opt.jobs == 0; otherwise the caller
/// owns the returned pool via `owned`.
ThreadPool& select_pool(const SweepOptions& opt,
                        std::unique_ptr<ThreadPool>& owned);

}  // namespace detail

/// Runs `n_trials` Monte-Carlo trials of sweep point `point` and folds
/// them into one `Result` (default-constructed, value-initialized).
///
///   trial(point, t, rng, acc)  — runs trial t, accumulating into acc;
///                                `rng` is the trial's private generator.
///   merge(acc, partial)        — folds a chunk partial into acc;
///                                called in chunk order.
template <class Result, class TrialFn, class MergeFn>
Result montecarlo(std::size_t n_trials, std::uint64_t point,
                  const SweepOptions& opt, TrialFn&& trial, MergeFn&& merge) {
  check(n_trials > 0, "par::montecarlo requires at least one trial");
  const std::size_t chunk =
      opt.chunk ? opt.chunk : detail::auto_chunk(n_trials);
  const std::size_t n_chunks = (n_trials + chunk - 1) / chunk;
  std::vector<Result> partial(n_chunks);
  const detail::ProfileTargets prof = detail::profiling_targets();

  std::unique_ptr<ThreadPool> owned;
  ThreadPool& pool = detail::select_pool(opt, owned);
  pool.parallel_for(n_chunks, 1, [&](std::size_t cb, std::size_t ce) {
    for (std::size_t c = cb; c < ce; ++c) {
      const detail::ProfileShardGuard shard(prof);
      const bool telem = telemetry_enabled();
      const std::uint64_t c_begin = telem ? detail::monotonic_ns() : 0;
      {
        const obs::perf::ScopedSpan chunk_span("mc.chunk");
        const std::size_t t0 = c * chunk;
        const std::size_t t1 = std::min(n_trials, t0 + chunk);
        Result acc{};
        for (std::size_t t = t0; t < t1; ++t) {
          Rng rng = trial_rng(opt.root_seed, point, t);
          trial(point, t, rng, acc);
        }
        partial[c] = std::move(acc);
      }
      if (telem) detail::record_chunk_ns(detail::monotonic_ns() - c_begin);
    }
  });

  Result out{};
  for (std::size_t c = 0; c < n_chunks; ++c) merge(out, partial[c]);
  return out;
}

/// Trial-batched montecarlo: trials run in groups of up to `batch`
/// lanes so the group function can push them through the PHY in SIMD
/// lockstep (dsp/batch.h).
///
///   group(point, t0, rngs, acc) — runs trials [t0, t0 + rngs.size()),
///                                 where rngs[i] is the private generator
///                                 of trial t0 + i (the same trial_rng
///                                 derivation the scalar engine uses);
///                                 folds into acc in trial order.
///
/// The chunk size is rounded up to a multiple of `batch`, so group
/// boundaries are a pure function of (n_trials, batch, opt.chunk) —
/// every group starts at a multiple of `batch` regardless of --jobs,
/// and only the final group of a point can be short. A group function
/// whose per-trial results match the scalar trial function therefore
/// reproduces montecarlo() bitwise for any thread count.
template <class Result, class GroupFn, class MergeFn>
Result montecarlo_batched(std::size_t n_trials, std::uint64_t point,
                          std::size_t batch, const SweepOptions& opt,
                          GroupFn&& group, MergeFn&& merge) {
  check(n_trials > 0, "par::montecarlo_batched requires at least one trial");
  check(batch >= 1 && batch <= kMaxBatch,
        "par::montecarlo_batched batch size out of range");
  const std::size_t chunk0 =
      opt.chunk ? opt.chunk : detail::auto_chunk(n_trials);
  const std::size_t chunk = ((chunk0 + batch - 1) / batch) * batch;
  const std::size_t n_chunks = (n_trials + chunk - 1) / chunk;
  std::vector<Result> partial(n_chunks);
  const detail::ProfileTargets prof = detail::profiling_targets();

  std::unique_ptr<ThreadPool> owned;
  ThreadPool& pool = detail::select_pool(opt, owned);
  pool.parallel_for(n_chunks, 1, [&](std::size_t cb, std::size_t ce) {
    for (std::size_t c = cb; c < ce; ++c) {
      const detail::ProfileShardGuard shard(prof);
      const bool telem = telemetry_enabled();
      const std::uint64_t c_begin = telem ? detail::monotonic_ns() : 0;
      {
        const obs::perf::ScopedSpan chunk_span("mc.chunk");
        const std::size_t t0 = c * chunk;
        const std::size_t t1 = std::min(n_trials, t0 + chunk);
        Result acc{};
        std::array<Rng, kMaxBatch> rngs;
        for (std::size_t g0 = t0; g0 < t1; g0 += batch) {
          const std::size_t n_g = std::min(batch, t1 - g0);
          for (std::size_t i = 0; i < n_g; ++i) {
            rngs[i] = trial_rng(opt.root_seed, point, g0 + i);
          }
          group(point, g0, std::span<Rng>(rngs.data(), n_g), acc);
        }
        partial[c] = std::move(acc);
      }
      if (telem) detail::record_chunk_ns(detail::monotonic_ns() - c_begin);
    }
  });

  Result out{};
  for (std::size_t c = 0; c < n_chunks; ++c) merge(out, partial[c]);
  return out;
}

/// Sweep over `n_points` points x `n_trials` trials; returns one merged
/// Result per point (in point order). Chunks never straddle points, so
/// each point's reduction order is fixed regardless of thread count.
template <class Result, class TrialFn, class MergeFn>
std::vector<Result> sweep(std::size_t n_points, std::size_t n_trials,
                          const SweepOptions& opt, TrialFn&& trial,
                          MergeFn&& merge) {
  check(n_points > 0 && n_trials > 0, "par::sweep requires points and trials");
  const std::size_t chunk =
      opt.chunk ? opt.chunk : detail::auto_chunk(n_trials);
  const std::size_t chunks_per_point = (n_trials + chunk - 1) / chunk;
  const std::size_t total = n_points * chunks_per_point;
  std::vector<Result> partial(total);
  const detail::ProfileTargets prof = detail::profiling_targets();

  std::unique_ptr<ThreadPool> owned;
  ThreadPool& pool = detail::select_pool(opt, owned);
  pool.parallel_for(total, 1, [&](std::size_t cb, std::size_t ce) {
    for (std::size_t c = cb; c < ce; ++c) {
      const detail::ProfileShardGuard shard(prof);
      const bool telem = telemetry_enabled();
      const std::uint64_t c_begin = telem ? detail::monotonic_ns() : 0;
      {
        const obs::perf::ScopedSpan chunk_span("mc.chunk");
        const std::size_t point = c / chunks_per_point;
        const std::size_t t0 = (c % chunks_per_point) * chunk;
        const std::size_t t1 = std::min(n_trials, t0 + chunk);
        Result acc{};
        for (std::size_t t = t0; t < t1; ++t) {
          Rng rng = trial_rng(opt.root_seed, point, t);
          trial(point, t, rng, acc);
        }
        partial[c] = std::move(acc);
      }
      if (telem) detail::record_chunk_ns(detail::monotonic_ns() - c_begin);
    }
  });

  std::vector<Result> out(n_points);
  for (std::size_t p = 0; p < n_points; ++p) {
    for (std::size_t c = 0; c < chunks_per_point; ++c) {
      merge(out[p], partial[p * chunks_per_point + c]);
    }
  }
  return out;
}

/// Batched variant of sweep(): groups of up to `batch` trials per
/// point, with the montecarlo_batched() group contract and the sweep()
/// guarantees (chunks group-aligned and never straddling points).
template <class Result, class GroupFn, class MergeFn>
std::vector<Result> sweep_batched(std::size_t n_points, std::size_t n_trials,
                                  std::size_t batch, const SweepOptions& opt,
                                  GroupFn&& group, MergeFn&& merge) {
  check(n_points > 0 && n_trials > 0,
        "par::sweep_batched requires points and trials");
  check(batch >= 1 && batch <= kMaxBatch,
        "par::sweep_batched batch size out of range");
  const std::size_t chunk0 =
      opt.chunk ? opt.chunk : detail::auto_chunk(n_trials);
  const std::size_t chunk = ((chunk0 + batch - 1) / batch) * batch;
  const std::size_t chunks_per_point = (n_trials + chunk - 1) / chunk;
  const std::size_t total = n_points * chunks_per_point;
  std::vector<Result> partial(total);
  const detail::ProfileTargets prof = detail::profiling_targets();

  std::unique_ptr<ThreadPool> owned;
  ThreadPool& pool = detail::select_pool(opt, owned);
  pool.parallel_for(total, 1, [&](std::size_t cb, std::size_t ce) {
    for (std::size_t c = cb; c < ce; ++c) {
      const detail::ProfileShardGuard shard(prof);
      const bool telem = telemetry_enabled();
      const std::uint64_t c_begin = telem ? detail::monotonic_ns() : 0;
      {
        const obs::perf::ScopedSpan chunk_span("mc.chunk");
        const std::size_t point = c / chunks_per_point;
        const std::size_t t0 = (c % chunks_per_point) * chunk;
        const std::size_t t1 = std::min(n_trials, t0 + chunk);
        Result acc{};
        std::array<Rng, kMaxBatch> rngs;
        for (std::size_t g0 = t0; g0 < t1; g0 += batch) {
          const std::size_t n_g = std::min(batch, t1 - g0);
          for (std::size_t i = 0; i < n_g; ++i) {
            rngs[i] = trial_rng(opt.root_seed, point, g0 + i);
          }
          group(point, g0, std::span<Rng>(rngs.data(), n_g), acc);
        }
        partial[c] = std::move(acc);
      }
      if (telem) detail::record_chunk_ns(detail::monotonic_ns() - c_begin);
    }
  });

  std::vector<Result> out(n_points);
  for (std::size_t p = 0; p < n_points; ++p) {
    for (std::size_t c = 0; c < chunks_per_point; ++c) {
      merge(out[p], partial[p * chunks_per_point + c]);
    }
  }
  return out;
}

/// Parallel map: `fn(index, rng)` for each index in [0, n), one derived
/// Rng per index (point = index, trial = 0), results in index order.
/// For batches of heterogeneous independent runs (netsim replications,
/// per-distance simulator points).
template <class Fn>
auto map(std::size_t n, const SweepOptions& opt, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}, std::declval<Rng&>()))> {
  using R = decltype(fn(std::size_t{0}, std::declval<Rng&>()));
  check(n > 0, "par::map requires at least one item");
  std::vector<R> out(n);
  const detail::ProfileTargets prof = detail::profiling_targets();

  std::unique_ptr<ThreadPool> owned;
  ThreadPool& pool = detail::select_pool(opt, owned);
  pool.parallel_for(n, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const detail::ProfileShardGuard shard(prof);
      const bool telem = telemetry_enabled();
      const std::uint64_t c_begin = telem ? detail::monotonic_ns() : 0;
      {
        const obs::perf::ScopedSpan map_span("mc.map");
        Rng rng = trial_rng(opt.root_seed, i, 0);
        out[i] = fn(i, rng);
      }
      if (telem) detail::record_chunk_ns(detail::monotonic_ns() - c_begin);
    }
  });
  return out;
}

}  // namespace wlan::par

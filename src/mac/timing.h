// 802.11 MAC timing constants and PPDU airtime calculators per PHY
// generation. These drive both the DCF simulator and the power/energy
// accounting.
#pragma once

#include <cstddef>

namespace wlan::mac {

/// PHY generation, as the MAC sees it.
enum class PhyGeneration {
  kDsss,    ///< 802.11-1997 DSSS, 1-2 Mbps
  kHrDsss,  ///< 802.11b CCK, 5.5-11 Mbps
  kOfdm,    ///< 802.11a/g OFDM, 6-54 Mbps
  kHt,      ///< 802.11n HT, up to 600 Mbps
};

/// MAC slot/IFS/contention-window parameters.
struct MacTiming {
  double slot_s;
  double sifs_s;
  unsigned cw_min;
  unsigned cw_max;

  double difs_s() const { return sifs_s + 2.0 * slot_s; }
};

MacTiming mac_timing(PhyGeneration gen);

// MAC frame sizes (bytes, including FCS).
inline constexpr std::size_t kDataHeaderBytes = 28;  // 24 header + 4 FCS
inline constexpr std::size_t kQosDataHeaderBytes = 30;
inline constexpr std::size_t kAckBytes = 14;
inline constexpr std::size_t kRtsBytes = 20;
inline constexpr std::size_t kCtsBytes = 14;
inline constexpr std::size_t kBlockAckBytes = 32;
inline constexpr std::size_t kBeaconBytes = 100;
inline constexpr std::size_t kMpduDelimiterBytes = 4;

/// DSSS/CCK PPDU airtime: long (192 us) or short (96 us) PLCP preamble +
/// header, payload at `rate_mbps`.
double dsss_ppdu_duration_s(double rate_mbps, std::size_t mpdu_bytes,
                            bool short_preamble = false);

/// 802.11a/g PPDU airtime: 20 us preamble+SIGNAL, 4 us symbols.
double ofdm_ppdu_duration_s(double rate_mbps, std::size_t mpdu_bytes);

/// 802.11n mixed-format PPDU airtime. `n_ss` sets the HT-LTF count;
/// `short_gi` selects 3.6 us symbols. `rate_mbps` must correspond to the
/// same GI choice.
double ht_ppdu_duration_s(double rate_mbps, std::size_t mpdu_bytes,
                          std::size_t n_ss, bool short_gi);

/// Airtime of a data PPDU for a generation at a given PHY rate.
double data_ppdu_duration_s(PhyGeneration gen, double rate_mbps,
                            std::size_t mpdu_bytes, std::size_t n_ss = 1,
                            bool short_gi = false);

/// Airtime of a control frame (ACK/CTS/...) at the generation's basic rate.
double control_duration_s(PhyGeneration gen, std::size_t frame_bytes,
                          double basic_rate_mbps);

}  // namespace wlan::mac

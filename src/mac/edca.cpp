#include "mac/edca.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "sim/stats.h"

namespace wlan::mac {

const char* access_category_name(AccessCategory ac) {
  switch (ac) {
    case AccessCategory::kVoice: return "AC_VO";
    case AccessCategory::kVideo: return "AC_VI";
    case AccessCategory::kBestEffort: return "AC_BE";
    case AccessCategory::kBackground: return "AC_BK";
  }
  return "AC_?";
}

EdcaParams edca_defaults(AccessCategory ac) {
  // 802.11e defaults for aCWmin = 15, aCWmax = 1023 (OFDM PHYs).
  switch (ac) {
    case AccessCategory::kVoice: return {2, 3, 7, 1.504e-3};
    case AccessCategory::kVideo: return {2, 7, 15, 3.008e-3};
    case AccessCategory::kBestEffort: return {3, 15, 1023, 0.0};
    case AccessCategory::kBackground: return {7, 15, 1023, 0.0};
  }
  return {3, 15, 1023, 0.0};
}

EdcaResult simulate_edca(const EdcaConfig& config,
                         const std::vector<EdcaStation>& stations, Rng& rng) {
  check(!stations.empty(), "simulate_edca requires stations");
  check(config.duration_s > 0.0, "simulate_edca requires positive duration");
  const MacTiming timing = mac_timing(config.generation);

  struct State {
    EdcaParams params;
    unsigned aifs_slots;  // slots beyond SIFS before counting
    unsigned cw;
    unsigned backoff;
    unsigned retries = 0;
    double head_since = 0.0;
    std::size_t burst_frames = 1;
    double exchange_s = 0.0;      // one data+SIFS+ACK exchange
    double payload_bits = 0.0;
    sim::Tally delay;
    EdcaStationResult result;
  };

  const double t_ack =
      control_duration_s(config.generation, kAckBytes, config.basic_rate_mbps);

  std::vector<State> sta(stations.size());
  for (std::size_t i = 0; i < stations.size(); ++i) {
    State& s = sta[i];
    s.params = edca_defaults(stations[i].category);
    s.aifs_slots = s.params.aifsn;
    s.cw = s.params.cw_min;
    s.backoff = static_cast<unsigned>(rng.uniform_int(s.cw + 1));
    const double t_data = data_ppdu_duration_s(
        config.generation, config.data_rate_mbps,
        stations[i].payload_bytes + kQosDataHeaderBytes);
    s.exchange_s = t_data + timing.sifs_s + t_ack + timing.sifs_s;
    s.payload_bits = 8.0 * static_cast<double>(stations[i].payload_bytes);
    if (s.params.txop_s > 0.0) {
      s.burst_frames = std::max<std::size_t>(
          1, static_cast<std::size_t>(s.params.txop_s / s.exchange_s));
    }
  }

  auto emit = [&](obs::EventType type, std::size_t station, double time,
                  double value) {
    if (!config.trace) return;
    obs::TraceEvent e;
    e.time_s = time;
    e.type = type;
    e.node = static_cast<std::int32_t>(station);
    e.value = value;
    e.detail = access_category_name(stations[station].category);
    config.trace->record(e);
  };

  double t = 0.0;
  std::vector<std::size_t> winners;
  while (t < config.duration_s) {
    // Each station becomes ready after its AIFS plus its remaining
    // backoff slots of idle time.
    unsigned m = ~0u;
    for (const State& s : sta) {
      m = std::min(m, s.aifs_slots + s.backoff);
    }
    t += timing.sifs_s + static_cast<double>(m) * timing.slot_s;
    if (t >= config.duration_s) break;

    winners.clear();
    for (std::size_t i = 0; i < sta.size(); ++i) {
      State& s = sta[i];
      const unsigned wait = s.aifs_slots + s.backoff;
      if (wait == m) {
        winners.push_back(i);
      } else {
        // Only slots beyond this station's AIFS count as backoff spent.
        const unsigned counted = m > s.aifs_slots ? m - s.aifs_slots : 0;
        s.backoff -= std::min(counted, s.backoff);
      }
    }

    if (winners.size() == 1) {
      State& s = sta[winners[0]];
      const double busy =
          static_cast<double>(s.burst_frames) * s.exchange_s;
      emit(obs::EventType::kTxStart, winners[0], t, busy);
      t += busy;
      // Close the busy period and announce the dequeued burst: TX_END
      // balances the TX_START and RX_OK carries how many MPDUs the TXOP
      // delivered, so per-AC trace consumers see every dequeue.
      emit(obs::EventType::kTxEnd, winners[0], t, busy);
      emit(obs::EventType::kRxOk, winners[0], t,
           static_cast<double>(s.burst_frames));
      s.result.delivered += s.burst_frames;
      s.delay.add(t - s.head_since);
      s.head_since = t;
      s.retries = 0;
      s.cw = s.params.cw_min;
      s.backoff = static_cast<unsigned>(rng.uniform_int(s.cw + 1));
    } else {
      // Collision: the longest frame (first exchange) occupies the air.
      double busy = 0.0;
      for (const std::size_t i : winners) {
        busy = std::max(busy, sta[i].exchange_s);
      }
      t += busy + timing.slot_s;
      for (const std::size_t i : winners) {
        State& s = sta[i];
        ++s.result.collisions;
        emit(obs::EventType::kCollision, i, t,
             static_cast<double>(winners.size()));
        if (++s.retries > config.retry_limit) {
          emit(obs::EventType::kDrop, i, t, static_cast<double>(s.retries));
          s.retries = 0;
          s.cw = s.params.cw_min;
          s.head_since = t;  // dropped; next frame becomes head
        } else {
          s.cw = std::min(2 * s.cw + 1, s.params.cw_max);
        }
        s.backoff = static_cast<unsigned>(rng.uniform_int(s.cw + 1));
      }
    }
  }

  EdcaResult result;
  result.stations.resize(sta.size());
  for (std::size_t i = 0; i < sta.size(); ++i) {
    EdcaStationResult& r = result.stations[i];
    r = sta[i].result;
    r.throughput_mbps = static_cast<double>(r.delivered) *
                        sta[i].payload_bits / config.duration_s / 1e6;
    r.mean_access_delay_s = sta[i].delay.mean();
    result.aggregate_throughput_mbps += r.throughput_mbps;
  }
  return result;
}

}  // namespace wlan::mac

#include "mac/psm.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "sim/scheduler.h"
#include "sim/stats.h"

namespace wlan::mac {

PsmResult simulate_psm(const PsmConfig& config, Rng& rng) {
  check(config.arrival_rate_pps >= 0.0, "arrival rate must be non-negative");
  check(config.beacon_interval_s > 0.0 && config.listen_interval >= 1,
        "bad beacon parameters");

  const MacTiming timing = mac_timing(config.generation);
  const double t_data = data_ppdu_duration_s(
      config.generation, config.data_rate_mbps,
      config.payload_bytes + kDataHeaderBytes);
  const double t_ack =
      control_duration_s(config.generation, kAckBytes, config.basic_rate_mbps);
  const double t_beacon =
      control_duration_s(config.generation, kBeaconBytes, config.basic_rate_mbps);
  const double t_frame = t_data + timing.sifs_s + t_ack;

  PsmResult result;
  sim::Tally delay;
  sim::Scheduler sched;
  std::vector<double> queue;  // arrival times of buffered packets

  auto deliver_one = [&](double arrival, double start) {
    // STA receives the data frame, then ACKs after SIFS.
    result.time_rx_s += t_data;
    result.time_idle_s += timing.sifs_s;
    result.time_tx_s += t_ack;
    const double done = start + t_frame;
    delay.add(done - arrival);
    result.max_delay_s = std::max(result.max_delay_s, done - arrival);
    ++result.delivered;
    return done;
  };

  if (!config.psm_enabled) {
    // CAM: deliveries happen immediately; AP serializes back-to-back.
    double busy_until = 0.0;
    std::function<void()> arrive = [&] {
      const double now = sched.now();
      const double start = std::max(now, busy_until);
      busy_until = deliver_one(now, start);
      sched.schedule(rng.exponential(1.0 / config.arrival_rate_pps), arrive);
    };
    if (config.arrival_rate_pps > 0.0) {
      sched.schedule(rng.exponential(1.0 / config.arrival_rate_pps), arrive);
    }
    sched.run_until(config.duration_s);
    result.time_idle_s +=
        config.duration_s - result.time_rx_s - result.time_tx_s -
        result.time_idle_s;
    result.time_doze_s = 0.0;
  } else {
    // PSM: buffer at the AP; drain at listened beacons.
    std::uint64_t beacon_index = 0;
    double awake_accum = 0.0;  // rx+tx+idle accounted through handlers

    std::function<void()> arrive = [&] {
      queue.push_back(sched.now());
      sched.schedule(rng.exponential(1.0 / config.arrival_rate_pps), arrive);
    };
    std::function<void()> beacon = [&] {
      const bool listened = (beacon_index % config.listen_interval) == 0;
      ++beacon_index;
      if (listened) {
        result.time_idle_s += config.wake_transition_s;
        result.time_rx_s += t_beacon;
        awake_accum += config.wake_transition_s + t_beacon;
        double cursor = sched.now() + t_beacon;
        for (const double arrival : queue) {
          cursor = deliver_one(arrival, cursor);
          awake_accum += t_frame;
        }
        queue.clear();
      }
      sched.schedule(config.beacon_interval_s, beacon);
    };

    if (config.arrival_rate_pps > 0.0) {
      sched.schedule(rng.exponential(1.0 / config.arrival_rate_pps), arrive);
    }
    sched.schedule(0.0, beacon);
    sched.run_until(config.duration_s);
    result.time_doze_s = config.duration_s - awake_accum;
  }

  result.mean_delay_s = delay.mean();
  return result;
}

}  // namespace wlan::mac

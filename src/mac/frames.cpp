#include "mac/frames.h"

#include "common/check.h"
#include "common/crc.h"

namespace wlan::mac {
namespace {

// Frame-control first octet: subtype(4) | type(2) | version(2).
constexpr std::uint8_t kFcData = 0x08;    // type 2, subtype 0
constexpr std::uint8_t kFcAck = 0xD4;     // type 1, subtype 13
constexpr std::uint8_t kFcRts = 0xB4;     // type 1, subtype 11
constexpr std::uint8_t kFcCts = 0xC4;     // type 1, subtype 12
constexpr std::uint8_t kFcBeacon = 0x80;  // type 0, subtype 8
constexpr std::uint8_t kRetryBit = 0x08;  // frame-control second octet

std::optional<FrameType> type_from_fc(std::uint8_t fc0) {
  switch (fc0) {
    case kFcData: return FrameType::kData;
    case kFcAck: return FrameType::kAck;
    case kFcRts: return FrameType::kRts;
    case kFcCts: return FrameType::kCts;
    case kFcBeacon: return FrameType::kBeacon;
    default: return std::nullopt;
  }
}

std::uint8_t fc_for(FrameType type) {
  switch (type) {
    case FrameType::kData: return kFcData;
    case FrameType::kAck: return kFcAck;
    case FrameType::kRts: return kFcRts;
    case FrameType::kCts: return kFcCts;
    case FrameType::kBeacon: return kFcBeacon;
  }
  return kFcData;
}

std::size_t header_bytes(FrameType type) {
  switch (type) {
    case FrameType::kData:
    case FrameType::kBeacon:
      return 24;  // FC + dur + 3 addr + seq
    case FrameType::kRts:
      return 16;  // FC + dur + 2 addr
    case FrameType::kAck:
    case FrameType::kCts:
      return 10;  // FC + dur + 1 addr
  }
  return 24;
}

void push_u16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

std::uint16_t read_u16(std::span<const std::uint8_t> data, std::size_t pos) {
  return static_cast<std::uint16_t>(data[pos] |
                                    (static_cast<std::uint16_t>(data[pos + 1]) << 8));
}

void push_addr(Bytes& out, const MacAddress& addr) {
  out.insert(out.end(), addr.octets.begin(), addr.octets.end());
}

MacAddress read_addr(std::span<const std::uint8_t> data, std::size_t pos) {
  MacAddress a;
  for (std::size_t i = 0; i < 6; ++i) a.octets[i] = data[pos + i];
  return a;
}

}  // namespace

MacAddress MacAddress::from_station_id(std::uint32_t id) {
  MacAddress a;
  a.octets = {0x02, 0x00,  // locally administered
              static_cast<std::uint8_t>(id >> 24),
              static_cast<std::uint8_t>(id >> 16),
              static_cast<std::uint8_t>(id >> 8),
              static_cast<std::uint8_t>(id)};
  return a;
}

std::size_t mpdu_size_bytes(FrameType type, std::size_t payload_bytes) {
  const bool carries_payload =
      type == FrameType::kData || type == FrameType::kBeacon;
  return header_bytes(type) + (carries_payload ? payload_bytes : 0) + 4;
}

Bytes encode_frame(const Frame& frame) {
  const bool carries_payload =
      frame.type == FrameType::kData || frame.type == FrameType::kBeacon;
  check(carries_payload || frame.payload.empty(),
        "control frames carry no payload");

  Bytes out;
  out.reserve(mpdu_size_bytes(frame.type, frame.payload.size()));
  out.push_back(fc_for(frame.type));
  out.push_back(frame.retry ? kRetryBit : 0x00);
  push_u16(out, frame.duration_us);
  push_addr(out, frame.addr1);
  if (frame.type == FrameType::kRts || carries_payload) {
    push_addr(out, frame.addr2);
  }
  if (carries_payload) {
    push_addr(out, frame.addr3);
    push_u16(out, static_cast<std::uint16_t>(frame.sequence << 4));
    out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  }
  const std::uint32_t fcs = crc32(out);
  out.push_back(static_cast<std::uint8_t>(fcs & 0xFF));
  out.push_back(static_cast<std::uint8_t>((fcs >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((fcs >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((fcs >> 24) & 0xFF));
  return out;
}

std::optional<Frame> decode_frame(std::span<const std::uint8_t> mpdu) {
  if (mpdu.size() < 14) return std::nullopt;  // smallest: ACK/CTS
  const auto type = type_from_fc(mpdu[0]);
  if (!type) return std::nullopt;
  const std::size_t header = header_bytes(*type);
  if (mpdu.size() < header + 4) return std::nullopt;

  // FCS check over everything but the trailing 4 bytes.
  const std::span<const std::uint8_t> body = mpdu.first(mpdu.size() - 4);
  const std::uint32_t fcs = crc32(body);
  const std::size_t f = mpdu.size() - 4;
  const std::uint32_t received =
      static_cast<std::uint32_t>(mpdu[f]) |
      (static_cast<std::uint32_t>(mpdu[f + 1]) << 8) |
      (static_cast<std::uint32_t>(mpdu[f + 2]) << 16) |
      (static_cast<std::uint32_t>(mpdu[f + 3]) << 24);
  if (fcs != received) return std::nullopt;

  Frame frame;
  frame.type = *type;
  frame.retry = (mpdu[1] & kRetryBit) != 0;
  frame.duration_us = read_u16(mpdu, 2);
  frame.addr1 = read_addr(mpdu, 4);
  const bool carries_payload =
      frame.type == FrameType::kData || frame.type == FrameType::kBeacon;
  if (frame.type == FrameType::kRts || carries_payload) {
    frame.addr2 = read_addr(mpdu, 10);
  }
  if (carries_payload) {
    frame.addr3 = read_addr(mpdu, 16);
    frame.sequence = static_cast<std::uint16_t>(read_u16(mpdu, 22) >> 4);
    frame.payload.assign(mpdu.begin() + static_cast<std::ptrdiff_t>(header),
                         mpdu.end() - 4);
  }
  return frame;
}

}  // namespace wlan::mac

#include "mac/bianchi.h"

#include <cmath>

#include "common/check.h"

namespace wlan::mac {

BianchiResult bianchi_saturation(const BianchiInput& input) {
  check(input.n_stations >= 1, "bianchi model needs stations");
  const MacTiming t = mac_timing(input.generation);
  const double w = static_cast<double>(t.cw_min) + 1.0;  // W = CWmin + 1
  // Number of doubling stages until CWmax.
  int m = 0;
  {
    unsigned cw = t.cw_min;
    while (cw < t.cw_max) {
      cw = 2 * cw + 1;
      ++m;
    }
  }
  const auto n = static_cast<double>(input.n_stations);

  // Fixed point: tau(p) from the Markov chain, p(tau) = 1-(1-tau)^(n-1).
  double p = 0.1;
  double tau = 0.0;
  for (int iter = 0; iter < 10000; ++iter) {
    const double two_p = 2.0 * p;
    double tau_new;
    if (std::abs(1.0 - two_p) < 1e-12) {
      tau_new = 2.0 / (w + 1.0 + p * w * m);
    } else {
      tau_new = 2.0 * (1.0 - two_p) /
                ((1.0 - two_p) * (w + 1.0) +
                 p * w * (1.0 - std::pow(two_p, m)));
    }
    const double p_new = 1.0 - std::pow(1.0 - tau_new, n - 1.0);
    const double damped = 0.5 * p + 0.5 * p_new;
    if (std::abs(damped - p) < 1e-12) {
      p = damped;
      tau = tau_new;
      break;
    }
    p = damped;
    tau = tau_new;
  }

  // Slot-type probabilities.
  const double p_tr = 1.0 - std::pow(1.0 - tau, n);
  const double p_s =
      p_tr > 0.0 ? n * tau * std::pow(1.0 - tau, n - 1.0) / p_tr : 0.0;

  // Slot durations.
  const std::size_t mpdu = input.payload_bytes + kDataHeaderBytes;
  const double t_data =
      data_ppdu_duration_s(input.generation, input.data_rate_mbps, mpdu);
  const double t_ack =
      control_duration_s(input.generation, kAckBytes, input.basic_rate_mbps);
  const double t_rts =
      control_duration_s(input.generation, kRtsBytes, input.basic_rate_mbps);
  const double t_cts =
      control_duration_s(input.generation, kCtsBytes, input.basic_rate_mbps);
  double ts;  // successful-slot duration
  double tc;  // collision-slot duration
  if (input.rts_cts) {
    ts = t_rts + t.sifs_s + t_cts + t.sifs_s + t_data + t.sifs_s + t_ack +
         t.difs_s();
    tc = t_rts + t.sifs_s + t_ack + t.difs_s();  // EIFS-ish
  } else {
    ts = t_data + t.sifs_s + t_ack + t.difs_s();
    tc = t_data + t.sifs_s + t_ack + t.difs_s();
  }

  const double payload_bits = 8.0 * static_cast<double>(input.payload_bytes);
  const double denom = (1.0 - p_tr) * t.slot_s + p_tr * p_s * ts +
                       p_tr * (1.0 - p_s) * tc;

  BianchiResult result;
  result.tau = tau;
  result.collision_probability = p;
  result.throughput_mbps =
      denom > 0.0 ? p_tr * p_s * payload_bits / denom / 1e6 : 0.0;
  return result;
}

}  // namespace wlan::mac

#include "mac/rate_adapt.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/units.h"

namespace wlan::mac {

std::vector<RateOption> ofdm_rate_options() {
  // Midpoints ~0.7 dB below the measured 10%-PER SNRs of bench_c4.
  return {
      {6.0, 1.2}, {9.0, 3.1}, {12.0, 3.1}, {18.0, 6.8},
      {24.0, 9.2}, {36.0, 12.9}, {48.0, 17.0}, {54.0, 18.6},
  };
}

double rate_option_per(const RateOption& option, double snr_db) {
  const double x = option.per_slope * (snr_db - option.per_midpoint_db);
  return 1.0 / (1.0 + std::exp(x));
}

ArfController::ArfController(std::size_t n_rates, std::size_t success_threshold)
    : n_rates_(n_rates), success_threshold_(success_threshold) {
  check(n_rates >= 1, "ArfController requires at least one rate");
}

void ArfController::on_success() {
  failure_streak_ = 0;
  probing_ = false;
  if (index_ + 1 >= n_rates_) return;
  if (++success_streak_ >= success_threshold_) {
    ++index_;
    success_streak_ = 0;
    probing_ = true;  // fall straight back if the probe fails
  }
}

void ArfController::on_failure() {
  success_streak_ = 0;
  if (probing_ || ++failure_streak_ >= 2) {
    if (index_ > 0) --index_;
    failure_streak_ = 0;
  }
  probing_ = false;
}

RateAdaptResult simulate_rate_adaptation(const RateAdaptConfig& config,
                                         Rng& rng) {
  check(config.n_packets > 0, "simulate_rate_adaptation requires packets");
  const std::vector<RateOption> rates = ofdm_rate_options();
  const channel::JakesFader fader(rng, config.doppler_hz);

  ArfController arf(rates.size());
  RateAdaptResult result;
  double rate_sum = 0.0;
  double airtime = 0.0;

  for (std::size_t p = 0; p < config.n_packets; ++p) {
    const double t = static_cast<double>(p) * config.packet_interval_s;
    const double fade_db = lin_to_db(std::max(std::norm(fader.at(t)), 1e-9));
    const double snr_db = config.mean_snr_db + fade_db;

    std::size_t index = 0;
    switch (config.control) {
      case RateControl::kFixedMax:
        index = rates.size() - 1;
        break;
      case RateControl::kArf:
        index = arf.current();
        break;
      case RateControl::kSnrIdeal: {
        // Best expected goodput under genie SNR knowledge.
        double best = -1.0;
        for (std::size_t i = 0; i < rates.size(); ++i) {
          const double good =
              rates[i].rate_mbps * (1.0 - rate_option_per(rates[i], snr_db));
          if (good > best) {
            best = good;
            index = i;
          }
        }
        break;
      }
    }

    const RateOption& option = rates[index];
    const bool failed = rng.bernoulli(rate_option_per(option, snr_db));
    ++result.attempts;
    rate_sum += option.rate_mbps;
    airtime += static_cast<double>(config.payload_bytes) * 8.0 /
               (option.rate_mbps * 1e6);
    if (!failed) {
      ++result.delivered;
    }
    if (config.control == RateControl::kArf) {
      if (failed) {
        arf.on_failure();
      } else {
        arf.on_success();
      }
    }
  }

  result.per = 1.0 - static_cast<double>(result.delivered) /
                         static_cast<double>(result.attempts);
  result.mean_rate_mbps = rate_sum / static_cast<double>(result.attempts);
  result.goodput_mbps = static_cast<double>(result.delivered) *
                        static_cast<double>(config.payload_bytes) * 8.0 /
                        (airtime * 1e6);
  // Express goodput over wall-clock airtime share: delivered bits per
  // second of airtime actually spent transmitting.
  return result;
}

}  // namespace wlan::mac

// Rate adaptation over a time-varying channel.
//
// The paper's rate story ("highest data rates ... migrate from 2 Mbps to
// 11 Mbps and now to 54 Mbps") is only realized in the field through rate
// adaptation. Two classic controllers are provided:
//
//  - ARF (Auto Rate Fallback, the original Lucent WaveLAN-II scheme):
//    step up after a streak of successes, step down on consecutive
//    failures. Purely ACK-driven.
//  - SNR-ideal: picks the best rate for the (genie) instantaneous SNR —
//    the upper bound a closed-loop scheme approaches.
//
// The channel is a Jakes fader over a mean link SNR; packet success is
// drawn from a logistic PER-vs-SNR model fitted to this library's own
// 802.11a waterfalls (see bench_c4).
#pragma once

#include <cstdint>
#include <vector>

#include "channel/doppler.h"
#include "common/rng.h"

namespace wlan::mac {

/// A rate option with its PER model: per(snr) =
/// 1 / (1 + exp(slope * (snr_db - midpoint_db))).
struct RateOption {
  double rate_mbps;
  double per_midpoint_db;  ///< SNR of 50% PER
  double per_slope = 1.6;  ///< logistic steepness per dB
};

/// The 802.11a ladder with midpoints measured from this library's own
/// AWGN waterfalls (bench_c4).
std::vector<RateOption> ofdm_rate_options();

/// Packet error probability of an option at an instantaneous SNR.
double rate_option_per(const RateOption& option, double snr_db);

/// ARF controller state machine.
class ArfController {
 public:
  ArfController(std::size_t n_rates, std::size_t success_threshold = 10);

  std::size_t current() const { return index_; }
  void on_success();
  void on_failure();

 private:
  std::size_t n_rates_;
  std::size_t success_threshold_;
  std::size_t index_ = 0;
  std::size_t success_streak_ = 0;
  std::size_t failure_streak_ = 0;
  bool probing_ = false;  // the first packet after a rate increase
};

enum class RateControl { kFixedMax, kArf, kSnrIdeal };

struct RateAdaptConfig {
  RateControl control = RateControl::kArf;
  double mean_snr_db = 18.0;
  double doppler_hz = 5.0;        ///< walking-speed channel dynamics
  double packet_interval_s = 2e-3;
  std::size_t n_packets = 5000;
  std::size_t payload_bytes = 1000;
};

struct RateAdaptResult {
  double goodput_mbps = 0.0;       ///< delivered payload over airtime
  double per = 0.0;                ///< fraction of failed transmissions
  double mean_rate_mbps = 0.0;     ///< average selected PHY rate
  std::uint64_t delivered = 0;
  std::uint64_t attempts = 0;
};

/// Runs packets through the fading process under the chosen controller.
RateAdaptResult simulate_rate_adaptation(const RateAdaptConfig& config,
                                         Rng& rng);

}  // namespace wlan::mac

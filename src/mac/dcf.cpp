#include "mac/dcf.h"

#include <algorithm>
#include <deque>
#include <vector>

#include "common/check.h"
#include "sim/stats.h"

namespace wlan::mac {
namespace {

struct Station {
  unsigned cw;
  unsigned backoff;
  unsigned retries = 0;     // consecutive failed attempts (CW control)
  double head_since = 0.0;  // when the current head-of-queue frame arrived
  /// Retry count of each MPDU in the head burst. Subframes lost inside a
  /// partially-delivered A-MPDU stay here for retransmission in the next
  /// burst; saturation refills the burst with fresh (count 0) MPDUs.
  std::deque<unsigned> pending;
};

struct Durations {
  double success;    // busy time of a successful exchange (incl. DIFS)
  double failure;    // busy time when data or ack is lost
  double collision;  // busy time after a collision
  double payload_bits_per_frame;
};

Durations compute_durations(const DcfConfig& c) {
  const MacTiming t = mac_timing(c.generation);
  const bool aggregated = c.ampdu_frames > 1;
  const std::size_t header =
      c.generation == PhyGeneration::kHt ? kQosDataHeaderBytes : kDataHeaderBytes;
  const std::size_t mpdu = c.payload_bytes + header;
  const std::size_t ppdu_bytes =
      aggregated ? c.ampdu_frames * (mpdu + kMpduDelimiterBytes) : mpdu;

  const double t_data = data_ppdu_duration_s(c.generation, c.data_rate_mbps,
                                             ppdu_bytes, c.n_ss, c.short_gi);
  const std::size_t ack_bytes = aggregated ? kBlockAckBytes : kAckBytes;
  const double t_ack =
      control_duration_s(c.generation, ack_bytes, c.basic_rate_mbps);
  const double t_rts = control_duration_s(c.generation, kRtsBytes, c.basic_rate_mbps);
  const double t_cts = control_duration_s(c.generation, kCtsBytes, c.basic_rate_mbps);
  const double eifs = t.sifs_s + t_ack + t.difs_s();

  Durations d{};
  const double rts_overhead = c.rts_cts ? t_rts + t.sifs_s + t_cts + t.sifs_s : 0.0;
  d.success = rts_overhead + t_data + t.sifs_s + t_ack + t.difs_s();
  d.failure = rts_overhead + t_data + eifs;
  d.collision = c.rts_cts ? t_rts + eifs : t_data + eifs;
  d.payload_bits_per_frame = 8.0 * static_cast<double>(c.payload_bytes);
  return d;
}

}  // namespace

DcfResult simulate_dcf(const DcfConfig& config, Rng& rng) {
  check(config.n_stations >= 1, "simulate_dcf requires at least one station");
  check(config.duration_s > 0.0, "simulate_dcf requires positive duration");
  const MacTiming timing = mac_timing(config.generation);
  const Durations dur = compute_durations(config);

  std::vector<Station> stations(config.n_stations);
  for (auto& s : stations) {
    s.cw = timing.cw_min;
    s.backoff = static_cast<unsigned>(rng.uniform_int(s.cw + 1));
  }

  DcfResult result;
  sim::Tally delay;
  double t = timing.difs_s();  // initial medium sensing
  double busy = 0.0;
  std::vector<std::size_t> transmitters;

  auto emit = [&](obs::EventType type, std::size_t station, double time,
                  double value) {
    if (!config.trace) return;
    obs::TraceEvent e;
    e.time_s = time;
    e.type = type;
    e.node = static_cast<std::int32_t>(station);
    e.value = value;
    e.detail = "DCF";
    config.trace->record(e);
  };

  // Saturation: top the head burst up to the A-MPDU size with fresh
  // MPDUs. Every MPDU that enters is offered exactly once and announced
  // as an arrival (value = queue depth after it), so trace consumers can
  // reconcile offered = delivered + dropped + pending.
  auto fill_burst = [&](std::size_t station, double now) {
    Station& s = stations[station];
    while (s.pending.size() < std::max<std::size_t>(config.ampdu_frames, 1)) {
      s.pending.push_back(0);
      ++result.offered_frames;
      emit(obs::EventType::kArrival, station, now,
           static_cast<double>(s.pending.size()));
    }
  };

  // Advances the retry count of one failed MPDU: true keeps it queued,
  // false drops it past the retry limit.
  auto retry_or_drop = [&](unsigned& mpdu_retries, std::size_t station,
                           double now) {
    if (++mpdu_retries > config.retry_limit) {
      ++result.dropped;
      emit(obs::EventType::kDrop, station, now,
           static_cast<double>(mpdu_retries));
      return false;
    }
    return true;
  };

  // Contention-window bookkeeping after a failed attempt (per-MPDU drop
  // accounting is handled by retry_or_drop on each lost subframe).
  auto on_failure = [&](Station& s, double now) {
    ++s.retries;
    if (s.retries > config.retry_limit) {
      s.retries = 0;
      s.cw = timing.cw_min;
      if (s.pending.empty()) s.head_since = now;  // whole burst dropped
    } else {
      s.cw = std::min(2 * s.cw + 1, timing.cw_max);
    }
    s.backoff = static_cast<unsigned>(rng.uniform_int(s.cw + 1));
  };

  while (t < config.duration_s) {
    // Advance to the next transmission.
    unsigned m = stations[0].backoff;
    for (const auto& s : stations) m = std::min(m, s.backoff);
    t += static_cast<double>(m) * timing.slot_s;
    if (t >= config.duration_s) break;
    transmitters.clear();
    for (std::size_t i = 0; i < stations.size(); ++i) {
      stations[i].backoff -= m;
      if (stations[i].backoff == 0) transmitters.push_back(i);
    }

    result.attempts += transmitters.size();
    if (transmitters.size() == 1) {
      Station& s = stations[transmitters[0]];
      emit(obs::EventType::kTxStart, transmitters[0], t, dur.success);
      fill_burst(transmitters[0], t);
      // Channel errors thin the delivered MPDUs of an A-MPDU; the block
      // ack tells the sender exactly which subframes survived, so lost
      // ones stay queued (or drop) rather than silently vanishing.
      std::uint64_t ok = 0;
      std::deque<unsigned> survivors;
      for (unsigned mpdu_retries : s.pending) {
        if (!rng.bernoulli(config.packet_error_rate)) {
          ++ok;
        } else if (retry_or_drop(mpdu_retries, transmitters[0],
                                 t + dur.failure)) {
          survivors.push_back(mpdu_retries);
        }
      }
      s.pending = std::move(survivors);
      emit(ok > 0 ? obs::EventType::kRxOk : obs::EventType::kRxFail,
           transmitters[0], t, static_cast<double>(ok));
      if (ok > 0) {
        result.delivered_frames += ok;
        const double done = t + dur.success;
        // The busy period (PPDU + SIFS + block ack) ends here; pairing
        // every single-transmitter TX_START with a TX_END keeps the
        // stream balanced for lifecycle/invariant consumers.
        emit(obs::EventType::kTxEnd, transmitters[0], done, dur.success);
        delay.add(done - s.head_since);
        s.retries = 0;
        s.cw = timing.cw_min;
        s.backoff = static_cast<unsigned>(rng.uniform_int(s.cw + 1));
        s.head_since = done;
        t = done;
        busy += dur.success;
      } else {
        emit(obs::EventType::kTxEnd, transmitters[0], t + dur.failure,
             dur.failure);
        on_failure(s, t + dur.failure);
        t += dur.failure;
        busy += dur.failure;
      }
    } else {
      result.collisions += transmitters.size();
      for (const std::size_t i : transmitters) {
        emit(obs::EventType::kCollision, i, t,
             static_cast<double>(transmitters.size()));
        Station& s = stations[i];
        // A collision loses the whole burst; every MPDU retries.
        fill_burst(i, t);
        std::deque<unsigned> survivors;
        for (unsigned mpdu_retries : s.pending) {
          if (retry_or_drop(mpdu_retries, i, t + dur.collision)) {
            survivors.push_back(mpdu_retries);
          }
        }
        s.pending = std::move(survivors);
        on_failure(s, t + dur.collision);
      }
      t += dur.collision;
      busy += dur.collision;
    }
  }

  for (const Station& s : stations) {
    result.pending_frames += s.pending.size();
  }
  const double elapsed = std::max(t, config.duration_s);
  result.throughput_mbps = static_cast<double>(result.delivered_frames) *
                           dur.payload_bits_per_frame / elapsed / 1e6;
  result.collision_probability =
      result.attempts > 0
          ? static_cast<double>(result.collisions) /
                static_cast<double>(result.attempts)
          : 0.0;
  result.mean_access_delay_s = delay.mean();
  result.busy_airtime_fraction = busy / elapsed;
  return result;
}

double dcf_single_station_goodput_mbps(const DcfConfig& config) {
  const MacTiming t = mac_timing(config.generation);
  const Durations dur = compute_durations(config);
  const double mean_backoff =
      static_cast<double>(t.cw_min) / 2.0 * t.slot_s;
  const double cycle = mean_backoff + dur.success;
  return static_cast<double>(config.ampdu_frames) * dur.payload_bits_per_frame /
         cycle / 1e6;
}

}  // namespace wlan::mac

// 802.11e EDCA: prioritized channel access.
//
// The paper closes by arguing future WLAN standards need more protocol
// attention (it names power; QoS was the other big 11e lever being
// standardized alongside). EDCA differentiates four access categories by
// AIFS (longer inter-frame deferral for lower priority), CWmin/CWmax
// (shorter backoff for higher priority), and TXOP (burst time for
// voice/video). This module extends the slotted DCF saturation model to
// multiple categories and reproduces the canonical result: under load,
// voice/video keep their throughput and access delay while best-effort
// and background absorb the congestion.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "mac/timing.h"
#include "obs/trace.h"

namespace wlan::mac {

/// The four EDCA access categories.
enum class AccessCategory { kVoice, kVideo, kBestEffort, kBackground };

/// Stable display name, e.g. "AC_VO".
const char* access_category_name(AccessCategory ac);

/// EDCA parameter set for one category (802.11e defaults for OFDM PHYs).
struct EdcaParams {
  unsigned aifsn;    ///< AIFS = SIFS + aifsn * slot
  unsigned cw_min;
  unsigned cw_max;
  double txop_s;     ///< burst limit; 0 = one MPDU per access
};

/// The standard's default parameter set for a category.
EdcaParams edca_defaults(AccessCategory ac);

/// One contending EDCA station (a single category queue, saturated).
struct EdcaStation {
  AccessCategory category = AccessCategory::kBestEffort;
  std::size_t payload_bytes = 1000;
};

struct EdcaConfig {
  PhyGeneration generation = PhyGeneration::kOfdm;
  double data_rate_mbps = 24.0;
  double basic_rate_mbps = 6.0;
  unsigned retry_limit = 7;
  double duration_s = 2.0;

  /// Optional slot-level event trace (TX_START per winning burst,
  /// COLLISION, DROP; detail = access category); null = disabled.
  obs::TraceSink* trace = nullptr;
};

struct EdcaStationResult {
  double throughput_mbps = 0.0;
  double mean_access_delay_s = 0.0;
  std::uint64_t delivered = 0;
  std::uint64_t collisions = 0;
};

struct EdcaResult {
  std::vector<EdcaStationResult> stations;
  double aggregate_throughput_mbps = 0.0;
};

/// Slotted saturation simulation of EDCA contention between independent
/// stations (one category queue each).
EdcaResult simulate_edca(const EdcaConfig& config,
                         const std::vector<EdcaStation>& stations, Rng& rng);

}  // namespace wlan::mac

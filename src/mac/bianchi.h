// Bianchi's analytic model of saturated DCF (Bianchi, JSAC 2000).
//
// The standard closed-form check for any DCF simulator: model each
// station's backoff as a bidimensional Markov chain, solve the fixed
// point between the per-slot transmission probability tau and the
// conditional collision probability p, then assemble saturation
// throughput from slot-type probabilities and durations. This module
// implements the model so the slotted simulator (mac/dcf.h) and the
// event-driven simulator (net/netsim.h) can be validated against theory.
#pragma once

#include <cstddef>

#include "mac/timing.h"

namespace wlan::mac {

struct BianchiInput {
  std::size_t n_stations = 10;
  PhyGeneration generation = PhyGeneration::kOfdm;
  double data_rate_mbps = 54.0;
  double basic_rate_mbps = 24.0;
  std::size_t payload_bytes = 1500;
  bool rts_cts = false;
};

struct BianchiResult {
  double tau = 0.0;                  ///< per-slot transmission probability
  double collision_probability = 0;  ///< conditional collision prob p
  double throughput_mbps = 0.0;      ///< aggregate saturation throughput
};

/// Solves the tau/p fixed point (binary exponential backoff, CWmin/CWmax
/// from the generation's MAC timing) and evaluates saturation throughput.
BianchiResult bianchi_saturation(const BianchiInput& input);

}  // namespace wlan::mac

// 802.11 MAC frame encoding/decoding with FCS.
//
// Real byte-level MPDUs: frame control, duration, addresses, sequence
// control, payload, CRC-32 FCS — enough to carry the simulators' traffic
// as actual octets and to exercise FCS-based error detection end to end
// (a corrupted PSDU out of the PHY is rejected exactly the way hardware
// rejects it).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>

#include "common/types.h"

namespace wlan::mac {

/// 48-bit MAC address.
struct MacAddress {
  std::array<std::uint8_t, 6> octets{};

  static MacAddress from_station_id(std::uint32_t id);
  bool operator==(const MacAddress&) const = default;
};

enum class FrameType : std::uint8_t {
  kData,
  kAck,
  kRts,
  kCts,
  kBeacon,
};

/// A parsed MAC frame.
struct Frame {
  FrameType type = FrameType::kData;
  std::uint16_t duration_us = 0;
  MacAddress addr1;  ///< receiver
  MacAddress addr2;  ///< transmitter (absent in ACK/CTS)
  MacAddress addr3;  ///< BSSID (data/beacon only)
  std::uint16_t sequence = 0;
  bool retry = false;
  Bytes payload;  ///< MSDU (data/beacon only)
};

/// Serializes a frame to an MPDU (header + payload + FCS).
Bytes encode_frame(const Frame& frame);

/// Parses and FCS-checks an MPDU. Returns nullopt when the FCS fails or
/// the frame is malformed.
std::optional<Frame> decode_frame(std::span<const std::uint8_t> mpdu);

/// MPDU size in bytes for a frame type and payload length (for airtime
/// calculations that want exact numbers).
std::size_t mpdu_size_bytes(FrameType type, std::size_t payload_bytes);

}  // namespace wlan::mac

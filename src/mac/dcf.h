// DCF (CSMA/CA) saturation simulator.
//
// Classic slotted model of the 802.11 distributed coordination function:
// saturated stations contend with binary exponential backoff; one
// transmitter in a slot is a success (subject to a channel packet-error
// probability), two or more collide. RTS/CTS and 802.11n A-MPDU
// aggregation with block ack are supported. The slot-synchronous
// abstraction is the standard one (Bianchi 2000) and is exact for
// saturated DCF at slot resolution.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "mac/timing.h"
#include "obs/trace.h"

namespace wlan::mac {

struct DcfConfig {
  PhyGeneration generation = PhyGeneration::kOfdm;
  double data_rate_mbps = 54.0;
  double basic_rate_mbps = 24.0;  ///< control-frame rate
  std::size_t payload_bytes = 1500;
  std::size_t n_stations = 1;
  unsigned retry_limit = 7;
  bool rts_cts = false;
  double packet_error_rate = 0.0;  ///< channel PER applied per (A-)MPDU
  double duration_s = 2.0;

  // 802.11n extras.
  std::size_t n_ss = 1;
  bool short_gi = false;
  std::size_t ampdu_frames = 1;  ///< >1 enables A-MPDU + block ack

  /// Optional slot-level event trace (TX_START, RX_OK/RX_FAIL,
  /// COLLISION, DROP); null = disabled, zero overhead.
  obs::TraceSink* trace = nullptr;
};

/// Frame accounting is per MPDU and conserves mass:
/// `offered_frames == delivered_frames + dropped + pending_frames`.
/// Inside a partially-delivered A-MPDU, each lost subframe keeps its own
/// retry count and is either retransmitted in a later burst or dropped
/// once it exceeds the retry limit — it never silently vanishes.
struct DcfResult {
  double throughput_mbps = 0.0;        ///< delivered payload bits / time
  double collision_probability = 0.0;  ///< colliding tx / all tx attempts
  double mean_access_delay_s = 0.0;    ///< head-of-queue to delivery
  double busy_airtime_fraction = 0.0;
  std::uint64_t delivered_frames = 0;
  std::uint64_t attempts = 0;          ///< transmission attempts (bursts)
  std::uint64_t collisions = 0;
  std::uint64_t dropped = 0;           ///< MPDUs past the retry limit
  std::uint64_t offered_frames = 0;    ///< MPDUs that entered the MAC
  std::uint64_t pending_frames = 0;    ///< MPDUs still queued at the end
};

/// Runs the saturated-DCF simulation.
DcfResult simulate_dcf(const DcfConfig& config, Rng& rng);

/// Theoretical upper bound on MAC goodput for a single station with no
/// contention (DIFS + backoff(mean) + data + SIFS + ACK cycle). Useful as
/// a sanity reference for the simulator and for MAC-efficiency tables.
double dcf_single_station_goodput_mbps(const DcfConfig& config);

}  // namespace wlan::mac

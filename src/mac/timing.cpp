#include "mac/timing.h"

#include <cmath>

#include "common/check.h"

namespace wlan::mac {

MacTiming mac_timing(PhyGeneration gen) {
  switch (gen) {
    case PhyGeneration::kDsss:
    case PhyGeneration::kHrDsss:
      return MacTiming{20e-6, 10e-6, 31, 1023};
    case PhyGeneration::kOfdm:
    case PhyGeneration::kHt:
      return MacTiming{9e-6, 16e-6, 15, 1023};
  }
  return MacTiming{20e-6, 10e-6, 31, 1023};
}

double dsss_ppdu_duration_s(double rate_mbps, std::size_t mpdu_bytes,
                            bool short_preamble) {
  check(rate_mbps > 0.0, "rate must be positive");
  const double plcp = short_preamble ? 96e-6 : 192e-6;
  return plcp + static_cast<double>(mpdu_bytes) * 8.0 / (rate_mbps * 1e6);
}

double ofdm_ppdu_duration_s(double rate_mbps, std::size_t mpdu_bytes) {
  check(rate_mbps > 0.0, "rate must be positive");
  const double n_dbps = rate_mbps * 4.0;  // bits per 4 us symbol
  const double payload_bits = 16.0 + 8.0 * static_cast<double>(mpdu_bytes) + 6.0;
  return 20e-6 + std::ceil(payload_bits / n_dbps) * 4e-6;
}

double ht_ppdu_duration_s(double rate_mbps, std::size_t mpdu_bytes,
                          std::size_t n_ss, bool short_gi) {
  check(rate_mbps > 0.0 && n_ss >= 1 && n_ss <= 4, "bad HT parameters");
  const double t_sym = short_gi ? 3.6e-6 : 4e-6;
  const double n_dbps = rate_mbps * t_sym * 1e6;
  const double payload_bits = 16.0 + 8.0 * static_cast<double>(mpdu_bytes) + 6.0;
  const std::size_t n_ltf = n_ss == 3 ? 4 : n_ss;
  const double preamble = 32e-6 + 4e-6 * static_cast<double>(n_ltf);
  return preamble + std::ceil(payload_bits / n_dbps) * t_sym;
}

double data_ppdu_duration_s(PhyGeneration gen, double rate_mbps,
                            std::size_t mpdu_bytes, std::size_t n_ss,
                            bool short_gi) {
  switch (gen) {
    case PhyGeneration::kDsss:
    case PhyGeneration::kHrDsss:
      return dsss_ppdu_duration_s(rate_mbps, mpdu_bytes);
    case PhyGeneration::kOfdm:
      return ofdm_ppdu_duration_s(rate_mbps, mpdu_bytes);
    case PhyGeneration::kHt:
      return ht_ppdu_duration_s(rate_mbps, mpdu_bytes, n_ss, short_gi);
  }
  return 0.0;
}

double control_duration_s(PhyGeneration gen, std::size_t frame_bytes,
                          double basic_rate_mbps) {
  switch (gen) {
    case PhyGeneration::kDsss:
    case PhyGeneration::kHrDsss:
      return dsss_ppdu_duration_s(basic_rate_mbps, frame_bytes);
    case PhyGeneration::kOfdm:
    case PhyGeneration::kHt:
      // Control frames use legacy OFDM format.
      return ofdm_ppdu_duration_s(basic_rate_mbps, frame_bytes);
  }
  return 0.0;
}

}  // namespace wlan::mac

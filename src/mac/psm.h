// 802.11 power-save mode (PSM) simulator.
//
// One AP, one station, Poisson downlink traffic. With PSM off the station
// listens continuously (CAM, constant awake); with PSM on it dozes and
// wakes at TIM beacons, trading delivery latency for radio-off time. The
// paper's closing argument — that WLAN protocols "make few concessions to
// issues of power management" — is quantified by the awake-time breakdown
// this simulator produces (energy is attached by the power module).
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "mac/timing.h"

namespace wlan::mac {

struct PsmConfig {
  bool psm_enabled = true;
  double beacon_interval_s = 102.4e-3;  ///< 100 TU
  unsigned listen_interval = 1;         ///< wake every Nth beacon
  double arrival_rate_pps = 10.0;       ///< Poisson downlink packets/s
  std::size_t payload_bytes = 500;
  double data_rate_mbps = 54.0;
  double basic_rate_mbps = 24.0;
  PhyGeneration generation = PhyGeneration::kOfdm;
  double wake_transition_s = 250e-6;    ///< doze -> awake ramp
  double duration_s = 20.0;
};

/// Radio-state time breakdown plus delivery statistics.
struct PsmResult {
  double time_rx_s = 0.0;    ///< receiving (beacons + data)
  double time_tx_s = 0.0;    ///< transmitting (ACKs, PS-Poll)
  double time_idle_s = 0.0;  ///< awake but not transferring
  double time_doze_s = 0.0;  ///< radio in doze
  double mean_delay_s = 0.0; ///< arrival -> delivery completion
  double max_delay_s = 0.0;
  std::uint64_t delivered = 0;

  double awake_fraction(double duration_s) const {
    return (time_rx_s + time_tx_s + time_idle_s) / duration_s;
  }
};

PsmResult simulate_psm(const PsmConfig& config, Rng& rng);

}  // namespace wlan::mac

// Unified link-level simulation front end.
//
// Every generation gets the same Monte-Carlo harness: N packets through
// (waveform or per-tone) channel at a mean SNR, returning PER/BER and
// goodput. Distance-based variants fold in the path-loss model so range
// experiments (C6, C7) can sweep metres instead of decibels.
//
// Packets run through par::montecarlo: each runner consumes exactly one
// u64 from the caller's Rng as the root of a counter-based per-packet
// seed derivation, then executes packets on the process worker pool
// (see --jobs). Results are a pure function of the caller's Rng state
// and the packet count — bitwise identical for any thread count.
#pragma once

#include <cstdint>
#include <optional>

#include "channel/fading.h"
#include "channel/pathloss.h"
#include "common/rng.h"
#include "phy/cck.h"
#include "phy/dsss.h"
#include "phy/ht.h"
#include "phy/ofdm.h"

namespace wlan {

/// Outcome of a Monte-Carlo link run.
struct LinkResult {
  std::uint64_t packets = 0;
  std::uint64_t packet_errors = 0;
  std::uint64_t bits = 0;
  std::uint64_t bit_errors = 0;

  double per() const {
    return packets ? static_cast<double>(packet_errors) /
                         static_cast<double>(packets)
                   : 0.0;
  }
  double ber() const {
    return bits ? static_cast<double>(bit_errors) / static_cast<double>(bits)
                : 0.0;
  }
  /// Goodput at the given PHY rate: rate x (1 - PER).
  double goodput_mbps(double phy_rate_mbps) const {
    return phy_rate_mbps * (1.0 - per());
  }

  /// Folds another partial result into this one (integer counters only,
  /// so merging is associative and order-independent).
  void merge(const LinkResult& other) {
    packets += other.packets;
    packet_errors += other.packet_errors;
    bits += other.bits;
    bit_errors += other.bit_errors;
  }
};

/// Optional narrowband interferer applied to waveform-level links.
struct ToneInterference {
  double sir_db;      ///< signal-to-interference ratio
  double freq_norm;   ///< tone frequency, cycles/sample
};

/// Channel selection for waveform links: AWGN-only, flat Rayleigh, or a
/// TGn-style tapped delay line drawn per packet.
struct ChannelSpec {
  enum class Kind { kAwgn, kFlatRayleigh, kTdl } kind = Kind::kAwgn;
  channel::DelayProfile profile = channel::DelayProfile::kOffice;

  static ChannelSpec awgn() { return {}; }
  static ChannelSpec flat_rayleigh() {
    return {Kind::kFlatRayleigh, channel::DelayProfile::kFlat};
  }
  static ChannelSpec tdl(channel::DelayProfile p) { return {Kind::kTdl, p}; }
};

/// DSSS (802.11-1997) link: `bits_per_packet` payload bits per packet.
LinkResult run_dsss_link(const phy::DsssModem::Config& config,
                         std::size_t bits_per_packet, std::size_t n_packets,
                         double snr_db, Rng& rng,
                         std::optional<ToneInterference> interference = {},
                         ChannelSpec channel = ChannelSpec::awgn());

/// CCK (802.11b) link.
LinkResult run_cck_link(phy::CckRate rate, std::size_t bits_per_packet,
                        std::size_t n_packets, double snr_db, Rng& rng,
                        ChannelSpec channel = ChannelSpec::awgn());

/// OFDM (802.11a/g) link: full time-domain waveform with LTF channel
/// estimation at the receiver.
LinkResult run_ofdm_link(phy::OfdmMcs mcs, std::size_t psdu_bytes,
                         std::size_t n_packets, double snr_db, Rng& rng,
                         ChannelSpec channel = ChannelSpec::awgn());

/// HT (802.11n) link: frequency-domain MIMO simulation; the channel is a
/// fresh TGn-profile draw per packet.
LinkResult run_ht_link(const phy::HtConfig& config, std::size_t psdu_bytes,
                       std::size_t n_packets, double snr_db, Rng& rng,
                       channel::DelayProfile profile =
                           channel::DelayProfile::kOffice);

/// Trial-batching knobs for the batched link runners.
struct BatchOptions {
  /// Trials per SIMD group (1..par::kMaxBatch = 16). The double-precision
  /// vector decoders want a multiple of the SIMD width; other counts fall
  /// back to the scalar kernels per lane (still batched at the runner).
  std::size_t lanes = 8;
  /// Engage the int16 quantized decoder fast paths. Results are then NOT
  /// bitwise against the double path — gate on PER deltas (bench_diff).
  bool quantized = false;
};

/// As run_ofdm_link, pushing trials through the receiver in SIMD groups
/// of `batch.lanes` (dsp/batch.h). With batch.quantized false the result
/// is bitwise identical to run_ofdm_link from the same Rng state, for
/// any --jobs and any lane count.
LinkResult run_ofdm_link_batched(phy::OfdmMcs mcs, std::size_t psdu_bytes,
                                 std::size_t n_packets, double snr_db,
                                 Rng& rng, BatchOptions batch,
                                 ChannelSpec channel = ChannelSpec::awgn());

/// As run_ht_link, batched; same bitwise contract as
/// run_ofdm_link_batched.
LinkResult run_ht_link_batched(const phy::HtConfig& config,
                               std::size_t psdu_bytes, std::size_t n_packets,
                               double snr_db, Rng& rng, BatchOptions batch,
                               channel::DelayProfile profile =
                                   channel::DelayProfile::kOffice);

/// Mean SNR at `distance_m` under a link budget (convenience for range
/// sweeps): tx_power - path_loss(distance) - noise(bandwidth).
double snr_at_distance_db(const channel::PathLossModel& pathloss,
                          double distance_m, double tx_power_dbm,
                          double bandwidth_hz, double noise_figure_db = 6.0);

}  // namespace wlan

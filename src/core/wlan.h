// Umbrella header: the full holtwlan public API.
//
// Substrate layers can also be included individually; this header is the
// convenient starting point for examples and downstream users.
#pragma once

#include "channel/awgn.h"        // IWYU pragma: export
#include "channel/doppler.h"     // IWYU pragma: export
#include "channel/fading.h"      // IWYU pragma: export
#include "channel/mimo.h"        // IWYU pragma: export
#include "channel/pathloss.h"    // IWYU pragma: export
#include "common/rng.h"          // IWYU pragma: export
#include "common/types.h"        // IWYU pragma: export
#include "common/units.h"        // IWYU pragma: export
#include "coop/coop.h"           // IWYU pragma: export
#include "core/abstraction.h"    // IWYU pragma: export
#include "core/link.h"           // IWYU pragma: export
#include "core/standards.h"      // IWYU pragma: export
#include "linalg/decompose.h"    // IWYU pragma: export
#include "mac/bianchi.h"         // IWYU pragma: export
#include "mac/dcf.h"             // IWYU pragma: export
#include "mac/psm.h"             // IWYU pragma: export
#include "dsp/spectrum.h"        // IWYU pragma: export
#include "mac/edca.h"            // IWYU pragma: export
#include "mac/frames.h"          // IWYU pragma: export
#include "mac/rate_adapt.h"      // IWYU pragma: export
#include "mesh/mesh.h"           // IWYU pragma: export
#include "net/netsim.h"          // IWYU pragma: export
#include "phy/cck.h"             // IWYU pragma: export
#include "phy/dsss.h"            // IWYU pragma: export
#include "phy/fhss.h"            // IWYU pragma: export
#include "phy/ht.h"              // IWYU pragma: export
#include "phy/ldpc.h"            // IWYU pragma: export
#include "phy/ofdm.h"            // IWYU pragma: export
#include "phy/plcp.h"            // IWYU pragma: export
#include "phy/sync.h"            // IWYU pragma: export
#include "power/power.h"         // IWYU pragma: export

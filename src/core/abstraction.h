// Link-to-system abstraction: EESM effective SNR and fast PER prediction.
//
// Full waveform simulation is the ground truth but costs milliseconds per
// packet; network-scale studies (mesh, DCF with many stations) need PER
// in nanoseconds. The standard bridge — used by the 802.11n proposal
// evaluations themselves — is the Exponential Effective SNR Mapping:
// compress the per-subcarrier SNRs of a frequency-selective realization
// into one AWGN-equivalent SNR, then look up an AWGN PER curve.
#pragma once

#include <span>

#include "channel/fading.h"
#include "phy/ofdm.h"

namespace wlan {

/// EESM: snr_eff = -beta * ln( mean_k exp(-snr_k / beta) ), all linear.
/// Inputs and output in dB.
double eesm_effective_snr_db(std::span<const double> tone_snrs_db, double beta);

/// Calibrated beta per OFDM MCS (grows with constellation density).
double eesm_beta(phy::OfdmMcs mcs);

/// AWGN PER reference curve for an MCS (logistic fit to this library's
/// measured waterfalls at 500-byte PSDUs).
double ofdm_awgn_per(phy::OfdmMcs mcs, double snr_db);

/// Fast PER prediction for one TDL realization at a mean SNR: per-tone
/// SNRs from the channel's frequency response -> EESM -> AWGN curve.
double predict_ofdm_per(phy::OfdmMcs mcs, const channel::Tdl& tdl,
                        double mean_snr_db);

}  // namespace wlan

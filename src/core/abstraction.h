// Link-to-system abstraction: EESM effective SNR and fast PER prediction.
//
// Full waveform simulation is the ground truth but costs milliseconds per
// packet; network-scale studies (mesh, DCF with many stations) need PER
// in nanoseconds. The standard bridge — used by the 802.11n proposal
// evaluations themselves — is the Exponential Effective SNR Mapping:
// compress the per-subcarrier SNRs of a frequency-selective realization
// into one AWGN-equivalent SNR, then look up an AWGN PER curve.
//
// Three curve families are calibrated against this library's own waveform
// waterfalls (all at the 500-byte reference PSDU; `scale_per_to_length`
// converts to arbitrary sizes):
//   - OFDM (802.11a/g), all eight MCS          — bench_c4 waterfalls;
//   - DSSS/CCK (802.11/802.11b), 1-11 Mbps     — bench_c1/c3 modems;
//   - HT (802.11n, 20 MHz, long GI, BCC), MCS 0-7 — HtPhy flat channel.
//
// `PerTable` precomputes any PER-vs-SNR curve on a dB grid so hot paths
// (the network simulator decides one reception per frame) pay a clamped
// linear interpolation instead of exp/log evaluations.
#pragma once

#include <cstddef>
#include <span>
#include <utility>

#include "channel/fading.h"
#include "common/check.h"
#include "common/types.h"
#include "phy/ofdm.h"

namespace wlan {

/// EESM: snr_eff = -beta * ln( mean_k exp(-snr_k / beta) ), all linear.
/// Inputs and output in dB. Evaluated with a log-sum-exp shift so large
/// tone SNRs (where exp(-snr/beta) underflows to 0) still produce a
/// finite effective SNR: the result is always within
/// [min_k snr_k, min_k snr_k + beta * ln(N)] (linear scale).
double eesm_effective_snr_db(std::span<const double> tone_snrs_db, double beta);

/// Batched EESM over one frozen realization: for each mean SNR in
/// `mean_snrs_db`, the effective SNR of the tone set
/// {mean + gains_db[k]}. Writes `out_db[i]` for `mean_snrs_db[i]`
/// (sizes must match). Equivalent to calling `eesm_effective_snr_db`
/// per mean, but the per-tone dB->linear conversions are hoisted out of
/// the sweep — the tone SNR at mean m is lin(m) * lin(g_k), and since
/// the mapping is monotone the worst tone is the smallest gain for
/// every mean — so a sweep point costs one exp per tone instead of two.
/// Agrees with the scalar form to floating-point rounding (not bitwise).
void eesm_effective_snr_grid_db(std::span<const double> gains_db, double beta,
                                std::span<const double> mean_snrs_db,
                                std::span<double> out_db);

/// Calibrated beta per OFDM MCS (grows with constellation density).
double eesm_beta(phy::OfdmMcs mcs);

/// Calibrated beta per HT base MCS (0..7; same constellation ladder).
double ht_eesm_beta(unsigned mcs);

/// Reference PSDU size of the calibrated AWGN curves.
inline constexpr std::size_t kPerRefPsduBytes = 500;

/// Converts a PER measured at `ref_bytes` PSDUs to an `psdu_bytes` PSDU
/// under the independent-error assumption: 1 - (1 - p)^(L / L_ref).
/// Computed via log1p/expm1 so tiny reference PERs stay accurate.
double scale_per_to_length(double per_ref, std::size_t psdu_bytes,
                           std::size_t ref_bytes = kPerRefPsduBytes);

/// AWGN PER reference curve for an OFDM MCS (logistic fit to this
/// library's measured waterfalls at 500-byte PSDUs), scaled to
/// `psdu_bytes`.
double ofdm_awgn_per(phy::OfdmMcs mcs, double snr_db,
                     std::size_t psdu_bytes = kPerRefPsduBytes);

/// DSSS/CCK rates with calibrated AWGN curves.
enum class DsssCckRate { k1Mbps, k2Mbps, k5_5Mbps, k11Mbps };

/// AWGN PER for a DSSS/CCK rate (logistic fit to the Barker/CCK modem
/// waterfalls at 500-byte PSDUs), scaled to `psdu_bytes`.
double dsss_awgn_per(DsssCckRate rate, double snr_db,
                     std::size_t psdu_bytes = kPerRefPsduBytes);

/// AWGN PER for an HT base MCS 0..7 (20 MHz, long GI, BCC, MMSE; fit to
/// HtPhy flat-channel waterfalls at 500-byte PSDUs), scaled to
/// `psdu_bytes`.
double ht_awgn_per(unsigned mcs, double snr_db,
                   std::size_t psdu_bytes = kPerRefPsduBytes);

/// Fast PER prediction for one TDL realization at a mean SNR: per-tone
/// SNRs from the channel's frequency response -> EESM -> AWGN curve.
double predict_ofdm_per(phy::OfdmMcs mcs, const channel::Tdl& tdl,
                        double mean_snr_db,
                        std::size_t psdu_bytes = kPerRefPsduBytes);

/// Same for an HT base MCS (20 MHz, 52 data tones, single stream).
double predict_ht_per(unsigned mcs, const channel::Tdl& tdl,
                      double mean_snr_db,
                      std::size_t psdu_bytes = kPerRefPsduBytes);

/// Per-tone power gains (dB) of one TDL realization on the OFDM 48-tone
/// grid. Add a mean SNR to get the tone SNRs EESM consumes; callers that
/// sweep many mean SNRs over one frozen realization (PER-table builds)
/// extract the gains once instead of redoing the FFT per sweep point.
RVec ofdm_tone_gains_db(const channel::Tdl& tdl);

/// Same on the HT 20 MHz (52-tone) grid.
RVec ht20_tone_gains_db(const channel::Tdl& tdl);

/// EESM effective SNR of one TDL realization at a mean SNR over the OFDM
/// (48-tone) grid.
double eesm_effective_snr_for_tdl_db(const channel::Tdl& tdl,
                                     double mean_snr_db, double beta);

/// Same over the HT 20 MHz (52-tone) grid.
double ht_eesm_effective_snr_for_tdl_db(const channel::Tdl& tdl,
                                        double mean_snr_db, double beta);

/// Precomputed PER-vs-SNR curve on a uniform dB grid with clamped linear
/// interpolation — the hot-path representation of any of the curves
/// above (or of an EESM-composed curve for a frozen fading realization).
class PerTable {
 public:
  PerTable() = default;

  /// Samples `per_at(snr_db)` on [min_db, max_db] at `step_db` spacing.
  template <class Fn>
  PerTable(double min_db, double max_db, double step_db, Fn&& per_at)
      : min_db_(min_db), inv_step_(1.0 / step_db) {
    check(step_db > 0.0 && max_db > min_db, "PerTable requires a valid grid");
    const auto n =
        static_cast<std::size_t>((max_db - min_db) / step_db + 0.5) + 1;
    per_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      per_.push_back(per_at(min_db + static_cast<double>(i) * step_db));
    }
  }

  /// Wraps already-sampled PER values on a uniform grid starting at
  /// `min_db` with `step_db` spacing — for builders that batch-evaluate
  /// the whole grid (e.g. `eesm_effective_snr_grid_db`) before wrapping.
  PerTable(double min_db, double step_db, RVec per_values)
      : min_db_(min_db), inv_step_(1.0 / step_db), per_(std::move(per_values)) {
    check(step_db > 0.0 && !per_.empty(), "PerTable requires a valid grid");
  }

  bool empty() const { return per_.empty(); }
  std::size_t size() const { return per_.size(); }

  /// PER at `snr_db`: linear interpolation, clamped to the grid ends.
  double lookup(double snr_db) const {
    check(!per_.empty(), "PerTable::lookup on an empty table");
    const double pos = (snr_db - min_db_) * inv_step_;
    if (pos <= 0.0) return per_.front();
    const double last = static_cast<double>(per_.size() - 1);
    if (pos >= last) return per_.back();
    const auto i = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(i);
    return per_[i] + frac * (per_[i + 1] - per_[i]);
  }

 private:
  double min_db_ = 0.0;
  double inv_step_ = 1.0;
  RVec per_;
};

}  // namespace wlan

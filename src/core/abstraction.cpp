#include "core/abstraction.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/units.h"
#include "phy/ht.h"

namespace wlan {
namespace {

/// Logistic reference waterfall: 1 / (1 + exp(slope * (snr - mid))).
double logistic_per(double snr_db, double midpoint_db, double slope) {
  const double x = slope * (snr_db - midpoint_db);
  // exp overflows gracefully to +inf (PER -> 0) but protect the other
  // tail explicitly so deeply negative SNRs return exactly 1.
  if (x < -700.0) return 1.0;
  return 1.0 / (1.0 + std::exp(x));
}

/// Per-tone power gains (dB) sampled from a TDL frequency response.
RVec tone_gains_over_bins(const channel::Tdl& tdl, std::span<const int> tones,
                          std::size_t n_fft) {
  const CVec freq = tdl.frequency_response(n_fft);
  RVec gains;
  gains.reserve(tones.size());
  for (const int tone : tones) {
    const auto bin = static_cast<std::size_t>(
        (tone + static_cast<int>(n_fft)) % static_cast<int>(n_fft));
    gains.push_back(lin_to_db(std::max(std::norm(freq[bin]), 1e-12)));
  }
  return gains;
}

/// EESM over tone SNRs = frozen per-tone gains + a mean SNR.
double eesm_over_gains(std::span<const double> gains_db, double mean_snr_db,
                       double beta) {
  RVec snrs;
  snrs.reserve(gains_db.size());
  for (const double g : gains_db) snrs.push_back(mean_snr_db + g);
  return eesm_effective_snr_db(snrs, beta);
}

}  // namespace

double eesm_effective_snr_db(std::span<const double> tone_snrs_db, double beta) {
  check(!tone_snrs_db.empty(), "EESM requires at least one tone");
  check(beta > 0.0, "EESM beta must be positive");
  // Log-sum-exp shift by the worst tone: with s_min = min_k snr_k,
  //   -beta * ln( mean_k exp(-s_k/beta) )
  //     = s_min - beta * ln( mean_k exp(-(s_k - s_min)/beta) )
  // where every shifted exponent is <= 0 and the worst tone contributes
  // exactly 1, so the sum can neither underflow to 0 nor overflow. The
  // naive form underflows already at ~31 dB tone SNRs for beta = 1.5.
  double min_lin = db_to_lin(tone_snrs_db[0]);
  for (const double snr_db : tone_snrs_db) {
    min_lin = std::min(min_lin, db_to_lin(snr_db));
  }
  double acc = 0.0;
  for (const double snr_db : tone_snrs_db) {
    acc += std::exp(-(db_to_lin(snr_db) - min_lin) / beta);
  }
  acc /= static_cast<double>(tone_snrs_db.size());
  return lin_to_db(min_lin - beta * std::log(acc));
}

void eesm_effective_snr_grid_db(std::span<const double> gains_db, double beta,
                                std::span<const double> mean_snrs_db,
                                std::span<double> out_db) {
  check(!gains_db.empty(), "EESM requires at least one tone");
  check(beta > 0.0, "EESM beta must be positive");
  check(out_db.size() == mean_snrs_db.size(),
        "EESM grid output size must match the mean-SNR grid");
  // Tone SNR at mean m is lin(m) * lin(g_k); convert the gains once.
  // db_to_lin is monotone, so the log-sum-exp shift anchor (the worst
  // tone) is the smallest gain for every mean, and the shifted exponent
  // -(s*g_k - s*g_min)/beta = -s*(g_k - g_min)/beta needs only the
  // precomputed gain differences.
  RVec diff;
  diff.reserve(gains_db.size());
  double g_min = db_to_lin(gains_db[0]);
  for (const double g : gains_db) g_min = std::min(g_min, db_to_lin(g));
  for (const double g : gains_db) diff.push_back(db_to_lin(g) - g_min);
  const double inv_n = 1.0 / static_cast<double>(gains_db.size());
  for (std::size_t i = 0; i < mean_snrs_db.size(); ++i) {
    const double s = db_to_lin(mean_snrs_db[i]);
    double acc = 0.0;
    for (const double d : diff) acc += std::exp(-s * d / beta);
    out_db[i] = lin_to_db(s * g_min - beta * std::log(acc * inv_n));
  }
}

double eesm_beta(phy::OfdmMcs mcs) {
  // Least-squares fit of realization-averaged predicted PER against the
  // waveform simulator (fresh TDL per packet, residential + office
  // profiles, three SNRs per MCS). The low-order MCS land below the
  // textbook per-modulation values because the waveform receiver's LTF
  // channel estimate degrades in spectral notches, which a smaller beta
  // (more weight on the worst tones) absorbs.
  static constexpr std::array<double, 8> kBeta = {0.6,  0.8,  0.45, 2.5,
                                                  5.0,  10.0, 45.0, 45.0};
  return kBeta[static_cast<std::size_t>(mcs)];
}

double ht_eesm_beta(unsigned mcs) {
  check(mcs < 8, "HT AWGN curves are calibrated for base MCS 0..7");
  // Same least-squares fit as eesm_beta(), against the HT link simulator
  // (20 MHz, long GI, BCC, MMSE equalizer).
  static constexpr std::array<double, 8> kBeta = {0.6,  1.5,  1.5,  5.0,
                                                  7.0,  22.0, 22.0, 30.0};
  return kBeta[mcs];
}

double scale_per_to_length(double per_ref, std::size_t psdu_bytes,
                           std::size_t ref_bytes) {
  check(psdu_bytes > 0 && ref_bytes > 0,
        "PER length scaling requires positive sizes");
  if (psdu_bytes == ref_bytes) return per_ref;
  const double p = std::clamp(per_ref, 0.0, 1.0);
  if (p >= 1.0) return 1.0;
  const double ratio =
      static_cast<double>(psdu_bytes) / static_cast<double>(ref_bytes);
  // 1 - (1 - p)^ratio, accurate for tiny p.
  return -std::expm1(ratio * std::log1p(-p));
}

double ofdm_awgn_per(phy::OfdmMcs mcs, double snr_db, std::size_t psdu_bytes) {
  // Logistic fits to bench_c4's measured 500-byte waterfalls.
  static constexpr std::array<double, 8> kMidpoints = {
      1.2, 3.1, 3.1, 6.8, 9.2, 12.9, 17.0, 18.6};
  constexpr double kSlope = 1.6;
  const double mid = kMidpoints[static_cast<std::size_t>(mcs)];
  return scale_per_to_length(logistic_per(snr_db, mid, kSlope), psdu_bytes);
}

double dsss_awgn_per(DsssCckRate rate, double snr_db, std::size_t psdu_bytes) {
  // Logistic fits to the Barker/CCK modem AWGN waterfalls at 4000-bit
  // (500-byte) packets: DBPSK/DQPSK despread (bench_c1's modems) and the
  // CCK ML correlation receiver (bench_c3).
  static constexpr std::array<double, 4> kMidpoints = {-1.5, 3.0, 4.0, 7.3};
  static constexpr std::array<double, 4> kSlopes = {2.5, 2.2, 1.9, 2.3};
  const auto i = static_cast<std::size_t>(rate);
  return scale_per_to_length(logistic_per(snr_db, kMidpoints[i], kSlopes[i]),
                             psdu_bytes);
}

double ht_awgn_per(unsigned mcs, double snr_db, std::size_t psdu_bytes) {
  check(mcs < 8, "HT AWGN curves are calibrated for base MCS 0..7");
  // Logistic fits to HtPhy flat-identity-channel waterfalls (20 MHz,
  // long GI, BCC, MMSE, 500-byte PSDUs).
  static constexpr std::array<double, 8> kMidpoints = {-0.45, 2.6,  5.1,  7.9,
                                                       11.4,  15.1, 16.6, 18.0};
  constexpr double kSlope = 2.2;
  return scale_per_to_length(logistic_per(snr_db, kMidpoints[mcs], kSlope),
                             psdu_bytes);
}

RVec ofdm_tone_gains_db(const channel::Tdl& tdl) {
  return tone_gains_over_bins(tdl, phy::ofdm_data_tones(), phy::OfdmPhy::kNfft);
}

RVec ht20_tone_gains_db(const channel::Tdl& tdl) {
  const std::vector<int> tones =
      phy::ht_data_tone_list(phy::HtBandwidth::k20MHz);
  return tone_gains_over_bins(tdl, tones, 64);
}

double eesm_effective_snr_for_tdl_db(const channel::Tdl& tdl,
                                     double mean_snr_db, double beta) {
  return eesm_over_gains(ofdm_tone_gains_db(tdl), mean_snr_db, beta);
}

double ht_eesm_effective_snr_for_tdl_db(const channel::Tdl& tdl,
                                        double mean_snr_db, double beta) {
  return eesm_over_gains(ht20_tone_gains_db(tdl), mean_snr_db, beta);
}

double predict_ofdm_per(phy::OfdmMcs mcs, const channel::Tdl& tdl,
                        double mean_snr_db, std::size_t psdu_bytes) {
  const double eff =
      eesm_effective_snr_for_tdl_db(tdl, mean_snr_db, eesm_beta(mcs));
  return ofdm_awgn_per(mcs, eff, psdu_bytes);
}

double predict_ht_per(unsigned mcs, const channel::Tdl& tdl,
                      double mean_snr_db, std::size_t psdu_bytes) {
  const double eff =
      ht_eesm_effective_snr_for_tdl_db(tdl, mean_snr_db, ht_eesm_beta(mcs));
  return ht_awgn_per(mcs, eff, psdu_bytes);
}

}  // namespace wlan

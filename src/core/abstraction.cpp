#include "core/abstraction.h"

#include <cmath>

#include "common/check.h"
#include "common/units.h"

namespace wlan {

double eesm_effective_snr_db(std::span<const double> tone_snrs_db, double beta) {
  check(!tone_snrs_db.empty(), "EESM requires at least one tone");
  check(beta > 0.0, "EESM beta must be positive");
  double acc = 0.0;
  for (const double snr_db : tone_snrs_db) {
    acc += std::exp(-db_to_lin(snr_db) / beta);
  }
  acc /= static_cast<double>(tone_snrs_db.size());
  return lin_to_db(-beta * std::log(acc));
}

double eesm_beta(phy::OfdmMcs mcs) {
  // Standard calibration ballpark: ~1.5 for BPSK/QPSK up to ~25 for
  // 64-QAM (3GPP/802.11 evaluation methodology values).
  switch (phy::ofdm_mcs_info(mcs).mod) {
    case phy::Modulation::kBpsk: return 1.5;
    case phy::Modulation::kQpsk: return 2.5;
    case phy::Modulation::kQam16: return 7.0;
    case phy::Modulation::kQam64: return 22.0;
  }
  return 2.0;
}

double ofdm_awgn_per(phy::OfdmMcs mcs, double snr_db) {
  // Logistic fits to bench_c4's measured 500-byte waterfalls.
  static constexpr std::array<double, 8> kMidpoints = {
      1.2, 3.1, 3.1, 6.8, 9.2, 12.9, 17.0, 18.6};
  constexpr double kSlope = 1.6;
  const double mid = kMidpoints[static_cast<std::size_t>(mcs)];
  return 1.0 / (1.0 + std::exp(kSlope * (snr_db - mid)));
}

double predict_ofdm_per(phy::OfdmMcs mcs, const channel::Tdl& tdl,
                        double mean_snr_db) {
  const CVec freq = tdl.frequency_response(phy::OfdmPhy::kNfft);
  const auto& tones = phy::ofdm_data_tones();
  RVec snrs;
  snrs.reserve(tones.size());
  for (const int tone : tones) {
    const double gain = std::max(std::norm(freq[phy::ofdm_tone_bin(tone)]), 1e-12);
    snrs.push_back(mean_snr_db + lin_to_db(gain));
  }
  const double eff = eesm_effective_snr_db(snrs, eesm_beta(mcs));
  return ofdm_awgn_per(mcs, eff);
}

}  // namespace wlan

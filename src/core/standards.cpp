#include "core/standards.h"

#include <algorithm>
#include <array>

#include "common/check.h"
#include "phy/ht.h"

namespace wlan {
namespace {

constexpr std::array<StandardInfo, 5> kStandards = {{
    {Standard::k80211, "802.11-1997", 1997, 2.4, 20.0, "DSSS (Barker/DPSK)", 2.0},
    {Standard::k80211b, "802.11b", 1999, 2.4, 22.0, "CCK", 11.0},
    {Standard::k80211a, "802.11a", 1999, 5.2, 20.0, "OFDM", 54.0},
    {Standard::k80211g, "802.11g", 2003, 2.4, 20.0, "OFDM", 54.0},
    {Standard::k80211n, "802.11n (draft)", 2005, 5.2, 40.0, "MIMO-OFDM", 600.0},
}};

}  // namespace

const StandardInfo& standard_info(Standard standard) {
  for (const auto& info : kStandards) {
    if (info.standard == standard) return info;
  }
  check(false, "unknown standard");
  return kStandards[0];
}

std::span<const StandardInfo> all_standards() { return kStandards; }

std::vector<double> supported_rates_mbps(Standard standard) {
  switch (standard) {
    case Standard::k80211: return {1.0, 2.0};
    case Standard::k80211b: return {1.0, 2.0, 5.5, 11.0};
    case Standard::k80211a:
    case Standard::k80211g:
      return {6.0, 9.0, 12.0, 18.0, 24.0, 36.0, 48.0, 54.0};
    case Standard::k80211n: {
      // All 32 MCS at 40 MHz / short GI (the generation's headline mode).
      std::vector<double> rates;
      for (unsigned mcs = 0; mcs < 32; ++mcs) {
        rates.push_back(phy::ht_data_rate_mbps(mcs, phy::HtBandwidth::k40MHz,
                                               phy::HtGuardInterval::kShort));
      }
      std::sort(rates.begin(), rates.end());
      return rates;
    }
  }
  return {};
}

}  // namespace wlan

#include "core/link.h"

#include <algorithm>
#include <array>
#include <bit>
#include <span>

#include "channel/awgn.h"
#include "common/bits.h"
#include "common/check.h"
#include "common/units.h"
#include "dsp/ops.h"
#include "obs/perf.h"
#include "par/montecarlo.h"
#include "phy/workspace.h"

namespace wlan {
namespace {

// Shared merge step for all runners: chunk partials are integer counter
// sums, folded in chunk order by par::montecarlo.
void merge_links(LinkResult& acc, const LinkResult& partial) {
  acc.merge(partial);
}

// Applies the selected channel to `wave` in place (leasing convolution
// scratch from `ws` for the TDL case, which lengthens the waveform).
// AWGN passes through untouched — no per-trial copy.
void apply_channel(CVec& wave, ChannelSpec spec, double sample_rate_hz,
                   Rng& rng, phy::Workspace& ws) {
  switch (spec.kind) {
    case ChannelSpec::Kind::kAwgn:
      return;
    case ChannelSpec::Kind::kFlatRayleigh: {
      const Cplx h = channel::flat_fading_coefficient(rng);
      for (auto& v : wave) v = h * v;
      return;
    }
    case ChannelSpec::Kind::kTdl: {
      const channel::Tdl tdl = channel::make_tdl(rng, spec.profile, sample_rate_hz);
      auto faded = ws.cvec(0);
      tdl.apply_to(wave, *faded);
      std::swap(wave, *faded);
      return;
    }
  }
}

void count_bit_errors(std::span<const std::uint8_t> a,
                      std::span<const std::uint8_t> b, LinkResult& result) {
  const std::size_t errors = hamming_distance(a, b);
  result.bits += a.size();
  result.bit_errors += errors;
  ++result.packets;
  if (errors > 0) ++result.packet_errors;
}

void count_byte_errors(std::span<const std::uint8_t> sent,
                       std::span<const std::uint8_t> got, LinkResult& result) {
  std::size_t bit_errors = 0;
  for (std::size_t i = 0; i < sent.size(); ++i) {
    bit_errors += static_cast<std::size_t>(
        std::popcount(static_cast<unsigned>(sent[i] ^ got[i])));
  }
  result.bits += 8 * sent.size();
  result.bit_errors += bit_errors;
  ++result.packets;
  if (bit_errors > 0) ++result.packet_errors;
}

}  // namespace

LinkResult run_dsss_link(const phy::DsssModem::Config& config,
                         std::size_t bits_per_packet, std::size_t n_packets,
                         double snr_db, Rng& rng,
                         std::optional<ToneInterference> interference,
                         ChannelSpec channel) {
  check(bits_per_packet > 0 && n_packets > 0, "empty DSSS link run");
  const obs::perf::ScopedSpan span("link.dsss");
  const phy::DsssModem modem(config);
  par::SweepOptions opt;
  opt.root_seed = rng.next_u64();
  return par::montecarlo<LinkResult>(
      n_packets, /*point=*/0, opt,
      [&](std::uint64_t, std::size_t, Rng& prng, LinkResult& acc) {
        phy::Workspace& ws = phy::tls_workspace();
        auto tx_bits = ws.bits(bits_per_packet);
        prng.fill_bits(*tx_bits);
        auto wave_lease = ws.cvec(0);
        CVec& wave = *wave_lease;
        modem.modulate_into(*tx_bits, wave);
        const double signal_power = dsp::mean_power(wave);
        apply_channel(wave, channel, 11e6, prng, ws);
        if (interference) {
          const double jam_power =
              signal_power / db_to_lin(interference->sir_db);
          channel::add_tone_interferer(wave, prng, jam_power,
                                       interference->freq_norm);
        }
        channel::add_awgn(wave, prng, signal_power / db_to_lin(snr_db));
        // Keep only the modem's symbol lattice (TDL tails are discarded;
        // the Barker correlation absorbs within-symbol dispersion).
        const std::size_t expected =
            (bits_per_packet / phy::dsss_bits_per_symbol(config.rate) + 1) *
            modem.chips_per_symbol();
        wave.resize(expected);
        auto rx_bits = ws.bits(0);
        modem.demodulate_into(wave, *rx_bits);
        count_bit_errors(*tx_bits, *rx_bits, acc);
      },
      merge_links);
}

LinkResult run_cck_link(phy::CckRate rate, std::size_t bits_per_packet,
                        std::size_t n_packets, double snr_db, Rng& rng,
                        ChannelSpec channel) {
  check(bits_per_packet > 0 && n_packets > 0, "empty CCK link run");
  const obs::perf::ScopedSpan span("link.cck");
  const phy::CckModem modem(rate);
  par::SweepOptions opt;
  opt.root_seed = rng.next_u64();
  return par::montecarlo<LinkResult>(
      n_packets, /*point=*/0, opt,
      [&](std::uint64_t, std::size_t, Rng& prng, LinkResult& acc) {
        phy::Workspace& ws = phy::tls_workspace();
        auto tx_bits = ws.bits(bits_per_packet);
        prng.fill_bits(*tx_bits);
        auto wave_lease = ws.cvec(0);
        CVec& wave = *wave_lease;
        modem.modulate_into(*tx_bits, wave);
        const double signal_power = dsp::mean_power(wave);
        apply_channel(wave, channel, 11e6, prng, ws);
        channel::add_awgn(wave, prng, signal_power / db_to_lin(snr_db));
        const std::size_t expected =
            (bits_per_packet / phy::cck_bits_per_symbol(rate) + 1) * 8;
        wave.resize(expected);
        auto rx_bits = ws.bits(0);
        modem.demodulate_into(wave, *rx_bits);
        count_bit_errors(*tx_bits, *rx_bits, acc);
      },
      merge_links);
}

LinkResult run_ofdm_link(phy::OfdmMcs mcs, std::size_t psdu_bytes,
                         std::size_t n_packets, double snr_db, Rng& rng,
                         ChannelSpec channel) {
  check(psdu_bytes > 0 && n_packets > 0, "empty OFDM link run");
  const obs::perf::ScopedSpan span("link.ofdm");
  const phy::OfdmPhy phy(mcs);
  par::SweepOptions opt;
  opt.root_seed = rng.next_u64();
  return par::montecarlo<LinkResult>(
      n_packets, /*point=*/0, opt,
      [&](std::uint64_t, std::size_t, Rng& prng, LinkResult& acc) {
        phy::Workspace& ws = phy::tls_workspace();
        auto psdu = ws.bits(psdu_bytes);
        prng.fill_bytes(*psdu);
        auto wave_lease = ws.cvec(0);
        CVec& wave = *wave_lease;
        phy.transmit_into(*psdu, wave, ws);
        const double signal_power = dsp::mean_power(wave);
        const std::size_t tx_len = wave.size();
        apply_channel(wave, channel, phy::OfdmPhy::kSampleRateHz, prng, ws);
        const double noise_var = signal_power / db_to_lin(snr_db);
        channel::add_awgn(wave, prng, noise_var);
        wave.resize(tx_len);  // drop the TDL tail beyond the frame
        auto decoded = ws.bits(0);
        phy.receive_into(wave, psdu_bytes, noise_var, *decoded, ws);
        count_byte_errors(*psdu, *decoded, acc);
      },
      merge_links);
}

LinkResult run_ofdm_link_batched(phy::OfdmMcs mcs, std::size_t psdu_bytes,
                                 std::size_t n_packets, double snr_db,
                                 Rng& rng, BatchOptions batch,
                                 ChannelSpec channel) {
  check(psdu_bytes > 0 && n_packets > 0, "empty OFDM link run");
  check(batch.lanes >= 1 && batch.lanes <= par::kMaxBatch,
        "run_ofdm_link_batched: lanes out of range");
  const obs::perf::ScopedSpan span("link.ofdm");
  const phy::OfdmPhy phy(mcs);
  par::SweepOptions opt;
  opt.root_seed = rng.next_u64();
  const std::size_t tx_len = phy.waveform_length(psdu_bytes);
  return par::montecarlo_batched<LinkResult>(
      n_packets, /*point=*/0, batch.lanes, opt,
      [&](std::uint64_t, std::size_t, std::span<Rng> rngs, LinkResult& acc) {
        phy::Workspace& ws = phy::tls_workspace();
        const std::size_t L = rngs.size();
        auto tx_lease = ws.bits(L * psdu_bytes);
        Bits& tx = *tx_lease;
        auto waves_lease = ws.cvec(L * tx_len);
        CVec& waves = *waves_lease;
        auto wave_lease = ws.cvec(0);
        CVec& wave = *wave_lease;
        std::array<phy::OfdmPhy::RxLane, par::kMaxBatch> rx;
        for (std::size_t l = 0; l < L; ++l) {
          // Each lane consumes exactly its own trial Rng, in the same
          // draw order as the scalar runner — the waveform hitting the
          // receiver is bitwise the scalar trial's waveform.
          Rng& prng = rngs[l];
          const std::span<std::uint8_t> psdu(tx.data() + l * psdu_bytes,
                                             psdu_bytes);
          prng.fill_bytes(psdu);
          phy.transmit_into(psdu, wave, ws);
          const double signal_power = dsp::mean_power(wave);
          apply_channel(wave, channel, phy::OfdmPhy::kSampleRateHz, prng, ws);
          const double noise_var = signal_power / db_to_lin(snr_db);
          channel::add_awgn(wave, prng, noise_var);
          wave.resize(tx_len);  // drop the TDL tail beyond the frame
          std::copy(wave.begin(), wave.end(),
                    waves.begin() + static_cast<std::ptrdiff_t>(l * tx_len));
          rx[l] = {std::span<const Cplx>(waves.data() + l * tx_len, tx_len),
                   noise_var};
        }
        // Group-persistent PSDU buffers: thread_local so their capacity
        // survives across groups (steady state stays allocation-free).
        thread_local std::array<Bytes, par::kMaxBatch> decoded;
        phy.receive_batch_into(
            std::span<const phy::OfdmPhy::RxLane>(rx.data(), L), psdu_bytes,
            std::span<Bytes>(decoded.data(), L), batch.quantized, ws);
        for (std::size_t l = 0; l < L; ++l) {
          count_byte_errors(
              std::span<const std::uint8_t>(tx.data() + l * psdu_bytes,
                                            psdu_bytes),
              decoded[l], acc);
        }
      },
      merge_links);
}

LinkResult run_ht_link(const phy::HtConfig& config, std::size_t psdu_bytes,
                       std::size_t n_packets, double snr_db, Rng& rng,
                       channel::DelayProfile profile) {
  check(psdu_bytes > 0 && n_packets > 0, "empty HT link run");
  const obs::perf::ScopedSpan span("link.ht");
  const phy::HtPhy phy(config);
  par::SweepOptions opt;
  opt.root_seed = rng.next_u64();
  return par::montecarlo<LinkResult>(
      n_packets, /*point=*/0, opt,
      [&](std::uint64_t, std::size_t, Rng& prng, LinkResult& acc) {
        phy::Workspace& ws = phy::tls_workspace();
        auto psdu = ws.bits(psdu_bytes);
        prng.fill_bytes(*psdu);
        // The per-tone channel draw and detector setup still allocate
        // (small matrices, SVD); the symbol/decode hot loops lease.
        const auto tones = phy.draw_channel(prng, profile);
        auto decoded = ws.bits(0);
        phy.simulate_link_into(*psdu, tones, snr_db, prng, *decoded, ws);
        count_byte_errors(*psdu, *decoded, acc);
      },
      merge_links);
}

LinkResult run_ht_link_batched(const phy::HtConfig& config,
                               std::size_t psdu_bytes, std::size_t n_packets,
                               double snr_db, Rng& rng, BatchOptions batch,
                               channel::DelayProfile profile) {
  check(psdu_bytes > 0 && n_packets > 0, "empty HT link run");
  check(batch.lanes >= 1 && batch.lanes <= par::kMaxBatch,
        "run_ht_link_batched: lanes out of range");
  const obs::perf::ScopedSpan span("link.ht");
  const phy::HtPhy phy(config);
  par::SweepOptions opt;
  opt.root_seed = rng.next_u64();
  return par::montecarlo_batched<LinkResult>(
      n_packets, /*point=*/0, batch.lanes, opt,
      [&](std::uint64_t, std::size_t, std::span<Rng> rngs, LinkResult& acc) {
        phy::Workspace& ws = phy::tls_workspace();
        const std::size_t L = rngs.size();
        auto tx_lease = ws.bits(L * psdu_bytes);
        Bits& tx = *tx_lease;
        // Per-lane channel draws allocate (small matrices) just as the
        // scalar runner's do; the lanes array only borrows them.
        std::array<std::vector<linalg::CMatrix>, par::kMaxBatch> tones;
        std::array<phy::HtPhy::TxLane, par::kMaxBatch> lanes;
        for (std::size_t l = 0; l < L; ++l) {
          // Same draw order as the scalar trial: PSDU bytes, then the
          // channel, then (inside the front) the per-tone noise.
          Rng& prng = rngs[l];
          const std::span<std::uint8_t> psdu(tx.data() + l * psdu_bytes,
                                             psdu_bytes);
          prng.fill_bytes(psdu);
          tones[l] = phy.draw_channel(prng, profile);
          lanes[l] = {psdu, &tones[l], &prng};
        }
        thread_local std::array<Bytes, par::kMaxBatch> decoded;
        phy.simulate_link_batch_into(
            std::span<const phy::HtPhy::TxLane>(lanes.data(), L), snr_db,
            std::span<Bytes>(decoded.data(), L), batch.quantized, ws);
        for (std::size_t l = 0; l < L; ++l) {
          count_byte_errors(
              std::span<const std::uint8_t>(tx.data() + l * psdu_bytes,
                                            psdu_bytes),
              decoded[l], acc);
        }
      },
      merge_links);
}

double snr_at_distance_db(const channel::PathLossModel& pathloss,
                          double distance_m, double tx_power_dbm,
                          double bandwidth_hz, double noise_figure_db) {
  return channel::link_snr_db(tx_power_dbm, pathloss.path_loss_db(distance_m),
                              bandwidth_hz, noise_figure_db);
}

}  // namespace wlan

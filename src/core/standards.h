// Registry of the 802.11 generations the paper retraces, with the
// headline numbers the C1 experiment reproduces from simulation.
#pragma once

#include <span>
#include <string_view>
#include <vector>

namespace wlan {

enum class Standard {
  k80211,    ///< 1997: DSSS/FHSS, 1-2 Mbps
  k80211b,   ///< 1999: CCK, up to 11 Mbps
  k80211a,   ///< 1999: OFDM @ 5 GHz, up to 54 Mbps
  k80211g,   ///< 2003: OFDM @ 2.4 GHz, up to 54 Mbps
  k80211n,   ///< draft in 2005: MIMO-OFDM, up to 600 Mbps
};

struct StandardInfo {
  Standard standard;
  std::string_view name;
  int year;
  double carrier_ghz;
  double channel_width_mhz;
  std::string_view modulation;
  double max_rate_mbps;
  /// Peak spectral efficiency = max rate / channel width.
  double spectral_efficiency_bps_hz() const {
    return max_rate_mbps / channel_width_mhz;
  }
};

/// Static facts about a generation (the paper's numbers).
const StandardInfo& standard_info(Standard standard);

/// All generations in chronological order.
std::span<const StandardInfo> all_standards();

/// The PHY rates a generation supports, ascending (Mbps).
std::vector<double> supported_rates_mbps(Standard standard);

}  // namespace wlan

// Frame-lifecycle ledger: where did every frame's delay come from?
//
// The modern WLAN metric is tail latency, not peak rate — and a mean
// delay number cannot say *why* the p99 frame was late. The three
// analyzers here turn the simulator's typed event stream
// (kArrival -> kBackoffStart/kBackoffFreeze -> kTxStart/kTxEnd ->
// kRxOk/kRxFail/kCollision -> kDrop, src/obs/trace.h) into exactly that
// attribution, purely from the events — nothing here touches simulator
// internals, so any producer of the standard taxonomy can feed them:
//
//  - FrameLedger reconstructs each frame's journey at its source node
//    and splits the delivered frame's end-to-end delay into
//      queueing    arrival -> the MAC turning to the frame,
//      contention  backoff countdown + frozen countdown + deferral,
//      airtime     the final (successful) exchange, first TX_START of
//                  the attempt through delivery (data + SIFS + ACK,
//                  and RTS/CTS when used),
//      retry       failed exchanges, each from its TX_START until
//                  contention resumes (timeouts included).
//    The four components tile the journey, so they sum to the
//    end-to-end delay exactly by construction. Per-flow and
//    per-component log-binned Histograms are created in a Registry up
//    front (identical binning in every shard), so Registry::merge keeps
//    the ledger shard- and --jobs-safe.
//
//  - TimeSeriesSampler buckets the same stream into fixed windows:
//    aggregate goodput, same-slot collision rate, and queue-backed
//    frames in flight — the series warmup and non-stationarity checks
//    need (a crude suffix-mean warmup detector is included).
//
//  - InvariantAuditor checks the stream against conservation laws
//    online (time monotone; TX_START/TX_END balanced per node; per-flow
//    arrivals = delivered + dropped + in-flight; airtime
//    idle+busy+collision closing to the run duration) and, on breach,
//    dumps the last-N events from an internal RingTraceSink as a
//    flight-recorder JSON post-mortem instead of failing silently.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/analyze/airtime.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace wlan::obs {

/// Delay components of one delivered frame (or sums thereof), seconds.
/// queueing + contention + airtime + retry is the end-to-end delay.
struct DelayBreakdown {
  double queueing_s = 0.0;    ///< arrival -> MAC service start
  double contention_s = 0.0;  ///< backoff + freeze + defer (and time the
                              ///< node spent answering other exchanges)
  double airtime_s = 0.0;     ///< the successful exchange, TX -> delivery
  double retry_s = 0.0;       ///< failed exchanges incl. their timeouts
  double total_s() const {
    return queueing_s + contention_s + airtime_s + retry_s;
  }
  void accumulate(const DelayBreakdown& other) {
    queueing_s += other.queueing_s;
    contention_s += other.contention_s;
    airtime_s += other.airtime_s;
    retry_s += other.retry_s;
  }
};

/// Stable component names for labels/JSON: "queueing", "contention",
/// "airtime", "retry" (index order of DelayBreakdown).
inline constexpr std::size_t kDelayComponentCount = 4;
const char* delay_component_name(std::size_t i);

/// One flow's lifecycle accounting over the run.
struct FlowLifecycle {
  /// kArrival events for queue-backed flows; for saturated flows (no
  /// kArrival ever seen) each service start counts as one arrival.
  std::uint64_t arrivals = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  /// Journeys still open + packets still queued when the books closed.
  std::uint64_t in_flight = 0;
  /// TX_STARTs of this flow's own frames (RTS and DATA attempts).
  std::uint64_t tx_attempts = 0;
  /// Attempts that ended back in contention instead of a delivery.
  std::uint64_t failed_attempts = 0;
  DelayBreakdown total;  ///< summed over delivered frames
  double mean_delay_s = 0.0;
};

/// Windowed time series from `TimeSeriesSampler::finalize`.
struct LifecycleSeries {
  double window_s = 0.0;
  std::vector<double> t_s;            ///< window end times
  std::vector<double> goodput_mbps;   ///< aggregate over all flows
  std::vector<double> collision_rate; ///< same-slot collisions / TX starts
  std::vector<double> in_flight;      ///< queue-backed frames outstanding
  /// First window w where the suffix mean of goodput over [w, n) is
  /// within 10% of the steady-state estimate (the mean over the second
  /// half). 0 = no detectable warmup transient.
  std::size_t warmup_windows = 0;
  /// Second-half goodput mean / first-half goodput mean; far from 1
  /// flags a non-stationary run (1 when either half is empty).
  double stationarity_ratio = 1.0;
};

/// The closed ledger returned by `FrameLedger::finalize`.
struct LifecycleReport {
  double duration_s = 0.0;
  std::vector<FlowLifecycle> flows;
  DelayBreakdown total;  ///< summed over all delivered frames
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t in_flight = 0;
};

/// Per-frame journey reconstruction and delay attribution; see file
/// comment. Events must arrive in nondecreasing time order.
class FrameLedger final : public TraceSink {
 public:
  struct Config {
    std::size_t n_flows = 0;
    /// Per-flow delay/component histogram binning (log bins, seconds).
    double hist_lo = 1e-6;
    double hist_hi = 100.0;
    std::size_t hist_bins = 64;
    /// Required. All histograms are created here at construction —
    /// "lifecycle.delay_s" (aggregate and {flow=f}) and
    /// "lifecycle.component_s" {component=..} (aggregate and per flow) —
    /// so every shard registry carries the same instruments in the same
    /// order and Registry::merge is exact.
    Registry* registry = nullptr;
    /// Optional global ids used in flow= labels: entry f names flow f.
    /// Empty = identity. The sharded netsim passes global ids so
    /// per-shard registries merge into disjoint, globally named
    /// instruments.
    std::vector<std::size_t> flow_ids;
  };

  explicit FrameLedger(const Config& config);

  void record(const TraceEvent& event) override;

  /// Closes the books at `end_s`: open journeys become in-flight. The
  /// delivered-frame histograms are already in the registry. Idempotent.
  const LifecycleReport& finalize(double end_s);
  const LifecycleReport& report() const { return report_; }

  /// Mirrors the scalar ledger into `registry` as counters under
  /// "lifecycle." with flow= labels (histograms were live all along).
  void publish(Registry& registry) const;

 private:
  // A journey's time is split between two modes: contending for the
  // medium (defer/backoff/freeze) and exchanging (an attempt is on the
  // air or awaiting its response).
  enum class Mode { kContention, kExchange };

  /// Label id for local flow f (global when config_.flow_ids is set).
  std::size_t flow_id(std::size_t f) const {
    return f < config_.flow_ids.size() ? config_.flow_ids[f] : f;
  }

  struct Journey {
    bool open = false;
    double arrival_s = 0.0;
    double service_start_s = 0.0;
    double last_t = 0.0;       // last segment boundary
    Mode mode = Mode::kContention;
    double contention_s = 0.0;
    double retry_s = 0.0;
    double attempt_s = 0.0;    // current (undecided) exchange attempt
  };

  struct FlowState {
    Journey journey;
    std::deque<double> queue;  // kArrival times (queue-backed flows)
    bool saw_arrival = false;  // false => saturated source
    FlowLifecycle stats;
  };

  void close_segment(FlowState& f, double t);
  void open_journey(FlowState& f, double t);
  void finish_journey(std::size_t flow, FlowState& f, double t,
                      bool delivered);

  Config config_;
  std::vector<FlowState> flows_;
  LifecycleReport report_;
  bool finalized_ = false;
  Histogram* delay_all_ = nullptr;
  std::vector<Histogram*> delay_flow_;
  // [component][flow] and [component] aggregate.
  std::vector<Histogram*> component_all_;
  std::vector<std::vector<Histogram*>> component_flow_;
};

/// Windowed goodput / collision-rate / in-flight series; see file
/// comment. Events must arrive in nondecreasing time order.
class TimeSeriesSampler final : public TraceSink {
 public:
  struct Config {
    std::size_t n_flows = 0;
    double window_s = 10e-3;
    /// Bits credited per delivery; 0 leaves goodput_mbps zeroed.
    double payload_bits = 0.0;
  };

  explicit TimeSeriesSampler(const Config& config);

  void record(const TraceEvent& event) override;

  /// Normalizes the windows to cover [0, end_s) and computes the warmup
  /// and stationarity summaries. Idempotent.
  const LifecycleSeries& finalize(double end_s);
  const LifecycleSeries& series() const { return series_; }

 private:
  void window_at(double t);  // samples in-flight across window boundaries

  Config config_;
  LifecycleSeries series_;
  bool finalized_ = false;
  std::vector<std::uint64_t> deliveries_;  // per window
  std::vector<std::uint64_t> tx_starts_;
  std::vector<std::uint64_t> collisions_;
  std::vector<double> in_flight_at_end_;   // sampled at each window close
  std::vector<std::int64_t> outstanding_;  // per flow, arrivals - completions
  std::int64_t in_flight_now_ = 0;         // queue-backed flows only
  std::size_t current_window_ = 0;
};

/// Online conservation checks over the event stream with a
/// flight-recorder dump on breach; see file comment.
class InvariantAuditor final : public TraceSink {
 public:
  struct Config {
    std::size_t n_nodes = 0;
    std::size_t n_flows = 0;
    /// Last-N events kept for the post-mortem dump.
    std::size_t flight_recorder_capacity = 256;
    /// When non-empty, the first breach writes the flight-recorder JSON
    /// here ("" keeps it in memory only; see flight_recorder_json()).
    std::string dump_path;
    /// Relative slack for the airtime-closure check.
    double airtime_tolerance = 1e-9;
  };

  explicit InvariantAuditor(const Config& config);

  /// Note: dropped() stays 0 — the internal ring keeps only the last-N
  /// events *by design*; that is the flight recorder's depth, not trace
  /// loss.
  void record(const TraceEvent& event) override;

  /// End-of-run checks (per-flow conservation). A transmission still on
  /// the air at `end_s` counts as in-flight, not a breach. Rewrites the
  /// dump file (if any) with the final context when breaches occurred.
  /// Returns the total breach count. Idempotent.
  std::uint64_t finalize(double end_s);

  /// Airtime-closure check against a finalized AirtimeReport:
  /// idle + busy + collision must equal the duration, and each fraction
  /// must lie in [0, 1]. Call before finalize().
  void audit(const AirtimeReport& airtime);

  /// Cross-checks a closed FrameLedger report: for every queue-backed
  /// flow, arrivals must equal delivered + dropped + in-flight. Call
  /// before finalize().
  void audit(const LifecycleReport& ledger);

  std::uint64_t breaches() const { return breaches_; }
  /// Human-readable breach descriptions (capped; the count is exact).
  const std::vector<std::string>& breach_messages() const {
    return messages_;
  }

  /// Flight-recorder post-mortem: breach messages plus the last-N
  /// events, as one JSON document. Empty string while no breach has
  /// occurred.
  std::string flight_recorder_json() const;

 private:
  void breach(double t, const std::string& message);

  struct FlowAudit {
    std::uint64_t arrivals = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
  };

  Config config_;
  RingTraceSink ring_;
  std::uint64_t breaches_ = 0;
  std::vector<std::string> messages_;
  bool dumped_ = false;
  bool finalized_ = false;
  double last_t_ = 0.0;
  std::vector<bool> transmitting_;  // per node
  std::vector<FlowAudit> flows_;
};

}  // namespace wlan::obs

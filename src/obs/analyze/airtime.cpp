#include "obs/analyze/airtime.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>

#include "common/check.h"

namespace wlan::obs {
namespace {

double jain(const std::vector<double>& xs) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 1.0;
  return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

}  // namespace

double AirtimeReport::jain_fairness_goodput() const {
  std::vector<double> xs;
  xs.reserve(flows.size());
  for (const FlowAirtime& f : flows) {
    xs.push_back(static_cast<double>(f.delivered));
  }
  return jain(xs);
}

double AirtimeReport::jain_fairness_airtime() const {
  std::vector<double> xs;
  xs.reserve(nodes.size());
  for (const NodeAirtime& n : nodes) xs.push_back(n.tx_s);
  return jain(xs);
}

AirtimeAccountant::AirtimeAccountant(const Config& config) : config_(config) {
  check(config.n_nodes >= 1, "AirtimeAccountant needs at least one node");
  check(config.window_s > 0.0, "AirtimeAccountant window must be positive");
  report_.nodes.resize(config.n_nodes);
  report_.flows.resize(config.n_flows);
  report_.window_s = config.window_s;
  transmitting_.assign(config.n_nodes, false);
  state_.assign(config.n_nodes, NodeState::kIdle);
  state_since_.assign(config.n_nodes, 0.0);
}

void AirtimeAccountant::advance(double t) {
  const double dt = t - last_t_;
  if (dt <= 0.0) return;
  if (active_tx_ == 0) {
    report_.idle_s += dt;
  } else if (active_tx_ == 1) {
    report_.busy_s += dt;
  } else {
    report_.collision_s += dt;
  }
  if (active_tx_ > 0) {
    for (std::size_t n = 0; n < transmitting_.size(); ++n) {
      if (!transmitting_[n]) continue;
      report_.nodes[n].tx_s += dt;
      if (active_tx_ >= 2) report_.nodes[n].tx_overlap_s += dt;
    }
  }
  last_t_ = t;
}

void AirtimeAccountant::settle_node(std::size_t n, double t) {
  const double dt = t - state_since_[n];
  if (dt > 0.0) {
    switch (state_[n]) {
      case NodeState::kBackoff: report_.nodes[n].backoff_s += dt; break;
      case NodeState::kDefer: report_.nodes[n].defer_s += dt; break;
      case NodeState::kIdle:
      case NodeState::kTx: break;  // tx time is accrued by advance()
    }
  }
  state_since_[n] = t;
}

void AirtimeAccountant::credit_delivery(std::size_t flow, double t) {
  if (flow >= report_.flows.size()) return;
  FlowAirtime& f = report_.flows[flow];
  ++f.delivered;
  const auto w = static_cast<std::size_t>(std::floor(t / config_.window_s));
  if (w >= f.window_deliveries.size()) f.window_deliveries.resize(w + 1, 0);
  ++f.window_deliveries[w];
}

void AirtimeAccountant::record(const TraceEvent& e) {
  if (finalized_) return;
  advance(e.time_s);
  const bool has_node =
      e.node >= 0 && static_cast<std::size_t>(e.node) < report_.nodes.size();
  const std::size_t n = has_node ? static_cast<std::size_t>(e.node) : 0;
  switch (e.type) {
    case EventType::kTxStart: {
      if (!has_node) break;
      settle_node(n, e.time_s);  // a completed countdown ends here
      state_[n] = NodeState::kTx;
      if (!transmitting_[n]) {
        transmitting_[n] = true;
        ++active_tx_;
      }
      NodeAirtime& ledger = report_.nodes[n];
      ++ledger.tx_frames;
      if (e.detail != nullptr) {
        if (std::strcmp(e.detail, "DATA") == 0) ++ledger.data_frames;
        else if (std::strcmp(e.detail, "RTS") == 0) ++ledger.rts_frames;
      }
      break;
    }
    case EventType::kTxEnd: {
      if (!has_node) break;
      if (transmitting_[n]) {
        transmitting_[n] = false;
        --active_tx_;
      }
      settle_node(n, e.time_s);
      state_[n] = NodeState::kIdle;
      break;
    }
    case EventType::kBackoffStart: {
      if (!has_node) break;
      settle_node(n, e.time_s);  // closes a deferral (or a restart)
      state_[n] = NodeState::kBackoff;
      break;
    }
    case EventType::kBackoffFreeze: {
      if (!has_node) break;
      settle_node(n, e.time_s);
      state_[n] = NodeState::kDefer;
      break;
    }
    case EventType::kCollision:
      if (has_node) ++report_.nodes[n].same_slot_collisions;
      break;
    case EventType::kStateChange:
      if (e.flow >= 0 && e.detail != nullptr &&
          std::strcmp(e.detail, "DELIVERED") == 0) {
        credit_delivery(static_cast<std::size_t>(e.flow), e.time_s);
      }
      break;
    case EventType::kDrop:
      if (e.flow >= 0 &&
          static_cast<std::size_t>(e.flow) < report_.flows.size()) {
        ++report_.flows[static_cast<std::size_t>(e.flow)].drops;
      }
      break;
    case EventType::kRxOk:
    case EventType::kRxFail:
    case EventType::kNavSet:
    case EventType::kArrival:
      break;  // no airtime consequence beyond what TX events carry
  }
}

const AirtimeReport& AirtimeAccountant::finalize(double end_s) {
  if (finalized_) return report_;
  finalized_ = true;
  const double end = std::max(end_s, last_t_);
  advance(end);
  for (std::size_t n = 0; n < report_.nodes.size(); ++n) {
    settle_node(n, end);
  }
  report_.duration_s = end;
  // Normalize the goodput series: every flow gets the same number of
  // windows covering [0, end).
  const auto n_windows = static_cast<std::size_t>(
      std::ceil(end / config_.window_s - 1e-12));
  for (FlowAirtime& f : report_.flows) {
    f.window_deliveries.resize(std::max<std::size_t>(n_windows, 1), 0);
    f.goodput_mbps.assign(f.window_deliveries.size(), 0.0);
    if (config_.payload_bits > 0.0) {
      for (std::size_t w = 0; w < f.window_deliveries.size(); ++w) {
        f.goodput_mbps[w] = static_cast<double>(f.window_deliveries[w]) *
                            config_.payload_bits / config_.window_s / 1e6;
      }
    }
  }
  return report_;
}

void AirtimeAccountant::publish(Registry& registry) const {
  const AirtimeReport& r = report_;
  registry.gauge("airtime.duration_s").set(r.duration_s);
  registry.gauge("airtime.idle_fraction").set(r.idle_fraction());
  registry.gauge("airtime.busy_fraction").set(r.busy_fraction());
  registry.gauge("airtime.collision_fraction").set(r.collision_fraction());
  registry.gauge("airtime.jain_goodput").set(r.jain_fairness_goodput());
  registry.gauge("airtime.jain_airtime").set(r.jain_fairness_airtime());
  for (std::size_t n = 0; n < r.nodes.size(); ++n) {
    const NodeAirtime& node = r.nodes[n];
    const std::size_t id = n < config_.node_ids.size() ? config_.node_ids[n] : n;
    const std::vector<Label> label{{"node", std::to_string(id)}};
    registry.gauge("airtime.node_tx_s", label).set(node.tx_s);
    registry.gauge("airtime.node_tx_overlap_s", label).set(node.tx_overlap_s);
    registry.gauge("airtime.node_backoff_s", label).set(node.backoff_s);
    registry.gauge("airtime.node_defer_s", label).set(node.defer_s);
    registry.counter("airtime.node_tx_frames", label).add(node.tx_frames);
    registry.counter("airtime.node_data_frames", label).add(node.data_frames);
    registry.counter("airtime.node_rts_frames", label).add(node.rts_frames);
    registry.counter("airtime.node_collisions", label)
        .add(node.same_slot_collisions);
  }
  for (std::size_t f = 0; f < r.flows.size(); ++f) {
    const std::size_t id = f < config_.flow_ids.size() ? config_.flow_ids[f] : f;
    const std::vector<Label> label{{"flow", std::to_string(id)}};
    registry.counter("airtime.flow_delivered", label)
        .add(r.flows[f].delivered);
    registry.counter("airtime.flow_drops", label).add(r.flows[f].drops);
  }
}

}  // namespace wlan::obs

// Chrome trace-event export: any simulator run becomes an inspectable
// timeline in chrome://tracing or Perfetto (https://ui.perfetto.dev).
//
// Mapping of the wlan::obs event taxonomy onto the trace-event format
// (JSON object with a "traceEvents" array, timestamps in microseconds):
//
//  - each node is a "process" (pid = node id, named "node <n>") with
//    three lanes: tid 0 "air" (frames on the air), tid 1 "contention"
//    (backoff countdowns), tid 2 "nav" (virtual carrier sense);
//  - TX_START/TX_END become balanced B/E duration events on the air
//    lane, named after the frame kind (DATA/ACK/RTS/CTS), carrying
//    peer/flow/frame-id/value as args — the frame id is stable across a
//    frame's retries and receptions, so one MPDU can be followed across
//    node lanes;
//  - BACKOFF_START opens a B on the contention lane; the matching E is
//    emitted at the freeze, at the node's next TX_START (the countdown
//    expired and the frame went out), or at close();
//  - NAV_SET becomes a complete ("X") event on the nav lane lasting
//    until the advertised NAV end;
//  - COLLISION, DROP, RX_OK, RX_FAIL, ARRIVAL become instant events.
//
// Every B is guaranteed a matching E on the same (pid, tid): open spans
// are closed by close()/the destructor, and an unmatched E is dropped
// rather than written. The output is one valid JSON document once the
// sink is closed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace wlan::obs {

namespace perf {
class SpanProfile;
}  // namespace perf

class ChromeTraceSink final : public TraceSink {
 public:
  /// Streams to `out`; the stream must outlive the sink.
  explicit ChromeTraceSink(std::ostream& out);
  /// Opens `path` for writing (throws ContractError on failure).
  explicit ChromeTraceSink(const std::string& path);
  /// Closes the document if close() was not called explicitly.
  ~ChromeTraceSink() override;

  void record(const TraceEvent& event) override;
  void flush() override;
  std::uint64_t dropped() const override { return dropped_; }

  /// Balances open spans, writes per-node metadata and the JSON footer.
  /// Events recorded after close() are counted as dropped. Idempotent.
  void close();

  std::uint64_t events_written() const { return events_written_; }

  // Generic emitters for appendix tracks (the span-profiler slices and
  // pool-telemetry counters) on synthetic pids outside the node id
  // space. Counted as dropped after close().

  /// Complete ("X") slice of `dur_us` at `t_us` on (pid, tid).
  void emit_complete(std::int32_t pid, int tid, const std::string& name,
                     double t_us, double dur_us);
  /// One counter ("C") sample; `values` become the args series.
  void emit_counter(std::int32_t pid, const std::string& name, double t_us,
                    const std::vector<std::pair<std::string, double>>& values);
  /// process_name metadata for a synthetic pid.
  void emit_process_name(std::int32_t pid, const std::string& name);

 private:
  struct Track {
    std::int32_t node;
    bool air_open = false;         // B outstanding on the air lane
    bool contention_open = false;  // B outstanding on the contention lane
  };

  Track& track(std::int32_t node);
  void write_prefix(const char* phase, std::int32_t node, int tid, double t_us);
  void begin_event();
  void end_event();
  void write_args_suffix(const TraceEvent& event);
  void emit_begin(const TraceEvent& event, int tid, const char* name);
  void emit_end(std::int32_t node, int tid, double t_us);
  void emit_instant(const TraceEvent& event, int tid, const char* name);
  void emit_metadata(std::int32_t node);

  std::unique_ptr<std::ostream> owned_;
  std::ostream* out_;
  bool closed_ = false;
  bool first_ = true;
  double last_t_us_ = 0.0;
  std::uint64_t events_written_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<Track> tracks_;  // sparse by node id, created on demand
};

/// Synthetic pid the span profiler and pool counters append under —
/// far outside the node id space so it never collides with a real node.
inline constexpr std::int32_t kProfilerPid = 1000000;

/// Appends the merged span profile to `sink` as nested slices on a
/// synthetic "span profiler" process: sorted-path DFS layout where each
/// span's children tile its interval left to right (slices carry
/// accumulated totals, not live timestamps). Grafted worker time can
/// extend children past their parent; Perfetto renders the overhang on
/// the same track. Call before close().
void append_span_profile(ChromeTraceSink& sink,
                         const perf::SpanProfile& profile);

}  // namespace wlan::obs

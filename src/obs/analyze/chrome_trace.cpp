#include "obs/analyze/chrome_trace.h"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "common/check.h"
#include "obs/json.h"

namespace wlan::obs {
namespace {

constexpr int kAirLane = 0;
constexpr int kContentionLane = 1;
constexpr int kNavLane = 2;

const char* lane_name(int tid) {
  switch (tid) {
    case kAirLane: return "air";
    case kContentionLane: return "contention";
    case kNavLane: return "nav";
  }
  return "?";
}

}  // namespace

ChromeTraceSink::ChromeTraceSink(std::ostream& out) : out_(&out) {
  *out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
}

ChromeTraceSink::ChromeTraceSink(const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path);
  check(file->is_open(), "ChromeTraceSink cannot open " + path);
  out_ = file.get();
  owned_ = std::move(file);
  *out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
}

ChromeTraceSink::~ChromeTraceSink() { close(); }

ChromeTraceSink::Track& ChromeTraceSink::track(std::int32_t node) {
  for (Track& t : tracks_) {
    if (t.node == node) return t;
  }
  tracks_.push_back(Track{node});
  return tracks_.back();
}

void ChromeTraceSink::begin_event() {
  if (!first_) *out_ << ',';
  first_ = false;
  *out_ << '\n';
}

void ChromeTraceSink::end_event() {
  *out_ << '}';
  ++events_written_;
}

void ChromeTraceSink::write_prefix(const char* phase, std::int32_t node,
                                   int tid, double t_us) {
  begin_event();
  *out_ << "{\"ph\":\"" << phase << "\",\"ts\":";
  json_number(*out_, t_us);
  *out_ << ",\"pid\":" << node << ",\"tid\":" << tid;
}

void ChromeTraceSink::write_args_suffix(const TraceEvent& e) {
  *out_ << ",\"args\":{";
  bool first = true;
  if (e.peer >= 0) {
    *out_ << "\"peer\":" << e.peer;
    first = false;
  }
  if (e.flow >= 0) {
    if (!first) *out_ << ',';
    *out_ << "\"flow\":" << e.flow;
    first = false;
  }
  if (e.frame >= 0) {
    // Frame id on TX/RX slices: select one in Perfetto and its retries
    // and receptions share the arg across node lanes.
    if (!first) *out_ << ',';
    *out_ << "\"frame\":" << e.frame;
    first = false;
  }
  if (!first) *out_ << ',';
  *out_ << "\"value\":";
  json_number(*out_, e.value);
  *out_ << '}';
}

void ChromeTraceSink::emit_begin(const TraceEvent& e, int tid,
                                 const char* name) {
  write_prefix("B", e.node, tid, e.time_s * 1e6);
  *out_ << ",\"name\":\"" << json_escape(name) << '"';
  write_args_suffix(e);
  end_event();
}

void ChromeTraceSink::emit_end(std::int32_t node, int tid, double t_us) {
  write_prefix("E", node, tid, t_us);
  end_event();
}

void ChromeTraceSink::emit_instant(const TraceEvent& e, int tid,
                                   const char* name) {
  write_prefix("i", e.node, tid, e.time_s * 1e6);
  *out_ << ",\"name\":\"" << json_escape(name) << "\",\"s\":\"t\"";
  write_args_suffix(e);
  end_event();
}

void ChromeTraceSink::emit_metadata(std::int32_t node) {
  begin_event();
  *out_ << "{\"ph\":\"M\",\"pid\":" << node
        << ",\"name\":\"process_name\",\"args\":{\"name\":\"node " << node
        << "\"}}";
  ++events_written_;
  for (const int tid : {kAirLane, kContentionLane, kNavLane}) {
    begin_event();
    *out_ << "{\"ph\":\"M\",\"pid\":" << node << ",\"tid\":" << tid
          << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
          << lane_name(tid) << "\"}}";
    ++events_written_;
  }
}

void ChromeTraceSink::record(const TraceEvent& e) {
  if (closed_ || e.node < 0) {
    ++dropped_;
    return;
  }
  const double t_us = e.time_s * 1e6;
  last_t_us_ = std::max(last_t_us_, t_us);
  Track& tr = track(e.node);
  switch (e.type) {
    case EventType::kTxStart: {
      // A running countdown ends the instant the frame goes out.
      if (tr.contention_open) {
        emit_end(e.node, kContentionLane, t_us);
        tr.contention_open = false;
      }
      if (tr.air_open) emit_end(e.node, kAirLane, t_us);  // never nested
      const char* name =
          (e.detail != nullptr && e.detail[0] != '\0') ? e.detail : "TX";
      emit_begin(e, kAirLane, name);
      tr.air_open = true;
      break;
    }
    case EventType::kTxEnd:
      if (!tr.air_open) {
        ++dropped_;  // unmatched E would corrupt the track
        break;
      }
      emit_end(e.node, kAirLane, t_us);
      tr.air_open = false;
      break;
    case EventType::kBackoffStart:
      if (tr.contention_open) emit_end(e.node, kContentionLane, t_us);
      emit_begin(e, kContentionLane, "backoff");
      tr.contention_open = true;
      break;
    case EventType::kBackoffFreeze:
      // No open span: the countdown already ended at this node's own
      // TX_START (a scheduled frame can preempt a pending countdown,
      // which the simulator then freezes). Nothing left to close.
      if (!tr.contention_open) break;
      emit_end(e.node, kContentionLane, t_us);
      tr.contention_open = false;
      break;
    case EventType::kNavSet: {
      // value carries the NAV end as an absolute simulation time.
      const double dur_us = std::max(e.value * 1e6 - t_us, 0.0);
      write_prefix("X", e.node, kNavLane, t_us);
      *out_ << ",\"name\":\"NAV\",\"dur\":";
      json_number(*out_, dur_us);
      write_args_suffix(e);
      end_event();
      break;
    }
    case EventType::kCollision:
      emit_instant(e, kContentionLane, "collision");
      break;
    case EventType::kDrop:
      emit_instant(e, kAirLane, "drop");
      break;
    case EventType::kRxOk:
      emit_instant(e, kAirLane, "rx_ok");
      break;
    case EventType::kRxFail:
      emit_instant(e, kAirLane, "rx_fail");
      break;
    case EventType::kArrival:
      emit_instant(e, kContentionLane, "arrival");
      break;
    case EventType::kStateChange:
      emit_instant(e, kAirLane,
                   (e.detail != nullptr && e.detail[0] != '\0') ? e.detail
                                                                : "state");
      break;
  }
}

void ChromeTraceSink::flush() { out_->flush(); }

void ChromeTraceSink::close() {
  if (closed_) return;
  closed_ = true;
  for (Track& tr : tracks_) {
    if (tr.air_open) emit_end(tr.node, kAirLane, last_t_us_);
    if (tr.contention_open) emit_end(tr.node, kContentionLane, last_t_us_);
    tr.air_open = false;
    tr.contention_open = false;
  }
  for (const Track& tr : tracks_) emit_metadata(tr.node);
  *out_ << "\n]}\n";
  out_->flush();
}

}  // namespace wlan::obs

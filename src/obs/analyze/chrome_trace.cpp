#include "obs/analyze/chrome_trace.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>

#include "common/check.h"
#include "obs/json.h"
#include "obs/perf.h"

namespace wlan::obs {
namespace {

constexpr int kAirLane = 0;
constexpr int kContentionLane = 1;
constexpr int kNavLane = 2;

const char* lane_name(int tid) {
  switch (tid) {
    case kAirLane: return "air";
    case kContentionLane: return "contention";
    case kNavLane: return "nav";
  }
  return "?";
}

}  // namespace

ChromeTraceSink::ChromeTraceSink(std::ostream& out) : out_(&out) {
  *out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
}

ChromeTraceSink::ChromeTraceSink(const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path);
  check(file->is_open(), "ChromeTraceSink cannot open " + path);
  out_ = file.get();
  owned_ = std::move(file);
  *out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
}

ChromeTraceSink::~ChromeTraceSink() { close(); }

ChromeTraceSink::Track& ChromeTraceSink::track(std::int32_t node) {
  for (Track& t : tracks_) {
    if (t.node == node) return t;
  }
  tracks_.push_back(Track{node});
  return tracks_.back();
}

void ChromeTraceSink::begin_event() {
  if (!first_) *out_ << ',';
  first_ = false;
  *out_ << '\n';
}

void ChromeTraceSink::end_event() {
  *out_ << '}';
  ++events_written_;
}

void ChromeTraceSink::write_prefix(const char* phase, std::int32_t node,
                                   int tid, double t_us) {
  begin_event();
  *out_ << "{\"ph\":\"" << phase << "\",\"ts\":";
  json_number(*out_, t_us);
  *out_ << ",\"pid\":" << node << ",\"tid\":" << tid;
}

void ChromeTraceSink::write_args_suffix(const TraceEvent& e) {
  *out_ << ",\"args\":{";
  bool first = true;
  if (e.peer >= 0) {
    *out_ << "\"peer\":" << e.peer;
    first = false;
  }
  if (e.flow >= 0) {
    if (!first) *out_ << ',';
    *out_ << "\"flow\":" << e.flow;
    first = false;
  }
  if (e.frame >= 0) {
    // Frame id on TX/RX slices: select one in Perfetto and its retries
    // and receptions share the arg across node lanes.
    if (!first) *out_ << ',';
    *out_ << "\"frame\":" << e.frame;
    first = false;
  }
  if (!first) *out_ << ',';
  *out_ << "\"value\":";
  json_number(*out_, e.value);
  *out_ << '}';
}

void ChromeTraceSink::emit_begin(const TraceEvent& e, int tid,
                                 const char* name) {
  write_prefix("B", e.node, tid, e.time_s * 1e6);
  *out_ << ",\"name\":\"" << json_escape(name) << '"';
  write_args_suffix(e);
  end_event();
}

void ChromeTraceSink::emit_end(std::int32_t node, int tid, double t_us) {
  write_prefix("E", node, tid, t_us);
  end_event();
}

void ChromeTraceSink::emit_instant(const TraceEvent& e, int tid,
                                   const char* name) {
  write_prefix("i", e.node, tid, e.time_s * 1e6);
  *out_ << ",\"name\":\"" << json_escape(name) << "\",\"s\":\"t\"";
  write_args_suffix(e);
  end_event();
}

void ChromeTraceSink::emit_metadata(std::int32_t node) {
  begin_event();
  *out_ << "{\"ph\":\"M\",\"pid\":" << node
        << ",\"name\":\"process_name\",\"args\":{\"name\":\"node " << node
        << "\"}}";
  ++events_written_;
  for (const int tid : {kAirLane, kContentionLane, kNavLane}) {
    begin_event();
    *out_ << "{\"ph\":\"M\",\"pid\":" << node << ",\"tid\":" << tid
          << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
          << lane_name(tid) << "\"}}";
    ++events_written_;
  }
}

void ChromeTraceSink::record(const TraceEvent& e) {
  if (closed_ || e.node < 0) {
    ++dropped_;
    return;
  }
  const double t_us = e.time_s * 1e6;
  last_t_us_ = std::max(last_t_us_, t_us);
  Track& tr = track(e.node);
  switch (e.type) {
    case EventType::kTxStart: {
      // A running countdown ends the instant the frame goes out.
      if (tr.contention_open) {
        emit_end(e.node, kContentionLane, t_us);
        tr.contention_open = false;
      }
      if (tr.air_open) emit_end(e.node, kAirLane, t_us);  // never nested
      const char* name =
          (e.detail != nullptr && e.detail[0] != '\0') ? e.detail : "TX";
      emit_begin(e, kAirLane, name);
      tr.air_open = true;
      break;
    }
    case EventType::kTxEnd:
      if (!tr.air_open) {
        ++dropped_;  // unmatched E would corrupt the track
        break;
      }
      emit_end(e.node, kAirLane, t_us);
      tr.air_open = false;
      break;
    case EventType::kBackoffStart:
      if (tr.contention_open) emit_end(e.node, kContentionLane, t_us);
      emit_begin(e, kContentionLane, "backoff");
      tr.contention_open = true;
      break;
    case EventType::kBackoffFreeze:
      // No open span: the countdown already ended at this node's own
      // TX_START (a scheduled frame can preempt a pending countdown,
      // which the simulator then freezes). Nothing left to close.
      if (!tr.contention_open) break;
      emit_end(e.node, kContentionLane, t_us);
      tr.contention_open = false;
      break;
    case EventType::kNavSet: {
      // value carries the NAV end as an absolute simulation time.
      const double dur_us = std::max(e.value * 1e6 - t_us, 0.0);
      write_prefix("X", e.node, kNavLane, t_us);
      *out_ << ",\"name\":\"NAV\",\"dur\":";
      json_number(*out_, dur_us);
      write_args_suffix(e);
      end_event();
      break;
    }
    case EventType::kCollision:
      emit_instant(e, kContentionLane, "collision");
      break;
    case EventType::kDrop:
      emit_instant(e, kAirLane, "drop");
      break;
    case EventType::kRxOk:
      emit_instant(e, kAirLane, "rx_ok");
      break;
    case EventType::kRxFail:
      emit_instant(e, kAirLane, "rx_fail");
      break;
    case EventType::kArrival:
      emit_instant(e, kContentionLane, "arrival");
      break;
    case EventType::kStateChange:
      emit_instant(e, kAirLane,
                   (e.detail != nullptr && e.detail[0] != '\0') ? e.detail
                                                                : "state");
      break;
  }
}

void ChromeTraceSink::emit_complete(std::int32_t pid, int tid,
                                    const std::string& name, double t_us,
                                    double dur_us) {
  if (closed_) {
    ++dropped_;
    return;
  }
  write_prefix("X", pid, tid, t_us);
  *out_ << ",\"name\":\"" << json_escape(name) << "\",\"dur\":";
  json_number(*out_, dur_us);
  end_event();
}

void ChromeTraceSink::emit_counter(
    std::int32_t pid, const std::string& name, double t_us,
    const std::vector<std::pair<std::string, double>>& values) {
  if (closed_) {
    ++dropped_;
    return;
  }
  write_prefix("C", pid, 0, t_us);
  *out_ << ",\"name\":\"" << json_escape(name) << "\",\"args\":{";
  bool first = true;
  for (const auto& [key, value] : values) {
    if (!first) *out_ << ',';
    first = false;
    *out_ << '"' << json_escape(key) << "\":";
    json_number(*out_, value);
  }
  *out_ << '}';
  end_event();
}

void ChromeTraceSink::emit_process_name(std::int32_t pid,
                                        const std::string& name) {
  if (closed_) {
    ++dropped_;
    return;
  }
  begin_event();
  *out_ << "{\"ph\":\"M\",\"pid\":" << pid
        << ",\"name\":\"process_name\",\"args\":{\"name\":\""
        << json_escape(name) << "\"}}";
  ++events_written_;
}

void append_span_profile(ChromeTraceSink& sink,
                         const perf::SpanProfile& profile) {
  const std::map<std::string, perf::SpanStats> rows = profile.spans();
  if (rows.empty()) return;
  sink.emit_process_name(kProfilerPid, "span profiler");
  // Sorted paths visit every parent before its children. cursor[path]
  // tracks where the next child of `path` starts; children tile their
  // parent's slice left to right (accumulated totals, not timestamps).
  std::map<std::string, std::uint64_t> cursor;
  std::uint64_t root_cursor = 0;
  for (const auto& [path, stats] : rows) {
    const std::size_t sep = path.rfind(';');
    const bool is_root = sep == std::string::npos;
    const std::string name = is_root ? path : path.substr(sep + 1);
    std::uint64_t& offset =
        is_root ? root_cursor : cursor[path.substr(0, sep)];
    const std::uint64_t start = offset;
    sink.emit_complete(kProfilerPid, 0, name, static_cast<double>(start) * 1e-3,
                       static_cast<double>(stats.total_ns) * 1e-3);
    cursor[path] = start;
    offset += stats.total_ns;
  }
}

void ChromeTraceSink::flush() { out_->flush(); }

void ChromeTraceSink::close() {
  if (closed_) return;
  closed_ = true;
  for (Track& tr : tracks_) {
    if (tr.air_open) emit_end(tr.node, kAirLane, last_t_us_);
    if (tr.contention_open) emit_end(tr.node, kContentionLane, last_t_us_);
    tr.air_open = false;
    tr.contention_open = false;
  }
  for (const Track& tr : tracks_) emit_metadata(tr.node);
  *out_ << "\n]}\n";
  out_->flush();
}

}  // namespace wlan::obs

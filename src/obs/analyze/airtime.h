// Airtime accounting: turns the MAC event stream into a ledger of where
// the channel's time went.
//
// The paper's through-line is that each 802.11 generation is judged by
// how much of the channel it converts into useful airtime — headline PHY
// rates are eaten by MAC overhead, collisions, and deferral. The
// `AirtimeAccountant` is a `TraceSink` that consumes the simulator's
// typed events (TX_START/TX_END/COLLISION/BACKOFF_*/NAV_SET/...) and
// produces exactly that accounting:
//
//  - a channel-time partition — idle / busy (exactly one transmission in
//    the air) / collision (two or more overlapping) — that sums to the
//    run duration by construction;
//  - a per-node ledger: transmit airtime (and the part of it spent
//    overlapping other transmissions), backoff countdown time, and
//    deferral time (frozen countdown waiting for the medium);
//  - per-flow delivery counts and a short-horizon goodput series
//    (deliveries bucketed into fixed windows);
//  - Jain fairness over both per-flow goodput and per-node airtime.
//
// The accountant is pure event-stream analysis: it never touches the
// simulator's internals, so anything emitting the standard taxonomy
// (net::simulate_network, mac::simulate_dcf, a parsed JSONL trace) can
// feed it. `publish()` mirrors the ledger into a metrics `Registry` as
// (name, label) instruments under "airtime.".
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace wlan::obs {

/// Where one node's time went (seconds over the whole run).
struct NodeAirtime {
  double tx_s = 0.0;            ///< transmitting (any frame kind)
  double tx_overlap_s = 0.0;    ///< subset of tx_s with >= 2 frames in the air
  double backoff_s = 0.0;       ///< contention countdown running
  double defer_s = 0.0;         ///< countdown frozen, waiting for the medium
  std::uint64_t tx_frames = 0;  ///< frames put on the air
  std::uint64_t data_frames = 0;  ///< subset with detail "DATA"
  std::uint64_t rts_frames = 0;   ///< subset with detail "RTS"
  std::uint64_t same_slot_collisions = 0;  ///< COLLISION events observed
};

/// Per-flow delivery accounting.
struct FlowAirtime {
  std::uint64_t delivered = 0;
  std::uint64_t drops = 0;
  /// Deliveries per analysis window (windows cover [0, duration)).
  std::vector<std::uint64_t> window_deliveries;
  /// Same series as goodput in Mbps (payload_bits credited per delivery;
  /// all zero when the accountant was configured with payload_bits == 0).
  std::vector<double> goodput_mbps;
};

/// The closed ledger returned by `AirtimeAccountant::finalize`.
struct AirtimeReport {
  double duration_s = 0.0;
  double idle_s = 0.0;       ///< no transmission in the air
  double busy_s = 0.0;       ///< exactly one transmission in the air
  double collision_s = 0.0;  ///< two or more overlapping transmissions
  double window_s = 0.0;
  std::vector<NodeAirtime> nodes;
  std::vector<FlowAirtime> flows;

  double idle_fraction() const { return frac(idle_s); }
  double busy_fraction() const { return frac(busy_s); }
  double collision_fraction() const { return frac(collision_s); }

  /// Jain's index over per-flow delivered counts (1 = perfectly fair).
  double jain_fairness_goodput() const;
  /// Jain's index over per-node transmit airtime.
  double jain_fairness_airtime() const;

 private:
  double frac(double x) const { return duration_s > 0.0 ? x / duration_s : 0.0; }
};

/// Streaming airtime accountant; see file comment. Events must arrive in
/// nondecreasing time order (simulator order).
class AirtimeAccountant final : public TraceSink {
 public:
  struct Config {
    std::size_t n_nodes = 0;
    std::size_t n_flows = 0;
    /// Goodput-series horizon; each window accumulates deliveries.
    double window_s = 10e-3;
    /// Bits credited per delivered packet (payload * 8); 0 leaves the
    /// goodput series zeroed and only counts deliveries.
    double payload_bits = 0.0;
    /// Optional global ids used only for publish() labels: entry i names
    /// node/flow i in the emitted node=/flow= labels. Empty = identity.
    /// The sharded netsim passes global ids so per-shard registries
    /// merge into disjoint, globally named instruments.
    std::vector<std::size_t> node_ids;
    std::vector<std::size_t> flow_ids;
  };

  explicit AirtimeAccountant(const Config& config);

  void record(const TraceEvent& event) override;

  /// Closes the books at `end_s` (open transmissions, backoffs, and
  /// deferrals are truncated there) and returns the ledger. Idempotent;
  /// events recorded after finalize are ignored.
  const AirtimeReport& finalize(double end_s);

  /// The ledger so far (valid after finalize; before it, a live view up
  /// to the last event processed).
  const AirtimeReport& report() const { return report_; }

  /// Mirrors the finalized ledger into `registry` as gauges/counters
  /// under "airtime." with node=/flow= labels.
  void publish(Registry& registry) const;

 private:
  enum class NodeState { kIdle, kBackoff, kDefer, kTx };

  void advance(double t);
  void settle_node(std::size_t n, double t);
  void credit_delivery(std::size_t flow, double t);

  Config config_;
  AirtimeReport report_;
  bool finalized_ = false;
  double last_t_ = 0.0;
  std::size_t active_tx_ = 0;          // transmissions currently in the air
  std::vector<bool> transmitting_;     // per node
  std::vector<NodeState> state_;       // per node (contention view)
  std::vector<double> state_since_;    // per node timestamp of last change
};

}  // namespace wlan::obs

#include "obs/analyze/lifecycle.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "obs/json.h"

namespace wlan::obs {
namespace {

constexpr double kTimeSlack = 1e-9;
// Breach descriptions kept verbatim; beyond this only the count grows.
constexpr std::size_t kMaxBreachMessages = 32;

std::vector<Label> flow_label(std::size_t flow) {
  return {{"flow", std::to_string(flow)}};
}

bool is_delivery(const TraceEvent& e) {
  return e.type == EventType::kStateChange && e.flow >= 0 && e.detail &&
         std::string_view(e.detail) == "DELIVERED";
}

}  // namespace

const char* delay_component_name(std::size_t i) {
  switch (i) {
    case 0: return "queueing";
    case 1: return "contention";
    case 2: return "airtime";
    case 3: return "retry";
    default: return "unknown";
  }
}

// ---------------------------------------------------------------------------
// FrameLedger

FrameLedger::FrameLedger(const Config& config)
    : config_(config), flows_(config.n_flows) {
  check(config_.registry != nullptr, "FrameLedger requires a Registry");
  check(config_.hist_lo > 0.0 && config_.hist_lo < config_.hist_hi,
        "FrameLedger histogram range requires 0 < lo < hi");
  Registry& reg = *config_.registry;
  const double lo = config_.hist_lo;
  const double hi = config_.hist_hi;
  const std::size_t bins = std::max<std::size_t>(1, config_.hist_bins);
  // Every instrument is created here, before any event, in a fixed
  // order: shard registries built by parallel runs then hold identical
  // entry lists and Registry::merge folds them exactly.
  delay_all_ = &reg.histogram("lifecycle.delay_s", lo, hi, bins);
  delay_flow_.resize(config_.n_flows);
  for (std::size_t f = 0; f < config_.n_flows; ++f) {
    delay_flow_[f] = &reg.histogram("lifecycle.delay_s", lo, hi, bins,
                                    flow_label(flow_id(f)));
  }
  component_all_.resize(kDelayComponentCount);
  component_flow_.resize(kDelayComponentCount);
  for (std::size_t c = 0; c < kDelayComponentCount; ++c) {
    component_all_[c] = &reg.histogram(
        "lifecycle.component_s", lo, hi, bins,
        {{"component", delay_component_name(c)}});
    component_flow_[c].resize(config_.n_flows);
    for (std::size_t f = 0; f < config_.n_flows; ++f) {
      component_flow_[c][f] = &reg.histogram(
          "lifecycle.component_s", lo, hi, bins,
          {{"component", delay_component_name(c)},
           {"flow", std::to_string(flow_id(f))}});
    }
  }
}

void FrameLedger::close_segment(FlowState& f, double t) {
  Journey& j = f.journey;
  const double dt = t - j.last_t;
  if (dt > 0.0) {
    if (j.mode == Mode::kContention) {
      j.contention_s += dt;
    } else {
      j.attempt_s += dt;
    }
  }
  j.last_t = t;
}

void FrameLedger::open_journey(FlowState& f, double t) {
  f.journey = Journey{};
  Journey& j = f.journey;
  j.open = true;
  // A queue-backed journey serves the head-of-line packet, so its clock
  // started at that packet's arrival; a saturated source has a frame
  // materialize the moment the MAC turns to it.
  j.arrival_s = f.queue.empty() ? t : f.queue.front();
  j.service_start_s = t;
  j.last_t = t;
  j.mode = Mode::kContention;
  if (!f.saw_arrival) ++f.stats.arrivals;  // synthetic saturated arrival
}

void FrameLedger::finish_journey(std::size_t flow, FlowState& f, double t,
                                 bool delivered) {
  Journey& j = f.journey;
  if (j.open) {
    close_segment(f, t);
    if (delivered) {
      DelayBreakdown b;
      b.queueing_s = j.service_start_s - j.arrival_s;
      b.contention_s = j.contention_s;
      b.airtime_s = j.attempt_s;  // the undecided attempt just succeeded
      b.retry_s = j.retry_s;
      f.stats.total.accumulate(b);
      const double total = b.total_s();
      delay_all_->record(total);
      delay_flow_[flow]->record(total);
      const double parts[kDelayComponentCount] = {
          b.queueing_s, b.contention_s, b.airtime_s, b.retry_s};
      for (std::size_t c = 0; c < kDelayComponentCount; ++c) {
        component_all_[c]->record(parts[c]);
        component_flow_[c][flow]->record(parts[c]);
      }
    }
  }
  if (delivered) {
    ++f.stats.delivered;
  } else {
    ++f.stats.dropped;
  }
  if (!f.queue.empty()) f.queue.pop_front();
  f.journey = Journey{};
  // A saturated source always has a next frame; a queue-backed one only
  // when the queue is non-empty — the MAC turns to it immediately.
  if (!f.saw_arrival || !f.queue.empty()) open_journey(f, t);
}

void FrameLedger::record(const TraceEvent& e) {
  if (finalized_) return;
  if (e.flow < 0 || static_cast<std::size_t>(e.flow) >= flows_.size()) return;
  const auto flow = static_cast<std::size_t>(e.flow);
  FlowState& f = flows_[flow];
  Journey& j = f.journey;
  switch (e.type) {
    case EventType::kArrival:
      f.saw_arrival = true;
      ++f.stats.arrivals;
      f.queue.push_back(e.time_s);
      if (!j.open) open_journey(f, e.time_s);
      break;
    case EventType::kBackoffStart:
      if (!j.open) {
        open_journey(f, e.time_s);  // saturated source's first frame
      } else {
        close_segment(f, e.time_s);
        if (j.mode == Mode::kExchange) {
          // The attempt ended back in contention: everything it took —
          // the frame's airtime, the wait for a response that never
          // decoded, the timeout — is retry time.
          j.retry_s += j.attempt_s;
          j.attempt_s = 0.0;
          ++f.stats.failed_attempts;
        }
        j.mode = Mode::kContention;
      }
      break;
    case EventType::kBackoffFreeze:
      if (j.open) close_segment(f, e.time_s);
      break;
    case EventType::kTxStart:
      // TX events carrying a flow id are the source's own DATA/RTS
      // frames (control responses are emitted with flow = -1).
      if (!j.open) open_journey(f, e.time_s);
      close_segment(f, e.time_s);
      j.mode = Mode::kExchange;
      ++f.stats.tx_attempts;
      break;
    case EventType::kTxEnd:
      if (j.open) close_segment(f, e.time_s);
      break;
    case EventType::kStateChange:
      if (is_delivery(e)) finish_journey(flow, f, e.time_s, true);
      break;
    case EventType::kDrop:
      finish_journey(flow, f, e.time_s, false);
      break;
    default:
      break;  // RX_OK/RX_FAIL (receiver side), COLLISION, NAV_SET
  }
}

const LifecycleReport& FrameLedger::finalize(double end_s) {
  if (finalized_) return report_;
  finalized_ = true;
  report_ = LifecycleReport{};
  report_.duration_s = end_s;
  report_.flows.resize(flows_.size());
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    FlowState& f = flows_[i];
    FlowLifecycle& out = report_.flows[i];
    out = f.stats;
    // Queue-backed in-flight frames are exactly the queued packets (the
    // head is the one in service); a saturated source's open journey is
    // its single in-flight frame.
    out.in_flight = f.queue.size() +
                    ((f.journey.open && f.queue.empty()) ? 1u : 0u);
    out.mean_delay_s = out.delivered > 0
                           ? out.total.total_s() /
                                 static_cast<double>(out.delivered)
                           : 0.0;
    report_.total.accumulate(out.total);
    report_.delivered += out.delivered;
    report_.dropped += out.dropped;
    report_.in_flight += out.in_flight;
  }
  return report_;
}

void FrameLedger::publish(Registry& registry) const {
  check(finalized_, "FrameLedger::publish requires finalize() first");
  auto add = [&registry](const char* name, std::vector<Label> labels,
                         std::uint64_t v) {
    registry.counter(name, std::move(labels)).add(v);
  };
  add("lifecycle.delivered", {}, report_.delivered);
  add("lifecycle.dropped", {}, report_.dropped);
  add("lifecycle.in_flight", {}, report_.in_flight);
  for (std::size_t f = 0; f < report_.flows.size(); ++f) {
    const FlowLifecycle& fl = report_.flows[f];
    const std::size_t id = flow_id(f);
    add("lifecycle.arrivals", flow_label(id), fl.arrivals);
    add("lifecycle.delivered", flow_label(id), fl.delivered);
    add("lifecycle.dropped", flow_label(id), fl.dropped);
    add("lifecycle.in_flight", flow_label(id), fl.in_flight);
    add("lifecycle.tx_attempts", flow_label(id), fl.tx_attempts);
    add("lifecycle.failed_attempts", flow_label(id), fl.failed_attempts);
  }
}

// ---------------------------------------------------------------------------
// TimeSeriesSampler

TimeSeriesSampler::TimeSeriesSampler(const Config& config)
    : config_(config), outstanding_(config.n_flows, 0) {
  check(config_.window_s > 0.0, "TimeSeriesSampler requires window_s > 0");
  series_.window_s = config_.window_s;
}

void TimeSeriesSampler::window_at(double t) {
  const auto w = static_cast<std::size_t>(
      std::max(0.0, std::floor(t / config_.window_s)));
  while (current_window_ < w) {
    in_flight_at_end_.push_back(static_cast<double>(in_flight_now_));
    ++current_window_;
  }
  if (deliveries_.size() <= w) {
    deliveries_.resize(w + 1, 0);
    tx_starts_.resize(w + 1, 0);
    collisions_.resize(w + 1, 0);
  }
}

void TimeSeriesSampler::record(const TraceEvent& e) {
  if (finalized_) return;
  window_at(e.time_s);
  const std::size_t w = current_window_;
  const bool flow_ok =
      e.flow >= 0 && static_cast<std::size_t>(e.flow) < outstanding_.size();
  switch (e.type) {
    case EventType::kArrival:
      if (flow_ok) {
        ++outstanding_[static_cast<std::size_t>(e.flow)];
        ++in_flight_now_;
      }
      break;
    case EventType::kTxStart:
      ++tx_starts_[w];
      break;
    case EventType::kCollision:
      ++collisions_[w];
      break;
    case EventType::kStateChange:
    case EventType::kDrop: {
      const bool delivery = is_delivery(e);
      if (e.type == EventType::kDrop || delivery) {
        if (delivery) ++deliveries_[w];
        // Only frames that entered through kArrival count as in flight
        // (saturated sources have no meaningful backlog).
        if (flow_ok && outstanding_[static_cast<std::size_t>(e.flow)] > 0) {
          --outstanding_[static_cast<std::size_t>(e.flow)];
          --in_flight_now_;
        }
      }
      break;
    }
    default:
      break;
  }
}

const LifecycleSeries& TimeSeriesSampler::finalize(double end_s) {
  if (finalized_) return series_;
  finalized_ = true;
  // Windows cover [0, end_s); a final partial window is kept (its
  // goodput is normalized by the full window like airtime's series).
  const auto n = static_cast<std::size_t>(
      std::ceil(std::max(0.0, end_s) / config_.window_s - kTimeSlack));
  deliveries_.resize(std::max(n, deliveries_.size()), 0);
  tx_starts_.resize(deliveries_.size(), 0);
  collisions_.resize(deliveries_.size(), 0);
  while (in_flight_at_end_.size() < deliveries_.size()) {
    in_flight_at_end_.push_back(static_cast<double>(in_flight_now_));
  }
  const std::size_t windows = deliveries_.size();
  series_.t_s.resize(windows);
  series_.goodput_mbps.resize(windows);
  series_.collision_rate.resize(windows);
  series_.in_flight.resize(windows);
  for (std::size_t w = 0; w < windows; ++w) {
    series_.t_s[w] = static_cast<double>(w + 1) * config_.window_s;
    series_.goodput_mbps[w] = static_cast<double>(deliveries_[w]) *
                              config_.payload_bits / config_.window_s / 1e6;
    series_.collision_rate[w] =
        static_cast<double>(collisions_[w]) /
        static_cast<double>(std::max<std::uint64_t>(1, tx_starts_[w]));
    series_.in_flight[w] = in_flight_at_end_[w];
  }
  // Steady state estimated from the second half; warmup is the shortest
  // prefix whose removal brings the remaining mean within 10% of it.
  const std::vector<double>& g = series_.goodput_mbps;
  double first_half = 0.0;
  double second_half = 0.0;
  const std::size_t half = windows / 2;
  for (std::size_t w = 0; w < windows; ++w) {
    (w < half ? first_half : second_half) += g[w];
  }
  const std::size_t tail = windows - half;
  const double steady =
      tail > 0 ? second_half / static_cast<double>(tail) : 0.0;
  const double head =
      half > 0 ? first_half / static_cast<double>(half) : 0.0;
  series_.stationarity_ratio = head > 0.0 ? steady / head : 1.0;
  series_.warmup_windows = 0;
  if (steady > 0.0 && windows > 0) {
    double suffix = first_half + second_half;
    for (std::size_t w = 0; w < windows; ++w) {
      const double mean = suffix / static_cast<double>(windows - w);
      if (std::abs(mean - steady) <= 0.10 * steady) {
        series_.warmup_windows = w;
        break;
      }
      suffix -= g[w];
      series_.warmup_windows = w + 1;
    }
  }
  return series_;
}

// ---------------------------------------------------------------------------
// InvariantAuditor

InvariantAuditor::InvariantAuditor(const Config& config)
    : config_(config),
      ring_(std::max<std::size_t>(1, config.flight_recorder_capacity)),
      transmitting_(config.n_nodes, false),
      flows_(config.n_flows) {}

void InvariantAuditor::breach(double t, const std::string& message) {
  ++breaches_;
  if (messages_.size() < kMaxBreachMessages) {
    std::ostringstream msg;
    msg << "t=" << t << ": " << message;
    messages_.push_back(msg.str());
  }
  // First breach snapshots the flight recorder immediately (so a crash
  // right after still leaves a post-mortem); finalize() rewrites it with
  // the full context.
  if (!config_.dump_path.empty() && !dumped_) {
    dumped_ = true;
    std::ofstream out(config_.dump_path);
    if (out.is_open()) out << flight_recorder_json();
  }
}

void InvariantAuditor::record(const TraceEvent& e) {
  if (finalized_) return;
  ring_.record(e);  // first, so the dump includes the offending event
  if (e.time_s + kTimeSlack < last_t_) {
    std::ostringstream msg;
    msg << event_name(e.type) << " at " << e.time_s
        << " arrived after t=" << last_t_ << " (time went backwards)";
    breach(e.time_s, msg.str());
  }
  last_t_ = std::max(last_t_, e.time_s);
  const bool node_ok =
      e.node >= 0 && static_cast<std::size_t>(e.node) < transmitting_.size();
  if (e.node >= 0 && !transmitting_.empty() && !node_ok) {
    breach(e.time_s, std::string(event_name(e.type)) + " node " +
                         std::to_string(e.node) + " out of range");
  }
  const bool flow_ok =
      e.flow >= 0 && static_cast<std::size_t>(e.flow) < flows_.size();
  if (e.flow >= 0 && !flows_.empty() && !flow_ok) {
    breach(e.time_s, std::string(event_name(e.type)) + " flow " +
                         std::to_string(e.flow) + " out of range");
  }
  switch (e.type) {
    case EventType::kTxStart:
      if (node_ok) {
        const auto n = static_cast<std::size_t>(e.node);
        if (transmitting_[n]) {
          breach(e.time_s, "TX_START at node " + std::to_string(e.node) +
                               " while a transmission is already open");
        }
        transmitting_[n] = true;
      }
      break;
    case EventType::kTxEnd:
      if (node_ok) {
        const auto n = static_cast<std::size_t>(e.node);
        if (!transmitting_[n]) {
          breach(e.time_s, "TX_END at node " + std::to_string(e.node) +
                               " without a matching TX_START");
        }
        transmitting_[n] = false;
      }
      break;
    case EventType::kArrival:
      if (flow_ok) ++flows_[static_cast<std::size_t>(e.flow)].arrivals;
      break;
    case EventType::kStateChange:
      if (is_delivery(e) && flow_ok) {
        FlowAudit& f = flows_[static_cast<std::size_t>(e.flow)];
        ++f.delivered;
        if (f.arrivals > 0 && f.delivered + f.dropped > f.arrivals) {
          breach(e.time_s, "flow " + std::to_string(e.flow) +
                               " delivered+dropped exceeds arrivals (" +
                               std::to_string(f.delivered + f.dropped) + " > " +
                               std::to_string(f.arrivals) + ")");
        }
      }
      break;
    case EventType::kDrop:
      if (flow_ok) {
        FlowAudit& f = flows_[static_cast<std::size_t>(e.flow)];
        ++f.dropped;
        if (f.arrivals > 0 && f.delivered + f.dropped > f.arrivals) {
          breach(e.time_s, "flow " + std::to_string(e.flow) +
                               " delivered+dropped exceeds arrivals (" +
                               std::to_string(f.delivered + f.dropped) + " > " +
                               std::to_string(f.arrivals) + ")");
        }
      }
      break;
    default:
      break;
  }
}

void InvariantAuditor::audit(const AirtimeReport& airtime) {
  const double covered =
      airtime.idle_s + airtime.busy_s + airtime.collision_s;
  const double tol =
      config_.airtime_tolerance * std::max(1.0, airtime.duration_s);
  if (std::abs(covered - airtime.duration_s) > tol) {
    std::ostringstream msg;
    msg << "airtime partition does not close: idle+busy+collision = "
        << covered << " vs duration " << airtime.duration_s;
    breach(airtime.duration_s, msg.str());
  }
  const double fracs[3] = {airtime.idle_fraction(), airtime.busy_fraction(),
                           airtime.collision_fraction()};
  const char* names[3] = {"idle", "busy", "collision"};
  for (int i = 0; i < 3; ++i) {
    if (fracs[i] < -config_.airtime_tolerance ||
        fracs[i] > 1.0 + config_.airtime_tolerance) {
      std::ostringstream msg;
      msg << "airtime " << names[i] << " fraction " << fracs[i]
          << " outside [0, 1]";
      breach(airtime.duration_s, msg.str());
    }
  }
}

void InvariantAuditor::audit(const LifecycleReport& ledger) {
  for (std::size_t f = 0; f < ledger.flows.size(); ++f) {
    const FlowLifecycle& fl = ledger.flows[f];
    if (fl.arrivals != fl.delivered + fl.dropped + fl.in_flight) {
      std::ostringstream msg;
      msg << "flow " << f << " conservation broken: arrivals " << fl.arrivals
          << " != delivered " << fl.delivered << " + dropped " << fl.dropped
          << " + in-flight " << fl.in_flight;
      breach(ledger.duration_s, msg.str());
    }
  }
}

std::uint64_t InvariantAuditor::finalize(double end_s) {
  if (finalized_) return breaches_;
  finalized_ = true;
  // Per-flow conservation online already guarantees
  // delivered + dropped <= arrivals; the remainder is in flight by
  // definition, so the only end-of-run residue to check is the cross
  // against a closed ledger (audit(LifecycleReport), when available).
  (void)end_s;
  if (breaches_ > 0 && !config_.dump_path.empty()) {
    std::ofstream out(config_.dump_path);
    if (out.is_open()) out << flight_recorder_json();
    dumped_ = true;
  }
  return breaches_;
}

std::string InvariantAuditor::flight_recorder_json() const {
  if (breaches_ == 0) return "";
  std::ostringstream out;
  out << "{\"schema\":\"holtwlan-flight-recorder-v1\",\"breaches\":"
      << breaches_ << ",\"messages\":[";
  for (std::size_t i = 0; i < messages_.size(); ++i) {
    if (i) out << ',';
    out << '"' << json_escape(messages_[i]) << '"';
  }
  out << "],\"events\":[";
  bool first = true;
  for (const TraceEvent& e : ring_.events()) {
    if (!first) out << ',';
    first = false;
    write_event_json(out, e);
  }
  out << "]}";
  return out.str();
}

}  // namespace wlan::obs

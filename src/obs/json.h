// Minimal JSON helpers shared by the observability sinks and tools.
//
// Emission: just enough to write valid RFC 8259 output (string escaping,
// finite-number formatting). Parsing: a small recursive-descent reader
// producing a `JsonValue` tree — enough for the trace analyzers and the
// bench regression gate to read back what the sinks wrote, without
// pulling in an external dependency.
#pragma once

#include <cstddef>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wlan::obs {

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included).
std::string json_escape(std::string_view s);

/// Writes `v` as a JSON number; NaN and infinities (not representable in
/// JSON) become null.
void json_number(std::ostream& out, double v);

/// One parsed JSON document node. Object members preserve source order
/// (duplicate keys keep the last occurrence on lookup, like most readers).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;  // null

  /// Parses one complete document (trailing whitespace allowed; anything
  /// else after the value throws ContractError, as does malformed input).
  static JsonValue parse(std::string_view text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }

  /// Typed accessors; throw ContractError on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;     ///< array elements
  const std::vector<Member>& members() const;      ///< object members

  /// Object member lookup; null when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  /// `find` that throws ContractError when the key is absent.
  const JsonValue& at(std::string_view key) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<Member> members_;

  friend class JsonParser;
};

}  // namespace wlan::obs

// Minimal JSON emission helpers shared by the observability sinks.
//
// This is a writer, not a parser: just enough to emit valid RFC 8259
// output (string escaping, finite-number formatting) without pulling in
// an external dependency.
#pragma once

#include <ostream>
#include <string>
#include <string_view>

namespace wlan::obs {

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included).
std::string json_escape(std::string_view s);

/// Writes `v` as a JSON number; NaN and infinities (not representable in
/// JSON) become null.
void json_number(std::ostream& out, double v);

}  // namespace wlan::obs

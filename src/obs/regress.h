// Benchmark regression gate: metric-by-metric comparison of an
// aggregate bench report against a committed baseline.
//
// The claim benches (C1..C13 + extensions) each emit a
// "holtwlan-bench-v1" JSON report; scripts/run_benches.sh concatenates
// them into a "holtwlan-bench-aggregate-v1" document. A PASS verdict
// alone is a weak gate — a 30% throughput regression can hide behind a
// still-true inequality. The baseline pins every scalar metric to the
// value a known-good run produced, with per-metric tolerances:
//
//   {"schema": "holtwlan-bench-baseline-v1",
//    "default_rel_tol": 0.25, "default_abs_tol": 1e-9,
//    "benches": [
//      {"id": "C2", "title": "C2: DSSS processing gain ...",
//       "verdict": "REPRODUCED",
//       "metrics": [{"name": "processing_gain_db", "value": 10.4,
//                    "rel_tol": 0.05}, ...]}, ...]}
//
// Ids are not unique (all extension benches report id "EXT"), so the
// title disambiguates; an entry with a stale title degrades to matching
// the first report with its id rather than failing as a missing bench.
//
// A current value drifts when |cur - base| > abs_tol + rel_tol * |base|
// (per-metric tolerances override the defaults). Verdicts may improve
// but not regress (REPRODUCED -> MISMATCH fails). Metrics or benches
// present in the baseline but absent from the run fail — silent
// disappearance is the regression the gate exists to catch; benches the
// run added on top of the baseline are reported but never fail.
//
// `bench/bench_diff.cpp` wraps this as the CLI that
// scripts/run_benches.sh --baseline and CI invoke.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/json.h"

namespace wlan::obs {

/// One compared metric (or structural finding) in the diff.
struct MetricDiff {
  enum class Status {
    kOk,               ///< within tolerance
    kDrift,            ///< |cur - base| exceeded the allowance
    kMissingMetric,    ///< in the baseline, absent from the run
    kMissingBench,     ///< whole bench absent from the run
    kVerdictRegressed, ///< baseline REPRODUCED, run MISMATCH
    kNew,              ///< in the run, absent from the baseline (informational)
  };

  std::string bench;
  std::string name;  // metric name; empty for bench-level rows
  double baseline = 0.0;
  double current = 0.0;
  double allowed = 0.0;  // abs_tol + rel_tol * |baseline|
  Status status = Status::kOk;

  bool failed() const {
    return status != Status::kOk && status != Status::kNew;
  }
};

struct DiffResult {
  std::vector<MetricDiff> rows;
  std::size_t compared = 0;  // metric comparisons performed

  std::size_t failures() const;
  bool ok() const { return failures() == 0; }
};

/// Renders an aggregate report ("holtwlan-bench-aggregate-v1") into a
/// fresh baseline document pinning every scalar metric at its current
/// value under the given default tolerances.
std::string make_baseline_json(const JsonValue& aggregate, double rel_tol,
                               double abs_tol);

/// Compares `aggregate` against `baseline`. With `subset_only`, benches
/// missing from the run are skipped instead of failing (for partial
/// reruns via run_benches.sh --only).
DiffResult diff_against_baseline(const JsonValue& aggregate,
                                 const JsonValue& baseline, bool subset_only);

/// Human-readable table of every non-OK row plus a summary line.
void write_diff_report(std::ostream& out, const DiffResult& result);

}  // namespace wlan::obs

#include "obs/timer.h"

namespace wlan::obs {

const char* kernel_metric_name(Kernel kernel) {
  switch (kernel) {
    case Kernel::kFft: return "kernel.fft";
    case Kernel::kViterbi: return "kernel.viterbi";
    case Kernel::kLdpcDecode: return "kernel.ldpc_decode";
    case Kernel::kFadingTaps: return "kernel.fading_taps";
    case Kernel::kViterbiBatch: return "kernel.viterbi_batch";
    case Kernel::kLdpcBatch: return "kernel.ldpc_batch";
    case Kernel::kViterbiQuant: return "kernel.viterbi_i16";
    case Kernel::kLdpcQuant: return "kernel.ldpc_i16";
  }
  return "kernel.unknown";
}

void enable_kernel_profiling(Registry& registry) {
  perf::detail::PerfTls& t = perf::detail::tls();
  for (std::size_t i = 0; i < kKernelCount; ++i) {
    const auto k = static_cast<Kernel>(i);
    // 10 ns .. 1 s, 8 bins per decade.
    t.kernel_hist[i] = &registry.histogram(kernel_metric_name(k), 1e-8, 1.0, 64);
  }
  t.kernel_registry = &registry;
}

void disable_kernel_profiling() noexcept {
  perf::detail::PerfTls& t = perf::detail::tls();
  t.kernel_hist.fill(nullptr);
  t.kernel_registry = nullptr;
}

bool kernel_profiling_enabled() noexcept {
  return perf::detail::tls().kernel_hist[0] != nullptr;
}

Registry* kernel_profiling_registry() noexcept {
  return perf::detail::tls().kernel_registry;
}

}  // namespace wlan::obs

#include "obs/timer.h"

namespace wlan::obs {

namespace detail {
thread_local std::array<Histogram*, kKernelCount> g_kernel_hist{};
thread_local Registry* g_kernel_registry = nullptr;
}  // namespace detail

const char* kernel_metric_name(Kernel kernel) {
  switch (kernel) {
    case Kernel::kFft: return "kernel.fft";
    case Kernel::kViterbi: return "kernel.viterbi";
    case Kernel::kLdpcDecode: return "kernel.ldpc_decode";
    case Kernel::kFadingTaps: return "kernel.fading_taps";
  }
  return "kernel.unknown";
}

void enable_kernel_profiling(Registry& registry) {
  for (std::size_t i = 0; i < kKernelCount; ++i) {
    const auto k = static_cast<Kernel>(i);
    // 10 ns .. 1 s, 8 bins per decade.
    detail::g_kernel_hist[i] =
        &registry.histogram(kernel_metric_name(k), 1e-8, 1.0, 64);
  }
  detail::g_kernel_registry = &registry;
}

void disable_kernel_profiling() noexcept {
  detail::g_kernel_hist.fill(nullptr);
  detail::g_kernel_registry = nullptr;
}

bool kernel_profiling_enabled() noexcept {
  return detail::g_kernel_hist[0] != nullptr;
}

Registry* kernel_profiling_registry() noexcept {
  return detail::g_kernel_registry;
}

}  // namespace wlan::obs

#include "obs/perf.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace wlan::obs::perf {
namespace detail {

thread_local constinit PerfTls g_tls WLAN_PERF_TLS_MODEL{};

namespace {

std::atomic<TickFn> g_tick{nullptr};
std::atomic<AllocFn> g_alloc{nullptr};

}  // namespace

std::uint64_t now_ns() noexcept {
  if (const TickFn f = g_tick.load(std::memory_order_relaxed)) return f();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

AllocFn alloc_fn() noexcept {
  return g_alloc.load(std::memory_order_relaxed);
}

SpanCollector::SpanCollector() { nodes_.emplace_back(); }

SpanNode* SpanCollector::root() noexcept { return &nodes_.front(); }

SpanNode* SpanCollector::enter(SpanNode* parent, const char* name) {
  for (SpanNode* child : parent->children) {
    // Literal names usually dedupe by pointer; fall back to content so
    // the same name from two translation units shares one node.
    if (child->name == name || std::strcmp(child->name, name) == 0) {
      return child;
    }
  }
  nodes_.emplace_back();
  SpanNode* node = &nodes_.back();
  node->name = name;
  node->parent = parent;
  parent->children.push_back(node);
  return node;
}

namespace {

void drain_node(SpanNode* node, const std::string& path, SpanProfile& target) {
  if (node->stats.any()) {
    target.add(path, node->stats);
    node->stats = SpanStats{};
  }
  for (SpanNode* child : node->children) {
    std::string child_path = path;
    child_path += ';';
    child_path += child->name;
    drain_node(child, child_path, target);
  }
}

}  // namespace

void SpanCollector::drain_into(SpanProfile& target, const std::string& prefix) {
  SpanNode* r = root();
  r->stats = SpanStats{};  // depth-0 closes accumulate child_ns here; discard
  for (SpanNode* child : r->children) {
    std::string path = prefix;
    if (!path.empty()) path += ';';
    path += child->name;
    drain_node(child, path, target);
  }
}

namespace {

// Collectors live in a process-wide arena, not in thread_local objects
// with destructors: the main thread's thread_local destructors run
// BEFORE atexit handlers, and bench_util finalizes its root span and
// drains the main thread's collector from one. Threads keep only a
// trivially-destructible pointer; a thread that exits leaves its (fully
// drained) collector parked in the arena. The deque keeps addresses
// stable across emplacements.
struct CollectorArena {
  std::mutex mutex;
  std::deque<SpanCollector> collectors;

  SpanCollector& create() {
    const std::lock_guard<std::mutex> lock(mutex);
    collectors.emplace_back();
    return collectors.back();
  }
};

CollectorArena& collector_arena() {
  static CollectorArena arena;
  return arena;
}

}  // namespace

SpanCollector& thread_collector() {
  thread_local constinit SpanCollector* collector = nullptr;
  if (collector == nullptr) collector = &collector_arena().create();
  return *collector;
}

SpanCollector& shard_collector() {
  thread_local constinit SpanCollector* collector = nullptr;
  if (collector == nullptr) collector = &collector_arena().create();
  return *collector;
}

}  // namespace detail

ScopedSpan::~ScopedSpan() {
  if (node_ == nullptr) return;
  detail::PerfTls& t = detail::tls();
  const std::uint64_t elapsed = detail::now_ns() - start_ns_;
  detail::SpanNode* parent = node_->parent;
  node_->stats.calls += 1;
  node_->stats.total_ns += elapsed;
  parent->stats.child_ns += elapsed;
  if (alloc_) {
    const std::uint64_t allocs = alloc_() - start_allocs_;
    node_->stats.allocs += allocs;
    parent->stats.child_allocs += allocs;
  }
  t.current = parent;
}

void SpanProfile::add(const std::string& path, const SpanStats& stats) {
  const std::lock_guard<std::mutex> lock(mutex_);
  spans_[path].add(stats);
}

void SpanProfile::merge(const SpanProfile& other) {
  const std::map<std::string, SpanStats> rows = other.spans();
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [path, stats] : rows) spans_[path].add(stats);
}

void SpanProfile::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
}

bool SpanProfile::empty() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return spans_.empty();
}

std::map<std::string, SpanStats> SpanProfile::spans() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::uint64_t SpanProfile::root_total_ns() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [path, stats] : spans_) {
    if (path.find(';') == std::string::npos) total += stats.total_ns;
  }
  return total;
}

void SpanProfile::publish(Registry& registry) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [path, stats] : spans_) {
    const std::vector<Label> label{{"span", path}};
    registry.counter("span.calls", label).add(stats.calls);
    registry.counter("span.total_ns", label).add(stats.total_ns);
    registry.counter("span.self_ns", label).add(stats.self_ns());
    registry.counter("span.allocs", label).add(stats.allocs);
  }
}

void SpanProfile::write_folded(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [path, stats] : spans_) {
    out << path << ' ' << stats.self_ns() << '\n';
  }
}

std::string SpanProfile::folded() const {
  std::ostringstream out;
  write_folded(out);
  return out.str();
}

std::vector<FoldedLine> parse_folded(std::istream& in) {
  std::vector<FoldedLine> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t space = line.rfind(' ');
    check(space != std::string::npos && space > 0 && space + 1 < line.size(),
          "parse_folded: line is not \"path value\"");
    FoldedLine parsed;
    parsed.path = line.substr(0, space);
    std::uint64_t value = 0;
    for (std::size_t i = space + 1; i < line.size(); ++i) {
      const char c = line[i];
      check(c >= '0' && c <= '9', "parse_folded: value is not an integer");
      value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    parsed.self_ns = value;
    lines.push_back(std::move(parsed));
  }
  return lines;
}

void enable_span_profiling(SpanProfile& target) {
  detail::PerfTls& t = detail::tls();
  if (t.collector != nullptr && t.target != nullptr && t.target != &target) {
    t.collector->drain_into(*t.target, "");
  }
  t.collector = &detail::thread_collector();
  t.current = t.collector->root();
  t.target = &target;
}

void disable_span_profiling() {
  detail::PerfTls& t = detail::tls();
  if (t.collector != nullptr && t.target != nullptr) {
    t.collector->drain_into(*t.target, "");
  }
  t.collector = nullptr;
  t.current = nullptr;
  t.target = nullptr;
}

void flush_span_profiling() {
  detail::PerfTls& t = detail::tls();
  if (t.collector != nullptr && t.target != nullptr) {
    t.collector->drain_into(*t.target, "");
  }
}

bool span_profiling_enabled() noexcept {
  return detail::tls().collector != nullptr;
}

SpanProfile* span_profiling_target() noexcept { return detail::tls().target; }

std::string current_path() {
  const detail::PerfTls& t = detail::tls();
  if (t.collector == nullptr || t.current == nullptr) return "";
  std::vector<const char*> names;
  for (const detail::SpanNode* n = t.current; n != nullptr && n->name != nullptr;
       n = n->parent) {
    names.push_back(n->name);
  }
  std::string path;
  for (std::size_t i = names.size(); i-- > 0;) {
    if (!path.empty()) path += ';';
    path += names[i];
  }
  return path;
}

void set_tick_source_for_testing(TickFn fn) noexcept {
  detail::g_tick.store(fn, std::memory_order_relaxed);
}

void set_alloc_source(AllocFn fn) noexcept {
  detail::g_alloc.store(fn, std::memory_order_relaxed);
}

}  // namespace wlan::obs::perf

#include "obs/probe.h"

namespace wlan::obs {

namespace detail {
std::array<Histogram*, kProbeCount> g_probe_hist{};
}  // namespace detail

const char* probe_metric_name(Probe probe) {
  switch (probe) {
    case Probe::kOfdmEvm:
    case Probe::kHtEvm: return "probe.evm";
    case Probe::kOfdmPostEqSnr:
    case Probe::kHtPostEqSnr: return "probe.post_eq_snr_db";
    case Probe::kOfdmLlrAbs:
    case Probe::kHtLlrAbs: return "probe.llr_abs";
  }
  return "probe.unknown";
}

const char* probe_chain_label(Probe probe) {
  switch (probe) {
    case Probe::kOfdmEvm:
    case Probe::kOfdmPostEqSnr:
    case Probe::kOfdmLlrAbs: return "ofdm";
    case Probe::kHtEvm:
    case Probe::kHtPostEqSnr:
    case Probe::kHtLlrAbs: return "ht";
  }
  return "?";
}

void enable_phy_probes(Registry& registry) {
  struct Range {
    double lo;
    double hi;
    std::size_t bins;
  };
  for (std::size_t i = 0; i < kProbeCount; ++i) {
    const auto p = static_cast<Probe>(i);
    Range r{};
    switch (p) {
      case Probe::kOfdmEvm:
      case Probe::kHtEvm:
        // Linear EVM; noiseless links sit near FP roundoff and land in
        // the underflow bucket — min/sum stay exact.
        r = {1e-9, 10.0, 80};
        break;
      case Probe::kOfdmPostEqSnr:
      case Probe::kHtPostEqSnr:
        r = {0.1, 1e4, 64};  // dB; deep fades (<= 0 dB) underflow
        break;
      case Probe::kOfdmLlrAbs:
      case Probe::kHtLlrAbs:
        r = {1e-3, 1e3, 48};
        break;
    }
    const std::vector<Label> label{{"chain", probe_chain_label(p)}};
    detail::g_probe_hist[i] =
        &registry.histogram(probe_metric_name(p), r.lo, r.hi, r.bins, label);
  }
}

void disable_phy_probes() noexcept { detail::g_probe_hist.fill(nullptr); }

bool phy_probes_enabled() noexcept {
  return detail::g_probe_hist[0] != nullptr;
}

}  // namespace wlan::obs

#include "obs/regress.h"

#include <cmath>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace wlan::obs {
namespace {

/// Metric values serialize NaN/inf as null; read them back as NaN.
double metric_value(const JsonValue& v) {
  return v.is_null() ? std::nan("") : v.as_number();
}

std::string report_id(const JsonValue& report) {
  return report.at("id").as_string();
}

std::string report_title(const JsonValue& report) {
  const JsonValue* t = report.find("title");
  return t ? t->as_string() : std::string();
}

// Ids alone are not unique (the extension benches all report id "EXT"),
// so a baseline entry also carries the bench title and we prefer an
// exact (id, title) match. If the title drifted (cosmetic retitle) fall
// back to the first id match rather than reporting a missing bench.
const JsonValue* find_report(const JsonValue& aggregate, const std::string& id,
                             const std::string& title) {
  const JsonValue* first_with_id = nullptr;
  for (const JsonValue& report : aggregate.at("reports").items()) {
    if (report_id(report) != id) continue;
    if (report_title(report) == title) return &report;
    if (!first_with_id) first_with_id = &report;
  }
  return first_with_id;
}

const char* status_name(MetricDiff::Status s) {
  switch (s) {
    case MetricDiff::Status::kOk: return "ok";
    case MetricDiff::Status::kDrift: return "DRIFT";
    case MetricDiff::Status::kMissingMetric: return "MISSING METRIC";
    case MetricDiff::Status::kMissingBench: return "MISSING BENCH";
    case MetricDiff::Status::kVerdictRegressed: return "VERDICT REGRESSED";
    case MetricDiff::Status::kNew: return "new (unpinned)";
  }
  return "?";
}

}  // namespace

std::size_t DiffResult::failures() const {
  std::size_t n = 0;
  for (const MetricDiff& row : rows) {
    if (row.failed()) ++n;
  }
  return n;
}

std::string make_baseline_json(const JsonValue& aggregate, double rel_tol,
                               double abs_tol) {
  check(aggregate.at("schema").as_string() == "holtwlan-bench-aggregate-v1",
        "make_baseline_json: not an aggregate bench report");
  std::ostringstream out;
  out << "{\"schema\":\"holtwlan-bench-baseline-v1\",\n"
      << " \"default_rel_tol\":";
  json_number(out, rel_tol);
  out << ",\n \"default_abs_tol\":";
  json_number(out, abs_tol);
  out << ",\n \"benches\":[";
  bool first_bench = true;
  for (const JsonValue& report : aggregate.at("reports").items()) {
    if (!first_bench) out << ',';
    first_bench = false;
    out << "\n  {\"id\":\"" << json_escape(report_id(report))
        << "\",\"title\":\"" << json_escape(report_title(report))
        << "\",\n   \"verdict\":\""
        << json_escape(report.at("verdict").as_string())
        << "\",\n   \"metrics\":[";
    bool first_metric = true;
    for (const auto& [name, value] : report.at("metrics").members()) {
      if (!first_metric) out << ',';
      first_metric = false;
      out << "\n    {\"name\":\"" << json_escape(name) << "\",\"value\":";
      json_number(out, metric_value(value));
      out << '}';
    }
    out << "]}";
  }
  out << "\n]}\n";
  return out.str();
}

DiffResult diff_against_baseline(const JsonValue& aggregate,
                                 const JsonValue& baseline, bool subset_only) {
  check(aggregate.at("schema").as_string() == "holtwlan-bench-aggregate-v1",
        "bench diff: not an aggregate bench report");
  check(baseline.at("schema").as_string() == "holtwlan-bench-baseline-v1",
        "bench diff: not a bench baseline");
  const double default_rel = baseline.at("default_rel_tol").as_number();
  const double default_abs = baseline.at("default_abs_tol").as_number();

  DiffResult result;
  for (const JsonValue& base_bench : baseline.at("benches").items()) {
    const std::string id = base_bench.at("id").as_string();
    const JsonValue* base_title = base_bench.find("title");
    const JsonValue* report = find_report(
        aggregate, id, base_title ? base_title->as_string() : std::string());
    if (!report) {
      if (subset_only) continue;
      MetricDiff row;
      row.bench = id;
      row.status = MetricDiff::Status::kMissingBench;
      result.rows.push_back(row);
      continue;
    }
    // Verdicts may only improve: a baseline REPRODUCED must stay one.
    if (base_bench.at("verdict").as_string() == "REPRODUCED" &&
        report->at("verdict").as_string() == "MISMATCH") {
      MetricDiff row;
      row.bench = id;
      row.status = MetricDiff::Status::kVerdictRegressed;
      result.rows.push_back(row);
    }
    const JsonValue& current_metrics = report->at("metrics");
    for (const JsonValue& base_metric : base_bench.at("metrics").items()) {
      MetricDiff row;
      row.bench = id;
      row.name = base_metric.at("name").as_string();
      row.baseline = metric_value(base_metric.at("value"));
      const JsonValue* pin = base_metric.find("rel_tol");
      const double rel = pin ? pin->as_number() : default_rel;
      pin = base_metric.find("abs_tol");
      const double abs = pin ? pin->as_number() : default_abs;
      row.allowed = abs + rel * std::abs(row.baseline);
      const JsonValue* cur = current_metrics.find(row.name);
      if (!cur) {
        row.status = MetricDiff::Status::kMissingMetric;
        result.rows.push_back(row);
        continue;
      }
      row.current = metric_value(*cur);
      ++result.compared;
      const bool base_nan = std::isnan(row.baseline);
      const bool cur_nan = std::isnan(row.current);
      const bool within =
          base_nan || cur_nan
              ? base_nan == cur_nan  // NaN pins NaN (e.g. "no crossing")
              : std::abs(row.current - row.baseline) <= row.allowed;
      row.status = within ? MetricDiff::Status::kOk : MetricDiff::Status::kDrift;
      result.rows.push_back(row);
    }
    // Metrics the run grew that the baseline does not pin: surface them
    // so someone regenerates the baseline, but never fail on them.
    for (const auto& [name, value] : current_metrics.members()) {
      bool pinned = false;
      for (const JsonValue& base_metric : base_bench.at("metrics").items()) {
        if (base_metric.at("name").as_string() == name) {
          pinned = true;
          break;
        }
      }
      if (pinned) continue;
      MetricDiff row;
      row.bench = id;
      row.name = name;
      row.current = metric_value(value);
      row.status = MetricDiff::Status::kNew;
      result.rows.push_back(row);
    }
  }
  return result;
}

void write_diff_report(std::ostream& out, const DiffResult& result) {
  for (const MetricDiff& row : result.rows) {
    if (row.status == MetricDiff::Status::kOk) continue;
    out << "  [" << status_name(row.status) << "] " << row.bench;
    if (!row.name.empty()) out << '.' << row.name;
    if (row.status == MetricDiff::Status::kDrift) {
      out << ": baseline ";
      json_number(out, row.baseline);
      out << " -> current ";
      json_number(out, row.current);
      out << " (|delta| ";
      json_number(out, std::abs(row.current - row.baseline));
      out << " > allowed ";
      json_number(out, row.allowed);
      out << ')';
    }
    out << '\n';
  }
  out << "bench diff: " << result.compared << " metric(s) compared, "
      << result.failures() << " failure(s)\n";
}

}  // namespace wlan::obs

// Hierarchical span profiler (wlan::obs::perf) and the shared per-thread
// profiling slots.
//
// ScopedSpan opens a named node on the calling thread's span stack; on
// close it adds the elapsed wall time to the node and to its parent's
// child total, so every span knows calls, inclusive time, and exact self
// time (total - children). Spans accumulate in a per-thread
// SpanCollector — a pointer-linked tree of nodes keyed by name, reused
// across invocations so warm spans never allocate — and are drained into
// a SpanProfile: a path-keyed table (path = "a;b;c", semicolon-joined
// names from the root) of integer-nanosecond counters. Integer sums
// commute, and SpanProfile publishes and serializes in sorted path
// order, so the merged profile of a parallel sweep is bitwise identical
// for any --jobs (the same creation-order discipline the lifecycle
// instruments use).
//
// Zero cost when disabled: an un-armed thread pays one thread-local load
// and a branch per span — the same null-check discipline as ScopedTimer.
// The thread-local state is one zero-initialized POD (PerfTls) with
// initial-exec TLS, so the hot path has no TLS init guard and no
// __tls_get_addr call; kernel_histogram (obs/timer.h) is a branch-free
// indexed load from the same block.
//
// Exports: write_folded emits collapsed stacks ("a;b;c <self_ns>") that
// flamegraph.pl and speedscope ingest directly; parse_folded reads them
// back (tests, CI smoke). publish() mirrors the profile into a Registry
// as span.* counters. chrome_trace.h can append the tree as Perfetto
// slices.
//
// Time source: steady_clock by default. Tests inject a deterministic
// tick source (set_tick_source_for_testing); span durations are tick
// *differences*, so a per-thread counter tick makes merged profiles
// schedule-independent and therefore bitwise comparable across --jobs.
//
// Allocation attribution (opt-in): set_alloc_source points at a
// per-thread allocation counter (tests/support/alloc_hook's
// thread_allocation_count); each span then also records the allocations
// made inside it, with the same self/child split as wall time.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace wlan::obs {

/// The instrumented hot kernels (slots live in perf::detail::PerfTls;
/// the ScopedTimer front end is in obs/timer.h).
enum class Kernel : std::size_t {
  kFft,
  kViterbi,
  kLdpcDecode,
  kFadingTaps,
  kViterbiBatch,   ///< trial-batched double-precision Viterbi ACS
  kLdpcBatch,      ///< trial-batched double-precision min-sum LDPC
  kViterbiQuant,   ///< trial-batched int16 Viterbi ACS
  kLdpcQuant,      ///< trial-batched int8/int16 min-sum LDPC
};
inline constexpr std::size_t kKernelCount = 8;

/// Registry metric name, e.g. "kernel.fft".
const char* kernel_metric_name(Kernel kernel);

namespace perf {

/// Injectable clock: returns a monotonic tick in nanoseconds.
using TickFn = std::uint64_t (*)();
/// Injectable allocation counter: allocations by the calling thread.
using AllocFn = std::uint64_t (*)();

/// Accumulated statistics of one span path. All integer counters, so
/// merging shards is commutative addition and the merged profile does
/// not depend on drain order.
struct SpanStats {
  std::uint64_t calls = 0;        ///< completed invocations
  std::uint64_t total_ns = 0;     ///< inclusive wall time
  std::uint64_t child_ns = 0;     ///< direct children's inclusive time
  std::uint64_t allocs = 0;       ///< inclusive allocations (opt-in)
  std::uint64_t child_allocs = 0; ///< direct children's allocations

  /// Exclusive time. Clamped at zero: with worker shards grafted under a
  /// caller span, children on other threads can exceed the parent's own
  /// wall time.
  std::uint64_t self_ns() const {
    return total_ns > child_ns ? total_ns - child_ns : 0;
  }
  std::uint64_t self_allocs() const {
    return allocs > child_allocs ? allocs - child_allocs : 0;
  }
  bool any() const {
    return (calls | total_ns | child_ns | allocs | child_allocs) != 0;
  }
  void add(const SpanStats& other) {
    calls += other.calls;
    total_ns += other.total_ns;
    child_ns += other.child_ns;
    allocs += other.allocs;
    child_allocs += other.child_allocs;
  }
};

/// Path-keyed span table. Internally synchronized: worker shards drain
/// into the sweep initiator's profile concurrently, and the sorted-map
/// key order (not the drain schedule) defines iteration, publication,
/// and serialization order.
class SpanProfile {
 public:
  SpanProfile() = default;
  SpanProfile(const SpanProfile&) = delete;
  SpanProfile& operator=(const SpanProfile&) = delete;

  /// Folds `stats` into the row for `path` ("a;b;c").
  void add(const std::string& path, const SpanStats& stats);
  void merge(const SpanProfile& other);
  void clear();
  bool empty() const;

  /// Snapshot of the table (copy; safe to iterate without the lock).
  std::map<std::string, SpanStats> spans() const;

  /// Sum of the inclusive times of depth-0 spans (paths without ';').
  std::uint64_t root_total_ns() const;

  /// Mirrors every row into `registry` as span.calls / span.total_ns /
  /// span.self_ns / span.allocs counters labelled {span=<path>}, in
  /// sorted path order — instrument creation order is therefore a pure
  /// function of the profile contents, and merged-shard snapshots are
  /// bitwise identical across thread counts.
  void publish(Registry& registry) const;

  /// Collapsed-stack export: one "path self_ns" line per row, sorted.
  /// flamegraph.pl and speedscope read this directly.
  void write_folded(std::ostream& out) const;
  std::string folded() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, SpanStats> spans_;
};

/// One parsed collapsed-stack line.
struct FoldedLine {
  std::string path;
  std::uint64_t self_ns = 0;
};

/// Parses collapsed-stack text (the write_folded format). Blank lines
/// are skipped; any other malformed line throws ContractError.
std::vector<FoldedLine> parse_folded(std::istream& in);

namespace detail {

/// One node of a thread's span tree: (parent, name) identifies it, and
/// the collector reuses it on every re-entry so warm recording is
/// allocation-free.
struct SpanNode {
  const char* name = nullptr;  // null on the root sentinel
  SpanNode* parent = nullptr;
  std::vector<SpanNode*> children;  // insertion order
  SpanStats stats;
};

/// Per-thread tree of span nodes, keyed by (parent, name). Nodes are
/// created on first entry and reused forever after, so a warm span tree
/// records without allocating. drain_into() folds and resets every
/// node's stats but keeps the nodes.
class SpanCollector {
 public:
  SpanCollector();
  SpanCollector(const SpanCollector&) = delete;
  SpanCollector& operator=(const SpanCollector&) = delete;

  SpanNode* root() noexcept;
  /// Child of `parent` named `name` (by content; created if missing).
  SpanNode* enter(SpanNode* parent, const char* name);
  /// Folds every node with nonzero stats into `target`, prefixing each
  /// path with `prefix` (";"-joined when both nonempty), then zeroes the
  /// stats. Node structure is retained for reuse.
  void drain_into(SpanProfile& target, const std::string& prefix);

 private:
  std::deque<SpanNode> nodes_;  // stable addresses; nodes_[0] is the root
};

/// The combined per-thread profiling block: kernel histogram slots
/// (obs/timer.h's ScopedTimer front end) and the span-profiler arming.
/// Plain zero-initialized POD with initial-exec TLS so reads compile to
/// a guard-free %fs-relative load.
struct PerfTls {
  std::array<Histogram*, kKernelCount> kernel_hist;
  Registry* kernel_registry;
  SpanCollector* collector;  ///< non-null while span profiling is armed
  SpanNode* current;         ///< innermost open span (collector root if none)
  SpanProfile* target;       ///< where this thread's spans drain
};

#if defined(__GNUC__) || defined(__clang__)
#define WLAN_PERF_TLS_MODEL __attribute__((tls_model("initial-exec")))
#else
#define WLAN_PERF_TLS_MODEL
#endif
extern thread_local constinit PerfTls g_tls WLAN_PERF_TLS_MODEL;

inline PerfTls& tls() noexcept { return g_tls; }

/// Monotonic nanoseconds from the active tick source (steady_clock
/// unless a test injected one).
std::uint64_t now_ns() noexcept;

/// The active per-thread allocation counter (null = not tracking).
AllocFn alloc_fn() noexcept;

/// This thread's persistent collector for its own (non-sweep) spans.
SpanCollector& thread_collector();

/// A second persistent per-thread collector reserved for sweep-chunk
/// shards (par/montecarlo's ProfileShardGuard). Kept separate from
/// thread_collector so draining a retired chunk can never sweep up
/// unrelated spans the same thread recorded outside the chunk.
SpanCollector& shard_collector();

}  // namespace detail

/// RAII span. `name` must point at storage that outlives the profile
/// (string literals). Nesting is lexical per thread; construct and
/// destroy in scope (LIFO) order.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    detail::PerfTls& t = detail::tls();
    if (t.collector == nullptr) return;  // disabled: one load + branch
    node_ = t.collector->enter(t.current, name);
    t.current = node_;
    alloc_ = detail::alloc_fn();
    if (alloc_) start_allocs_ = alloc_();
    start_ns_ = detail::now_ns();
  }
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  detail::SpanNode* node_ = nullptr;
  AllocFn alloc_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint64_t start_allocs_ = 0;
};

/// Arms span profiling on the calling thread, draining into `target`
/// (which must outlive the arming). Idempotent re-arming at a different
/// target drains into the old target first.
void enable_span_profiling(SpanProfile& target);

/// Drains this thread's collector into its target and disarms.
void disable_span_profiling();

/// Drains this thread's collector into its target; stays armed. Spans
/// still open contribute their children so far; their own time is
/// recorded when they close.
void flush_span_profiling();

bool span_profiling_enabled() noexcept;

/// The profile this thread's spans drain into (null when off).
SpanProfile* span_profiling_target() noexcept;

/// Semicolon-joined names of the open span stack ("" when disabled or
/// at the root). Sweeps capture this before fan-out so worker-shard
/// chunk spans graft under the caller's open span.
std::string current_path();

/// Installs a deterministic tick source (null restores steady_clock).
/// Test-only; set before arming any thread.
void set_tick_source_for_testing(TickFn fn) noexcept;

/// Installs the opt-in per-thread allocation counter feeding
/// SpanStats::allocs (null disables). Set before arming any thread.
void set_alloc_source(AllocFn fn) noexcept;

}  // namespace perf
}  // namespace wlan::obs

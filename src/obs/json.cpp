#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"

namespace wlan::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void json_number(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << "null";
    return;
  }
  // %.17g round-trips every double; shorter forms print naturally.
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out << buf;
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Recursive-descent reader over the whole input. Depth is bounded so a
/// pathological document cannot blow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue v = value(0);
    skip_ws();
    check(pos_ == text_.size(), "JSON: trailing characters after document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    check(pos_ < text_.size(), "JSON: unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    check(pos_ < text_.size() && text_[pos_] == c,
          std::string("JSON: expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue value(int depth) {
    check(depth < kMaxDepth, "JSON: nesting too deep");
    skip_ws();
    const char c = peek();
    JsonValue v;
    switch (c) {
      case '{': {
        v.type_ = JsonValue::Type::kObject;
        expect('{');
        skip_ws();
        if (peek() == '}') {
          ++pos_;
          return v;
        }
        while (true) {
          skip_ws();
          std::string key = parse_string();
          skip_ws();
          expect(':');
          v.members_.emplace_back(std::move(key), value(depth + 1));
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect('}');
          return v;
        }
      }
      case '[': {
        v.type_ = JsonValue::Type::kArray;
        expect('[');
        skip_ws();
        if (peek() == ']') {
          ++pos_;
          return v;
        }
        while (true) {
          v.items_.push_back(value(depth + 1));
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect(']');
          return v;
        }
      }
      case '"':
        v.type_ = JsonValue::Type::kString;
        v.string_ = parse_string();
        return v;
      case 't':
        check(consume_literal("true"), "JSON: bad literal");
        v.type_ = JsonValue::Type::kBool;
        v.bool_ = true;
        return v;
      case 'f':
        check(consume_literal("false"), "JSON: bad literal");
        v.type_ = JsonValue::Type::kBool;
        v.bool_ = false;
        return v;
      case 'n':
        check(consume_literal("null"), "JSON: bad literal");
        return v;
      default:
        return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      check(pos_ < text_.size(), "JSON: unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      check(pos_ < text_.size(), "JSON: unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          check(pos_ + 4 <= text_.size(), "JSON: truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else check(false, "JSON: bad \\u escape digit");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are beyond
          // what the observability writers ever emit; pass them through
          // as two separate 3-byte sequences).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          check(false, "JSON: unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    check(pos_ > start, "JSON: expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    check(end == token.c_str() + token.size(), "JSON: malformed number");
    JsonValue v;
    v.type_ = JsonValue::Type::kNumber;
    v.number_ = parsed;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).run();
}

bool JsonValue::as_bool() const {
  check(type_ == Type::kBool, "JsonValue: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  check(type_ == Type::kNumber, "JsonValue: not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  check(type_ == Type::kString, "JsonValue: not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  check(type_ == Type::kArray, "JsonValue: not an array");
  return items_;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  check(type_ == Type::kObject, "JsonValue: not an object");
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  const JsonValue* hit = nullptr;
  for (const Member& m : members_) {
    if (m.first == key) hit = &m.second;
  }
  return hit;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  check(v != nullptr, "JsonValue: missing key '" + std::string(key) + "'");
  return *v;
}

}  // namespace wlan::obs

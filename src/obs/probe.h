// PHY link-quality probes: receiver-internal signal quality surfaced as
// (name, label) instruments.
//
// Aggregate bench verdicts (PER curves, throughput crossings) say *that*
// a link works; they do not say *how close to the edge* it is. These
// probes tap the receive chains at the three places an RF engineer would
// put a scope:
//
//  - EVM: per-OFDM-symbol RMS error between the equalized constellation
//    and the nearest ideal point (decision-directed, linear, 1.0 = error
//    as large as the symbol itself);
//  - post-equalizer SNR: the per-subcarrier SNR after channel
//    equalization (dB), the quantity rate adaptation actually sees —
//    frequency-selective fading shows up here as a wide histogram even
//    when the average SNR looks fine;
//  - |LLR| at the decoder input: small magnitudes mean the demapper is
//    guessing; the histogram shape separates "noisy but decodable" from
//    "erasure channel".
//
// Same discipline as the kernel profiler (obs/timer.h): process-wide
// nullable histogram slots, off by default, armed by
// `enable_phy_probes(registry)`. A disabled probe costs the hot path one
// load + branch. Benches arm the probes behind --json and the histograms
// ride out in the standard registry snapshot.
#pragma once

#include <array>
#include <cstddef>

#include "obs/metrics.h"

namespace wlan::obs {

/// The instrumented probe points (chain x quantity).
enum class Probe : std::size_t {
  kOfdmEvm,         ///< 802.11a/g chain, per-symbol RMS EVM (linear)
  kOfdmPostEqSnr,   ///< 802.11a/g chain, per-subcarrier SNR (dB)
  kOfdmLlrAbs,      ///< 802.11a/g chain, |LLR| at Viterbi input
  kHtEvm,           ///< 802.11n chain, per-symbol per-stream RMS EVM
  kHtPostEqSnr,     ///< 802.11n chain, per-subcarrier post-MIMO SNR (dB)
  kHtLlrAbs,        ///< 802.11n chain, |LLR| at FEC input
};
inline constexpr std::size_t kProbeCount = 6;

/// Registry metric name, e.g. "probe.evm"; the chain rides in a label.
const char* probe_metric_name(Probe probe);
/// The "chain" label value, "ofdm" or "ht".
const char* probe_chain_label(Probe probe);

namespace detail {
extern std::array<Histogram*, kProbeCount> g_probe_hist;
}  // namespace detail

/// Histogram slot for `probe`; null while probing is disabled. This is
/// the only call on the receive hot path.
inline Histogram* probe_histogram(Probe probe) noexcept {
  return detail::g_probe_hist[static_cast<std::size_t>(probe)];
}

/// Registers the probe histograms in `registry` as
/// ("probe.evm"|"probe.post_eq_snr_db"|"probe.llr_abs", chain=ofdm|ht)
/// and arms the slots. `registry` must outlive probing; call
/// `disable_phy_probes` before destroying it.
void enable_phy_probes(Registry& registry);

/// Disarms all slots (histograms stay in their registry).
void disable_phy_probes() noexcept;

bool phy_probes_enabled() noexcept;

}  // namespace wlan::obs

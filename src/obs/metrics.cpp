#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "obs/json.h"

namespace wlan::obs {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi) {
  check(lo > 0.0 && hi > lo, "Histogram requires 0 < lo < hi");
  check(bins >= 1, "Histogram requires at least one bin");
  log_lo_ = std::log(lo);
  inv_log_width_ = static_cast<double>(bins) / (std::log(hi) - log_lo_);
  counts_.assign(bins, 0);
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
  build_fast_bins();
}

void Histogram::build_fast_bins() {
  const auto key_of = [](double x) {
    return std::bit_cast<std::uint64_t>(x) >> 46;
  };
  const std::uint64_t key_lo = key_of(lo_);
  const std::uint64_t key_hi = key_of(hi_);
  if (key_hi <= key_lo) return;
  const std::uint64_t span = key_hi - key_lo + 1;
  if (span > (std::uint64_t{1} << 14)) return;  // absurd range: slow path only
  fast_key_lo_ = key_lo;
  fast_bin_.assign(static_cast<std::size_t>(span), std::int16_t{-1});
  if (counts_.size() > static_cast<std::size_t>(
                           std::numeric_limits<std::int16_t>::max())) {
    return;  // bin index would not fit the table cells
  }
  // A cell qualifies only if every double inside it lands in the same
  // bin as both endpoints under record()'s exact expression, which holds
  // when the endpoint indices agree and both index fractions sit away
  // from an integer crossing (log is monotonic; the margin dwarfs the
  // few-ulp evaluation error across the cell).
  constexpr double kMargin = 1e-6;
  for (std::uint64_t k = 0; k < span; ++k) {
    const std::uint64_t key = key_lo + k;
    const double x0 = std::bit_cast<double>(key << 46);
    const double x1 = std::bit_cast<double>(((key + 1) << 46) - 1);
    if (!(x0 >= lo_) || !(x0 > 0.0) || !(x1 < hi_)) continue;
    const double f0 = (std::log(x0) - log_lo_) * inv_log_width_;
    const double f1 = (std::log(x1) - log_lo_) * inv_log_width_;
    const auto i0 = static_cast<std::size_t>(f0);
    const auto i1 = static_cast<std::size_t>(f1);
    if (i0 != i1 || i0 >= counts_.size()) continue;
    const double m0 = f0 - std::floor(f0);
    const double m1 = f1 - std::floor(f1);
    if (m0 < kMargin || m0 > 1.0 - kMargin) continue;
    if (m1 < kMargin || m1 > 1.0 - kMargin) continue;
    fast_bin_[static_cast<std::size_t>(k)] = static_cast<std::int16_t>(i0);
  }
}

void Histogram::record(double x) {
  ++count_;
  sum_ += x;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  // Fast path: direct table lookup on the sample's top bits. Negative,
  // zero, and out-of-range samples miss the key window and fall through.
  const std::uint64_t off = (std::bit_cast<std::uint64_t>(x) >> 46) -
                            fast_key_lo_;
  if (off < fast_bin_.size()) {
    const std::int16_t b = fast_bin_[static_cast<std::size_t>(off)];
    if (b >= 0) {
      ++counts_[static_cast<std::size_t>(b)];
      return;
    }
  }
  if (x < lo_ || x <= 0.0) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto i = static_cast<std::size_t>((std::log(x) - log_lo_) * inv_log_width_);
    if (i >= counts_.size()) i = counts_.size() - 1;  // edge rounding
    ++counts_[i];
  }
}

void Histogram::record_n(double x, std::uint64_t n) {
  if (n == 0) return;
  count_ += n;
  sum_ += x * static_cast<double>(n);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  const std::uint64_t off = (std::bit_cast<std::uint64_t>(x) >> 46) -
                            fast_key_lo_;
  if (off < fast_bin_.size()) {
    const std::int16_t b = fast_bin_[static_cast<std::size_t>(off)];
    if (b >= 0) {
      counts_[static_cast<std::size_t>(b)] += n;
      return;
    }
  }
  if (x < lo_ || x <= 0.0) {
    underflow_ += n;
  } else if (x >= hi_) {
    overflow_ += n;
  } else {
    auto i = static_cast<std::size_t>((std::log(x) - log_lo_) * inv_log_width_);
    if (i >= counts_.size()) i = counts_.size() - 1;  // edge rounding
    counts_[i] += n;
  }
}

double Histogram::min() const { return count_ ? min_ : 0.0; }
double Histogram::max() const { return count_ ? max_ : 0.0; }

double Histogram::lower_edge(std::size_t i) const {
  return std::exp(log_lo_ + static_cast<double>(i) / inv_log_width_);
}

double Histogram::upper_edge(std::size_t i) const {
  return lower_edge(i + 1);
}

double Histogram::percentile(double p) const {
  if (count_ == 0 || std::isnan(p)) return std::nan("");
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count_);
  double cum = 0.0;
  // Underflow bucket spans [min, lo).
  if (underflow_ > 0) {
    const double next = cum + static_cast<double>(underflow_);
    if (target <= next) {
      const double f = (target - cum) / static_cast<double>(underflow_);
      const double hi = std::min(lo_, max_);
      return min_ + f * (hi - min_);
    }
    cum = next;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double next = cum + static_cast<double>(counts_[i]);
    if (target <= next) {
      const double f = (target - cum) / static_cast<double>(counts_[i]);
      const double a = std::max(lower_edge(i), min_);
      const double b = std::min(upper_edge(i), max_);
      return a + f * (b - a);
    }
    cum = next;
  }
  // Overflow bucket spans [hi, max].
  if (overflow_ > 0) {
    const double f =
        (target - cum) / static_cast<double>(overflow_);
    const double a = std::max(hi_, min_);
    return a + std::clamp(f, 0.0, 1.0) * (max_ - a);
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  check(lo_ == other.lo_ && hi_ == other.hi_ &&
            counts_.size() == other.counts_.size(),
        "Histogram::merge requires identical binning");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

namespace {

std::string entry_key(int kind, std::string_view name,
                      const std::vector<Label>& labels) {
  std::string key = std::to_string(kind) + '|' + std::string(name);
  for (const Label& l : labels) {
    key += '|';
    key += l.key;
    key += '=';
    key += l.value;
  }
  return key;
}

void write_labels(std::ostream& out, const std::vector<Label>& labels) {
  out << "\"labels\":{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out << ',';
    out << '"' << json_escape(labels[i].key) << "\":\""
        << json_escape(labels[i].value) << '"';
  }
  out << '}';
}

}  // namespace

Registry::Entry& Registry::fetch(Kind kind, std::string_view name,
                                 std::vector<Label> labels) {
  const std::string key = entry_key(static_cast<int>(kind), name, labels);
  const auto it = index_.find(key);
  if (it != index_.end()) return *entries_[it->second];
  auto entry = std::make_unique<Entry>();
  entry->kind = kind;
  entry->name = std::string(name);
  entry->labels = std::move(labels);
  entries_.push_back(std::move(entry));
  index_.emplace(key, entries_.size() - 1);
  return *entries_.back();
}

const Registry::Entry* Registry::find(Kind kind, std::string_view name,
                                      const std::vector<Label>& labels) const {
  const auto it = index_.find(entry_key(static_cast<int>(kind), name, labels));
  return it == index_.end() ? nullptr : entries_[it->second].get();
}

Counter& Registry::counter(std::string_view name, std::vector<Label> labels) {
  Entry& e = fetch(Kind::kCounter, name, std::move(labels));
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& Registry::gauge(std::string_view name, std::vector<Label> labels) {
  Entry& e = fetch(Kind::kGauge, name, std::move(labels));
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& Registry::histogram(std::string_view name, double lo, double hi,
                               std::size_t bins, std::vector<Label> labels) {
  Entry& e = fetch(Kind::kHistogram, name, std::move(labels));
  if (!e.histogram) e.histogram = std::make_unique<Histogram>(lo, hi, bins);
  return *e.histogram;
}

const Counter* Registry::find_counter(std::string_view name,
                                      const std::vector<Label>& labels) const {
  const Entry* e = find(Kind::kCounter, name, labels);
  return e ? e->counter.get() : nullptr;
}

const Histogram* Registry::find_histogram(
    std::string_view name, const std::vector<Label>& labels) const {
  const Entry* e = find(Kind::kHistogram, name, labels);
  return e ? e->histogram.get() : nullptr;
}

void Registry::merge(const Registry& other) {
  for (const auto& e : other.entries_) {
    switch (e->kind) {
      case Kind::kCounter:
        counter(e->name, e->labels).add(e->counter->value());
        break;
      case Kind::kGauge:
        gauge(e->name, e->labels).set(e->gauge->value());
        break;
      case Kind::kHistogram: {
        const Histogram& src = *e->histogram;
        histogram(e->name, src.range_lo(), src.range_hi(), src.bins(),
                  e->labels)
            .merge(src);
        break;
      }
    }
  }
}

void Registry::write_json(std::ostream& out) const {
  const auto write_kind = [&](Kind kind, const char* section, auto&& body) {
    out << '"' << section << "\":[";
    bool first = true;
    for (const auto& e : entries_) {
      if (e->kind != kind) continue;
      if (!first) out << ',';
      first = false;
      out << "{\"name\":\"" << json_escape(e->name) << "\",";
      write_labels(out, e->labels);
      body(*e);
      out << '}';
    }
    out << ']';
  };

  out << '{';
  write_kind(Kind::kCounter, "counters", [&](const Entry& e) {
    out << ",\"value\":" << e.counter->value();
  });
  out << ',';
  write_kind(Kind::kGauge, "gauges", [&](const Entry& e) {
    out << ",\"value\":";
    json_number(out, e.gauge->value());
  });
  out << ',';
  write_kind(Kind::kHistogram, "histograms", [&](const Entry& e) {
    const Histogram& h = *e.histogram;
    out << ",\"count\":" << h.count() << ",\"sum\":";
    json_number(out, h.sum());
    out << ",\"mean\":";
    json_number(out, h.mean());
    out << ",\"min\":";
    json_number(out, h.min());
    out << ",\"max\":";
    json_number(out, h.max());
    for (const double p : {50.0, 90.0, 99.0}) {
      out << ",\"p" << static_cast<int>(p) << "\":";
      json_number(out, h.count() ? h.percentile(p) : 0.0);
    }
  });
  out << '}';
}

std::string Registry::snapshot_json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

}  // namespace wlan::obs

// Scoped wall-clock timers and the hot-kernel profiler.
//
// ScopedTimer measures the enclosing scope with steady_clock and feeds a
// Histogram. A null histogram disables it: the constructor then never
// touches the clock, so an instrumented kernel pays one load + branch —
// the "zero cost when disabled" guard the PHY hot paths rely on.
//
// The kernel profiler is a process-wide set of histogram slots, one per
// named kernel (FFT, Viterbi, LDPC decode, fading-tap synthesis). It is
// off by default; `enable_kernel_profiling(registry)` registers one
// wall-time histogram per kernel in the given registry and arms the
// slots. Benchmarks enable it behind their `--json` flag.
//
// The slots live in obs/perf.h's PerfTls block — one zero-initialized
// POD thread_local with initial-exec TLS — so `kernel_histogram` is a
// single guard-free indexed load: no TLS-init branch, no
// __tls_get_addr call, nothing but the null check the caller already
// pays.
#pragma once

#include <chrono>

#include "obs/metrics.h"
#include "obs/perf.h"

namespace wlan::obs {

/// RAII wall-clock timer; records elapsed seconds into `hist` on
/// destruction. Null `hist` => fully disabled (no clock reads).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist) noexcept : hist_(hist) {
    if (hist_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (hist_) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      hist_->record(std::chrono::duration<double>(elapsed).count());
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

/// Histogram slot for `kernel` on this thread; null while profiling is
/// disabled. This is the only call on the kernel hot path — a
/// branch-free indexed load from the PerfTls block.
inline Histogram* kernel_histogram(Kernel kernel) noexcept {
  return perf::detail::tls().kernel_hist[static_cast<std::size_t>(kernel)];
}

/// Registers per-kernel wall-time histograms (seconds, 10 ns .. 1 s,
/// log-spaced) in `registry` and arms this thread's slots. `registry`
/// must outlive profiling; call `disable_kernel_profiling` before
/// destroying it.
void enable_kernel_profiling(Registry& registry);

/// Disarms this thread's slots (histograms stay in their registry).
void disable_kernel_profiling() noexcept;

bool kernel_profiling_enabled() noexcept;

/// The registry this thread's profiling is armed at (null when off).
Registry* kernel_profiling_registry() noexcept;

}  // namespace wlan::obs

// Event tracing: typed per-event records from the simulators.
//
// Producers (net::simulate_network, mac::simulate_dcf, ...) hold a
// nullable `TraceSink*`; with a null sink every trace site is one
// pointer test, so tracing is free when disabled. Two backends:
//
//  - JsonlTraceSink: one JSON object per line (JSONL), streamable to a
//    file and trivially parseable by any tooling;
//  - RingTraceSink: bounded in-memory buffer keeping the most recent
//    events plus exact per-type totals over the whole run — the backend
//    tests and interactive debugging use.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>

namespace wlan::obs {

/// Taxonomy of simulator events. MAC/PHY exchanges map onto the TX/RX
/// group; contention and power-state transitions onto the rest.
enum class EventType : std::uint8_t {
  kTxStart,        ///< frame enters the air (value = airtime seconds)
  kTxEnd,          ///< frame leaves the air
  kRxOk,           ///< frame decoded at the addressed node
  kRxFail,         ///< frame addressed but not decodable (SINR/busy rx)
  kCollision,      ///< transmissions started in the same slot
  kBackoffStart,   ///< contention countdown (re)started (value = slots)
  kBackoffFreeze,  ///< countdown frozen by a busy medium (value = slots left)
  kNavSet,         ///< virtual carrier sense set (value = NAV end, seconds)
  kStateChange,    ///< generic state transition (detail = state name)
  kArrival,        ///< packet arrived at a source queue
  kDrop,           ///< frame dropped after the retry limit
};

inline constexpr std::size_t kEventTypeCount = 11;

/// Stable wire name, e.g. "TX_START".
const char* event_name(EventType type);

/// One trace record. `detail` must point at a string with static storage
/// duration (frame-kind or state names); -1 marks an absent id.
struct TraceEvent {
  double time_s = 0.0;
  EventType type = EventType::kStateChange;
  std::int32_t node = -1;
  std::int32_t peer = -1;  ///< addressed/source node of the exchange
  std::int32_t flow = -1;
  /// Per-frame id, stable across the frame's retries and its RX events —
  /// lets trace consumers follow one MPDU across node lanes.
  std::int64_t frame = -1;
  double value = 0.0;      ///< type-specific payload (see enum comments)
  const char* detail = "";
};

/// Consumer interface; implementations need not be thread-safe.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceEvent& event) = 0;
  virtual void flush() {}
  /// Events recorded but not retained in full (ring eviction, write
  /// failure, ...). A nonzero value means the trace is truncated; zero
  /// means every recorded event is still available to consumers.
  virtual std::uint64_t dropped() const { return 0; }
};

/// Writes each event as one JSON line:
/// {"t":..,"ev":"TX_START","node":0,"peer":2,"flow":0,"value":..,"detail":"DATA"}
/// Absent ids (-1) are omitted.
class JsonlTraceSink final : public TraceSink {
 public:
  /// Streams to `out`; the stream must outlive the sink.
  explicit JsonlTraceSink(std::ostream& out);
  /// Opens `path` for writing (throws ContractError on failure).
  explicit JsonlTraceSink(const std::string& path);
  ~JsonlTraceSink() override;

  void record(const TraceEvent& event) override;
  void flush() override;

  std::uint64_t lines() const { return lines_; }
  /// Events whose line could not be written (stream in a failed state —
  /// disk full, closed pipe). Nonzero => the JSONL file is incomplete.
  std::uint64_t dropped() const override { return write_failures_; }

 private:
  std::unique_ptr<std::ostream> owned_;
  std::ostream* out_;
  std::uint64_t lines_ = 0;
  std::uint64_t write_failures_ = 0;
};

/// Keeps the most recent `capacity` events plus exact per-type counts of
/// everything ever recorded (counts are not affected by eviction).
class RingTraceSink final : public TraceSink {
 public:
  explicit RingTraceSink(std::size_t capacity);

  void record(const TraceEvent& event) override;

  const std::deque<TraceEvent>& events() const { return events_; }
  std::uint64_t total() const { return total_; }
  std::uint64_t count(EventType type) const {
    return counts_[static_cast<std::size_t>(type)];
  }
  std::size_t capacity() const { return capacity_; }
  /// Events overwritten by ring eviction (recorded, counted in the
  /// per-type totals, but no longer in `events()`).
  std::uint64_t dropped() const override { return total_ - events_.size(); }

 private:
  std::size_t capacity_;
  std::deque<TraceEvent> events_;
  std::array<std::uint64_t, kEventTypeCount> counts_{};
  std::uint64_t total_ = 0;
};

/// Mutex-guarded adapter making any sink safe to share across the
/// threads of a parallel sweep (sinks themselves stay single-threaded).
/// Events from concurrent producers interleave in lock-acquisition
/// order, so the *order* of a multi-run trace is schedule-dependent —
/// per-event content is not. Prefer tracing only a representative run;
/// use this when a batch genuinely has to share one sink.
class SynchronizedTraceSink final : public TraceSink {
 public:
  /// Wraps `inner`, which must outlive this sink.
  explicit SynchronizedTraceSink(TraceSink& inner) : inner_(inner) {}

  void record(const TraceEvent& event) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    inner_.record(event);
  }
  void flush() override {
    const std::lock_guard<std::mutex> lock(mutex_);
    inner_.flush();
  }
  std::uint64_t dropped() const override {
    const std::lock_guard<std::mutex> lock(mutex_);
    return inner_.dropped();
  }

 private:
  mutable std::mutex mutex_;
  TraceSink& inner_;
};

/// Serializes one event in the JSONL object form (no trailing newline).
void write_event_json(std::ostream& out, const TraceEvent& event);

}  // namespace wlan::obs

// Metrics registry: named, labelled instruments for simulations and
// benchmarks.
//
// Three instrument kinds:
//  - Counter: monotonically increasing event count;
//  - Gauge: last-written scalar (queue depth, temperature, ...);
//  - Histogram: log-spaced bins between a lo/hi range with exact
//    min/max/sum tracking and percentile interpolation — suited to
//    quantities spanning decades (delays, kernel wall times).
//
// A Registry owns instruments by (name, labels) key; asking twice for
// the same key returns the same instrument, so independent modules can
// share counters without coordination. `write_json` snapshots the whole
// registry machine-readably. Instruments returned by a Registry remain
// valid for the registry's lifetime. Not thread-safe by design — the
// hot path must stay a bare increment. Parallel code gives each thread
// (or work chunk) a private shard Registry and folds the shards into
// the parent with `merge` once the parallel region has retired
// (par/montecarlo.h drives this for the sweep engine).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace wlan::obs {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written scalar value.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Histogram with logarithmically spaced bins over [lo, hi), plus
/// underflow/overflow buckets. Tracks exact min/max/sum so `mean()` is
/// exact and percentiles clamp to observed extremes.
class Histogram {
 public:
  /// `lo` and `hi` bound the log-spaced range (0 < lo < hi); `bins` is
  /// the number of bins between them (>= 1).
  Histogram(double lo, double hi, std::size_t bins);

  /// Records one sample. Values <= 0 (log-indexable only for positive x)
  /// land in the underflow bucket.
  void record(double x);

  /// Records `n` copies of the same sample in O(1): one bin lookup, bulk
  /// count/sum updates. The sum accumulates as x*n rather than n repeated
  /// additions, so it can differ from n record() calls by rounding.
  void record_n(double x, std::uint64_t n);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const;
  double max() const;

  /// Linear interpolation within the containing bin. Contract:
  ///  - empty histogram or NaN `p` -> NaN;
  ///  - `p` outside [0, 100] is clamped (p <= 0 -> min(), p >= 100 ->
  ///    max(); both exact, not bin edges);
  ///  - a single sample returns that sample exactly for every `p`;
  ///  - mass in the underflow bucket interpolates over [min, lo) and in
  ///    the overflow bucket over [hi, max] — all-overflow histograms
  ///    interpolate [min, max] since every sample is then >= hi.
  double percentile(double p) const;

  /// Folds `other` into this histogram: bin counts, under/overflow,
  /// count, sum, min, max. Requires identical binning (lo, hi, bins);
  /// throws ContractError otherwise.
  void merge(const Histogram& other);

  double range_lo() const { return lo_; }
  double range_hi() const { return hi_; }

  // Bin introspection (for snapshots): `bins()` interior bins, edge i ->
  // i+1 log-spaced from lo to hi. Underflow/overflow counts are separate.
  std::size_t bins() const { return counts_.size(); }
  double lower_edge(std::size_t i) const;
  double upper_edge(std::size_t i) const;
  std::uint64_t bin_count(std::size_t i) const { return counts_[i]; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }

 private:
  /// Precomputes fast_bin_ (see below). Called once from the ctor.
  void build_fast_bins();

  double lo_;
  double hi_;
  double log_lo_;
  double inv_log_width_;  // bins / log(hi/lo)
  // Direct bin lookup for the record() hot path: the top 18 bits of a
  // positive double (sign, exponent, 6 mantissa bits) index a table of
  // 64 cells per octave. A cell stores its bin index when EVERY double
  // in the cell provably maps to that bin under the exact log-based
  // expression record() uses (endpoints agree and sit away from bin
  // boundaries), or -1 to take the slow path — so the fast path changes
  // which instructions run, never which bin a sample lands in.
  std::vector<std::int16_t> fast_bin_;
  std::uint64_t fast_key_lo_ = 0;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One key=value pair qualifying an instrument name (e.g. flow=2).
struct Label {
  std::string key;
  std::string value;
};

/// Owns instruments by (name, labels); see file comment.
class Registry {
 public:
  Counter& counter(std::string_view name, std::vector<Label> labels = {});
  Gauge& gauge(std::string_view name, std::vector<Label> labels = {});
  Histogram& histogram(std::string_view name, double lo, double hi,
                       std::size_t bins, std::vector<Label> labels = {});

  /// Lookup without creation; null when absent.
  const Counter* find_counter(std::string_view name,
                              const std::vector<Label>& labels = {}) const;
  const Histogram* find_histogram(std::string_view name,
                                  const std::vector<Label>& labels = {}) const;

  std::size_t size() const { return entries_.size(); }

  /// Folds every instrument of `other` into this registry, creating
  /// missing instruments on the fly: counters add, histograms merge
  /// bin-wise (same binning required), gauges take `other`'s value
  /// (call merge in shard order to fix last-writer-wins precedence).
  /// This is how per-thread metric shards fold into a parent registry
  /// at sweep end — merge order, not thread schedule, defines the
  /// result, so deterministic shards merge to a deterministic snapshot.
  void merge(const Registry& other);

  /// Snapshot of every instrument as one JSON object:
  /// {"counters":[{"name":..,"labels":{..},"value":..},...],
  ///  "gauges":[...],
  ///  "histograms":[{"name":..,"count":..,"mean":..,"p50":..,...}]}
  void write_json(std::ostream& out) const;
  std::string snapshot_json() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string name;
    std::vector<Label> labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& fetch(Kind kind, std::string_view name, std::vector<Label> labels);
  const Entry* find(Kind kind, std::string_view name,
                    const std::vector<Label>& labels) const;

  std::vector<std::unique_ptr<Entry>> entries_;
  std::map<std::string, std::size_t> index_;
};

}  // namespace wlan::obs

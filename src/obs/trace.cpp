#include "obs/trace.h"

#include <fstream>
#include <ostream>

#include "common/check.h"
#include "obs/json.h"

namespace wlan::obs {

const char* event_name(EventType type) {
  switch (type) {
    case EventType::kTxStart: return "TX_START";
    case EventType::kTxEnd: return "TX_END";
    case EventType::kRxOk: return "RX_OK";
    case EventType::kRxFail: return "RX_FAIL";
    case EventType::kCollision: return "COLLISION";
    case EventType::kBackoffStart: return "BACKOFF_START";
    case EventType::kBackoffFreeze: return "BACKOFF_FREEZE";
    case EventType::kNavSet: return "NAV_SET";
    case EventType::kStateChange: return "STATE_CHANGE";
    case EventType::kArrival: return "ARRIVAL";
    case EventType::kDrop: return "DROP";
  }
  return "UNKNOWN";
}

void write_event_json(std::ostream& out, const TraceEvent& e) {
  out << "{\"t\":";
  json_number(out, e.time_s);
  out << ",\"ev\":\"" << event_name(e.type) << '"';
  if (e.node >= 0) out << ",\"node\":" << e.node;
  if (e.peer >= 0) out << ",\"peer\":" << e.peer;
  if (e.flow >= 0) out << ",\"flow\":" << e.flow;
  if (e.frame >= 0) out << ",\"frame\":" << e.frame;
  out << ",\"value\":";
  json_number(out, e.value);
  if (e.detail && e.detail[0] != '\0') {
    out << ",\"detail\":\"" << json_escape(e.detail) << '"';
  }
  out << '}';
}

JsonlTraceSink::JsonlTraceSink(std::ostream& out) : out_(&out) {}

JsonlTraceSink::JsonlTraceSink(const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path);
  check(file->is_open(), "JsonlTraceSink cannot open " + path);
  out_ = file.get();
  owned_ = std::move(file);
}

JsonlTraceSink::~JsonlTraceSink() { flush(); }

void JsonlTraceSink::record(const TraceEvent& event) {
  if (!out_->good()) {
    ++write_failures_;
    return;
  }
  write_event_json(*out_, event);
  *out_ << '\n';
  if (!out_->good()) {
    ++write_failures_;
    return;
  }
  ++lines_;
}

void JsonlTraceSink::flush() { out_->flush(); }

RingTraceSink::RingTraceSink(std::size_t capacity) : capacity_(capacity) {
  check(capacity >= 1, "RingTraceSink requires capacity >= 1");
}

void RingTraceSink::record(const TraceEvent& event) {
  ++total_;
  ++counts_[static_cast<std::size_t>(event.type)];
  events_.push_back(event);
  if (events_.size() > capacity_) events_.pop_front();
}

}  // namespace wlan::obs

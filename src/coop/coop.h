// Cooperative diversity: decode-and-forward relaying.
//
// The paper describes cooperation as "somewhat of a cross between MIMO
// techniques and mesh networking": a third party that decodes an ongoing
// exchange regenerates and relays it, improving the effective link
// quality. We implement the classic two-slot decode-and-forward protocol
// (Laneman/Tse/Wornell) over Rayleigh block fading and measure outage
// probability and mean capacity by Monte Carlo, plus the transmit-energy
// split between source and relay (the paper's "share some of the power
// burden" opportunity).
#pragma once

#include <cstdint>

#include "channel/pathloss.h"
#include "common/rng.h"

namespace wlan::coop {

/// Transmission schemes compared by the cooperative experiments.
enum class Scheme {
  kDirect,        ///< S -> D only, full time slot
  kDfRepetition,  ///< two slots; relay forwards if it decodes, else the
                  ///< source repeats (receiver MRC-combines both copies)
  kDfSelection,   ///< two slots; relay forwards if it decodes, else the
                  ///< source uses both slots itself
};

struct CoopConfig {
  Scheme scheme = Scheme::kDfSelection;
  double target_rate_bps_hz = 1.0;  ///< end-to-end spectral efficiency R
  double mean_snr_sd_db = 10.0;     ///< source -> destination
  double mean_snr_sr_db = 15.0;     ///< source -> relay
  double mean_snr_rd_db = 15.0;     ///< relay -> destination
};

struct CoopResult {
  double outage_probability = 0.0;
  double mean_capacity_bps_hz = 0.0;
  double relay_decode_fraction = 0.0;  ///< how often the relay helped
  /// Mean transmit airtime fraction carried by the relay (0 for direct):
  /// the power burden shifted off the (battery-powered) source.
  double relay_airtime_fraction = 0.0;
};

/// Monte-Carlo outage simulation over independent Rayleigh links.
CoopResult simulate(const CoopConfig& config, std::size_t n_trials, Rng& rng);

/// Builds link SNRs for a source-destination pair `d_sd` metres apart with
/// the relay on the line between them at fraction `relay_position` (0 =
/// at source, 1 = at destination), under the given path-loss model.
CoopConfig geometry_config(Scheme scheme, double target_rate_bps_hz,
                           double d_sd_m, double relay_position,
                           const channel::PathLossModel& pathloss,
                           double tx_power_dbm, double bandwidth_hz = 20e6,
                           double noise_figure_db = 6.0);

}  // namespace wlan::coop

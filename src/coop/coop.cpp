#include "coop/coop.h"

#include <cmath>

#include "common/check.h"
#include "common/units.h"

namespace wlan::coop {

CoopResult simulate(const CoopConfig& config, std::size_t n_trials, Rng& rng) {
  check(n_trials > 0, "simulate requires at least one trial");
  check(config.target_rate_bps_hz > 0.0, "target rate must be positive");

  const double g_sd = db_to_lin(config.mean_snr_sd_db);
  const double g_sr = db_to_lin(config.mean_snr_sr_db);
  const double g_rd = db_to_lin(config.mean_snr_rd_db);
  const double r = config.target_rate_bps_hz;

  std::uint64_t outages = 0;
  std::uint64_t relay_used = 0;
  double cap_sum = 0.0;
  double relay_airtime = 0.0;

  for (std::size_t t = 0; t < n_trials; ++t) {
    // Instantaneous SNRs: exponential with the link mean (Rayleigh power).
    const double snr_sd = rng.exponential(g_sd);
    double capacity = 0.0;
    switch (config.scheme) {
      case Scheme::kDirect: {
        capacity = std::log2(1.0 + snr_sd);
        break;
      }
      case Scheme::kDfRepetition:
      case Scheme::kDfSelection: {
        const double snr_sr = rng.exponential(g_sr);
        const double snr_rd = rng.exponential(g_rd);
        // The relay must decode the slot-1 transmission, which carries the
        // whole message in half the time (rate 2R within the slot).
        const bool relay_decodes = 0.5 * std::log2(1.0 + snr_sr) >= r;
        if (relay_decodes) {
          ++relay_used;
          relay_airtime += 0.5;
          capacity = 0.5 * std::log2(1.0 + snr_sd + snr_rd);
        } else if (config.scheme == Scheme::kDfRepetition) {
          // Source repeats; destination MRC-combines the two copies.
          capacity = 0.5 * std::log2(1.0 + 2.0 * snr_sd);
        } else {
          // Selection: source keeps the channel for both slots.
          capacity = std::log2(1.0 + snr_sd);
        }
        break;
      }
    }
    cap_sum += capacity;
    if (capacity < r) ++outages;
  }

  CoopResult result;
  result.outage_probability =
      static_cast<double>(outages) / static_cast<double>(n_trials);
  result.mean_capacity_bps_hz = cap_sum / static_cast<double>(n_trials);
  result.relay_decode_fraction =
      static_cast<double>(relay_used) / static_cast<double>(n_trials);
  result.relay_airtime_fraction = relay_airtime / static_cast<double>(n_trials);
  return result;
}

CoopConfig geometry_config(Scheme scheme, double target_rate_bps_hz,
                           double d_sd_m, double relay_position,
                           const channel::PathLossModel& pathloss,
                           double tx_power_dbm, double bandwidth_hz,
                           double noise_figure_db) {
  check(d_sd_m > 0.0 && relay_position > 0.0 && relay_position < 1.0,
        "relay must lie strictly between source and destination");
  const double d_sr = d_sd_m * relay_position;
  const double d_rd = d_sd_m * (1.0 - relay_position);
  CoopConfig cfg;
  cfg.scheme = scheme;
  cfg.target_rate_bps_hz = target_rate_bps_hz;
  cfg.mean_snr_sd_db = channel::link_snr_db(
      tx_power_dbm, pathloss.path_loss_db(d_sd_m), bandwidth_hz, noise_figure_db);
  cfg.mean_snr_sr_db = channel::link_snr_db(
      tx_power_dbm, pathloss.path_loss_db(d_sr), bandwidth_hz, noise_figure_db);
  cfg.mean_snr_rd_db = channel::link_snr_db(
      tx_power_dbm, pathloss.path_loss_db(d_rd), bandwidth_hz, noise_figure_db);
  return cfg;
}

}  // namespace wlan::coop

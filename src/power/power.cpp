#include "power/power.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/units.h"

namespace wlan::power {

double PaModel::efficiency_at_backoff_db(double backoff_db) const {
  check(backoff_db >= 0.0, "backoff must be non-negative");
  const double exponent =
      pa_class == PaClass::kClassA ? backoff_db / 10.0 : backoff_db / 20.0;
  return peak_efficiency * std::pow(10.0, -exponent);
}

double PaModel::dc_power_w(double avg_output_dbm, double backoff_db) const {
  check(avg_output_dbm + backoff_db <= max_output_dbm + 1e-9,
        "requested output + headroom exceeds PA saturation");
  const double out_w = dbm_to_watt(avg_output_dbm);
  return out_w / efficiency_at_backoff_db(backoff_db);
}

double RadioPowerModel::tx_power_w(std::size_t n_chains,
                                   double per_chain_output_dbm,
                                   double backoff_db) const {
  check(n_chains >= 1, "tx_power_w requires at least one chain");
  const double per_chain =
      pa.dc_power_w(per_chain_output_dbm, backoff_db) + tx_chain_w;
  return baseband_fixed_w +
         baseband_per_stream_w * static_cast<double>(n_chains) +
         per_chain * static_cast<double>(n_chains);
}

double RadioPowerModel::rx_power_w(std::size_t n_chains,
                                   std::size_t n_streams) const {
  check(n_chains >= 1 && n_streams >= 1, "rx_power_w requires active chains");
  return baseband_fixed_w +
         baseband_per_stream_w * static_cast<double>(n_streams) +
         rx_chain_w * static_cast<double>(n_chains);
}

double chain_switching_rx_power_w(const RadioPowerModel& model,
                                  std::size_t n_chains, std::size_t n_streams,
                                  double active_fraction) {
  check(active_fraction >= 0.0 && active_fraction <= 1.0,
        "active fraction must be in [0, 1]");
  const double listening = model.idle_listen_w;  // one chain + light digital
  const double active = model.rx_power_w(n_chains, n_streams);
  return (1.0 - active_fraction) * listening + active_fraction * active;
}

double beamforming_tx_power_dbm(double baseline_dbm, std::size_t n_tx) {
  check(n_tx >= 1, "beamforming requires at least one antenna");
  return baseline_dbm - 10.0 * std::log10(static_cast<double>(n_tx));
}

double tx_energy_per_bit_j(const RadioPowerModel& model, std::size_t n_chains,
                           double per_chain_output_dbm, double backoff_db,
                           double rate_mbps) {
  check(rate_mbps > 0.0, "rate must be positive");
  const double p = model.tx_power_w(n_chains, per_chain_output_dbm, backoff_db);
  return p / (rate_mbps * 1e6);
}

double psm_energy_j(const RadioPowerModel& model,
                    const mac::PsmResult& breakdown, double tx_output_dbm,
                    double tx_backoff_db) {
  const double p_tx = model.tx_power_w(1, tx_output_dbm, tx_backoff_db);
  const double p_rx = model.rx_power_w(1, 1);
  return p_tx * breakdown.time_tx_s + p_rx * breakdown.time_rx_s +
         model.idle_listen_w * breakdown.time_idle_s +
         model.doze_w * breakdown.time_doze_s;
}

}  // namespace wlan::power

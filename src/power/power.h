// Component power models for wireless LAN devices.
//
// The paper's low-power section makes four architectural points, each of
// which this module exposes as a parameter or policy:
//  1. OFDM's high PAPR forces power-amplifier backoff, collapsing PA
//     efficiency (PaModel::efficiency_at_backoff_db).
//  2. MIMO multiplies RF-chain and baseband power (RadioPowerModel's
//     per-chain / per-stream terms).
//  3. Chain switching: listen on one receive chain, enable the rest only
//     while decoding (chain_switching_rx_power_w).
//  4. Beamforming array gain can be spent as transmit power reduction
//     (beamforming_tx_power_dbm).
//
// Default component figures are representative of mid-2000s 802.11
// chipsets (CMOS radios, 0.3-1 W active) — the absolute numbers are
// parameters; the experiments depend on the ratios.
#pragma once

#include <cstddef>

#include "mac/psm.h"

namespace wlan::power {

/// Power-amplifier class, which sets how efficiency decays with backoff.
enum class PaClass {
  kClassA,   ///< efficiency ~ 10^(-backoff/10): halves every 3 dB
  kClassAB,  ///< efficiency ~ 10^(-backoff/20): halves every 6 dB
};

/// A transmit power amplifier.
struct PaModel {
  PaClass pa_class = PaClass::kClassAB;
  double peak_efficiency = 0.40;  ///< drain efficiency at saturation
  double max_output_dbm = 25.0;   ///< saturated output power

  /// Drain efficiency when the average output is backed off from
  /// saturation by `backoff_db` (>= 0).
  double efficiency_at_backoff_db(double backoff_db) const;

  /// DC input power (W) to produce `avg_output_dbm` average output, given
  /// the waveform requires `backoff_db` of headroom to its peaks.
  double dc_power_w(double avg_output_dbm, double backoff_db) const;
};

/// Full-radio power decomposition.
struct RadioPowerModel {
  PaModel pa;
  double tx_chain_w = 0.15;           ///< per-chain TX circuitry (excl. PA)
  double rx_chain_w = 0.30;           ///< per-chain RX front end + ADC
  double baseband_fixed_w = 0.20;     ///< always-on digital
  double baseband_per_stream_w = 0.25;///< per spatial stream decode logic
  double idle_listen_w = 0.40;        ///< single-chain carrier sense
  double doze_w = 0.01;               ///< PSM doze

  /// Total device power while transmitting `n_chains` streams at
  /// `per_chain_output_dbm` average output each, with PA backoff set by
  /// the waveform PAPR.
  double tx_power_w(std::size_t n_chains, double per_chain_output_dbm,
                    double backoff_db) const;

  /// Total device power while receiving with `n_chains` active chains and
  /// `n_streams` decoded streams.
  double rx_power_w(std::size_t n_chains, std::size_t n_streams) const;
};

/// Mean receive power under the chain-switching policy: one chain listens;
/// all `n_chains` (and `n_streams` decoders) are active for the fraction
/// `active_fraction` of time spent receiving packets.
double chain_switching_rx_power_w(const RadioPowerModel& model,
                                  std::size_t n_chains, std::size_t n_streams,
                                  double active_fraction);

/// Transmit power target when closed-loop beamforming with `n_tx` antennas
/// provides its array gain: the same delivered SNR needs
/// 10*log10(n_tx) dB less radiated power.
double beamforming_tx_power_dbm(double baseline_dbm, std::size_t n_tx);

/// Transmit energy per delivered information bit (J/bit) for a link at
/// `rate_mbps` with the given radio state.
double tx_energy_per_bit_j(const RadioPowerModel& model, std::size_t n_chains,
                           double per_chain_output_dbm, double backoff_db,
                           double rate_mbps);

/// Attaches energy to a PSM simulation's radio-state breakdown. The
/// defaults (15 dBm average output, 9 dB OFDM headroom) fit inside the
/// default PA's 25 dBm saturation.
double psm_energy_j(const RadioPowerModel& model,
                    const mac::PsmResult& breakdown,
                    double tx_output_dbm = 15.0, double tx_backoff_db = 9.0);

}  // namespace wlan::power

// Waveform-level signal processing helpers.
#pragma once

#include <cstddef>
#include <span>

#include "common/types.h"

namespace wlan::dsp {

/// Full linear convolution; output length a.size() + b.size() - 1.
CVec convolve(std::span<const Cplx> a, std::span<const Cplx> b);

/// As convolve, resizing `out` — allocation-free once warm. `out` must
/// not alias `a` or `b`.
void convolve_to(std::span<const Cplx> a, std::span<const Cplx> b, CVec& out);

/// Sliding cross-correlation of `x` against `ref` (conjugated reference):
/// out[k] = sum_i x[k+i] * conj(ref[i]), for k in [0, x.size()-ref.size()].
CVec cross_correlate(std::span<const Cplx> x, std::span<const Cplx> ref);

/// Mean power (E[|x|^2]) of a waveform; 0 for empty input.
double mean_power(std::span<const Cplx> x);

/// Peak instantaneous power of a waveform; 0 for empty input.
double peak_power(std::span<const Cplx> x);

/// Peak-to-average power ratio in dB. Requires non-zero mean power.
double papr_db(std::span<const Cplx> x);

/// Scales the waveform so its mean power is `target_power` (in place).
void normalize_power(CVec& x, double target_power = 1.0);

/// Complementary CDF of the per-sample PAPR-like statistic: for each
/// threshold (dB above mean power), the fraction of samples whose
/// instantaneous power exceeds it. Used for PAPR CCDF plots.
RVec power_ccdf(std::span<const Cplx> x, std::span<const double> thresholds_db);

}  // namespace wlan::dsp

#include "dsp/ops.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/units.h"

namespace wlan::dsp {

CVec convolve(std::span<const Cplx> a, std::span<const Cplx> b) {
  CVec out;
  convolve_to(a, b, out);
  return out;
}

void convolve_to(std::span<const Cplx> a, std::span<const Cplx> b, CVec& out) {
  if (a.empty() || b.empty()) {
    out.clear();
    return;
  }
  out.assign(a.size() + b.size() - 1, Cplx{0.0, 0.0});
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == Cplx{0.0, 0.0}) continue;
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] += a[i] * b[j];
    }
  }
}

CVec cross_correlate(std::span<const Cplx> x, std::span<const Cplx> ref) {
  check(!ref.empty(), "cross_correlate requires a non-empty reference");
  if (x.size() < ref.size()) return {};
  CVec out(x.size() - ref.size() + 1, Cplx{0.0, 0.0});
  for (std::size_t k = 0; k < out.size(); ++k) {
    Cplx acc{0.0, 0.0};
    for (std::size_t i = 0; i < ref.size(); ++i) {
      acc += x[k + i] * std::conj(ref[i]);
    }
    out[k] = acc;
  }
  return out;
}

double mean_power(std::span<const Cplx> x) {
  if (x.empty()) return 0.0;
  double sum = 0.0;
  for (const Cplx& v : x) sum += std::norm(v);
  return sum / static_cast<double>(x.size());
}

double peak_power(std::span<const Cplx> x) {
  double peak = 0.0;
  for (const Cplx& v : x) peak = std::max(peak, std::norm(v));
  return peak;
}

double papr_db(std::span<const Cplx> x) {
  const double mean = mean_power(x);
  check(mean > 0.0, "papr_db requires non-zero mean power");
  return lin_to_db(peak_power(x) / mean);
}

void normalize_power(CVec& x, double target_power) {
  const double mean = mean_power(x);
  if (mean <= 0.0) return;
  const double scale = std::sqrt(target_power / mean);
  for (auto& v : x) v *= scale;
}

RVec power_ccdf(std::span<const Cplx> x, std::span<const double> thresholds_db) {
  RVec out(thresholds_db.size(), 0.0);
  const double mean = mean_power(x);
  if (mean <= 0.0 || x.empty()) return out;
  for (std::size_t t = 0; t < thresholds_db.size(); ++t) {
    const double threshold = mean * db_to_lin(thresholds_db[t]);
    std::size_t count = 0;
    for (const Cplx& v : x) {
      if (std::norm(v) > threshold) ++count;
    }
    out[t] = static_cast<double>(count) / static_cast<double>(x.size());
  }
  return out;
}

}  // namespace wlan::dsp

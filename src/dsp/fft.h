// Radix-2 complex FFT used by the OFDM modulator/demodulator.
//
// Two layers: `FftPlan` precomputes the bit-reversal permutation and
// per-stage twiddle-factor tables for one size and applies them to any
// number of buffers, and the `fft_inplace`/`ifft_inplace` convenience
// wrappers fetch a plan from a per-thread cache keyed by size (the
// working set is a handful of sizes — 64/128-point OFDM symbols and
// spectrum-analysis windows — so plans are built once per thread and
// reused for the life of the process; thread-locality makes the cache
// lock-free and parallel-sweep safe).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.h"

namespace wlan::dsp {

/// Returns true when n is a power of two (and > 0).
bool is_power_of_two(std::size_t n);

/// Precomputed transform for one power-of-two size: twiddle factors
/// (exact std::polar values per stage, not incrementally accumulated)
/// and the bit-reversal swap list. Immutable after construction, so one
/// plan may be shared by any number of threads.
class FftPlan {
 public:
  /// Throws ContractError unless `n` is a power of two.
  explicit FftPlan(std::size_t n);

  std::size_t size() const { return n_; }

  /// In-place forward DFT (no normalization). Requires x.size() == size().
  void forward(std::span<Cplx> x) const;
  void forward(CVec& x) const { forward(std::span<Cplx>(x)); }

  /// In-place inverse DFT, normalized by 1/N. Requires x.size() == size().
  void inverse(std::span<Cplx> x) const;
  void inverse(CVec& x) const { inverse(std::span<Cplx>(x)); }

 private:
  void transform(std::span<Cplx> x, bool inverse) const;

  std::size_t n_;
  // Bit-reversal pairs (i, j) with i < j, packed as i << 32 | j.
  std::vector<std::uint64_t> swaps_;
  // Stage twiddles, concatenated: stage s (len = 2^(s+1)) contributes
  // len/2 factors e^{-2*pi*i*k/len}; total n - 1 entries.
  std::vector<Cplx> twiddles_;
};

/// The calling thread's cached plan for size `n` (built on first use).
const FftPlan& plan_for(std::size_t n);

/// In-place forward DFT (no normalization). Requires power-of-two size.
void fft_inplace(std::span<Cplx> x);
inline void fft_inplace(CVec& x) { fft_inplace(std::span<Cplx>(x)); }

/// In-place inverse DFT, normalized by 1/N. Requires power-of-two size.
void ifft_inplace(std::span<Cplx> x);
inline void ifft_inplace(CVec& x) { ifft_inplace(std::span<Cplx>(x)); }

/// Out-of-place forward DFT.
CVec fft(CVec x);

/// Out-of-place inverse DFT (1/N normalized).
CVec ifft(CVec x);

}  // namespace wlan::dsp

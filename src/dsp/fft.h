// Radix-2 complex FFT used by the OFDM modulator/demodulator.
#pragma once

#include <cstddef>

#include "common/types.h"

namespace wlan::dsp {

/// Returns true when n is a power of two (and > 0).
bool is_power_of_two(std::size_t n);

/// In-place forward DFT (no normalization). Requires power-of-two size.
void fft_inplace(CVec& x);

/// In-place inverse DFT, normalized by 1/N. Requires power-of-two size.
void ifft_inplace(CVec& x);

/// Out-of-place forward DFT.
CVec fft(CVec x);

/// Out-of-place inverse DFT (1/N normalized).
CVec ifft(CVec x);

}  // namespace wlan::dsp

// Structure-of-arrays lane layout for trial-batched SIMD kernels.
//
// A batched Monte-Carlo group runs B independent trials in lockstep.
// Per-trial data (LLR streams, decoder metrics, messages) is stored
// LANE-MAJOR: element i of lane l lives at soa[i * lanes + l], so a
// vector kernel loads `lanes` consecutive values — one per trial — with
// a single unaligned load and never gathers. `lanes` is a multiple of
// the vector width on the fast path; any other count (including the
// remainder group of a trial queue that is not a multiple of the batch
// width) falls back to the per-lane scalar reference kernels, which are
// bitwise identical to the vector path for the double-precision layer.
//
// Divergence policy: lanes run in lockstep until a per-trial early exit
// (an LDPC lane whose syndrome comes clean). A finished lane's result
// is snapshotted the moment it exits — the values a lane carries are
// independent of every other lane, so its later in-register evolution
// is dead state — and the batch keeps rolling; when nearly all lanes
// have exited, the survivors are extracted and drained on the scalar
// kernel (same update rules, so still bitwise). Refill happens at group
// granularity: the trial queue hands the runner the next B trials, not
// individual lanes mid-decode (DESIGN.md "Trial batching & quantized
// decoding").
#pragma once

#include <cstddef>
#include <span>

namespace wlan::dsp::batch {

/// Scatters a contiguous per-trial stream into lane `lane` of a
/// lane-major SoA buffer: soa[i * lanes + lane] = src[i].
template <class T>
inline void scatter_lane(std::span<const T> src, std::size_t lane,
                         std::size_t lanes, T* soa) {
  for (std::size_t i = 0; i < src.size(); ++i) soa[i * lanes + lane] = src[i];
}

/// Gathers lane `lane` of a lane-major SoA buffer back into a
/// contiguous per-trial stream: dst[i] = soa[i * lanes + lane].
template <class T>
inline void gather_lane(const T* soa, std::size_t lane, std::size_t lanes,
                        std::span<T> dst) {
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = soa[i * lanes + lane];
}

/// True when `lanes` can take a vector kernel of width `width` (the
/// whole batch is covered by whole vectors, no remainder lanes).
inline constexpr bool vectorizable(std::size_t lanes, std::size_t width) {
  return lanes > 0 && width > 0 && lanes % width == 0;
}

}  // namespace wlan::dsp::batch

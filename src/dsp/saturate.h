// Saturating integer arithmetic with pinned-down clamp semantics.
//
// The quantized decoder fast paths (int16 Viterbi metrics, int8/int16
// min-sum LDPC messages) accumulate in narrow integers where C++'s usual
// arithmetic conversions make overflow behaviour easy to get wrong:
// `-x` for x == INT16_MIN is UB after promotion-and-narrowing, and a
// plain `a + b` wraps. Every helper here widens to int32/int64, clamps,
// and narrows — so the behaviour at INT8_MIN/INT16_MIN is defined and
// documented, and matches what the SIMD saturating instructions
// (PADDSW/SQADD, PSUBSW/SQSUB) produce lane-wise:
//
//   sat_add_i16(INT16_MAX, 1)        == INT16_MAX
//   sat_sub_i16(INT16_MIN, 1)        == INT16_MIN
//   sat_neg_i16(INT16_MIN)           == INT16_MAX   (not UB, not MIN)
//   sat_abs_i16(INT16_MIN)           == INT16_MAX   (matches max(x, 0-x)
//                                                    with saturating sub)
//
// `tests/test_saturate.cpp` pins these boundaries for both widths.
#pragma once

#include <cmath>
#include <cstdint>

namespace wlan::dsp {

inline constexpr std::int16_t sat_i16(std::int32_t x) {
  if (x > 32767) return 32767;
  if (x < -32768) return -32768;
  return static_cast<std::int16_t>(x);
}

inline constexpr std::int8_t sat_i8(std::int32_t x) {
  if (x > 127) return 127;
  if (x < -128) return -128;
  return static_cast<std::int8_t>(x);
}

inline constexpr std::int16_t sat_add_i16(std::int16_t a, std::int16_t b) {
  return sat_i16(static_cast<std::int32_t>(a) + static_cast<std::int32_t>(b));
}

inline constexpr std::int16_t sat_sub_i16(std::int16_t a, std::int16_t b) {
  return sat_i16(static_cast<std::int32_t>(a) - static_cast<std::int32_t>(b));
}

/// Saturating negate: -INT16_MIN saturates to INT16_MAX (the two's
/// complement identity -MIN == MIN never leaks into metric space).
inline constexpr std::int16_t sat_neg_i16(std::int16_t a) {
  return sat_sub_i16(0, a);
}

/// Saturating absolute value: |INT16_MIN| == INT16_MAX. Defined as
/// max(a, 0 -sat a), which is exactly what the vector paths compute.
inline constexpr std::int16_t sat_abs_i16(std::int16_t a) {
  const std::int16_t n = sat_neg_i16(a);
  return a > n ? a : n;
}

inline constexpr std::int8_t sat_add_i8(std::int8_t a, std::int8_t b) {
  return sat_i8(static_cast<std::int32_t>(a) + static_cast<std::int32_t>(b));
}

inline constexpr std::int8_t sat_sub_i8(std::int8_t a, std::int8_t b) {
  return sat_i8(static_cast<std::int32_t>(a) - static_cast<std::int32_t>(b));
}

inline constexpr std::int8_t sat_neg_i8(std::int8_t a) {
  return sat_sub_i8(0, a);
}

inline constexpr std::int8_t sat_abs_i8(std::int8_t a) {
  const std::int8_t n = sat_neg_i8(a);
  return a > n ? a : n;
}

/// Q15 rounding multiply-high: (a * b + 0x4000) >> 15, the scalar
/// definition of x86 PMULHRSW. Used to apply the min-sum normalization
/// factor as a fixed-point constant (0.8 -> 26214/32768). Exact for the
/// decoder's operand range (|a| <= 32767, b >= 0); the a == b ==
/// INT16_MIN corner (where PMULHRSW wraps) is outside that range but
/// still defined here: the widened product cannot overflow int32.
inline constexpr std::int16_t mulhrs_i16(std::int16_t a, std::int16_t b) {
  const std::int32_t p = static_cast<std::int32_t>(a) * b;
  return sat_i16((p + 0x4000) >> 15);
}

/// Quantizes an LLR to a saturated int16 in [-limit, limit] with
/// round-to-nearest (ties away from zero, matching std::lround).
inline std::int16_t quantize_llr_i16(double x, double scale,
                                     std::int16_t limit) {
  const double scaled = x * scale;
  const long r = std::lround(scaled);
  const auto lim = static_cast<long>(limit);
  if (r > lim) return limit;
  if (r < -lim) return static_cast<std::int16_t>(-limit);
  return static_cast<std::int16_t>(r);
}

}  // namespace wlan::dsp

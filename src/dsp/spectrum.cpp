#include "dsp/spectrum.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.h"
#include "dsp/fft.h"

namespace wlan::dsp {

RVec welch_psd(std::span<const Cplx> x, std::size_t n_fft) {
  check(is_power_of_two(n_fft), "welch_psd requires a power-of-two FFT size");
  check(x.size() >= n_fft, "welch_psd input shorter than one segment");

  // Hann window and its energy for normalization.
  RVec window(n_fft);
  double window_energy = 0.0;
  for (std::size_t i = 0; i < n_fft; ++i) {
    window[i] = 0.5 * (1.0 - std::cos(2.0 * std::numbers::pi *
                                      static_cast<double>(i) /
                                      static_cast<double>(n_fft - 1)));
    window_energy += window[i] * window[i];
  }

  RVec psd(n_fft, 0.0);
  const std::size_t hop = n_fft / 2;
  std::size_t segments = 0;
  CVec seg(n_fft);
  for (std::size_t start = 0; start + n_fft <= x.size(); start += hop) {
    for (std::size_t i = 0; i < n_fft; ++i) {
      seg[i] = x[start + i] * window[i];
    }
    fft_inplace(seg);
    for (std::size_t k = 0; k < n_fft; ++k) {
      psd[k] += std::norm(seg[k]);
    }
    ++segments;
  }
  const double norm = 1.0 / (static_cast<double>(segments) * window_energy);
  for (auto& v : psd) v *= norm;
  return psd;
}

RVec fft_shift(std::span<const double> psd) {
  const std::size_t n = psd.size();
  RVec out(n);
  const std::size_t half = n / 2;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = psd[(i + half) % n];
  }
  return out;
}

double power_within_band(std::span<const double> psd, double fraction) {
  check(fraction > 0.0 && fraction <= 1.0, "band fraction must be in (0, 1]");
  const std::size_t n = psd.size();
  double total = 0.0;
  for (const double v : psd) total += v;
  if (total <= 0.0) return 0.0;
  // Bins 0..n/2 are positive frequencies, n/2..n negative.
  const auto limit = static_cast<std::size_t>(fraction * static_cast<double>(n) / 2.0);
  double inside = psd[0];
  for (std::size_t k = 1; k <= limit && k < n / 2; ++k) {
    inside += psd[k] + psd[n - k];
  }
  return inside / total;
}

double occupied_bandwidth_fraction(std::span<const double> psd,
                                   double containment) {
  check(containment > 0.0 && containment < 1.0, "containment must be in (0,1)");
  for (std::size_t half_bins = 1; half_bins <= psd.size() / 2; ++half_bins) {
    const double frac = 2.0 * static_cast<double>(half_bins) /
                        static_cast<double>(psd.size());
    if (power_within_band(psd, frac) >= containment) return frac;
  }
  return 1.0;
}

double spectral_similarity(std::span<const double> a, std::span<const double> b) {
  check(a.size() == b.size() && !a.empty(), "PSD size mismatch");
  double sum_a = 0.0;
  double sum_b = 0.0;
  double cross = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum_a += a[i];
    sum_b += b[i];
    cross += std::sqrt(std::max(a[i], 0.0) * std::max(b[i], 0.0));
  }
  const double denom = std::sqrt(sum_a * sum_b);
  return denom > 0.0 ? cross / denom : 0.0;
}

}  // namespace wlan::dsp

#include "dsp/simd.h"

#include <atomic>

namespace wlan::dsp::simd {

namespace {
std::atomic<bool> g_vector_enabled{compiled_isa() != Isa::kScalar};
}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kSse2:
      return "sse2";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
  }
  return "unknown";
}

bool vector_enabled() noexcept {
  return g_vector_enabled.load(std::memory_order_relaxed);
}

void set_vector_enabled(bool enabled) noexcept {
  // A scalar build has no vector path to enable; keep the flag honest so
  // callers can branch on it without re-checking compiled_isa().
  g_vector_enabled.store(enabled && compiled_isa() != Isa::kScalar,
                         std::memory_order_relaxed);
}

}  // namespace wlan::dsp::simd

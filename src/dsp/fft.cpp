#include "dsp/fft.h"

#include <array>
#include <bit>
#include <cmath>
#include <memory>
#include <numbers>
#include <utility>

#include "common/bits.h"
#include "common/check.h"
#include "obs/perf.h"
#include "obs/timer.h"

namespace wlan::dsp {

bool is_power_of_two(std::size_t n) { return n > 0 && (n & (n - 1)) == 0; }

FftPlan::FftPlan(std::size_t n) : n_(n) {
  check(is_power_of_two(n), "FFT size must be a power of two");
  int log2n = 0;
  while ((std::size_t{1} << log2n) < n) ++log2n;

  swaps_.reserve(n / 2);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j =
        wlan::reverse_bits(static_cast<std::uint32_t>(i), log2n);
    if (j > i) swaps_.push_back((i << 32) | j);
  }

  twiddles_.reserve(n > 1 ? n - 1 : 0);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double step = -2.0 * std::numbers::pi / static_cast<double>(len);
    for (std::size_t k = 0; k < len / 2; ++k) {
      twiddles_.push_back(std::polar(1.0, step * static_cast<double>(k)));
    }
  }
}

void FftPlan::transform(std::span<Cplx> x, bool inverse) const {
  const obs::ScopedTimer timer(obs::kernel_histogram(obs::Kernel::kFft));
  const obs::perf::ScopedSpan span("fft");
  check(x.size() == n_, "FftPlan size mismatch");

  for (const std::uint64_t packed : swaps_) {
    std::swap(x[packed >> 32], x[packed & 0xFFFFFFFFu]);
  }

  // Butterflies on unpacked doubles: std::complex operator* carries
  // NaN-recovery fixup branches that block vectorization; the twiddles
  // are unit-magnitude by construction, so the textbook formula is safe.
  const Cplx* tw = twiddles_.data();
  const double conj_sign = inverse ? -1.0 : 1.0;
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < n_; i += len) {
      Cplx* lo = x.data() + i;
      Cplx* hi = lo + half;
      for (std::size_t k = 0; k < half; ++k) {
        const double wr = tw[k].real();
        const double wi = conj_sign * tw[k].imag();
        const double hr = hi[k].real();
        const double hj = hi[k].imag();
        const double vr = hr * wr - hj * wi;
        const double vi = hr * wi + hj * wr;
        const double ur = lo[k].real();
        const double uj = lo[k].imag();
        lo[k] = Cplx(ur + vr, uj + vi);
        hi[k] = Cplx(ur - vr, uj - vi);
      }
    }
    tw += half;
  }
}

void FftPlan::forward(std::span<Cplx> x) const { transform(x, false); }

void FftPlan::inverse(std::span<Cplx> x) const {
  transform(x, true);
  const double inv = 1.0 / static_cast<double>(n_);
  for (auto& v : x) v *= inv;
}

const FftPlan& plan_for(std::size_t n) {
  check(is_power_of_two(n), "FFT size must be a power of two");
  // One slot per log2 size; thread-local so parallel sweeps never
  // contend (plans are tiny next to the transforms they accelerate).
  static thread_local std::array<std::unique_ptr<FftPlan>, 64> cache;
  const auto slot = static_cast<std::size_t>(std::countr_zero(n));
  if (!cache[slot]) cache[slot] = std::make_unique<FftPlan>(n);
  return *cache[slot];
}

void fft_inplace(std::span<Cplx> x) { plan_for(x.size()).forward(x); }

void ifft_inplace(std::span<Cplx> x) { plan_for(x.size()).inverse(x); }

CVec fft(CVec x) {
  fft_inplace(x);
  return x;
}

CVec ifft(CVec x) {
  ifft_inplace(x);
  return x;
}

}  // namespace wlan::dsp

#include "dsp/fft.h"

#include <cmath>
#include <numbers>
#include <utility>

#include "common/bits.h"
#include "common/check.h"
#include "obs/timer.h"

namespace wlan::dsp {
namespace {

// Iterative Cooley-Tukey; direction +1 for forward (e^{-j...}), -1 inverse.
void transform(CVec& x, int direction) {
  const obs::ScopedTimer timer(obs::kernel_histogram(obs::Kernel::kFft));
  const std::size_t n = x.size();
  check(is_power_of_two(n), "FFT size must be a power of two");
  int log2n = 0;
  while ((std::size_t{1} << log2n) < n) ++log2n;

  // Bit-reversal permutation.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = wlan::reverse_bits(static_cast<std::uint32_t>(i), log2n);
    if (j > i) std::swap(x[i], x[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        -2.0 * std::numbers::pi / static_cast<double>(len) * direction;
    const Cplx wlen{std::cos(angle), std::sin(angle)};
    for (std::size_t i = 0; i < n; i += len) {
      Cplx w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Cplx u = x[i + k];
        const Cplx v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

}  // namespace

bool is_power_of_two(std::size_t n) { return n > 0 && (n & (n - 1)) == 0; }

void fft_inplace(CVec& x) { transform(x, +1); }

void ifft_inplace(CVec& x) {
  transform(x, -1);
  const double inv = 1.0 / static_cast<double>(x.size());
  for (auto& v : x) v *= inv;
}

CVec fft(CVec x) {
  fft_inplace(x);
  return x;
}

CVec ifft(CVec x) {
  ifft_inplace(x);
  return x;
}

}  // namespace wlan::dsp

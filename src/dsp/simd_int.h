// Saturating int16 SIMD layer for the quantized decoder fast paths.
//
// `I16Vec` mirrors dsp/simd.h's DVec design for 16-bit signed lanes:
// AVX2 (16 lanes), SSE2 or NEON (8 lanes), or a scalar stand-in
// (1 lane). Unlike the double layer there is no bitwise-vs-double
// contract — the quantized Viterbi/LDPC paths are gated on PER deltas,
// not equality — but the *integer* semantics are exact and identical
// between the vector paths and the scalar stand-in (dsp/saturate.h
// defines the reference behaviour, including the INT16_MIN corners), so
// quantized results are still deterministic across ISAs and lane
// counts.
//
// Run-time dispatch is shared with the double layer: kernels consult
// `simd::vector_enabled()` once per call and otherwise run the scalar
// reference loop built on dsp/saturate.h.
#pragma once

#include <cstddef>
#include <cstdint>

#include "dsp/saturate.h"
#include "dsp/simd.h"

namespace wlan::dsp::simd {

#if defined(HOLTWLAN_SIMD_AVX2)

struct I16Vec {
  __m256i v;
  static constexpr std::size_t width() { return 16; }

  static I16Vec load(const std::int16_t* p) {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  static I16Vec splat(std::int16_t x) { return {_mm256_set1_epi16(x)}; }
  void store(std::int16_t* p) const {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
};

inline I16Vec sat_add(I16Vec a, I16Vec b) {
  return {_mm256_adds_epi16(a.v, b.v)};
}
inline I16Vec sat_sub(I16Vec a, I16Vec b) {
  return {_mm256_subs_epi16(a.v, b.v)};
}
inline I16Vec min_i16(I16Vec a, I16Vec b) {
  return {_mm256_min_epi16(a.v, b.v)};
}
inline I16Vec max_i16(I16Vec a, I16Vec b) {
  return {_mm256_max_epi16(a.v, b.v)};
}
/// max(a, 0 -sat a): |INT16_MIN| saturates to INT16_MAX (saturate.h).
inline I16Vec sat_abs(I16Vec a) {
  return {_mm256_max_epi16(a.v, _mm256_subs_epi16(_mm256_setzero_si256(),
                                                  a.v))};
}
/// (a * b + 0x4000) >> 15 per lane (PMULHRSW == dsp::mulhrs_i16 for the
/// decoder's operand range).
inline I16Vec mulhrs(I16Vec a, I16Vec b) {
  return {_mm256_mulhrs_epi16(a.v, b.v)};
}
/// All-ones lanes where a > b, zero lanes elsewhere.
inline I16Vec cmp_gt(I16Vec a, I16Vec b) {
  return {_mm256_cmpgt_epi16(a.v, b.v)};
}
/// (mask lane != 0) ? c : d; mask must be a cmp_gt-style lane mask.
inline I16Vec blend(I16Vec mask, I16Vec c, I16Vec d) {
  return {_mm256_blendv_epi8(d.v, c.v, mask.v)};
}
inline I16Vec bit_xor(I16Vec a, I16Vec b) {
  return {_mm256_xor_si256(a.v, b.v)};
}
/// Bit l set iff lane l of `mask` (a cmp_gt result) is all-ones.
inline std::uint32_t mask_bits(I16Vec mask) {
  std::uint32_t x =
      (static_cast<std::uint32_t>(_mm256_movemask_epi8(mask.v)) >> 1) &
      0x55555555u;
  x = (x | (x >> 1)) & 0x33333333u;
  x = (x | (x >> 2)) & 0x0F0F0F0Fu;
  x = (x | (x >> 4)) & 0x00FF00FFu;
  x = (x | (x >> 8)) & 0x0000FFFFu;
  return x;
}

#elif defined(HOLTWLAN_SIMD_SSE2)

struct I16Vec {
  __m128i v;
  static constexpr std::size_t width() { return 8; }

  static I16Vec load(const std::int16_t* p) {
    return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
  }
  static I16Vec splat(std::int16_t x) { return {_mm_set1_epi16(x)}; }
  void store(std::int16_t* p) const {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }
};

inline I16Vec sat_add(I16Vec a, I16Vec b) { return {_mm_adds_epi16(a.v, b.v)}; }
inline I16Vec sat_sub(I16Vec a, I16Vec b) { return {_mm_subs_epi16(a.v, b.v)}; }
inline I16Vec min_i16(I16Vec a, I16Vec b) { return {_mm_min_epi16(a.v, b.v)}; }
inline I16Vec max_i16(I16Vec a, I16Vec b) { return {_mm_max_epi16(a.v, b.v)}; }
inline I16Vec sat_abs(I16Vec a) {
  return {_mm_max_epi16(a.v, _mm_subs_epi16(_mm_setzero_si128(), a.v))};
}
inline I16Vec mulhrs(I16Vec a, I16Vec b) {
#if defined(__SSSE3__)
  return {_mm_mulhrs_epi16(a.v, b.v)};
#else
  // Plain SSE2 has no PMULHRSW; compose it from the 16x16 high/low
  // multiplies: (a*b + 0x4000) >> 15 with the 32-bit product rebuilt
  // from mulhi/mullo.
  const __m128i lo = _mm_mullo_epi16(a.v, b.v);
  const __m128i hi = _mm_mulhi_epi16(a.v, b.v);
  const __m128i p0 = _mm_unpacklo_epi16(lo, hi);
  const __m128i p1 = _mm_unpackhi_epi16(lo, hi);
  const __m128i r = _mm_set1_epi32(0x4000);
  const __m128i q0 = _mm_srai_epi32(_mm_add_epi32(p0, r), 15);
  const __m128i q1 = _mm_srai_epi32(_mm_add_epi32(p1, r), 15);
  return {_mm_packs_epi32(q0, q1)};
#endif
}
inline I16Vec cmp_gt(I16Vec a, I16Vec b) { return {_mm_cmpgt_epi16(a.v, b.v)}; }
inline I16Vec blend(I16Vec mask, I16Vec c, I16Vec d) {
  return {_mm_or_si128(_mm_and_si128(mask.v, c.v),
                       _mm_andnot_si128(mask.v, d.v))};
}
inline I16Vec bit_xor(I16Vec a, I16Vec b) { return {_mm_xor_si128(a.v, b.v)}; }
inline std::uint32_t mask_bits(I16Vec mask) {
  std::uint32_t x =
      (static_cast<std::uint32_t>(_mm_movemask_epi8(mask.v)) >> 1) &
      0x5555u;
  x = (x | (x >> 1)) & 0x3333u;
  x = (x | (x >> 2)) & 0x0F0Fu;
  x = (x | (x >> 4)) & 0x00FFu;
  return x;
}

#elif defined(HOLTWLAN_SIMD_NEON)

struct I16Vec {
  int16x8_t v;
  static constexpr std::size_t width() { return 8; }

  static I16Vec load(const std::int16_t* p) { return {vld1q_s16(p)}; }
  static I16Vec splat(std::int16_t x) { return {vdupq_n_s16(x)}; }
  void store(std::int16_t* p) const { vst1q_s16(p, v); }
};

inline I16Vec sat_add(I16Vec a, I16Vec b) { return {vqaddq_s16(a.v, b.v)}; }
inline I16Vec sat_sub(I16Vec a, I16Vec b) { return {vqsubq_s16(a.v, b.v)}; }
inline I16Vec min_i16(I16Vec a, I16Vec b) { return {vminq_s16(a.v, b.v)}; }
inline I16Vec max_i16(I16Vec a, I16Vec b) { return {vmaxq_s16(a.v, b.v)}; }
inline I16Vec sat_abs(I16Vec a) {
  return {vmaxq_s16(a.v, vqsubq_s16(vdupq_n_s16(0), a.v))};
}
inline I16Vec mulhrs(I16Vec a, I16Vec b) {
  // VQRDMULH computes sat((2ab + 2^15) >> 16) == (ab + 2^14) >> 15 for
  // every operand pair except a == b == INT16_MIN, which the decoders
  // never produce (magnitudes are clamped well below the limit).
  return {vqrdmulhq_s16(a.v, b.v)};
}
inline I16Vec cmp_gt(I16Vec a, I16Vec b) {
  return {vreinterpretq_s16_u16(vcgtq_s16(a.v, b.v))};
}
inline I16Vec blend(I16Vec mask, I16Vec c, I16Vec d) {
  return {vbslq_s16(vreinterpretq_u16_s16(mask.v), c.v, d.v)};
}
inline I16Vec bit_xor(I16Vec a, I16Vec b) { return {veorq_s16(a.v, b.v)}; }
inline std::uint32_t mask_bits(I16Vec mask) {
  static const uint8_t kBit[8] = {1, 2, 4, 8, 16, 32, 64, 128};
  const uint8x8_t narrowed = vmovn_u16(vreinterpretq_u16_s16(mask.v));
  return vaddv_u8(vand_u8(narrowed, vld1_u8(kBit)));
}

#else  // scalar stand-in

struct I16Vec {
  std::int16_t v;
  static constexpr std::size_t width() { return 1; }

  static I16Vec load(const std::int16_t* p) { return {*p}; }
  static I16Vec splat(std::int16_t x) { return {x}; }
  void store(std::int16_t* p) const { *p = v; }
};

inline I16Vec sat_add(I16Vec a, I16Vec b) { return {sat_add_i16(a.v, b.v)}; }
inline I16Vec sat_sub(I16Vec a, I16Vec b) { return {sat_sub_i16(a.v, b.v)}; }
inline I16Vec min_i16(I16Vec a, I16Vec b) { return {a.v < b.v ? a.v : b.v}; }
inline I16Vec max_i16(I16Vec a, I16Vec b) { return {a.v > b.v ? a.v : b.v}; }
inline I16Vec sat_abs(I16Vec a) { return {sat_abs_i16(a.v)}; }
inline I16Vec mulhrs(I16Vec a, I16Vec b) { return {mulhrs_i16(a.v, b.v)}; }
inline I16Vec cmp_gt(I16Vec a, I16Vec b) {
  return {static_cast<std::int16_t>(a.v > b.v ? -1 : 0)};
}
inline I16Vec blend(I16Vec mask, I16Vec c, I16Vec d) {
  return {mask.v != 0 ? c.v : d.v};
}
inline I16Vec bit_xor(I16Vec a, I16Vec b) {
  return {static_cast<std::int16_t>(a.v ^ b.v)};
}
inline std::uint32_t mask_bits(I16Vec mask) { return mask.v != 0 ? 1u : 0u; }

#endif

inline constexpr std::size_t kI16Width = I16Vec::width();

}  // namespace wlan::dsp::simd

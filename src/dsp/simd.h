// Portable double-precision SIMD layer for the PHY hot kernels.
//
// One vector type, `DVec`, wraps the widest ISA the build enables:
// AVX2 (4 lanes), SSE2 or NEON (2 lanes), or a scalar stand-in
// (1 lane). The instruction set is picked at COMPILE time (HOLTWLAN_SIMD
// plus the compiler's target macros); whether a kernel uses the vector
// path at all is picked at RUN time, once per kernel call ("plan
// level"), via `vector_enabled()` — so one binary can run and compare
// both paths, which is how the bitwise-equality tests and the
// scalar-vs-SIMD micro-benches work.
//
// Determinism contract: every operation here maps to one IEEE-754
// double operation per lane (add/sub/mul/div/min/max, sign flips via
// XOR, compares, blends). Lanes never interact — no horizontal sums, no
// reassociation, no FMA (the build pins -ffp-contract=off) — so a
// vectorized kernel is bitwise identical to its scalar loop as long as
// it performs the same per-element arithmetic in any order. Kernels
// built on this layer are required to keep that property; the
// `test_simd` suite enforces it.
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(HOLTWLAN_SIMD) && defined(__AVX2__)
#define HOLTWLAN_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(HOLTWLAN_SIMD) && defined(__SSE2__)
#define HOLTWLAN_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(HOLTWLAN_SIMD) && defined(__ARM_NEON) && defined(__aarch64__)
#define HOLTWLAN_SIMD_NEON 1
#include <arm_neon.h>
#else
#define HOLTWLAN_SIMD_SCALAR 1
#endif

namespace wlan::dsp::simd {

/// The instruction set the binary was compiled for.
enum class Isa { kScalar, kSse2, kAvx2, kNeon };

constexpr Isa compiled_isa() {
#if defined(HOLTWLAN_SIMD_AVX2)
  return Isa::kAvx2;
#elif defined(HOLTWLAN_SIMD_SSE2)
  return Isa::kSse2;
#elif defined(HOLTWLAN_SIMD_NEON)
  return Isa::kNeon;
#else
  return Isa::kScalar;
#endif
}

const char* isa_name(Isa isa);

/// Run-time kernel dispatch: when false, every kernel takes its scalar
/// reference loop even in a SIMD build. Defaults to true when the build
/// has vector lanes. Plan-level granularity: kernels read this once per
/// call, never per element.
bool vector_enabled() noexcept;

/// Forces (or restores) the scalar reference path; used by the equality
/// tests and the micro-benches. Affects all threads.
void set_vector_enabled(bool enabled) noexcept;

// ---------------------------------------------------------------------------
// DVec: `width()` independent double lanes.
// ---------------------------------------------------------------------------

#if defined(HOLTWLAN_SIMD_AVX2)

struct DVec {
  __m256d v;
  static constexpr std::size_t width() { return 4; }

  static DVec load(const double* p) { return {_mm256_loadu_pd(p)}; }
  static DVec splat(double x) { return {_mm256_set1_pd(x)}; }
  void store(double* p) const { _mm256_storeu_pd(p, v); }

  friend DVec operator+(DVec a, DVec b) { return {_mm256_add_pd(a.v, b.v)}; }
  friend DVec operator-(DVec a, DVec b) { return {_mm256_sub_pd(a.v, b.v)}; }
  friend DVec operator*(DVec a, DVec b) { return {_mm256_mul_pd(a.v, b.v)}; }
  friend DVec operator/(DVec a, DVec b) { return {_mm256_div_pd(a.v, b.v)}; }
};

/// Lanewise (b < a) ? b : a — matches std::min(a, b) for non-NaN input.
inline DVec min_with(DVec a, DVec b) { return {_mm256_min_pd(b.v, a.v)}; }
/// Lanewise (a < b) ? b : a — matches std::max(a, b) for non-NaN input.
inline DVec max_with(DVec a, DVec b) { return {_mm256_max_pd(b.v, a.v)}; }
/// Lanewise |x| via sign-bit clear (exact).
inline DVec abs(DVec a) {
  return {_mm256_andnot_pd(_mm256_set1_pd(-0.0), a.v)};
}
/// Lanewise x with the sign bit flipped (exact negation).
inline DVec negate(DVec a) {
  return {_mm256_xor_pd(_mm256_set1_pd(-0.0), a.v)};
}
/// Lanewise (a > b) ? c : d, plus the mask bits of a > b.
inline DVec select_gt(DVec a, DVec b, DVec c, DVec d) {
  const __m256d m = _mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ);
  return {_mm256_blendv_pd(d.v, c.v, m)};
}
/// Bit i set iff lane i satisfies a > b (ordered, quiet).
inline unsigned mask_gt(DVec a, DVec b) {
  return static_cast<unsigned>(
      _mm256_movemask_pd(_mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ)));
}
/// Bit i set iff lane i satisfies a < b (ordered, quiet).
inline unsigned mask_lt(DVec a, DVec b) {
  return static_cast<unsigned>(
      _mm256_movemask_pd(_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)));
}
/// Lane w = base[idx[w]] — an exact elementwise load (no arithmetic).
inline DVec gather(const double* base, const std::uint32_t* idx) {
  return {_mm256_i32gather_pd(
      base, _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx)), 8)};
}

#elif defined(HOLTWLAN_SIMD_SSE2)

struct DVec {
  __m128d v;
  static constexpr std::size_t width() { return 2; }

  static DVec load(const double* p) { return {_mm_loadu_pd(p)}; }
  static DVec splat(double x) { return {_mm_set1_pd(x)}; }
  void store(double* p) const { _mm_storeu_pd(p, v); }

  friend DVec operator+(DVec a, DVec b) { return {_mm_add_pd(a.v, b.v)}; }
  friend DVec operator-(DVec a, DVec b) { return {_mm_sub_pd(a.v, b.v)}; }
  friend DVec operator*(DVec a, DVec b) { return {_mm_mul_pd(a.v, b.v)}; }
  friend DVec operator/(DVec a, DVec b) { return {_mm_div_pd(a.v, b.v)}; }
};

inline DVec min_with(DVec a, DVec b) { return {_mm_min_pd(b.v, a.v)}; }
inline DVec max_with(DVec a, DVec b) { return {_mm_max_pd(b.v, a.v)}; }
inline DVec abs(DVec a) {
  return {_mm_andnot_pd(_mm_set1_pd(-0.0), a.v)};
}
inline DVec negate(DVec a) {
  return {_mm_xor_pd(_mm_set1_pd(-0.0), a.v)};
}
inline DVec select_gt(DVec a, DVec b, DVec c, DVec d) {
  const __m128d m = _mm_cmpgt_pd(a.v, b.v);
  return {_mm_or_pd(_mm_and_pd(m, c.v), _mm_andnot_pd(m, d.v))};
}
inline unsigned mask_gt(DVec a, DVec b) {
  return static_cast<unsigned>(_mm_movemask_pd(_mm_cmpgt_pd(a.v, b.v)));
}
inline unsigned mask_lt(DVec a, DVec b) {
  return static_cast<unsigned>(_mm_movemask_pd(_mm_cmplt_pd(a.v, b.v)));
}
inline DVec gather(const double* base, const std::uint32_t* idx) {
  return {_mm_set_pd(base[idx[1]], base[idx[0]])};
}

#elif defined(HOLTWLAN_SIMD_NEON)

struct DVec {
  float64x2_t v;
  static constexpr std::size_t width() { return 2; }

  static DVec load(const double* p) { return {vld1q_f64(p)}; }
  static DVec splat(double x) { return {vdupq_n_f64(x)}; }
  void store(double* p) const { vst1q_f64(p, v); }

  friend DVec operator+(DVec a, DVec b) { return {vaddq_f64(a.v, b.v)}; }
  friend DVec operator-(DVec a, DVec b) { return {vsubq_f64(a.v, b.v)}; }
  friend DVec operator*(DVec a, DVec b) { return {vmulq_f64(a.v, b.v)}; }
  friend DVec operator/(DVec a, DVec b) { return {vdivq_f64(a.v, b.v)}; }
};

inline DVec min_with(DVec a, DVec b) {
  // (b < a) ? b : a, matching std::min's tie/ordering semantics.
  const uint64x2_t m = vcltq_f64(b.v, a.v);
  return {vbslq_f64(m, b.v, a.v)};
}
inline DVec max_with(DVec a, DVec b) {
  const uint64x2_t m = vcltq_f64(a.v, b.v);
  return {vbslq_f64(m, b.v, a.v)};
}
inline DVec abs(DVec a) { return {vabsq_f64(a.v)}; }
inline DVec negate(DVec a) { return {vnegq_f64(a.v)}; }
inline DVec select_gt(DVec a, DVec b, DVec c, DVec d) {
  return {vbslq_f64(vcgtq_f64(a.v, b.v), c.v, d.v)};
}
inline unsigned mask_gt(DVec a, DVec b) {
  const uint64x2_t m = vcgtq_f64(a.v, b.v);
  return static_cast<unsigned>((vgetq_lane_u64(m, 0) & 1u) |
                               ((vgetq_lane_u64(m, 1) & 1u) << 1));
}
inline unsigned mask_lt(DVec a, DVec b) {
  const uint64x2_t m = vcltq_f64(a.v, b.v);
  return static_cast<unsigned>((vgetq_lane_u64(m, 0) & 1u) |
                               ((vgetq_lane_u64(m, 1) & 1u) << 1));
}
inline DVec gather(const double* base, const std::uint32_t* idx) {
  float64x2_t r = vdupq_n_f64(base[idx[0]]);
  r = vsetq_lane_f64(base[idx[1]], r, 1);
  return {r};
}

#else  // scalar stand-in

struct DVec {
  double v;
  static constexpr std::size_t width() { return 1; }

  static DVec load(const double* p) { return {*p}; }
  static DVec splat(double x) { return {x}; }
  void store(double* p) const { *p = v; }

  friend DVec operator+(DVec a, DVec b) { return {a.v + b.v}; }
  friend DVec operator-(DVec a, DVec b) { return {a.v - b.v}; }
  friend DVec operator*(DVec a, DVec b) { return {a.v * b.v}; }
  friend DVec operator/(DVec a, DVec b) { return {a.v / b.v}; }
};

inline DVec min_with(DVec a, DVec b) { return {b.v < a.v ? b.v : a.v}; }
inline DVec max_with(DVec a, DVec b) { return {a.v < b.v ? b.v : a.v}; }
inline DVec abs(DVec a) { return {a.v < 0.0 ? -a.v : a.v}; }
inline DVec negate(DVec a) { return {-a.v}; }
inline DVec select_gt(DVec a, DVec b, DVec c, DVec d) {
  return {a.v > b.v ? c.v : d.v};
}
inline unsigned mask_gt(DVec a, DVec b) { return a.v > b.v ? 1u : 0u; }
inline unsigned mask_lt(DVec a, DVec b) { return a.v < b.v ? 1u : 0u; }
inline DVec gather(const double* base, const std::uint32_t* idx) {
  return {base[idx[0]]};
}

#endif

inline constexpr std::size_t kWidth = DVec::width();

}  // namespace wlan::dsp::simd

// Spectral estimation: Welch periodogram and derived measures.
//
// Used to verify the spectral claims of the early standards — CCK keeping
// a "DSSS like signature to other users of the unlicensed band", OFDM's
// brick-wall occupancy — directly from the transmitted waveforms.
#pragma once

#include <cstddef>
#include <span>

#include "common/types.h"

namespace wlan::dsp {

/// Welch power spectral density estimate with a Hann window and 50%
/// overlap. Returns `n_fft` bins of linear power, DC at bin 0 (use
/// fftshift-style indexing for plots). Input must be at least n_fft long.
RVec welch_psd(std::span<const Cplx> x, std::size_t n_fft);

/// Reorders a PSD so negative frequencies come first (bin 0 = -fs/2).
RVec fft_shift(std::span<const double> psd);

/// Fraction of total power inside |f| <= `fraction` * fs/2.
double power_within_band(std::span<const double> psd, double fraction);

/// Occupied bandwidth: the two-sided band (as a fraction of fs) holding
/// `containment` (e.g. 0.99) of the total power, growing symmetrically
/// from DC.
double occupied_bandwidth_fraction(std::span<const double> psd,
                                   double containment = 0.99);

/// Normalized spectral correlation between two PSDs (1 = identical
/// shape): sum(sqrt(a_i b_i)) / sqrt(sum a * sum b) — the Bhattacharyya
/// coefficient of the normalized spectra.
double spectral_similarity(std::span<const double> a, std::span<const double> b);

}  // namespace wlan::dsp

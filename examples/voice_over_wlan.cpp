// Voice over WLAN: why 802.11e EDCA exists.
//
// A VoIP stream (small frames, tight delay budget) shares an AP with
// saturated file transfers. Under plain DCF every queue contends equally
// and voice delay explodes; with EDCA's priority parameters voice keeps
// its ~milliseconds access delay no matter how many bulk stations pile
// on. This is the protocol-evolution direction the paper's closing
// section points at: the air interface needed more than raw rate.
#include <cstdio>
#include <vector>

#include "core/wlan.h"

int main() {
  using namespace wlan;
  using mac::AccessCategory;

  std::printf("VoIP stream vs N saturated bulk transfers (24 Mbps PHY)\n\n");
  std::printf("%8s | %14s %14s | %14s %14s\n", "bulk N", "DCF voice dly",
              "DCF voice Mb", "EDCA voice dly", "EDCA voice Mb");

  for (const int n_bulk : {1, 2, 4, 8}) {
    // "DCF": voice contends as best effort, same parameters as the bulk.
    mac::EdcaConfig cfg;
    cfg.duration_s = 4.0;
    std::vector<mac::EdcaStation> dcf;
    dcf.push_back({AccessCategory::kBestEffort, 160});  // G.711-ish frames
    for (int i = 0; i < n_bulk; ++i) {
      dcf.push_back({AccessCategory::kBestEffort, 1500});
    }
    Rng r1(42);
    const auto plain = mac::simulate_edca(cfg, dcf, r1);

    std::vector<mac::EdcaStation> edca = dcf;
    edca[0].category = AccessCategory::kVoice;
    Rng r2(42);
    const auto prio = mac::simulate_edca(cfg, edca, r2);

    std::printf("%8d | %11.1f ms %12.2f | %11.1f ms %12.2f\n", n_bulk,
                plain.stations[0].mean_access_delay_s * 1e3,
                plain.stations[0].throughput_mbps,
                prio.stations[0].mean_access_delay_s * 1e3,
                prio.stations[0].throughput_mbps);
  }

  std::printf("\nUnder plain DCF the voice queue's access delay and airtime\n"
              "share degrade with every added competitor; under EDCA both\n"
              "stay flat no matter how many bulk stations pile on — the\n"
              "jitter budget of a voice call depends on that flatness.\n");
  return 0;
}

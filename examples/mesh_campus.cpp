// Campus mesh scenario: one gateway, dozens of nodes over a large area.
//
// Shows the two mesh benefits the paper names: (1) the served area grows
// dramatically once nodes relay for each other, and (2) an airtime-aware
// routing metric ("sufficiently intelligent routing") beats both the
// direct link and naive min-hop routing in end-to-end throughput.
#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "core/wlan.h"

int main() {
  using namespace wlan;

  channel::PathLossModel pl;  // 5.2 GHz dual-slope
  Rng rng(42);
  const mesh::MeshNetwork net = mesh::MeshNetwork::random(rng, 50, 500.0, pl);

  std::printf("Campus mesh: 50 nodes over 500 m x 500 m, gateway at the "
              "center\n\n");

  const auto cov = net.coverage(0);
  std::printf("coverage from the gateway:\n");
  std::printf("  direct links only : %4.0f %% of nodes\n",
              100.0 * cov.direct_fraction);
  std::printf("  multi-hop mesh    : %4.0f %% of nodes\n\n",
              100.0 * cov.mesh_fraction);

  std::printf("routes from the gateway to each of the five farthest "
              "nodes:\n");
  std::printf("%6s %10s | %9s | %9s %5s | %9s %5s\n", "node", "dist(m)",
              "direct", "min-hop", "hops", "airtime", "hops");

  // Find the five farthest nodes.
  std::vector<std::pair<double, std::size_t>> far;
  for (std::size_t i = 1; i < net.size(); ++i) {
    far.push_back({mesh::distance(net.node(0), net.node(i)), i});
  }
  std::sort(far.rbegin(), far.rend());
  for (int k = 0; k < 5; ++k) {
    const std::size_t dst = far[static_cast<std::size_t>(k)].second;
    const auto direct = net.direct_route(0, dst);
    const auto hop = net.shortest_route(0, dst, mesh::MeshNetwork::Metric::kHopCount);
    const auto air = net.shortest_route(0, dst, mesh::MeshNetwork::Metric::kAirtime);
    std::printf("%6zu %10.0f | %7.1f M | %7.1f M %5zu | %7.1f M %5zu\n", dst,
                far[static_cast<std::size_t>(k)].first,
                direct.end_to_end_mbps, hop.end_to_end_mbps, hop.hops(),
                air.end_to_end_mbps, air.hops());
  }

  std::printf("\n(0 Mbps means unreachable. The airtime metric happily "
              "takes\n an extra hop when two fast links beat one slow "
              "one.)\n");
  return 0;
}

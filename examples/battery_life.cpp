// Battery-life scenario for a small-form-factor 802.11 device.
//
// The paper closes on power: protocols "make few concessions to issues of
// power management". This example quantifies the levers the library
// models: PSM doze scheduling, MIMO receive-chain switching, and
// beamforming transmit power control — expressed as the battery life of a
// 1200 mAh / 3.7 V device receiving light traffic.
#include <cstdio>
#include <vector>

#include "core/wlan.h"

int main() {
  using namespace wlan;

  const double battery_j = 1.2 * 3.7 * 3600.0;  // 1200 mAh at 3.7 V
  power::RadioPowerModel radio;

  std::printf("Small-form-factor device, 10 packets/s downlink, "
              "1200 mAh battery\n\n");

  Rng rng(11);
  mac::PsmConfig cfg;
  cfg.arrival_rate_pps = 10.0;
  cfg.duration_s = 60.0;

  struct Row {
    const char* name;
    double energy_j;
    double mean_delay_ms;
  };
  std::vector<Row> rows;

  cfg.psm_enabled = false;
  {
    const mac::PsmResult r = mac::simulate_psm(cfg, rng);
    rows.push_back({"always awake (CAM)", power::psm_energy_j(radio, r),
                    r.mean_delay_s * 1e3});
  }
  cfg.psm_enabled = true;
  {
    const mac::PsmResult r = mac::simulate_psm(cfg, rng);
    rows.push_back({"PSM, every beacon", power::psm_energy_j(radio, r),
                    r.mean_delay_s * 1e3});
  }
  cfg.listen_interval = 5;
  {
    const mac::PsmResult r = mac::simulate_psm(cfg, rng);
    rows.push_back({"PSM, listen interval 5", power::psm_energy_j(radio, r),
                    r.mean_delay_s * 1e3});
  }

  std::printf("%-24s %12s %14s %12s\n", "policy", "avg power", "battery life",
              "mean delay");
  for (const Row& row : rows) {
    const double watts = row.energy_j / cfg.duration_s;
    std::printf("%-24s %9.0f mW %11.1f h %9.1f ms\n", row.name, watts * 1e3,
                battery_j / watts / 3600.0, row.mean_delay_ms);
  }

  // MIMO listening cost and the chain-switching mitigation.
  std::printf("\n4x4 MIMO receive power at 5%% traffic duty cycle:\n");
  const double always = radio.rx_power_w(4, 4);
  const double switched = power::chain_switching_rx_power_w(radio, 4, 4, 0.05);
  std::printf("  all chains always on : %6.0f mW\n", always * 1e3);
  std::printf("  chain switching      : %6.0f mW (%.1fx less)\n",
              switched * 1e3, always / switched);

  // Beamforming as transmit power control.
  std::printf("\nclosed-loop beamforming as TX power control (same delivered "
              "SNR):\n");
  for (const std::size_t n_tx : {1u, 2u, 4u}) {
    const double out = power::beamforming_tx_power_dbm(15.0, n_tx);
    const double dc = radio.pa.dc_power_w(out, 9.0);
    std::printf("  %zu antennas: radiate %5.1f dBm -> PA draws %5.0f mW\n",
                n_tx, out, dc * 1e3);
  }
  return 0;
}

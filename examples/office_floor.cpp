// Office-floor scenario on the event-driven network simulator.
//
// An AP serves stations scattered over a floor; one distant pair cannot
// hear each other (hidden terminals). The example shows the uplink
// capacity split, the damage hidden nodes do, and what turning RTS/CTS on
// costs and buys — the MAC-layer reality behind the paper's PHY-rate
// story.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/wlan.h"

int main() {
  using namespace wlan;

  std::printf("Office floor: one AP, six stations, saturated uplink\n\n");

  // AP at the center; four nearby stations; two at opposite far corners
  // (hidden from each other, both in range of the AP).
  std::vector<net::NodeConfig> nodes(7);
  nodes[6].position = {0.0, 0.0};  // AP
  const double near = 12.0;
  for (int i = 0; i < 4; ++i) {
    const double angle = 1.5708 * i + 0.4;
    nodes[static_cast<std::size_t>(i)].position = {near * std::cos(angle),
                                                   near * std::sin(angle)};
  }
  nodes[4].position = {-50.0, 0.0};
  nodes[5].position = {50.0, 0.0};

  std::vector<net::Flow> flows;
  for (std::size_t i = 0; i < 6; ++i) flows.push_back({i, 6});

  net::NetworkConfig cfg;
  cfg.duration_s = 3.0;
  cfg.data_rate_mbps = 24.0;
  cfg.payload_bytes = 1000;

  for (const bool rts : {false, true}) {
    cfg.rts_cts = rts;
    Rng rng(2005);
    const auto r = net::simulate_network(cfg, nodes, flows, rng);
    std::printf("---- %s ----\n", rts ? "RTS/CTS enabled" : "basic CSMA/CA");
    std::printf("  aggregate throughput : %5.1f Mbps\n",
                r.aggregate_throughput_mbps);
    std::printf("  data frames lost     : %5.1f %%\n",
                100.0 * r.data_failure_rate());
    std::printf("  per-station goodput  :");
    for (std::size_t i = 0; i < flows.size(); ++i) {
      std::printf(" %4.1f", r.flows[i].throughput_mbps);
    }
    std::printf("  (last two are the far corners)\n\n");
  }

  std::printf("The far stations collide at the AP under basic CSMA because\n"
              "they cannot carrier-sense each other; RTS/CTS moves those\n"
              "collisions onto 20-byte frames and gives the corners their\n"
              "airtime back.\n");
  return 0;
}

// Quickstart: simulate an 802.11a/g link and print PER and goodput.
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/quickstart
#include <cstdio>

#include "core/wlan.h"

int main() {
  using namespace wlan;

  std::printf("holtwlan quickstart: 802.11a/g OFDM link over AWGN and "
              "multipath\n\n");

  // The generations the library implements (the paper's Table-in-prose).
  std::printf("%-16s %6s %9s %12s %10s\n", "standard", "year", "rate", "modulation",
              "bps/Hz");
  for (const StandardInfo& info : all_standards()) {
    std::printf("%-16s %6d %6.0f Mb %12s %10.1f\n", info.name.data(), info.year,
                info.max_rate_mbps, info.modulation.data(),
                info.spectral_efficiency_bps_hz());
  }

  // A 54 Mbps link, 1000-byte packets, swept over SNR.
  Rng rng(2005);
  std::printf("\n802.11a @ 54 Mbps, 1000-byte PSDUs, AWGN:\n");
  std::printf("%8s %10s %14s\n", "SNR(dB)", "PER", "goodput(Mbps)");
  for (const double snr_db : {16.0, 18.0, 20.0, 22.0, 24.0, 26.0}) {
    const LinkResult r =
        run_ofdm_link(phy::OfdmMcs::k54Mbps, 1000, 100, snr_db, rng);
    std::printf("%8.1f %10.3f %14.1f\n", snr_db, r.per(), r.goodput_mbps(54.0));
  }

  // The same link through a TGn-style office channel: the one-tap
  // equalizer trained on the long training field handles the multipath.
  std::printf("\nSame link, TGn office multipath (30 ns rms):\n");
  std::printf("%8s %10s %14s\n", "SNR(dB)", "PER", "goodput(Mbps)");
  for (const double snr_db : {20.0, 24.0, 28.0, 32.0}) {
    const LinkResult r = run_ofdm_link(
        phy::OfdmMcs::k54Mbps, 1000, 100, snr_db, rng,
        ChannelSpec::tdl(channel::DelayProfile::kOffice));
    std::printf("%8.1f %10.3f %14.1f\n", snr_db, r.per(), r.goodput_mbps(54.0));
  }

  std::printf("\nDone. See bench/ for the paper-claim reproductions "
              "(C1..C13).\n");
  return 0;
}

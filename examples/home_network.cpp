// Home-network scenario: a notebook moving away from its access point.
//
// For each generation (802.11b CCK, 802.11a/g OFDM, 802.11n 2x2 MIMO) the
// example picks the best MCS at each distance and reports the delivered
// goodput — the "rate vs range" tradeoff the paper's historical narrative
// is about. 802.11n's diversity keeps it on the rate ladder far beyond
// the SISO generations.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/wlan.h"

namespace {

using namespace wlan;

// Best CCK/DSSS goodput at a mean SNR (flat Rayleigh fading, 1000-byte
// packets mapped to modem bits).
double best_11b_goodput(double snr_db, Rng& rng) {
  struct Mode {
    phy::CckRate rate;
    double mbps;
  };
  double best = 0.0;
  for (const Mode mode : {Mode{phy::CckRate::k11Mbps, 11.0},
                          Mode{phy::CckRate::k5_5Mbps, 5.5}}) {
    const LinkResult r = run_cck_link(mode.rate, 2000, 40, snr_db, rng,
                                      ChannelSpec::flat_rayleigh());
    best = std::max(best, r.goodput_mbps(mode.mbps));
  }
  // Fall back to 2 Mbps DSSS if CCK is dead.
  const LinkResult r = run_dsss_link({phy::DsssRate::k2Mbps, true}, 2000, 40,
                                     snr_db, rng, {},
                                     ChannelSpec::flat_rayleigh());
  return std::max(best, r.goodput_mbps(2.0));
}

double best_11ag_goodput(double snr_db, Rng& rng) {
  double best = 0.0;
  for (const phy::OfdmMcs mcs : phy::kAllOfdmMcs) {
    const double rate = phy::ofdm_mcs_info(mcs).data_rate_mbps;
    if (rate <= best) continue;  // cannot beat current best
    const LinkResult r = run_ofdm_link(
        mcs, 1000, 40, snr_db, rng,
        ChannelSpec::tdl(channel::DelayProfile::kResidential));
    best = std::max(best, r.goodput_mbps(rate));
  }
  return best;
}

double best_11n_goodput(double snr_db, Rng& rng) {
  double best = 0.0;
  for (unsigned mcs = 8; mcs < 16; ++mcs) {  // 2-stream modes
    phy::HtConfig cfg;
    cfg.mcs = mcs;
    cfg.n_rx = 2;
    const phy::HtPhy phy(cfg);
    const double rate = phy.data_rate_mbps();
    if (rate <= best) continue;
    const LinkResult r = run_ht_link(cfg, 1000, 40, snr_db, rng,
                                     channel::DelayProfile::kResidential);
    best = std::max(best, r.goodput_mbps(rate));
  }
  // Below the 2-stream floor, drop to 1 stream with 2-branch MRC.
  for (unsigned mcs = 0; mcs < 4; ++mcs) {
    phy::HtConfig cfg;
    cfg.mcs = mcs;
    cfg.scheme = phy::SpatialScheme::kMrc;
    cfg.n_rx = 2;
    const phy::HtPhy phy(cfg);
    const double rate = phy.data_rate_mbps();
    if (rate <= best) continue;
    const LinkResult r = run_ht_link(cfg, 1000, 40, snr_db, rng,
                                     channel::DelayProfile::kResidential);
    best = std::max(best, r.goodput_mbps(rate));
  }
  return best;
}

}  // namespace

int main() {
  using namespace wlan;
  std::printf("Home network: notebook vs distance from the AP\n");
  std::printf("(17 dBm TX, 2.4/5 GHz dual-slope path loss, residential "
              "multipath)\n\n");

  channel::PathLossModel pl24;
  pl24.carrier_hz = 2.4e9;
  channel::PathLossModel pl52;  // defaults to 5.2 GHz

  Rng rng(7);
  std::printf("%10s | %14s %14s %14s\n", "dist (m)", "11b (Mbps)",
              "11a/g (Mbps)", "11n 2x2 (Mbps)");
  for (const double d : {3.0, 8.0, 15.0, 25.0, 40.0, 60.0}) {
    const double snr_24 = snr_at_distance_db(pl24, d, 17.0, 20e6);
    const double snr_52 = snr_at_distance_db(pl52, d, 17.0, 20e6);
    const double t_11b = best_11b_goodput(snr_24, rng);
    const double t_11ag = best_11ag_goodput(snr_52, rng);
    const double t_11n = best_11n_goodput(snr_52, rng);
    std::printf("%10.0f | %14.1f %14.1f %14.1f\n", d, t_11b, t_11ag, t_11n);
  }

  std::printf("\nNote how each generation multiplies peak rate near the AP,\n"
              "and how 11n's spatial diversity holds the link together at\n"
              "distances where the SISO OFDM link has already collapsed.\n");
  return 0;
}

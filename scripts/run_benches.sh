#!/usr/bin/env bash
# Builds the Release tree, runs every claim bench (C1-C13 plus the
# extensions) with --json, and aggregates the per-bench reports into
# bench-out/BENCH_PR.json. Exits nonzero if any bench reports MISMATCH
# (a bench that crashes or fails to produce a report also fails the run,
# as does a failing bench_kernels).
#
# Usage: scripts/run_benches.sh [build-dir] [out-dir] [--baseline [file]]
#                               [--only <bench,bench,...>] [--jobs <n>]
#                               [--batch <n>] [--quantized]
#                               [--latency] [--profile] [--util-floor <f>]
#                               [--overlap-grid <n>]
#
#   --baseline [file]  After the run, gate the aggregate report against
#                      the committed baseline (default
#                      bench-out/BENCH_BASELINE.json) with bench_diff;
#                      metric drift beyond tolerance fails the script.
#   --only a,b,c       Run only the named benches. The aggregate then
#                      covers a subset, so the baseline gate runs in
#                      --subset mode (missing benches don't fail).
#   --jobs <n>         Worker lanes for each claim bench's Monte-Carlo
#                      pool (forwarded as the bench's --jobs). Results
#                      are thread-count independent; only wall time
#                      changes. Default: the bench's own default
#                      (hardware_concurrency).
#   --batch <n>        Forward --batch <n> to every bench: benches with a
#                      trial-batched runner (C4, C7) push n trials in
#                      SIMD lockstep per Monte-Carlo group — bitwise
#                      identical results, lower wall time. Benches
#                      without a batched path ignore the flag.
#   --quantized        Forward --quantized (only meaningful with
#                      --batch): C4/C7 re-run every sweep cell on the
#                      int16 Viterbi/min-sum decoders from a paired seed
#                      and report quantized_per_delta_max — gate it with
#                      --baseline bench-out/BENCH_BASELINE_BATCH.json.
#   --latency          Forward --latency to every bench: simulator
#                      benches add frame-lifecycle books (delay
#                      percentiles, time series, invariant audit) to
#                      their reports.
#   --profile          Forward --profile to every bench: each writes its
#                      span flamegraph as collapsed stacks to
#                      <out>/<bench>.folded and a "spans" section into
#                      its report.
#   --util-floor <f>   Pool-utilization floor for the summary table
#                      (default 0.10): a bench that ran pool tasks but
#                      kept the lanes busy less than this fraction of
#                      lanes x wall gets a WARN line (informational; the
#                      exit code is unaffected).
#   --overlap-grid <n> Building-grid side for the bench_city_overlap
#                      pseudo-bench (the bench_city binary run with
#                      --overlap <n>; default 32 = the full 102,400-node
#                      bordered city). CI smoke passes a small grid; the
#                      resulting EXT-CITY-OVERLAP-SMOKE report is not
#                      pinned by the baseline.
#
# After the per-bench runs the script prints a summary table (verdict,
# jobs, wall seconds, pool utilization, lane imbalance per bench) and a
# kernel-share table (seconds inside each hot kernel per wall second,
# from the kernel_share.* metrics).
#
# Independent of the verdicts, any bench whose report shows a nonzero
# "sink_dropped" (a trace sink lost events, so trace-derived metrics are
# skewed) or a nonzero "lifecycle_breaches" metric (the invariant
# auditor caught a conservation violation) is counted as a MISMATCH.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"

BENCHES=(
  bench_c1_generations
  bench_c2_processing_gain
  bench_c3_cck
  bench_c4_ofdm
  bench_c5_mimo_rate
  bench_c6_mimo_range
  bench_c7_ldpc
  bench_c8_beamforming
  bench_c9_mesh
  bench_c10_coop
  bench_c11_papr
  bench_c12_power
  bench_c13_psm
  bench_rate_adaptation
  bench_hidden_terminal
  bench_ablations
  bench_abstraction
  bench_multibss
  bench_city
  bench_city_overlap
)

# Pseudo-benches share a binary with a sibling; map name -> binary.
bin_of() {
  case "$1" in
    bench_city_overlap) echo bench_city ;;
    *) echo "$1" ;;
  esac
}

BUILD=""
OUT=""
BASELINE=""
ONLY=""
JOBS=""
BATCH=""
QUANTIZED=""
LATENCY=""
PROFILE=""
UTIL_FLOOR="0.10"
OVERLAP_GRID="32"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --baseline)
      BASELINE="__default__"
      if [[ $# -gt 1 && "${2#-}" == "$2" && "$2" == *.json ]]; then
        BASELINE="$2"
        shift
      fi
      ;;
    --only)
      [[ $# -gt 1 ]] || { echo "--only needs a bench list" >&2; exit 2; }
      ONLY="$2"
      shift
      ;;
    --jobs)
      [[ $# -gt 1 ]] || { echo "--jobs needs a count" >&2; exit 2; }
      JOBS="$2"
      shift
      ;;
    --batch)
      [[ $# -gt 1 ]] || { echo "--batch needs a lane count" >&2; exit 2; }
      BATCH="$2"
      shift
      ;;
    --quantized)
      QUANTIZED=1
      ;;
    --latency)
      LATENCY=1
      ;;
    --profile)
      PROFILE=1
      ;;
    --util-floor)
      [[ $# -gt 1 ]] || { echo "--util-floor needs a value" >&2; exit 2; }
      UTIL_FLOOR="$2"
      shift
      ;;
    --overlap-grid)
      [[ $# -gt 1 ]] || { echo "--overlap-grid needs a size" >&2; exit 2; }
      OVERLAP_GRID="$2"
      shift
      ;;
    -*)
      echo "unknown flag: $1" >&2
      exit 2
      ;;
    *)
      if [[ -z "$BUILD" ]]; then BUILD="$1"
      elif [[ -z "$OUT" ]]; then OUT="$1"
      else echo "unexpected argument: $1" >&2; exit 2
      fi
      ;;
  esac
  shift
done
BUILD="${BUILD:-$ROOT/build-bench}"
OUT="${OUT:-$ROOT/bench-out}"
[[ "$BASELINE" == "__default__" ]] && BASELINE="$OUT/BENCH_BASELINE.json"

if [[ -n "$ONLY" ]]; then
  IFS=',' read -r -a selected <<< "$ONLY"
  for b in "${selected[@]}"; do
    case " ${BENCHES[*]} " in
      *" $b "*) ;;
      *) echo "unknown bench: $b" >&2; exit 2 ;;
    esac
  done
  BENCHES=("${selected[@]}")
fi

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release || exit 1
targets=()
for b in "${BENCHES[@]}"; do
  t="$(bin_of "$b")"
  case " ${targets[*]-} " in
    *" $t "*) ;;
    *) targets+=("$t") ;;
  esac
done
cmake --build "$BUILD" -j "$(nproc)" --target "${targets[@]}" bench_kernels \
  bench_diff || exit 1

mkdir -p "$OUT"
failures=0
mismatches=0
summary_rows=()
kernel_rows=()

# First match of a numeric JSON field in $1's report (empty if absent).
json_field() {
  grep -o "\"$2\":[0-9.eE+-]*" "$1" | head -1 | cut -d: -f2
}

for bench in "${BENCHES[@]}"; do
  json="$OUT/$bench.json"
  log="$OUT/$bench.log"
  # Delete the previous run's report first: a crashing bench must not
  # pass the size check below on stale output.
  rm -f "$json"
  echo "== $bench"
  bench_args=(--json "$json")
  [[ -n "$JOBS" ]] && bench_args+=(--jobs "$JOBS")
  [[ -n "$BATCH" ]] && bench_args+=(--batch "$BATCH")
  [[ -n "$QUANTIZED" ]] && bench_args+=(--quantized)
  [[ -n "$LATENCY" ]] && bench_args+=(--latency)
  [[ -n "$PROFILE" ]] && bench_args+=(--profile "$OUT/$bench.folded")
  [[ "$bench" == bench_city_overlap ]] && bench_args+=(--overlap "$OVERLAP_GRID")
  start_s=$(date +%s.%N)
  "$BUILD/bench/$(bin_of "$bench")" "${bench_args[@]}" > "$log" 2>&1
  status=$?
  wall_s=$(echo "$(date +%s.%N) $start_s" | awk '{printf "%.2f", $1 - $2}')
  if [[ ! -s "$json" ]]; then
    echo "   FAILED: no report written (exit $status); see $log"
    failures=$((failures + 1))
    summary_rows+=("$(printf '%-26s %-9s' "$bench" FAILED)")
    continue
  fi
  if grep -q '"verdict":"MISMATCH"' "$json"; then
    verdict=MISMATCH
    echo "   MISMATCH (exit $status, ${wall_s}s)"
    mismatches=$((mismatches + 1))
  elif grep -q '"sink_dropped":[1-9]' "$json"; then
    verdict=MISMATCH
    echo "   MISMATCH: trace sink dropped events (exit $status, ${wall_s}s)"
    mismatches=$((mismatches + 1))
  elif grep -Eq '"lifecycle_breaches":(0*[1-9]|[0-9]*\.[0-9]*[1-9])' "$json"; then
    verdict=MISMATCH
    echo "   MISMATCH: invariant auditor breach (exit $status, ${wall_s}s)"
    mismatches=$((mismatches + 1))
  else
    verdict=ok
    echo "   ok (exit $status, ${wall_s}s)"
  fi
  # Summary-table vitals from the report ("par" is present whenever the
  # bench ran with --json; tasks==0 means the pool never engaged).
  jobs=$(json_field "$json" jobs)
  util=$(json_field "$json" utilization)
  imb=$(json_field "$json" imbalance)
  tasks=$(json_field "$json" tasks)
  warn=""
  if [[ -n "$util" && -n "$tasks" && "$tasks" -gt 0 ]]; then
    util=$(awk -v u="$util" 'BEGIN{printf "%.3f", u}')
    imb=$(awk -v i="$imb" 'BEGIN{printf "%.2f", i}')
    if awk -v u="$util" -v f="$UTIL_FLOOR" 'BEGIN{exit !(u < f)}'; then
      warn="WARN util<$UTIL_FLOOR"
      echo "   WARN: pool utilization $util below floor $UTIL_FLOOR"
    fi
  else
    util="-"
    imb="-"
  fi
  if [[ "$bench" == bench_city_overlap ]]; then
    # Border-exchange vitals: routed messages are deterministic; epoch
    # utilization/imbalance and the speedup are wall-clock ("info").
    b_msgs=$(json_field "$json" border_messages)
    b_util=$(json_field "$json" epoch_utilization)
    b_imb=$(json_field "$json" epoch_imbalance)
    b_speedup=$(json_field "$json" speedup_8v1)
    b_par=$(json_field "$json" epoch_parallelism)
    echo "   border: ${b_msgs:-?} msgs," \
         "epoch util $(awk -v u="${b_util:-0}" 'BEGIN{printf "%.2f", u}')," \
         "imbalance $(awk -v i="${b_imb:-0}" 'BEGIN{printf "%.2f", i}')," \
         "speedup $(awk -v s="${b_speedup:-0}" 'BEGIN{printf "%.2f", s}')x," \
         "schedule parallelism" \
         "$(awk -v p="${b_par:-0}" 'BEGIN{printf "%.1f", p}')x"
  fi
  summary_rows+=("$(printf '%-26s %-9s %5s %9s %6s %6s  %s' \
      "$bench" "$verdict" "${jobs:--}" "$wall_s" "$util" "$imb" "$warn")")
  shares=$(grep -o '"kernel_share\.[a-z_]*":[0-9.eE+-]*' "$json" |
           sed 's/"kernel_share\.//; s/":/=/' |
           awk '{printf "%s ", $0}')
  [[ -n "$shares" ]] && kernel_rows+=("$(printf '%-26s %s' "$bench" "$shares")")
done

# Kernel microbenchmarks via google-benchmark's native JSON reporter.
echo "== bench_kernels"
rm -f "$OUT/bench_kernels.json"
if ! "$BUILD/bench/bench_kernels" \
    --benchmark_out="$OUT/bench_kernels.json" \
    --benchmark_out_format=json > "$OUT/bench_kernels.log" 2>&1; then
  echo "   FAILED (see $OUT/bench_kernels.log)"
  failures=$((failures + 1))
fi

# Aggregate: one JSON array of the per-bench report objects.
agg="$OUT/BENCH_PR.json"
{
  echo '{"schema":"holtwlan-bench-aggregate-v1","reports":['
  first=1
  for bench in "${BENCHES[@]}"; do
    json="$OUT/$bench.json"
    [[ -s "$json" ]] || continue
    [[ $first -eq 1 ]] || echo ','
    first=0
    cat "$json"
  done
  echo ']}'
} > "$agg"

echo
echo "aggregate report: $agg"

echo
echo "== summary"
printf '%-26s %-9s %5s %9s %6s %6s\n' bench verdict jobs wall_s util imbal
for row in "${summary_rows[@]}"; do echo "$row"; done
if [[ ${#kernel_rows[@]} -gt 0 ]]; then
  echo
  echo "== kernel share (kernel seconds per wall second, summed over lanes)"
  for row in "${kernel_rows[@]}"; do echo "$row"; done
fi

if [[ -n "$BASELINE" ]]; then
  echo "== bench_diff against $BASELINE"
  if [[ ! -s "$BASELINE" ]]; then
    echo "   FAILED: baseline not found"
    failures=$((failures + 1))
  else
    diff_args=("$agg" "$BASELINE")
    [[ -n "$ONLY" ]] && diff_args+=(--subset)
    if ! "$BUILD/bench/bench_diff" "${diff_args[@]}"; then
      echo "   REGRESSION vs baseline"
      failures=$((failures + 1))
    fi
  fi
fi

if [[ $failures -gt 0 || $mismatches -gt 0 ]]; then
  echo "RESULT: $mismatches mismatch(es), $failures failure(s)"
  exit 1
fi
echo "RESULT: all benches reproduced"

#!/usr/bin/env bash
# Builds the Release tree, runs every claim bench (C1-C13 plus the
# extensions) with --json, and aggregates the per-bench reports into
# bench-out/BENCH_PR.json. Exits nonzero if any bench reports MISMATCH
# (a bench that crashes or fails to produce a report also fails the run).
#
# Usage: scripts/run_benches.sh [build-dir] [out-dir]
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-bench}"
OUT="${2:-$ROOT/bench-out}"

BENCHES=(
  bench_c1_generations
  bench_c2_processing_gain
  bench_c3_cck
  bench_c4_ofdm
  bench_c5_mimo_rate
  bench_c6_mimo_range
  bench_c7_ldpc
  bench_c8_beamforming
  bench_c9_mesh
  bench_c10_coop
  bench_c11_papr
  bench_c12_power
  bench_c13_psm
  bench_rate_adaptation
  bench_hidden_terminal
  bench_ablations
)

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release || exit 1
cmake --build "$BUILD" -j "$(nproc)" --target "${BENCHES[@]}" bench_kernels \
  || exit 1

mkdir -p "$OUT"
failures=0
mismatches=0

for bench in "${BENCHES[@]}"; do
  json="$OUT/$bench.json"
  log="$OUT/$bench.log"
  echo "== $bench"
  "$BUILD/bench/$bench" --json "$json" > "$log" 2>&1
  status=$?
  if [[ ! -s "$json" ]]; then
    echo "   FAILED: no report written (exit $status); see $log"
    failures=$((failures + 1))
    continue
  fi
  if grep -q '"verdict":"MISMATCH"' "$json"; then
    echo "   MISMATCH (exit $status)"
    mismatches=$((mismatches + 1))
  else
    echo "   ok (exit $status)"
  fi
done

# Kernel microbenchmarks via google-benchmark's native JSON reporter.
echo "== bench_kernels"
"$BUILD/bench/bench_kernels" \
  --benchmark_out="$OUT/bench_kernels.json" \
  --benchmark_out_format=json > "$OUT/bench_kernels.log" 2>&1 \
  || echo "   FAILED (see $OUT/bench_kernels.log)"

# Aggregate: one JSON array of the per-bench report objects.
agg="$OUT/BENCH_PR.json"
{
  echo '{"schema":"holtwlan-bench-aggregate-v1","reports":['
  first=1
  for bench in "${BENCHES[@]}"; do
    json="$OUT/$bench.json"
    [[ -s "$json" ]] || continue
    [[ $first -eq 1 ]] || echo ','
    first=0
    cat "$json"
  done
  echo ']}'
} > "$agg"

echo
echo "aggregate report: $agg"
if [[ $failures -gt 0 || $mismatches -gt 0 ]]; then
  echo "RESULT: $mismatches mismatch(es), $failures failure(s)"
  exit 1
fi
echo "RESULT: all benches reproduced"

file(REMOVE_RECURSE
  "CMakeFiles/test_fhss.dir/test_fhss.cpp.o"
  "CMakeFiles/test_fhss.dir/test_fhss.cpp.o.d"
  "test_fhss"
  "test_fhss.pdb"
  "test_fhss[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fhss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_fhss.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_ht.dir/test_ht.cpp.o"
  "CMakeFiles/test_ht.dir/test_ht.cpp.o.d"
  "test_ht"
  "test_ht.pdb"
  "test_ht[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

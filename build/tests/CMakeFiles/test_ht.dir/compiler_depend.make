# Empty compiler generated dependencies file for test_ht.
# This may be replaced when dependencies are built.

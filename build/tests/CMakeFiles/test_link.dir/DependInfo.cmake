
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_link.cpp" "tests/CMakeFiles/test_link.dir/test_link.cpp.o" "gcc" "tests/CMakeFiles/test_link.dir/test_link.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/wlan_core.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/wlan_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wlan_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/wlan_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/coop/CMakeFiles/wlan_coop.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/wlan_power.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/wlan_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/wlan_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/wlan_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/wlan_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wlan_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wlan_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

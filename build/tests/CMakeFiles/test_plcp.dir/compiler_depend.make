# Empty compiler generated dependencies file for test_plcp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_plcp.dir/test_plcp.cpp.o"
  "CMakeFiles/test_plcp.dir/test_plcp.cpp.o.d"
  "test_plcp"
  "test_plcp.pdb"
  "test_plcp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

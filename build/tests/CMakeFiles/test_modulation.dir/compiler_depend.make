# Empty compiler generated dependencies file for test_modulation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_dsss_cck.dir/test_dsss_cck.cpp.o"
  "CMakeFiles/test_dsss_cck.dir/test_dsss_cck.cpp.o.d"
  "test_dsss_cck"
  "test_dsss_cck.pdb"
  "test_dsss_cck[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsss_cck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_dsss_cck.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_doppler.
# This may be replaced when dependencies are built.

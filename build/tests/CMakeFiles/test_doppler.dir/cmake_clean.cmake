file(REMOVE_RECURSE
  "CMakeFiles/test_doppler.dir/test_doppler.cpp.o"
  "CMakeFiles/test_doppler.dir/test_doppler.cpp.o.d"
  "test_doppler"
  "test_doppler.pdb"
  "test_doppler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_doppler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_standards.dir/test_standards.cpp.o"
  "CMakeFiles/test_standards.dir/test_standards.cpp.o.d"
  "test_standards"
  "test_standards.pdb"
  "test_standards[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_standards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_standards.
# This may be replaced when dependencies are built.

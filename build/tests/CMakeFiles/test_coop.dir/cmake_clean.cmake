file(REMOVE_RECURSE
  "CMakeFiles/test_coop.dir/test_coop.cpp.o"
  "CMakeFiles/test_coop.dir/test_coop.cpp.o.d"
  "test_coop"
  "test_coop.pdb"
  "test_coop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

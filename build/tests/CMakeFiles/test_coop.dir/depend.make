# Empty dependencies file for test_coop.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_rate_adapt.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_rate_adapt.dir/test_rate_adapt.cpp.o"
  "CMakeFiles/test_rate_adapt.dir/test_rate_adapt.cpp.o.d"
  "test_rate_adapt"
  "test_rate_adapt.pdb"
  "test_rate_adapt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rate_adapt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_edca.dir/test_edca.cpp.o"
  "CMakeFiles/test_edca.dir/test_edca.cpp.o.d"
  "test_edca"
  "test_edca.pdb"
  "test_edca[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

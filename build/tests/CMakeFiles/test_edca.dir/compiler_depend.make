# Empty compiler generated dependencies file for test_edca.
# This may be replaced when dependencies are built.

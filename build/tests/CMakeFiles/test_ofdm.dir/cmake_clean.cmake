file(REMOVE_RECURSE
  "CMakeFiles/test_ofdm.dir/test_ofdm.cpp.o"
  "CMakeFiles/test_ofdm.dir/test_ofdm.cpp.o.d"
  "test_ofdm"
  "test_ofdm.pdb"
  "test_ofdm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ofdm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for voice_over_wlan.
# This may be replaced when dependencies are built.

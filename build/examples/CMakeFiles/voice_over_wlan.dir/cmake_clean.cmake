file(REMOVE_RECURSE
  "CMakeFiles/voice_over_wlan.dir/voice_over_wlan.cpp.o"
  "CMakeFiles/voice_over_wlan.dir/voice_over_wlan.cpp.o.d"
  "voice_over_wlan"
  "voice_over_wlan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voice_over_wlan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

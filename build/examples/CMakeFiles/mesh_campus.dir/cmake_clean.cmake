file(REMOVE_RECURSE
  "CMakeFiles/mesh_campus.dir/mesh_campus.cpp.o"
  "CMakeFiles/mesh_campus.dir/mesh_campus.cpp.o.d"
  "mesh_campus"
  "mesh_campus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_campus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for mesh_campus.
# This may be replaced when dependencies are built.

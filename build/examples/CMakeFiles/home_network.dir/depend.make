# Empty dependencies file for home_network.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/office_floor.dir/office_floor.cpp.o"
  "CMakeFiles/office_floor.dir/office_floor.cpp.o.d"
  "office_floor"
  "office_floor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/office_floor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_c11_papr.dir/bench_c11_papr.cpp.o"
  "CMakeFiles/bench_c11_papr.dir/bench_c11_papr.cpp.o.d"
  "bench_c11_papr"
  "bench_c11_papr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c11_papr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

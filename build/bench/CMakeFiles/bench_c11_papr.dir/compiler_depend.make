# Empty compiler generated dependencies file for bench_c11_papr.
# This may be replaced when dependencies are built.

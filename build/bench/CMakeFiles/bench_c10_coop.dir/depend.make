# Empty dependencies file for bench_c10_coop.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_c10_coop.dir/bench_c10_coop.cpp.o"
  "CMakeFiles/bench_c10_coop.dir/bench_c10_coop.cpp.o.d"
  "bench_c10_coop"
  "bench_c10_coop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c10_coop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

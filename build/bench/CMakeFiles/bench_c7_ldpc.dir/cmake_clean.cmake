file(REMOVE_RECURSE
  "CMakeFiles/bench_c7_ldpc.dir/bench_c7_ldpc.cpp.o"
  "CMakeFiles/bench_c7_ldpc.dir/bench_c7_ldpc.cpp.o.d"
  "bench_c7_ldpc"
  "bench_c7_ldpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c7_ldpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

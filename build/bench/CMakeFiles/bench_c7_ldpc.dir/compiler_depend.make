# Empty compiler generated dependencies file for bench_c7_ldpc.
# This may be replaced when dependencies are built.

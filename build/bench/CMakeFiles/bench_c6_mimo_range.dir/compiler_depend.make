# Empty compiler generated dependencies file for bench_c6_mimo_range.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_c6_mimo_range.dir/bench_c6_mimo_range.cpp.o"
  "CMakeFiles/bench_c6_mimo_range.dir/bench_c6_mimo_range.cpp.o.d"
  "bench_c6_mimo_range"
  "bench_c6_mimo_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c6_mimo_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

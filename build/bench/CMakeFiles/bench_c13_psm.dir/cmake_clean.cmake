file(REMOVE_RECURSE
  "CMakeFiles/bench_c13_psm.dir/bench_c13_psm.cpp.o"
  "CMakeFiles/bench_c13_psm.dir/bench_c13_psm.cpp.o.d"
  "bench_c13_psm"
  "bench_c13_psm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c13_psm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_c13_psm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_c12_power.dir/bench_c12_power.cpp.o"
  "CMakeFiles/bench_c12_power.dir/bench_c12_power.cpp.o.d"
  "bench_c12_power"
  "bench_c12_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c12_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

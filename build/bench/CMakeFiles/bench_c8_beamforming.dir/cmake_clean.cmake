file(REMOVE_RECURSE
  "CMakeFiles/bench_c8_beamforming.dir/bench_c8_beamforming.cpp.o"
  "CMakeFiles/bench_c8_beamforming.dir/bench_c8_beamforming.cpp.o.d"
  "bench_c8_beamforming"
  "bench_c8_beamforming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c8_beamforming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

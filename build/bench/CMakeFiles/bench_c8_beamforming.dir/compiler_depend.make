# Empty compiler generated dependencies file for bench_c8_beamforming.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_c3_cck.dir/bench_c3_cck.cpp.o"
  "CMakeFiles/bench_c3_cck.dir/bench_c3_cck.cpp.o.d"
  "bench_c3_cck"
  "bench_c3_cck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c3_cck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_c2_processing_gain.dir/bench_c2_processing_gain.cpp.o"
  "CMakeFiles/bench_c2_processing_gain.dir/bench_c2_processing_gain.cpp.o.d"
  "bench_c2_processing_gain"
  "bench_c2_processing_gain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c2_processing_gain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

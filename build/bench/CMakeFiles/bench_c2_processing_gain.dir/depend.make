# Empty dependencies file for bench_c2_processing_gain.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_c9_mesh.dir/bench_c9_mesh.cpp.o"
  "CMakeFiles/bench_c9_mesh.dir/bench_c9_mesh.cpp.o.d"
  "bench_c9_mesh"
  "bench_c9_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c9_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

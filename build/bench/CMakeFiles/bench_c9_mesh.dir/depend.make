# Empty dependencies file for bench_c9_mesh.
# This may be replaced when dependencies are built.

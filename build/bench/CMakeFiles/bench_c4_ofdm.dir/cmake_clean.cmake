file(REMOVE_RECURSE
  "CMakeFiles/bench_c4_ofdm.dir/bench_c4_ofdm.cpp.o"
  "CMakeFiles/bench_c4_ofdm.dir/bench_c4_ofdm.cpp.o.d"
  "bench_c4_ofdm"
  "bench_c4_ofdm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c4_ofdm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

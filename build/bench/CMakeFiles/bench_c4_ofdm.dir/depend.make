# Empty dependencies file for bench_c4_ofdm.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_c1_generations.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_c1_generations.dir/bench_c1_generations.cpp.o"
  "CMakeFiles/bench_c1_generations.dir/bench_c1_generations.cpp.o.d"
  "bench_c1_generations"
  "bench_c1_generations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c1_generations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

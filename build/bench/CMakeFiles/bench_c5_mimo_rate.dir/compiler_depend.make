# Empty compiler generated dependencies file for bench_c5_mimo_rate.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_c5_mimo_rate.dir/bench_c5_mimo_rate.cpp.o"
  "CMakeFiles/bench_c5_mimo_rate.dir/bench_c5_mimo_rate.cpp.o.d"
  "bench_c5_mimo_rate"
  "bench_c5_mimo_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c5_mimo_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

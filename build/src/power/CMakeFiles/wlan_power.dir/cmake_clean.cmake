file(REMOVE_RECURSE
  "CMakeFiles/wlan_power.dir/power.cpp.o"
  "CMakeFiles/wlan_power.dir/power.cpp.o.d"
  "libwlan_power.a"
  "libwlan_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlan_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for wlan_power.
# This may be replaced when dependencies are built.

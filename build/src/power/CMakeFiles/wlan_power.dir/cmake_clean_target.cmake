file(REMOVE_RECURSE
  "libwlan_power.a"
)

# Empty compiler generated dependencies file for wlan_coop.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libwlan_coop.a"
)

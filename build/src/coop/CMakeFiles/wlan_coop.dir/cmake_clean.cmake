file(REMOVE_RECURSE
  "CMakeFiles/wlan_coop.dir/coop.cpp.o"
  "CMakeFiles/wlan_coop.dir/coop.cpp.o.d"
  "libwlan_coop.a"
  "libwlan_coop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlan_coop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coop/coop.cpp" "src/coop/CMakeFiles/wlan_coop.dir/coop.cpp.o" "gcc" "src/coop/CMakeFiles/wlan_coop.dir/coop.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wlan_common.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/wlan_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/wlan_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/wlan_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for wlan_mesh.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libwlan_mesh.a"
)

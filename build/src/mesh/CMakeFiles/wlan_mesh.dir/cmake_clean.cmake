file(REMOVE_RECURSE
  "CMakeFiles/wlan_mesh.dir/mesh.cpp.o"
  "CMakeFiles/wlan_mesh.dir/mesh.cpp.o.d"
  "libwlan_mesh.a"
  "libwlan_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlan_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for wlan_net.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/wlan_net.dir/netsim.cpp.o"
  "CMakeFiles/wlan_net.dir/netsim.cpp.o.d"
  "libwlan_net.a"
  "libwlan_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlan_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libwlan_net.a"
)

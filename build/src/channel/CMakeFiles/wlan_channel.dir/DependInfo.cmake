
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/channel/awgn.cpp" "src/channel/CMakeFiles/wlan_channel.dir/awgn.cpp.o" "gcc" "src/channel/CMakeFiles/wlan_channel.dir/awgn.cpp.o.d"
  "/root/repo/src/channel/doppler.cpp" "src/channel/CMakeFiles/wlan_channel.dir/doppler.cpp.o" "gcc" "src/channel/CMakeFiles/wlan_channel.dir/doppler.cpp.o.d"
  "/root/repo/src/channel/fading.cpp" "src/channel/CMakeFiles/wlan_channel.dir/fading.cpp.o" "gcc" "src/channel/CMakeFiles/wlan_channel.dir/fading.cpp.o.d"
  "/root/repo/src/channel/mimo.cpp" "src/channel/CMakeFiles/wlan_channel.dir/mimo.cpp.o" "gcc" "src/channel/CMakeFiles/wlan_channel.dir/mimo.cpp.o.d"
  "/root/repo/src/channel/pathloss.cpp" "src/channel/CMakeFiles/wlan_channel.dir/pathloss.cpp.o" "gcc" "src/channel/CMakeFiles/wlan_channel.dir/pathloss.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wlan_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/wlan_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/wlan_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

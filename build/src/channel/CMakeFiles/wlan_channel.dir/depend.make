# Empty dependencies file for wlan_channel.
# This may be replaced when dependencies are built.

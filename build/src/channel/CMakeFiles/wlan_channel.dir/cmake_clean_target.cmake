file(REMOVE_RECURSE
  "libwlan_channel.a"
)

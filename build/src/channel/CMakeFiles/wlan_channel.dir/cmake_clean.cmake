file(REMOVE_RECURSE
  "CMakeFiles/wlan_channel.dir/awgn.cpp.o"
  "CMakeFiles/wlan_channel.dir/awgn.cpp.o.d"
  "CMakeFiles/wlan_channel.dir/doppler.cpp.o"
  "CMakeFiles/wlan_channel.dir/doppler.cpp.o.d"
  "CMakeFiles/wlan_channel.dir/fading.cpp.o"
  "CMakeFiles/wlan_channel.dir/fading.cpp.o.d"
  "CMakeFiles/wlan_channel.dir/mimo.cpp.o"
  "CMakeFiles/wlan_channel.dir/mimo.cpp.o.d"
  "CMakeFiles/wlan_channel.dir/pathloss.cpp.o"
  "CMakeFiles/wlan_channel.dir/pathloss.cpp.o.d"
  "libwlan_channel.a"
  "libwlan_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlan_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libwlan_phy.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/wlan_phy.dir/cck.cpp.o"
  "CMakeFiles/wlan_phy.dir/cck.cpp.o.d"
  "CMakeFiles/wlan_phy.dir/convolutional.cpp.o"
  "CMakeFiles/wlan_phy.dir/convolutional.cpp.o.d"
  "CMakeFiles/wlan_phy.dir/dsss.cpp.o"
  "CMakeFiles/wlan_phy.dir/dsss.cpp.o.d"
  "CMakeFiles/wlan_phy.dir/fhss.cpp.o"
  "CMakeFiles/wlan_phy.dir/fhss.cpp.o.d"
  "CMakeFiles/wlan_phy.dir/ht.cpp.o"
  "CMakeFiles/wlan_phy.dir/ht.cpp.o.d"
  "CMakeFiles/wlan_phy.dir/interleaver.cpp.o"
  "CMakeFiles/wlan_phy.dir/interleaver.cpp.o.d"
  "CMakeFiles/wlan_phy.dir/ldpc.cpp.o"
  "CMakeFiles/wlan_phy.dir/ldpc.cpp.o.d"
  "CMakeFiles/wlan_phy.dir/modulation.cpp.o"
  "CMakeFiles/wlan_phy.dir/modulation.cpp.o.d"
  "CMakeFiles/wlan_phy.dir/ofdm.cpp.o"
  "CMakeFiles/wlan_phy.dir/ofdm.cpp.o.d"
  "CMakeFiles/wlan_phy.dir/plcp.cpp.o"
  "CMakeFiles/wlan_phy.dir/plcp.cpp.o.d"
  "CMakeFiles/wlan_phy.dir/scrambler.cpp.o"
  "CMakeFiles/wlan_phy.dir/scrambler.cpp.o.d"
  "CMakeFiles/wlan_phy.dir/sync.cpp.o"
  "CMakeFiles/wlan_phy.dir/sync.cpp.o.d"
  "libwlan_phy.a"
  "libwlan_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlan_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

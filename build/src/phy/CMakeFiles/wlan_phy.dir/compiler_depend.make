# Empty compiler generated dependencies file for wlan_phy.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/cck.cpp" "src/phy/CMakeFiles/wlan_phy.dir/cck.cpp.o" "gcc" "src/phy/CMakeFiles/wlan_phy.dir/cck.cpp.o.d"
  "/root/repo/src/phy/convolutional.cpp" "src/phy/CMakeFiles/wlan_phy.dir/convolutional.cpp.o" "gcc" "src/phy/CMakeFiles/wlan_phy.dir/convolutional.cpp.o.d"
  "/root/repo/src/phy/dsss.cpp" "src/phy/CMakeFiles/wlan_phy.dir/dsss.cpp.o" "gcc" "src/phy/CMakeFiles/wlan_phy.dir/dsss.cpp.o.d"
  "/root/repo/src/phy/fhss.cpp" "src/phy/CMakeFiles/wlan_phy.dir/fhss.cpp.o" "gcc" "src/phy/CMakeFiles/wlan_phy.dir/fhss.cpp.o.d"
  "/root/repo/src/phy/ht.cpp" "src/phy/CMakeFiles/wlan_phy.dir/ht.cpp.o" "gcc" "src/phy/CMakeFiles/wlan_phy.dir/ht.cpp.o.d"
  "/root/repo/src/phy/interleaver.cpp" "src/phy/CMakeFiles/wlan_phy.dir/interleaver.cpp.o" "gcc" "src/phy/CMakeFiles/wlan_phy.dir/interleaver.cpp.o.d"
  "/root/repo/src/phy/ldpc.cpp" "src/phy/CMakeFiles/wlan_phy.dir/ldpc.cpp.o" "gcc" "src/phy/CMakeFiles/wlan_phy.dir/ldpc.cpp.o.d"
  "/root/repo/src/phy/modulation.cpp" "src/phy/CMakeFiles/wlan_phy.dir/modulation.cpp.o" "gcc" "src/phy/CMakeFiles/wlan_phy.dir/modulation.cpp.o.d"
  "/root/repo/src/phy/ofdm.cpp" "src/phy/CMakeFiles/wlan_phy.dir/ofdm.cpp.o" "gcc" "src/phy/CMakeFiles/wlan_phy.dir/ofdm.cpp.o.d"
  "/root/repo/src/phy/plcp.cpp" "src/phy/CMakeFiles/wlan_phy.dir/plcp.cpp.o" "gcc" "src/phy/CMakeFiles/wlan_phy.dir/plcp.cpp.o.d"
  "/root/repo/src/phy/scrambler.cpp" "src/phy/CMakeFiles/wlan_phy.dir/scrambler.cpp.o" "gcc" "src/phy/CMakeFiles/wlan_phy.dir/scrambler.cpp.o.d"
  "/root/repo/src/phy/sync.cpp" "src/phy/CMakeFiles/wlan_phy.dir/sync.cpp.o" "gcc" "src/phy/CMakeFiles/wlan_phy.dir/sync.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wlan_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/wlan_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/wlan_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/wlan_channel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for wlan_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libwlan_common.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/wlan_common.dir/bits.cpp.o"
  "CMakeFiles/wlan_common.dir/bits.cpp.o.d"
  "CMakeFiles/wlan_common.dir/crc.cpp.o"
  "CMakeFiles/wlan_common.dir/crc.cpp.o.d"
  "CMakeFiles/wlan_common.dir/rng.cpp.o"
  "CMakeFiles/wlan_common.dir/rng.cpp.o.d"
  "libwlan_common.a"
  "libwlan_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlan_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

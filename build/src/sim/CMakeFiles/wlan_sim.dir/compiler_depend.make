# Empty compiler generated dependencies file for wlan_sim.
# This may be replaced when dependencies are built.

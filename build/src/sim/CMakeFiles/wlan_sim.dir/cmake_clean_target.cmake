file(REMOVE_RECURSE
  "libwlan_sim.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/wlan_sim.dir/scheduler.cpp.o"
  "CMakeFiles/wlan_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/wlan_sim.dir/stats.cpp.o"
  "CMakeFiles/wlan_sim.dir/stats.cpp.o.d"
  "libwlan_sim.a"
  "libwlan_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlan_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

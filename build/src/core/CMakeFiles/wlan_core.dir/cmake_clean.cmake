file(REMOVE_RECURSE
  "CMakeFiles/wlan_core.dir/abstraction.cpp.o"
  "CMakeFiles/wlan_core.dir/abstraction.cpp.o.d"
  "CMakeFiles/wlan_core.dir/link.cpp.o"
  "CMakeFiles/wlan_core.dir/link.cpp.o.d"
  "CMakeFiles/wlan_core.dir/standards.cpp.o"
  "CMakeFiles/wlan_core.dir/standards.cpp.o.d"
  "libwlan_core.a"
  "libwlan_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlan_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libwlan_core.a"
)

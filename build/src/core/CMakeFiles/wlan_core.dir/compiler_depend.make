# Empty compiler generated dependencies file for wlan_core.
# This may be replaced when dependencies are built.

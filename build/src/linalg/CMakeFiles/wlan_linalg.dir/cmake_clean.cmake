file(REMOVE_RECURSE
  "CMakeFiles/wlan_linalg.dir/cmatrix.cpp.o"
  "CMakeFiles/wlan_linalg.dir/cmatrix.cpp.o.d"
  "CMakeFiles/wlan_linalg.dir/decompose.cpp.o"
  "CMakeFiles/wlan_linalg.dir/decompose.cpp.o.d"
  "libwlan_linalg.a"
  "libwlan_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlan_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

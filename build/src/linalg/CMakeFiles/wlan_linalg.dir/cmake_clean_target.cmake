file(REMOVE_RECURSE
  "libwlan_linalg.a"
)

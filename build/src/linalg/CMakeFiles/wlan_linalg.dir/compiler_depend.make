# Empty compiler generated dependencies file for wlan_linalg.
# This may be replaced when dependencies are built.

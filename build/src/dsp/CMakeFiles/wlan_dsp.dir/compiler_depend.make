# Empty compiler generated dependencies file for wlan_dsp.
# This may be replaced when dependencies are built.

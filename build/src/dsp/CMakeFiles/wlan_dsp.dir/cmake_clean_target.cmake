file(REMOVE_RECURSE
  "libwlan_dsp.a"
)

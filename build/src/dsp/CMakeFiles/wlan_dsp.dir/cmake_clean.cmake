file(REMOVE_RECURSE
  "CMakeFiles/wlan_dsp.dir/fft.cpp.o"
  "CMakeFiles/wlan_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/wlan_dsp.dir/ops.cpp.o"
  "CMakeFiles/wlan_dsp.dir/ops.cpp.o.d"
  "CMakeFiles/wlan_dsp.dir/spectrum.cpp.o"
  "CMakeFiles/wlan_dsp.dir/spectrum.cpp.o.d"
  "libwlan_dsp.a"
  "libwlan_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlan_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mac/bianchi.cpp" "src/mac/CMakeFiles/wlan_mac.dir/bianchi.cpp.o" "gcc" "src/mac/CMakeFiles/wlan_mac.dir/bianchi.cpp.o.d"
  "/root/repo/src/mac/dcf.cpp" "src/mac/CMakeFiles/wlan_mac.dir/dcf.cpp.o" "gcc" "src/mac/CMakeFiles/wlan_mac.dir/dcf.cpp.o.d"
  "/root/repo/src/mac/edca.cpp" "src/mac/CMakeFiles/wlan_mac.dir/edca.cpp.o" "gcc" "src/mac/CMakeFiles/wlan_mac.dir/edca.cpp.o.d"
  "/root/repo/src/mac/frames.cpp" "src/mac/CMakeFiles/wlan_mac.dir/frames.cpp.o" "gcc" "src/mac/CMakeFiles/wlan_mac.dir/frames.cpp.o.d"
  "/root/repo/src/mac/psm.cpp" "src/mac/CMakeFiles/wlan_mac.dir/psm.cpp.o" "gcc" "src/mac/CMakeFiles/wlan_mac.dir/psm.cpp.o.d"
  "/root/repo/src/mac/rate_adapt.cpp" "src/mac/CMakeFiles/wlan_mac.dir/rate_adapt.cpp.o" "gcc" "src/mac/CMakeFiles/wlan_mac.dir/rate_adapt.cpp.o.d"
  "/root/repo/src/mac/timing.cpp" "src/mac/CMakeFiles/wlan_mac.dir/timing.cpp.o" "gcc" "src/mac/CMakeFiles/wlan_mac.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wlan_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wlan_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/wlan_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/wlan_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/wlan_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

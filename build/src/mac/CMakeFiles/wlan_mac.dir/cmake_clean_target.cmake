file(REMOVE_RECURSE
  "libwlan_mac.a"
)

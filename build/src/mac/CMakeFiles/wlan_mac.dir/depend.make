# Empty dependencies file for wlan_mac.
# This may be replaced when dependencies are built.

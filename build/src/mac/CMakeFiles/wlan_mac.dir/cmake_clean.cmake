file(REMOVE_RECURSE
  "CMakeFiles/wlan_mac.dir/bianchi.cpp.o"
  "CMakeFiles/wlan_mac.dir/bianchi.cpp.o.d"
  "CMakeFiles/wlan_mac.dir/dcf.cpp.o"
  "CMakeFiles/wlan_mac.dir/dcf.cpp.o.d"
  "CMakeFiles/wlan_mac.dir/edca.cpp.o"
  "CMakeFiles/wlan_mac.dir/edca.cpp.o.d"
  "CMakeFiles/wlan_mac.dir/frames.cpp.o"
  "CMakeFiles/wlan_mac.dir/frames.cpp.o.d"
  "CMakeFiles/wlan_mac.dir/psm.cpp.o"
  "CMakeFiles/wlan_mac.dir/psm.cpp.o.d"
  "CMakeFiles/wlan_mac.dir/rate_adapt.cpp.o"
  "CMakeFiles/wlan_mac.dir/rate_adapt.cpp.o.d"
  "CMakeFiles/wlan_mac.dir/timing.cpp.o"
  "CMakeFiles/wlan_mac.dir/timing.cpp.o.d"
  "libwlan_mac.a"
  "libwlan_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlan_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Tests for the FHSS (GFSK + hopping) PHY.
#include <gtest/gtest.h>

#include <set>

#include "common/check.h"
#include "common/rng.h"
#include "phy/fhss.h"

namespace wlan::phy {
namespace {

TEST(FhssHop, SequenceVisitsEveryChannel) {
  std::set<std::size_t> seen;
  for (std::size_t i = 0; i < kFhssChannels; ++i) {
    seen.insert(fhss_hop_channel(i));
  }
  EXPECT_EQ(seen.size(), kFhssChannels);
}

TEST(FhssHop, AdjacentHopsAtLeastSixApart) {
  for (std::size_t i = 0; i + 1 < 200; ++i) {
    const auto a = static_cast<int>(fhss_hop_channel(i));
    const auto b = static_cast<int>(fhss_hop_channel(i + 1));
    const int dist = std::min((a - b + 79) % 79, (b - a + 79) % 79);
    EXPECT_GE(dist, 6) << "hop " << i;
  }
}

TEST(FhssHop, BaseOffsetsShiftTheSequence) {
  EXPECT_NE(fhss_hop_channel(5, 0), fhss_hop_channel(5, 3));
}

TEST(Fhss, BitsPerSymbol) {
  EXPECT_EQ(fhss_bits_per_symbol(FhssRate::k1Mbps), 1u);
  EXPECT_EQ(fhss_bits_per_symbol(FhssRate::k2Mbps), 2u);
}

class FhssRates : public ::testing::TestWithParam<FhssRate> {};

TEST_P(FhssRates, NoiselessRoundTrip) {
  FhssModem::Config cfg;
  cfg.rate = GetParam();
  const FhssModem modem(cfg);
  Rng rng(1);
  const std::size_t n_bits = 1000;
  const Bits bits = rng.random_bits(n_bits);
  const auto hops = modem.modulate(bits);
  const Bits out = modem.demodulate(hops);
  for (std::size_t i = 0; i < n_bits; ++i) {
    ASSERT_EQ(out[i], bits[i]) << "bit " << i;
  }
}

TEST_P(FhssRates, ConstantEnvelope) {
  FhssModem::Config cfg;
  cfg.rate = GetParam();
  const FhssModem modem(cfg);
  Rng rng(2);
  const auto hops = modem.modulate(rng.random_bits(400));
  for (const auto& wave : hops) {
    for (const auto& s : wave) {
      EXPECT_NEAR(std::abs(s), 1.0, 1e-12);
    }
  }
}

TEST_P(FhssRates, HighSnrLink) {
  FhssModem::Config cfg;
  cfg.rate = GetParam();
  Rng rng(3);
  // 4GFSK's inner deviation levels need several dB more than 2GFSK.
  const double snr_db = GetParam() == FhssRate::k1Mbps ? 20.0 : 28.0;
  const auto r = run_fhss_link(cfg, 4000, snr_db, rng);
  EXPECT_EQ(r.bit_errors, 0u);
}

INSTANTIATE_TEST_SUITE_P(BothRates, FhssRates,
                         ::testing::Values(FhssRate::k1Mbps, FhssRate::k2Mbps));

TEST(Fhss, FourLevelNeedsMoreSnrThanTwoLevel) {
  Rng rng(4);
  FhssModem::Config two;
  two.rate = FhssRate::k1Mbps;
  FhssModem::Config four;
  four.rate = FhssRate::k2Mbps;
  const auto r2 = run_fhss_link(two, 20000, 11.0, rng);
  const auto r4 = run_fhss_link(four, 20000, 11.0, rng);
  EXPECT_LT(r2.ber(), r4.ber());
  EXPECT_GT(r4.ber(), 0.0);
}

TEST(Fhss, JammerOnlyHitsItsChannel) {
  Rng rng(5);
  FhssModem::Config cfg;
  cfg.symbols_per_hop = 50;
  // Jam channel 0 hard; high SNR otherwise.
  const auto r = run_fhss_link(cfg, 20000, 25.0, rng, /*jammed_channel=*/0,
                               /*jam_power=*/10.0);
  EXPECT_GT(r.jammed_hops, 0u);
  EXPECT_LT(r.jammed_hops, r.total_hops);
  // Errors confined to jammed dwells: overall BER bounded by the jammed
  // fraction (each jammed hop can lose at most all its bits).
  const double jam_fraction =
      static_cast<double>(r.jammed_hops) / static_cast<double>(r.total_hops);
  EXPECT_LE(r.ber(), jam_fraction + 0.01);
  EXPECT_GT(r.ber(), 0.0);
}

TEST(Fhss, HoppingLimitsJammerDamageVsParkedSystem) {
  // The FCC's robustness goal: a strong single-channel jammer corrupts
  // ~1/79th of a hopping link but would kill a system parked on that
  // channel. Compare BER with the jammer on channel 0 vs a hypothetical
  // always-on-channel-0 system (hop base chosen so every hop lands there
  // is impossible; emulate parked by jamming every channel).
  Rng rng(6);
  FhssModem::Config cfg;
  cfg.symbols_per_hop = 50;
  const auto hopping =
      run_fhss_link(cfg, 30000, 25.0, rng, /*jammed_channel=*/0, 10.0);
  // Parked: every hop jammed. Emulate with jam on all channels by running
  // 79 separate jams is overkill; instead jam the channel the first hop
  // uses and set symbols_per_hop huge so all bits share one dwell.
  FhssModem::Config parked = cfg;
  parked.symbols_per_hop = 30000;  // one dwell carries everything
  const auto dead = run_fhss_link(parked, 30000, 25.0, rng,
                                  static_cast<int>(fhss_hop_channel(0)), 10.0);
  EXPECT_LT(hopping.ber(), 0.05);
  EXPECT_GT(dead.ber(), 0.2);
}

TEST(Fhss, ConfigValidation) {
  FhssModem::Config bad;
  bad.samples_per_symbol = 1;
  EXPECT_THROW(FhssModem{bad}, ContractError);
  FhssModem::Config bad2;
  bad2.modulation_index = 0.0;
  EXPECT_THROW(FhssModem{bad2}, ContractError);
}

}  // namespace
}  // namespace wlan::phy

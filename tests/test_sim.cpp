// Tests for the discrete-event scheduler and statistics collectors.
#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "sim/scheduler.h"
#include "sim/stats.h"

namespace wlan::sim {
namespace {

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule(3.0, [&] { order.push_back(3); });
  sched.schedule(1.0, [&] { order.push_back(1); });
  sched.schedule(2.0, [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, FifoAtEqualTimes) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sched.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, NowAdvancesWithEvents) {
  Scheduler sched;
  double seen = -1.0;
  sched.schedule(2.5, [&] { seen = sched.now(); });
  sched.run();
  EXPECT_DOUBLE_EQ(seen, 2.5);
  EXPECT_DOUBLE_EQ(sched.now(), 2.5);
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
  Scheduler sched;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    if (count < 10) sched.schedule(1.0, tick);
  };
  sched.schedule(1.0, tick);
  sched.run();
  EXPECT_EQ(count, 10);
  EXPECT_DOUBLE_EQ(sched.now(), 10.0);
}

TEST(Scheduler, RunUntilStopsAtBoundary) {
  Scheduler sched;
  int executed = 0;
  for (int i = 1; i <= 10; ++i) {
    sched.schedule(static_cast<double>(i), [&] { ++executed; });
  }
  const std::size_t n = sched.run_until(5.0);
  EXPECT_EQ(n, 5u);
  EXPECT_EQ(executed, 5);
  EXPECT_DOUBLE_EQ(sched.now(), 5.0);
  EXPECT_EQ(sched.pending(), 5u);
}

TEST(Scheduler, RunUntilAdvancesClockWhenQueueEmpty) {
  Scheduler sched;
  sched.run_until(7.0);
  EXPECT_DOUBLE_EQ(sched.now(), 7.0);
}

TEST(Scheduler, NegativeDelayRejected) {
  Scheduler sched;
  EXPECT_THROW(sched.schedule(-1.0, [] {}), wlan::ContractError);
}

TEST(Scheduler, ScheduleAtPastRejected) {
  Scheduler sched;
  sched.schedule(5.0, [] {});
  sched.run();
  EXPECT_THROW(sched.schedule_at(4.0, [] {}), wlan::ContractError);
}

TEST(Tally, BasicStatistics) {
  Tally t;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) t.add(x);
  EXPECT_EQ(t.count(), 4u);
  EXPECT_DOUBLE_EQ(t.mean(), 2.5);
  EXPECT_DOUBLE_EQ(t.min(), 1.0);
  EXPECT_DOUBLE_EQ(t.max(), 4.0);
  EXPECT_DOUBLE_EQ(t.total(), 10.0);
  EXPECT_NEAR(t.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Tally, EmptyIsSafe) {
  const Tally t;
  EXPECT_EQ(t.count(), 0u);
  EXPECT_DOUBLE_EQ(t.mean(), 0.0);
  EXPECT_DOUBLE_EQ(t.variance(), 0.0);
}

TEST(Tally, SingleSampleVarianceZero) {
  Tally t;
  t.add(7.0);
  EXPECT_DOUBLE_EQ(t.variance(), 0.0);
  EXPECT_DOUBLE_EQ(t.mean(), 7.0);
}

TEST(TimeAverage, PiecewiseConstantSignal) {
  TimeAverage ta;
  ta.update(0.0, 2.0);  // value 2 from t=0
  ta.update(1.0, 4.0);  // value 4 from t=1
  ta.update(3.0, 0.0);  // measured up to t=3
  // Integral = 2*1 + 4*2 = 10 over 3 seconds.
  EXPECT_DOUBLE_EQ(ta.integral(), 10.0);
  EXPECT_NEAR(ta.average(), 10.0 / 3.0, 1e-12);
}

TEST(TimeAverage, OutOfOrderRejected) {
  TimeAverage ta;
  ta.update(2.0, 1.0);
  EXPECT_THROW(ta.update(1.0, 1.0), wlan::ContractError);
}

}  // namespace
}  // namespace wlan::sim

// Unit tests for path loss, fading, MIMO channels, AWGN, interference.
#include <gtest/gtest.h>

#include <cmath>

#include "channel/awgn.h"
#include "channel/fading.h"
#include "channel/mimo.h"
#include "channel/pathloss.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/units.h"
#include "dsp/fft.h"
#include "dsp/ops.h"
#include "linalg/decompose.h"

namespace wlan::channel {
namespace {

TEST(PathLoss, FreeSpaceKnownValue) {
  // 2.4 GHz at 1 m: 20 log10(4 pi / lambda) ~ 40.05 dB.
  EXPECT_NEAR(free_space_path_loss_db(1.0, 2.4e9), 40.05, 0.1);
  // 5.2 GHz at 1 m: ~46.8 dB.
  EXPECT_NEAR(free_space_path_loss_db(1.0, 5.2e9), 46.77, 0.1);
}

TEST(PathLoss, FreeSpaceSlope20DbPerDecade) {
  const double l10 = free_space_path_loss_db(10.0, 5.2e9);
  const double l100 = free_space_path_loss_db(100.0, 5.2e9);
  EXPECT_NEAR(l100 - l10, 20.0, 1e-9);
}

TEST(PathLoss, DualSlopeContinuousAtBreakpoint) {
  PathLossModel m;
  m.breakpoint_m = 5.0;
  const double just_before = m.path_loss_db(4.999);
  const double just_after = m.path_loss_db(5.001);
  EXPECT_NEAR(just_before, just_after, 0.02);
}

TEST(PathLoss, SteeperSlopeAfterBreakpoint) {
  PathLossModel m;
  m.breakpoint_m = 5.0;
  m.exponent_after = 3.5;
  const double l10 = m.path_loss_db(10.0);
  const double l100 = m.path_loss_db(100.0);
  EXPECT_NEAR(l100 - l10, 35.0, 1e-9);
}

TEST(PathLoss, DistanceInversionRoundTrip) {
  PathLossModel m;
  for (const double d : {1.0, 3.0, 5.0, 20.0, 80.0, 300.0}) {
    const double loss = m.path_loss_db(d);
    EXPECT_NEAR(m.distance_for_path_loss(loss), d, 1e-6 * d) << "d=" << d;
  }
}

TEST(PathLoss, ShadowingHasRequestedSigma) {
  PathLossModel m;
  m.shadowing_sigma_db = 6.0;
  Rng rng(1);
  const double base = m.path_loss_db(30.0);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double dev = m.path_loss_db(30.0, rng) - base;
    sum += dev;
    sum2 += dev * dev;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.15);
  EXPECT_NEAR(std::sqrt(sum2 / n), 6.0, 0.15);
}

TEST(PathLoss, RejectsNonPositiveDistance) {
  PathLossModel m;
  EXPECT_THROW(m.path_loss_db(0.0), ContractError);
  EXPECT_THROW(m.path_loss_db(-1.0), ContractError);
}

TEST(LinkBudget, TypicalWlanNumbers) {
  // 17 dBm TX, 80 dB path loss, 20 MHz, NF 6: SNR = 17 - 80 + 95 = 32 dB.
  EXPECT_NEAR(link_snr_db(17.0, 80.0, 20e6, 6.0), 32.0, 0.1);
}

TEST(Fading, RayleighUnitVariance) {
  Rng rng(2);
  double power = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) power += std::norm(flat_fading_coefficient(rng));
  EXPECT_NEAR(power / n, 1.0, 0.03);
}

TEST(Fading, HighRicianKApproachesLineOfSight) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const Cplx h = flat_fading_coefficient(rng, 40.0);  // K = 40 dB
    EXPECT_NEAR(std::abs(h), 1.0, 0.05);
  }
}

TEST(Fading, RicianStillUnitMeanPower) {
  Rng rng(4);
  double power = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    power += std::norm(flat_fading_coefficient(rng, 6.0));
  }
  EXPECT_NEAR(power / n, 1.0, 0.03);
}

TEST(Tdl, FlatProfileIsSingleTap) {
  Rng rng(5);
  const Tdl tdl = make_tdl(rng, DelayProfile::kFlat, 20e6);
  EXPECT_EQ(tdl.taps.size(), 1u);
}

TEST(Tdl, EnergyNormalizedOnAverage) {
  Rng rng(6);
  double energy = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const Tdl tdl = make_tdl(rng, DelayProfile::kOffice, 20e6);
    for (const auto& tap : tdl.taps) energy += std::norm(tap);
  }
  EXPECT_NEAR(energy / n, 1.0, 0.05);
}

TEST(Tdl, LongerSpreadMeansMoreTaps) {
  Rng rng(7);
  const Tdl res = make_tdl(rng, DelayProfile::kResidential, 20e6);
  const Tdl open = make_tdl(rng, DelayProfile::kLargeOpen, 20e6);
  EXPECT_GT(open.taps.size(), res.taps.size());
  // All within the 802.11a cyclic prefix (16 samples at 20 MHz).
  EXPECT_LE(open.taps.size(), 16u);
}

TEST(Tdl, LosFirstTapReducesFadeDepth) {
  // With a strong Rician first tap (TGn LOS), deep fades of the dominant
  // arrival are rare: the variance of the first-tap power shrinks.
  Rng rng(20);
  double var_nlos = 0.0;
  double var_los = 0.0;
  double mean_nlos = 0.0;
  double mean_los = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const Tdl nlos = make_tdl(rng, DelayProfile::kResidential, 20e6);
    const Tdl los = make_tdl(rng, DelayProfile::kResidential, 20e6, 10.0);
    const double p_nlos = std::norm(nlos.taps[0]);
    const double p_los = std::norm(los.taps[0]);
    mean_nlos += p_nlos;
    mean_los += p_los;
    var_nlos += p_nlos * p_nlos;
    var_los += p_los * p_los;
  }
  mean_nlos /= n;
  mean_los /= n;
  var_nlos = var_nlos / n - mean_nlos * mean_nlos;
  var_los = var_los / n - mean_los * mean_los;
  // Same mean power share for the first tap, far smaller fluctuation.
  EXPECT_NEAR(mean_los, mean_nlos, 0.15 * mean_nlos);
  EXPECT_LT(var_los, 0.5 * var_nlos);
}

TEST(Tdl, LosEnergyStillNormalized) {
  Rng rng(21);
  double energy = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const Tdl tdl = make_tdl(rng, DelayProfile::kOffice, 20e6, 6.0);
    for (const auto& tap : tdl.taps) energy += std::norm(tap);
  }
  EXPECT_NEAR(energy / n, 1.0, 0.05);
}

TEST(Tdl, FrequencyResponseOfSingleTapIsFlat) {
  Tdl tdl;
  tdl.taps = {Cplx{0.5, 0.5}};
  const CVec h = tdl.frequency_response(64);
  for (const auto& v : h) {
    EXPECT_NEAR(std::abs(v - Cplx(0.5, 0.5)), 0.0, 1e-12);
  }
}

TEST(Tdl, ApplyConvolves) {
  Tdl tdl;
  tdl.taps = {Cplx{1, 0}, Cplx{0.5, 0}};
  const CVec x = {Cplx{1, 0}, Cplx{0, 0}};
  const CVec y = tdl.apply(x);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_NEAR(y[0].real(), 1.0, 1e-14);
  EXPECT_NEAR(y[1].real(), 0.5, 1e-14);
}

TEST(Mimo, IidMatrixUnitVarianceEntries) {
  Rng rng(8);
  double power = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const auto h = iid_rayleigh_matrix(rng, 2, 2);
    for (std::size_t r = 0; r < 2; ++r) {
      for (std::size_t c = 0; c < 2; ++c) power += std::norm(h(r, c));
    }
  }
  EXPECT_NEAR(power / (4.0 * n), 1.0, 0.05);
}

TEST(Mimo, ExponentialCorrelationStructure) {
  const auto r = exponential_correlation(4, 0.5);
  EXPECT_NEAR(r(0, 0).real(), 1.0, 1e-14);
  EXPECT_NEAR(r(0, 1).real(), 0.5, 1e-14);
  EXPECT_NEAR(r(0, 3).real(), 0.125, 1e-14);
  EXPECT_NEAR(r(3, 1).real(), 0.25, 1e-14);
}

TEST(Mimo, KroneckerCorrelationReducesCapacity) {
  // Spatial correlation should lower ergodic MIMO capacity.
  Rng rng(9);
  const double snr = 100.0;
  const int trials = 800;
  double c_iid = 0.0;
  double c_corr = 0.0;
  for (int t = 0; t < trials; ++t) {
    c_iid += linalg::mimo_capacity_bps_hz(kronecker_channel(rng, 4, 4, 0.0, 0.0), snr);
    c_corr += linalg::mimo_capacity_bps_hz(kronecker_channel(rng, 4, 4, 0.9, 0.9), snr);
  }
  EXPECT_GT(c_iid, c_corr * 1.15);
}

TEST(Mimo, OfdmChannelDimensions) {
  Rng rng(10);
  const auto tones = mimo_ofdm_channel(rng, 2, 3, DelayProfile::kOffice, 20e6, 64);
  ASSERT_EQ(tones.size(), 64u);
  EXPECT_EQ(tones[0].rows(), 2u);
  EXPECT_EQ(tones[0].cols(), 3u);
}

TEST(Mimo, OfdmChannelUnitMeanGainPerEntry) {
  Rng rng(11);
  double power = 0.0;
  int count = 0;
  for (int i = 0; i < 50; ++i) {
    const auto tones = mimo_ofdm_channel(rng, 2, 2, DelayProfile::kOffice, 20e6, 64);
    for (const auto& h : tones) {
      for (std::size_t r = 0; r < 2; ++r) {
        for (std::size_t c = 0; c < 2; ++c) {
          power += std::norm(h(r, c));
          ++count;
        }
      }
    }
  }
  EXPECT_NEAR(power / count, 1.0, 0.05);
}

TEST(Awgn, VarianceAsRequested) {
  Rng rng(12);
  CVec x(100000, Cplx{0.0, 0.0});
  add_awgn(x, rng, 3.0);
  EXPECT_NEAR(dsp::mean_power(x), 3.0, 0.05);
}

TEST(Awgn, SnrSetRelativeToSignal) {
  Rng rng(13);
  CVec x(50000, Cplx{2.0, 0.0});  // power 4
  const double nv = add_awgn_snr(x, rng, 10.0);
  EXPECT_NEAR(nv, 0.4, 1e-12);
}

TEST(Awgn, ZeroVarianceIsNoOp) {
  CVec x(10, Cplx{1.0, 0.0});
  Rng rng(14);
  add_awgn(x, rng, 0.0);
  for (const auto& v : x) EXPECT_EQ(v, Cplx(1.0, 0.0));
}

TEST(Interference, TonePowerAsRequested) {
  Rng rng(15);
  CVec x(100000, Cplx{0.0, 0.0});
  add_tone_interferer(x, rng, 2.5, 0.13);
  EXPECT_NEAR(dsp::mean_power(x), 2.5, 0.01);
}

TEST(Interference, ToneIsNarrowband) {
  Rng rng(16);
  CVec x(1024, Cplx{0.0, 0.0});
  add_tone_interferer(x, rng, 1.0, 32.0 / 1024.0);
  // All energy should land in one FFT bin.
  const CVec spec = dsp::fft(x);
  std::size_t peak = 0;
  for (std::size_t k = 1; k < spec.size(); ++k) {
    if (std::abs(spec[k]) > std::abs(spec[peak])) peak = k;
  }
  EXPECT_EQ(peak, 32u);
}

}  // namespace
}  // namespace wlan::channel

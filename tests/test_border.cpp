// Conservative-time border exchange (net/shard.h border mode): planner
// tiling + load estimates, fused-reference vs lockstep-tile bitwise
// equivalence, thread-count invariance, hidden terminals across a tile
// border, and invariant-auditor cleanliness under remote influence.
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "core/link.h"
#include "net/errormodel.h"
#include "net/netsim.h"
#include "net/shard.h"
#include "obs/metrics.h"

namespace wlan {
namespace {

struct Deployment {
  std::vector<net::NodeConfig> nodes;
  std::vector<net::Flow> flows;
};

/// The bench_multibss deployment: `bss_grid`^2 APs, `clients` saturated
/// uplink STAs on a ring around each.
Deployment make_grid(std::size_t bss_grid, double spacing_m,
                     std::size_t clients, double radius_m) {
  Deployment d;
  for (std::size_t gy = 0; gy < bss_grid; ++gy) {
    for (std::size_t gx = 0; gx < bss_grid; ++gx) {
      const double ax = static_cast<double>(gx) * spacing_m;
      const double ay = static_cast<double>(gy) * spacing_m;
      const std::size_t ap = d.nodes.size();
      d.nodes.push_back({{ax, ay}});
      for (std::size_t c = 0; c < clients; ++c) {
        const double angle = 2.0 * M_PI * static_cast<double>(c) /
                             static_cast<double>(clients);
        d.nodes.push_back({{ax + radius_m * std::cos(angle),
                            ay + radius_m * std::sin(angle)}});
        d.flows.push_back({d.nodes.size() - 1, ap});
      }
    }
  }
  return d;
}

/// The 63-node bench_multibss geometry plus its BSS spacing: one
/// connected component whose cells sit near carrier-sense range.
Deployment multibss63(const net::NetworkConfig& cfg, double* spacing_out) {
  double radius_m = 5.0;
  while (snr_at_distance_db(cfg.pathloss, radius_m * 1.3, 17.0,
                            cfg.bandwidth_hz) > 34.0) {
    radius_m *= 1.3;
  }
  const double noise_dbm =
      -174.0 + 10.0 * std::log10(cfg.bandwidth_hz) + 6.0;
  const double cs_snr_db = -82.0 - noise_dbm;
  double spacing_m = radius_m;
  while (snr_at_distance_db(cfg.pathloss, spacing_m, 17.0, cfg.bandwidth_hz) >
         cs_snr_db) {
    spacing_m *= 1.1;
  }
  if (spacing_out) *spacing_out = spacing_m;
  return make_grid(3, spacing_m, 6, radius_m);
}

net::ShardOptions bordered(double tile_m, unsigned jobs) {
  net::ShardOptions o;
  o.border = true;
  o.border_tile_m = tile_m;
  o.jobs = jobs;
  return o;
}

void expect_flows_bitwise(const net::NetworkResult& a,
                          const net::NetworkResult& b) {
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t f = 0; f < a.flows.size(); ++f) {
    EXPECT_EQ(a.flows[f].delivered, b.flows[f].delivered) << "flow " << f;
    EXPECT_EQ(a.flows[f].attempts, b.flows[f].attempts) << "flow " << f;
    EXPECT_EQ(a.flows[f].retries, b.flows[f].retries) << "flow " << f;
    EXPECT_EQ(a.flows[f].drops, b.flows[f].drops) << "flow " << f;
    EXPECT_EQ(a.flows[f].throughput_mbps, b.flows[f].throughput_mbps)
        << "flow " << f;
    EXPECT_EQ(a.flows[f].mean_delay_s, b.flows[f].mean_delay_s)
        << "flow " << f;
    EXPECT_EQ(a.flows[f].mean_data_rate_mbps, b.flows[f].mean_data_rate_mbps)
        << "flow " << f;
  }
  EXPECT_EQ(a.total_delivered, b.total_delivered);
  EXPECT_EQ(a.aggregate_throughput_mbps, b.aggregate_throughput_mbps);
  EXPECT_EQ(a.data_tx_count, b.data_tx_count);
  EXPECT_EQ(a.data_failures, b.data_failures);
  EXPECT_EQ(a.rts_tx_count, b.rts_tx_count);
  EXPECT_EQ(a.rts_failures, b.rts_failures);
  EXPECT_EQ(a.simultaneous_starts, b.simultaneous_starts);
}

// --- Planner ---------------------------------------------------------

TEST(BorderPlan, TilesCarryLookaheadAndLoadEstimates) {
  net::NetworkConfig cfg;
  double spacing = 0.0;
  const Deployment d = multibss63(cfg, &spacing);
  const net::ShardOptions opt = bordered(spacing, 1);
  const net::ShardPlan plan = net::plan_shards(cfg, d.nodes, opt, &d.flows);

  EXPECT_TRUE(plan.border);
  EXPECT_GE(plan.shards.size(), 4u);  // a 3x3 BSS grid tiles spatially
  EXPECT_GT(plan.lookahead_s, 0.0);
  // Lookahead is floored to a power of two so epoch boundaries are
  // exact doubles.
  const double l2 = std::log2(plan.lookahead_s);
  EXPECT_EQ(l2, std::floor(l2));
  EXPECT_GE(plan.min_border_m, 0.5);

  // Load estimates cover every node and flow exactly once.
  ASSERT_EQ(plan.load.size(), plan.shards.size());
  std::size_t nodes = 0;
  std::size_t flows = 0;
  for (const net::ShardLoad& l : plan.load) {
    nodes += l.nodes;
    flows += l.flows;
  }
  EXPECT_EQ(nodes, d.nodes.size());
  EXPECT_EQ(flows, d.flows.size());
  EXPECT_GE(plan.load_imbalance(), 1.0);
  EXPECT_GT(plan.total_border_edges(), 0u);
  EXPECT_GE(plan.max_load_weight(), plan.mean_load_weight());

  // Flow endpoints were clustered into one tile each.
  for (const net::Flow& f : d.flows) {
    EXPECT_EQ(plan.shard_of[f.source], plan.shard_of[f.destination]);
  }
}

TEST(BorderPlan, NeedsAFiniteTile) {
  net::NetworkConfig cfg;
  const Deployment d = multibss63(cfg, nullptr);
  net::ShardOptions opt;
  opt.border = true;
  opt.cutoff_margin_db = std::numeric_limits<double>::infinity();
  EXPECT_THROW(net::plan_shards(cfg, d.nodes, opt, &d.flows), ContractError);
}

// --- Fused-reference vs lockstep tiles -------------------------------

// The fused reference runs ONE engine over every tile with the same
// derived per-entity RNG streams and the same delayed cross-tile
// influence records, queued locally instead of routed. The lockstep
// exchange must reproduce it bitwise at any jobs count.
TEST(BorderEquivalence, FusedMatchesTiledBitwiseOn63NodeGrid) {
  net::NetworkConfig cfg;
  cfg.duration_s = 0.05;
  cfg.rts_cts = true;
  cfg.error_model.model = net::RxModel::kPerModel;
  cfg.error_model.shadowing_sigma_db = 4.0;
  cfg.error_model.realizations = 8;
  cfg.rate_control = net::RateControlMode::kArf;
  cfg.lifecycle.enabled = true;
  double spacing = 0.0;
  const Deployment d = multibss63(cfg, &spacing);

  obs::Registry fused_reg;
  cfg.registry = &fused_reg;
  net::ShardOptions ref = bordered(spacing, 1);
  ref.border_reference = true;
  Rng fused_rng(11);
  const auto fused =
      net::simulate_network_sharded(cfg, d.nodes, d.flows, ref, fused_rng);
  ASSERT_GE(fused.border.tiles, 4u);
  EXPECT_EQ(fused.lifecycle.breaches, 0u);

  std::string tiled_snapshot_jobs1;
  for (const unsigned jobs : {1u, 8u}) {
    obs::Registry tiled_reg;
    cfg.registry = &tiled_reg;
    Rng rng(11);
    const auto tiled = net::simulate_network_sharded(
        cfg, d.nodes, d.flows, bordered(spacing, jobs), rng);
    expect_flows_bitwise(fused, tiled);
    EXPECT_EQ(tiled.lifecycle.breaches, 0u);
    EXPECT_EQ(tiled.border.tiles, fused.border.tiles);
    EXPECT_EQ(tiled.border.lookahead_s, fused.border.lookahead_s);
    EXPECT_GT(tiled.border.epochs, 0u);
    // Emitted border messages are deterministic and identical across
    // modes (the fused engine counts the records it loops back).
    const obs::Counter* fused_msgs = fused_reg.find_counter("net.border.msgs");
    const obs::Counter* tiled_msgs = tiled_reg.find_counter("net.border.msgs");
    ASSERT_NE(fused_msgs, nullptr);
    ASSERT_NE(tiled_msgs, nullptr);
    EXPECT_GT(fused_msgs->value(), 0u);
    EXPECT_EQ(fused_msgs->value(), tiled_msgs->value());
    // Registry snapshots are byte-equal across jobs counts (merge order
    // is shard order, not thread schedule).
    if (jobs == 1) {
      tiled_snapshot_jobs1 = tiled_reg.snapshot_json();
    } else {
      EXPECT_EQ(tiled_snapshot_jobs1, tiled_reg.snapshot_json());
    }
  }
}

TEST(BorderEquivalence, PoissonArrivalsStayThreadCountInvariant) {
  net::NetworkConfig cfg;
  cfg.duration_s = 0.05;
  double spacing = 0.0;
  Deployment d = multibss63(cfg, &spacing);
  // Mixed load: half the flows Poisson — exercises the per-flow arrival
  // streams whose draws must not depend on tile execution order.
  for (std::size_t f = 0; f < d.flows.size(); f += 2) {
    d.flows[f].arrival_rate_pps = 200.0;
  }

  obs::Registry reg1;
  cfg.registry = &reg1;
  Rng rng1(3);
  const auto r1 = net::simulate_network_sharded(cfg, d.nodes, d.flows,
                                                bordered(spacing, 1), rng1);
  obs::Registry reg8;
  cfg.registry = &reg8;
  Rng rng8(3);
  const auto r8 = net::simulate_network_sharded(cfg, d.nodes, d.flows,
                                                bordered(spacing, 8), rng8);
  expect_flows_bitwise(r1, r8);
  EXPECT_EQ(reg1.snapshot_json(), reg8.snapshot_json());
  EXPECT_GT(r1.border.messages, 0u);
  EXPECT_EQ(r1.border.messages, r8.border.messages);
}

// --- Hidden terminals across a tile border ---------------------------

/// Two saturated BSS pairs whose senders are mutually hidden (80 m, the
/// proven make_hidden_terminal_setup spacing) while each sender still
/// interferes at the other pair's receiver. The receivers straddle a
/// tile border, so every collision is caused by REMOTE influence.
Deployment hidden_pairs() {
  Deployment d;
  d.nodes.push_back({{0.0, 0.0}});   // 0: sender A (tile 0)
  d.nodes.push_back({{80.0, 0.0}});  // 1: sender B (tile 2)
  d.nodes.push_back({{35.0, 0.0}});  // 2: receiver A (tile 0)
  d.nodes.push_back({{45.0, 0.0}});  // 3: receiver B (clustered to B)
  d.flows.push_back({0, 2});
  d.flows.push_back({1, 3});
  return d;
}

TEST(BorderEquivalence, HiddenTerminalsAcrossTheBorder) {
  net::NetworkConfig cfg;
  cfg.duration_s = 0.2;
  const Deployment d = hidden_pairs();

  // Tile width 40 m puts {A, rxA} in tile 0 and sender B in tile 2;
  // receiver B (grid tile 1) is clustered with its flow partner.
  const net::ShardOptions opt = bordered(40.0, 8);
  const net::ShardPlan plan = net::plan_shards(cfg, d.nodes, opt, &d.flows);
  ASSERT_EQ(plan.shards.size(), 2u);
  EXPECT_EQ(plan.shard_of[0], plan.shard_of[2]);
  EXPECT_EQ(plan.shard_of[1], plan.shard_of[3]);
  EXPECT_NE(plan.shard_of[0], plan.shard_of[1]);

  net::ShardOptions ref = opt;
  ref.border_reference = true;
  Rng fused_rng(7);
  const auto fused = net::simulate_network_sharded(cfg, d.nodes, d.flows,
                                                   ref, fused_rng);
  Rng tiled_rng(7);
  const auto tiled = net::simulate_network_sharded(cfg, d.nodes, d.flows,
                                                   opt, tiled_rng);
  expect_flows_bitwise(fused, tiled);
  EXPECT_GT(tiled.border.messages, 0u);

  // The hidden-terminal physics must survive the tiling: both flows
  // deliver, and the mutual blindness produces real data losses.
  EXPECT_GT(tiled.flows[0].delivered, 0u);
  EXPECT_GT(tiled.flows[1].delivered, 0u);
  EXPECT_GT(tiled.data_failures, 0u);

  // Qualitative agreement with the true monolith (shared-stream RNG
  // discipline, immediate influence — NOT bitwise comparable): same
  // collision regime, same order of magnitude of goodput.
  net::NetworkConfig mono_cfg = cfg;
  Rng mono_rng(7);
  const auto mono =
      net::simulate_network(mono_cfg, d.nodes, d.flows, mono_rng);
  EXPECT_GT(mono.data_failures, 0u);
  ASSERT_GT(mono.aggregate_throughput_mbps, 0.0);
  const double ratio =
      tiled.aggregate_throughput_mbps / mono.aggregate_throughput_mbps;
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

// --- Auditor ---------------------------------------------------------

TEST(BorderAudit, RemoteInfluenceKeepsInvariantsIntact) {
  net::NetworkConfig cfg;
  cfg.duration_s = 0.2;
  cfg.lifecycle.enabled = true;
  cfg.airtime = true;
  const Deployment d = hidden_pairs();
  const net::ShardOptions opt = bordered(40.0, 4);
  Rng rng(21);
  const auto r =
      net::simulate_network_sharded(cfg, d.nodes, d.flows, opt, rng);
  EXPECT_EQ(r.lifecycle.breaches, 0u)
      << (r.lifecycle.breach_messages.empty()
              ? ""
              : r.lifecycle.breach_messages.front());
  ASSERT_EQ(r.airtime.flows.size(), d.flows.size());
  std::uint64_t delivered = 0;
  for (const auto& f : r.flows) delivered += f.delivered;
  EXPECT_EQ(delivered, r.total_delivered);
  EXPECT_GT(delivered, 0u);
}

}  // namespace
}  // namespace wlan

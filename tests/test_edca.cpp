// Tests for 802.11e EDCA prioritized access.
#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "mac/edca.h"

namespace wlan::mac {
namespace {

TEST(EdcaDefaults, PrioritiesOrderedByParameters) {
  const EdcaParams vo = edca_defaults(AccessCategory::kVoice);
  const EdcaParams vi = edca_defaults(AccessCategory::kVideo);
  const EdcaParams be = edca_defaults(AccessCategory::kBestEffort);
  const EdcaParams bk = edca_defaults(AccessCategory::kBackground);
  EXPECT_LT(vo.cw_min, be.cw_min);
  EXPECT_LT(vi.cw_min, be.cw_min);
  EXPECT_LE(vo.aifsn, be.aifsn);
  EXPECT_LT(be.aifsn, bk.aifsn);
  EXPECT_GT(vo.txop_s, 0.0);
  EXPECT_DOUBLE_EQ(be.txop_s, 0.0);
}

TEST(Edca, SingleStationDeliversContinuously) {
  Rng rng(1);
  EdcaConfig cfg;
  const auto r = simulate_edca(cfg, {{AccessCategory::kBestEffort, 1000}}, rng);
  EXPECT_GT(r.aggregate_throughput_mbps, 10.0);
  EXPECT_EQ(r.stations[0].collisions, 0u);
}

TEST(Edca, VoiceBeatsBestEffortUnderContention) {
  Rng rng(2);
  EdcaConfig cfg;
  std::vector<EdcaStation> stations;
  stations.push_back({AccessCategory::kVoice, 200});
  for (int i = 0; i < 6; ++i) {
    stations.push_back({AccessCategory::kBestEffort, 1000});
  }
  const auto r = simulate_edca(cfg, stations, rng);
  // Voice accesses the channel far faster than the best-effort crowd.
  double be_delay = 0.0;
  for (std::size_t i = 1; i < stations.size(); ++i) {
    be_delay += r.stations[i].mean_access_delay_s;
  }
  be_delay /= 6.0;
  EXPECT_GT(be_delay, 0.0);
  EXPECT_LT(r.stations[0].mean_access_delay_s, 0.5 * be_delay);
  EXPECT_GT(r.stations[0].delivered, 100u);
}

TEST(Edca, SaturatedVoiceStarvesBackground) {
  // A documented EDCA pathology this model reproduces exactly: voice's
  // worst case wait (AIFSN 2 + CW 3 = 5 slots) undercuts background's
  // best case (AIFSN 7), so a saturated voice queue starves background
  // completely.
  Rng rng(3);
  EdcaConfig cfg;
  const auto r = simulate_edca(cfg,
                               {{AccessCategory::kVoice, 500},
                                {AccessCategory::kBackground, 1000}},
                               rng);
  EXPECT_GT(r.stations[0].delivered, 500u);
  EXPECT_EQ(r.stations[1].delivered, 0u);
}

TEST(Edca, VideoTxopBurstsRaiseItsThroughput) {
  Rng rng(3);
  EdcaConfig cfg;
  std::vector<EdcaStation> with_txop = {{AccessCategory::kVideo, 1000},
                                        {AccessCategory::kBestEffort, 1000}};
  const auto r = simulate_edca(cfg, with_txop, rng);
  // Video has both a shorter CW and a 3 ms TXOP: it should carry clearly
  // more traffic than the best-effort peer.
  EXPECT_GT(r.stations[0].throughput_mbps,
            1.5 * r.stations[1].throughput_mbps);
}

TEST(Edca, EqualCategoriesShareFairly) {
  Rng rng(4);
  EdcaConfig cfg;
  std::vector<EdcaStation> stations(4, {AccessCategory::kBestEffort, 1000});
  const auto r = simulate_edca(cfg, stations, rng);
  double mn = 1e300;
  double mx = 0.0;
  for (const auto& s : r.stations) {
    mn = std::min(mn, s.throughput_mbps);
    mx = std::max(mx, s.throughput_mbps);
  }
  EXPECT_LT(mx / mn, 1.5);
}

TEST(Edca, CollisionsHappenBetweenPeers) {
  Rng rng(5);
  EdcaConfig cfg;
  cfg.duration_s = 4.0;
  std::vector<EdcaStation> stations(8, {AccessCategory::kBestEffort, 500});
  const auto r = simulate_edca(cfg, stations, rng);
  std::uint64_t collisions = 0;
  for (const auto& s : r.stations) collisions += s.collisions;
  EXPECT_GT(collisions, 20u);
}

TEST(Edca, AggregateMatchesSumOfStations) {
  Rng rng(6);
  EdcaConfig cfg;
  std::vector<EdcaStation> stations = {{AccessCategory::kVoice, 200},
                                       {AccessCategory::kVideo, 1000},
                                       {AccessCategory::kBestEffort, 1000}};
  const auto r = simulate_edca(cfg, stations, rng);
  double sum = 0.0;
  for (const auto& s : r.stations) sum += s.throughput_mbps;
  EXPECT_NEAR(r.aggregate_throughput_mbps, sum, 1e-9);
}

TEST(Edca, Validation) {
  Rng rng(7);
  EdcaConfig cfg;
  EXPECT_THROW(simulate_edca(cfg, {}, rng), ContractError);
  cfg.duration_s = 0.0;
  EXPECT_THROW(simulate_edca(cfg, {{AccessCategory::kVoice, 100}}, rng),
               ContractError);
}

}  // namespace
}  // namespace wlan::mac

// Unit tests for the DSP substrate: FFT, convolution, correlation, PAPR.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/check.h"
#include "common/rng.h"
#include "dsp/fft.h"
#include "dsp/ops.h"

namespace wlan::dsp {
namespace {

TEST(Fft, PowerOfTwoPredicate) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_TRUE(is_power_of_two(128));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(48));
  EXPECT_FALSE(is_power_of_two(63));
}

TEST(Fft, RejectsNonPowerOfTwo) {
  CVec x(48, Cplx{1.0, 0.0});
  EXPECT_THROW(fft_inplace(x), ContractError);
}

TEST(Fft, ImpulseIsFlat) {
  CVec x(64, Cplx{0.0, 0.0});
  x[0] = 1.0;
  const CVec y = fft(x);
  for (const auto& v : y) EXPECT_NEAR(std::abs(v - Cplx(1.0, 0.0)), 0.0, 1e-12);
}

TEST(Fft, DcGoesToBinZero) {
  CVec x(32, Cplx{1.0, 0.0});
  const CVec y = fft(x);
  EXPECT_NEAR(std::abs(y[0] - Cplx(32.0, 0.0)), 0.0, 1e-10);
  for (std::size_t k = 1; k < 32; ++k) EXPECT_NEAR(std::abs(y[k]), 0.0, 1e-10);
}

TEST(Fft, ComplexExponentialHitsItsBin) {
  const std::size_t n = 64;
  const std::size_t bin = 5;
  CVec x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double arg = 2.0 * std::numbers::pi * static_cast<double>(bin * i) /
                       static_cast<double>(n);
    x[i] = {std::cos(arg), std::sin(arg)};
  }
  const CVec y = fft(x);
  EXPECT_NEAR(std::abs(y[bin]), static_cast<double>(n), 1e-9);
  for (std::size_t k = 0; k < n; ++k) {
    if (k != bin) {
      EXPECT_NEAR(std::abs(y[k]), 0.0, 1e-9) << "bin " << k;
    }
  }
}

TEST(Fft, IfftRoundTrip) {
  Rng rng(1);
  CVec x(128);
  for (auto& v : x) v = rng.cgaussian(1.0);
  const CVec y = ifft(fft(x));
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-10);
  }
}

TEST(Fft, Linearity) {
  Rng rng(2);
  CVec a(64);
  CVec b(64);
  for (auto& v : a) v = rng.cgaussian(1.0);
  for (auto& v : b) v = rng.cgaussian(1.0);
  CVec sum(64);
  for (std::size_t i = 0; i < 64; ++i) sum[i] = 2.0 * a[i] + b[i];
  const CVec fa = fft(a);
  const CVec fb = fft(b);
  const CVec fsum = fft(sum);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(std::abs(fsum[i] - (2.0 * fa[i] + fb[i])), 0.0, 1e-9);
  }
}

TEST(Fft, Parseval) {
  Rng rng(3);
  CVec x(256);
  for (auto& v : x) v = rng.cgaussian(1.0);
  double time_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  const CVec y = fft(x);
  double freq_energy = 0.0;
  for (const auto& v : y) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / 256.0, time_energy, 1e-8 * time_energy);
}

TEST(Ops, ConvolveKnown) {
  const CVec a = {Cplx{1, 0}, Cplx{2, 0}};
  const CVec b = {Cplx{1, 0}, Cplx{0, 0}, Cplx{3, 0}};
  const CVec c = convolve(a, b);
  ASSERT_EQ(c.size(), 4u);
  EXPECT_NEAR(c[0].real(), 1.0, 1e-14);
  EXPECT_NEAR(c[1].real(), 2.0, 1e-14);
  EXPECT_NEAR(c[2].real(), 3.0, 1e-14);
  EXPECT_NEAR(c[3].real(), 6.0, 1e-14);
}

TEST(Ops, ConvolveIdentity) {
  Rng rng(4);
  CVec x(20);
  for (auto& v : x) v = rng.cgaussian(1.0);
  const CVec delta = {Cplx{1, 0}};
  const CVec y = convolve(x, delta);
  ASSERT_EQ(y.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-14);
  }
}

TEST(Ops, CrossCorrelatePeakAtAlignment) {
  Rng rng(5);
  CVec ref(16);
  for (auto& v : ref) v = rng.cgaussian(1.0);
  CVec x(64, Cplx{0.0, 0.0});
  const std::size_t offset = 23;
  for (std::size_t i = 0; i < ref.size(); ++i) x[offset + i] = ref[i];
  const CVec corr = cross_correlate(x, ref);
  std::size_t peak = 0;
  for (std::size_t k = 1; k < corr.size(); ++k) {
    if (std::abs(corr[k]) > std::abs(corr[peak])) peak = k;
  }
  EXPECT_EQ(peak, offset);
}

TEST(Ops, MeanAndPeakPower) {
  const CVec x = {Cplx{1, 0}, Cplx{0, 2}, Cplx{1, 0}};
  EXPECT_NEAR(mean_power(x), (1.0 + 4.0 + 1.0) / 3.0, 1e-14);
  EXPECT_NEAR(peak_power(x), 4.0, 1e-14);
  EXPECT_EQ(mean_power(CVec{}), 0.0);
}

TEST(Ops, PaprOfConstantEnvelopeIsZeroDb) {
  CVec x(100);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double arg = 0.1 * static_cast<double>(i);
    x[i] = {std::cos(arg), std::sin(arg)};
  }
  EXPECT_NEAR(papr_db(x), 0.0, 1e-10);
}

TEST(Ops, PaprOfTwoToneIs3Db) {
  // Sum of two equal tones: peak power 4, mean power 2 -> 3 dB.
  CVec x(1024);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double a1 = 2.0 * std::numbers::pi * 3.0 * static_cast<double>(i) / 1024.0;
    const double a2 = 2.0 * std::numbers::pi * 7.0 * static_cast<double>(i) / 1024.0;
    x[i] = Cplx{std::cos(a1), std::sin(a1)} + Cplx{std::cos(a2), std::sin(a2)};
  }
  EXPECT_NEAR(papr_db(x), 3.01, 0.05);
}

TEST(Ops, NormalizePower) {
  Rng rng(6);
  CVec x(1000);
  for (auto& v : x) v = rng.cgaussian(5.0);
  normalize_power(x, 2.0);
  EXPECT_NEAR(mean_power(x), 2.0, 1e-12);
}

TEST(Ops, PowerCcdfMonotoneNonIncreasing) {
  Rng rng(7);
  CVec x(20000);
  for (auto& v : x) v = rng.cgaussian(1.0);
  const RVec thresholds = {0.0, 2.0, 4.0, 6.0, 8.0, 10.0};
  const RVec ccdf = power_ccdf(x, thresholds);
  for (std::size_t i = 0; i + 1 < ccdf.size(); ++i) {
    EXPECT_GE(ccdf[i], ccdf[i + 1]);
  }
  // Complex Gaussian: P(|x|^2 > mean) = 1/e.
  EXPECT_NEAR(ccdf[0], std::exp(-1.0), 0.02);
}

}  // namespace
}  // namespace wlan::dsp

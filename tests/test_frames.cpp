// Tests for MAC frame encoding/decoding with FCS.
#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "mac/frames.h"

namespace wlan::mac {
namespace {

MacAddress addr(std::uint32_t id) { return MacAddress::from_station_id(id); }

TEST(MacAddressTest, StationIdsAreDistinct) {
  EXPECT_EQ(addr(7), addr(7));
  EXPECT_FALSE(addr(7) == addr(8));
  EXPECT_EQ(addr(1).octets[0], 0x02);  // locally administered bit
}

TEST(Frames, DataRoundTrip) {
  Rng rng(1);
  Frame f;
  f.type = FrameType::kData;
  f.duration_us = 314;
  f.addr1 = addr(1);
  f.addr2 = addr(2);
  f.addr3 = addr(3);
  f.sequence = 777;
  f.retry = true;
  f.payload = rng.random_bytes(1500);
  const Bytes mpdu = encode_frame(f);
  EXPECT_EQ(mpdu.size(), mpdu_size_bytes(FrameType::kData, 1500));
  const auto decoded = decode_frame(mpdu);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, FrameType::kData);
  EXPECT_EQ(decoded->duration_us, 314);
  EXPECT_EQ(decoded->addr1, f.addr1);
  EXPECT_EQ(decoded->addr2, f.addr2);
  EXPECT_EQ(decoded->addr3, f.addr3);
  EXPECT_EQ(decoded->sequence, 777);
  EXPECT_TRUE(decoded->retry);
  EXPECT_EQ(decoded->payload, f.payload);
}

class ControlFrames : public ::testing::TestWithParam<FrameType> {};

TEST_P(ControlFrames, RoundTrip) {
  Frame f;
  f.type = GetParam();
  f.duration_us = 44;
  f.addr1 = addr(9);
  if (GetParam() == FrameType::kRts) f.addr2 = addr(10);
  const Bytes mpdu = encode_frame(f);
  const auto decoded = decode_frame(mpdu);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, GetParam());
  EXPECT_EQ(decoded->addr1, f.addr1);
  EXPECT_EQ(decoded->duration_us, 44);
}

INSTANTIATE_TEST_SUITE_P(Types, ControlFrames,
                         ::testing::Values(FrameType::kAck, FrameType::kRts,
                                           FrameType::kCts));

TEST(Frames, BeaconCarriesPayload) {
  Frame f;
  f.type = FrameType::kBeacon;
  f.addr1 = addr(0xFFFFFF);
  f.addr2 = addr(1);
  f.addr3 = addr(1);
  f.payload = {0xDE, 0xAD, 0xBE, 0xEF};
  const auto decoded = decode_frame(encode_frame(f));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, FrameType::kBeacon);
  EXPECT_EQ(decoded->payload, f.payload);
}

TEST(Frames, KnownSizes) {
  EXPECT_EQ(mpdu_size_bytes(FrameType::kAck, 0), 14u);
  EXPECT_EQ(mpdu_size_bytes(FrameType::kCts, 0), 14u);
  EXPECT_EQ(mpdu_size_bytes(FrameType::kRts, 0), 20u);
  EXPECT_EQ(mpdu_size_bytes(FrameType::kData, 1500), 1528u);
}

TEST(Frames, FcsDetectsEveryTestedCorruption) {
  Rng rng(2);
  Frame f;
  f.type = FrameType::kData;
  f.addr1 = addr(1);
  f.addr2 = addr(2);
  f.addr3 = addr(3);
  f.payload = rng.random_bytes(100);
  const Bytes clean = encode_frame(f);
  for (int trial = 0; trial < 50; ++trial) {
    Bytes corrupt = clean;
    const std::size_t pos = rng.uniform_int(corrupt.size());
    corrupt[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(8));
    EXPECT_FALSE(decode_frame(corrupt).has_value()) << "flip at " << pos;
  }
}

TEST(Frames, ControlFramesRejectPayload) {
  Frame f;
  f.type = FrameType::kAck;
  f.payload = {1, 2, 3};
  EXPECT_THROW(encode_frame(f), ContractError);
}

TEST(Frames, ShortOrGarbageInputRejected) {
  EXPECT_FALSE(decode_frame(Bytes(5, 0)).has_value());
  Rng rng(3);
  const Bytes garbage = rng.random_bytes(64);
  EXPECT_FALSE(decode_frame(garbage).has_value());
}

TEST(Frames, SequenceNumberField) {
  Frame f;
  f.type = FrameType::kData;
  f.addr1 = addr(1);
  f.addr2 = addr(2);
  f.addr3 = addr(3);
  f.payload = {0x42};
  for (const std::uint16_t seq : {0u, 1u, 4095u}) {
    f.sequence = seq;
    const auto decoded = decode_frame(encode_frame(f));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->sequence, seq);
  }
}

}  // namespace
}  // namespace wlan::mac

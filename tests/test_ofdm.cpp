// Tests for the 802.11a/g OFDM PHY.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "channel/awgn.h"
#include "channel/fading.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/units.h"
#include "dsp/ops.h"
#include "phy/ofdm.h"

namespace wlan::phy {
namespace {

TEST(OfdmMcsTable, RatesAndBitCounts) {
  EXPECT_DOUBLE_EQ(ofdm_mcs_info(OfdmMcs::k6Mbps).data_rate_mbps, 6.0);
  EXPECT_DOUBLE_EQ(ofdm_mcs_info(OfdmMcs::k54Mbps).data_rate_mbps, 54.0);
  EXPECT_EQ(ofdm_mcs_info(OfdmMcs::k54Mbps).n_dbps, 216u);
  EXPECT_EQ(ofdm_mcs_info(OfdmMcs::k24Mbps).n_cbps, 192u);
  // Rate = n_dbps / 4 us for every MCS.
  for (const OfdmMcs mcs : kAllOfdmMcs) {
    const auto& info = ofdm_mcs_info(mcs);
    EXPECT_NEAR(info.data_rate_mbps, static_cast<double>(info.n_dbps) / 4.0,
                1e-12);
    EXPECT_EQ(info.n_cbps, 48u * info.n_bpsc);
  }
}

TEST(OfdmPhy, SymbolCountMatchesStandardFormula) {
  const OfdmPhy phy(OfdmMcs::k54Mbps);
  // 1000-byte PSDU: ceil((16 + 8000 + 6) / 216) = 38 symbols.
  EXPECT_EQ(phy.n_symbols_for_psdu(1000), 38u);
  const OfdmPhy slow(OfdmMcs::k6Mbps);
  // ceil(8022 / 24) = 335.
  EXPECT_EQ(slow.n_symbols_for_psdu(1000), 335u);
}

TEST(OfdmPhy, PpduDurationExample) {
  // Known 802.11a example: 1000 bytes at 54 Mbps = 20 + 38*4 = 172 us.
  const OfdmPhy phy(OfdmMcs::k54Mbps);
  EXPECT_NEAR(phy.ppdu_duration_s(1000), 172e-6, 1e-9);
}

TEST(OfdmPhy, WaveformLengthMatches) {
  const OfdmPhy phy(OfdmMcs::k24Mbps);
  Rng rng(1);
  const Bytes psdu = rng.random_bytes(100);
  const CVec wave = phy.transmit(psdu);
  EXPECT_EQ(wave.size(), phy.waveform_length(100));
}

class OfdmLoopback : public ::testing::TestWithParam<OfdmMcs> {};

TEST_P(OfdmLoopback, NoiselessRoundTrip) {
  const OfdmPhy phy(GetParam());
  Rng rng(2);
  const Bytes psdu = rng.random_bytes(250);
  const CVec wave = phy.transmit(psdu);
  EXPECT_EQ(phy.receive(wave, psdu.size(), 1e-9), psdu);
}

TEST_P(OfdmLoopback, HighSnrAwgnRoundTrip) {
  const OfdmPhy phy(GetParam());
  Rng rng(3);
  const Bytes psdu = rng.random_bytes(200);
  CVec wave = phy.transmit(psdu);
  const double nv = dsp::mean_power(wave) / db_to_lin(35.0);
  channel::add_awgn(wave, rng, nv);
  EXPECT_EQ(phy.receive(wave, psdu.size(), nv), psdu);
}

TEST_P(OfdmLoopback, MultipathHighSnrRoundTrip) {
  // LTF-based estimation + one-tap equalizer must absorb a TGn-style
  // channel entirely within the cyclic prefix.
  const OfdmPhy phy(GetParam());
  Rng rng(4);
  const Bytes psdu = rng.random_bytes(120);
  const CVec tx = phy.transmit(psdu);
  const channel::Tdl tdl = channel::make_tdl(rng, channel::DelayProfile::kResidential,
                                             OfdmPhy::kSampleRateHz);
  CVec rx = tdl.apply(tx);
  const double nv = dsp::mean_power(tx) / db_to_lin(45.0);
  channel::add_awgn(rx, rng, nv);
  rx.resize(tx.size());
  EXPECT_EQ(phy.receive(rx, psdu.size(), nv), psdu);
}

INSTANTIATE_TEST_SUITE_P(AllMcs, OfdmLoopback, ::testing::ValuesIn(kAllOfdmMcs));

TEST(OfdmPhy, PerIsMonotoneInSnr) {
  const OfdmPhy phy(OfdmMcs::k36Mbps);
  Rng rng(5);
  auto per_at = [&](double snr_db) {
    int errors = 0;
    const int packets = 40;
    for (int p = 0; p < packets; ++p) {
      const Bytes psdu = rng.random_bytes(100);
      CVec wave = phy.transmit(psdu);
      const double nv = dsp::mean_power(wave) / db_to_lin(snr_db);
      channel::add_awgn(wave, rng, nv);
      if (phy.receive(wave, psdu.size(), nv) != psdu) ++errors;
    }
    return static_cast<double>(errors) / packets;
  };
  const double low = per_at(8.0);
  const double mid = per_at(14.0);
  const double high = per_at(25.0);
  EXPECT_GE(low, mid);
  EXPECT_GE(mid, high);
  EXPECT_GT(low, 0.8);   // 16-QAM 3/4 collapses at 8 dB
  EXPECT_EQ(high, 0.0);  // and is clean at 25 dB
}

TEST(OfdmPhy, LowerMcsSurvivesWhereHigherFails) {
  Rng rng(6);
  const double snr_db = 9.0;
  auto per_for = [&](OfdmMcs mcs) {
    const OfdmPhy phy(mcs);
    int errors = 0;
    const int packets = 30;
    for (int p = 0; p < packets; ++p) {
      const Bytes psdu = rng.random_bytes(100);
      CVec wave = phy.transmit(psdu);
      const double nv = dsp::mean_power(wave) / db_to_lin(snr_db);
      channel::add_awgn(wave, rng, nv);
      if (phy.receive(wave, psdu.size(), nv) != psdu) ++errors;
    }
    return static_cast<double>(errors) / packets;
  };
  EXPECT_LT(per_for(OfdmMcs::k12Mbps), 0.1);
  EXPECT_GT(per_for(OfdmMcs::k54Mbps), 0.9);
}

TEST(OfdmPhy, WaveformHasHighPapr) {
  // The paper's PA argument: OFDM PAPR is far above constant envelope.
  const OfdmPhy phy(OfdmMcs::k54Mbps);
  Rng rng(7);
  const CVec wave = phy.transmit(rng.random_bytes(500));
  EXPECT_GT(dsp::papr_db(wave), 8.0);
}

TEST(OfdmPhy, SpectralEfficiencyIs2Point7) {
  EXPECT_NEAR(ofdm_mcs_info(OfdmMcs::k54Mbps).data_rate_mbps * 1e6 /
                  OfdmPhy::kChannelWidthHz,
              2.7, 1e-12);
}

TEST(OfdmPhy, ReceiveRejectsShortWaveform) {
  const OfdmPhy phy(OfdmMcs::k6Mbps);
  const CVec wave(100, Cplx{0.0, 0.0});
  EXPECT_THROW(phy.receive(wave, 1000, 0.1), wlan::ContractError);
}

TEST(OfdmPhy, PilotTrackingAbsorbsResidualCfo) {
  // A small residual CFO (post-acquisition) rotates every symbol by a
  // growing common phase; the pilot-based tracker must remove it. At
  // 64-QAM even ~1e-4 cycles/sample of leftover rotation is fatal without
  // tracking.
  Rng rng(9);
  const OfdmPhy phy(OfdmMcs::k48Mbps);
  int ok = 0;
  const int packets = 10;
  for (int p = 0; p < packets; ++p) {
    const Bytes psdu = rng.random_bytes(300);
    CVec wave = phy.transmit(psdu);
    // Apply the residual rotation e^{j 2 pi f n}.
    const double f = 1.2e-4;
    for (std::size_t n = 0; n < wave.size(); ++n) {
      const double arg = 2.0 * std::numbers::pi * f * static_cast<double>(n);
      wave[n] *= Cplx{std::cos(arg), std::sin(arg)};
    }
    const double nv = dsp::mean_power(wave) / db_to_lin(35.0);
    channel::add_awgn(wave, rng, nv);
    if (phy.receive(wave, psdu.size(), nv) == psdu) ++ok;
  }
  EXPECT_GE(ok, packets - 1);
}

TEST(OfdmPhy, PilotTrackingFightsOscillatorPhaseNoise) {
  // A modest Lorentzian linewidth (Wiener phase noise) is absorbed by the
  // common-phase-error tracker; a wild oscillator is not. Both directions
  // checked so the impairment and the tracker are each doing real work.
  Rng rng(10);
  const OfdmPhy phy(OfdmMcs::k24Mbps);
  auto per_with_linewidth = [&](double linewidth_hz) {
    int errors = 0;
    const int packets = 12;
    for (int p = 0; p < packets; ++p) {
      const Bytes psdu = rng.random_bytes(300);
      CVec wave = phy.transmit(psdu);
      channel::add_phase_noise(wave, rng, linewidth_hz,
                               OfdmPhy::kSampleRateHz);
      const double nv = dsp::mean_power(wave) / db_to_lin(30.0);
      channel::add_awgn(wave, rng, nv);
      if (phy.receive(wave, psdu.size(), nv) != psdu) ++errors;
    }
    return static_cast<double>(errors) / packets;
  };
  EXPECT_LT(per_with_linewidth(100.0), 0.2);    // clean oscillator
  EXPECT_GT(per_with_linewidth(50e3), 0.5);     // hopeless oscillator
}

TEST(OfdmPhy, DifferentPsdusProduceDifferentWaveforms) {
  const OfdmPhy phy(OfdmMcs::k12Mbps);
  Rng rng(8);
  const Bytes a = rng.random_bytes(50);
  Bytes b = a;
  b[0] ^= 0xFF;
  const CVec wa = phy.transmit(a);
  const CVec wb = phy.transmit(b);
  double diff = 0.0;
  for (std::size_t i = 0; i < wa.size(); ++i) diff += std::abs(wa[i] - wb[i]);
  EXPECT_GT(diff, 1.0);
}

}  // namespace
}  // namespace wlan::phy
